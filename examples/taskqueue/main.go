// Taskqueue: a work-distribution pipeline built on the one-lock MS-Queue
// over MP-SERVER. The paper's introduction motivates fast concurrent
// queues as the backbone of parallelization frameworks (it cites OpenMP
// tasking); this example is that use case in miniature: producers
// enqueue work items, workers dequeue and execute them, and the queue's
// critical sections are all executed by the dedicated server goroutine.
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"

	"hybsync"
	"hybsync/object"
)

func main() {
	const (
		producers = 4
		workers   = 4
		tasks     = 50_000
	)

	queue, err := object.NewMSQueue1("mpserver",
		hybsync.WithMaxThreads(producers+workers+1))
	if err != nil {
		log.Fatalf("NewMSQueue1: %v", err)
	}
	defer queue.Close()

	var produced, done atomic.Uint64
	var sum atomic.Uint64
	var wg sync.WaitGroup

	// Producers enqueue task ids.
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			h, err := queue.NewHandle()
			if err != nil {
				panic(err)
			}
			for i := p; i < tasks; i += producers {
				h.Enqueue(uint64(i))
				produced.Add(1)
			}
		}(p)
	}

	// Workers drain until all tasks are accounted for.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := queue.NewHandle()
			if err != nil {
				panic(err)
			}
			for done.Load() < tasks {
				v := h.Dequeue()
				if v == object.EmptyVal {
					continue // queue momentarily empty; retry
				}
				// "Execute" the task: fold its id into a checksum.
				sum.Add(v*2 + 1)
				done.Add(1)
			}
		}()
	}
	wg.Wait()

	var want uint64
	for i := uint64(0); i < tasks; i++ {
		want += i*2 + 1
	}
	fmt.Printf("produced %d tasks, executed %d\n", produced.Load(), done.Load())
	fmt.Printf("checksum %d (want %d)\n", sum.Load(), want)
	if sum.Load() != want {
		fmt.Println("MISMATCH — a task was lost or duplicated!")
	} else {
		fmt.Println("every task executed exactly once")
	}
}
