// Kvstore: a tiny key-value store built on object.Map — the
// fixed-capacity open-addressing hash table whose buckets are
// delegation-protected per shard. Clients drive a 90/10 get/put mix
// with Zipf-skewed keys (the classic cache workload) through the shard
// router, reading in batches of 8 through GetAll and writing in
// batches of 4 through MultiPut: each batch is submitted before any
// result is waited on, so operations landing on different shards are
// served concurrently instead of one round trip after another — and
// same-shard keys are grouped into contiguous runs the shard executes
// as single batch calls. Each key's shard still serializes its
// operations through one delegation point, and the router's occupancy
// profile shows where the skew landed.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"

	"hybsync"
	"hybsync/harness"
	"hybsync/object"
)

func main() {
	const (
		clients  = 4
		rounds   = 6_000
		batch    = 8 // keys per pipelined multi-get
		wbatch   = 4 // keys per pipelined multi-put
		shards   = 4
		capacity = 1 << 16
		keys     = 1 << 14
		theta    = 0.99
	)

	store, err := object.NewMap("mpserver", shards, capacity,
		hybsync.WithMaxThreads(clients+1))
	if err != nil {
		log.Fatalf("NewMap: %v", err)
	}
	defer store.Close()

	zipf, err := harness.NewZipf(keys, theta, 1)
	if err != nil {
		log.Fatalf("NewZipf: %v", err)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h, err := store.NewHandle()
			if err != nil {
				panic(err)
			}
			z := zipf.Reseed(uint64(c + 1))
			rng := harness.NewXorShift(uint64(c + 1))
			ks := make([]uint32, batch)
			wks := make([]uint32, wbatch)
			wvs := make([]uint32, wbatch)
			for r := 0; r < rounds; r++ {
				if rng.Next()%10 == 0 {
					// 10%: a batched multi-put — same-shard keys grouped
					// into one run per shard, shards overlapped.
					for i := range wks {
						wks[i] = uint32(z.Next())
						wvs[i] = uint32(r)
					}
					if _, err := h.MultiPut(wks, wvs); err != nil {
						panic(err)
					}
					continue
				}
				// 90%: a batched multi-get across shards, one overlapped
				// round instead of `batch` sequential round trips.
				for i := range ks {
					ks[i] = uint32(z.Next())
				}
				if _, err := h.GetAll(ks); err != nil {
					panic(err)
				}
			}
		}(c)
	}
	wg.Wait()

	h, err := store.NewHandle()
	if err != nil {
		log.Fatalf("NewHandle: %v", err)
	}
	n, err := h.Len()
	if err != nil {
		log.Fatalf("Len: %v", err)
	}
	fmt.Printf("%d clients ran %d rounds each (90%% %d-key batched get / 10%% %d-key batched put, zipf %.2f over %d keys)\n",
		clients, rounds, batch, wbatch, theta, keys)
	fmt.Printf("store holds %d live keys across %d shards\n", n, shards)
	fmt.Println("per-shard operation counts (the workload's skew profile):")
	for s, ops := range store.Occupancy() {
		fmt.Printf("  shard %d: %7d ops\n", s, ops)
	}
}
