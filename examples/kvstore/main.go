// Kvstore: a tiny key-value store built on object.Map — the
// fixed-capacity open-addressing hash table whose buckets are
// delegation-protected per shard. Clients drive a 90/10 get/put mix
// with Zipf-skewed keys (the classic cache workload) through the shard
// router: each key's shard serializes its operations through one
// delegation point, unrelated keys proceed in parallel on other shards,
// and the router's occupancy profile shows where the skew landed.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"

	"hybsync"
	"hybsync/harness"
	"hybsync/object"
)

func main() {
	const (
		clients  = 4
		perOps   = 50_000
		shards   = 4
		capacity = 1 << 16
		keys     = 1 << 14
		theta    = 0.99
	)

	store, err := object.NewMap("mpserver", shards, capacity,
		hybsync.WithMaxThreads(clients+1))
	if err != nil {
		log.Fatalf("NewMap: %v", err)
	}
	defer store.Close()

	zipf, err := harness.NewZipf(keys, theta, 1)
	if err != nil {
		log.Fatalf("NewZipf: %v", err)
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			h, err := store.NewHandle()
			if err != nil {
				panic(err)
			}
			z := zipf.Reseed(uint64(c + 1))
			rng := harness.NewXorShift(uint64(c + 1))
			for i := 0; i < perOps; i++ {
				key := uint32(z.Next())
				if rng.Next()%10 == 0 {
					if _, err := h.Put(key, uint32(i)); err != nil {
						panic(err)
					}
				} else {
					if _, err := h.Get(key); err != nil {
						panic(err)
					}
				}
			}
		}(c)
	}
	wg.Wait()

	h, err := store.NewHandle()
	if err != nil {
		log.Fatalf("NewHandle: %v", err)
	}
	n, err := h.Len()
	if err != nil {
		log.Fatalf("Len: %v", err)
	}
	fmt.Printf("%d clients ran %d ops each (90%% get / 10%% put, zipf %.2f over %d keys)\n",
		clients, perOps, theta, keys)
	fmt.Printf("store holds %d live keys across %d shards\n", n, shards)
	fmt.Println("per-shard operation counts (the workload's skew profile):")
	for s, ops := range store.Occupancy() {
		fmt.Printf("  shard %d: %7d ops\n", s, ops)
	}
}
