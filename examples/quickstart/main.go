// Quickstart: build a linearizable counter over HYBCOMB and MP-SERVER
// and hammer it from many goroutines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"

	"hybsync/internal/conc"
	"hybsync/internal/core"
)

func main() {
	const goroutines, perThread = 8, 10_000

	// HYBCOMB: no dedicated server; threads combine for each other.
	hybCounter := conc.NewCounter(func(d core.Dispatch) core.Executor {
		return core.NewHybComb(d, core.Options{MaxThreads: goroutines})
	})
	run(hybCounter, goroutines, perThread)
	fmt.Printf("HybComb counter:  %d (want %d)\n", hybCounter.Value(), goroutines*perThread)

	// MP-SERVER: a dedicated server goroutine owns the counter.
	var server *core.MPServer
	mpCounter := conc.NewCounter(func(d core.Dispatch) core.Executor {
		server = core.NewMPServer(d, core.Options{MaxThreads: goroutines})
		return server
	})
	run(mpCounter, goroutines, perThread)
	server.Close()
	fmt.Printf("MPServer counter: %d (want %d)\n", mpCounter.Value(), goroutines*perThread)
}

func run(c *conc.Counter, goroutines, perThread int) {
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := c.Handle() // one handle per goroutine
			for i := 0; i < perThread; i++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
}
