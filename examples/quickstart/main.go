// Quickstart: build a linearizable counter over HYBCOMB and MP-SERVER
// and hammer it from many goroutines — entirely through the public
// hybsync API: constructions are picked from the algorithm registry by
// name and configured with functional options.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sync"

	"hybsync"
	"hybsync/object"
)

func main() {
	const goroutines, perThread = 8, 10_000

	// Every registered construction can back the counter; HYBCOMB has
	// no dedicated server (threads combine for each other) while
	// MP-SERVER runs a server goroutine that Close shuts down.
	for _, algo := range []string{"hybcomb", "mpserver"} {
		c, err := object.NewCounter(algo, hybsync.WithMaxThreads(goroutines))
		if err != nil {
			log.Fatalf("NewCounter(%s): %v", algo, err)
		}
		run(c, goroutines, perThread)
		fmt.Printf("%-8s counter: %d (want %d)\n", algo, c.Value(), goroutines*perThread)
		if err := c.Close(); err != nil {
			log.Fatalf("Close(%s): %v", algo, err)
		}
	}
}

func run(c *object.Counter, goroutines, perThread int) {
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h, err := c.NewHandle() // one handle per goroutine
			if err != nil {
				panic(err)
			}
			for i := 0; i < perThread; i++ {
				h.Inc()
			}
		}()
	}
	wg.Wait()
}
