// Tilesim: drive the simulated TILE-Gx chip directly — spawn a
// MP-SERVER and a HYBCOMB counter experiment side by side and print the
// cycle-level accounting the paper reads from hardware event counters.
//
//	go run ./examples/tilesim
package main

import (
	"fmt"

	"hybsync/sim"
)

func main() {
	const threads = 20
	const horizon = 100_000 // simulated cycles (~83 µs at 1.2 GHz)

	fmt.Printf("simulated chip: %s\n\n", sim.ProfileTileGx().Name)

	for _, b := range []*sim.Builder{
		sim.NewMPServerBuilder(sim.CounterFactory),
		sim.NewHybCombBuilder(sim.CounterFactory, 200),
		sim.NewSHMServerBuilder(sim.CounterFactory),
		sim.NewCCSynchBuilder(sim.CounterFactory, 200),
	} {
		res := sim.RunWorkload(sim.ProfileTileGx(), b, sim.WorkloadCfg{
			Threads:      threads,
			Horizon:      horizon,
			MaxLocalWork: 50,
		}, sim.CounterOps)

		fmt.Printf("%-11s %7.1f Mops/s   latency %5.0f cycles   fairness %.2f\n",
			b.Name, res.Mops(), res.AvgLatency(), res.Fairness())
		if len(res.Service) > 0 {
			s := res.Service[0]
			fmt.Printf("            server: %.1f cycles/op of which %.1f stalled; %d messages received\n",
				float64(s.BusyCycles())/float64(res.Ops),
				float64(s.StallCycles)/float64(res.Ops), s.MsgsRecvd)
		}
		if res.Rounds > 0 {
			fmt.Printf("            combining: %d rounds, %.1f requests/round, %.2f CAS/op\n",
				res.Rounds, res.CombiningRate(), float64(res.CASAttempts)/float64(res.Ops))
		}
		fmt.Println()
	}

	// The same chip can also be programmed directly. A two-core
	// ping-pong over the UDN:
	e := sim.NewEngine(sim.ProfileTileGx())
	var rtt uint64
	pong := e.Spawn("pong", 35, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			m := p.Recv(1)
			p.Send(int(m[0]), uint64(p.ID()))
		}
	})
	e.Spawn("ping", 0, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			t0 := p.Now()
			p.Send(pong.ID(), uint64(p.ID()))
			p.Recv(1)
			rtt = p.Now() - t0
		}
	})
	e.Run(0)
	fmt.Printf("UDN ping-pong corner-to-corner round trip: %d cycles\n", rtt)
}
