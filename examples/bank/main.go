// Bank: HYBCOMB as a universal construction for an arbitrary sequential
// object — here a tiny bank whose accounts support deposits and
// transfers. The paper's point (§1) is that universal constructions let
// non-experts write highly-efficient concurrent code: the Dispatch
// function below is plain sequential Go, yet every operation is
// linearizable under arbitrary concurrency.
//
//	go run ./examples/bank
package main

import (
	"fmt"
	"log"
	"sync"

	"hybsync"
)

// Opcodes of the bank object. Transfers pack (from, to, amount) into the
// 64-bit argument: 16 bits each for the account ids, 32 for the amount.
const (
	opDeposit  = 1 // arg: account<<32 | amount
	opTransfer = 2 // arg: from<<48 | to<<32 | amount
	opBalance  = 3 // arg: account
	opTotal    = 4
)

func main() {
	const accounts = 64
	balance := make([]uint64, accounts)

	bank, err := hybsync.New("hybcomb", func(op, arg uint64) uint64 {
		switch op {
		case opDeposit:
			balance[arg>>32] += arg & 0xFFFFFFFF
			return 0
		case opTransfer:
			from, to, amt := arg>>48, (arg>>32)&0xFFFF, arg&0xFFFFFFFF
			if balance[from] < amt {
				return 1 // insufficient funds
			}
			balance[from] -= amt
			balance[to] += amt
			return 0
		case opBalance:
			return balance[arg]
		case opTotal:
			var sum uint64
			for _, b := range balance {
				sum += b
			}
			return sum
		}
		panic("bad opcode")
	}, hybsync.WithMaxThreads(32))
	if err != nil {
		log.Fatalf("hybsync.New: %v", err)
	}
	defer bank.Close()

	// Seed every account with 1000.
	h0 := hybsync.MustHandle(bank)
	for a := uint64(0); a < accounts; a++ {
		h0.Apply(opDeposit, a<<32|1000)
	}
	want := h0.Apply(opTotal, 0)

	// 16 tellers shuffle money around concurrently.
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h := hybsync.MustHandle(bank)
			rng := uint64(g + 1)
			for i := 0; i < 20_000; i++ {
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				from := rng % accounts
				to := (rng >> 8) % accounts
				amt := rng % 50
				h.Apply(opTransfer, from<<48|to<<32|amt)
			}
		}(g)
	}
	wg.Wait()

	got := h0.Apply(opTotal, 0)
	fmt.Printf("total before: %d\n", want)
	fmt.Printf("total after:  %d\n", got)
	if got != want {
		fmt.Println("MONEY WAS CREATED OR DESTROYED — linearizability violated!")
	} else {
		fmt.Println("conserved: every transfer was atomic")
	}
	if sr, ok := bank.(hybsync.StatsSource); ok {
		rounds, combined := sr.Stats()
		fmt.Printf("combining: %d rounds, %d requests combined for others\n", rounds, combined)
	}
}
