// Property tests for the asynchronous quarter of the Handle contract
// on the public surface: per-handle FIFO completion (Submit order ==
// Wait result order on every single handle) across the five
// constructions, under the race detector.
package hybsync_test

import (
	"sync"
	"testing"

	"hybsync"
)

// fiveConstructions are the paper's four plus one queue-lock baseline —
// every distinct completion mechanism in the repository (pipelined
// server, combiner with response queues, chain combiner with deferred
// duty, polling server and lock, both immediate).
var fiveConstructions = []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"}

// TestPerHandleFIFOProperty drives every construction with several
// goroutines, each pipelining a varying window of submissions through
// its own handle against a fetch-and-increment dispatch. Execution
// order is observable in the results, so the property "submissions
// through one handle execute and complete in submission order" is
// checked directly: each handle's wait results must be strictly
// increasing. The final state checks global conservation.
func TestPerHandleFIFOProperty(t *testing.T) {
	const goroutines, per = 4, 400
	for _, name := range fiveConstructions {
		t.Run(name, func(t *testing.T) {
			var state uint64
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 {
				v := state
				state = v + 1
				return v
			}, hybsync.WithMaxThreads(goroutines))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			var wg sync.WaitGroup
			errs := make(chan error, goroutines)
			for g := 0; g < goroutines; g++ {
				h, err := ex.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle %d: %v", g, err)
				}
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					var win []hybsync.Ticket
					prev := int64(-1)
					check := func(v uint64) bool {
						if int64(v) <= prev {
							return false
						}
						prev = int64(v)
						return true
					}
					for i := 0; i < per; i++ {
						// Window depth varies 1..8 per iteration, so the
						// property is exercised at every pipeline depth,
						// including the blocking depth-1 case via Apply.
						depth := (g+i)%8 + 1
						for len(win) >= depth {
							if !check(h.Wait(win[0])) {
								errs <- errFIFO(name)
								return
							}
							win = win[1:]
						}
						if depth == 1 {
							if !check(h.Apply(0, 0)) {
								errs <- errFIFO(name)
								return
							}
						} else {
							tk, err := h.Submit(0, 0)
							if err != nil {
								errs <- err
								return
							}
							win = append(win, tk)
						}
					}
					for _, tk := range win {
						if !check(h.Wait(tk)) {
							errs <- errFIFO(name)
							return
						}
					}
				}(g)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Fatal(err)
			}
			if state != goroutines*per {
				t.Fatalf("state = %d, want %d (operations lost or duplicated)", state, goroutines*per)
			}
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

type errFIFO string

func (e errFIFO) Error() string {
	return string(e) + ": per-handle FIFO violated: a wait returned an earlier execution than its predecessor"
}

// TestTicketResultMatching submits operations with distinct arguments
// through an echoing dispatch and redeems the tickets out of order:
// every ticket must return exactly its own operation's result.
func TestTicketResultMatching(t *testing.T) {
	for _, name := range fiveConstructions {
		t.Run(name, func(t *testing.T) {
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 { return arg * 3 },
				hybsync.WithMaxThreads(2))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			defer ex.Close()
			h := hybsync.MustHandle(ex)
			const n = 24
			tickets := make([]hybsync.Ticket, n)
			for i := range tickets {
				tickets[i], _ = h.Submit(0, uint64(i+1))
			}
			for i := n - 1; i >= 0; i-- { // reverse redemption
				if got, want := h.Wait(tickets[i]), uint64(i+1)*3; got != want {
					t.Fatalf("Wait(ticket %d) = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestPostFlushAcrossConstructions: fire-and-forget submissions all
// execute once Flush returns, on every construction.
func TestPostFlushAcrossConstructions(t *testing.T) {
	for _, name := range fiveConstructions {
		t.Run(name, func(t *testing.T) {
			var state uint64
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 {
				state += arg
				return state
			}, hybsync.WithMaxThreads(2))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			h := hybsync.MustHandle(ex)
			const n = 64
			for i := 0; i < n; i++ {
				if err := h.Post(0, 1); err != nil {
					t.Fatalf("Post %d: %v", i, err)
				}
			}
			h.Flush()
			if state != n {
				t.Fatalf("state after Flush = %d, want %d", state, n)
			}
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}
