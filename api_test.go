// Tests for the public hybsync surface: the algorithm registry, the
// functional options, and the uniform Executor lifecycle (error-based
// NewHandle, idempotent Close, NewHandle-after-Close) that every
// registered construction must satisfy.
package hybsync_test

import (
	"errors"
	"sync"
	"testing"

	"hybsync"
)

// requiredAlgos are the constructions the registry must always expose:
// the paper's four, the spin-lock baselines, and the adaptive hybrid.
var requiredAlgos = []string{
	"mpserver", "hybcomb", "ccsynch", "shmserver",
	"tas-lock", "ttas-lock", "ticket-lock", "mcs-lock", "clh-lock",
	"hybrid",
}

func TestAlgorithmsComplete(t *testing.T) {
	have := make(map[string]bool)
	for _, name := range hybsync.Algorithms() {
		have[name] = true
	}
	for _, name := range requiredAlgos {
		if !have[name] {
			t.Errorf("registry is missing %q (have %v)", name, hybsync.Algorithms())
		}
	}
}

// TestRegistryRoundTrip builds every registered algorithm, applies 1k
// increments from several goroutines (the race detector guards the
// mutual-exclusion claim), then checks Close idempotency and
// NewHandle-after-Close.
func TestRegistryRoundTrip(t *testing.T) {
	const goroutines, per = 4, 250
	for _, name := range hybsync.Algorithms() {
		t.Run(name, func(t *testing.T) {
			var state uint64
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 {
				v := state
				state = v + 1
				return v
			}, hybsync.WithMaxThreads(goroutines))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := ex.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle %d: %v", g, err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Apply(0, 0)
					}
				}()
			}
			wg.Wait()
			if state != goroutines*per {
				t.Fatalf("state = %d, want %d", state, goroutines*per)
			}
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := ex.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := ex.NewHandle(); !errors.Is(err, hybsync.ErrClosed) {
				t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestTooManyHandles(t *testing.T) {
	// The bounded constructions must refuse the MaxThreads+1'th handle
	// with ErrTooManyHandles (the unbounded ones hand out handles until
	// Close).
	for _, name := range []string{"mpserver", "hybcomb", "shmserver"} {
		t.Run(name, func(t *testing.T) {
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 { return 0 },
				hybsync.WithMaxThreads(2))
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()
			for i := 0; i < 2; i++ {
				if _, err := ex.NewHandle(); err != nil {
					t.Fatalf("NewHandle %d: %v", i, err)
				}
			}
			if _, err := ex.NewHandle(); !errors.Is(err, hybsync.ErrTooManyHandles) {
				t.Fatalf("NewHandle beyond MaxThreads = %v, want ErrTooManyHandles", err)
			}
		})
	}
}

func TestMustHandlePanicsOnExhaustion(t *testing.T) {
	ex := hybsync.MustNew("hybcomb", func(op, arg uint64) uint64 { return 0 },
		hybsync.WithMaxThreads(1))
	defer ex.Close()
	hybsync.MustHandle(ex)
	defer func() {
		if recover() == nil {
			t.Fatal("MustHandle beyond MaxThreads did not panic")
		}
	}()
	hybsync.MustHandle(ex)
}

func TestRegisterDuplicateRejected(t *testing.T) {
	factory := func(obj hybsync.Object, o hybsync.Options) (hybsync.Executor, error) {
		return hybsync.NewObject("hybcomb", obj, hybsync.WithMaxThreads(o.MaxThreads))
	}
	if err := hybsync.Register("api-test-custom", factory); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := hybsync.Register("api-test-custom", factory); !errors.Is(err, hybsync.ErrDuplicateAlgorithm) {
		t.Fatalf("duplicate Register = %v, want ErrDuplicateAlgorithm", err)
	}
	// The custom registration is reachable through New like any built-in.
	ex, err := hybsync.New("api-test-custom", func(op, arg uint64) uint64 { return arg })
	if err != nil {
		t.Fatalf("New(custom): %v", err)
	}
	defer ex.Close()
	if got := hybsync.MustHandle(ex).Apply(0, 7); got != 7 {
		t.Fatalf("Apply through custom algorithm = %d, want 7", got)
	}
}

// TestBadOptionsRejectedAtNew: explicitly setting a sizing option to a
// non-positive value must fail New with a wrapped ErrBadOption instead
// of silently substituting a default (or misbehaving later); unset
// options still default.
func TestBadOptionsRejectedAtNew(t *testing.T) {
	dispatch := func(op, arg uint64) uint64 { return 0 }
	bad := map[string]hybsync.Option{
		"WithMaxThreads(0)":            hybsync.WithMaxThreads(0),
		"WithMaxThreads(-4)":           hybsync.WithMaxThreads(-4),
		"WithMaxOps(0)":                hybsync.WithMaxOps(0),
		"WithMaxOps(-1)":               hybsync.WithMaxOps(-1),
		"WithQueueCap(0)":              hybsync.WithQueueCap(0),
		"WithQueueCap(-9)":             hybsync.WithQueueCap(-9),
		"WithShards(0)":                hybsync.WithShards(0),
		"WithShards(-2)":               hybsync.WithShards(-2),
		"WithHybridBackend(shmserver)": hybsync.WithHybridBackend("shmserver"),
		"WithHybridThreshold(0,1.25)":  hybsync.WithHybridThreshold(0, 1.25),
		"WithHybridThreshold(0.5,0.5)": hybsync.WithHybridThreshold(0.5, 0.5),
		"WithHybridWindow(0)":          hybsync.WithHybridWindow(0),
	}
	for name, opt := range bad {
		t.Run(name, func(t *testing.T) {
			if _, err := hybsync.New("mpserver", dispatch, opt); !errors.Is(err, hybsync.ErrBadOption) {
				t.Fatalf("New with %s = %v, want ErrBadOption", name, err)
			}
		})
	}
	// Valid values (and unset defaults) still construct.
	ex, err := hybsync.New("mpserver", dispatch,
		hybsync.WithMaxThreads(2), hybsync.WithShards(3), hybsync.WithQueueCap(8))
	if err != nil {
		t.Fatalf("New with valid options: %v", err)
	}
	ex.Close()
}

func TestUnknownAlgorithm(t *testing.T) {
	if _, err := hybsync.New("no-such-algo", func(op, arg uint64) uint64 { return 0 }); !errors.Is(err, hybsync.ErrUnknownAlgorithm) {
		t.Fatalf("New(unknown) = %v, want ErrUnknownAlgorithm", err)
	}
}
