// Tests for the telemetry layer through the public surface: every
// registered construction, armed with WithTelemetry, must produce
// latency samples, a conservative run-length histogram (every applied
// operation appears in exactly one dispatch run), and a poison count
// when its object faults.
package hybsync_test

import (
	"sync"
	"testing"

	"hybsync"
)

// TestTelemetryAllAlgorithms drives every built-in algorithm with an
// armed metric core and checks the three signals the layer exists for.
// Built-ins only: application-registered executors (api_test's custom
// algorithm) are under no obligation to wire telemetry.
func TestTelemetryAllAlgorithms(t *testing.T) {
	const goroutines, per = 4, 256
	for _, name := range requiredAlgos {
		t.Run(name, func(t *testing.T) {
			tel := hybsync.NewTelemetry()
			var state uint64
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 {
				v := state
				state = v + 1
				return v
			}, hybsync.WithMaxThreads(goroutines), hybsync.WithTelemetry(tel))
			if err != nil {
				t.Fatalf("New(%q): %v", name, err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := ex.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle %d: %v", g, err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Apply(0, 0)
					}
				}()
			}
			wg.Wait()
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			snap := tel.Snapshot()
			// Latency is sampled 1/16 per recorder; 256 blocking calls per
			// handle guarantee samples on every construction.
			if snap.Latency.Count == 0 {
				t.Error("no latency samples recorded")
			}
			if snap.Latency.Count > goroutines*per {
				t.Errorf("latency samples %d exceed blocking calls %d",
					snap.Latency.Count, goroutines*per)
			}
			// Run-length conservation: every applied operation lands in
			// exactly one dispatch run.
			if got := snap.RunLen.Sum; got != goroutines*per {
				t.Errorf("run-length sum = %d, want %d (one entry per op)", got, goroutines*per)
			}
			if snap.RunLen.Count == 0 || snap.RunLen.Count > goroutines*per {
				t.Errorf("dispatch runs = %d, want within [1, %d]", snap.RunLen.Count, goroutines*per)
			}
			if snap.RunLen.Max == 0 {
				t.Error("run-length max = 0 with ops recorded")
			}
			if snap.Poisons != 0 {
				t.Errorf("healthy run counted %d poisons", snap.Poisons)
			}

			// The executor exposes the same core via TelemetrySource.
			src, ok := ex.(hybsync.TelemetrySource)
			if !ok {
				t.Fatalf("%T does not implement TelemetrySource", ex)
			}
			if src.Telemetry() != tel {
				t.Error("Telemetry() returned a different core than WithTelemetry attached")
			}
		})
	}
}

// TestTelemetryCountsPoison: an object panic must show up as exactly
// one poison event on the attached core.
func TestTelemetryCountsPoison(t *testing.T) {
	for _, name := range []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"} {
		t.Run(name, func(t *testing.T) {
			tel := hybsync.NewTelemetry()
			ex, err := hybsync.New(name, func(op, arg uint64) uint64 {
				panic("telemetry-test fault")
			}, hybsync.WithTelemetry(tel))
			if err != nil {
				t.Fatal(err)
			}
			h, err := ex.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			h.Apply(0, 0)
			if ex.Err() == nil {
				t.Fatal("panicking dispatch did not poison the executor")
			}
			ex.Close() // reports the PoisonError; expected
			if got := tel.Snapshot().Poisons; got != 1 {
				t.Errorf("poisons = %d, want 1", got)
			}
		})
	}
}

// TestTelemetryDisarmedByDefault: without WithTelemetry the executor
// reports a nil core and nothing records (the disarmed contract the
// overhead gate relies on).
func TestTelemetryDisarmedByDefault(t *testing.T) {
	ex := hybsync.MustNew("hybcomb", func(op, arg uint64) uint64 { return 0 })
	defer ex.Close()
	h := hybsync.MustHandle(ex)
	for i := 0; i < 64; i++ {
		h.Apply(0, 0)
	}
	src, ok := ex.(hybsync.TelemetrySource)
	if !ok {
		t.Fatal("executor does not implement TelemetrySource")
	}
	if src.Telemetry() != nil {
		t.Error("disarmed executor reports a non-nil Telemetry")
	}
}

// TestTelemetrySharedAcrossExecutors: one core attached to two
// executors aggregates both (the sharded-bench usage).
func TestTelemetrySharedAcrossExecutors(t *testing.T) {
	tel := hybsync.NewTelemetry()
	var a, b uint64
	exA := hybsync.MustNew("mpserver", func(op, arg uint64) uint64 { a++; return a }, hybsync.WithTelemetry(tel))
	exB := hybsync.MustNew("ccsynch", func(op, arg uint64) uint64 { b++; return b }, hybsync.WithTelemetry(tel))
	ha, hb := hybsync.MustHandle(exA), hybsync.MustHandle(exB)
	const per = 100
	for i := 0; i < per; i++ {
		ha.Apply(0, 0)
		hb.Apply(0, 0)
	}
	exA.Close()
	exB.Close()
	if got := tel.Snapshot().RunLen.Sum; got != 2*per {
		t.Errorf("shared core run-length sum = %d, want %d", got, 2*per)
	}
}
