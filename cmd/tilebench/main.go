// Command tilebench regenerates every table and figure of the paper's
// evaluation (§5) on the tilesim simulated TILE-Gx chip. Each -fig value
// prints the same series the paper plots; DESIGN.md indexes
// paper-vs-measured values.
//
// Usage:
//
//	tilebench -fig all
//	tilebench -fig 3a -horizon 300000 -runs 3
//
// Figures: 3a (counter throughput), 3b (counter latency), 3c (MAX_OPS
// sweep), 4a (servicing-thread stalls), 4b (combining rate), 4c (CS
// length), 5a (queues), 5b (stacks), cas (CAS rate and fairness), x86
// (x86-like profile comparison), ablate-swap, ablate-drain.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (3a,3b,3c,4a,4b,4c,5a,5b,cas,x86,ablate-swap,ablate-drain,locks,tail,all)")
	horizon := flag.Uint64("horizon", 200_000, "simulated cycles per run")
	runs := flag.Int("runs", 3, "runs per data point (seed-perturbed, averaged)")
	maxOps := flag.Int("maxops", 200, "MAX_OPS for the combining algorithms")
	flag.Parse()

	cfg := figConfig{Horizon: *horizon, Runs: *runs, MaxOps: *maxOps}
	figs := map[string]func(figConfig){
		"3a":           fig3a,
		"3b":           fig3b,
		"3c":           fig3c,
		"4a":           fig4a,
		"4b":           fig4b,
		"4c":           fig4c,
		"5a":           fig5a,
		"5b":           fig5b,
		"cas":          figCAS,
		"x86":          figX86,
		"ablate-swap":  figAblateSwap,
		"ablate-drain": figAblateDrain,
		"locks":        figLocks,
		"tail":         figTail,
	}
	order := []string{"3a", "3b", "3c", "4a", "4b", "4c", "5a", "5b", "cas", "x86", "ablate-swap", "ablate-drain", "locks", "tail"}

	switch *fig {
	case "all":
		for _, name := range order {
			figs[name](cfg)
		}
	default:
		f, ok := figs[strings.ToLower(*fig)]
		if !ok {
			fmt.Fprintf(os.Stderr, "tilebench: unknown figure %q (have %s, all)\n", *fig, strings.Join(order, ", "))
			os.Exit(2)
		}
		f(cfg)
	}
}
