package main

import (
	"fmt"
	"os"

	"hybsync/harness"
	"hybsync/sim"
)

// figConfig carries the sweep parameters shared by all figures.
type figConfig struct {
	Horizon uint64
	Runs    int
	MaxOps  int
}

// threadSweep is the x-axis of the thread-count figures. The TILE-Gx8036
// has 36 cores; with one core dedicated to a server, at most 35
// application threads fit (the paper's x-axis).
var threadSweep = []int{1, 2, 3, 5, 7, 10, 14, 17, 20, 24, 28, 31, 35}

// counterBuilders enumerates the four §5.3 approaches over a counter.
func counterBuilders(maxOps int) []*sim.Builder {
	return []*sim.Builder{
		sim.NewMPServerBuilder(sim.CounterFactory),
		sim.NewHybCombBuilder(sim.CounterFactory, maxOps),
		sim.NewSHMServerBuilder(sim.CounterFactory),
		sim.NewCCSynchBuilder(sim.CounterFactory, maxOps),
	}
}

// sweep runs b for every thread count and returns one averaged Result
// per point.
func sweep(cfg figConfig, mk func() *sim.Builder, threads []int,
	opFor func(int, uint64) (uint64, uint64), prof sim.Profile) []sim.Result {
	out := make([]sim.Result, len(threads))
	for i, th := range threads {
		out[i] = average(cfg, mk, th, opFor, prof)
	}
	return out
}

// average runs one data point cfg.Runs times with different seeds and
// averages the scalar statistics.
func average(cfg figConfig, mk func() *sim.Builder, threads int,
	opFor func(int, uint64) (uint64, uint64), prof sim.Profile) sim.Result {
	var acc sim.Result
	for r := 0; r < cfg.Runs; r++ {
		b := mk()
		res := sim.RunWorkload(prof, b, sim.WorkloadCfg{
			Threads:      threads,
			Horizon:      cfg.Horizon,
			MaxLocalWork: 50,
			Seed:         uint64(r + 1),
		}, opFor)
		acc.FreqGHz = res.FreqGHz
		acc.Cycles += res.Cycles
		acc.Ops += res.Ops
		acc.LatencySum += res.LatencySum
		acc.ServiceBusy += res.ServiceBusy
		acc.ServiceStall += res.ServiceStall
		acc.CASAttempts += res.CASAttempts
		acc.CASFailures += res.CASFailures
		acc.AtomicOps += res.AtomicOps
		acc.Rounds += res.Rounds
		acc.Combined += res.Combined
		if acc.PerThreadOps == nil {
			acc.PerThreadOps = make([]uint64, threads)
		}
		for i, n := range res.PerThreadOps {
			acc.PerThreadOps[i] += n
		}
	}
	return acc
}

// fig3a: counter throughput vs number of application threads.
func fig3a(cfg figConfig) {
	t := harness.NewTable("Figure 3a — concurrent counter throughput (Mops/sec)",
		append([]string{"threads"}, builderNames(counterBuilders(cfg.MaxOps))...)...)
	t.Note = fmt.Sprintf("MAX_OPS=%d, local work <=50 iters, horizon %d cycles x %d runs",
		cfg.MaxOps, cfg.Horizon, cfg.Runs)
	cols := make([][]sim.Result, 0, 4)
	for i := range counterBuilders(cfg.MaxOps) {
		i := i
		cols = append(cols, sweep(cfg, func() *sim.Builder { return counterBuilders(cfg.MaxOps)[i] },
			threadSweep, sim.CounterOps, sim.ProfileTileGx()))
	}
	for r, th := range threadSweep {
		t.AddRow(th, cols[0][r].Mops(), cols[1][r].Mops(), cols[2][r].Mops(), cols[3][r].Mops())
	}
	t.Render(os.Stdout)
}

// fig3b: counter latency vs number of application threads.
func fig3b(cfg figConfig) {
	t := harness.NewTable("Figure 3b — concurrent counter latency (cycles)",
		append([]string{"threads"}, builderNames(counterBuilders(cfg.MaxOps))...)...)
	cols := make([][]sim.Result, 0, 4)
	for i := range counterBuilders(cfg.MaxOps) {
		i := i
		cols = append(cols, sweep(cfg, func() *sim.Builder { return counterBuilders(cfg.MaxOps)[i] },
			threadSweep, sim.CounterOps, sim.ProfileTileGx()))
	}
	for r, th := range threadSweep {
		t.AddRow(th, cols[0][r].AvgLatency(), cols[1][r].AvgLatency(), cols[2][r].AvgLatency(), cols[3][r].AvgLatency())
	}
	t.Render(os.Stdout)
}

// fig3c: maximum counter throughput vs allowed combining rate (MAX_OPS).
func fig3c(cfg figConfig) {
	t := harness.NewTable("Figure 3c — impact of the allowed combining rate (35 threads, Mops/sec)",
		"MAX_OPS", "HybComb", "CC-Synch")
	for _, mo := range []int{1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000} {
		mo := mo
		hy := average(cfg, func() *sim.Builder {
			return sim.NewHybCombBuilder(sim.CounterFactory, mo)
		}, 35, sim.CounterOps, sim.ProfileTileGx())
		cc := average(cfg, func() *sim.Builder {
			return sim.NewCCSynchBuilder(sim.CounterFactory, mo)
		}, 35, sim.CounterOps, sim.ProfileTileGx())
		t.AddRow(mo, hy.Mops(), cc.Mops())
	}
	t.Render(os.Stdout)
}

// fig4a: stalled vs total cycles per operation at the servicing thread
// under maximum load. As in the paper (footnote 4), the combining
// algorithms run with a fixed combiner (MAX_OPS=infinity) so a single
// core's counters capture the servicing work.
func fig4a(cfg figConfig) {
	const inf = 1 << 40
	t := harness.NewTable("Figure 4a — CPU stalls at the servicing thread (cycles per operation, 35 threads)",
		"approach", "stalled", "total")
	t.Note = "combiners fixed for the whole run (MAX_OPS=inf), as in the paper's footnote 4"

	type entry struct {
		name string
		mk   func() *sim.Builder
	}
	entries := []entry{
		{"mp-server", func() *sim.Builder { return sim.NewMPServerBuilder(sim.CounterFactory) }},
		{"HybComb", func() *sim.Builder { return sim.NewHybCombBuilder(sim.CounterFactory, inf) }},
		{"shm-server", func() *sim.Builder { return sim.NewSHMServerBuilder(sim.CounterFactory) }},
		{"CC-Synch", func() *sim.Builder { return sim.NewCCSynchBuilder(sim.CounterFactory, inf) }},
	}
	for _, en := range entries {
		var stall, busy, ops float64
		for r := 0; r < cfg.Runs; r++ {
			b := en.mk()
			res := sim.RunWorkload(sim.ProfileTileGx(), b, sim.WorkloadCfg{
				Threads: 35, Horizon: cfg.Horizon, MaxLocalWork: 50, Seed: uint64(r + 1),
			}, sim.CounterOps)
			svc := servicingProc(res)
			stall += float64(svc.StallCycles)
			busy += float64(svc.BusyCycles())
			ops += float64(res.Ops)
		}
		t.AddRow(en.name, stall/ops, busy/ops)
	}
	t.Render(os.Stdout)
}

// servicingProc returns the Proc that executed the critical sections: a
// dedicated server when there is one, otherwise the (fixed) combiner —
// identified as the busiest client.
func servicingProc(res sim.Result) *sim.Proc {
	if len(res.Service) > 0 {
		return res.Service[0]
	}
	var busiest *sim.Proc
	for _, p := range res.Clients {
		if busiest == nil || p.BusyCycles() > busiest.BusyCycles() {
			busiest = p
		}
	}
	return busiest
}

// fig4b: actual combining rate vs thread count.
func fig4b(cfg figConfig) {
	t := harness.NewTable("Figure 4b — actual combining rate (requests per combiner round)",
		"threads", "HybComb", "CC-Synch")
	t.Note = fmt.Sprintf("MAX_OPS=%d", cfg.MaxOps)
	hy := sweep(cfg, func() *sim.Builder { return sim.NewHybCombBuilder(sim.CounterFactory, cfg.MaxOps) },
		threadSweep, sim.CounterOps, sim.ProfileTileGx())
	cc := sweep(cfg, func() *sim.Builder { return sim.NewCCSynchBuilder(sim.CounterFactory, cfg.MaxOps) },
		threadSweep, sim.CounterOps, sim.ProfileTileGx())
	for r, th := range threadSweep {
		t.AddRow(th, hy[r].CombiningRate(), cc[r].CombiningRate())
	}
	t.Render(os.Stdout)
}

// fig4c: average cycles per CS execution as the CS body grows (array
// increments), with the no-synchronization ideal as reference.
func fig4c(cfg figConfig) {
	t := harness.NewTable("Figure 4c — cycles per CS execution vs CS length (35 threads)",
		"iters", "mp-server", "HybComb", "shm-server", "CC-Synch", "ideal")
	prof := sim.ProfileTileGx()
	for _, iters := range []uint64{0, 1, 2, 4, 6, 8, 10, 12, 15, 20, 30, 50} {
		row := []any{iters}
		mks := []func() *sim.Builder{
			func() *sim.Builder { return sim.NewMPServerBuilder(sim.ArrayCounterFactory(64)) },
			func() *sim.Builder { return sim.NewHybCombBuilder(sim.ArrayCounterFactory(64), cfg.MaxOps) },
			func() *sim.Builder { return sim.NewSHMServerBuilder(sim.ArrayCounterFactory(64)) },
			func() *sim.Builder { return sim.NewCCSynchBuilder(sim.ArrayCounterFactory(64), cfg.MaxOps) },
		}
		for _, mk := range mks {
			res := average(cfg, mk, 35, sim.ArrayOps(iters), prof)
			// Cycles per CS at saturation = inverse throughput.
			row = append(row, float64(res.Cycles)/float64(res.Ops))
		}
		// Ideal: the CS body alone on a warm cache (read+write per cell).
		row = append(row, float64(iters)*2*float64(prof.L1Hit))
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}

// fig5a: queue throughput under balanced load, six variants.
func fig5a(cfg figConfig) {
	mks := []func() *sim.Builder{
		func() *sim.Builder {
			b := sim.NewMPServerBuilder(sim.QueueFactory)
			b.Name = "mp-server-1"
			return b
		},
		func() *sim.Builder {
			b := sim.NewHybCombBuilder(sim.QueueFactory, cfg.MaxOps)
			b.Name = "HybComb-1"
			return b
		},
		func() *sim.Builder {
			b := sim.NewSHMServerBuilder(sim.QueueFactory)
			b.Name = "shm-server-1"
			return b
		},
		func() *sim.Builder {
			b := sim.NewCCSynchBuilder(sim.QueueFactory, cfg.MaxOps)
			b.Name = "CC-Synch-1"
			return b
		},
		func() *sim.Builder { return sim.NewLCRQBuilder(1024) },
		sim.NewTwoLockQueueBuilder,
	}
	t := harness.NewTable("Figure 5a — queue throughput under balanced load (Mops/sec)",
		"clients", "mp-server-1", "HybComb-1", "shm-server-1", "CC-Synch-1", "LCRQ", "mp-server-2")
	cols := make([][]sim.Result, len(mks))
	// mp-server-2 uses two server cores, so at most 34 clients fit.
	sweep2 := make([]int, len(threadSweep))
	copy(sweep2, threadSweep)
	sweep2[len(sweep2)-1] = 34
	for i, mk := range mks {
		ts := threadSweep
		if i == len(mks)-1 {
			ts = sweep2
		}
		cols[i] = sweep(cfg, mk, ts, sim.QueueOps, sim.ProfileTileGx())
	}
	for r, th := range threadSweep {
		t.AddRow(th, cols[0][r].Mops(), cols[1][r].Mops(), cols[2][r].Mops(),
			cols[3][r].Mops(), cols[4][r].Mops(), cols[5][r].Mops())
	}
	t.Render(os.Stdout)
}

// fig5b: stack throughput under balanced load, five variants.
func fig5b(cfg figConfig) {
	mks := []func() *sim.Builder{
		func() *sim.Builder { return sim.NewMPServerBuilder(sim.StackFactory) },
		func() *sim.Builder { return sim.NewHybCombBuilder(sim.StackFactory, cfg.MaxOps) },
		func() *sim.Builder { return sim.NewSHMServerBuilder(sim.StackFactory) },
		func() *sim.Builder { return sim.NewCCSynchBuilder(sim.StackFactory, cfg.MaxOps) },
		sim.NewTreiberBuilder,
	}
	t := harness.NewTable("Figure 5b — stack throughput under balanced load (Mops/sec)",
		"clients", "mp-server", "HybComb", "shm-server", "CC-Synch", "Treiber")
	cols := make([][]sim.Result, len(mks))
	for i, mk := range mks {
		cols[i] = sweep(cfg, mk, threadSweep, sim.StackOps, sim.ProfileTileGx())
	}
	for r, th := range threadSweep {
		t.AddRow(th, cols[0][r].Mops(), cols[1][r].Mops(), cols[2][r].Mops(),
			cols[3][r].Mops(), cols[4][r].Mops())
	}
	t.Render(os.Stdout)
}

// figCAS: the §5.3 text measurements — executed CAS per apply_op and the
// fairness ratio across the concurrency spectrum.
func figCAS(cfg figConfig) {
	t := harness.NewTable("§5.3 text — HybComb CAS per op and fairness across concurrency",
		"threads", "CAS/op", "CAS fail/op", "fairness HybComb", "fairness mp-server")
	for _, th := range threadSweep {
		hy := average(cfg, func() *sim.Builder {
			return sim.NewHybCombBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		mp := average(cfg, func() *sim.Builder {
			return sim.NewMPServerBuilder(sim.CounterFactory)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		t.AddRow(th,
			float64(hy.CASAttempts)/float64(hy.Ops),
			float64(hy.CASFailures)/float64(hy.Ops),
			hy.Fairness(), mp.Fairness())
	}
	t.Render(os.Stdout)
}

// figX86: §5.5 — the pure-shared-memory approaches on an x86-like
// profile: lower peak throughput and proportionally more stalls than on
// the TILE-Gx, supporting the paper's claim that hardware message
// passing would help even more there.
func figX86(cfg figConfig) {
	prof := sim.ProfileX86Like()
	maxTh := prof.NumCores() - 1
	t := harness.NewTable("§5.5 — counter on x86-like profile (no hardware messaging)",
		"threads", "shm-server Mops", "CC-Synch Mops", "shm-server stall/op")
	for th := 1; th <= maxTh; th++ {
		th := th
		shm := average(cfg, func() *sim.Builder {
			return sim.NewSHMServerBuilder(sim.CounterFactory)
		}, th, sim.CounterOps, prof)
		cc := average(cfg, func() *sim.Builder {
			return sim.NewCCSynchBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, prof)
		t.AddRow(th, shm.Mops(), cc.Mops(), float64(shm.ServiceStall)/float64(shm.Ops))
	}
	t.Render(os.Stdout)
}

// figAblateSwap: §4.2 design discussion — CAS vs SWAP for combiner
// registration.
func figAblateSwap(cfg figConfig) {
	t := harness.NewTable("Ablation — combiner registration: CAS (paper) vs SWAP (§4.2 discussion)",
		"threads", "CAS Mops", "SWAP Mops", "CAS comb.rate", "SWAP comb.rate")
	for _, th := range []int{5, 15, 25, 35} {
		cas := average(cfg, func() *sim.Builder {
			return sim.NewHybCombBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		swp := average(cfg, func() *sim.Builder {
			b := &sim.Builder{Name: "HybComb-SWAP"}
			b.Make = func(e *sim.Engine, threads int) (sim.Executor, []*sim.Proc, int) {
				h := sim.NewHybComb(e, sim.NewCounter(e), cfg.MaxOps)
				h.SwapRegistration = true
				b.Stats = func() (uint64, uint64) { return h.Rounds, h.Combined }
				return h, nil, 0
			}
			return b
		}, th, sim.CounterOps, sim.ProfileTileGx())
		t.AddRow(th, cas.Mops(), swp.Mops(), cas.CombiningRate(), swp.CombiningRate())
	}
	t.Render(os.Stdout)
}

// figAblateDrain: §4.2 — value of the eager-drain loop (lines 25-28).
func figAblateDrain(cfg figConfig) {
	t := harness.NewTable("Ablation — HybComb eager-drain loop (Algorithm 1 lines 25-28)",
		"threads", "with drain Mops", "no drain Mops", "with comb.rate", "no comb.rate")
	for _, th := range []int{5, 15, 25, 35} {
		with := average(cfg, func() *sim.Builder {
			return sim.NewHybCombBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		without := average(cfg, func() *sim.Builder {
			b := &sim.Builder{Name: "HybComb-NoDrain"}
			b.Make = func(e *sim.Engine, threads int) (sim.Executor, []*sim.Proc, int) {
				h := sim.NewHybComb(e, sim.NewCounter(e), cfg.MaxOps)
				h.NoEagerDrain = true
				b.Stats = func() (uint64, uint64) { return h.Rounds, h.Combined }
				return h, nil, 0
			}
			return b
		}, th, sim.CounterOps, sim.ProfileTileGx())
		t.AddRow(th, with.Mops(), without.Mops(), with.CombiningRate(), without.CombiningRate())
	}
	t.Render(os.Stdout)
}

func builderNames(bs []*sim.Builder) []string {
	out := make([]string, len(bs))
	for i, b := range bs {
		out[i] = b.Name
	}
	return out
}

// figLocks: supplementary — the §3 classic-lock baseline. Under an MCS
// queue lock the CS executes on the acquiring core, migrating the
// object's lines on every operation; the server/combining approaches
// keep them resident at the servicing thread.
func figLocks(cfg figConfig) {
	t := harness.NewTable("Supplementary — MCS queue lock vs CS-migration approaches (counter, Mops/sec)",
		"threads", "mcs-lock", "CC-Synch", "mp-server", "HybComb")
	for _, th := range []int{1, 3, 7, 14, 24, 35} {
		mcs := average(cfg, func() *sim.Builder {
			return sim.NewMCSLockBuilder(sim.CounterFactory)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		cc := average(cfg, func() *sim.Builder {
			return sim.NewCCSynchBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		mp := average(cfg, func() *sim.Builder {
			return sim.NewMPServerBuilder(sim.CounterFactory)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		hy := average(cfg, func() *sim.Builder {
			return sim.NewHybCombBuilder(sim.CounterFactory, cfg.MaxOps)
		}, th, sim.CounterOps, sim.ProfileTileGx())
		t.AddRow(th, mcs.Mops(), cc.Mops(), mp.Mops(), hy.Mops())
	}
	t.Render(os.Stdout)
}

// figTail: supplementary — the latency "hiccups" behind the Figure 3c
// tradeoff: raising MAX_OPS raises HYBCOMB throughput but the thread
// that becomes a combiner occasionally pays a round's worth of latency.
func figTail(cfg figConfig) {
	t := harness.NewTable("Supplementary — latency distribution at 35 threads (cycles)",
		"approach", "p50", "p99", "max", "Mops")
	entries := []struct {
		name string
		mk   func() *sim.Builder
	}{
		{"mp-server", func() *sim.Builder { return sim.NewMPServerBuilder(sim.CounterFactory) }},
		{"HybComb/200", func() *sim.Builder { return sim.NewHybCombBuilder(sim.CounterFactory, 200) }},
		{"HybComb/5000", func() *sim.Builder { return sim.NewHybCombBuilder(sim.CounterFactory, 5000) }},
		{"CC-Synch/200", func() *sim.Builder { return sim.NewCCSynchBuilder(sim.CounterFactory, 200) }},
	}
	for _, en := range entries {
		res := sim.RunWorkload(sim.ProfileTileGx(), en.mk(), sim.WorkloadCfg{
			Threads: 35, Horizon: cfg.Horizon, MaxLocalWork: 50, Seed: 1,
			RecordLatencies: true,
		}, sim.CounterOps)
		t.AddRow(en.name, res.LatencyPercentile(0.50), res.LatencyPercentile(0.99),
			res.LatencyPercentile(1.0), res.Mops())
	}
	t.Render(os.Stdout)
}
