// Command hybsweep is the scenario lab: it enumerates the grid
// algo × threads × shards × dist × depth × batch, runs one
// measurement per valid cell (the same internal/measure cores
// cmd/hybbench uses), and streams one self-contained JSONL record per
// cell — measured, skipped (with a reason), or failed (panic or
// timeout). A ranked per-scenario summary with algorithm crossover
// points goes to stderr, so stdout redirection yields a clean
// BENCH_sweep.jsonl artifact.
//
// Cells whose axis combination the execution model does not define
// are skipped, not errored: depth>1 cells need the scalar uniform
// counter workload (the async window has no keyed or batched
// variant), batch>1 likewise, and depth>1 with batch>1 is exclusive
// by construction. The skip lines keep the grid product honest — a
// consumer can verify every cell was either measured or explicitly
// declined.
//
// GOMAXPROCS is deliberately not an axis: it is process-global, so
// one process measures one setting and records it in every line's
// host context. Sweep files from different GOMAXPROCS runs
// concatenate into one artifact (that is how BENCH_sweep.jsonl is
// built).
//
// Usage:
//
//	hybsweep > sweep.jsonl
//	hybsweep -grid 'algo=mpserver,hybcomb;threads=1,2,4;depth=1,8;batch=1,32'
//	GOMAXPROCS=2 hybsweep -grid 'threads=2,4;shards=1,2;dist=uniform,zipf:0.99'
//	hybsweep -dur 50ms -workers 1 -cell-timeout 30s -out sweep.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"hybsync"
	"hybsync/harness"
	"hybsync/internal/benchfmt"
	"hybsync/internal/measure"
	"hybsync/internal/sweep"
	"hybsync/internal/telemetry/export"
)

// The grid axes in enumeration order. Defaults keep the product small
// enough for a casual run; -grid overrides any subset.
func defaultGrid() (*sweep.Grid, error) {
	return sweep.New(
		sweep.Axis{Name: "algo", Values: []string{"mpserver", "hybcomb", "shmserver", "ccsynch", "mcs-lock"}},
		sweep.Axis{Name: "threads", Values: []string{"1", "2"}},
		sweep.Axis{Name: "shards", Values: []string{"1"}},
		sweep.Axis{Name: "dist", Values: []string{"uniform"}},
		sweep.Axis{Name: "depth", Values: []string{"1"}},
		sweep.Axis{Name: "batch", Values: []string{"1"}},
	)
}

// Skip reasons for grid corners the execution model does not define.
const (
	skipBatchDepth  = "batch-and-depth-exclusive"
	skipAsyncKeyed  = "async-over-keyed-unsupported"
	skipBatchKeyed  = "batch-over-keyed-unsupported"
	skipPhaseAsync  = "phases-over-async-unsupported"
	skipPhaseBatch  = "phases-over-batch-unsupported"
	skipPhaseShards = "phases-over-sharded-unsupported"
)

// cellAxes is one cell's decoded bindings.
type cellAxes struct {
	algo    string
	threads int
	shards  int
	dist    string
	depth   int
	batch   int
}

func decode(c sweep.Cell) (cellAxes, error) {
	var a cellAxes
	var err error
	a.algo = c.Get("algo")
	a.dist = c.Get("dist")
	if a.threads, err = c.Int("threads"); err != nil {
		return a, err
	}
	if a.shards, err = c.Int("shards"); err != nil {
		return a, err
	}
	if a.depth, err = c.Int("depth"); err != nil {
		return a, err
	}
	if a.batch, err = c.Int("batch"); err != nil {
		return a, err
	}
	return a, nil
}

// classify maps a cell to its bench leg, or to a skip reason when the
// combination is undefined. A cell is keyed when it shards the object
// or skews the key distribution; the async and batch legs drive the
// scalar uniform counter workload only. A phase:... dist value is not
// a key distribution at all — it selects the phase-shifting leg, which
// drives the scalar blocking counter workload only.
func (a cellAxes) classify() (bench, skip string) {
	if harness.IsPhaseSpec(a.dist) {
		switch {
		case a.depth > 1:
			return "", skipPhaseAsync
		case a.batch > 1:
			return "", skipPhaseBatch
		case a.shards > 1:
			return "", skipPhaseShards
		default:
			return "phases", ""
		}
	}
	keyed := a.shards > 1 || a.dist != "uniform"
	switch {
	case a.depth > 1 && a.batch > 1:
		return "", skipBatchDepth
	case a.depth > 1 && keyed:
		return "", skipAsyncKeyed
	case a.batch > 1 && keyed:
		return "", skipBatchKeyed
	case a.depth > 1:
		return "async", ""
	case a.batch > 1:
		return "batch", ""
	case keyed:
		return "sharded", ""
	default:
		return "counter", ""
	}
}

func main() {
	gridFlag := flag.String("grid", "", "axis overrides, e.g. 'algo=mpserver,hybcomb;threads=1,2,4;depth=1,8;batch=1,32' (axes: algo, threads, shards, dist, depth, batch)")
	dur := flag.Duration("dur", 100*time.Millisecond, "measurement duration per cell")
	keys := flag.Uint64("keys", 1<<16, "key-space size for keyed (sharded/zipf) cells")
	workers := flag.Int("workers", 1, "worker-pool size; >1 runs cells concurrently, which distorts throughput numbers — use for exploratory sweeps only")
	cellTimeout := flag.Duration("cell-timeout", 60*time.Second, "hard per-cell timeout; a cell exceeding it is recorded as failed and its goroutine abandoned")
	out := flag.String("out", "-", "JSONL destination ('-' = stdout)")
	telFlag := flag.Bool("telemetry", true, "arm per-executor telemetry: cell records carry latency_ns/run_len fields (false = disarmed hot path, for overhead-sensitive gating)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/hybsync and /debug/vars on this address (e.g. localhost:6060) for the sweep's duration")
	flag.Parse()

	measure.SetTelemetry(*telFlag)
	if *debugAddr != "" {
		addr, err := export.Start(*debugAddr)
		if err != nil {
			fatalf("-debug-addr: %v", err)
		}
		fmt.Fprintf(os.Stderr, "hybsweep: telemetry at http://%s/debug/hybsync\n", addr)
	}

	grid, err := defaultGrid()
	if err != nil {
		fatalf("%v", err)
	}
	if *gridFlag != "" {
		if err := grid.ParseOverrides(*gridFlag); err != nil {
			fatalf("-grid: %v", err)
		}
	}

	// Validate every axis value before any cell runs: numeric axes
	// parse as positive ints, algos resolve against the registry, and
	// dist labels parse once into shared samplers.
	for _, axis := range []string{"threads", "shards", "depth", "batch"} {
		if _, err := grid.IntAxis(axis); err != nil {
			fatalf("-grid: %v", err)
		}
	}
	registered := make(map[string]bool)
	for _, name := range hybsync.Algorithms() {
		registered[name] = true
	}
	algoValues, _ := grid.Values("algo")
	for _, name := range algoValues {
		if !registered[name] {
			fatalf("-grid: unknown algorithm %q (have: %s)", name, strings.Join(hybsync.Algorithms(), ", "))
		}
	}
	distValues, _ := grid.Values("dist")
	dists := make(map[string]harness.Dist, len(distValues))
	phases := make(map[string]harness.Phases)
	for _, label := range distValues {
		if harness.IsPhaseSpec(label) {
			p, err := harness.ParsePhases(label)
			if err != nil {
				fatalf("-grid: dist %q: %v", label, err)
			}
			phases[label] = p
			continue
		}
		d, err := harness.ParseDist(label, *keys)
		if err != nil {
			fatalf("-grid: dist %q: %v", label, err)
		}
		dists[label] = d
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		w = f
	}
	jsonl := sweep.NewJSONLWriter(w)
	host := benchfmt.CurrentHost()

	runner := &sweep.Runner{
		Workers: *workers,
		Timeout: *cellTimeout,
		// A timed-out cell's goroutine is abandoned, but the executor it
		// was driving must not wedge forever: poisoning every live
		// tracked executor completes the abandoned cell's waiters with
		// ErrPoisoned and lets its server goroutines drain and exit.
		// (With Workers > 1 this also condemns concurrently-running
		// cells — their records fail loudly rather than silently skew.)
		OnTimeout: func(c sweep.Cell) {
			if n := measure.PoisonLive(fmt.Sprintf("hybsweep: cell %s exceeded -cell-timeout", c)); n > 0 {
				fmt.Fprintf(os.Stderr, "hybsweep: cell %s timed out; poisoned %d live executor(s)\n", c, n)
			}
		},
		Check: func(c sweep.Cell) string {
			a, err := decode(c)
			if err != nil {
				return "" // let Run surface the decode error as a failure
			}
			_, skip := a.classify()
			return skip
		},
		Run: func(c sweep.Cell) (any, error) {
			a, err := decode(c)
			if err != nil {
				return nil, err
			}
			bench, _ := a.classify()
			switch bench {
			case "counter":
				return measure.Counter(a.algo, a.threads, *dur)
			case "sharded":
				return measure.Sharded(a.algo, a.shards, dists[a.dist], a.threads, *dur)
			case "async":
				return measure.Async(a.algo, a.depth, a.threads, *dur)
			case "batch":
				return measure.Batch(a.algo, a.batch, a.threads, *dur)
			case "phases":
				return measure.Phases(a.algo, phases[a.dist], a.threads, *dur)
			default:
				return nil, fmt.Errorf("cell %s: no bench leg", c)
			}
		},
	}

	cells := grid.Cells()
	start := time.Now()
	var measuredRecs []benchfmt.SweepRecord
	var writeErr error
	measured, skipped, failed := runner.Sweep(cells, func(res sweep.Result) {
		rec := benchfmt.SweepRecord{
			SchemaVersion: benchfmt.SchemaVersion,
			Host:          host,
			Cell:          res.Cell.Index,
			ElapsedMs:     float64(res.Elapsed.Microseconds()) / 1e3,
		}
		switch {
		case res.Skip != "":
			rec.Skip = res.Skip
		case res.Err != nil:
			rec.Error = res.Err.Error()
			fmt.Fprintf(os.Stderr, "hybsweep: cell %d (%s) FAILED: %v\n", res.Cell.Index, res.Cell, res.Err)
		default:
			rec.Record = res.Value.(benchfmt.Record)
		}
		if rec.Bench == "" {
			// Skipped and failed cells still describe themselves: axis
			// fields from the cell, no throughput fields.
			if a, err := decode(res.Cell); err == nil {
				rec.Algo, rec.Threads = a.algo, a.threads
				rec.Shards, rec.Dist = a.shards, a.dist
				rec.Depth, rec.Batch = a.depth, a.batch
			}
		} else {
			// Measured cells: make every axis explicit so each line is
			// self-contained for cell-keyed consumers (benchguard).
			if a, err := decode(res.Cell); err == nil {
				rec.Shards, rec.Dist = a.shards, a.dist
				rec.Depth, rec.Batch = a.depth, a.batch
			}
			measuredRecs = append(measuredRecs, rec)
		}
		rec.Finish()
		if err := jsonl.Write(rec); err != nil && writeErr == nil {
			writeErr = err
		}
	})
	if writeErr != nil {
		fatalf("writing JSONL: %v", writeErr)
	}
	if err := jsonl.Flush(); err != nil {
		fatalf("flushing JSONL: %v", err)
	}

	fmt.Fprintf(os.Stderr, "hybsweep: %d cells (GOMAXPROCS=%d): %d measured, %d skipped, %d failed in %v\n",
		len(cells), host.GoMaxProcs, measured, skipped, failed, time.Since(start).Round(time.Millisecond))
	summarize(os.Stderr, measuredRecs)
	if failed > 0 {
		os.Exit(1)
	}
}

// scenario identifies one ranking group: every axis except algo.
type scenario struct {
	bench   string
	threads int
	shards  int
	dist    string
	depth   int
	batch   int
}

func (s scenario) String() string {
	return fmt.Sprintf("%s t=%d s=%d %s d=%d b=%d", s.bench, s.threads, s.shards, s.dist, s.depth, s.batch)
}

// series is a scenario minus the thread axis — the unit of crossover
// analysis.
type series struct {
	bench  string
	shards int
	dist   string
	depth  int
	batch  int
}

func (s series) String() string {
	return fmt.Sprintf("%s s=%d %s d=%d b=%d", s.bench, s.shards, s.dist, s.depth, s.batch)
}

// summarize prints the ranked per-scenario view (every algorithm
// ordered by throughput within each cell group) and the crossover
// report (the thread counts at which the best algorithm changes —
// the paper's central claim made visible: delegation overtakes
// locking as contention grows).
func summarize(w *os.File, recs []benchfmt.SweepRecord) {
	if len(recs) == 0 {
		return
	}
	groups := map[scenario][]benchfmt.SweepRecord{}
	for _, r := range recs {
		key := scenario{r.Bench, r.Threads, r.Shards, r.Dist, r.Depth, r.Batch}
		groups[key] = append(groups[key], r)
	}
	keys := make([]scenario, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.bench != b.bench {
			return a.bench < b.bench
		}
		if a.shards != b.shards {
			return a.shards < b.shards
		}
		if a.dist != b.dist {
			return a.dist < b.dist
		}
		if a.depth != b.depth {
			return a.depth < b.depth
		}
		if a.batch != b.batch {
			return a.batch < b.batch
		}
		return a.threads < b.threads
	})

	fmt.Fprintln(w, "ranked by Mops within each scenario:")
	for _, k := range keys {
		g := groups[k]
		sort.Slice(g, func(i, j int) bool { return g[i].Mops > g[j].Mops })
		parts := make([]string, len(g))
		for i, r := range g {
			parts[i] = fmt.Sprintf("%s %.2f", r.Algo, r.Mops)
		}
		fmt.Fprintf(w, "  %-40s %s\n", k.String()+":", strings.Join(parts, " > "))
	}

	// Crossovers: walk each series by ascending thread count and
	// report where the winner changes.
	best := map[series]map[int]string{}
	for k, g := range groups {
		top := g[0]
		for _, r := range g[1:] {
			if r.Mops > top.Mops {
				top = r
			}
		}
		sk := series{k.bench, k.shards, k.dist, k.depth, k.batch}
		if best[sk] == nil {
			best[sk] = map[int]string{}
		}
		best[sk][k.threads] = top.Algo
	}
	seriesKeys := make([]series, 0, len(best))
	for k := range best {
		if len(best[k]) > 1 {
			seriesKeys = append(seriesKeys, k)
		}
	}
	sort.Slice(seriesKeys, func(i, j int) bool { return seriesKeys[i].String() < seriesKeys[j].String() })
	fmt.Fprintln(w, "crossovers (best algo by thread count):")
	any := false
	for _, sk := range seriesKeys {
		byThread := best[sk]
		threads := make([]int, 0, len(byThread))
		for t := range byThread {
			threads = append(threads, t)
		}
		sort.Ints(threads)
		var steps []string
		prev := ""
		changed := false
		for _, t := range threads {
			algo := byThread[t]
			if algo != prev {
				steps = append(steps, fmt.Sprintf("%s (t=%d)", algo, t))
				if prev != "" {
					changed = true
				}
				prev = algo
			}
		}
		if changed {
			any = true
			fmt.Fprintf(w, "  %-32s %s\n", sk.String()+":", strings.Join(steps, " -> "))
		}
	}
	if !any {
		fmt.Fprintln(w, "  (none: one algorithm dominates every series at the measured thread counts)")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hybsweep: "+format+"\n", args...)
	os.Exit(1)
}
