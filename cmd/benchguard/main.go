// Command benchguard compares fresh benchmark runs against a committed
// baseline file and fails loudly when cost regresses beyond a
// tolerance — the CI guard that keeps the batch and pipeline machinery
// from taxing the measured paths.
//
// It has two modes sharing one comparison engine (median of N runs per
// point, fractional ns/op tolerance, missing points are failures):
//
// Report mode (default) guards the blocking t=1 path of a hybbench
// -json envelope:
//
//	hybbench -bench counter -threads 1 -json > run1.json   (repeat)
//	benchguard -baseline BENCH_native.json -bench counter -threads 1 \
//	    -max-regress 0.10 run1.json run2.json run3.json
//
// Sweep mode (-sweep) guards cells of a hybsweep JSONL artifact, so CI
// gates the async (depth>1), batch (batch>1) and GOMAXPROCS>1 legs
// instead of only the scalar single-thread path. Records are keyed by
// the full cell identity (bench, algo, threads, shards, dist, depth,
// batch, path, gomaxprocs); -where clauses select which baseline cells
// to gate, and every selected cell must appear in the candidates:
//
//	GOMAXPROCS=2 hybsweep -grid '...' > run1.jsonl          (repeat)
//	benchguard -sweep -baseline BENCH_sweep.jsonl -max-regress 0.40 \
//	    -where 'gomaxprocs=2' -where 'depth>1' -where 'algo=mpserver,hybcomb' \
//	    run1.jsonl run2.jsonl run3.jsonl
//
// A -where clause is `field OP value`: OP one of = != > >= < <=, with
// numeric fields (threads, shards, depth, batch, gomaxprocs, numcpu)
// supporting all six and string fields (bench, algo, dist, path, skip)
// supporting = and != where `=` against a comma-separated list means
// "is one of". Clauses AND together. Skipped/failed baseline cells are
// never gated.
//
// Sweep mode can also gate one algorithm AGAINST ANOTHER instead of
// against its own history: -vs 'hybrid=mcs-lock' pairs each selected
// mcs-lock cell with the hybrid cell at the same scenario (same bench,
// threads, shards, dist, depth, batch, path, gomaxprocs) and fails if
// the candidate algorithm's median ns/op exceeds the baseline
// algorithm's by more than the tolerance. This is how CI enforces the
// adaptive hybrid's "within 10% of the best lock at one thread" claim:
//
//	benchguard -sweep -vs 'hybrid=mcs-lock' -max-regress 0.10 \
//	    -where 'threads=1' -baseline run1.jsonl run1.jsonl run2.jsonl run3.jsonl
//
// For every selected point the candidate ns/op is the MEDIAN across
// the given run files (run an odd number, three is typical, so one
// noisy run cannot fail or pass the gate alone). Exit status 1 means
// at least one point regressed more than -max-regress relative to the
// baseline or went missing; extra candidate points are ignored.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"hybsync/internal/benchfmt"
)

// whereFlags accumulates repeated -where clauses.
type whereFlags []string

func (w *whereFlags) String() string { return strings.Join(*w, " && ") }
func (w *whereFlags) Set(s string) error {
	*w = append(*w, s)
	return nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_native.json", "committed baseline file (hybbench report, or sweep JSONL with -sweep)")
	sweepMode := flag.Bool("sweep", false, "baseline and candidates are hybsweep JSONL artifacts gated per cell")
	var where whereFlags
	flag.Var(&where, "where", "sweep mode: cell selector like 'depth>1' or 'algo=mpserver,hybcomb' (repeatable, ANDed)")
	vs := flag.String("vs", "", "sweep mode: cross-algorithm gate 'candidate=baseline' (e.g. 'hybrid=mcs-lock'): compare the candidate algo's cells against the baseline algo's at the same scenario instead of against history")
	bench := flag.String("bench", "counter", "report mode: bench name to compare")
	threads := flag.Int("threads", 1, "report mode: thread count to compare (1 = the blocking round-trip path)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional ns/op regression vs baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: need at least one candidate run file")
		os.Exit(2)
	}

	var failed bool
	var err error
	if *sweepMode {
		failed, err = guardSweep(*baselinePath, flag.Args(), where, *vs, *maxRegress)
	} else {
		if len(where) > 0 || *vs != "" {
			err = fmt.Errorf("-where and -vs require -sweep")
		} else {
			failed, err = guardReport(*baselinePath, flag.Args(), *bench, *threads, *maxRegress)
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(2)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — median regressed more than %.0f%% vs %s (or points missing)\n",
			*maxRegress*100, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

// compare runs the shared gate: for every baseline point, the median
// of the candidate samples vs the tolerance. Returns true when any
// point failed.
func compare(baseline map[string]float64, candidates map[string][]float64, maxRegress float64) bool {
	keys := make([]string, 0, len(baseline))
	for k := range baseline {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	failed := false
	for _, key := range keys {
		runs := candidates[key]
		if len(runs) == 0 {
			fmt.Printf("  %-56s baseline %10.1f ns/op  candidate MISSING\n", key, baseline[key])
			failed = true
			continue
		}
		med := median(runs)
		delta := (med - baseline[key]) / baseline[key]
		status := "ok"
		if delta > maxRegress {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-56s baseline %10.1f ns/op  median %10.1f ns/op  %+6.1f%%  %s\n",
			key, baseline[key], med, delta*100, status)
	}
	return failed
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

// ---- report mode ----

// loadReport reads one hybbench -json report.
func loadReport(path string) (benchfmt.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return benchfmt.Report{}, err
	}
	defer f.Close()
	rep, err := benchfmt.ReadReport(f)
	if err != nil {
		return benchfmt.Report{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// pick returns the ns/op of every (bench, threads) record by algorithm.
func pick(r benchfmt.Report, bench string, threads int) map[string]float64 {
	out := map[string]float64{}
	for _, res := range r.Results {
		if res.Bench == bench && res.Threads == threads && res.NsPerOp > 0 {
			out[res.Algo] = res.NsPerOp
		}
	}
	return out
}

func guardReport(baselinePath string, candidatePaths []string, bench string, threads int, maxRegress float64) (bool, error) {
	base, err := loadReport(baselinePath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	baseline := pick(base, bench, threads)
	if len(baseline) == 0 {
		return false, fmt.Errorf("baseline has no (%s, threads=%d) records", bench, threads)
	}
	candidates := map[string][]float64{}
	for _, path := range candidatePaths {
		r, err := loadReport(path)
		if err != nil {
			return false, err
		}
		for algo, ns := range pick(r, bench, threads) {
			candidates[algo] = append(candidates[algo], ns)
		}
	}
	fmt.Printf("benchguard: %s threads=%d, median of %d run(s) vs %s (tolerance +%.0f%%)\n",
		bench, threads, len(candidatePaths), baselinePath, maxRegress*100)
	return compare(baseline, candidates, maxRegress), nil
}

// ---- sweep mode ----

// cellKey is the full identity of a sweep cell, so gating never
// conflates two scenarios that share an algorithm.
func cellKey(r benchfmt.SweepRecord) string {
	return fmt.Sprintf("%s/%s t=%d s=%d %s d=%d b=%d %s gmp=%d",
		r.Bench, r.Algo, r.Threads, r.Shards, r.Dist, r.Depth, r.Batch, r.Path, r.GoMaxProcs)
}

func loadSweep(path string) ([]benchfmt.SweepRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := benchfmt.ReadSweep(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return recs, nil
}

// scenarioKey is cellKey minus the algorithm — the pairing identity of
// the -vs cross-algorithm gate.
func scenarioKey(r benchfmt.SweepRecord) string {
	return fmt.Sprintf("%s t=%d s=%d %s d=%d b=%d %s gmp=%d",
		r.Bench, r.Threads, r.Shards, r.Dist, r.Depth, r.Batch, r.Path, r.GoMaxProcs)
}

func guardSweep(baselinePath string, candidatePaths []string, where whereFlags, vs string, maxRegress float64) (bool, error) {
	sel, err := parseClauses(where)
	if err != nil {
		return false, err
	}
	candAlgo, baseAlgo := "", ""
	if vs != "" {
		var ok bool
		if candAlgo, baseAlgo, ok = strings.Cut(vs, "="); !ok || candAlgo == "" || baseAlgo == "" {
			return false, fmt.Errorf("bad -vs %q (want candidate=baseline, e.g. hybrid=mcs-lock)", vs)
		}
	}
	// In -vs mode the baseline algo's cells anchor each scenario and the
	// candidate algo's cells are gated against them; the key drops the
	// algo so the two pair up. Otherwise cells gate against their own
	// history under the full cell identity.
	key := cellKey
	if vs != "" {
		key = scenarioKey
	}
	base, err := loadSweep(baselinePath)
	if err != nil {
		return false, fmt.Errorf("baseline: %w", err)
	}
	baseline := map[string]float64{}
	for _, r := range base {
		if r.Skip != "" || r.Error != "" || r.NsPerOp <= 0 {
			continue
		}
		if vs != "" && r.Algo != baseAlgo {
			continue
		}
		if sel.match(r) {
			baseline[key(r)] = r.NsPerOp
		}
	}
	if len(baseline) == 0 {
		return false, fmt.Errorf("baseline %s has no measured cells matching %q", baselinePath, where.String())
	}
	candidates := map[string][]float64{}
	for _, path := range candidatePaths {
		recs, err := loadSweep(path)
		if err != nil {
			return false, err
		}
		for _, r := range recs {
			if r.Skip != "" || r.Error != "" || r.NsPerOp <= 0 {
				continue
			}
			if vs != "" && r.Algo != candAlgo {
				continue
			}
			candidates[key(r)] = append(candidates[key(r)], r.NsPerOp)
		}
	}
	if vs != "" {
		fmt.Printf("benchguard: sweep %s vs %s where [%s], median of %d run(s), baseline %s (tolerance +%.0f%%)\n",
			candAlgo, baseAlgo, where.String(), len(candidatePaths), baselinePath, maxRegress*100)
	} else {
		fmt.Printf("benchguard: sweep cells where [%s], median of %d run(s) vs %s (tolerance +%.0f%%)\n",
			where.String(), len(candidatePaths), baselinePath, maxRegress*100)
	}
	return compare(baseline, candidates, maxRegress), nil
}

// ---- -where clause parsing and matching ----

type clause struct {
	field string
	op    string
	value string
}

type selector []clause

var clauseOps = []string{">=", "<=", "!=", ">", "<", "="} // two-char ops first

func parseClauses(specs []string) (selector, error) {
	var sel selector
	for _, spec := range specs {
		spec = strings.TrimSpace(spec)
		var c clause
		found := false
		for _, op := range clauseOps {
			if i := strings.Index(spec, op); i > 0 {
				c = clause{
					field: strings.TrimSpace(spec[:i]),
					op:    op,
					value: strings.TrimSpace(spec[i+len(op):]),
				}
				found = true
				break
			}
		}
		if !found || c.value == "" {
			return nil, fmt.Errorf("bad -where clause %q (want field OP value, OP in = != > >= < <=)", spec)
		}
		if _, _, numeric := fieldOf(benchfmt.SweepRecord{}, c.field); !numeric && c.op != "=" && c.op != "!=" {
			return nil, fmt.Errorf("-where %q: string field %q supports only = and !=", spec, c.field)
		}
		sel = append(sel, c)
	}
	return sel, nil
}

// fieldOf resolves a -where field name against a record, returning its
// numeric or string value and whether the field is numeric. Unknown
// fields resolve as non-numeric "" (so a typo fails the = match
// loudly rather than silently selecting everything).
func fieldOf(r benchfmt.SweepRecord, name string) (num int, str string, numeric bool) {
	switch name {
	case "threads":
		return r.Threads, "", true
	case "shards":
		return r.Shards, "", true
	case "depth":
		return r.Depth, "", true
	case "batch":
		return r.Batch, "", true
	case "gomaxprocs":
		return r.GoMaxProcs, "", true
	case "numcpu":
		return r.NumCPU, "", true
	case "cell":
		return r.Cell, "", true
	case "bench":
		return 0, r.Bench, false
	case "algo":
		return 0, r.Algo, false
	case "dist":
		return 0, r.Dist, false
	case "path":
		return 0, r.Path, false
	case "skip":
		return 0, r.Skip, false
	default:
		return 0, "", false
	}
}

func (s selector) match(r benchfmt.SweepRecord) bool {
	for _, c := range s {
		num, str, numeric := fieldOf(r, c.field)
		if numeric {
			want, err := strconv.Atoi(c.value)
			if err != nil {
				return false
			}
			ok := false
			switch c.op {
			case "=":
				ok = num == want
			case "!=":
				ok = num != want
			case ">":
				ok = num > want
			case ">=":
				ok = num >= want
			case "<":
				ok = num < want
			case "<=":
				ok = num <= want
			}
			if !ok {
				return false
			}
			continue
		}
		// String field: '=' against a comma-separated list is "is one
		// of"; '!=' is "is none of".
		inList := false
		for _, v := range strings.Split(c.value, ",") {
			if str == strings.TrimSpace(v) {
				inList = true
				break
			}
		}
		if (c.op == "=" && !inList) || (c.op == "!=" && inList) {
			return false
		}
	}
	return true
}
