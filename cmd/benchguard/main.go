// Command benchguard compares fresh hybbench -json runs against a
// committed baseline file and fails loudly when the blocking-path cost
// regresses beyond a tolerance — the CI guard that keeps the batch and
// pipeline machinery from taxing the plain Apply round trip.
//
// Usage:
//
//	hybbench -bench counter -threads 1 -json > run1.json   (repeat)
//	benchguard -baseline BENCH_native.json -bench counter -threads 1 \
//	    -max-regress 0.10 run1.json run2.json run3.json
//
// For every algorithm the baseline has a (bench, threads) record for,
// the candidate ns/op is the MEDIAN across the given run files (run an
// odd number, three is typical, so one noisy run cannot fail or pass
// the gate alone). Exit status 1 means at least one algorithm
// regressed more than -max-regress relative to the baseline; missing
// algorithms in the candidates are an error, extra ones are ignored.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// result mirrors the hybbench jsonResult fields the guard consumes.
type result struct {
	Bench   string  `json:"bench"`
	Algo    string  `json:"algo"`
	Threads int     `json:"threads"`
	NsPerOp float64 `json:"ns_per_op"`
}

type report struct {
	Results []result `json:"results"`
}

// load reads one hybbench -json report.
func load(path string) (report, error) {
	var r report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// pick returns the ns/op of every (bench, threads) record by algorithm.
func pick(r report, bench string, threads int) map[string]float64 {
	out := map[string]float64{}
	for _, res := range r.Results {
		if res.Bench == bench && res.Threads == threads && res.NsPerOp > 0 {
			out[res.Algo] = res.NsPerOp
		}
	}
	return out
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_native.json", "committed baseline report")
	bench := flag.String("bench", "counter", "bench name to compare")
	threads := flag.Int("threads", 1, "thread count to compare (1 = the blocking round-trip path)")
	maxRegress := flag.Float64("max-regress", 0.10, "maximum allowed fractional ns/op regression vs baseline")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: need at least one candidate run file")
		os.Exit(2)
	}

	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: baseline: %v\n", err)
		os.Exit(2)
	}
	baseline := pick(base, *bench, *threads)
	if len(baseline) == 0 {
		fmt.Fprintf(os.Stderr, "benchguard: baseline has no (%s, threads=%d) records\n", *bench, *threads)
		os.Exit(2)
	}

	candidates := map[string][]float64{}
	for _, path := range flag.Args() {
		r, err := load(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(2)
		}
		for algo, ns := range pick(r, *bench, *threads) {
			candidates[algo] = append(candidates[algo], ns)
		}
	}

	algos := make([]string, 0, len(baseline))
	for algo := range baseline {
		algos = append(algos, algo)
	}
	sort.Strings(algos)

	fmt.Printf("benchguard: %s threads=%d, median of %d run(s) vs %s (tolerance +%.0f%%)\n",
		*bench, *threads, flag.NArg(), *baselinePath, *maxRegress*100)
	failed := false
	for _, algo := range algos {
		runs := candidates[algo]
		if len(runs) == 0 {
			fmt.Printf("  %-12s baseline %8.1f ns/op  candidate MISSING\n", algo, baseline[algo])
			failed = true
			continue
		}
		med := median(runs)
		delta := (med - baseline[algo]) / baseline[algo]
		status := "ok"
		if delta > *maxRegress {
			status = "REGRESSED"
			failed = true
		}
		fmt.Printf("  %-12s baseline %8.1f ns/op  median %8.1f ns/op  %+6.1f%%  %s\n",
			algo, baseline[algo], med, delta*100, status)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchguard: FAIL — blocking-path median regressed more than %.0f%% vs %s\n",
			*maxRegress*100, *baselinePath)
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}
