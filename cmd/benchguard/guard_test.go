package main

import (
	"encoding/json"
	"os"
	"testing"

	"hybsync/internal/benchfmt"
)

func rec(bench, algo string, threads, shards, depth, batch, gmp int, dist, path string) benchfmt.SweepRecord {
	return benchfmt.SweepRecord{
		Host: benchfmt.Host{GoMaxProcs: gmp},
		Record: benchfmt.Record{
			Bench: bench, Algo: algo, Threads: threads, Shards: shards,
			Depth: depth, Batch: batch, Dist: dist, Path: path,
		},
	}
}

func TestParseClauses(t *testing.T) {
	sel, err := parseClauses([]string{"depth>1", "algo=mpserver,hybcomb", " gomaxprocs = 2 ", "dist!=zipf:0.99"})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 4 {
		t.Fatalf("got %d clauses", len(sel))
	}
	for _, bad := range []string{"depth", "depth>", "=1", "algo>mpserver", "bench<counter"} {
		if _, err := parseClauses([]string{bad}); err == nil {
			t.Errorf("clause %q accepted", bad)
		}
	}
}

func TestSelectorMatch(t *testing.T) {
	async := rec("async", "mpserver", 2, 1, 4, 1, 2, "uniform", "")
	batch := rec("batch", "hybcomb", 1, 1, 1, 32, 1, "uniform", benchfmt.PathBatch)
	sharded := rec("sharded", "ccsynch", 4, 2, 1, 1, 2, "zipf:0.99", "")

	cases := []struct {
		clauses []string
		r       benchfmt.SweepRecord
		want    bool
	}{
		{[]string{"depth>1"}, async, true},
		{[]string{"depth>1"}, batch, false},
		{[]string{"depth>1", "gomaxprocs=2"}, async, true},
		{[]string{"depth>1", "gomaxprocs=1"}, async, false},
		{[]string{"batch>1", "path=batch"}, batch, true},
		{[]string{"algo=mpserver,hybcomb"}, batch, true},
		{[]string{"algo=mpserver,hybcomb"}, sharded, false},
		{[]string{"dist!=uniform"}, sharded, true},
		{[]string{"threads<=2"}, sharded, false},
		{[]string{"shards=2", "bench=sharded"}, sharded, true},
		// Unknown field never matches '=' (typos select nothing).
		{[]string{"depht=4"}, async, false},
	}
	for _, tc := range cases {
		sel, err := parseClauses(tc.clauses)
		if err != nil {
			t.Fatalf("%v: %v", tc.clauses, err)
		}
		if got := sel.match(tc.r); got != tc.want {
			t.Errorf("match(%v, %s/%s) = %v, want %v", tc.clauses, tc.r.Bench, tc.r.Algo, got, tc.want)
		}
	}
}

func TestCompare(t *testing.T) {
	baseline := map[string]float64{"a": 100, "b": 100, "c": 100}
	candidates := map[string][]float64{
		"a": {105, 90, 108},  // median 105, +5% — ok at 10%
		"b": {200, 115, 111}, // median 115, +15% — regressed
		// c missing
	}
	if !compare(baseline, candidates, 0.10) {
		t.Fatal("regression and missing point not flagged")
	}
	delete(baseline, "c")
	candidates["b"] = []float64{105, 90, 100}
	if compare(baseline, candidates, 0.10) {
		t.Fatal("clean candidates flagged")
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Fatalf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Fatalf("even median = %v", m)
	}
}

func TestScenarioKeyPairsAcrossAlgos(t *testing.T) {
	lock := rec("phases", "mcs-lock", 1, 1, 1, 1, 2, "phase:5ms:0.5", "")
	hyb := rec("phases", "hybrid", 1, 1, 1, 1, 2, "phase:5ms:0.5", "")
	if scenarioKey(lock) != scenarioKey(hyb) {
		t.Fatalf("same scenario, different keys: %q vs %q", scenarioKey(lock), scenarioKey(hyb))
	}
	other := rec("phases", "hybrid", 2, 1, 1, 1, 2, "phase:5ms:0.5", "")
	if scenarioKey(lock) == scenarioKey(other) {
		t.Fatalf("different thread counts share key %q", scenarioKey(lock))
	}
}

func TestGuardSweepVs(t *testing.T) {
	write := func(name string, recs []benchfmt.SweepRecord) string {
		path := t.TempDir() + "/" + name
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		enc := json.NewEncoder(f)
		for _, r := range recs {
			if err := enc.Encode(r); err != nil {
				t.Fatal(err)
			}
		}
		return path
	}
	withNs := func(r benchfmt.SweepRecord, ns float64) benchfmt.SweepRecord {
		r.NsPerOp = ns
		return r
	}
	lock1 := rec("counter", "mcs-lock", 1, 1, 1, 1, 1, "uniform", "")
	lock4 := rec("counter", "mcs-lock", 4, 1, 1, 1, 1, "uniform", "")
	hyb1 := rec("counter", "hybrid", 1, 1, 1, 1, 1, "uniform", "")
	hyb4 := rec("counter", "hybrid", 4, 1, 1, 1, 1, "uniform", "")

	// hybrid within 10% of mcs-lock at t=1, way faster at t=4: passes.
	runs := write("runs.jsonl", []benchfmt.SweepRecord{
		withNs(lock1, 100), withNs(hyb1, 105),
		withNs(lock4, 400), withNs(hyb4, 120),
	})
	failed, err := guardSweep(runs, []string{runs}, nil, "hybrid=mcs-lock", 0.10)
	if err != nil || failed {
		t.Fatalf("clean -vs gate: failed=%v err=%v", failed, err)
	}

	// hybrid 30% behind at t=1: fails — unless -where excludes t=1.
	bad := write("bad.jsonl", []benchfmt.SweepRecord{
		withNs(lock1, 100), withNs(hyb1, 130),
		withNs(lock4, 400), withNs(hyb4, 120),
	})
	failed, err = guardSweep(bad, []string{bad}, nil, "hybrid=mcs-lock", 0.10)
	if err != nil || !failed {
		t.Fatalf("regressed -vs gate: failed=%v err=%v", failed, err)
	}
	failed, err = guardSweep(bad, []string{bad}, whereFlags{"threads=4"}, "hybrid=mcs-lock", 0.10)
	if err != nil || failed {
		t.Fatalf("-where filtered -vs gate: failed=%v err=%v", failed, err)
	}

	if _, err := guardSweep(runs, []string{runs}, nil, "hybrid", 0.10); err == nil {
		t.Fatal("bad -vs spec accepted")
	}
}

func TestCellKeyDistinguishesScenarios(t *testing.T) {
	a := rec("batch", "hybcomb", 1, 1, 1, 32, 1, "uniform", benchfmt.PathBatch)
	variants := []benchfmt.SweepRecord{
		rec("batch", "hybcomb", 1, 1, 1, 8, 1, "uniform", benchfmt.PathBatch),
		rec("batch", "hybcomb", 2, 1, 1, 32, 1, "uniform", benchfmt.PathBatch),
		rec("batch", "hybcomb", 1, 1, 1, 32, 2, "uniform", benchfmt.PathBatch),
		rec("batch", "mpserver", 1, 1, 1, 32, 1, "uniform", benchfmt.PathBatch),
	}
	for _, v := range variants {
		if cellKey(a) == cellKey(v) {
			t.Errorf("cell keys collide: %q", cellKey(a))
		}
	}
}
