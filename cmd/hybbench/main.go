// Command hybbench measures the native Go layer: every construction
// registered with the hybsync algorithm registry (MP-SERVER, HYBCOMB,
// CC-SYNCH, SHM-SERVER, spin locks) over the paper's three objects
// (counter, queue, stack) on real goroutines.
//
// Unlike cmd/tilebench — which reproduces the paper's numbers on the
// simulated TILE-Gx — hybbench answers a different question: how do the
// same algorithms behave on a commodity host through the Go runtime,
// where "message passing" is a lock-free queue over coherent shared
// memory? Shapes differ from the paper (there is no hardware UDN here);
// DESIGN.md discusses the comparison.
//
// Usage:
//
//	hybbench -list
//	hybbench -bench all -dur 200ms -threads 1,2,4,8,16
//	hybbench -bench counter -algos mpserver,hybcomb,clh-lock
//	hybbench -bench counter -json > BENCH_counter.json
//	hybbench -bench sharded -shards 1,8 -dist zipf:0.99 -json
//	hybbench -bench async -depth 1,2,4,8 -json > BENCH_async.json
//	hybbench -bench batch -batch 1,2,4,8,16,32 -json > BENCH_batch.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"hybsync"
	"hybsync/harness"
	"hybsync/object"
)

// jsonResult is one measured point in -json mode; the schema is the
// commit format for BENCH_*.json perf-trajectory files. The shard_*
// fields appear only on sharded-bench records: shard_ops is the
// per-shard occupancy profile (how the keyed workload actually landed)
// and shard_fairness its max/min ratio (1.0 = perfectly balanced).
type jsonResult struct {
	Bench    string   `json:"bench"`
	Algo     string   `json:"algo"`
	Threads  int      `json:"threads"`
	Ops      uint64   `json:"ops"`
	Mops     float64  `json:"mops"`
	NsPerOp  float64  `json:"ns_per_op"`
	Fairness float64  `json:"fairness,omitempty"`
	Rounds   uint64   `json:"rounds,omitempty"`
	Combined uint64   `json:"combined,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	Dist     string   `json:"dist,omitempty"`
	Depth    int      `json:"depth,omitempty"`
	Batch    int      `json:"batch,omitempty"`
	Path     string   `json:"path,omitempty"` // batch bench: "apply" (per-op) vs "batch" (ApplyBatch)
	ShardOps []uint64 `json:"shard_ops,omitempty"`
	// A pointer so sharded records keep the meaningful value 0 ("some
	// shard was never touched") while non-sharded records omit the
	// field entirely.
	ShardFairness *float64 `json:"shard_fairness,omitempty"`
	// Pipe is present when the construction exports PipelineStats
	// (mpserver/hybcomb/ccsynch and routers over them): backpressure
	// counters of the submission pipeline for the measured run.
	Pipe *pipeJSON `json:"pipeline,omitempty"`
}

// pipeJSON is the PipelineStats payload of a -json record; zero values
// are meaningful (an unstalled run reports submit_stalls 0), so the
// whole struct is pointer-omitted rather than field-omitted.
type pipeJSON struct {
	SubmitStalls uint64 `json:"submit_stalls"`
	MaxDepth     uint64 `json:"max_depth"`
}

// pipeOf extracts the pipeline counters when src implements
// hybsync.PipelineStats (read after every handle flushed).
func pipeOf(src any) *pipeJSON {
	if p, ok := src.(hybsync.PipelineStats); ok {
		st, d := p.Pipeline()
		return &pipeJSON{SubmitStalls: st, MaxDepth: d}
	}
	return nil
}

// report accumulates jsonResults; nil means table mode. The host
// context (gomaxprocs, goversion, numcpu) makes BENCH_*.json
// trajectories comparable across machines.
type report struct {
	GoMaxProcs int          `json:"gomaxprocs"`
	GoVersion  string       `json:"goversion"`
	NumCPU     int          `json:"numcpu"`
	DurationMs int64        `json:"duration_ms_per_point"`
	Results    []jsonResult `json:"results"`
}

// add records one point, deriving the scalar metrics from res.
func (r *report) add(bench, algo string, threads int, res harness.NativeResult, rounds, combined uint64) {
	jr := jsonResult{
		Bench: bench, Algo: algo, Threads: threads,
		Ops: res.Ops, Mops: res.Mops(), Fairness: res.Fairness(),
		Rounds: rounds, Combined: combined,
	}
	if jr.Mops > 0 {
		jr.NsPerOp = 1e3 / jr.Mops
	}
	r.Results = append(r.Results, jr)
}

func (r *report) render() {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fatalf("encoding JSON: %v", err)
	}
}

// defaultAlgos is the paper's four constructions plus one queue-lock
// baseline; -algos all selects everything in the registry.
var defaultAlgos = []string{"mpserver", "hybcomb", "shmserver", "ccsynch", "mcs-lock"}

func main() {
	bench := flag.String("bench", "all", "benchmark: counter, queue, stack, fairness, sharded, async, batch, all")
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement duration per point")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default scales to GOMAXPROCS)")
	algosFlag := flag.String("algos", "", "comma-separated algorithm names from the registry (default a representative five; 'all' for every registered algorithm)")
	shardsFlag := flag.String("shards", "1,4", "comma-separated shard counts for the sharded bench")
	depthFlag := flag.String("depth", "1,2,4,8", "comma-separated outstanding-window depths for the async bench")
	batchFlag := flag.String("batch", "1,2,4,8,16,32", "comma-separated ApplyBatch sizes for the batch bench")
	distFlag := flag.String("dist", "uniform", "keyed-workload distribution for the sharded bench: uniform or zipf:theta (0<theta<1, e.g. zipf:0.99)")
	keysFlag := flag.Uint64("keys", 1<<16, "key-space size for the sharded bench")
	list := flag.Bool("list", false, "print the registered algorithm names and exit")
	jsonFlag := flag.Bool("json", false, "emit machine-readable JSON instead of tables (for BENCH_*.json files)")
	flag.Parse()

	if *list {
		for _, name := range hybsync.Algorithms() {
			fmt.Println(name)
		}
		return
	}

	algos, err := selectAlgos(*algosFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: %v\n", err)
		os.Exit(2)
	}

	threads := defaultThreads()
	if *threadsFlag != "" {
		if threads, err = parseIntList(*threadsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "hybbench: -threads: %v\n", err)
			os.Exit(2)
		}
	}
	shardCounts, err := parseIntList(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -shards: %v\n", err)
		os.Exit(2)
	}
	depths, err := parseIntList(*depthFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -depth: %v\n", err)
		os.Exit(2)
	}
	batchSizes, err := parseIntList(*batchFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -batch: %v\n", err)
		os.Exit(2)
	}
	dist, err := parseDist(*distFlag, *keysFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -dist: %v\n", err)
		os.Exit(2)
	}

	var rep *report
	if *jsonFlag {
		rep = &report{
			GoMaxProcs: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			DurationMs: dur.Milliseconds(),
		}
	}

	switch *bench {
	case "counter":
		benchCounter(algos, threads, *dur, rep)
	case "queue":
		benchQueue(algos, threads, *dur, rep)
	case "stack":
		benchStack(algos, threads, *dur, rep)
	case "fairness":
		benchFairness(algos, threads, *dur, rep)
	case "sharded":
		benchSharded(algos, threads, shardCounts, dist, *dur, rep)
	case "async":
		benchAsync(algos, threads, depths, *dur, rep)
	case "batch":
		benchBatch(algos, threads, batchSizes, *dur, rep)
	case "all":
		benchCounter(algos, threads, *dur, rep)
		benchQueue(algos, threads, *dur, rep)
		benchStack(algos, threads, *dur, rep)
		benchFairness(algos, threads, *dur, rep)
		benchSharded(algos, threads, shardCounts, dist, *dur, rep)
		benchAsync(algos, threads, depths, *dur, rep)
		benchBatch(algos, threads, batchSizes, *dur, rep)
	default:
		fmt.Fprintf(os.Stderr, "hybbench: unknown bench %q\n", *bench)
		os.Exit(2)
	}
	if rep != nil {
		rep.render()
	}
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// selectAlgos resolves the -algos flag against the registry.
func selectAlgos(flagVal string) ([]string, error) {
	registered := hybsync.Algorithms()
	switch flagVal {
	case "":
		return defaultAlgos, nil
	case "all":
		return registered, nil
	}
	have := make(map[string]bool, len(registered))
	for _, name := range registered {
		have[name] = true
	}
	var algos []string
	for _, s := range strings.Split(flagVal, ",") {
		name := strings.TrimSpace(s)
		if name == "" {
			continue
		}
		if !have[name] {
			return nil, fmt.Errorf("unknown algorithm %q (have: %s)",
				name, strings.Join(registered, ", "))
		}
		algos = append(algos, name)
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("-algos selected no algorithms")
	}
	return algos, nil
}

func defaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	out := []int{1}
	for n := 2; n < max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// opts sizes every construction generously enough for any thread count
// hybbench drives.
func opts() []hybsync.Option { return []hybsync.Option{hybsync.WithMaxThreads(256)} }

// runCounter measures one counter-increment point for algo (plus the
// executor's combining stats, when it keeps them); shared by the
// throughput and fairness benches.
func runCounter(algo string, th int, dur time.Duration) (res harness.NativeResult, rounds, combined uint64) {
	c, err := object.NewCounter(algo, opts()...)
	if err != nil {
		fatalf("NewCounter(%s): %v", algo, err)
	}
	defer c.Close()
	res = harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		return func(uint64) { h.Inc() }
	})
	rounds, combined, _ = c.Stats()
	return res, rounds, combined
}

func benchCounter(algos []string, threads []int, dur time.Duration, rep *report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable("Native counter throughput (Mops/sec)", header...)
	t.Note = fmt.Sprintf("GOMAXPROCS=%d, local work <=50 iters, %v per point", runtime.GOMAXPROCS(0), dur)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			res, rounds, combined := runCounter(algo, th, dur)
			if rep != nil {
				rep.add("counter", algo, th, res, rounds, combined)
			}
			row = append(row, res.Mops())
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

func benchQueue(algos []string, threads []int, dur time.Duration, rep *report) {
	header := []string{"threads"}
	for _, algo := range algos {
		header = append(header, algo+"-1")
	}
	header = append(header, "LCRQ", "mpserver-2")
	t := harness.NewTable("Native queue throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			q, err := object.NewMSQueue1(algo, opts()...)
			if err != nil {
				fatalf("NewMSQueue1(%s): %v", algo, err)
			}
			res := runQueue(q.NewHandle, th, dur)
			if rep != nil {
				rounds, combined, _ := q.Stats()
				rep.add("queue", algo+"-1", th, res, rounds, combined)
			}
			row = append(row, res.Mops())
			q.Close()
		}
		// LCRQ: nonblocking, no executor.
		lq := object.NewLCRQueue(1024)
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					lq.Enqueue(i)
				} else {
					lq.Dequeue()
				}
			}
		})
		if rep != nil {
			rep.add("queue", "LCRQ", th, res, 0, 0)
		}
		row = append(row, res.Mops())
		// Two-lock MS-Queue over two dedicated mpserver goroutines.
		q2, err := object.NewMSQueue2("mpserver", opts()...)
		if err != nil {
			fatalf("NewMSQueue2(mpserver): %v", err)
		}
		res2 := runQueue(q2.NewHandle, th, dur)
		if rep != nil {
			rep.add("queue", "mpserver-2", th, res2, 0, 0)
		}
		row = append(row, res2.Mops())
		q2.Close()
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

// runQueue drives a balanced enqueue/dequeue mix over per-goroutine
// handles produced by newHandle.
func runQueue(newHandle func() (*object.QueueHandle, error), th int, dur time.Duration) harness.NativeResult {
	return harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h, err := newHandle()
		if err != nil {
			panic(err)
		}
		return func(i uint64) {
			if i%2 == 0 {
				h.Enqueue(i)
			} else {
				h.Dequeue()
			}
		}
	})
}

func benchStack(algos []string, threads []int, dur time.Duration, rep *report) {
	header := append([]string{"threads"}, algos...)
	header = append(header, "Treiber")
	t := harness.NewTable("Native stack throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			s, err := object.NewStack(algo, opts()...)
			if err != nil {
				fatalf("NewStack(%s): %v", algo, err)
			}
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h, err := s.NewHandle()
				if err != nil {
					panic(err)
				}
				return func(i uint64) {
					if i%2 == 0 {
						h.Push(i)
					} else {
						h.Pop()
					}
				}
			})
			if rep != nil {
				rounds, combined, _ := s.Stats()
				rep.add("stack", algo, th, res, rounds, combined)
			}
			s.Close()
			row = append(row, res.Mops())
		}
		ts := object.NewTreiberStack()
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					ts.Push(i)
				} else {
					ts.Pop()
				}
			}
		})
		if rep != nil {
			rep.add("stack", "Treiber", th, res, 0, 0)
		}
		row = append(row, res.Mops())
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

func benchFairness(algos []string, threads []int, dur time.Duration, rep *report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable("Native fairness (max/min per-thread op ratio; 1.0 = ideal)", header...)
	for _, th := range threads {
		if th < 2 {
			continue
		}
		row := []any{th}
		for _, algo := range algos {
			res, rounds, combined := runCounter(algo, th, dur)
			if rep != nil {
				rep.add("fairness", algo, th, res, rounds, combined)
			}
			row = append(row, res.Fairness())
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

// distSpec is the parsed -dist flag: the keyed workload's popularity
// distribution over the -keys key space.
type distSpec struct {
	label string // as given on the command line, for the JSON records
	keys  uint64
	zipf  *harness.Zipf // nil = uniform; otherwise the shared template
}

// parseDist parses "uniform" or "zipf:theta" (0 < theta < 1). The Zipf
// zeta table is computed once here and cloned per worker with Reseed.
func parseDist(s string, keys uint64) (distSpec, error) {
	if keys == 0 {
		return distSpec{}, fmt.Errorf("-keys must be positive")
	}
	if s == "uniform" {
		return distSpec{label: s, keys: keys}, nil
	}
	if theta, ok := strings.CutPrefix(s, "zipf:"); ok {
		v, err := strconv.ParseFloat(theta, 64)
		if err != nil {
			return distSpec{}, fmt.Errorf("bad zipf theta %q", theta)
		}
		z, err := harness.NewZipf(keys, v, 1)
		if err != nil {
			return distSpec{}, err
		}
		return distSpec{label: s, keys: keys, zipf: z}, nil
	}
	return distSpec{}, fmt.Errorf("unknown distribution %q (want uniform or zipf:theta)", s)
}

// sampler returns thread's key generator (deterministic per thread).
func (d distSpec) sampler(thread int) func() uint64 {
	seed := uint64(thread+1) * 0x9E3779B97F4A7C15
	if d.zipf != nil {
		z := d.zipf.Reseed(seed)
		return z.Next
	}
	rng := harness.NewXorShift(seed)
	return func() uint64 { return rng.Next() % d.keys }
}

// shardFairness is the max/min per-shard occupancy ratio (1.0 = ideal,
// 0 = some shard was never touched) — the same formula the harness uses
// for per-thread fairness.
func shardFairness(occ []uint64) float64 {
	return harness.NativeResult{PerThread: occ}.Fairness()
}

// runSharded measures one sharded-counter point: th goroutines drive
// keyed increments (keys drawn from dist) through a router over nshards
// executors of algo.
func runSharded(algo string, nshards int, dist distSpec, th int, dur time.Duration) (res harness.NativeResult, occ []uint64, rounds, combined uint64, pipe *pipeJSON) {
	c, err := object.NewShardedCounter(algo, nshards, opts()...)
	if err != nil {
		fatalf("NewShardedCounter(%s, %d): %v", algo, nshards, err)
	}
	defer c.Close()
	res = harness.RunNative(th, dur, 50, func(t int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		draw := dist.sampler(t)
		return func(uint64) {
			if _, err := h.Inc(draw()); err != nil {
				panic(err)
			}
		}
	})
	occ = c.Occupancy()
	rounds, combined, _ = c.Stats()
	if st, d, ok := c.Pipeline(); ok {
		pipe = &pipeJSON{SubmitStalls: st, MaxDepth: d}
	}
	return res, occ, rounds, combined, pipe
}

// benchSharded sweeps the sharded counter over every requested shard
// count: uniform vs. skewed (-dist zipf:theta) keyed access, with
// per-shard occupancy and its fairness in the JSON records.
func benchSharded(algos []string, threads, shardCounts []int, dist distSpec, dur time.Duration, rep *report) {
	for _, ns := range shardCounts {
		header := append([]string{"threads"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Sharded counter throughput, %d shard(s), %s over %d keys (Mops/sec)",
			ns, dist.label, dist.keys), header...)
		for _, th := range threads {
			row := []any{th}
			for _, algo := range algos {
				res, occ, rounds, combined, pipe := runSharded(algo, ns, dist, th, dur)
				if rep != nil {
					sf := shardFairness(occ)
					jr := jsonResult{
						Bench: "sharded", Algo: algo, Threads: th,
						Ops: res.Ops, Mops: res.Mops(), Fairness: res.Fairness(),
						Rounds: rounds, Combined: combined,
						Shards: ns, Dist: dist.label,
						ShardOps: occ, ShardFairness: &sf, Pipe: pipe,
					}
					if jr.Mops > 0 {
						jr.NsPerOp = 1e3 / jr.Mops
					}
					rep.Results = append(rep.Results, jr)
				}
				row = append(row, res.Mops())
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

// runAsync measures one pipelined point: th goroutines drive the native
// counter workload keeping up to depth submissions outstanding per
// handle (a sliding window of Submit with Wait on the oldest once the
// window fills). depth 1 degenerates to the blocking Apply round trip;
// deeper windows let a pipelining construction overlap submissions.
func runAsync(algo string, depth, th int, dur time.Duration) (res harness.NativeResult, rounds, combined uint64, pipe *pipeJSON) {
	var state uint64
	ex, err := hybsync.New(algo, func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}, opts()...)
	if err != nil {
		fatalf("New(%s): %v", algo, err)
	}
	handles := make([]hybsync.Handle, th)
	res = harness.RunNative(th, dur, 50, func(t int) func(uint64) {
		h := hybsync.MustHandle(ex)
		handles[t] = h
		win := make([]hybsync.Ticket, depth)
		var head, count int
		return func(uint64) {
			if count == depth {
				h.Wait(win[head])
				head = (head + 1) % depth
				count--
			}
			tk, err := h.Submit(0, 0)
			if err != nil {
				panic(err)
			}
			win[(head+count)%depth] = tk
			count++
		}
	})
	// Drain the windows before closing. Concurrently: with CC-Synch a
	// handle's unflushed cell can hold the combiner duty another
	// handle's Flush is spinning on, so a sequential flush could stall.
	var wg sync.WaitGroup
	for _, h := range handles {
		if h == nil {
			continue
		}
		wg.Add(1)
		go func(h hybsync.Handle) {
			defer wg.Done()
			h.Flush()
		}(h)
	}
	wg.Wait()
	if s, ok := ex.(hybsync.StatsSource); ok {
		rounds, combined = s.Stats()
	}
	pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		fatalf("Close(%s): %v", algo, err)
	}
	return res, rounds, combined, pipe
}

// benchAsync sweeps submission-window depth: throughput vs. how many
// operations each handle keeps in flight. The interesting read is the
// trajectory per algorithm — MP-SERVER should climb with depth
// (requests pipeline through the server), the immediate-completion
// constructions should stay flat.
func benchAsync(algos []string, threads, depths []int, dur time.Duration, rep *report) {
	for _, th := range threads {
		header := append([]string{"depth"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Pipelined counter throughput, %d thread(s), by outstanding window (Mops/sec)", th),
			header...)
		for _, depth := range depths {
			row := []any{depth}
			for _, algo := range algos {
				res, rounds, combined, pipe := runAsync(algo, depth, th, dur)
				if rep != nil {
					jr := jsonResult{
						Bench: "async", Algo: algo, Threads: th, Depth: depth,
						Ops: res.Ops, Mops: res.Mops(), Fairness: res.Fairness(),
						Rounds: rounds, Combined: combined, Pipe: pipe,
					}
					if jr.Mops > 0 {
						jr.NsPerOp = 1e3 / jr.Mops
					}
					rep.Results = append(rep.Results, jr)
				}
				row = append(row, res.Mops())
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

// batchCounter is the batch bench's native object: a run of increments
// reads the shared value once, hands out results from a register and
// writes the sum back — the object-side amortization DispatchBatch
// exists for.
type batchCounter struct{ state uint64 }

func (o *batchCounter) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	v := o.state
	for i := range reqs {
		results[i] = v
		v++
	}
	o.state = v
}

// runBatch measures one batched point: th goroutines each repeatedly
// issue one ApplyBatch of b increments (reqs/results reused across
// calls). Ops counts individual operations, so ns_per_op is directly
// comparable with the per-op Apply path.
func runBatch(algo string, b, th int, dur time.Duration) (res harness.NativeResult, rounds, combined uint64, pipe *pipeJSON) {
	obj := &batchCounter{}
	ex, err := hybsync.NewObject(algo, obj, opts()...)
	if err != nil {
		fatalf("NewObject(%s): %v", algo, err)
	}
	res = harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		reqs := make([]hybsync.Req, b)
		rets := make([]uint64, b)
		return func(uint64) { h.ApplyBatch(reqs, rets) }
	})
	// One iteration is b operations; rescale so Ops/Mops/fairness are
	// per operation. ApplyBatch blocks until its batch completed, so
	// nothing is in flight at close.
	res.Ops *= uint64(b)
	for i := range res.PerThread {
		res.PerThread[i] *= uint64(b)
	}
	if s, ok := ex.(hybsync.StatsSource); ok {
		rounds, combined = s.Stats()
	}
	pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		fatalf("Close(%s): %v", algo, err)
	}
	return res, rounds, combined, pipe
}

// runBatchApply is runBatch's per-op baseline: the same counter driven
// through scalar Apply calls (the legacy path's cost per operation).
func runBatchApply(algo string, th int, dur time.Duration) (res harness.NativeResult, rounds, combined uint64, pipe *pipeJSON) {
	obj := &batchCounter{}
	ex, err := hybsync.NewObject(algo, obj, opts()...)
	if err != nil {
		fatalf("NewObject(%s): %v", algo, err)
	}
	res = harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		return func(uint64) { h.Apply(0, 0) }
	})
	if s, ok := ex.(hybsync.StatsSource); ok {
		rounds, combined = s.Stats()
	}
	pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		fatalf("Close(%s): %v", algo, err)
	}
	return res, rounds, combined, pipe
}

// benchBatch sweeps ApplyBatch size against the per-op Apply baseline:
// the trajectory per algorithm shows how much of the dispatch and
// transport cost the batch amortizes (mpserver: one round-trip wait per
// batch; hybcomb: one promotion per combiner-path run; ccsynch: one
// spin/handover per chain segment; locks: one acquisition per batch).
func benchBatch(algos []string, threads, batchSizes []int, dur time.Duration, rep *report) {
	record := func(algo, path string, b, th int, res harness.NativeResult, rounds, combined uint64, pipe *pipeJSON) {
		jr := jsonResult{
			Bench: "batch", Algo: algo, Threads: th, Batch: b, Path: path,
			Ops: res.Ops, Mops: res.Mops(), Fairness: res.Fairness(),
			Rounds: rounds, Combined: combined, Pipe: pipe,
		}
		if jr.Mops > 0 {
			jr.NsPerOp = 1e3 / jr.Mops
		}
		rep.Results = append(rep.Results, jr)
	}
	for _, th := range threads {
		header := append([]string{"batch"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Batched dispatch throughput, %d thread(s), by ApplyBatch size (Mops/sec; batch 0 = per-op Apply)", th),
			header...)
		// The per-op baseline first: batch 0 in the table and OMITTED
		// from the JSON record (path "apply"), so consumers keying on
		// the batch field can never conflate it with a real size-1
		// ApplyBatch measurement (path "batch", batch 1).
		row := []any{0}
		for _, algo := range algos {
			res, rounds, combined, pipe := runBatchApply(algo, th, dur)
			if rep != nil {
				record(algo, "apply", 0, th, res, rounds, combined, pipe)
			}
			row = append(row, res.Mops())
		}
		if rep == nil {
			t.AddRow(row...)
		}
		for _, b := range batchSizes {
			row := []any{b}
			for _, algo := range algos {
				res, rounds, combined, pipe := runBatch(algo, b, th, dur)
				if rep != nil {
					record(algo, "batch", b, th, res, rounds, combined, pipe)
				}
				row = append(row, res.Mops())
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hybbench: "+format+"\n", args...)
	os.Exit(1)
}
