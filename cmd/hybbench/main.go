// Command hybbench measures the native Go layer: every construction
// registered with the hybsync algorithm registry (MP-SERVER, HYBCOMB,
// CC-SYNCH, SHM-SERVER, spin locks) over the paper's three objects
// (counter, queue, stack) on real goroutines.
//
// Unlike cmd/tilebench — which reproduces the paper's numbers on the
// simulated TILE-Gx — hybbench answers a different question: how do the
// same algorithms behave on a commodity host through the Go runtime,
// where "message passing" is a lock-free queue over coherent shared
// memory? Shapes differ from the paper (there is no hardware UDN here);
// DESIGN.md discusses the comparison.
//
// The measurement cores for the counter/sharded/async/batch legs live
// in internal/measure and the -json record schema in internal/benchfmt
// — both shared with cmd/hybsweep, so a point benchmark here and a
// sweep cell there measure the same thing by construction.
//
// Usage:
//
//	hybbench -list
//	hybbench -bench all -dur 200ms -threads 1,2,4,8,16
//	hybbench -bench counter -algos mpserver,hybcomb,clh-lock
//	hybbench -bench counter -json > BENCH_counter.json
//	hybbench -bench sharded -shards 1,8 -dist zipf:0.99 -json
//	hybbench -bench async -depth 1,2,4,8 -json > BENCH_async.json
//	hybbench -bench batch -batch 1,2,4,8,16,32 -json > BENCH_batch.json
//	hybbench -bench phases -phase phase:5ms:0.5 -algos hybrid,mcs-lock,hybcomb -json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybsync"
	"hybsync/harness"
	"hybsync/internal/benchfmt"
	"hybsync/internal/measure"
	"hybsync/internal/telemetry/export"
	"hybsync/object"
)

// defaultAlgos is the paper's four constructions, one queue-lock
// baseline, and the adaptive hybrid that switches between the two
// regimes; -algos all selects everything in the registry.
var defaultAlgos = []string{"mpserver", "hybcomb", "shmserver", "ccsynch", "mcs-lock", "hybrid"}

func main() {
	bench := flag.String("bench", "all", "benchmark: counter, queue, stack, fairness, sharded, async, batch, phases, chaos, all")
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement duration per point")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default scales to GOMAXPROCS)")
	algosFlag := flag.String("algos", "", "comma-separated algorithm names from the registry (default a representative five; 'all' for every registered algorithm)")
	shardsFlag := flag.String("shards", "1,4", "comma-separated shard counts for the sharded bench")
	depthFlag := flag.String("depth", "1,2,4,8", "comma-separated outstanding-window depths for the async bench")
	batchFlag := flag.String("batch", "1,2,4,8,16,32", "comma-separated ApplyBatch sizes for the batch bench")
	distFlag := flag.String("dist", "uniform", "keyed-workload distribution for the sharded bench: uniform or zipf:theta (0<theta<1, e.g. zipf:0.99)")
	phaseFlag := flag.String("phase", "phase:5ms:0.5", "phase-shifting load shape for the phases bench: phase:period:duty")
	seedFlag := flag.Uint64("seed", 1, "chaos-bench seed for the schedule perturber and delay injector")
	keysFlag := flag.Uint64("keys", 1<<16, "key-space size for the sharded bench")
	list := flag.Bool("list", false, "print the registered algorithm names and exit")
	jsonFlag := flag.Bool("json", false, "emit machine-readable JSON instead of tables (for BENCH_*.json files)")
	telFlag := flag.Bool("telemetry", true, "arm per-executor telemetry: records carry latency_ns/run_len fields (false = disarmed hot path, for overhead-sensitive gating)")
	debugAddr := flag.String("debug-addr", "", "serve /debug/hybsync and /debug/vars on this address (e.g. localhost:6060) for the run's duration")
	flag.Parse()

	measure.SetTelemetry(*telFlag)
	if *debugAddr != "" {
		addr, err := export.Start(*debugAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hybbench: -debug-addr: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "hybbench: telemetry at http://%s/debug/hybsync\n", addr)
	}

	if *list {
		for _, name := range hybsync.Algorithms() {
			fmt.Println(name)
		}
		return
	}

	algos, err := selectAlgos(*algosFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: %v\n", err)
		os.Exit(2)
	}

	threads := defaultThreads()
	if *threadsFlag != "" {
		if threads, err = parseIntList(*threadsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "hybbench: -threads: %v\n", err)
			os.Exit(2)
		}
	}
	shardCounts, err := parseIntList(*shardsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -shards: %v\n", err)
		os.Exit(2)
	}
	depths, err := parseIntList(*depthFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -depth: %v\n", err)
		os.Exit(2)
	}
	batchSizes, err := parseIntList(*batchFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -batch: %v\n", err)
		os.Exit(2)
	}
	dist, err := harness.ParseDist(*distFlag, *keysFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -dist: %v\n", err)
		os.Exit(2)
	}
	phase, err := harness.ParsePhases(*phaseFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hybbench: -phase: %v\n", err)
		os.Exit(2)
	}

	var rep *benchfmt.Report
	if *jsonFlag {
		rep = benchfmt.NewReport(dur.Milliseconds())
	}

	switch *bench {
	case "counter":
		benchCounter(algos, threads, *dur, rep)
	case "queue":
		benchQueue(algos, threads, *dur, rep)
	case "stack":
		benchStack(algos, threads, *dur, rep)
	case "fairness":
		benchFairness(algos, threads, *dur, rep)
	case "sharded":
		benchSharded(algos, threads, shardCounts, dist, *dur, rep)
	case "async":
		benchAsync(algos, threads, depths, *dur, rep)
	case "batch":
		benchBatch(algos, threads, batchSizes, *dur, rep)
	case "phases":
		benchPhases(algos, threads, phase, *dur, rep)
	case "chaos":
		benchChaos(algos, threads, *seedFlag, *dur, rep)
	case "all":
		benchCounter(algos, threads, *dur, rep)
		benchQueue(algos, threads, *dur, rep)
		benchStack(algos, threads, *dur, rep)
		benchFairness(algos, threads, *dur, rep)
		benchSharded(algos, threads, shardCounts, dist, *dur, rep)
		benchAsync(algos, threads, depths, *dur, rep)
		benchBatch(algos, threads, batchSizes, *dur, rep)
		benchPhases(algos, threads, phase, *dur, rep)
	default:
		fmt.Fprintf(os.Stderr, "hybbench: unknown bench %q\n", *bench)
		os.Exit(2)
	}
	if rep != nil {
		if err := rep.Encode(os.Stdout); err != nil {
			fatalf("encoding JSON: %v", err)
		}
	}
}

// parseIntList parses a comma-separated list of positive ints.
func parseIntList(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// selectAlgos resolves the -algos flag against the registry.
func selectAlgos(flagVal string) ([]string, error) {
	registered := hybsync.Algorithms()
	switch flagVal {
	case "":
		return defaultAlgos, nil
	case "all":
		return registered, nil
	}
	have := make(map[string]bool, len(registered))
	for _, name := range registered {
		have[name] = true
	}
	var algos []string
	for _, s := range strings.Split(flagVal, ",") {
		name := strings.TrimSpace(s)
		if name == "" {
			continue
		}
		if !have[name] {
			return nil, fmt.Errorf("unknown algorithm %q (have: %s)",
				name, strings.Join(registered, ", "))
		}
		algos = append(algos, name)
	}
	if len(algos) == 0 {
		return nil, fmt.Errorf("-algos selected no algorithms")
	}
	return algos, nil
}

func defaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	out := []int{1}
	for n := 2; n < max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// opts sizes the queue/stack constructions generously enough for any
// thread count hybbench drives (the counter/sharded/async/batch legs
// size theirs inside internal/measure).
func opts() []hybsync.Option { return []hybsync.Option{hybsync.WithMaxThreads(256)} }

func benchCounter(algos []string, threads []int, dur time.Duration, rep *benchfmt.Report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable("Native counter throughput (Mops/sec)", header...)
	t.Note = fmt.Sprintf("GOMAXPROCS=%d, local work <=50 iters, %v per point", runtime.GOMAXPROCS(0), dur)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			rec, err := measure.Counter(algo, th, dur)
			if err != nil {
				fatalf("%v", err)
			}
			if rep != nil {
				rep.Add(rec)
			}
			row = append(row, rec.Mops)
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

func benchQueue(algos []string, threads []int, dur time.Duration, rep *benchfmt.Report) {
	header := []string{"threads"}
	for _, algo := range algos {
		header = append(header, algo+"-1")
	}
	header = append(header, "LCRQ", "mpserver-2")
	t := harness.NewTable("Native queue throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			q, err := object.NewMSQueue1(algo, opts()...)
			if err != nil {
				fatalf("NewMSQueue1(%s): %v", algo, err)
			}
			res := runQueue(q.NewHandle, th, dur)
			if rep != nil {
				rec := benchfmt.FromNative("queue", algo+"-1", th, res)
				rec.Rounds, rec.Combined, _ = q.Stats()
				rep.Add(rec)
			}
			row = append(row, res.Mops())
			q.Close()
		}
		// LCRQ: nonblocking, no executor.
		lq := object.NewLCRQueue(1024)
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					lq.Enqueue(i)
				} else {
					lq.Dequeue()
				}
			}
		})
		if rep != nil {
			rep.Add(benchfmt.FromNative("queue", "LCRQ", th, res))
		}
		row = append(row, res.Mops())
		// Two-lock MS-Queue over two dedicated mpserver goroutines.
		q2, err := object.NewMSQueue2("mpserver", opts()...)
		if err != nil {
			fatalf("NewMSQueue2(mpserver): %v", err)
		}
		res2 := runQueue(q2.NewHandle, th, dur)
		if rep != nil {
			rep.Add(benchfmt.FromNative("queue", "mpserver-2", th, res2))
		}
		row = append(row, res2.Mops())
		q2.Close()
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

// runQueue drives a balanced enqueue/dequeue mix over per-goroutine
// handles produced by newHandle.
func runQueue(newHandle func() (*object.QueueHandle, error), th int, dur time.Duration) harness.NativeResult {
	return harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h, err := newHandle()
		if err != nil {
			panic(err)
		}
		return func(i uint64) {
			if i%2 == 0 {
				h.Enqueue(i)
			} else {
				h.Dequeue()
			}
		}
	})
}

func benchStack(algos []string, threads []int, dur time.Duration, rep *benchfmt.Report) {
	header := append([]string{"threads"}, algos...)
	header = append(header, "Treiber")
	t := harness.NewTable("Native stack throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			s, err := object.NewStack(algo, opts()...)
			if err != nil {
				fatalf("NewStack(%s): %v", algo, err)
			}
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h, err := s.NewHandle()
				if err != nil {
					panic(err)
				}
				return func(i uint64) {
					if i%2 == 0 {
						h.Push(i)
					} else {
						h.Pop()
					}
				}
			})
			if rep != nil {
				rec := benchfmt.FromNative("stack", algo, th, res)
				rec.Rounds, rec.Combined, _ = s.Stats()
				rep.Add(rec)
			}
			s.Close()
			row = append(row, res.Mops())
		}
		ts := object.NewTreiberStack()
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					ts.Push(i)
				} else {
					ts.Pop()
				}
			}
		})
		if rep != nil {
			rep.Add(benchfmt.FromNative("stack", "Treiber", th, res))
		}
		row = append(row, res.Mops())
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

func benchFairness(algos []string, threads []int, dur time.Duration, rep *benchfmt.Report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable("Native fairness (max/min per-thread op ratio; 1.0 = ideal)", header...)
	for _, th := range threads {
		if th < 2 {
			continue
		}
		row := []any{th}
		for _, algo := range algos {
			rec, err := measure.Counter(algo, th, dur)
			if err != nil {
				fatalf("%v", err)
			}
			if rep != nil {
				rec.Bench = "fairness"
				rep.Add(rec)
			}
			row = append(row, rec.Fairness)
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

// benchSharded sweeps the sharded counter over every requested shard
// count: uniform vs. skewed (-dist zipf:theta) keyed access, with
// per-shard occupancy and its fairness in the JSON records.
func benchSharded(algos []string, threads, shardCounts []int, dist harness.Dist, dur time.Duration, rep *benchfmt.Report) {
	for _, ns := range shardCounts {
		header := append([]string{"threads"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Sharded counter throughput, %d shard(s), %s over %d keys (Mops/sec)",
			ns, dist.Label(), dist.Keys()), header...)
		for _, th := range threads {
			row := []any{th}
			for _, algo := range algos {
				rec, err := measure.Sharded(algo, ns, dist, th, dur)
				if err != nil {
					fatalf("%v", err)
				}
				if rep != nil {
					rep.Add(rec)
				}
				row = append(row, rec.Mops)
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

// benchAsync sweeps submission-window depth: throughput vs. how many
// operations each handle keeps in flight. The interesting read is the
// trajectory per algorithm — MP-SERVER should climb with depth
// (requests pipeline through the server), the immediate-completion
// constructions should stay flat.
func benchAsync(algos []string, threads, depths []int, dur time.Duration, rep *benchfmt.Report) {
	for _, th := range threads {
		header := append([]string{"depth"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Pipelined counter throughput, %d thread(s), by outstanding window (Mops/sec)", th),
			header...)
		for _, depth := range depths {
			row := []any{depth}
			for _, algo := range algos {
				rec, err := measure.Async(algo, depth, th, dur)
				if err != nil {
					fatalf("%v", err)
				}
				if rep != nil {
					rep.Add(rec)
				}
				row = append(row, rec.Mops)
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

// benchBatch sweeps ApplyBatch size against the per-op Apply baseline:
// the trajectory per algorithm shows how much of the dispatch and
// transport cost the batch amortizes (mpserver: one round-trip wait per
// batch; hybcomb: one promotion per combiner-path run; ccsynch: one
// spin/handover per chain segment; locks: one acquisition per batch).
func benchBatch(algos []string, threads, batchSizes []int, dur time.Duration, rep *benchfmt.Report) {
	for _, th := range threads {
		header := append([]string{"batch"}, algos...)
		t := harness.NewTable(fmt.Sprintf(
			"Batched dispatch throughput, %d thread(s), by ApplyBatch size (Mops/sec; batch 0 = per-op Apply)", th),
			header...)
		// The per-op baseline first: batch 0 in the table and OMITTED
		// from the JSON record (path "apply"), so consumers keying on
		// the batch field can never conflate it with a real size-1
		// ApplyBatch measurement (path "batch", batch 1).
		row := []any{0}
		for _, algo := range algos {
			rec, err := measure.BatchApply(algo, th, dur)
			if err != nil {
				fatalf("%v", err)
			}
			if rep != nil {
				rep.Add(rec)
			}
			row = append(row, rec.Mops)
		}
		if rep == nil {
			t.AddRow(row...)
		}
		for _, b := range batchSizes {
			row := []any{b}
			for _, algo := range algos {
				rec, err := measure.Batch(algo, b, th, dur)
				if err != nil {
					fatalf("%v", err)
				}
				if rep != nil {
					rep.Add(rec)
				}
				row = append(row, rec.Mops)
			}
			if rep == nil {
				t.AddRow(row...)
			}
		}
		if rep == nil {
			t.Render(os.Stdout)
		}
	}
}

// benchPhases sweeps the phase-shifting counter workload: all threads
// burst together for the duty fraction of each period, then idle (see
// harness.Phases). Mops is duty-cycled throughput over the full window
// — compare algorithms against each other within a row, not against
// the flat counter bench. The interesting read is the adaptive hybrid
// against the static constructions: under bursts it should promote to
// its delegation backend and track the delegation column, through idle
// tails demote and track the lock column (the JSON records carry its
// transition counts).
func benchPhases(algos []string, threads []int, ph harness.Phases, dur time.Duration, rep *benchfmt.Report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable(fmt.Sprintf(
		"Phase-shifting counter throughput, %s (Mops/sec over the full duty-cycled window)", ph.Label()), header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			rec, err := measure.Phases(algo, ph, th, dur)
			if err != nil {
				fatalf("%v", err)
			}
			if rep != nil {
				rep.Add(rec)
			}
			row = append(row, rec.Mops)
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

// benchChaos measures the chaos leg: throughput under a seeded
// schedule perturber and delay-injected dispatch, bracketed by
// fault-containment and conservation checks (see measure.Chaos). The
// chaos leg is deliberately NOT part of -bench all — its perturber is
// process-global and would distort the clean legs' numbers.
func benchChaos(algos []string, threads []int, seed uint64, dur time.Duration, rep *benchfmt.Report) {
	header := append([]string{"threads"}, algos...)
	t := harness.NewTable(fmt.Sprintf(
		"Chaos counter throughput under perturbed scheduling, seed %d (Mops/sec)", seed), header...)
	for _, th := range threads {
		row := []any{th}
		for _, algo := range algos {
			rec, err := measure.Chaos(algo, seed, th, dur)
			if err != nil {
				fatalf("%v", err)
			}
			if rep != nil {
				rep.Add(rec)
			}
			row = append(row, rec.Mops)
		}
		if rep == nil {
			t.AddRow(row...)
		}
	}
	if rep == nil {
		t.Render(os.Stdout)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "hybbench: "+format+"\n", args...)
	os.Exit(1)
}
