// Command hybbench measures the native Go layer: the four constructions
// (MP-SERVER, HYBCOMB, CC-SYNCH, SHM-SERVER) plus spin-lock baselines
// over the paper's three objects (counter, queue, stack) on real
// goroutines.
//
// Unlike cmd/tilebench — which reproduces the paper's numbers on the
// simulated TILE-Gx — hybbench answers a different question: how do the
// same algorithms behave on a commodity host through the Go runtime,
// where "message passing" is a lock-free queue over coherent shared
// memory? Shapes differ from the paper (there is no hardware UDN here);
// EXPERIMENTS.md discusses the comparison.
//
// Usage:
//
//	hybbench -bench all -dur 200ms -threads 1,2,4,8,16
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"hybsync/internal/conc"
	"hybsync/internal/core"
	"hybsync/internal/harness"
	"hybsync/internal/shmsync"
	"hybsync/internal/spin"
)

func main() {
	bench := flag.String("bench", "all", "benchmark: counter, queue, stack, fairness, mpq, all")
	dur := flag.Duration("dur", 200*time.Millisecond, "measurement duration per point")
	threadsFlag := flag.String("threads", "", "comma-separated thread counts (default scales to GOMAXPROCS)")
	flag.Parse()

	threads := defaultThreads()
	if *threadsFlag != "" {
		threads = nil
		for _, s := range strings.Split(*threadsFlag, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n <= 0 {
				fmt.Fprintf(os.Stderr, "hybbench: bad thread count %q\n", s)
				os.Exit(2)
			}
			threads = append(threads, n)
		}
	}

	switch *bench {
	case "counter":
		benchCounter(threads, *dur)
	case "queue":
		benchQueue(threads, *dur)
	case "stack":
		benchStack(threads, *dur)
	case "fairness":
		benchFairness(threads, *dur)
	case "all":
		benchCounter(threads, *dur)
		benchQueue(threads, *dur)
		benchStack(threads, *dur)
		benchFairness(threads, *dur)
	default:
		fmt.Fprintf(os.Stderr, "hybbench: unknown bench %q\n", *bench)
		os.Exit(2)
	}
}

func defaultThreads() []int {
	max := runtime.GOMAXPROCS(0)
	out := []int{1}
	for n := 2; n < max; n *= 2 {
		out = append(out, n)
	}
	if out[len(out)-1] != max {
		out = append(out, max)
	}
	return out
}

// executorFactories enumerates the native constructions.
func executorFactories() []struct {
	Name string
	Make func() (conc.ExecutorFactory, func())
} {
	return []struct {
		Name string
		Make func() (conc.ExecutorFactory, func())
	}{
		{"mp-server", func() (conc.ExecutorFactory, func()) {
			var servers []*core.MPServer
			return func(d core.Dispatch) core.Executor {
					s := core.NewMPServer(d, core.Options{MaxThreads: 256})
					servers = append(servers, s)
					return s
				}, func() {
					for _, s := range servers {
						s.Close()
					}
				}
		}},
		{"HybComb", func() (conc.ExecutorFactory, func()) {
			return func(d core.Dispatch) core.Executor {
				return core.NewHybComb(d, core.Options{MaxThreads: 256})
			}, func() {}
		}},
		{"shm-server", func() (conc.ExecutorFactory, func()) {
			var servers []*shmsync.SHMServer
			return func(d core.Dispatch) core.Executor {
					s := shmsync.NewSHMServer(d, 256)
					servers = append(servers, s)
					return s
				}, func() {
					for _, s := range servers {
						s.Close()
					}
				}
		}},
		{"CC-Synch", func() (conc.ExecutorFactory, func()) {
			return func(d core.Dispatch) core.Executor {
				return shmsync.NewCCSynch(d, 200)
			}, func() {}
		}},
		{"mcs-lock", func() (conc.ExecutorFactory, func()) {
			return func(d core.Dispatch) core.Executor {
				l := &spin.MCSLock{}
				return spin.NewLockExecutor(d, func() spin.Lock { return l.NewMCSHandle() })
			}, func() {}
		}},
	}
}

func benchCounter(threads []int, dur time.Duration) {
	facs := executorFactories()
	header := []string{"threads"}
	for _, f := range facs {
		header = append(header, f.Name)
	}
	t := harness.NewTable("Native counter throughput (Mops/sec)", header...)
	t.Note = fmt.Sprintf("GOMAXPROCS=%d, local work <=50 iters, %v per point", runtime.GOMAXPROCS(0), dur)
	for _, th := range threads {
		row := []any{th}
		for _, f := range facs {
			fac, closeAll := f.Make()
			c := conc.NewCounter(fac)
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h := c.Handle()
				return func(uint64) { h.Inc() }
			})
			closeAll()
			row = append(row, res.Mops())
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}

func benchQueue(threads []int, dur time.Duration) {
	facs := executorFactories()
	header := []string{"threads"}
	for _, f := range facs {
		header = append(header, f.Name+"-1")
	}
	header = append(header, "LCRQ", "mp-server-2")
	t := harness.NewTable("Native queue throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, f := range facs {
			fac, closeAll := f.Make()
			q := conc.NewMSQueue1(fac)
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h := q.Handle()
				return func(i uint64) {
					if i%2 == 0 {
						h.Enqueue(i)
					} else {
						h.Dequeue()
					}
				}
			})
			closeAll()
			row = append(row, res.Mops())
		}
		// LCRQ
		lq := conc.NewLCRQueue(1024)
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					lq.Enqueue(i)
				} else {
					lq.Dequeue()
				}
			}
		})
		row = append(row, res.Mops())
		// Two-lock over mp-server.
		fac, closeAll := facs[0].Make()
		q2 := conc.NewMSQueue2(fac)
		res = harness.RunNative(th, dur, 50, func(int) func(uint64) {
			h := q2.Handle()
			return func(i uint64) {
				if i%2 == 0 {
					h.Enqueue(i)
				} else {
					h.Dequeue()
				}
			}
		})
		closeAll()
		row = append(row, res.Mops())
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}

func benchStack(threads []int, dur time.Duration) {
	facs := executorFactories()
	header := []string{"threads"}
	for _, f := range facs {
		header = append(header, f.Name)
	}
	header = append(header, "Treiber")
	t := harness.NewTable("Native stack throughput under balanced load (Mops/sec)", header...)
	for _, th := range threads {
		row := []any{th}
		for _, f := range facs {
			fac, closeAll := f.Make()
			s := conc.NewStack(fac)
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h := s.Handle()
				return func(i uint64) {
					if i%2 == 0 {
						h.Push(i)
					} else {
						h.Pop()
					}
				}
			})
			closeAll()
			row = append(row, res.Mops())
		}
		ts := conc.NewTreiberStack()
		res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
			return func(i uint64) {
				if i%2 == 0 {
					ts.Push(i)
				} else {
					ts.Pop()
				}
			}
		})
		row = append(row, res.Mops())
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}

func benchFairness(threads []int, dur time.Duration) {
	facs := executorFactories()
	header := []string{"threads"}
	for _, f := range facs {
		header = append(header, f.Name)
	}
	t := harness.NewTable("Native fairness (max/min per-thread op ratio; 1.0 = ideal)", header...)
	for _, th := range threads {
		if th < 2 {
			continue
		}
		row := []any{th}
		for _, f := range facs {
			fac, closeAll := f.Make()
			c := conc.NewCounter(fac)
			res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
				h := c.Handle()
				return func(uint64) { h.Inc() }
			})
			closeAll()
			row = append(row, res.Fairness())
		}
		t.AddRow(row...)
	}
	t.Render(os.Stdout)
}
