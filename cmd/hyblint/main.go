// Command hyblint runs the hybsync analyzer suite as a go vet tool:
//
//	go build -o /tmp/hyblint ./cmd/hyblint
//	go vet -vettool=/tmp/hyblint ./...
//
// It speaks the cmd/go unit-checker protocol without depending on
// golang.org/x/tools (the build must work offline from a bare module
// cache): it answers -V=full with a content-hashed build ID so cmd/go
// can cache runs, answers -flags with its flag inventory, and
// otherwise expects a single *.cfg argument — the JSON work unit
// cmd/go writes per package, naming the Go files to parse and the
// export data of every dependency to type-check against.
//
// The suite exchanges no cross-package facts, so dependency units
// (VetxOnly) are satisfied by writing an empty facts file, and each
// analyzed package stands alone.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"strings"

	"hybsync/internal/analysis/hyblint"
	"hybsync/internal/analysis/lintkit"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("hyblint: ")

	jsonOut := false
	var cfgFile string
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion()
			return
		case arg == "-flags" || arg == "--flags":
			printFlags()
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case strings.HasSuffix(arg, ".cfg"):
			cfgFile = arg
		default:
			log.Fatalf("unrecognized argument %q; hyblint is a go vet -vettool", arg)
		}
	}
	if cfgFile == "" {
		log.Fatalf("usage: hyblint [-json] <unit>.cfg (run via go vet -vettool=$(which hyblint))")
	}
	os.Exit(runUnit(cfgFile, jsonOut))
}

// printVersion answers -V=full in the form cmd/go's tool-ID probe
// parses: name, "version", "devel", and a trailing buildID= whose
// value is a content hash of the executable, so rebuilt tools
// invalidate cmd/go's vet cache.
func printVersion() {
	progname := "hyblint"
	h := sha256.New()
	if self, err := os.Open(os.Args[0]); err == nil {
		_, _ = io.Copy(h, self)
		self.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, string(h.Sum(nil)))
}

// printFlags answers cmd/go's -flags probe with the tool's flag
// inventory as analysisflags-shaped JSON.
func printFlags() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "V", Bool: false, Usage: "print version and exit"},
		{Name: "json", Bool: true, Usage: "emit JSON output"},
	}
	data, err := json.MarshalIndent(flags, "", "\t")
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(data)
}

// unitConfig is the JSON work unit cmd/go hands a vet tool, one per
// package. Field names and meanings follow the vet/unitchecker
// protocol; fields hyblint does not use are kept so decoding stays
// strict about nothing and tolerant of everything.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgFile string, jsonOut bool) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Fatal(err)
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Fatalf("cannot decode JSON config file %s: %v", cfgFile, err)
	}

	// cmd/go expects a facts file for every unit and runs dependency
	// units for facts alone; the suite has none to exchange.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			log.Fatal(err)
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			log.Fatal(err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer:  unitImporter(fset, &cfg),
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		log.Printf("%v", err)
		return 1
	}

	type jsonDiag struct {
		Posn    string `json:"posn"`
		Message string `json:"message"`
	}
	byAnalyzer := make(map[string][]jsonDiag)
	exit := 0
	for _, a := range hyblint.Analyzers() {
		var diags []lintkit.Diagnostic
		pass := &lintkit.Pass{
			Analyzer:   a,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: tc.Sizes,
			Report:     func(d lintkit.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			log.Printf("analyzer %s failed on %s: %v", a.Name, cfg.ImportPath, err)
			exit = 1
			continue
		}
		for _, d := range diags {
			exit = 1
			posn := fset.Position(d.Pos)
			if jsonOut {
				byAnalyzer[a.Name] = append(byAnalyzer[a.Name], jsonDiag{Posn: posn.String(), Message: d.Message})
			} else {
				fmt.Fprintf(os.Stderr, "%s: %s\n", posn, d.Message)
			}
		}
	}
	if jsonOut {
		tree := map[string]map[string][]jsonDiag{cfg.ID: byAnalyzer}
		data, err := json.MarshalIndent(tree, "", "\t")
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(data)
		fmt.Println()
	}
	return exit
}

// unitImporter resolves imports the way the unit config describes:
// the import path is first mapped through the unit's ImportMap (vendor
// and version resolution already done by cmd/go), then loaded from the
// per-dependency export data in PackageFile.
func unitImporter(fset *token.FileSet, cfg *unitConfig) types.Importer {
	compImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	return importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return compImp.Import(path)
	})
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
