package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVettool builds the hyblint binary and drives it exactly the way
// CI does — through go vet -vettool — against a scratch module,
// proving the unit-checker protocol end to end: a module with
// violations must fail with the analyzers' diagnostics, and the
// corrected module must pass.
func TestVettool(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool not available: %v", err)
	}
	repoRoot, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "hyblint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/hyblint")
	build.Dir = repoRoot
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hyblint: %v\n%s", err, out)
	}

	mod := t.TempDir()
	writeFile(t, filepath.Join(mod, "go.mod"), "module scratch\n\ngo 1.24\n")

	const bad = `package scratch

import (
	"errors"
	"sync/atomic"
)

var ErrClosed = errors.New("closed")

func IsClosed(err error) bool { return err == ErrClosed }

func WaitReady(ready *atomic.Bool) {
	for !ready.Load() {
	}
}
`
	writeFile(t, filepath.Join(mod, "scratch.go"), bad)
	out, err := runVet(mod, bin)
	if err == nil {
		t.Fatalf("go vet passed over a module with violations; output:\n%s", out)
	}
	for _, wantDiag := range []string{"use errors.Is", "raw spin loop"} {
		if !strings.Contains(out, wantDiag) {
			t.Errorf("vet output does not mention %q:\n%s", wantDiag, out)
		}
	}

	const good = `package scratch

import (
	"errors"
	"sync/atomic"
)

var ErrClosed = errors.New("closed")

func IsClosed(err error) bool { return errors.Is(err, ErrClosed) }

func WaitReady(ready *atomic.Bool) bool { return ready.Load() }
`
	writeFile(t, filepath.Join(mod, "scratch.go"), good)
	if out, err := runVet(mod, bin); err != nil {
		t.Fatalf("go vet failed over a clean module: %v\n%s", err, out)
	}
}

func runVet(dir, vettool string) (string, error) {
	cmd := exec.Command("go", "vet", "-vettool="+vettool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off", "GOFLAGS=", "GO111MODULE=on")
	out, err := cmd.CombinedOutput()
	return string(out), err
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o666); err != nil {
		t.Fatal(err)
	}
}
