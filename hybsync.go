package hybsync

import (
	"time"

	"hybsync/internal/core"
	"hybsync/internal/telemetry"

	// The construction packages self-register with the algorithm
	// registry from their init functions; linking them here makes every
	// built-in algorithm available to New through the bare hybsync
	// import.
	_ "hybsync/internal/shmsync"
	_ "hybsync/internal/spin"
)

// Dispatch executes opcode op with argument arg against the protected
// object and returns the result. It is always invoked in mutual
// exclusion, so it may touch shared state without further
// synchronization. Dispatch is the legacy scalar contract: New wraps
// it in Func, so everything executes through the batch-aware Object
// interface underneath.
type Dispatch = core.Dispatch

// Req is one operation of a batch: opcode plus the single 64-bit
// argument.
type Req = core.Req

// Object is the batch-aware execution contract: DispatchBatch executes
// a whole run of requests in one mutual-exclusion call, filling
// results[i] with reqs[i]'s result. Constructions guarantee
// len(results) == len(reqs) and non-overlapping slices; the object
// must not retain either slice past the call (both buffers are
// reused). How runs form is per-construction — see DESIGN.md
// "Batch-aware dispatch".
type Object = core.Object

// Func adapts a legacy Dispatch function into an Object that loops;
// Func(d) is what New wraps a scalar dispatch with, and the conversion
// is free (the two share an underlying type).
type Func = core.Func

// Executor is the uniform contract of every critical-section
// construction: NewHandle hands out per-goroutine capabilities and
// Close (idempotent) releases background resources and seals the
// executor.
type Executor = core.Executor

// Handle submits operations on behalf of one goroutine; obtain one per
// goroutine from Executor.NewHandle. The contract is a submit/complete
// pipeline: Submit(op, arg) returns a Ticket without waiting for the
// result, Wait(Ticket) redeems it, Post is fire-and-forget, Flush
// drains the pipeline, Apply is the blocking Submit+Wait composition,
// and ApplyBatch executes a whole []Req run blocking, batched as far
// as the construction allows (one lock acquisition, one combining
// round, one pipelined server run). Submissions through one handle
// complete in submission order (per-handle FIFO); nothing is ordered
// across handles. See DESIGN.md "Asynchronous delegation" for ticket
// semantics and "Batch-aware dispatch" for per-construction batch
// formation.
type Handle = core.Handle

// Ticket identifies one outstanding asynchronous operation; it is
// meaningful only to the Handle that issued it and must be redeemed
// with that handle's Wait exactly once (or settled by Flush).
type Ticket = core.Ticket

// StatsSource is implemented by the combining constructions ("hybcomb",
// "ccsynch"); type-assert an Executor to read combining statistics.
// Read only at pipeline quiescence: every handle with submissions
// outstanding has been flushed (or fully waited) first.
type StatsSource = core.StatsSource

// PipelineStats is implemented by the pipelining constructions
// ("mpserver", "hybcomb", "ccsynch") and the shard router:
// backpressure counters of the submission pipeline (SubmitStalls =
// submissions that found the pipeline full, MaxDepth = deepest
// in-flight window any handle reached). Read at pipeline quiescence,
// like StatsSource.
type PipelineStats = core.PipelineStats

// RetryStats is implemented by the lock-path constructions (the spin
// executors and "hybrid"): Retries counts contended lock acquisitions
// — the attempts beyond the first that dispatching threads spent
// spinning. It is the contention signal the adaptive hybrid promotes
// on. Read at pipeline quiescence, like StatsSource.
type RetryStats = core.RetryStats

// AdaptiveStats is implemented by the adaptive constructions
// ("hybrid"): Transitions reports how many times the executor promoted
// (lock → delegation) and demoted (delegation → lock) so far.
type AdaptiveStats = core.AdaptiveStats

// Telemetry is an executor's metric core: lock-free latency and
// run-length histograms plus fault/backpressure counters. Create one
// with NewTelemetry, attach it with WithTelemetry, read it with
// Snapshot (any time — merge-on-read, monotonic). A nil *Telemetry is
// the disarmed state: every method is nil-safe and the constructions'
// hot paths pay one nil-check branch.
type Telemetry = telemetry.Telemetry

// TelemetrySnapshot is one merged read of a Telemetry: latency and
// run-length histograms (TelemetryHist) plus poison / stall-report /
// submit-stall counters. Subtract snapshots with Delta, sum them with
// Merge.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHist is one merged log₂-bucketed histogram; Quantile
// extracts upper-bound percentiles (within 2× of the true value) and
// Mean the exact average.
type TelemetryHist = telemetry.Hist

// TelemetrySource is implemented by every built-in construction:
// Telemetry returns the metric core attached with WithTelemetry (nil
// when disarmed).
type TelemetrySource = core.TelemetrySource

// NewTelemetry returns an armed metric core with the default latency
// sampling interval (one in 16 blocking calls per handle).
func NewTelemetry() *Telemetry { return telemetry.New() }

// Option configures a construction; see WithMaxThreads and friends.
type Option = core.Option

// Options is the resolved configuration a Factory receives; build it
// from Option values via New rather than positionally.
type Options = core.Options

// Factory builds one executor instance for a registered algorithm from
// the batch-aware Object and the already-defaulted Options. Legacy
// scalar dispatches arrive wrapped in Func, so a factory never
// distinguishes the two.
type Factory = core.Factory

// Sentinel errors returned (wrapped) by the lifecycle and registry
// APIs; test with errors.Is.
var (
	ErrTooManyHandles     = core.ErrTooManyHandles
	ErrClosed             = core.ErrClosed
	ErrUnknownAlgorithm   = core.ErrUnknownAlgorithm
	ErrDuplicateAlgorithm = core.ErrDuplicateAlgorithm
	ErrBadOption          = core.ErrBadOption
)

// Fault-model sentinels; test with errors.Is. ErrPoisoned marks a
// terminal executor fault (every error an executor reports after a
// fault wraps it — see the Executor contract's Close-vs-Poison note
// and DESIGN.md "Fault model"); ErrNotReady and ErrWaitTimeout are the
// non-fatal outcomes of TryWait and WaitTimeout (the ticket stays
// redeemable).
var (
	ErrPoisoned    = core.ErrPoisoned
	ErrNotReady    = core.ErrNotReady
	ErrWaitTimeout = core.ErrWaitTimeout
)

// PoisonError is the concrete error a poisoned executor reports: the
// recovered panic value and the stack of the dispatch that raised it,
// wrapping ErrPoisoned. Retrieve it with errors.As.
type PoisonError = core.PoisonError

// Poisonable is implemented by every built-in executor (and the shard
// router): Poison(v) transitions it to the terminal poisoned state
// exactly as an object panic would, for callers that detect a fault
// out-of-band (a failed invariant check, a watchdog) and want the
// executor condemned rather than half-trusted.
type Poisonable = core.Poisonable

// WithMaxThreads bounds how many handles an executor hands out
// (default 128).
func WithMaxThreads(n int) Option { return core.WithMaxThreads(n) }

// WithMaxOps sets the combining bound MAX_OPS of "hybcomb" and
// "ccsynch" (default 200, the paper's evaluation setting).
func WithMaxOps(n int) Option { return core.WithMaxOps(n) }

// WithQueueCap sets the per-thread message-queue capacity in messages
// (default 39 ≈ the TILE-Gx's 118-word UDN buffer / 3-word requests).
func WithQueueCap(n int) Option { return core.WithQueueCap(n) }

// WithShards sets how many independent shards the hybsync/shard router
// splits a keyed object across (default 1); the single-executor
// constructions ignore it.
func WithShards(n int) Option { return core.WithShards(n) }

// WithChanQueues selects the Go-channel queue backend of "mpserver" and
// "hybcomb" instead of the default lock-free ring (ablation).
func WithChanQueues(on bool) Option { return core.WithChanQueues(on) }

// WithStallTimeout arms the stall watchdog: any blocking wait inside
// the construction (a client awaiting its response, a combiner
// awaiting its predecessor) that makes no progress for d reports once
// to the backoff package's stall handler — by default a goroutine dump
// on stderr — without affecting the wait itself. 0 (the default)
// disables the watchdog and keeps the hot path free of clock reads.
func WithStallTimeout(d time.Duration) Option { return core.WithStallTimeout(d) }

// WithHybridBackend selects the delegation construction the "hybrid"
// executor promotes to: "hybcomb" (the default) or "mpserver". Other
// constructions ignore it.
func WithHybridBackend(name string) Option { return core.WithHybridBackend(name) }

// WithHybridThreshold tunes the "hybrid" executor's transition points:
// promote when the windowed contended-acquisition rate reaches promote
// (retries per acquisition, default 0.5), start demotion credit when
// the windowed mean delegation run length falls below demote (requests
// per run, default 1.25, must be >= 1). Keep promote well above
// demote's excess so the two regimes cannot oscillate.
func WithHybridThreshold(promote, demote float64) Option {
	return core.WithHybridThreshold(promote, demote)
}

// WithHybridWindow sets how many operations the "hybrid" executor
// accumulates per adaptation decision (default 1024). Smaller windows
// react faster; larger windows resist bursts.
func WithHybridWindow(n int) Option { return core.WithHybridWindow(n) }

// WithTelemetry attaches t as the executor's metric core: blocking
// calls record sampled latency, every dispatch run records its length,
// and poison/stall/submit-stall events are counted. One Telemetry may
// be shared across executors (a sharded router's shards aggregate into
// one core). nil leaves telemetry disarmed — the default, costing one
// nil-check branch per operation.
func WithTelemetry(t *Telemetry) Option { return core.WithTelemetry(t) }

// New constructs the named algorithm around a legacy scalar dispatch
// function (wrapped in Func); NewObject is the batch-aware primary
// entry point. Built-in names are "mpserver", "hybcomb", "ccsynch",
// "shmserver", the adaptive "hybrid" (lock that promotes itself to
// delegation under contention — see WithHybridBackend) and the
// spin-lock executors "tas-lock", "ttas-lock", "ticket-lock",
// "mcs-lock", "clh-lock"; Algorithms lists everything registered. Unknown names fail with ErrUnknownAlgorithm; options
// explicitly set to invalid values fail with ErrBadOption.
func New(name string, dispatch Dispatch, opts ...Option) (Executor, error) {
	return core.New(name, dispatch, opts...)
}

// NewObject constructs the named algorithm around a batch-aware
// object: every drained run, combining round or lock-held batch the
// construction forms reaches obj as one DispatchBatch call, letting
// the object amortize work across the run (a counter sums it locally,
// a queue applies it without per-operation indirection). Names and
// errors are New's.
func NewObject(name string, obj Object, opts ...Option) (Executor, error) {
	return core.NewObject(name, obj, opts...)
}

// MustNew is New, panicking on failure.
func MustNew(name string, dispatch Dispatch, opts ...Option) Executor {
	return core.MustNew(name, dispatch, opts...)
}

// MustNewObject is NewObject, panicking on failure.
func MustNewObject(name string, obj Object, opts ...Option) Executor {
	return core.MustNewObject(name, obj, opts...)
}

// MustHandle returns a new handle from e, panicking on failure — the
// thin escape hatch for benchmarks and examples where handle exhaustion
// is a programming error.
func MustHandle(e Executor) Handle { return core.MustHandle(e) }

// SyncHandle adapts a bare apply function into a full Handle whose
// submissions complete immediately — for application-registered
// executors whose transport has no natural submit/complete split.
func SyncHandle(apply func(op, arg uint64) uint64) Handle { return core.SyncHandle(apply) }

// Register adds an algorithm under name so New (and the object
// constructors) can build it; it fails with ErrDuplicateAlgorithm if
// the name is taken.
func Register(name string, f Factory) error { return core.Register(name, f) }

// Algorithms returns the sorted names of all registered algorithms.
func Algorithms() []string { return core.Algorithms() }
