package hybsync

import (
	"hybsync/internal/core"

	// The construction packages self-register with the algorithm
	// registry from their init functions; linking them here makes every
	// built-in algorithm available to New through the bare hybsync
	// import.
	_ "hybsync/internal/shmsync"
	_ "hybsync/internal/spin"
)

// Dispatch executes opcode op with argument arg against the protected
// object and returns the result. It is always invoked in mutual
// exclusion, so it may touch shared state without further
// synchronization.
type Dispatch = core.Dispatch

// Executor is the uniform contract of every critical-section
// construction: NewHandle hands out per-goroutine capabilities and
// Close (idempotent) releases background resources and seals the
// executor.
type Executor = core.Executor

// Handle submits operations on behalf of one goroutine; obtain one per
// goroutine from Executor.NewHandle. The contract is a submit/complete
// pipeline: Submit(op, arg) returns a Ticket without waiting for the
// result, Wait(Ticket) redeems it, Post is fire-and-forget, Flush
// drains the pipeline, and Apply is the blocking Submit+Wait
// composition. Submissions through one handle complete in submission
// order (per-handle FIFO); nothing is ordered across handles. See
// DESIGN.md "Asynchronous delegation" for ticket semantics and which
// constructions genuinely overlap submissions.
type Handle = core.Handle

// Ticket identifies one outstanding asynchronous operation; it is
// meaningful only to the Handle that issued it and must be redeemed
// with that handle's Wait exactly once (or settled by Flush).
type Ticket = core.Ticket

// StatsSource is implemented by the combining constructions ("hybcomb",
// "ccsynch"); type-assert an Executor to read combining statistics
// after quiescence.
type StatsSource = core.StatsSource

// Option configures a construction; see WithMaxThreads and friends.
type Option = core.Option

// Options is the resolved configuration a Factory receives; build it
// from Option values via New rather than positionally.
type Options = core.Options

// Factory builds one executor instance for a registered algorithm from
// a Dispatch and the already-defaulted Options.
type Factory = core.Factory

// Sentinel errors returned (wrapped) by the lifecycle and registry
// APIs; test with errors.Is.
var (
	ErrTooManyHandles     = core.ErrTooManyHandles
	ErrClosed             = core.ErrClosed
	ErrUnknownAlgorithm   = core.ErrUnknownAlgorithm
	ErrDuplicateAlgorithm = core.ErrDuplicateAlgorithm
	ErrBadOption          = core.ErrBadOption
)

// WithMaxThreads bounds how many handles an executor hands out
// (default 128).
func WithMaxThreads(n int) Option { return core.WithMaxThreads(n) }

// WithMaxOps sets the combining bound MAX_OPS of "hybcomb" and
// "ccsynch" (default 200, the paper's evaluation setting).
func WithMaxOps(n int) Option { return core.WithMaxOps(n) }

// WithQueueCap sets the per-thread message-queue capacity in messages
// (default 39 ≈ the TILE-Gx's 118-word UDN buffer / 3-word requests).
func WithQueueCap(n int) Option { return core.WithQueueCap(n) }

// WithShards sets how many independent shards the hybsync/shard router
// splits a keyed object across (default 1); the single-executor
// constructions ignore it.
func WithShards(n int) Option { return core.WithShards(n) }

// WithChanQueues selects the Go-channel queue backend of "mpserver" and
// "hybcomb" instead of the default lock-free ring (ablation).
func WithChanQueues(on bool) Option { return core.WithChanQueues(on) }

// New constructs the named algorithm around dispatch. Built-in names
// are "mpserver", "hybcomb", "ccsynch", "shmserver" and the spin-lock
// executors "tas-lock", "ttas-lock", "ticket-lock", "mcs-lock",
// "clh-lock"; Algorithms lists everything registered. Unknown names
// fail with ErrUnknownAlgorithm; options explicitly set to invalid
// values fail with ErrBadOption.
func New(name string, dispatch Dispatch, opts ...Option) (Executor, error) {
	return core.New(name, dispatch, opts...)
}

// MustNew is New, panicking on failure.
func MustNew(name string, dispatch Dispatch, opts ...Option) Executor {
	return core.MustNew(name, dispatch, opts...)
}

// MustHandle returns a new handle from e, panicking on failure — the
// thin escape hatch for benchmarks and examples where handle exhaustion
// is a programming error.
func MustHandle(e Executor) Handle { return core.MustHandle(e) }

// SyncHandle adapts a bare apply function into a full Handle whose
// submissions complete immediately — for application-registered
// executors whose transport has no natural submit/complete split.
func SyncHandle(apply func(op, arg uint64) uint64) Handle { return core.SyncHandle(apply) }

// Register adds an algorithm under name so New (and the object
// constructors) can build it; it fails with ErrDuplicateAlgorithm if
// the name is taken.
func Register(name string, f Factory) error { return core.Register(name, f) }

// Algorithms returns the sorted names of all registered algorithms.
func Algorithms() []string { return core.Algorithms() }
