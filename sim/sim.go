// Package sim is the public face of the deterministic TILE-Gx-like
// simulator: the cycle-level chip model (mesh NoC, directory coherence,
// memory-controller atomics, UDN message network) and the paper's four
// constructions plus evaluation objects running on it. It re-exports
// the internal simulator packages so figure drivers and benchmarks can
// be written without reaching into hybsync/internal.
//
//	res := sim.RunWorkload(sim.ProfileTileGx(),
//		sim.NewHybCombBuilder(sim.CounterFactory, 200),
//		sim.WorkloadCfg{Threads: 35, Horizon: 100_000, MaxLocalWork: 50},
//		sim.CounterOps)
//	fmt.Println(res.Mops())
package sim

import (
	"hybsync/internal/simalgo"
	"hybsync/internal/tilesim"
)

// Chip model: a simulated machine is an Engine built from a Profile;
// each simulated core runs one Proc.
type (
	Engine  = tilesim.Engine
	Profile = tilesim.Profile
	Proc    = tilesim.Proc
	Addr    = tilesim.Addr
)

// NewEngine builds a simulated chip from a hardware profile.
func NewEngine(p Profile) *Engine { return tilesim.NewEngine(p) }

// ProfileTileGx models the paper's TILE-Gx36: 36 cores, 6x6 mesh,
// hardware UDN messaging.
func ProfileTileGx() Profile { return tilesim.ProfileTileGx() }

// ProfileX86Like models a commodity x86-like part for the §5.5
// discussion: no hardware messaging, lower coherence latencies.
func ProfileX86Like() Profile { return tilesim.ProfileX86Like() }

// Simulated algorithm layer: Builder describes one construction +
// object pairing, RunWorkload drives it and returns the cycle-level
// accounting of Result.
type (
	Builder       = simalgo.Builder
	Result        = simalgo.Result
	WorkloadCfg   = simalgo.WorkloadCfg
	Executor      = simalgo.Executor
	Handle        = simalgo.Handle
	Object        = simalgo.Object
	ObjectFactory = simalgo.ObjectFactory
	HybComb       = simalgo.HybComb
	Counter       = simalgo.Counter
)

// EmptyVal is returned by simulated Dequeue/Pop on an empty container.
const EmptyVal = simalgo.EmptyVal

// RunWorkload executes cfg on a fresh simulated chip and returns the
// measurement.
func RunWorkload(prof Profile, b *Builder, cfg WorkloadCfg,
	opFor func(thread int, i uint64) (uint64, uint64)) Result {
	return simalgo.RunWorkload(prof, b, cfg, opFor)
}

// Builders for the four constructions and the nonblocking baselines.
func NewMPServerBuilder(obj ObjectFactory) *Builder  { return simalgo.NewMPServerBuilder(obj) }
func NewSHMServerBuilder(obj ObjectFactory) *Builder { return simalgo.NewSHMServerBuilder(obj) }
func NewCCSynchBuilder(obj ObjectFactory, maxOps int) *Builder {
	return simalgo.NewCCSynchBuilder(obj, maxOps)
}
func NewHybCombBuilder(obj ObjectFactory, maxOps int) *Builder {
	return simalgo.NewHybCombBuilder(obj, maxOps)
}
func NewMCSLockBuilder(obj ObjectFactory) *Builder { return simalgo.NewMCSLockBuilder(obj) }
func NewLCRQBuilder(ringSize int) *Builder         { return simalgo.NewLCRQBuilder(ringSize) }
func NewTreiberBuilder() *Builder                  { return simalgo.NewTreiberBuilder() }
func NewTwoLockQueueBuilder() *Builder             { return simalgo.NewTwoLockQueueBuilder() }

// Evaluation-object factories for the builders above.
func CounterFactory(e *Engine) Object { return simalgo.CounterFactory(e) }
func QueueFactory(e *Engine) Object   { return simalgo.QueueFactory(e) }
func StackFactory(e *Engine) Object   { return simalgo.StackFactory(e) }
func ArrayCounterFactory(n int) ObjectFactory {
	return simalgo.ArrayCounterFactory(n)
}

// NewCounter allocates the simulated counter object directly (for
// hand-built executors à la cmd/tilebench's sensitivity figures).
func NewCounter(e *Engine) *Counter { return simalgo.NewCounter(e) }

// NewHybComb wires a HybComb instance by hand on an existing engine.
func NewHybComb(e *Engine, obj Object, maxOps int) *HybComb {
	return simalgo.NewHybComb(e, obj, maxOps)
}

// Per-thread operation generators for RunWorkload.
func CounterOps(thread int, i uint64) (uint64, uint64) { return simalgo.CounterOps(thread, i) }
func QueueOps(thread int, i uint64) (uint64, uint64)   { return simalgo.QueueOps(thread, i) }
func StackOps(thread int, i uint64) (uint64, uint64)   { return simalgo.StackOps(thread, i) }
func ArrayOps(iters uint64) func(int, uint64) (uint64, uint64) {
	return simalgo.ArrayOps(iters)
}
