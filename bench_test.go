// Benchmarks, one per table/figure of the paper's evaluation (§5).
//
// The BenchmarkSimFig* benchmarks run the tilesim reproduction and
// report the figure's metric (Mops/s, cycles/op, stall cycles/op,
// combining rate) via b.ReportMetric — these are the numbers compared
// against the paper in DESIGN.md. The BenchmarkNative* benchmarks
// exercise the native Go layer on real goroutines (ns/op there is the
// per-operation latency on the host).
//
// Run everything:  go test -bench=. -benchmem
// One figure:      go test -bench=BenchmarkSimFig3a -benchtime=1x
package hybsync_test

import (
	"fmt"
	"sync"
	"testing"

	"hybsync"
	"hybsync/harness"
	"hybsync/object"
	"hybsync/sim"
)

// simHorizon is the simulated-cycle budget per benchmark iteration.
const simHorizon = 60_000

// runSim executes one simulated workload and returns the result.
func runSim(b *sim.Builder, threads int, seed uint64,
	opFor func(int, uint64) (uint64, uint64), prof sim.Profile) sim.Result {
	return sim.RunWorkload(prof, b, sim.WorkloadCfg{
		Threads:      threads,
		Horizon:      simHorizon,
		MaxLocalWork: 50,
		Seed:         seed,
	}, opFor)
}

// counterSimBuilders returns fresh builders for the four approaches.
func counterSimBuilders(maxOps int) map[string]func() *sim.Builder {
	return map[string]func() *sim.Builder{
		"mp-server":  func() *sim.Builder { return sim.NewMPServerBuilder(sim.CounterFactory) },
		"HybComb":    func() *sim.Builder { return sim.NewHybCombBuilder(sim.CounterFactory, maxOps) },
		"shm-server": func() *sim.Builder { return sim.NewSHMServerBuilder(sim.CounterFactory) },
		"CC-Synch":   func() *sim.Builder { return sim.NewCCSynchBuilder(sim.CounterFactory, maxOps) },
	}
}

var simOrder = []string{"mp-server", "HybComb", "shm-server", "CC-Synch"}

// BenchmarkSimFig3aCounterThroughput reproduces Figure 3a at full
// concurrency (35 application threads); Mops/s is the figure's y-axis.
func BenchmarkSimFig3aCounterThroughput(b *testing.B) {
	for _, name := range simOrder {
		mk := counterSimBuilders(200)[name]
		b.Run(name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				res := runSim(mk(), 35, uint64(i+1), sim.CounterOps, sim.ProfileTileGx())
				mops = res.Mops()
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkSimFig3bCounterLatency reproduces Figure 3b (cycles/op).
func BenchmarkSimFig3bCounterLatency(b *testing.B) {
	for _, name := range simOrder {
		mk := counterSimBuilders(200)[name]
		b.Run(name, func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				res := runSim(mk(), 35, uint64(i+1), sim.CounterOps, sim.ProfileTileGx())
				lat = res.AvgLatency()
			}
			b.ReportMetric(lat, "cycles/op")
		})
	}
}

// BenchmarkSimFig3cMaxOps reproduces Figure 3c: HybComb throughput as a
// function of MAX_OPS at 35 threads.
func BenchmarkSimFig3cMaxOps(b *testing.B) {
	for _, maxOps := range []int{10, 200, 1000, 5000} {
		b.Run(fmt.Sprintf("HybComb/maxops=%d", maxOps), func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				mk := sim.NewHybCombBuilder(sim.CounterFactory, maxOps)
				res := runSim(mk, 35, uint64(i+1), sim.CounterOps, sim.ProfileTileGx())
				mops = res.Mops()
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkSimFig4aServiceStalls reproduces Figure 4a: stalled and total
// cycles per operation at the servicing thread (fixed combiner).
func BenchmarkSimFig4aServiceStalls(b *testing.B) {
	const inf = 1 << 40
	mks := map[string]func() *sim.Builder{
		"mp-server":  counterSimBuilders(200)["mp-server"],
		"HybComb":    counterSimBuilders(inf)["HybComb"],
		"shm-server": counterSimBuilders(200)["shm-server"],
		"CC-Synch":   counterSimBuilders(inf)["CC-Synch"],
	}
	for _, name := range simOrder {
		b.Run(name, func(b *testing.B) {
			var stall, total float64
			for i := 0; i < b.N; i++ {
				res := runSim(mks[name](), 35, uint64(i+1), sim.CounterOps, sim.ProfileTileGx())
				svc := res.Service
				var busiest *sim.Proc
				if len(svc) > 0 {
					busiest = svc[0]
				} else {
					for _, p := range res.Clients {
						if busiest == nil || p.BusyCycles() > busiest.BusyCycles() {
							busiest = p
						}
					}
				}
				stall = float64(busiest.StallCycles) / float64(res.Ops)
				total = float64(busiest.BusyCycles()) / float64(res.Ops)
			}
			b.ReportMetric(stall, "stall-cycles/op")
			b.ReportMetric(total, "total-cycles/op")
		})
	}
}

// BenchmarkSimFig4bCombiningRate reproduces Figure 4b at 35 threads.
func BenchmarkSimFig4bCombiningRate(b *testing.B) {
	for _, name := range []string{"HybComb", "CC-Synch"} {
		mk := counterSimBuilders(200)[name]
		b.Run(name, func(b *testing.B) {
			var rate float64
			for i := 0; i < b.N; i++ {
				res := runSim(mk(), 35, uint64(i+1), sim.CounterOps, sim.ProfileTileGx())
				rate = res.CombiningRate()
			}
			b.ReportMetric(rate, "reqs/round")
		})
	}
}

// BenchmarkSimFig4cCSLength reproduces Figure 4c: cycles per CS as the
// CS body grows.
func BenchmarkSimFig4cCSLength(b *testing.B) {
	for _, iters := range []uint64{0, 4, 15} {
		for _, name := range []string{"mp-server", "shm-server"} {
			b.Run(fmt.Sprintf("%s/iters=%d", name, iters), func(b *testing.B) {
				var cpo float64
				for i := 0; i < b.N; i++ {
					var mk *sim.Builder
					if name == "mp-server" {
						mk = sim.NewMPServerBuilder(sim.ArrayCounterFactory(16))
					} else {
						mk = sim.NewSHMServerBuilder(sim.ArrayCounterFactory(16))
					}
					res := runSim(mk, 35, uint64(i+1), sim.ArrayOps(iters), sim.ProfileTileGx())
					cpo = float64(res.Cycles) / float64(res.Ops)
				}
				b.ReportMetric(cpo, "cycles/CS")
			})
		}
	}
}

// BenchmarkSimFig5aQueues reproduces Figure 5a at 35 clients.
func BenchmarkSimFig5aQueues(b *testing.B) {
	mks := []struct {
		name string
		mk   func() *sim.Builder
	}{
		{"mp-server-1", func() *sim.Builder { return sim.NewMPServerBuilder(sim.QueueFactory) }},
		{"HybComb-1", func() *sim.Builder { return sim.NewHybCombBuilder(sim.QueueFactory, 200) }},
		{"shm-server-1", func() *sim.Builder { return sim.NewSHMServerBuilder(sim.QueueFactory) }},
		{"CC-Synch-1", func() *sim.Builder { return sim.NewCCSynchBuilder(sim.QueueFactory, 200) }},
		{"LCRQ", func() *sim.Builder { return sim.NewLCRQBuilder(1024) }},
		{"mp-server-2", sim.NewTwoLockQueueBuilder},
	}
	for _, e := range mks {
		b.Run(e.name, func(b *testing.B) {
			threads := 35
			if e.name == "mp-server-2" {
				threads = 34 // two server cores
			}
			var mops float64
			for i := 0; i < b.N; i++ {
				res := runSim(e.mk(), threads, uint64(i+1), sim.QueueOps, sim.ProfileTileGx())
				mops = res.Mops()
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkSimFig5bStacks reproduces Figure 5b at 35 clients.
func BenchmarkSimFig5bStacks(b *testing.B) {
	mks := []struct {
		name string
		mk   func() *sim.Builder
	}{
		{"mp-server", func() *sim.Builder { return sim.NewMPServerBuilder(sim.StackFactory) }},
		{"HybComb", func() *sim.Builder { return sim.NewHybCombBuilder(sim.StackFactory, 200) }},
		{"shm-server", func() *sim.Builder { return sim.NewSHMServerBuilder(sim.StackFactory) }},
		{"CC-Synch", func() *sim.Builder { return sim.NewCCSynchBuilder(sim.StackFactory, 200) }},
		{"Treiber", sim.NewTreiberBuilder},
	}
	for _, e := range mks {
		b.Run(e.name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				res := runSim(e.mk(), 35, uint64(i+1), sim.StackOps, sim.ProfileTileGx())
				mops = res.Mops()
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// BenchmarkSimX86Profile reproduces the §5.5 discussion: the
// shared-memory approaches on the x86-like profile.
func BenchmarkSimX86Profile(b *testing.B) {
	prof := sim.ProfileX86Like()
	for _, name := range []string{"shm-server", "CC-Synch"} {
		mk := counterSimBuilders(200)[name]
		b.Run(name, func(b *testing.B) {
			var mops float64
			for i := 0; i < b.N; i++ {
				res := runSim(mk(), prof.NumCores()-1, uint64(i+1), sim.CounterOps, prof)
				mops = res.Mops()
			}
			b.ReportMetric(mops, "Mops/s")
		})
	}
}

// --- Native-layer benchmarks -------------------------------------------

// nativeAlgos enumerates the native constructions for benching, by
// their registry names.
var nativeAlgos = []string{"mpserver", "hybcomb", "shmserver", "ccsynch", "mcs-lock"}

// nativeOpts sizes every construction for RunParallel's goroutine count.
func nativeOpts() []hybsync.Option { return []hybsync.Option{hybsync.WithMaxThreads(256)} }

// BenchmarkNativeCounter is the native analogue of Figure 3a: contended
// counter increments across goroutines (ns/op = per-op latency).
func BenchmarkNativeCounter(b *testing.B) {
	for _, algo := range nativeAlgos {
		b.Run(algo, func(b *testing.B) {
			c, err := object.NewCounter(algo, nativeOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var mu sync.Mutex // protects NewHandle() distribution
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h, err := c.NewHandle()
				mu.Unlock()
				if err != nil {
					panic(err)
				}
				for pb.Next() {
					h.Inc()
				}
			})
		})
	}
}

// BenchmarkNativeQueue is the native analogue of Figure 5a.
func BenchmarkNativeQueue(b *testing.B) {
	for _, algo := range nativeAlgos {
		b.Run("MSQueue1/"+algo, func(b *testing.B) {
			q, err := object.NewMSQueue1(algo, nativeOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			defer q.Close()
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h, err := q.NewHandle()
				mu.Unlock()
				if err != nil {
					panic(err)
				}
				var i uint64
				for pb.Next() {
					if i%2 == 0 {
						h.Enqueue(i)
					} else {
						h.Dequeue()
					}
					i++
				}
			})
		})
	}
	b.Run("LCRQ", func(b *testing.B) {
		q := object.NewLCRQueue(1024)
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				if i%2 == 0 {
					q.Enqueue(i)
				} else {
					q.Dequeue()
				}
				i++
			}
		})
	})
}

// BenchmarkNativeStack is the native analogue of Figure 5b.
func BenchmarkNativeStack(b *testing.B) {
	for _, algo := range nativeAlgos {
		b.Run(algo, func(b *testing.B) {
			s, err := object.NewStack(algo, nativeOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			var mu sync.Mutex
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h, err := s.NewHandle()
				mu.Unlock()
				if err != nil {
					panic(err)
				}
				var i uint64
				for pb.Next() {
					if i%2 == 0 {
						h.Push(i)
					} else {
						h.Pop()
					}
					i++
				}
			})
		})
	}
	b.Run("Treiber", func(b *testing.B) {
		s := object.NewTreiberStack()
		b.RunParallel(func(pb *testing.PB) {
			var i uint64
			for pb.Next() {
				if i%2 == 0 {
					s.Push(i)
				} else {
					s.Pop()
				}
				i++
			}
		})
	})
}

// BenchmarkNativeShardedCounter drives Zipf-skewed keyed increments
// through the shard router at 1 vs 4 shards — the native analogue of
// `hybbench -bench sharded`, kept here so the CI bench smoke catches a
// routing regression that panics or deadlocks.
func BenchmarkNativeShardedCounter(b *testing.B) {
	zipf, err := harness.NewZipf(1<<16, 0.99, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, algo := range []string{"mpserver", "hybcomb"} {
		for _, shards := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/shards=%d", algo, shards), func(b *testing.B) {
				c, err := object.NewShardedCounter(algo, shards, nativeOpts()...)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				var mu sync.Mutex
				var nextSeed uint64
				b.RunParallel(func(pb *testing.PB) {
					mu.Lock()
					h, err := c.NewHandle()
					nextSeed++
					z := zipf.Reseed(nextSeed)
					mu.Unlock()
					if err != nil {
						panic(err)
					}
					for pb.Next() {
						if _, err := h.Inc(z.Next()); err != nil {
							panic(err)
						}
					}
				})
			})
		}
	}
}

// BenchmarkNativeMap drives a 90/10 get/put mix over the sharded
// fixed-capacity map.
func BenchmarkNativeMap(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("mpserver/shards=%d", shards), func(b *testing.B) {
			m, err := object.NewMap("mpserver", shards, 1<<16, nativeOpts()...)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			var mu sync.Mutex
			var nextSeed uint64
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				h, err := m.NewHandle()
				nextSeed++
				rng := harness.NewXorShift(nextSeed)
				mu.Unlock()
				if err != nil {
					panic(err)
				}
				for pb.Next() {
					r := rng.Next()
					key := uint32(r % (1 << 14))
					var err error
					if r%10 == 0 {
						_, err = h.Put(key, uint32(r>>32))
					} else {
						_, err = h.Get(key)
					}
					if err != nil {
						panic(err)
					}
				}
			})
		})
	}
}
