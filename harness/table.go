// Package harness provides the shared measurement plumbing for the
// benchmark drivers: aligned-table rendering for figure regeneration,
// small statistics helpers, and the native-layer workload runner used by
// cmd/hybbench and the root benchmarks.
package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a figure rendered as text: one row per x-value (e.g., thread
// count), one column per series (e.g., synchronization approach).
type Table struct {
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends one formatted row; values are printed with %v, floats
// with two decimals.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case float32:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table, aligned, to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	fmt.Fprintf(w, "## %s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%*s", widths[i], c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	fmt.Fprintln(w)
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// MinMax returns the smallest and largest of xs.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}
