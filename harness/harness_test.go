package harness

import (
	"bytes"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "x", "longer-column")
	tab.Note = "a note"
	tab.AddRow(1, 3.14159)
	tab.AddRow(20, "text")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"## Demo", "a note", "longer-column", "3.14", "text"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}

func TestMeanAndMinMax(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	lo, hi := MinMax([]float64{3, 1, 2})
	if lo != 1 || hi != 3 {
		t.Fatalf("MinMax = %v,%v", lo, hi)
	}
}

func TestRunNativeCountsOps(t *testing.T) {
	var calls atomic.Uint64
	res := RunNative(4, 50*time.Millisecond, 10, func(thread int) func(uint64) {
		return func(uint64) { calls.Add(1) }
	})
	if res.Ops == 0 {
		t.Fatal("no ops recorded")
	}
	if res.Ops != calls.Load() {
		t.Fatalf("ops %d != calls %d", res.Ops, calls.Load())
	}
	if len(res.PerThread) != 4 {
		t.Fatalf("per-thread len %d", len(res.PerThread))
	}
	if res.Mops() <= 0 {
		t.Fatal("Mops not positive")
	}
	if f := res.Fairness(); f < 1 {
		t.Fatalf("fairness %v < 1", f)
	}
}

func TestXorShiftDeterministicNonZero(t *testing.T) {
	a, b := NewXorShift(7), NewXorShift(7)
	for i := 0; i < 100; i++ {
		va, vb := a.Next(), b.Next()
		if va != vb {
			t.Fatal("same seed diverged")
		}
		if va == 0 {
			t.Fatal("xorshift emitted zero")
		}
	}
	if NewXorShift(0) == 0 {
		t.Fatal("zero seed not remapped")
	}
}
