package harness

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Phases is a parsed phase-shifting load shape: all threads burst
// together for Duty of every Period, then idle for the rest. It is the
// workload the adaptive hybrid construction exists for — contention
// arrives in waves, so a static lock is right half the time and a
// static delegation scheme the other half — and it is shared plumbing
// like Dist, so hybbench's -phase flag and hybsweep's phase:... dist
// axis cannot drift on what a spec means.
type Phases struct {
	label  string
	period time.Duration
	duty   float64
}

// ParsePhases parses "phase:period:duty" — e.g. "phase:5ms:0.5" for
// 2.5ms bursts every 5ms. period is any time.ParseDuration string
// (positive); duty is the burst fraction, in (0, 1).
func ParsePhases(s string) (Phases, error) {
	rest, ok := strings.CutPrefix(s, "phase:")
	if !ok {
		return Phases{}, fmt.Errorf("unknown phase spec %q (want phase:period:duty)", s)
	}
	periodStr, dutyStr, ok := strings.Cut(rest, ":")
	if !ok {
		return Phases{}, fmt.Errorf("phase spec %q: want phase:period:duty", s)
	}
	period, err := time.ParseDuration(periodStr)
	if err != nil || period <= 0 {
		return Phases{}, fmt.Errorf("phase spec %q: bad period %q", s, periodStr)
	}
	duty, err := strconv.ParseFloat(dutyStr, 64)
	if err != nil || duty <= 0 || duty >= 1 {
		return Phases{}, fmt.Errorf("phase spec %q: duty %q must be in (0, 1)", s, dutyStr)
	}
	return Phases{label: s, period: period, duty: duty}, nil
}

// IsPhaseSpec reports whether s names a phase-shifting workload (the
// "phase:" prefix), so dist-axis consumers can route it here instead
// of ParseDist.
func IsPhaseSpec(s string) bool { return strings.HasPrefix(s, "phase:") }

// Label returns the spec as given on the command line, for record
// fields.
func (p Phases) Label() string { return p.label }

// Period returns the phase period.
func (p Phases) Period() time.Duration { return p.period }

// Duty returns the burst fraction of each period.
func (p Phases) Duty() float64 { return p.duty }

// phaseCheckEvery bounds how many burst operations run between clock
// reads, so the per-op cost of phase tracking amortizes to noise while
// the phase boundary is still hit well within a millisecond-scale
// period.
const phaseCheckEvery = 32

// RunPhased is RunNativeDrain under the phase-shifting load shape: all
// threads share one phase clock (started at the barrier), burst for
// duty×period, then sleep out the idle remainder in bounded naps so
// the stop flag is never missed. Ops counts only burst operations —
// the idle phase performs none by construction — while Duration is the
// full wall-clock window, so Mops reports the duty-cycled throughput
// the workload actually achieved.
func (p Phases) RunPhased(threads int, dur time.Duration, maxLocalWork uint64, setup func(thread int) (body func(i uint64), drain func())) NativeResult {
	burst := time.Duration(float64(p.period) * p.duty)
	var stop atomic.Bool
	per := make([]uint64, threads)
	var wg sync.WaitGroup
	var ready, start sync.WaitGroup
	ready.Add(threads)
	start.Add(1)
	var t0 time.Time // written before start.Done, read only after start.Wait
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			body, drain := setup(t)
			rng := NewXorShift(uint64(t + 1))
			ready.Done()
			start.Wait()
			var n uint64
			// One op minimum, like RunNativeDrain, so fairness stays
			// well-defined on barely-scheduled threads.
			body(n)
			n++
		loop:
			for !stop.Load() {
				into := time.Since(t0) % p.period
				if into >= burst {
					// Idle phase: nap toward the next period boundary in
					// bounded slices so stop is observed promptly.
					nap := p.period - into
					if nap > 200*time.Microsecond {
						nap = 200 * time.Microsecond
					}
					time.Sleep(nap)
					continue
				}
				// Burst phase: run ops, re-checking the clock every
				// phaseCheckEvery iterations.
				for i := 0; i < phaseCheckEvery; i++ {
					body(n)
					n++
					if stop.Load() {
						break loop
					}
					if maxLocalWork > 0 {
						LocalWork(rng.Next() % (maxLocalWork + 1))
					}
				}
			}
			if drain != nil {
				drain()
			}
			per[t] = n
		}(t)
	}
	ready.Wait()
	t0 = time.Now()
	start.Done()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)
	var total uint64
	for _, n := range per {
		total += n
	}
	return NativeResult{Ops: total, Duration: elapsed, PerThread: per}
}
