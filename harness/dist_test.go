package harness

import "testing"

func TestParseDist(t *testing.T) {
	d, err := ParseDist("uniform", 100)
	if err != nil || d.Label() != "uniform" || d.Keys() != 100 {
		t.Fatalf("uniform: %+v, %v", d, err)
	}
	z, err := ParseDist("zipf:0.99", 1000)
	if err != nil || z.Label() != "zipf:0.99" {
		t.Fatalf("zipf: %+v, %v", z, err)
	}
	for _, bad := range []string{"zipf:", "zipf:abc", "zipf:1.5", "zipf:0", "gauss", ""} {
		if _, err := ParseDist(bad, 100); err == nil {
			t.Errorf("ParseDist(%q) accepted", bad)
		}
	}
	if _, err := ParseDist("uniform", 0); err == nil {
		t.Error("zero key space accepted")
	}
}

// Samplers are deterministic per thread and stay inside the key space.
func TestDistSampler(t *testing.T) {
	for _, label := range []string{"uniform", "zipf:0.9"} {
		d, err := ParseDist(label, 64)
		if err != nil {
			t.Fatal(err)
		}
		a, b := d.Sampler(3), d.Sampler(3)
		other := d.Sampler(4)
		var diverged bool
		for i := 0; i < 1000; i++ {
			x, y := a(), b()
			if x != y {
				t.Fatalf("%s: thread sampler not deterministic at draw %d: %d vs %d", label, i, x, y)
			}
			if x >= 64 {
				t.Fatalf("%s: draw %d out of key space", label, x)
			}
			if other() != x {
				diverged = true
			}
		}
		if !diverged {
			t.Errorf("%s: different threads produced identical streams", label)
		}
	}
}
