package harness

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestParsePhases(t *testing.T) {
	p, err := ParsePhases("phase:5ms:0.5")
	if err != nil {
		t.Fatalf("ParsePhases: %v", err)
	}
	if p.Label() != "phase:5ms:0.5" || p.Period() != 5*time.Millisecond || p.Duty() != 0.5 {
		t.Fatalf("parsed %q period=%v duty=%v", p.Label(), p.Period(), p.Duty())
	}
	for _, bad := range []string{
		"uniform",          // not a phase spec
		"phase:5ms",        // missing duty
		"phase:banana:0.5", // bad period
		"phase:-5ms:0.5",   // non-positive period
		"phase:5ms:0",      // duty at lower bound
		"phase:5ms:1",      // duty at upper bound
		"phase:5ms:x",      // bad duty
	} {
		if _, err := ParsePhases(bad); err == nil {
			t.Errorf("ParsePhases(%q): want error", bad)
		}
	}
	if !IsPhaseSpec("phase:5ms:0.5") || IsPhaseSpec("zipf:0.99") || IsPhaseSpec("uniform") {
		t.Fatal("IsPhaseSpec misclassifies")
	}
}

func TestRunPhasedCountsAndDrains(t *testing.T) {
	p, err := ParsePhases("phase:2ms:0.5")
	if err != nil {
		t.Fatal(err)
	}
	const threads = 2
	var total atomic.Uint64
	var drained atomic.Uint64
	res := p.RunPhased(threads, 40*time.Millisecond, 0, func(thread int) (func(i uint64), func()) {
		return func(i uint64) { total.Add(1) }, func() { drained.Add(1) }
	})
	if res.Ops == 0 || res.Ops != total.Load() {
		t.Fatalf("Ops=%d body calls=%d", res.Ops, total.Load())
	}
	if drained.Load() != threads {
		t.Fatalf("drain ran %d times, want %d", drained.Load(), threads)
	}
	if len(res.PerThread) != threads {
		t.Fatalf("PerThread len=%d", len(res.PerThread))
	}
	for i, n := range res.PerThread {
		if n == 0 {
			t.Fatalf("thread %d performed no ops", i)
		}
	}
	if res.Duration < 40*time.Millisecond {
		t.Fatalf("Duration=%v shorter than the run window", res.Duration)
	}
}

// TestRunPhasedIdles checks the duty cycle actually suppresses work:
// at duty 0.25 with comfortable margins the run must complete far
// fewer ops than the burst phases alone could sustain flat-out. We
// bound loosely (2x the duty share of an unphased run) so scheduler
// jitter cannot flake the test.
func TestRunPhasedIdles(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive")
	}
	p, err := ParsePhases("phase:4ms:0.25")
	if err != nil {
		t.Fatal(err)
	}
	body := func(thread int) (func(i uint64), func()) {
		return func(i uint64) { LocalWork(64) }, nil
	}
	flat := RunNativeDrain(1, 40*time.Millisecond, 0, body)
	phased := p.RunPhased(1, 40*time.Millisecond, 0, body)
	if limit := flat.Ops / 2; phased.Ops > limit {
		t.Fatalf("phased run did %d ops; want <= %d (flat run did %d)",
			phased.Ops, limit, flat.Ops)
	}
}
