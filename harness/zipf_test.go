package harness

import "testing"

func TestZipfBoundsAndDeterminism(t *testing.T) {
	z, err := NewZipf(1024, 0.99, 7)
	if err != nil {
		t.Fatal(err)
	}
	z2 := z.Reseed(7)
	for i := 0; i < 10_000; i++ {
		k := z.Next()
		if k >= 1024 {
			t.Fatalf("draw %d: key %d out of range", i, k)
		}
		if k2 := z2.Next(); k2 != k {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, k, k2)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	const n, draws = 1 << 16, 200_000
	z, err := NewZipf(n, 0.99, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[uint64]int)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	// At theta=0.99 over 64k keys the hottest key takes roughly 1/zeta(n)
	// ≈ 8% of draws; require clear skew without pinning the constant.
	if frac := float64(counts[0]) / draws; frac < 0.02 {
		t.Fatalf("key 0 drew only %.2f%% of samples; distribution not skewed", 100*frac)
	}
	if counts[0] <= counts[n-1]*2 {
		t.Fatalf("head (%d) not hotter than tail (%d)", counts[0], counts[n-1])
	}
}

func TestZipfRejectsBadParams(t *testing.T) {
	if _, err := NewZipf(0, 0.5, 1); err == nil {
		t.Error("NewZipf(0 keys) accepted")
	}
	for _, theta := range []float64{0, 1, -0.5, 1.5} {
		if _, err := NewZipf(10, theta, 1); err == nil {
			t.Errorf("NewZipf(theta=%v) accepted", theta)
		}
	}
}
