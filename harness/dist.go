package harness

import (
	"fmt"
	"strconv"
	"strings"
)

// Dist is a parsed key-popularity distribution for keyed workloads:
// "uniform" or "zipf:theta" over a key space of Keys values. It is the
// shared plumbing behind hybbench's -dist flag and hybsweep's dist
// axis, so the two binaries cannot drift on what a distribution label
// means.
type Dist struct {
	label string
	keys  uint64
	zipf  *Zipf // nil = uniform; otherwise the shared template
}

// ParseDist parses "uniform" or "zipf:theta" (0 < theta < 1, e.g.
// "zipf:0.99"). The Zipf zeta table is computed once here and cloned
// per worker by Sampler via Reseed.
func ParseDist(s string, keys uint64) (Dist, error) {
	if keys == 0 {
		return Dist{}, fmt.Errorf("key space must be positive")
	}
	if s == "uniform" {
		return Dist{label: s, keys: keys}, nil
	}
	if theta, ok := strings.CutPrefix(s, "zipf:"); ok {
		v, err := strconv.ParseFloat(theta, 64)
		if err != nil {
			return Dist{}, fmt.Errorf("bad zipf theta %q", theta)
		}
		z, err := NewZipf(keys, v, 1)
		if err != nil {
			return Dist{}, err
		}
		return Dist{label: s, keys: keys, zipf: z}, nil
	}
	return Dist{}, fmt.Errorf("unknown distribution %q (want uniform or zipf:theta)", s)
}

// Label returns the distribution as given on the command line, for
// record fields.
func (d Dist) Label() string { return d.label }

// Keys returns the key-space size.
func (d Dist) Keys() uint64 { return d.keys }

// Sampler returns thread's key generator (deterministic per thread).
func (d Dist) Sampler(thread int) func() uint64 {
	seed := uint64(thread+1) * 0x9E3779B97F4A7C15
	if d.zipf != nil {
		z := d.zipf.Reseed(seed)
		return z.Next
	}
	rng := NewXorShift(seed)
	return func() uint64 { return rng.Next() % d.keys }
}
