package harness

import (
	"fmt"
	"math"
)

// Zipf draws keys in [0, n) with a Zipf(theta) popularity distribution,
// 0 < theta < 1 — the YCSB "zipfian" generator (Gray et al.'s
// rejection-free inversion), which covers the skew range math/rand's
// generator cannot (rand.Zipf requires s > 1; workload skew like the
// classic theta = 0.99 lies below that). Key 0 is the hottest, key 1
// the second-hottest, and so on; pair it with a scrambling Partitioner
// so "hot" does not also mean "adjacent".
//
// A Zipf is not safe for concurrent use: give each goroutine its own,
// sharing the precomputed table via Reseed.
type Zipf struct {
	n     uint64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	half  float64 // 0.5^theta, hoisted out of Next
	rng   XorShift
}

// NewZipf builds a generator over n keys with skew theta in (0, 1)
// (higher = more skewed; 0.99 is the YCSB default). Construction sums
// the n-term zeta series once; clone cheaply per goroutine with Reseed.
func NewZipf(n uint64, theta float64, seed uint64) (*Zipf, error) {
	if n == 0 {
		return nil, fmt.Errorf("harness: NewZipf: need at least one key")
	}
	if theta <= 0 || theta >= 1 {
		return nil, fmt.Errorf("harness: NewZipf: theta %v out of (0, 1)", theta)
	}
	zetan := zeta(n, theta)
	zeta2 := zeta(2, theta)
	z := &Zipf{
		n:     n,
		theta: theta,
		alpha: 1 / (1 - theta),
		zetan: zetan,
		eta:   (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/zetan),
		half:  math.Pow(0.5, theta),
		rng:   NewXorShift(seed),
	}
	return z, nil
}

// zeta is the truncated zeta series sum_{i=1..n} i^-theta.
func zeta(n uint64, theta float64) float64 {
	var s float64
	for i := uint64(1); i <= n; i++ {
		s += math.Pow(float64(i), -theta)
	}
	return s
}

// Reseed returns a copy of z drawing an independent stream — the
// per-goroutine clone that shares the zeta precomputation.
func (z *Zipf) Reseed(seed uint64) *Zipf {
	c := *z
	c.rng = NewXorShift(seed)
	return &c
}

// Next draws the next key in [0, n).
func (z *Zipf) Next() uint64 {
	// 53 uniform bits → u in [0, 1).
	u := float64(z.rng.Next()>>11) / float64(1<<53)
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	k := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if k >= z.n { // guard the float boundary
		k = z.n - 1
	}
	return k
}
