package harness

import (
	"sync"
	"sync/atomic"
	"time"
)

// NativeResult is one native-layer measurement.
type NativeResult struct {
	Ops       uint64
	Duration  time.Duration
	PerThread []uint64
}

// Mops returns throughput in million operations per second.
func (r NativeResult) Mops() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Duration.Seconds() / 1e6
}

// Fairness returns the max/min per-thread op-count ratio (1 = ideal).
func (r NativeResult) Fairness() float64 {
	if len(r.PerThread) == 0 {
		return 0
	}
	lo, hi := r.PerThread[0], r.PerThread[0]
	for _, n := range r.PerThread[1:] {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// sink defeats dead-code elimination of the local-work loop.
var sink atomic.Uint64

// LocalWork spins for n empty loop iterations, mirroring the paper's
// methodology of separating operations by up to 50 iterations of local
// work to prevent long runs.
func LocalWork(n uint64) {
	var s uint64
	for i := uint64(0); i < n; i++ {
		s += i
	}
	if s == ^uint64(0) {
		sink.Store(s)
	}
}

// XorShift is a tiny per-thread PRNG for workload decisions.
type XorShift uint64

// NewXorShift seeds a generator (seed 0 is remapped).
func NewXorShift(seed uint64) XorShift {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return XorShift(seed)
}

// Next returns the next pseudo-random value.
func (x *XorShift) Next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = XorShift(v)
	return v
}

// RunNative runs `threads` goroutines for `dur`, each repeatedly calling
// body(thread, i) followed by up to maxLocalWork iterations of local
// work, and returns the aggregate op count. body must be safe for
// concurrent use across threads (each thread should build its own
// handles inside setup).
func RunNative(threads int, dur time.Duration, maxLocalWork uint64, setup func(thread int) func(i uint64)) NativeResult {
	return RunNativeDrain(threads, dur, maxLocalWork, func(t int) (func(i uint64), func()) {
		return setup(t), nil
	})
}

// RunNativeDrain is RunNative for pipelined workloads: setup returns
// the iteration body plus a drain func (may be nil) that the worker
// goroutine itself runs after the stop flag fires, while the other
// workers are still iterating or draining.
//
// The drain MUST run inside the worker, concurrently with its peers,
// whenever a thread can exit the loop with submissions outstanding.
// With CC-Synch an unwaited cell can hold the round's dormant combiner
// duty — the duty another thread's in-loop Wait is spinning on — so
// flushing the handles only after every worker returned deadlocks:
// the spinner never exits, the flush never starts. (Found by the
// hybsweep grid at gomaxprocs=2, algo=ccsynch, threads=4, depth=8.)
func RunNativeDrain(threads int, dur time.Duration, maxLocalWork uint64, setup func(thread int) (body func(i uint64), drain func())) NativeResult {
	var stop atomic.Bool
	per := make([]uint64, threads)
	var wg sync.WaitGroup
	var ready, start sync.WaitGroup
	ready.Add(threads)
	start.Add(1)
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			body, drain := setup(t)
			rng := NewXorShift(uint64(t + 1))
			ready.Done()
			start.Wait()
			var n uint64
			for {
				// Complete at least one op per thread so per-thread
				// statistics (fairness) are well-defined even on hosts
				// where a goroutine barely gets scheduled in the window.
				body(n)
				n++
				if stop.Load() {
					break
				}
				if maxLocalWork > 0 {
					LocalWork(rng.Next() % (maxLocalWork + 1))
				}
			}
			if drain != nil {
				drain()
			}
			per[t] = n
		}(t)
	}
	ready.Wait()
	t0 := time.Now()
	start.Done()
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(t0)
	var total uint64
	for _, n := range per {
		total += n
	}
	return NativeResult{Ops: total, Duration: elapsed, PerThread: per}
}
