module hybsync

go 1.24
