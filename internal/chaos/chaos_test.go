// Liveness and fault-containment tests: every test runs under a
// watchdog that dumps all goroutine stacks and dies if the scenario
// wedges, so a deadlock is a loud failure instead of a hung `go test`.
// The scenarios cover the five construction families (mpserver,
// hybcomb, ccsynch, shmserver, mcs-lock) across the scalar, async and
// batch paths.
package chaos_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"hybsync"
	"hybsync/internal/backoff"
	"hybsync/internal/chaos"
)

// algos is one representative per construction family: the three
// paper constructions, the RCL-style baseline and a queue lock.
var algos = []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"}

// watchdog arms a liveness bound on the calling test: if cancel is not
// called within d, the process dies with a full goroutine dump. Panic
// from the watchdog goroutine (not t.Fatal, which must not be called
// off the test goroutine) is exactly what we want — it prints every
// stack, including the wedged ones.
func watchdog(t *testing.T, d time.Duration) (cancel func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic(fmt.Sprintf("%s: liveness watchdog fired after %v; goroutine dump:\n%s",
				t.Name(), d, buf[:n]))
		}
	}()
	return func() { close(done) }
}

// counter is the conservation object: DispatchBatch runs in mutual
// exclusion, so the plain field is safe, and state counts exactly the
// operations that executed.
type counter struct{ state uint64 }

func (c *counter) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	for i := range reqs {
		results[i] = c.state
		c.state++
	}
}

// paths drives one handle through each submission shape the contract
// offers. Each path runs iters operations (or stops early once the
// executor reports a fault) and flushes before returning, so no cell
// or ticket is left holding dormant combiner duty.
var paths = map[string]func(h hybsync.Handle, iters int){
	"scalar": func(h hybsync.Handle, iters int) {
		for i := 0; i < iters && h.Err() == nil; i++ {
			h.Apply(0, 0)
		}
	},
	"async8": func(h hybsync.Handle, iters int) {
		const depth = 8
		win := make([]hybsync.Ticket, 0, depth)
		for i := 0; i < iters; i++ {
			if len(win) == depth {
				h.Wait(win[0])
				win = win[:copy(win, win[1:])]
			}
			tk, err := h.Submit(0, 0)
			if err != nil {
				break
			}
			win = append(win, tk)
		}
		for _, tk := range win {
			h.Wait(tk)
		}
		h.Flush()
	},
	"batch32": func(h hybsync.Handle, iters int) {
		reqs := make([]hybsync.Req, 32)
		rets := make([]uint64, 32)
		for i := 0; i < iters && h.Err() == nil; i += len(reqs) {
			h.ApplyBatch(reqs, rets)
		}
	},
}

// TestPanicPoisonsNotDeadlocks is the tentpole scenario: an injected
// object panic in any construction must leave the process alive,
// unblock every in-flight waiter, and turn every subsequent operation
// into a fast ErrPoisoned — never a deadlock, never a silent hang.
func TestPanicPoisonsNotDeadlocks(t *testing.T) {
	for _, algo := range algos {
		for name, drive := range paths {
			t.Run(algo+"/"+name, func(t *testing.T) {
				defer watchdog(t, 30*time.Second)()
				obj := chaos.PanicOnNth(&counter{}, 50)
				ex, err := hybsync.NewObject(algo, obj,
					hybsync.WithMaxThreads(16), hybsync.WithQueueCap(8))
				if err != nil {
					t.Fatalf("NewObject(%s): %v", algo, err)
				}
				const workers = 4
				var wg sync.WaitGroup
				for w := 0; w < workers; w++ {
					h := hybsync.MustHandle(ex)
					wg.Add(1)
					go func() {
						defer wg.Done()
						drive(h, 4096)
					}()
				}
				wg.Wait()

				// Every worker came back, so nobody deadlocked. The fault
				// fired (4 workers × 4096 ops >> 50), so the executor must
				// be poisoned with the injected panic's value and stack.
				err = ex.Err()
				if !errors.Is(err, hybsync.ErrPoisoned) {
					t.Fatalf("Err() = %v, want ErrPoisoned", err)
				}
				var pe *hybsync.PoisonError
				if !errors.As(err, &pe) {
					t.Fatalf("Err() = %v, want *PoisonError", err)
				}
				if pe.Value == nil || len(pe.Stack) == 0 {
					t.Fatalf("PoisonError missing panic value or stack: %+v", pe)
				}
				if _, err := ex.NewHandle(); !errors.Is(err, hybsync.ErrPoisoned) {
					t.Errorf("NewHandle after poison = %v, want ErrPoisoned", err)
				}
				if err := ex.Close(); !errors.Is(err, hybsync.ErrPoisoned) {
					t.Errorf("Close after poison = %v, want ErrPoisoned", err)
				}
			})
		}
	}
}

// TestCloseWithInflight is the close-vs-in-flight matrix: one goroutine
// submits 1..QueueCap operations, Close lands from another goroutine
// while they are outstanding, and every ticket must still redeem — the
// draining-Close half of the fault model.
func TestCloseWithInflight(t *testing.T) {
	const queueCap = 8
	for _, algo := range algos {
		for depth := 1; depth <= queueCap; depth++ {
			t.Run(fmt.Sprintf("%s/depth%d", algo, depth), func(t *testing.T) {
				defer watchdog(t, 30*time.Second)()
				obj := &counter{}
				ex, err := hybsync.NewObject(algo, obj,
					hybsync.WithMaxThreads(4), hybsync.WithQueueCap(queueCap))
				if err != nil {
					t.Fatalf("NewObject(%s): %v", algo, err)
				}
				h := hybsync.MustHandle(ex)
				ready := make(chan []hybsync.Ticket, 1)
				got := make(chan uint64, 1)
				go func() {
					tks := make([]hybsync.Ticket, 0, depth)
					for i := 0; i < depth; i++ {
						tk, err := h.Submit(0, 0)
						if err != nil {
							break
						}
						tks = append(tks, tk)
					}
					ready <- tks
					var sum uint64
					for _, tk := range tks {
						h.Wait(tk)
						sum++
					}
					got <- sum
				}()
				tks := <-ready
				if err := ex.Close(); err != nil {
					t.Fatalf("Close with %d in flight: %v", len(tks), err)
				}
				if redeemed := <-got; redeemed != uint64(len(tks)) {
					t.Fatalf("redeemed %d of %d in-flight tickets", redeemed, len(tks))
				}
				if obj.state != uint64(len(tks)) {
					t.Fatalf("object executed %d ops, %d were submitted before Close",
						obj.state, len(tks))
				}
			})
		}
	}
}

// TestChaosConservation injects delays and schedule perturbation — no
// faults — and checks that exactly the submitted operations execute:
// the chaos machinery itself must not lose or duplicate work.
func TestChaosConservation(t *testing.T) {
	for _, algo := range algos {
		t.Run(algo, func(t *testing.T) {
			defer watchdog(t, 60*time.Second)()
			defer chaos.NewPerturber(42).Install()()
			base := &counter{}
			obj := chaos.Delay(base, 7, 64, 100*time.Microsecond)
			ex, err := hybsync.NewObject(algo, obj,
				hybsync.WithMaxThreads(16), hybsync.WithQueueCap(8))
			if err != nil {
				t.Fatalf("NewObject(%s): %v", algo, err)
			}
			const workers, iters = 4, 512
			var wg sync.WaitGroup
			pathNames := []string{"scalar", "async8", "batch32"}
			for w := 0; w < workers; w++ {
				h := hybsync.MustHandle(ex)
				drive := paths[pathNames[w%len(pathNames)]]
				wg.Add(1)
				go func() {
					defer wg.Done()
					drive(h, iters)
				}()
			}
			wg.Wait()
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if want := uint64(workers * iters); base.state != want {
				t.Fatalf("conservation: %d ops executed, want %d", base.state, want)
			}
		})
	}
}

// TestCorruptFires sanity-checks the corruption wrapper the way a
// caller-side invariant check would use it: corrupted results differ
// from the healthy object's, and Poison condemns the executor by hand.
func TestCorruptFires(t *testing.T) {
	defer watchdog(t, 10*time.Second)()
	ex, err := hybsync.NewObject("mpserver", chaos.Corrupt(&counter{}, 1, 1<<63))
	if err != nil {
		t.Fatal(err)
	}
	h := hybsync.MustHandle(ex)
	if v := h.Apply(0, 0); v < 1<<63 {
		t.Fatalf("Apply through Corrupt(every=1) = %d, want corrupted high bit", v)
	}
	// The caller detected the corruption; condemn the executor.
	ex.(hybsync.Poisonable).Poison("result corruption detected")
	if err := ex.Err(); !errors.Is(err, hybsync.ErrPoisoned) {
		t.Fatalf("Err after manual Poison = %v, want ErrPoisoned", err)
	}
	if err := ex.Close(); !errors.Is(err, hybsync.ErrPoisoned) {
		t.Fatalf("Close after manual Poison = %v, want ErrPoisoned", err)
	}
}

// blockingObject parks every dispatch until released — the wedged
// object the bounded-wait API exists for.
type blockingObject struct {
	release chan struct{}
	inner   counter
}

func (b *blockingObject) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	<-b.release
	b.inner.DispatchBatch(reqs, results)
}

// TestBoundedWaits exercises TryWait and WaitTimeout against a server
// wedged inside the object: both must return without the result (and
// leave the ticket redeemable), and a later Wait must still deliver
// once the object unwedges.
func TestBoundedWaits(t *testing.T) {
	defer watchdog(t, 30*time.Second)()
	obj := &blockingObject{release: make(chan struct{})}
	ex, err := hybsync.NewObject("mpserver", obj, hybsync.WithQueueCap(4))
	if err != nil {
		t.Fatal(err)
	}
	h := hybsync.MustHandle(ex)
	tk, err := h.Submit(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.TryWait(tk); !errors.Is(err, hybsync.ErrNotReady) {
		t.Fatalf("TryWait on wedged server = %v, want ErrNotReady", err)
	}
	if _, err := h.WaitTimeout(tk, 50*time.Millisecond); !errors.Is(err, hybsync.ErrWaitTimeout) {
		t.Fatalf("WaitTimeout on wedged server = %v, want ErrWaitTimeout", err)
	}
	close(obj.release) // unwedge; the ticket is still redeemable
	if v, err := h.WaitTimeout(tk, 10*time.Second); err != nil || v != 0 {
		t.Fatalf("WaitTimeout after unwedge = (%d, %v), want (0, nil)", v, err)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStallWatchdog wires WithStallTimeout through to the backoff
// stall handler: a wait that outlives the budget must report exactly
// once with its construction label.
func TestStallWatchdog(t *testing.T) {
	defer watchdog(t, 30*time.Second)()
	fired := make(chan string, 8)
	backoff.SetStallHandler(func(label string, waited time.Duration) {
		fired <- label
	})
	defer backoff.SetStallHandler(nil)

	obj := &blockingObject{release: make(chan struct{})}
	ex, err := hybsync.NewObject("mpserver", obj,
		hybsync.WithQueueCap(4), hybsync.WithStallTimeout(20*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h := hybsync.MustHandle(ex)
	tk, err := h.Submit(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WaitTimeout(tk, 2*time.Second); !errors.Is(err, hybsync.ErrWaitTimeout) {
		t.Fatalf("WaitTimeout = %v, want ErrWaitTimeout (server is wedged)", err)
	}
	select {
	case label := <-fired:
		if label == "" {
			t.Fatal("stall handler fired with empty label")
		}
	default:
		t.Fatal("stall handler did not fire within a 2s wait on a 20ms budget")
	}
	close(obj.release)
	h.Wait(tk)
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}
