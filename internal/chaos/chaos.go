// Package chaos holds the fault-injection toolkit behind the
// repository's liveness tests and the `hybbench -bench chaos` leg:
// Object wrappers that panic, delay or corrupt on a deterministic
// schedule, and a seeded scheduler perturber that hooks the backoff
// package's wait points. Everything is seeded and deterministic in
// isolation — under real concurrency the interleavings still vary, but
// the injected faults themselves are reproducible (the n'th dispatched
// operation panics, whichever thread carries it).
//
// The wrappers compose: chaos.Delay(chaos.PanicOnNth(obj, 1000), ...)
// is an object that jitters every dispatch and dies on operation 1000.
package chaos

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"hybsync/internal/backoff"
	"hybsync/internal/core"
)

// panicOnNth counts dispatched operations (across batches — a batch of
// 32 advances the count by 32) and panics mid-batch when the count
// crosses n. Operations before the fault in the same batch execute
// normally, so a conservation check can account for them.
type panicOnNth struct {
	obj       core.Object
	remaining atomic.Int64
	armed     atomic.Bool
}

// PanicOnNth wraps obj so the n'th dispatched operation (1-based,
// counted across all handles and batches) panics with a recognizable
// value instead of executing. n <= 0 never fires. The wrapper is safe
// for the constructions' dispatch contract (one dispatcher at a time)
// and its counter is shared across every executor built over it.
func PanicOnNth(obj core.Object, n int64) core.Object {
	w := &panicOnNth{obj: obj}
	w.remaining.Store(n)
	w.armed.Store(n > 0)
	return w
}

// DispatchBatch implements core.Object.
func (w *panicOnNth) DispatchBatch(reqs []core.Req, results []uint64) {
	if w.armed.Load() {
		left := w.remaining.Add(-int64(len(reqs)))
		if left <= 0 {
			// The count crossed n inside this batch: the batch's first
			// left+len(reqs)-1 operations precede the fault and execute
			// normally, then the n'th dies.
			if w.armed.CompareAndSwap(true, false) {
				before := int(left) + len(reqs) - 1
				if before < 0 {
					before = 0 // a concurrent executor already crossed n
				}
				if before > 0 {
					w.obj.DispatchBatch(reqs[:before], results[:before])
				}
				panic(fmt.Sprintf("chaos: injected panic on operation (op=%d arg=%d)",
					reqs[before].Op, reqs[before].Arg))
			}
		}
	}
	w.obj.DispatchBatch(reqs, results)
}

// delay jitters dispatch latency: every batch sleeps or yields first,
// drawn from a seeded xorshift so distinct runs with the same seed
// inject the same sequence of stalls.
type delay struct {
	obj   core.Object
	rng   atomic.Uint64
	every uint64 // fire on draws where draw%every == 0
	d     time.Duration
}

// Delay wraps obj so roughly one in every `every` dispatched batches
// stalls for d before executing (the rest merely Gosched). every <= 1
// stalls every batch. Delays inside the serializing construction are
// the interesting ones: they hold up the combiner/server while clients
// pile in, widening the windows the liveness tests probe.
func Delay(obj core.Object, seed uint64, every uint64, d time.Duration) core.Object {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	if every == 0 {
		every = 1
	}
	w := &delay{obj: obj, every: every, d: d}
	w.rng.Store(seed)
	return w
}

// DispatchBatch implements core.Object.
func (w *delay) DispatchBatch(reqs []core.Req, results []uint64) {
	if xorshiftNext(&w.rng)%w.every == 0 {
		time.Sleep(w.d)
	} else {
		runtime.Gosched()
	}
	w.obj.DispatchBatch(reqs, results)
}

// corrupt flips bits in results on a deterministic schedule — the
// fault a conservation test must catch, and the fault a caller-side
// invariant check would answer with Poison.
type corrupt struct {
	obj   core.Object
	n     atomic.Uint64
	every uint64
	mask  uint64
}

// Corrupt wraps obj so every `every`'th result (counted across batches)
// comes back XOR'd with mask. every == 0 corrupts nothing; mask 0 is
// replaced with 1 so a firing wrapper always changes the value.
func Corrupt(obj core.Object, every uint64, mask uint64) core.Object {
	if mask == 0 {
		mask = 1
	}
	return &corrupt{obj: obj, every: every, mask: mask}
}

// DispatchBatch implements core.Object.
func (w *corrupt) DispatchBatch(reqs []core.Req, results []uint64) {
	w.obj.DispatchBatch(reqs, results)
	if w.every == 0 {
		return
	}
	base := w.n.Add(uint64(len(reqs))) - uint64(len(reqs))
	for i := range results {
		if (base+uint64(i)+1)%w.every == 0 {
			results[i] ^= w.mask
		}
	}
}

// xorshiftNext advances a shared xorshift64 state with a CAS loop so
// concurrent drawers (the perturber runs on every waiting thread) stay
// race-free without a lock.
func xorshiftNext(state *atomic.Uint64) uint64 {
	for {
		old := state.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if state.CompareAndSwap(old, x) {
			return x
		}
	}
}

// Perturber is a seeded schedule perturber for backoff wait points:
// installed with Install (which hooks backoff.SetPerturb), it makes a
// small fraction of waits yield the processor and a smaller fraction
// sleep outright, shaking loose interleavings the regular
// spin/yield/sleep ladder would never produce. One Perturber may be
// shared by every waiting goroutine.
type Perturber struct {
	rng atomic.Uint64
}

// NewPerturber seeds a perturber (seed 0 gets a fixed default).
func NewPerturber(seed uint64) *Perturber {
	p := &Perturber{}
	if seed == 0 {
		seed = 0x2545f4914f6cdd1d
	}
	p.rng.Store(seed)
	return p
}

// Perturb is the hook body: ~1/64 of calls Gosched, ~1/1024 sleep for
// 10µs. Cheap enough to sit on every backoff step, disruptive enough
// to matter at GOMAXPROCS 1 where a spin loop otherwise monopolizes
// the only P.
func (p *Perturber) Perturb() {
	x := xorshiftNext(&p.rng)
	switch {
	case x%1024 == 0:
		time.Sleep(10 * time.Microsecond)
	case x%64 == 0:
		runtime.Gosched()
	}
}

// Install hooks the perturber into every backoff wait point and
// returns a function restoring the previous hook (defer it in tests).
func (p *Perturber) Install() (restore func()) {
	backoff.SetPerturb(p.Perturb)
	return func() { backoff.SetPerturb(nil) }
}
