// Package pad centralizes cache-line padding for the hot-path data
// structures (mpq rings, HybComb nodes, CC-Synch cells, SHM-server
// slots, spin locks). Two idioms replace the hand-counted byte arrays
// the seed used:
//
//   - Between two fields that must not false-share, insert a full
//     `_ pad.Line`. A whole line of separation is correct regardless
//     of the neighbouring field sizes: the second field starts at
//     least CacheLine bytes after the first ends, so they can never
//     occupy the same line.
//
//   - To round a struct (typically an array element) up to a whole
//     number of cache lines, group the live fields in an embedded
//     "hot" struct and size the tail pad from it with a constant
//     expression:
//
//     type cell struct {
//     cellHot
//     _ [pad.CacheLine - unsafe.Sizeof(cellHot{})%pad.CacheLine]byte
//     }
//
//     unsafe.Sizeof of a composite literal is a compile-time constant,
//     so the pad tracks the hot fields automatically; if the hot part
//     ever grows past a line the expression shrinks the pad instead of
//     silently overlapping. (A hot part that is already an exact
//     multiple of CacheLine makes the pad a full line — one line of
//     waste, never an under-pad.)
//
// Each package that pads asserts its layout in a test with
// unsafe.Offsetof/unsafe.Sizeof and the SameLine/Padded helpers below,
// so the layouts are machine-verified rather than hand-counted.
package pad

// CacheLine is the assumed false-sharing granularity in bytes. 64 is
// correct for x86-64 and the TILE-Gx the paper measures on; on arm64
// hosts with 128-byte lines the padding is merely half as strong, never
// wrong.
const CacheLine = 64

// Line is one full cache line of padding; see the package comment for
// the separation idiom.
type Line [CacheLine]byte

// SameLine reports whether byte offsets a and b (within one allocation)
// fall on the same cache line. Layout tests combine it with
// unsafe.Offsetof to prove two hot fields cannot false-share.
func SameLine(a, b uintptr) bool { return a/CacheLine == b/CacheLine }

// Padded reports whether size is a whole number of cache lines — the
// property array-element types must have so consecutive elements never
// share a line. Layout tests combine it with unsafe.Sizeof.
func Padded(size uintptr) bool { return size > 0 && size%CacheLine == 0 }
