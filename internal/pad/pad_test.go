package pad

import (
	"sync/atomic"
	"testing"
	"unsafe"
)

func TestLineSize(t *testing.T) {
	if unsafe.Sizeof(Line{}) != CacheLine {
		t.Fatalf("Line is %d bytes, want %d", unsafe.Sizeof(Line{}), CacheLine)
	}
}

func TestSameLine(t *testing.T) {
	if !SameLine(0, CacheLine-1) {
		t.Error("offsets 0 and 63 are one line")
	}
	if SameLine(CacheLine-1, CacheLine) {
		t.Error("offsets 63 and 64 are different lines")
	}
}

func TestPadded(t *testing.T) {
	if Padded(0) || Padded(CacheLine-8) || Padded(CacheLine+8) {
		t.Error("non-multiples reported padded")
	}
	if !Padded(CacheLine) || !Padded(3*CacheLine) {
		t.Error("multiples reported unpadded")
	}
}

// TestSeparationIdiom proves the full-line separation idiom from the
// package comment: with a Line between them, two fields can never share
// a cache line, whatever their sizes.
func TestSeparationIdiom(t *testing.T) {
	var s struct {
		a atomic.Uint64
		_ Line
		b atomic.Uint64
	}
	offA := unsafe.Offsetof(s.a) + unsafe.Sizeof(s.a) - 1 // last byte of a
	offB := unsafe.Offsetof(s.b)
	if SameLine(offA, offB) {
		t.Fatalf("fields separated by a Line share a cache line (a ends %d, b starts %d)", offA, offB)
	}
}

// TestTailPadIdiom proves the unsafe.Sizeof tail-pad idiom rounds an
// array element up to a whole number of lines.
func TestTailPadIdiom(t *testing.T) {
	type hot struct {
		seq atomic.Uint64
		val [3]uint64
	}
	type cell struct {
		hot
		_ [CacheLine - unsafe.Sizeof(hot{})%CacheLine]byte
	}
	if !Padded(unsafe.Sizeof(cell{})) {
		t.Fatalf("tail-padded cell is %d bytes, not a line multiple", unsafe.Sizeof(cell{}))
	}
}
