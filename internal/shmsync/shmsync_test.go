package shmsync

import (
	"errors"
	"sync"
	"testing"
	"unsafe"

	"hybsync/internal/core"
	"hybsync/internal/pad"
)

func TestCCSynchSequential(t *testing.T) {
	var state uint64
	c := NewCCSynch(core.Func(func(op, arg uint64) uint64 {
		old := state
		state += arg
		return old
	}), 200)
	h := core.MustHandle(c)
	if got := h.Apply(0, 5); got != 0 {
		t.Fatalf("Apply = %d, want 0", got)
	}
	if got := h.Apply(0, 3); got != 5 {
		t.Fatalf("Apply = %d, want 5", got)
	}
	if state != 8 {
		t.Fatalf("state = %d", state)
	}
}

func TestCCSynchConcurrent(t *testing.T) {
	for _, maxOps := range []int32{1, 3, 200} {
		var state uint64
		c := NewCCSynch(core.Func(func(op, arg uint64) uint64 {
			v := state
			state = v + 1
			return v
		}), maxOps)
		const goroutines, per = 12, 3000
		var wg sync.WaitGroup
		seen := make([]map[uint64]bool, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				h := core.MustHandle(c)
				seen[g] = make(map[uint64]bool, per)
				for i := 0; i < per; i++ {
					seen[g][h.Apply(0, 0)] = true
				}
			}(g)
		}
		wg.Wait()
		if state != goroutines*per {
			t.Fatalf("maxOps=%d: state = %d, want %d", maxOps, state, goroutines*per)
		}
		union := make(map[uint64]bool)
		for _, m := range seen {
			for v := range m {
				if union[v] {
					t.Fatalf("maxOps=%d: duplicate pre-value %d", maxOps, v)
				}
				union[v] = true
			}
		}
		rounds, combined := c.Stats()
		if rounds+combined < goroutines*per {
			t.Fatalf("maxOps=%d: stats undercount: rounds %d combined %d", maxOps, rounds, combined)
		}
	}
}

func TestSHMServerBasic(t *testing.T) {
	var state uint64
	s := NewSHMServer(core.Func(func(op, arg uint64) uint64 {
		old := state
		state = old + arg + op
		return old
	}), 4)
	defer s.Close()
	h := core.MustHandle(s)
	if got := h.Apply(1, 2); got != 0 {
		t.Fatalf("Apply = %d, want 0", got)
	}
	if got := h.Apply(0, 0); got != 3 {
		t.Fatalf("Apply = %d, want 3", got)
	}
}

func TestSHMServerConcurrent(t *testing.T) {
	var state uint64
	s := NewSHMServer(core.Func(func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}), 32)
	defer s.Close()
	const goroutines, per = 16, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := core.MustHandle(s)
			for i := 0; i < per; i++ {
				h.Apply(0, 0)
			}
		}()
	}
	wg.Wait()
	if state != goroutines*per {
		t.Fatalf("state = %d, want %d", state, goroutines*per)
	}
}

func TestSHMServerTooManyClients(t *testing.T) {
	s := NewSHMServer(core.Func(func(op, arg uint64) uint64 { return 0 }), 1)
	defer s.Close()
	if _, err := s.NewHandle(); err != nil {
		t.Fatalf("NewHandle: %v", err)
	}
	if _, err := s.NewHandle(); !errors.Is(err, core.ErrTooManyHandles) {
		t.Fatalf("second NewHandle = %v, want ErrTooManyHandles", err)
	}
}

func TestLifecycleAfterClose(t *testing.T) {
	s := NewSHMServer(core.Func(func(op, arg uint64) uint64 { return 0 }), 2)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := s.NewHandle(); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
	}

	c := NewCCSynch(core.Func(func(op, arg uint64) uint64 { return 0 }), 200)
	if err := c.Close(); err != nil {
		t.Fatalf("ccsynch Close: %v", err)
	}
	if _, err := c.NewHandle(); !errors.Is(err, core.ErrClosed) {
		t.Fatalf("ccsynch NewHandle after Close = %v, want ErrClosed", err)
	}
}

func TestSHMServerZeroResultValues(t *testing.T) {
	// Results of zero must round-trip correctly (the req flag, not the
	// result word, signals completion).
	s := NewSHMServer(core.Func(func(op, arg uint64) uint64 { return 0 }), 2)
	defer s.Close()
	h := core.MustHandle(s)
	for i := 0; i < 100; i++ {
		if got := h.Apply(7, 9); got != 0 {
			t.Fatalf("Apply = %d, want 0", got)
		}
	}
}

func TestSlotLayout(t *testing.T) {
	if !pad.Padded(unsafe.Sizeof(shmSlot{})) {
		t.Fatalf("shmSlot is %d bytes, not a whole number of cache lines", unsafe.Sizeof(shmSlot{}))
	}
}

func TestNodeLayout(t *testing.T) {
	if !pad.Padded(unsafe.Sizeof(ccNode{})) {
		t.Fatalf("ccNode is %d bytes, not a whole number of cache lines", unsafe.Sizeof(ccNode{}))
	}
}
