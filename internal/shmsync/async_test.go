package shmsync

import (
	"sync"
	"testing"

	"hybsync/internal/core"
)

// seqDispatch hands out strictly increasing values so execution order
// is observable through the results.
func seqDispatch() (core.Dispatch, *uint64) {
	state := new(uint64)
	return func(op, arg uint64) uint64 {
		v := *state
		*state = v + 1
		return v
	}, state
}

// TestCCSynchSubmitWaitFIFO: pipelined CC-Synch submissions complete in
// submission order, including when the waiting thread inherits the
// combiner duty for its own deferred cells.
func TestCCSynchSubmitWaitFIFO(t *testing.T) {
	d, state := seqDispatch()
	c := NewCCSynch(core.Func(d), 4) // tiny MaxOps: rounds split, duty moves around
	defer c.Close()
	h, err := c.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	tickets := make([]core.Ticket, n)
	for i := range tickets {
		tickets[i], _ = h.Submit(0, 0)
	}
	var prev int64 = -1
	for i, tk := range tickets {
		v := int64(h.Wait(tk))
		if v <= prev {
			t.Fatalf("result %d = %d, not after %d", i, v, prev)
		}
		prev = v
	}
	if *state != n {
		t.Fatalf("state = %d, want %d", *state, n)
	}
}

// TestCCSynchOutOfOrderWait: a later ticket may be redeemed first; its
// Wait serves the earlier chain cells as combiner where needed.
func TestCCSynchOutOfOrderWait(t *testing.T) {
	d, _ := seqDispatch()
	c := NewCCSynch(core.Func(d), 200)
	defer c.Close()
	h, err := c.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := h.Submit(0, 0)
	t1, _ := h.Submit(0, 0)
	t2, _ := h.Submit(0, 0)
	if v := h.Wait(t2); v != 2 {
		t.Fatalf("Wait(t2) = %d, want 2", v)
	}
	if v := h.Wait(t0); v != 0 {
		t.Fatalf("Wait(t0) = %d, want 0", v)
	}
	if v := h.Wait(t1); v != 1 {
		t.Fatalf("Wait(t1) = %d, want 1", v)
	}
}

// TestCCSynchPostFlushDepth: posting far beyond the in-flight bound
// settles old cells as it goes; Flush completes the rest.
func TestCCSynchPostFlushDepth(t *testing.T) {
	d, state := seqDispatch()
	c := NewCCSynch(core.Func(d), 8)
	c.depth = 4
	defer c.Close()
	h, err := c.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := h.Post(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	h.Flush()
	if *state != n {
		t.Fatalf("state after %d posts + Flush = %d", n, *state)
	}
}

// TestCCSynchConcurrentPipelines: goroutines pipeline concurrently;
// each flushes its own handle (concurrently — a sequential flush of
// foreign handles could hold another pipeline's combiner duty).
func TestCCSynchConcurrentPipelines(t *testing.T) {
	d, state := seqDispatch()
	c := NewCCSynch(core.Func(d), 6)
	defer c.Close()
	const goroutines, per, depth = 4, 250, 5
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := c.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			var win []core.Ticket
			prev := int64(-1)
			for i := 0; i < per; i++ {
				if len(win) == depth {
					v := int64(h.Wait(win[0]))
					if v <= prev {
						panic("per-handle FIFO violated")
					}
					prev = v
					win = win[1:]
				}
				tk, _ := h.Submit(0, 0)
				win = append(win, tk)
			}
			for _, tk := range win {
				v := int64(h.Wait(tk))
				if v <= prev {
					panic("per-handle FIFO violated in drain")
				}
				prev = v
			}
		}()
	}
	wg.Wait()
	if *state != goroutines*per {
		t.Fatalf("state = %d, want %d", *state, goroutines*per)
	}
}

// TestCCSynchApplyAfterSubmit: an Apply issued while the handle has
// outstanding submissions must not spin on its own cell while an older
// unwaited cell holds the round's dormant combiner duty — the
// regression here deadlocked a single goroutine doing Submit (or Post)
// then Apply.
func TestCCSynchApplyAfterSubmit(t *testing.T) {
	d, state := seqDispatch()
	c := NewCCSynch(core.Func(d), 200)
	defer c.Close()
	h, err := c.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := h.Submit(0, 0)
	if v := h.Apply(0, 0); v != 1 {
		t.Fatalf("Apply after Submit = %d, want 1", v)
	}
	if v := h.Wait(t0); v != 0 {
		t.Fatalf("Wait(t0) = %d, want 0", v)
	}
	if err := h.Post(0, 0); err != nil {
		t.Fatal(err)
	}
	if v := h.Apply(0, 0); v != 3 {
		t.Fatalf("Apply after Post = %d, want 3", v)
	}
	h.Flush()
	if *state != 4 {
		t.Fatalf("state = %d, want 4", *state)
	}
}

// TestSHMServerImmediate: the fallback pipeline completes at Submit;
// results are still matched to tickets and Post/Flush work.
func TestSHMServerImmediate(t *testing.T) {
	d, state := seqDispatch()
	s := NewSHMServer(core.Func(d), 4)
	defer s.Close()
	h, err := s.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := h.Submit(0, 0)
	t1, _ := h.Submit(0, 0)
	if v := h.Wait(t1); v != 1 {
		t.Fatalf("Wait(t1) = %d, want 1", v)
	}
	if v := h.Wait(t0); v != 0 {
		t.Fatalf("Wait(t0) = %d, want 0", v)
	}
	if err := h.Post(0, 0); err != nil {
		t.Fatal(err)
	}
	h.Flush()
	if *state != 3 {
		t.Fatalf("state = %d, want 3", *state)
	}
}
