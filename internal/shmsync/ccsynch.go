// Package shmsync implements the paper's pure-shared-memory baselines:
// CC-SYNCH (Fatourou & Kallimanis, PPoPP'12), the most efficient
// shared-memory combining construction, and SHM-SERVER, a simplified RCL
// (Lozi et al., USENIX ATC'12) where a dedicated server thread polls
// per-client cache-line channels. Both satisfy core.Executor so every
// concurrent object in this repository can run over them.
package shmsync

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/core"
	"hybsync/internal/pad"
)

// The package's constructions self-register with the core registry so
// hybsync.New can build them by name.
func init() {
	core.MustRegister("ccsynch", func(d core.Dispatch, o core.Options) (core.Executor, error) {
		return NewCCSynch(d, o.MaxOps), nil
	})
	core.MustRegister("shmserver", func(d core.Dispatch, o core.Options) (core.Executor, error) {
		return NewSHMServer(d, o.MaxThreads), nil
	})
}

// CCSynch executes critical sections with the CC-Synch combining
// algorithm: threads SWAP their spare node onto a shared tail to publish
// a request, spin locally on their node's wait flag, and the thread
// whose wait clears with completed unset becomes the combiner, serving
// up to MaxOps requests along the list.
type CCSynch struct {
	dispatch core.Dispatch
	tail     atomic.Pointer[ccNode]
	maxOps   int32
	closed   atomic.Bool

	rounds   atomic.Uint64
	combined atomic.Uint64
}

// ccNodeHot is a request cell's live fields; every thread spins on its
// own node's wait flag, so the enclosing ccNode rounds the cell up to a
// whole number of cache lines (verified by TestNodeLayout) to keep
// separately-allocated nodes from false-sharing.
type ccNodeHot struct {
	wait      atomic.Bool
	completed bool
	op        uint64
	arg       uint64
	ret       uint64
	next      atomic.Pointer[ccNode]
}

type ccNode struct {
	ccNodeHot
	_ [pad.CacheLine - unsafe.Sizeof(ccNodeHot{})%pad.CacheLine]byte
}

// NewCCSynch creates the structure with the given combining bound
// (<=0 means the paper's 200).
func NewCCSynch(dispatch core.Dispatch, maxOps int32) *CCSynch {
	if maxOps <= 0 {
		maxOps = 200
	}
	c := &CCSynch{dispatch: dispatch, maxOps: maxOps}
	c.tail.Store(&ccNode{}) // initial dummy: wait=false, completed=false
	return c
}

// NewHandle implements core.Executor. CC-Synch has no structural bound
// on participants, so handles are unlimited until Close.
func (c *CCSynch) NewHandle() (core.Handle, error) {
	if c.closed.Load() {
		return nil, fmt.Errorf("shmsync: ccsynch: %w", core.ErrClosed)
	}
	return &ccHandle{c: c, node: &ccNode{}}, nil
}

// Close implements core.Executor. CC-Synch owns no background
// goroutine; closing only fails future NewHandle calls. Idempotent.
func (c *CCSynch) Close() error {
	c.closed.Store(true)
	return nil
}

// Stats returns combining rounds and requests combined for others.
func (c *CCSynch) Stats() (rounds, combined uint64) {
	return c.rounds.Load(), c.combined.Load()
}

type ccHandle struct {
	c    *CCSynch
	node *ccNode // thread-local spare node
}

// Apply implements core.Handle following CC-Synch.
func (h *ccHandle) Apply(op, arg uint64) uint64 {
	c := h.c

	nextNode := h.node
	nextNode.wait.Store(true)
	nextNode.completed = false
	nextNode.next.Store(nil)

	cur := c.tail.Swap(nextNode)
	cur.op = op
	cur.arg = arg
	h.node = cur
	cur.next.Store(nextNode) // publish after filling the request

	var b backoff.Backoff
	for cur.wait.Load() {
		b.Wait()
	}
	if cur.completed {
		return cur.ret
	}

	// Combiner: serve the chain starting at our own request.
	tmp := cur
	var count int32
	var myRet uint64
	for count < c.maxOps {
		next := tmp.next.Load()
		if next == nil {
			break
		}
		count++
		ret := c.dispatch(tmp.op, tmp.arg)
		if tmp == cur {
			myRet = ret
		} else {
			tmp.ret = ret
			tmp.completed = true
			tmp.wait.Store(false)
		}
		tmp = next
	}
	// Hand over: the owner of tmp wakes with completed=false and combines.
	tmp.wait.Store(false)
	c.rounds.Add(1)
	c.combined.Add(uint64(count))
	return myRet
}
