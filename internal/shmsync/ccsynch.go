// Package shmsync implements the paper's pure-shared-memory baselines:
// CC-SYNCH (Fatourou & Kallimanis, PPoPP'12), the most efficient
// shared-memory combining construction, and SHM-SERVER, a simplified RCL
// (Lozi et al., USENIX ATC'12) where a dedicated server thread polls
// per-client cache-line channels. Both satisfy core.Executor so every
// concurrent object in this repository can run over them.
package shmsync

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/core"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// The package's constructions self-register with the core registry so
// hybsync.New can build them by name.
func init() {
	core.MustRegister("ccsynch", func(obj core.Object, o core.Options) (core.Executor, error) {
		c := NewCCSynch(obj, o.MaxOps)
		c.depth = o.QueueCap
		c.stall = o.StallTimeout
		c.tel = o.Telemetry
		c.Tel = o.Telemetry
		return c, nil
	})
	core.MustRegister("shmserver", func(obj core.Object, o core.Options) (core.Executor, error) {
		s := NewSHMServer(obj, o.MaxThreads)
		s.stall = o.StallTimeout
		// The server goroutine is already polling: publish the metric
		// core through an atomic so its sweep recorder can attach late.
		s.setTelemetry(o.Telemetry)
		return s, nil
	})
}

// CCSynch executes critical sections with the CC-Synch combining
// algorithm: threads SWAP their spare node onto a shared tail to publish
// a request, spin locally on their node's wait flag, and the thread
// whose wait clears with completed unset becomes the combiner, serving
// up to MaxOps requests along the list. The combiner walks its chain
// segment into a reusable request batch and executes each run as one
// DispatchBatch call against the object (chunked at ccRunCap),
// releasing the served cells after the run — the dispatch analogue of
// the message-passing constructions' batched receives.
//
// Asynchronous submission publishes the request cell without spinning:
// each outstanding operation holds its own node (pooled per handle, up
// to depth in flight), and completion — spinning on that node, and
// combining when the round's combiner handed us the duty — happens at
// Wait. The chain orders a handle's cells in submission order and
// combiners serve the chain in order, so completion is per-handle FIFO.
//
// Deferred combiner duty is the price of deferring completion: requests
// behind an unwaited cell that was handed the combiner role do not
// execute until that cell's handle calls Wait or Flush. Every submitted
// ticket must therefore eventually be waited or flushed — and draining
// several handles' pipelines from one goroutine should flush them
// concurrently, not sequentially, since one handle's unflushed cell can
// hold the duty another handle's Flush is spinning on.
type CCSynch struct {
	core.PoisonLatch
	obj    core.Object
	tail   atomic.Pointer[ccNode]
	maxOps int32
	depth  int                  // per-handle in-flight bound (Options.QueueCap)
	stall  time.Duration        // stall watchdog budget (Options.StallTimeout)
	tel    *telemetry.Telemetry // metric core (Options.Telemetry; nil = disarmed)
	closed atomic.Bool

	rounds   atomic.Uint64
	combined atomic.Uint64
	ps       core.PipeCounters
}

// ccNodeHot is a request cell's live fields; every thread spins on its
// own node's wait flag, so the enclosing ccNode rounds the cell up to a
// whole number of cache lines (verified by TestNodeLayout) to keep
// separately-allocated nodes from false-sharing.
type ccNodeHot struct {
	wait      atomic.Bool
	completed bool
	op        uint64
	arg       uint64
	ret       uint64
	next      atomic.Pointer[ccNode]
}

//hyblint:padded
type ccNode struct {
	ccNodeHot
	_ [pad.CacheLine - unsafe.Sizeof(ccNodeHot{})%pad.CacheLine]byte
}

// NewCCSynch creates the structure with the given combining bound
// (<=0 means the paper's 200).
func NewCCSynch(obj core.Object, maxOps int32) *CCSynch {
	if maxOps <= 0 {
		maxOps = 200
	}
	c := &CCSynch{obj: obj, maxOps: maxOps, depth: 39}
	c.Algo = "ccsynch"
	c.tail.Store(&ccNode{}) // initial dummy: wait=false, completed=false
	return c
}

// NewHandle implements core.Executor. CC-Synch has no structural bound
// on participants, so handles are unlimited until Close.
func (c *CCSynch) NewHandle() (core.Handle, error) {
	if err := c.Err(); err != nil {
		return nil, fmt.Errorf("shmsync: ccsynch: %w", err)
	}
	if c.closed.Load() {
		return nil, fmt.Errorf("shmsync: ccsynch: %w", core.ErrClosed)
	}
	h := &ccHandle{
		c:    c,
		node: &ccNode{},
		rec:  c.tel.Recorder(),
		wb:   backoff.Armed(c.stall, "ccsynch: waiting for cell service"),
	}
	// Set on the stored waiter: Armed returns by value, so a hook set
	// on the temporary would be lost.
	h.wb.SetOnStall(c.tel.StallHook())
	return h, nil
}

// Close implements core.Executor. CC-Synch owns no background
// goroutine — outstanding cells live on the shared chain and are
// settled by their handle's Wait/Flush (which also discharges dormant
// combiner duty), so tickets stay redeemable after Close. Closing only
// fails future NewHandle calls; it is idempotent and reports the
// *PoisonError when poisoned.
func (c *CCSynch) Close() error {
	c.closed.Store(true)
	return c.Err()
}

// Stats returns combining rounds and requests combined for others.
// Read only at pipeline quiescence (every handle flushed).
func (c *CCSynch) Stats() (rounds, combined uint64) {
	return c.rounds.Load(), c.combined.Load()
}

// Pipeline implements core.PipelineStats.
func (c *CCSynch) Pipeline() (submitStalls, maxDepth uint64) { return c.ps.Pipeline() }

// Telemetry implements core.TelemetrySource.
func (c *CCSynch) Telemetry() *telemetry.Telemetry { return c.tel }

// ccOp is one outstanding asynchronous operation: the chain cell whose
// wait flag will clear when the operation is served (or when its owner
// inherits combiner duty).
type ccOp struct {
	cell    *ccNode
	discard bool
}

type ccHandle struct {
	c    *CCSynch
	node *ccNode   // thread-local spare node (nil while loaned to the chain)
	free []*ccNode // reclaimed spares beyond node

	// Combiner-side batch scratch: the chain segment being served, its
	// requests and their results (chunked at ccRunCap); bcells is the
	// submission side's published-cell scratch for ApplyBatch.
	cells  []*ccNode
	creqs  []core.Req
	crets  []uint64
	bcells []*ccNode

	dt   core.DepthTracker
	rec  *telemetry.Recorder
	seq  uint64          // next ticket sequence number
	ops  map[uint64]ccOp // outstanding submissions (nil until first Submit)
	fifo []uint64        // submission order of outstanding seqs (lazily pruned)
	res  map[uint64]uint64
	sqs  []uint64 // ApplyBatch sequence scratch

	// wb is the watched waiter for cell-service spins, constructed once
	// per handle and Reset per wait loop so the per-operation path never
	// zeroes the watchdog state.
	wb backoff.Watched
}

// ccRunCap bounds one DispatchBatch run while combining, matching the
// message-passing constructions' receive-buffer cap: a chain of up to
// MaxOps cells is served in runs of at most this many.
const ccRunCap = 256

// takeSpare hands out a free node for the next swap onto the chain,
// growing the pool when every node is in flight.
func (h *ccHandle) takeSpare() *ccNode {
	if n := h.node; n != nil {
		h.node = nil
		return n
	}
	if k := len(h.free); k > 0 {
		n := h.free[k-1]
		h.free = h.free[:k-1]
		return n
	}
	return &ccNode{}
}

// reclaim returns a completed cell to the pool.
func (h *ccHandle) reclaim(n *ccNode) {
	if h.node == nil {
		h.node = n
		return
	}
	h.free = append(h.free, n)
}

// publish is the submission half of CC-Synch: swap a spare node onto
// the tail and fill the previous tail with our request. The returned
// cell is the operation's completion point.
func (h *ccHandle) publish(op, arg uint64) *ccNode {
	nextNode := h.takeSpare()
	nextNode.wait.Store(true)
	nextNode.completed = false
	nextNode.next.Store(nil)

	cur := h.c.tail.Swap(nextNode)
	cur.op = op
	cur.arg = arg
	cur.next.Store(nextNode) // publish after filling the request
	return cur
}

// flushRun executes the collected chain segment as one DispatchBatch
// and releases every served cell; the combiner's own cell cur is not
// released (its result is returned through myRet instead).
func (h *ccHandle) flushRun(cur *ccNode, myRet *uint64) {
	if len(h.cells) == 0 {
		return
	}
	if cap(h.crets) < len(h.cells) {
		h.crets = make([]uint64, len(h.cells))
	}
	rets := h.crets[:len(h.cells)]
	// Dispatch through the poison latch: a panicking object poisons the
	// executor and the run completes with zeros, so every cell in the
	// segment is still released and no follower spins forever.
	h.c.PoisonLatch.Dispatch(h.c.obj, h.creqs, rets)
	h.rec.RunLen(len(h.cells))
	for i, cell := range h.cells {
		if cell == cur {
			*myRet = rets[i]
			continue
		}
		cell.ret = rets[i]
		cell.completed = true
		cell.wait.Store(false)
	}
	h.cells = h.cells[:0]
	h.creqs = h.creqs[:0]
}

// completeCell spins locally on the cell and combines if the round's
// combiner handed us the duty; the caller owns the cell's reclaim.
func (h *ccHandle) completeCell(cur *ccNode) uint64 {
	c := h.c
	if cur.wait.Load() {
		h.wb.Reset()
		for cur.wait.Load() {
			h.wb.Wait()
		}
	}
	if cur.completed {
		return cur.ret
	}

	// Combiner: walk the chain starting at our own request, collecting
	// each run of published cells into a reusable batch and executing
	// it as one DispatchBatch (chunked at ccRunCap). Cells release
	// after their run executes — followers wait for the run, the
	// flat-combining trade for amortizing the dispatch indirection.
	tmp := cur
	var count int32
	var myRet uint64
	for count < c.maxOps {
		next := tmp.next.Load()
		if next == nil {
			break
		}
		count++
		h.cells = append(h.cells, tmp)
		h.creqs = append(h.creqs, core.Req{Op: tmp.op, Arg: tmp.arg})
		if len(h.cells) == ccRunCap {
			h.flushRun(cur, &myRet)
		}
		tmp = next
	}
	h.flushRun(cur, &myRet)
	// Hand over: the owner of tmp wakes with completed=false and combines.
	tmp.wait.Store(false)
	c.rounds.Add(1)
	c.combined.Add(uint64(count))
	return myRet
}

// complete is the completion half of an asynchronous submission:
// completeCell plus returning the cell to the pool.
func (h *ccHandle) complete(cur *ccNode) uint64 {
	ret := h.completeCell(cur)
	h.reclaim(cur)
	return ret
}

// Apply implements core.Handle following CC-Synch: publish, then
// complete — Submit and Wait fused. With outstanding asynchronous
// submissions it must compose literally: an older unwaited cell may
// hold the round's dormant combiner duty, and only Wait's
// settle-older loop prevents spinning on a cell nobody will ever
// serve. With nothing outstanding the resident spare is recycled
// exactly as in the synchronous algorithm (the classic node
// exchange), skipping the pool bookkeeping.
func (h *ccHandle) Apply(op, arg uint64) uint64 {
	if h.c.Poisoned() {
		return 0
	}
	if len(h.ops) != 0 {
		t, _ := h.Submit(op, arg)
		return h.Wait(t) // Wait takes the latency sample
	}
	// One latency sample = one publish-to-completion call (including
	// any inherited combining duty).
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	var ret uint64
	if h.node == nil {
		ret = h.complete(h.publish(op, arg))
	} else {
		nextNode := h.node
		nextNode.wait.Store(true)
		nextNode.completed = false
		nextNode.next.Store(nil)

		cur := h.c.tail.Swap(nextNode)
		cur.op = op
		cur.arg = arg
		h.node = cur
		cur.next.Store(nextNode) // publish after filling the request
		ret = h.completeCell(cur)
	}
	if sampled {
		h.rec.Latency(t0)
	}
	return ret
}

// settleOldest completes the oldest outstanding submission, banking its
// result unless it was posted fire-and-forget.
func (h *ccHandle) settleOldest() {
	for len(h.fifo) > 0 {
		seq := h.fifo[0]
		h.fifo = h.fifo[1:]
		op, ok := h.ops[seq]
		if !ok {
			continue // already waited directly; pruned lazily
		}
		delete(h.ops, seq)
		v := h.complete(op.cell)
		if !op.discard {
			if h.res == nil {
				h.res = make(map[uint64]uint64)
			}
			h.res[seq] = v
		}
		return
	}
}

// submitOp publishes a request cell asynchronously, first settling the
// oldest outstanding operation when depth cells are already in flight.
func (h *ccHandle) submitOp(op, arg uint64, discard bool) uint64 {
	if len(h.ops) >= h.c.depth {
		h.c.ps.NoteStall()
		h.c.tel.NoteSubmitStall()
		h.settleOldest()
	}
	cell := h.publish(op, arg)
	if h.ops == nil {
		h.ops = make(map[uint64]ccOp)
	}
	seq := h.seq
	h.seq++
	h.ops[seq] = ccOp{cell: cell, discard: discard}
	h.fifo = append(h.fifo, seq)
	h.dt.Note(&h.c.ps, len(h.ops))
	return seq
}

// Submit implements core.Handle: publish the cell, defer the spin (and
// any inherited combiner duty) to Wait. On a poisoned executor it
// fails fast with the *PoisonError and no cell is published.
func (h *ccHandle) Submit(op, arg uint64) (core.Ticket, error) {
	if err := h.c.Err(); err != nil {
		return core.Ticket{}, err
	}
	return core.NewTicket(h.submitOp(op, arg, false)), nil
}

// oldestSeq returns the oldest outstanding submission, pruning fifo
// entries already waited directly.
func (h *ccHandle) oldestSeq() (uint64, bool) {
	for len(h.fifo) > 0 {
		if _, ok := h.ops[h.fifo[0]]; ok {
			return h.fifo[0], true
		}
		h.fifo = h.fifo[1:]
	}
	return 0, false
}

// Wait implements core.Handle.
func (h *ccHandle) Wait(t core.Ticket) uint64 {
	seq := t.Seq()
	if v, ok := h.res[seq]; ok {
		delete(h.res, seq)
		return v
	}
	op, ok := h.ops[seq]
	if !ok {
		panic("shmsync: ccsynch: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	// An out-of-order Wait must not spin on a cell while an earlier
	// unwaited cell of this same handle holds the round's dormant
	// combiner duty — nobody else would ever serve us. Settle older
	// cells in order until our cell's wait clears or we are the oldest.
	for op.cell.wait.Load() {
		oldest, any := h.oldestSeq()
		if !any || oldest == seq {
			break
		}
		h.settleOldest()
	}
	delete(h.ops, seq) // its fifo entry is pruned lazily
	v := h.complete(op.cell)
	if sampled {
		h.rec.Latency(t0)
	}
	return v
}

// TryWait implements core.Handle. A not-ready ticket's cell stays on
// the chain and the ticket stays redeemable. Like Wait, TryWait may
// settle OLDER same-handle cells first — but only cells whose wait
// flag has already cleared, so it never blocks; settling one may
// perform inherited combining duty, which serves our cell as part of
// the round.
func (h *ccHandle) TryWait(t core.Ticket) (uint64, error) {
	seq := t.Seq()
	if v, ok := h.res[seq]; ok {
		delete(h.res, seq)
		return v, h.c.Err()
	}
	op, ok := h.ops[seq]
	if !ok {
		panic("shmsync: ccsynch: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	for op.cell.wait.Load() {
		oldest, any := h.oldestSeq()
		if !any || oldest == seq {
			return 0, core.ErrNotReady
		}
		if h.ops[oldest].cell.wait.Load() {
			return 0, core.ErrNotReady
		}
		h.settleOldest()
	}
	delete(h.ops, seq)
	return h.complete(op.cell), h.c.Err()
}

// WaitTimeout implements core.Handle: TryWait in a deadline loop. The
// bound covers waiting on OTHER threads' progress; once the cell is
// servable the call runs to completion (including inherited combining
// duty) regardless of d.
func (h *ccHandle) WaitTimeout(t core.Ticket, d time.Duration) (uint64, error) {
	v, err := h.TryWait(t)
	if !errors.Is(err, core.ErrNotReady) {
		return v, err
	}
	deadline := time.Now().Add(d)
	h.wb.Reset()
	for {
		h.wb.Wait()
		v, err = h.TryWait(t)
		if !errors.Is(err, core.ErrNotReady) {
			return v, err
		}
		if !time.Now().Before(deadline) {
			return 0, core.ErrWaitTimeout
		}
	}
}

// Err implements core.Handle.
func (h *ccHandle) Err() error { return h.c.Err() }

// Post implements core.Handle: fire-and-forget; the cell is settled by
// a later same-handle submission, Wait or Flush.
func (h *ccHandle) Post(op, arg uint64) error {
	if err := h.c.Err(); err != nil {
		return err
	}
	h.submitOp(op, arg, true)
	return nil
}

// Flush implements core.Handle: settle every outstanding cell in
// submission order, banking unwaited Submit results.
func (h *ccHandle) Flush() {
	for len(h.ops) > 0 {
		h.settleOldest()
	}
	h.fifo = h.fifo[:0]
}

// ApplyBatch implements core.Handle: publish a cell per request —
// submission order, so the cells form a contiguous-per-handle chain
// segment — then complete them in order. Whichever cell inherits
// combiner duty serves the chain (our remaining cells included) through
// single DispatchBatch runs, so the batch typically costs one spin-wait
// and one dispatch call instead of one per operation.
//
// With asynchronous submissions outstanding the batch must compose
// through the pipeline (submitOp/Wait — an older unwaited cell may
// hold dormant combiner duty, exactly the Apply hazard); with nothing
// outstanding it publishes straight cells with none of the pipeline's
// ticket bookkeeping, chunked at the handle's depth bound.
func (h *ccHandle) ApplyBatch(reqs []core.Req, results []uint64) {
	if len(reqs) == 0 {
		return
	}
	if h.c.Poisoned() {
		if results != nil {
			for i := range reqs {
				results[i] = 0
			}
		}
		return
	}
	if len(reqs) == 1 { // a 1-batch is exactly the scalar critical section
		v := h.Apply(reqs[0].Op, reqs[0].Arg)
		if results != nil {
			results[0] = v
		}
		return
	}
	if len(h.ops) != 0 {
		if cap(h.sqs) < len(reqs) {
			h.sqs = make([]uint64, len(reqs))
		}
		sqs := h.sqs[:len(reqs)]
		for i, r := range reqs {
			sqs[i] = h.submitOp(r.Op, r.Arg, false)
		}
		for i, seq := range sqs {
			v := h.Wait(core.NewTicket(seq)) // Wait takes the latency samples
			if results != nil {
				results[i] = v
			}
		}
		return
	}
	// One latency sample covers the whole batch call.
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	depth := h.c.depth
	for start := 0; start < len(reqs); start += depth {
		chunk := reqs[start:]
		if len(chunk) > depth {
			chunk = chunk[:depth]
		}
		if cap(h.bcells) < len(chunk) {
			h.bcells = make([]*ccNode, len(chunk))
		}
		cells := h.bcells[:len(chunk)]
		for i, r := range chunk {
			cells[i] = h.publish(r.Op, r.Arg)
		}
		// Completing the first cell combines the whole published
		// segment (one DispatchBatch run); the rest wake completed.
		for i, cell := range cells {
			v := h.complete(cell)
			if results != nil {
				results[start+i] = v
			}
		}
	}
	if sampled {
		h.rec.Latency(t0)
	}
}
