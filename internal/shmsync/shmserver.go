package shmsync

import (
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/core"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// SHMServer is the paper's SHM-SERVER: a simplified RCL. Each client
// owns one padded slot (its "cache line channel"); it publishes {op,
// arg} there and spins until the server writes back the result. A
// dedicated server goroutine scans the slots round-robin — each sweep
// is a batched receive in the same sense as MPServer's drain: every
// run of consecutive occupied slots found in one pass is gathered and
// executed as ONE DispatchBatch call before the results are written
// back and the slots released, and an idle server backs off (spin →
// yield → sleep) instead of burning its core. This is message passing
// emulated over coherent shared memory — the baseline whose
// per-request coherence misses MP-SERVER eliminates.
type SHMServer struct {
	core.PoisonLatch
	obj    core.Object
	slots  []shmSlot
	stall  time.Duration // stall watchdog budget (Options.StallTimeout)
	nextID atomic.Int32
	stop   atomic.Bool
	done   chan struct{}
	// tel is atomic because the registry factory arms telemetry after
	// NewSHMServer has already started the polling goroutine; the sweep
	// attaches its recorder lazily on the first armed flush.
	tel atomic.Pointer[telemetry.Telemetry]
}

// setTelemetry arms the metric core (nil is a no-op, leaving the
// server disarmed). Call before handing out handles.
func (s *SHMServer) setTelemetry(t *telemetry.Telemetry) {
	if t != nil {
		s.tel.Store(t)
		s.Tel = t
	}
}

// Telemetry implements core.TelemetrySource.
func (s *SHMServer) Telemetry() *telemetry.Telemetry { return s.tel.Load() }

// shmSlotHot is one client channel: req holds op+1 (0 = empty). The
// server writes ret then clears req; the client spins on req. The
// enclosing shmSlot rounds it up to a whole cache line (verified by
// TestSlotLayout) so neighbouring clients never false-share.
type shmSlotHot struct {
	req atomic.Uint64
	arg uint64
	ret uint64
}

//hyblint:padded
type shmSlot struct {
	shmSlotHot
	_ [pad.CacheLine - unsafe.Sizeof(shmSlotHot{})%pad.CacheLine]byte
}

// NewSHMServer starts the polling server goroutine for up to maxClients
// clients. Close must be called to stop it.
func NewSHMServer(obj core.Object, maxClients int) *SHMServer {
	if maxClients <= 0 {
		maxClients = 128
	}
	s := &SHMServer{
		obj:   obj,
		slots: make([]shmSlot, maxClients),
		done:  make(chan struct{}),
	}
	s.Algo = "shmserver"
	go s.serve()
	return s
}

func (s *SHMServer) serve() {
	defer close(s.done)
	// Each idle re-check is a full slot sweep, so skip the pure-spin
	// phase: yield to the clients immediately, then escalate to sleep.
	idle := backoff.Yielding()
	// A sweep gathers each run of consecutive occupied slots into one
	// batch; a gap in the scan (or the end of the sweep) flushes the
	// run as a single DispatchBatch, then writes the results back and
	// releases the slots. Contended neighbours thus amortize the
	// dispatch indirection while a lone client still gets a 1-batch.
	pend := make([]*shmSlot, 0, len(s.slots))
	reqs := make([]core.Req, 0, len(s.slots))
	rets := make([]uint64, len(s.slots))
	// The recorder attaches exactly once, at the first non-empty flush:
	// telemetry arms after serve starts but before any handle exists
	// (setTelemetry's contract), and a non-empty flush implies a client
	// held a handle — so one load suffices, and a disarmed sweep never
	// re-reads the atomic pointer on its per-op hot path.
	var rec *telemetry.Recorder
	recSet := false
	flush := func() {
		if len(pend) == 0 {
			return
		}
		// Dispatch through the poison latch: a panicking object poisons
		// the server and the run completes with zeros, so every occupied
		// slot is still released — clients never spin on a dead server.
		s.PoisonLatch.Dispatch(s.obj, reqs, rets[:len(reqs)])
		for i, slot := range pend {
			slot.ret = rets[i]
			slot.req.Store(0) // release: the client observes ret before this
		}
		// Record after the release stores: the sweep is the round trip's
		// critical path, and even a nil-recorder call between publish and
		// release delays every spinning client.
		if !recSet {
			rec, recSet = s.tel.Load().Recorder(), true
		}
		rec.RunLen(len(pend))
		pend = pend[:0]
		reqs = reqs[:0]
	}
	// The emptiness guard is hoisted to the call sites: flush outgrew
	// the inlining budget when it learned to record run lengths, and an
	// outlined call per empty slot taxes every sweep by a call per slot
	// — a measurable per-op regression at one client, where each sweep
	// scans the full slot array for one occupied entry. With the guard
	// here, the empty-slot path stays call-free however flush grows.
	sweep := func() (served bool) {
		for i := range s.slots {
			slot := &s.slots[i]
			req := slot.req.Load()
			if req == 0 {
				if len(pend) != 0 {
					flush() // end of a consecutive occupied run
				}
				continue
			}
			pend = append(pend, slot)
			reqs = append(reqs, core.Req{Op: req - 1, Arg: slot.arg})
			served = true
		}
		if len(pend) != 0 {
			flush()
		}
		return served
	}
	for {
		if sweep() {
			idle.Reset()
			continue
		}
		if s.stop.Load() {
			// Draining close: one more full sweep after observing stop.
			// A request published before Close happened-before the stop
			// flag's store, so this sweep sees it — the empty sweep above
			// may have scanned that slot before the publish landed.
			if !sweep() {
				return
			}
			continue
		}
		idle.Wait()
	}
}

// NewHandle implements core.Executor.
func (s *SHMServer) NewHandle() (core.Handle, error) {
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("shmsync: shmserver: %w", err)
	}
	if s.stop.Load() {
		return nil, fmt.Errorf("shmsync: shmserver: %w", core.ErrClosed)
	}
	id := s.nextID.Add(1) - 1
	if int(id) >= len(s.slots) {
		return nil, fmt.Errorf("shmsync: more than %d clients (raise MaxThreads): %w",
			len(s.slots), core.ErrTooManyHandles)
	}
	h := &shmHandle{
		s:    s,
		slot: &s.slots[id],
		rec:  s.tel.Load().Recorder(),
		wb:   backoff.Armed(s.stall, "shmserver: waiting for server sweep"),
	}
	// Set on the stored waiter: Armed returns by value, so a hook set
	// on the temporary would be lost.
	h.wb.SetOnStall(s.tel.Load().StallHook())
	return h, nil
}

// Close stops the server once all in-flight requests are served (the
// server drains occupied slots before exiting, so a concurrent Apply
// that published before Close still completes). It is idempotent; on
// a poisoned executor it still stops the server and reports the
// *PoisonError.
func (s *SHMServer) Close() error {
	if s.stop.CompareAndSwap(false, true) {
		<-s.done
	}
	return s.Err()
}

type shmHandle struct {
	s    *SHMServer
	slot *shmSlot
	im   core.Immediate
	rec  *telemetry.Recorder

	// wb is the watched waiter for the slot spin, constructed once per
	// handle and Reset per Apply so the per-operation path never zeroes
	// the watchdog state.
	wb backoff.Watched
}

// Apply publishes the request in the client's slot and spins locally
// until the server clears it. On a poisoned executor it short-circuits
// to the poisoned zero without touching the slot.
func (h *shmHandle) Apply(op, arg uint64) uint64 {
	if h.s.Poisoned() {
		return 0
	}
	// One latency sample = one slot round-trip. ApplyBatch loops Apply
	// (one slot per client), so batch entries sample individually.
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h.slot.arg = arg
	h.slot.req.Store(op + 1)
	if h.slot.req.Load() != 0 {
		h.wb.Reset()
		for h.slot.req.Load() != 0 {
			h.wb.Wait()
		}
	}
	if sampled {
		h.rec.Latency(t0)
	}
	return h.slot.ret
}

// Submit implements core.Handle with immediate completion: a client
// owns exactly one request slot, so there is nothing to pipeline — the
// operation executes on the spot and the result is banked for Wait. On
// a poisoned executor it fails fast with the *PoisonError.
func (h *shmHandle) Submit(op, arg uint64) (core.Ticket, error) {
	if err := h.s.Err(); err != nil {
		return core.Ticket{}, err
	}
	return h.im.Complete(h.Apply(op, arg)), nil
}

// Wait implements core.Handle.
func (h *shmHandle) Wait(t core.Ticket) uint64 { return h.im.Take(t) }

// TryWait and WaitTimeout are trivially Wait: every submission
// completed at Submit time, so an outstanding ticket is always ready.
func (h *shmHandle) TryWait(t core.Ticket) (uint64, error) {
	return h.im.Take(t), h.s.Err()
}

// WaitTimeout implements core.Handle.
func (h *shmHandle) WaitTimeout(t core.Ticket, d time.Duration) (uint64, error) {
	return h.im.Take(t), h.s.Err()
}

// Err implements core.Handle.
func (h *shmHandle) Err() error { return h.s.Err() }

// Post implements core.Handle: execute now, drop the result.
func (h *shmHandle) Post(op, arg uint64) error {
	if err := h.s.Err(); err != nil {
		return err
	}
	h.Apply(op, arg)
	return nil
}

// Flush implements core.Handle: every submission completed at Submit
// time, so there is never anything in flight.
func (h *shmHandle) Flush() {}

// ApplyBatch implements core.Handle by looping: a client owns exactly
// one request slot, so its own batch cannot travel together — batches
// form server-side instead, across clients, when the sweep finds
// consecutive occupied slots.
func (h *shmHandle) ApplyBatch(reqs []core.Req, results []uint64) {
	for i, r := range reqs {
		v := h.Apply(r.Op, r.Arg)
		if results != nil {
			results[i] = v
		}
	}
}
