package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds one executor instance for a registered algorithm
// around the batch-aware Object contract. The Options it receives are
// already filled with defaults. Legacy scalar dispatches arrive
// wrapped in Func (New does this), so a factory never distinguishes
// the two.
type Factory func(Object, Options) (Executor, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds an algorithm under name. It fails with
// ErrDuplicateAlgorithm if the name is taken. Construction packages
// call it from init; applications may register their own executors and
// construct them (and the repository's objects) by name.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("core: %q: %w", name, ErrDuplicateAlgorithm)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register, panicking on failure; for init-time use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// New constructs the named algorithm around a legacy scalar dispatch,
// wrapping it in the Func adapter; NewObject is the batch-aware
// primary entry point.
func New(name string, dispatch Dispatch, opts ...Option) (Executor, error) {
	return NewObject(name, Func(dispatch), opts...)
}

// NewObject constructs the named algorithm around the batch-aware
// object: every drained run, combining round or lock-held batch the
// construction forms reaches obj as one DispatchBatch call.
func NewObject(name string, obj Object, opts ...Option) (Executor, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %q (have: %s): %w",
			name, strings.Join(Algorithms(), ", "), ErrUnknownAlgorithm)
	}
	o, err := BuildOptions(opts...)
	if err != nil {
		return nil, err
	}
	return f(obj, o)
}

// MustNew is New, panicking on failure.
func MustNew(name string, dispatch Dispatch, opts ...Option) Executor {
	e, err := New(name, dispatch, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// MustNewObject is NewObject, panicking on failure.
func MustNewObject(name string, obj Object, opts ...Option) Executor {
	e, err := NewObject(name, obj, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Algorithms returns the sorted names of all registered algorithms.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The package's own constructions self-register here; shmsync and spin
// register theirs from their own init functions.
func init() {
	MustRegister("mpserver", func(obj Object, o Options) (Executor, error) {
		return NewMPServer(obj, o), nil
	})
	MustRegister("hybcomb", func(obj Object, o Options) (Executor, error) {
		return NewHybComb(obj, o), nil
	})
}
