package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Factory builds one executor instance for a registered algorithm.
// The Options it receives are already filled with defaults.
type Factory func(Dispatch, Options) (Executor, error)

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
)

// Register adds an algorithm under name. It fails with
// ErrDuplicateAlgorithm if the name is taken. Construction packages
// call it from init; applications may register their own executors and
// construct them (and the repository's objects) by name.
func Register(name string, f Factory) error {
	if name == "" || f == nil {
		return fmt.Errorf("core: Register needs a name and a factory")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("core: %q: %w", name, ErrDuplicateAlgorithm)
	}
	registry[name] = f
	return nil
}

// MustRegister is Register, panicking on failure; for init-time use.
func MustRegister(name string, f Factory) {
	if err := Register(name, f); err != nil {
		panic(err)
	}
}

// New constructs the named algorithm around dispatch.
func New(name string, dispatch Dispatch, opts ...Option) (Executor, error) {
	regMu.RLock()
	f, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("core: %q (have: %s): %w",
			name, strings.Join(Algorithms(), ", "), ErrUnknownAlgorithm)
	}
	o, err := BuildOptions(opts...)
	if err != nil {
		return nil, err
	}
	return f(dispatch, o)
}

// MustNew is New, panicking on failure.
func MustNew(name string, dispatch Dispatch, opts ...Option) Executor {
	e, err := New(name, dispatch, opts...)
	if err != nil {
		panic(err)
	}
	return e
}

// Algorithms returns the sorted names of all registered algorithms.
func Algorithms() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// The package's own constructions self-register here; shmsync and spin
// register theirs from their own init functions.
func init() {
	MustRegister("mpserver", func(d Dispatch, o Options) (Executor, error) {
		return NewMPServer(d, o), nil
	})
	MustRegister("hybcomb", func(d Dispatch, o Options) (Executor, error) {
		return NewHybComb(d, o), nil
	})
}
