package core

import "sync/atomic"

// PipeCounters is the shared implementation of PipelineStats, embedded
// by the pipelining executors (MPServer, HybComb here; CC-Synch in
// internal/shmsync). Stalls are counted directly — a stall already
// pays a blocking receive or a combining round, so one more atomic add
// is noise — while depth goes through a per-handle DepthTracker so the
// hot submission path almost never touches the shared maximum.
type PipeCounters struct {
	stalls atomic.Uint64
	depth  atomic.Uint64
}

// NoteStall records one submission that found the handle's pipeline
// full and had to absorb or settle an older operation first.
func (p *PipeCounters) NoteStall() { p.stalls.Add(1) }

// bumpDepth raises the published maximum in-flight depth to d
// (monotonic CAS max).
func (p *PipeCounters) bumpDepth(d uint64) {
	for {
		cur := p.depth.Load()
		if d <= cur || p.depth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// Pipeline implements PipelineStats.
func (p *PipeCounters) Pipeline() (submitStalls, maxDepth uint64) {
	return p.stalls.Load(), p.depth.Load()
}

// DepthTracker keeps one handle's in-flight high-water mark locally so
// the executor's shared maximum is only CASed when this handle reaches
// a new personal record — an amortized handful of publishes per handle
// lifetime instead of one shared-line touch per submission. The zero
// value is ready; like the handle embedding it, not concurrency-safe.
type DepthTracker struct{ seen uint64 }

// Note observes the handle's current in-flight depth, publishing to ps
// only on a new per-handle maximum.
func (t *DepthTracker) Note(ps *PipeCounters, d int) {
	if u := uint64(d); u > t.seen {
		t.seen = u
		ps.bumpDepth(u)
	}
}
