package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// Hybrid is the runtime-adaptive construction the paper's crossover
// argues for: below the contention crossover a plain lock is strictly
// faster than any delegation scheme, above it delegation wins — so
// instead of picking a side at construction time, Hybrid starts as an
// uncontended lock fast path and promotes itself to a delegation
// backend (HybComb by default, MPServer via WithHybridBackend) when
// the measured contention crosses a threshold, demoting back when the
// delegation side runs quiescent.
//
// Mutual exclusion is one central MCS-style queue lock (the gate). In
// lock mode every handle dispatches its operations under a gate
// acquisition, exactly like spin.LockExecutor over an MCS lock. The
// delegation backend is built eagerly at construction time over a
// gateObject whose DispatchBatch acquires the SAME gate around the
// real object — so whatever mix of modes the handles are in during a
// transition, every dispatch anywhere holds the gate and mutual
// exclusion never has a window. The backend's dispatches are already
// serialized (one combiner at a time; one server goroutine), so the
// gate adds one uncontended acquisition per drained RUN on the
// delegation side — amortized across the run, which is what keeps the
// promoted path within noise of the bare backend.
//
// The contention signal is the one the spin satellite measures: each
// lock-mode acquisition reports whether it found a predecessor in the
// gate queue (a contended acquisition), counted in a padded per-handle
// cell. The controller — piggybacked on operation ticks, guarded by a
// TryLock so it never serializes the data path — promotes when the
// contended fraction over a window of at least HybridWindow operations
// reaches HybridPromote. In delegation mode the signal inverts: the
// gate counts delegated runs and the operations they carried, and the
// controller demotes only after hybridQuietWindows consecutive windows
// whose mean run length stays below HybridDemote with zero submit
// stalls — the hysteresis that keeps a phase-shifting workload from
// thrashing. Baselines reset on every transition, so each mode's
// evidence is collected entirely within that mode.
//
// Transitions preserve the full Handle contract. Handles align to the
// global mode lazily, at the next operation: switching INTO delegation
// needs nothing (every lock-mode operation completed synchronously);
// switching BACK to the lock flushes the handle's inner pipeline
// first, so the handle's outstanding delegated submissions execute
// before its first lock-mode operation — per-handle FIFO holds across
// both edges. Tickets are mode-agnostic: a lock-mode Submit banks its
// result immediately (the lock cannot defer work), a delegation-mode
// Submit maps the hybrid ticket to the backend's, and Wait redeems
// either kind no matter how many transitions happened in between.
// ApplyBatch reads the mode once and sends the whole batch down one
// path, so a DispatchBatch run is never split by a transition.
//
// Faults centralize in the hybrid's own latch: both the lock path and
// the gateObject dispatch through it, so a panic in either mode trips
// ONE latch, the backend machinery stays healthy and keeps serving
// (poisoned zeros), and Err/Poison behave exactly like every other
// construction.
type Hybrid struct {
	PoisonLatch
	opts Options
	obj  Object

	inner      Executor      // the delegation backend, over gateObject
	innerStats StatsSource   // inner's combining counters (nil for mpserver)
	innerPipe  PipelineStats // inner's backpressure counters

	lock     hybLock
	gateNode hybNode // the backend's gate node; its dispatches are serialized

	mode   atomic.Uint32 // hybModeLock or hybModeDeleg
	closed atomic.Bool

	// Delegated-run accounting, written by the serialized gate dispatch:
	// the demotion signal's numerator and denominator.
	dRuns atomic.Uint64
	dOps  atomic.Uint64

	promotions atomic.Uint64
	demotions  atomic.Uint64

	// ctl is the adaptive controller's state, touched only under ctlMu
	// (acquired with TryLock from the tick path, so an evaluation in
	// progress makes concurrent ticks skip, not queue).
	ctlMu sync.Mutex
	ctl   struct {
		lastAcq, lastRet  uint64 // lock-side baselines
		lastRuns, lastOps uint64 // delegation-side baselines
		lastStalls        uint64
		quiet             int // consecutive quiescent windows (hysteresis)
	}

	hmu   sync.Mutex
	cells []*hybCell // one per handle, appended under hmu
}

const (
	hybModeLock uint32 = iota
	hybModeDeleg
)

// hybridQuietWindows is the demotion hysteresis: this many consecutive
// quiescent evaluation windows before delegation hands back to the
// lock. One contended window resets the count.
const hybridQuietWindows = 3

// hybridTickEvery is how many operations a handle performs between
// controller pokes. The controller itself enforces the HybridWindow
// minimum on the global deltas, so this only bounds reaction latency,
// not window size — 256 keeps the controller's TryLock and counter
// sweeps under 1% of the uncontended lock path.
const hybridTickEvery = 256

// hybCellHot is one handle's lock-side counters: acq counts gate
// acquisitions (= lock-mode dispatch runs), retries the contended ones.
type hybCellHot struct {
	acq     atomic.Uint64
	retries atomic.Uint64
}

// hybCell pads the counters to a whole cache line so the lock-mode hot
// path increments a private line; sums are taken only on the read path
// (Stats, Retries, controller evaluations).
//
//hyblint:padded
type hybCell struct {
	hybCellHot
	_ [pad.CacheLine - unsafe.Sizeof(hybCellHot{})%pad.CacheLine]byte
}

// hybLock is a minimal MCS queue lock with the contended-acquisition
// report the controller needs. It duplicates spin.MCSLock rather than
// importing it because spin already imports core; the ~30 lines are
// the price of keeping the registry's construction in core, where
// ISSUE and registry both want it.
type hybLock struct {
	tail atomic.Pointer[hybNode]
}

type hybNodeHot struct {
	locked atomic.Bool
	next   atomic.Pointer[hybNode]
}

//hyblint:padded
type hybNode struct {
	hybNodeHot
	_ [pad.CacheLine - unsafe.Sizeof(hybNodeHot{})%pad.CacheLine]byte
}

// lock acquires the gate, spinning locally on n; contended reports
// whether the tail swap revealed a predecessor to queue behind.
//
// The node invariant — next is nil and locked is false whenever the
// node is not enqueued — is restored by the contended handoff in
// unlock, so the uncontended acquire is a single tail swap with no
// pointer-store write barrier (this path IS the hybrid's t=1 overhead
// budget against a bare MCS lock).
func (l *hybLock) lock(n *hybNode) (contended bool) {
	pred := l.tail.Swap(n)
	if pred == nil {
		return false
	}
	n.locked.Store(true) // before the link: the releaser may clear it immediately
	pred.next.Store(n)
	var b backoff.Backoff
	for n.locked.Load() {
		b.Wait()
	}
	return true
}

// unlock releases the gate, handing it to the queue successor if any.
func (l *hybLock) unlock(n *hybNode) {
	next := n.next.Load()
	if next == nil {
		if l.tail.CompareAndSwap(n, nil) {
			return
		}
		var b backoff.Backoff
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			b.Wait() // successor is between SWAP and next.Store
		}
	}
	// n is dequeued once the successor is known: no one links behind it
	// again until its owner re-enqueues, so clearing next here (the
	// contended path only) re-establishes the node invariant.
	n.next.Store(nil)
	next.locked.Store(false)
}

// hybGate is the object the delegation backend executes against: the
// real object behind a gate acquisition and the hybrid's own poison
// latch. The backend's dispatch calls are serialized by the backend
// itself, so one shared gateNode suffices; its latch never sees a
// panic (the hybrid latch inside recovers first), keeping the fault in
// exactly one place.
type hybGate struct {
	h *Hybrid
}

// DispatchBatch implements Object.
func (g hybGate) DispatchBatch(reqs []Req, results []uint64) {
	h := g.h
	h.lock.lock(&h.gateNode)
	h.PoisonLatch.Dispatch(h.obj, reqs, results)
	h.lock.unlock(&h.gateNode)
	h.dRuns.Add(1)
	h.dOps.Add(uint64(len(reqs)))
}

func init() {
	MustRegister("hybrid", func(obj Object, o Options) (Executor, error) {
		return NewHybrid(obj, o)
	})
}

// NewHybrid creates the adaptive construction. The delegation backend
// (Options.HybridBackend) is built eagerly so a promotion is a single
// atomic mode flip, never a construction.
func NewHybrid(obj Object, opts Options) (*Hybrid, error) {
	opts.fill()
	h := &Hybrid{opts: opts, obj: obj}
	h.Algo = "hybrid"
	h.Tel = opts.Telemetry
	switch opts.HybridBackend {
	case "hybcomb":
		inner := NewHybComb(hybGate{h}, opts)
		h.inner, h.innerStats, h.innerPipe = inner, inner, inner
	case "mpserver":
		inner := NewMPServer(hybGate{h}, opts)
		h.inner, h.innerPipe = inner, inner
	default:
		return nil, fmt.Errorf("core: hybrid: backend %q (want \"hybcomb\" or \"mpserver\"): %w",
			opts.HybridBackend, ErrBadOption)
	}
	return h, nil
}

// NewHandle implements Executor. The backend handle is created
// eagerly (1:1, same MaxThreads bound) so a promotion never allocates
// on the data path.
func (h *Hybrid) NewHandle() (Handle, error) {
	if err := h.Err(); err != nil {
		return nil, fmt.Errorf("core: hybrid: %w", err)
	}
	if h.closed.Load() {
		return nil, fmt.Errorf("core: hybrid: %w", ErrClosed)
	}
	in, err := h.inner.NewHandle()
	if err != nil {
		return nil, err
	}
	cell := &hybCell{}
	h.hmu.Lock()
	h.cells = append(h.cells, cell)
	h.hmu.Unlock()
	return &hybHandle{
		h:       h,
		inner:   in,
		cell:    cell,
		mode:    h.mode.Load(),
		winTick: hybridTickEvery,
		rec:     h.opts.Telemetry.Recorder(),
	}, nil
}

// Close implements Executor: seal this executor, shut the backend
// down (stopping MPServer's server goroutine), and report the hybrid's
// fault state. The backend's own latch never trips, so its Close error
// can only be nil.
func (h *Hybrid) Close() error {
	h.closed.Store(true)
	if err := h.inner.Close(); err != nil {
		return err
	}
	return h.Err()
}

// Transitions implements AdaptiveStats.
func (h *Hybrid) Transitions() (promotions, demotions uint64) {
	return h.promotions.Load(), h.demotions.Load()
}

// Retries implements RetryStats: the cumulative contended gate
// acquisitions across all handles' lock-mode operations.
func (h *Hybrid) Retries() uint64 {
	h.hmu.Lock()
	defer h.hmu.Unlock()
	var r uint64
	for _, c := range h.cells {
		r += c.retries.Load()
	}
	return r
}

// Stats implements StatsSource. Lock-mode acquisitions count as rounds
// of their own (each dispatches its own run, nothing combined), on top
// of the backend's counters. With the hybcomb backend the scalar
// identity rounds + combined == ops therefore still holds; with the
// mpserver backend every delegated run is a round and every delegated
// operation was combined by the server, so — as for any pure server —
// the identity does not (no round has an own operation). Read at
// pipeline quiescence, like every StatsSource.
func (h *Hybrid) Stats() (rounds, combined uint64) {
	h.hmu.Lock()
	for _, c := range h.cells {
		rounds += c.acq.Load()
	}
	h.hmu.Unlock()
	if h.innerStats != nil {
		r, c := h.innerStats.Stats()
		return rounds + r, c
	}
	return rounds + h.dRuns.Load(), h.dOps.Load()
}

// Pipeline implements PipelineStats, forwarding the backend's
// backpressure counters (the hybrid's lock side cannot stall a
// submission — it completes them on the spot).
func (h *Hybrid) Pipeline() (submitStalls, maxDepth uint64) { return h.innerPipe.Pipeline() }

// Telemetry implements TelemetrySource.
func (h *Hybrid) Telemetry() *telemetry.Telemetry { return h.opts.Telemetry }

// lockCounts sums the per-handle lock-side cells.
func (h *Hybrid) lockCounts() (acq, ret uint64) {
	h.hmu.Lock()
	defer h.hmu.Unlock()
	for _, c := range h.cells {
		acq += c.acq.Load()
		ret += c.retries.Load()
	}
	return acq, ret
}

// maybeAdapt is the controller: called from handle ticks, it evaluates
// the current mode's signal once at least HybridWindow operations have
// accumulated since the last evaluation, and flips the mode on a
// threshold crossing. TryLock keeps it off the data path — a tick that
// finds an evaluation in progress just skips.
func (h *Hybrid) maybeAdapt() {
	if !h.ctlMu.TryLock() {
		return
	}
	defer h.ctlMu.Unlock()
	if h.Poisoned() {
		return
	}
	win := uint64(h.opts.HybridWindow)
	if h.mode.Load() == hybModeLock {
		acq, ret := h.lockCounts()
		dA, dR := acq-h.ctl.lastAcq, ret-h.ctl.lastRet
		if dA < win {
			return
		}
		h.ctl.lastAcq, h.ctl.lastRet = acq, ret
		if float64(dR) >= h.opts.HybridPromote*float64(dA) {
			h.promote()
		}
		return
	}
	runs, ops := h.dRuns.Load(), h.dOps.Load()
	stalls, _ := h.innerPipe.Pipeline()
	dRuns, dOps, dStalls := runs-h.ctl.lastRuns, ops-h.ctl.lastOps, stalls-h.ctl.lastStalls
	if dOps < win {
		return
	}
	h.ctl.lastRuns, h.ctl.lastOps, h.ctl.lastStalls = runs, ops, stalls
	if dRuns > 0 && float64(dOps) < h.opts.HybridDemote*float64(dRuns) && dStalls == 0 {
		h.ctl.quiet++
		if h.ctl.quiet >= hybridQuietWindows {
			h.demote()
		}
		return
	}
	h.ctl.quiet = 0
}

// promote flips lock → delegation and rebases the delegation-side
// baselines, so demotion evidence starts from zero. Callers hold
// ctlMu (the controller, or a transition test forcing the edge); the
// CAS makes a forced edge idempotent.
func (h *Hybrid) promote() {
	if !h.mode.CompareAndSwap(hybModeLock, hybModeDeleg) {
		return
	}
	h.ctl.lastRuns, h.ctl.lastOps = h.dRuns.Load(), h.dOps.Load()
	h.ctl.lastStalls, _ = h.innerPipe.Pipeline()
	h.ctl.quiet = 0
	h.promotions.Add(1)
	h.opts.Telemetry.NotePromotion()
}

// demote flips delegation → lock and rebases the lock-side baselines.
// Same locking contract as promote.
func (h *Hybrid) demote() {
	if !h.mode.CompareAndSwap(hybModeDeleg, hybModeLock) {
		return
	}
	h.ctl.lastAcq, h.ctl.lastRet = h.lockCounts()
	h.ctl.quiet = 0
	h.demotions.Add(1)
	h.opts.Telemetry.NoteDemotion()
}

// hybSlot records where an outstanding Submit's result lives: banked
// at submission (lock mode), or behind the backend's ticket
// (delegation mode). Which mode the handle is in at Wait time is
// irrelevant — the slot carries everything redemption needs.
type hybSlot struct {
	banked bool
	val    uint64
	in     Ticket // backend ticket (banked == false)
}

type hybHandle struct {
	h     *Hybrid
	inner Handle
	node  hybNode // this handle's gate node (lock mode)
	cell  *hybCell

	mode    uint32 // last observed global mode; see align
	winTick uint32 // countdown to the next controller poke

	seq   uint64
	slots map[uint64]hybSlot // outstanding Submit tickets (nil until first)

	rec    *telemetry.Recorder // lock-mode recording (the backend records its own)
	one    [1]Req              // scalar lock-path scratch
	oneRet [1]uint64
	drop   []uint64 // discarded-results scratch for ApplyBatch(reqs, nil)
}

// align observes the global mode and reconciles the handle with it.
// Entering delegation needs nothing — every lock-mode operation
// completed synchronously. Leaving it flushes the handle's backend
// pipeline first, so outstanding delegated submissions execute before
// the first lock-mode operation: per-handle FIFO holds across the
// switch (Flush banks un-waited tickets, which stay redeemable).
func (hd *hybHandle) align() uint32 {
	m := hd.h.mode.Load()
	if m != hd.mode {
		if hd.mode == hybModeDeleg {
			hd.inner.Flush()
		}
		hd.mode = m
	}
	return m
}

// tick pokes the controller every hybridTickEvery operations.
func (hd *hybHandle) tick() {
	hd.winTick--
	if hd.winTick == 0 {
		hd.winTick = hybridTickEvery
		hd.h.maybeAdapt()
	}
}

// lockDispatch executes one run under a gate acquisition, feeding the
// acquisition counters and the controller tick.
func (hd *hybHandle) lockDispatch(reqs []Req, results []uint64) {
	h := hd.h
	if h.lock.lock(&hd.node) {
		hd.cell.retries.Add(1)
		h.opts.Telemetry.NoteLockRetries(1)
	}
	h.PoisonLatch.Dispatch(h.obj, reqs, results)
	h.lock.unlock(&hd.node)
	hd.cell.acq.Add(1)
	hd.tick()
}

// lockApply is the scalar lock-mode critical section, recorded exactly
// like spin.LockExecutor's: one latency sample per blocking call, one
// length-1 run per dispatch.
func (hd *hybHandle) lockApply(op, arg uint64) uint64 {
	sampled := hd.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	hd.one[0] = Req{Op: op, Arg: arg}
	hd.lockDispatch(hd.one[:], hd.oneRet[:])
	hd.rec.RunLen(1)
	if sampled {
		hd.rec.Latency(t0)
	}
	return hd.oneRet[0]
}

// Apply implements Handle.
func (hd *hybHandle) Apply(op, arg uint64) uint64 {
	if hd.h.Poisoned() {
		return 0
	}
	if hd.align() == hybModeDeleg {
		v := hd.inner.Apply(op, arg)
		hd.tick()
		return v
	}
	return hd.lockApply(op, arg)
}

// Submit implements Handle. Lock mode completes on the spot and banks
// the result (an acquisition cannot be deferred); delegation mode maps
// the hybrid ticket to the backend's. Either way the ticket outlives
// any number of transitions.
func (hd *hybHandle) Submit(op, arg uint64) (Ticket, error) {
	if err := hd.h.Err(); err != nil {
		return Ticket{}, err
	}
	if hd.slots == nil {
		hd.slots = make(map[uint64]hybSlot)
	}
	t := Ticket{seq: hd.seq}
	hd.seq++
	if hd.align() == hybModeDeleg {
		in, err := hd.inner.Submit(op, arg)
		if err != nil {
			return Ticket{}, err
		}
		hd.slots[t.seq] = hybSlot{in: in}
		hd.tick()
		return t, nil
	}
	hd.slots[t.seq] = hybSlot{banked: true, val: hd.lockApply(op, arg)}
	return t, nil
}

func (hd *hybHandle) slot(t Ticket) hybSlot {
	s, ok := hd.slots[t.seq]
	if !ok {
		panic("core: hybrid: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	return s
}

// Wait implements Handle.
func (hd *hybHandle) Wait(t Ticket) uint64 {
	s := hd.slot(t)
	delete(hd.slots, t.seq)
	if s.banked {
		return s.val
	}
	return hd.inner.Wait(s.in)
}

// TryWait implements Handle: a banked ticket is always ready; a
// delegated one is ready when the backend says so. On ErrNotReady the
// ticket stays outstanding and redeemable.
func (hd *hybHandle) TryWait(t Ticket) (uint64, error) {
	s := hd.slot(t)
	if s.banked {
		delete(hd.slots, t.seq)
		return s.val, hd.h.Err()
	}
	v, err := hd.inner.TryWait(s.in)
	if errors.Is(err, ErrNotReady) {
		return 0, ErrNotReady
	}
	delete(hd.slots, t.seq)
	return v, hd.h.Err()
}

// WaitTimeout implements Handle.
func (hd *hybHandle) WaitTimeout(t Ticket, d time.Duration) (uint64, error) {
	s := hd.slot(t)
	if s.banked {
		delete(hd.slots, t.seq)
		return s.val, hd.h.Err()
	}
	v, err := hd.inner.WaitTimeout(s.in, d)
	if errors.Is(err, ErrWaitTimeout) {
		return 0, ErrWaitTimeout
	}
	delete(hd.slots, t.seq)
	return v, hd.h.Err()
}

// Err implements Handle.
func (hd *hybHandle) Err() error { return hd.h.Err() }

// Post implements Handle: fire-and-forget, in submission order with
// the handle's other operations on whichever path the mode selects.
func (hd *hybHandle) Post(op, arg uint64) error {
	if err := hd.h.Err(); err != nil {
		return err
	}
	if hd.align() == hybModeDeleg {
		err := hd.inner.Post(op, arg)
		hd.tick()
		return err
	}
	hd.lockApply(op, arg)
	return nil
}

// Flush implements Handle. Lock-mode submissions completed at Submit
// time; delegated ones — including any still outstanding from before a
// demotion the handle has not aligned to yet — are settled by the
// backend's Flush, which is a no-op when nothing is in flight.
func (hd *hybHandle) Flush() { hd.inner.Flush() }

// ApplyBatch implements Handle. The mode is read once at entry and the
// whole batch goes down that path — one gate acquisition, or one
// backend ApplyBatch — so a dispatch run is never split by a
// transition happening mid-batch.
func (hd *hybHandle) ApplyBatch(reqs []Req, results []uint64) {
	if len(reqs) == 0 {
		return
	}
	if hd.h.Poisoned() {
		if results != nil {
			zeroResults(results[:len(reqs)])
		}
		return
	}
	if hd.align() == hybModeDeleg {
		hd.inner.ApplyBatch(reqs, results)
		hd.tick()
		return
	}
	if len(reqs) == 1 { // a 1-batch is exactly the scalar critical section
		v := hd.lockApply(reqs[0].Op, reqs[0].Arg)
		if results != nil {
			results[0] = v
		}
		return
	}
	res := results
	if res == nil {
		if cap(hd.drop) < len(reqs) {
			hd.drop = make([]uint64, len(reqs))
		}
		res = hd.drop[:len(reqs)]
	}
	sampled := hd.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	hd.lockDispatch(reqs, res[:len(reqs)])
	hd.rec.RunLen(len(reqs))
	if sampled {
		hd.rec.Latency(t0)
	}
}
