package core

import (
	"errors"
	"sync"
	"testing"
	"unsafe"

	"hybsync/internal/pad"
)

func TestMPServerBasic(t *testing.T) {
	var state uint64
	s := NewMPServer(Func(func(op, arg uint64) uint64 {
		old := state
		state += arg
		return old + op
	}), Options{MaxThreads: 8})
	defer s.Close()
	h := MustHandle(s)
	if got := h.Apply(5, 10); got != 5 {
		t.Fatalf("Apply = %d, want 5", got)
	}
	if got := h.Apply(0, 1); got != 10 {
		t.Fatalf("Apply = %d, want 10", got)
	}
	if state != 11 {
		t.Fatalf("state = %d, want 11", state)
	}
}

func TestMPServerConcurrentMutualExclusion(t *testing.T) {
	// The dispatch deliberately does a racy read-modify-write; mutual
	// exclusion (single server goroutine) must make it safe, and the
	// race detector must stay silent.
	var state uint64
	s := NewMPServer(Func(func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}), Options{MaxThreads: 32})
	defer s.Close()
	const goroutines, per = 16, 3000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := MustHandle(s)
			for i := 0; i < per; i++ {
				h.Apply(0, 0)
			}
		}()
	}
	wg.Wait()
	if state != goroutines*per {
		t.Fatalf("state = %d, want %d", state, goroutines*per)
	}
}

func TestMPServerCloseIdempotent(t *testing.T) {
	s := NewMPServer(Func(func(op, arg uint64) uint64 { return 0 }), Options{})
	s.Close()
	s.Close() // must not hang or panic
}

func TestMPServerTooManyHandles(t *testing.T) {
	s := NewMPServer(Func(func(op, arg uint64) uint64 { return 0 }), Options{MaxThreads: 2})
	defer s.Close()
	for i := 0; i < 2; i++ {
		if _, err := s.NewHandle(); err != nil {
			t.Fatalf("NewHandle %d: %v", i, err)
		}
	}
	if _, err := s.NewHandle(); !errors.Is(err, ErrTooManyHandles) {
		t.Fatalf("third NewHandle = %v, want ErrTooManyHandles", err)
	}
}

func TestMustHandlePanics(t *testing.T) {
	s := NewMPServer(Func(func(op, arg uint64) uint64 { return 0 }), Options{MaxThreads: 1})
	defer s.Close()
	MustHandle(s)
	defer func() {
		if recover() == nil {
			t.Fatal("MustHandle beyond MaxThreads did not panic")
		}
	}()
	MustHandle(s)
}

func TestNewHandleAfterClose(t *testing.T) {
	hc := NewHybComb(Func(func(op, arg uint64) uint64 { return 0 }), Options{MaxThreads: 4})
	if err := hc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := hc.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := hc.NewHandle(); !errors.Is(err, ErrClosed) {
		t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
	}

	s := NewMPServer(Func(func(op, arg uint64) uint64 { return 0 }), Options{MaxThreads: 4})
	s.Close()
	if _, err := s.NewHandle(); !errors.Is(err, ErrClosed) {
		t.Fatalf("mpserver NewHandle after Close = %v, want ErrClosed", err)
	}
}

func TestRegistryDuplicateAndUnknown(t *testing.T) {
	f := func(obj Object, o Options) (Executor, error) { return NewHybComb(obj, o), nil }
	if err := Register("core-test-dup", f); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := Register("core-test-dup", f); !errors.Is(err, ErrDuplicateAlgorithm) {
		t.Fatalf("duplicate Register = %v, want ErrDuplicateAlgorithm", err)
	}
	if _, err := New("core-test-missing", func(op, arg uint64) uint64 { return 0 }); !errors.Is(err, ErrUnknownAlgorithm) {
		t.Fatalf("New(unknown) = %v, want ErrUnknownAlgorithm", err)
	}
}

func TestHybCombSingleThread(t *testing.T) {
	var state uint64
	hc := NewHybComb(Func(func(op, arg uint64) uint64 {
		old := state
		state++
		return old
	}), Options{MaxThreads: 4})
	h := MustHandle(hc)
	for i := uint64(0); i < 100; i++ {
		if got := h.Apply(0, 0); got != i {
			t.Fatalf("Apply = %d, want %d", got, i)
		}
	}
	rounds, combined := hc.Stats()
	if rounds != 100 {
		t.Fatalf("rounds = %d, want 100 (single thread: one round per op)", rounds)
	}
	if combined != 0 {
		t.Fatalf("combined = %d, want 0", combined)
	}
}

func TestHybCombManyThreads(t *testing.T) {
	for _, opts := range []Options{
		{MaxThreads: 40},
		{MaxThreads: 40, MaxOps: 1},   // degenerate combining bound
		{MaxThreads: 40, MaxOps: 7},   // odd bound
		{MaxThreads: 40, QueueCap: 2}, // tiny queues: heavy back-pressure
		{MaxThreads: 40, UseChanQueues: true},
	} {
		var state uint64
		hc := NewHybComb(Func(func(op, arg uint64) uint64 {
			v := state
			state = v + 1
			return v
		}), opts)
		const goroutines, per = 12, 2000
		var wg sync.WaitGroup
		results := make([]map[uint64]bool, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				h := MustHandle(hc)
				results[g] = make(map[uint64]bool, per)
				for i := 0; i < per; i++ {
					results[g][h.Apply(0, 0)] = true
				}
			}(g)
		}
		wg.Wait()
		if state != goroutines*per {
			t.Fatalf("opts %+v: state = %d, want %d", opts, state, goroutines*per)
		}
		union := make(map[uint64]bool)
		for _, m := range results {
			for v := range m {
				if union[v] {
					t.Fatalf("opts %+v: duplicate pre-value %d", opts, v)
				}
				union[v] = true
			}
		}
	}
}

func TestHybCombCombiningHappens(t *testing.T) {
	hc := NewHybComb(Func(func(op, arg uint64) uint64 { return 0 }), Options{MaxThreads: 16})
	const goroutines, per = 8, 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := MustHandle(hc)
			for i := 0; i < per; i++ {
				h.Apply(0, 0)
			}
		}()
	}
	wg.Wait()
	rounds, combined := hc.Stats()
	if rounds+combined != goroutines*per {
		t.Fatalf("rounds %d + combined %d != total ops %d", rounds, combined, goroutines*per)
	}
	if combined == 0 {
		t.Log("warning: no combining observed (acceptable on a single-core runner)")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o, err := BuildOptions()
	if err != nil {
		t.Fatalf("BuildOptions(): %v", err)
	}
	if o.MaxThreads != 128 || o.MaxOps != 200 || o.QueueCap != 39 || o.Shards != 1 {
		t.Fatalf("bad defaults: %+v", o)
	}
}

func TestOptionsRejectNonPositive(t *testing.T) {
	bad := map[string]Option{
		"WithMaxThreads(0)":  WithMaxThreads(0),
		"WithMaxThreads(-1)": WithMaxThreads(-1),
		"WithMaxOps(0)":      WithMaxOps(0),
		"WithMaxOps(-7)":     WithMaxOps(-7),
		"WithQueueCap(0)":    WithQueueCap(0),
		"WithShards(0)":      WithShards(0),
		"WithShards(-2)":     WithShards(-2),
	}
	for name, opt := range bad {
		if _, err := BuildOptions(opt); !errors.Is(err, ErrBadOption) {
			t.Errorf("BuildOptions(%s) = %v, want ErrBadOption", name, err)
		}
	}
	o, err := BuildOptions(WithMaxThreads(3), WithShards(5))
	if err != nil {
		t.Fatalf("valid options rejected: %v", err)
	}
	if o.MaxThreads != 3 || o.Shards != 5 {
		t.Fatalf("valid options not applied: %+v", o)
	}
}

func TestHybCombNodeLayout(t *testing.T) {
	var n hcNode
	a, b, c := unsafe.Offsetof(n.threadID), unsafe.Offsetof(n.nOps), unsafe.Offsetof(n.done)
	if pad.SameLine(a, b) || pad.SameLine(b, c) || pad.SameLine(a, c) {
		t.Fatalf("hcNode hot fields share a cache line: offsets %d %d %d", a, b, c)
	}
	if !pad.Padded(unsafe.Sizeof(n)) {
		t.Fatalf("hcNode is %d bytes, not a whole number of cache lines", unsafe.Sizeof(n))
	}
}
