package core

import (
	"sync"
	"testing"
)

// seqDispatch returns a dispatch handing out strictly increasing values
// — execution order is observable through the results.
func seqDispatch() (Dispatch, *uint64) {
	state := new(uint64)
	return func(op, arg uint64) uint64 {
		v := *state
		*state = v + 1
		return v
	}, state
}

// forEachAsyncExecutor runs body once per in-package construction, each
// time with a fresh executor over a fresh sequence dispatch.
func forEachAsyncExecutor(t *testing.T, opts []Option, body func(t *testing.T, ex Executor, state *uint64)) {
	t.Helper()
	for _, name := range []string{"mpserver", "hybcomb"} {
		t.Run(name, func(t *testing.T) {
			d, state := seqDispatch()
			ex, err := New(name, d, opts...)
			if err != nil {
				t.Fatalf("New(%s): %v", name, err)
			}
			defer ex.Close()
			body(t, ex, state)
		})
	}
}

// TestSubmitWaitFIFO: results of pipelined submissions come back in
// submission order (the dispatch's counter makes execution order
// visible) and Wait matches each ticket with its own operation.
func TestSubmitWaitFIFO(t *testing.T) {
	forEachAsyncExecutor(t, nil, func(t *testing.T, ex Executor, _ *uint64) {
		h := MustHandle(ex)
		const depth = 8
		var tickets [depth]Ticket
		for i := range tickets {
			tk, err := h.Submit(0, 0)
			if err != nil {
				t.Fatalf("Submit %d: %v", i, err)
			}
			tickets[i] = tk
		}
		var prev uint64
		for i, tk := range tickets {
			v := h.Wait(tk)
			if i > 0 && v <= prev {
				t.Fatalf("result %d = %d, not after %d: completion out of submission order", i, v, prev)
			}
			prev = v
		}
	})
}

// TestWaitOutOfOrder: tickets may be redeemed in any order and still
// return their own operation's result.
func TestWaitOutOfOrder(t *testing.T) {
	forEachAsyncExecutor(t, nil, func(t *testing.T, ex Executor, _ *uint64) {
		h := MustHandle(ex)
		const depth = 6
		var tickets [depth]Ticket
		for i := range tickets {
			tickets[i], _ = h.Submit(0, 0)
		}
		// Evens descending, then odds: thoroughly out of order.
		got := map[uint64]bool{}
		for i := depth - 2; i >= 0; i -= 2 {
			got[h.Wait(tickets[i])] = true
		}
		for i := 1; i < depth; i += 2 {
			got[h.Wait(tickets[i])] = true
		}
		for want := uint64(0); want < depth; want++ {
			if !got[want] {
				t.Fatalf("result %d never delivered (got %v)", want, got)
			}
		}
	})
}

// TestPostFlush: posted operations execute (observable in the shared
// state) even though no result is ever collected, and Flush leaves
// nothing in flight before Close.
func TestPostFlush(t *testing.T) {
	forEachAsyncExecutor(t, nil, func(t *testing.T, ex Executor, state *uint64) {
		h := MustHandle(ex)
		const n = 100
		for i := 0; i < n; i++ {
			if err := h.Post(0, 0); err != nil {
				t.Fatalf("Post %d: %v", i, err)
			}
		}
		h.Flush()
		if *state != n {
			t.Fatalf("state after %d posts + Flush = %d", n, *state)
		}
	})
}

// TestSubmitDeeperThanQueueCap: the pipeline bounds itself at QueueCap
// in flight — submitting far beyond the bound must neither deadlock
// (server blocked on a full response ring) nor lose results.
func TestSubmitDeeperThanQueueCap(t *testing.T) {
	forEachAsyncExecutor(t, []Option{WithQueueCap(4)}, func(t *testing.T, ex Executor, _ *uint64) {
		h := MustHandle(ex)
		const n = 200
		tickets := make([]Ticket, n)
		for i := range tickets {
			tickets[i], _ = h.Submit(0, 0)
		}
		seen := map[uint64]bool{}
		for _, tk := range tickets {
			v := h.Wait(tk)
			if seen[v] {
				t.Fatalf("result %d delivered twice", v)
			}
			seen[v] = true
		}
		if len(seen) != n {
			t.Fatalf("%d distinct results, want %d", len(seen), n)
		}
	})
}

// TestApplyInterleavedWithSubmit: a blocking Apply issued while the
// pipeline holds outstanding submissions keeps per-handle FIFO — it
// executes after everything already submitted.
func TestApplyInterleavedWithSubmit(t *testing.T) {
	forEachAsyncExecutor(t, nil, func(t *testing.T, ex Executor, _ *uint64) {
		h := MustHandle(ex)
		t1, _ := h.Submit(0, 0)
		t2, _ := h.Submit(0, 0)
		applied := h.Wait(t1) // partial drain, then mix in an Apply
		v := h.Apply(0, 0)
		if v2 := h.Wait(t2); !(applied < v2 && v2 < v) {
			t.Fatalf("order violated: wait(t1)=%d wait(t2)=%d apply=%d", applied, v2, v)
		}
	})
}

// TestConcurrentPipelines: several goroutines each drive their own
// pipelined handle; under the race detector this guards the
// mutual-exclusion claim on the asynchronous path, and the final state
// checks nothing was lost.
func TestConcurrentPipelines(t *testing.T) {
	const goroutines, per, depth = 4, 300, 5
	forEachAsyncExecutor(t, []Option{WithMaxThreads(goroutines)}, func(t *testing.T, ex Executor, state *uint64) {
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			h := MustHandle(ex)
			wg.Add(1)
			go func() {
				defer wg.Done()
				var win []Ticket
				prev := int64(-1)
				for i := 0; i < per; i++ {
					if len(win) == depth {
						v := int64(h.Wait(win[0]))
						if v <= prev {
							panic("per-handle FIFO violated")
						}
						prev = v
						win = win[1:]
					}
					tk, _ := h.Submit(0, 0)
					win = append(win, tk)
				}
				for _, tk := range win {
					v := int64(h.Wait(tk))
					if v <= prev {
						panic("per-handle FIFO violated in drain")
					}
					prev = v
				}
			}()
		}
		wg.Wait()
		if *state != goroutines*per {
			t.Fatalf("state = %d, want %d", *state, goroutines*per)
		}
	})
}

// TestWaitTwicePanics: a redeemed ticket is gone.
func TestWaitTwicePanics(t *testing.T) {
	forEachAsyncExecutor(t, nil, func(t *testing.T, ex Executor, _ *uint64) {
		h := MustHandle(ex)
		tk, _ := h.Submit(0, 0)
		h.Wait(tk)
		defer func() {
			if recover() == nil {
				t.Fatal("second Wait did not panic")
			}
		}()
		h.Wait(tk)
	})
}

// TestSyncHandle: the adapter for application executors implements the
// full contract with immediate completion.
func TestSyncHandle(t *testing.T) {
	var calls uint64
	h := SyncHandle(func(op, arg uint64) uint64 {
		calls++
		return op + arg
	})
	if got := h.Apply(1, 2); got != 3 {
		t.Fatalf("Apply = %d, want 3", got)
	}
	t1, err := h.Submit(10, 5)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	t2, _ := h.Submit(20, 5)
	if got := h.Wait(t2); got != 25 {
		t.Fatalf("Wait(t2) = %d, want 25", got)
	}
	if got := h.Wait(t1); got != 15 {
		t.Fatalf("Wait(t1) = %d, want 15", got)
	}
	if err := h.Post(0, 0); err != nil {
		t.Fatalf("Post: %v", err)
	}
	h.Flush()
	if calls != 4 {
		t.Fatalf("calls = %d, want 4", calls)
	}
}
