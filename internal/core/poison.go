package core

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"

	"hybsync/internal/telemetry"
)

// Fault-state errors. ErrPoisoned is wrapped by the *PoisonError every
// faulted executor reports; the bounded-wait sentinels are returned
// bare. Test all three with errors.Is.
var (
	// ErrPoisoned reports that an executor has entered its terminal
	// fault state: a panic escaped Object.DispatchBatch on the servicing
	// path (or Poison was called), the object is never invoked again,
	// and every subsequent operation completes with a zero result. The
	// concrete error is always a *PoisonError carrying the recovered
	// value and stack.
	ErrPoisoned = errors.New("executor poisoned")
	// ErrWaitTimeout reports a WaitTimeout that expired before the
	// operation completed. The ticket remains outstanding and
	// redeemable: retry WaitTimeout, or fall back to Wait.
	ErrWaitTimeout = errors.New("wait timed out")
	// ErrNotReady reports a TryWait on an operation that has not
	// completed yet. The ticket remains outstanding and redeemable.
	ErrNotReady = errors.New("operation not ready")
)

// PoisonError is the terminal fault record of a poisoned executor:
// which algorithm faulted, the value the dispatch panicked with (or
// the value passed to Poison), and the stack captured at the fault.
// It unwraps to ErrPoisoned.
type PoisonError struct {
	Algo  string // registry name of the faulted construction
	Value any    // recovered panic value, or Poison's argument
	Stack []byte // goroutine stack captured where the fault surfaced
}

// Error implements error.
func (e *PoisonError) Error() string {
	if e.Algo == "" {
		return fmt.Sprintf("executor poisoned: %v", e.Value)
	}
	return fmt.Sprintf("%s: executor poisoned: %v", e.Algo, e.Value)
}

// Unwrap makes errors.Is(err, ErrPoisoned) hold for every PoisonError.
func (e *PoisonError) Unwrap() error { return ErrPoisoned }

// Poisonable is the external-poison capability: Poison(v) transitions
// the executor to the terminal poisoned state without waiting for a
// dispatch fault. All built-in executors (and the shard router, by
// fan-out) implement it. Poisoning is a latch, not a shutdown: it
// stops the object from ever being invoked again and fails future
// submissions fast, but it cannot unwedge a goroutine already blocked
// inside the object, and background goroutines still need Close.
// Abandoning an executor (a timed-out sweep cell, a wedged benchmark)
// should poison it so any stragglers fail fast instead of combining
// against a dead owner's state.
type Poisonable interface {
	Poison(v any)
}

// PoisonLatch is the shared fault containment of every construction:
// a first-fault-wins latch plus the guarded dispatch that feeds it.
// Constructions embed it (gaining Err, Poisoned and Poison — the
// Executor fault surface) and route every Object.DispatchBatch call
// through Dispatch. The healthy fast path costs one atomic pointer
// load and one deferred recover around the object call.
//
// The containment invariant: poisoning stops the OBJECT, never the
// MACHINERY. After the latch trips, servers keep serving, combiners
// keep combining, rounds keep closing and handing over — every
// response is sent and every cell released, just with zero results.
// That is what turns "one panic in a critical section" into "every
// waiter unblocks with a poisoned zero" instead of a deadlock.
type PoisonLatch struct {
	// Algo names the construction in the PoisonError (set once at
	// construction time, before any dispatch).
	Algo string
	// Tel, when armed, counts the latch trip as a telemetry poison
	// event (set once at construction time, like Algo). Nil-safe.
	Tel *telemetry.Telemetry
	p   atomic.Pointer[PoisonError]
}

// Poison implements Poisonable: latch the terminal fault state with v
// as the cause. The first poison wins; later calls are no-ops.
func (l *PoisonLatch) Poison(v any) { l.poison(v, debug.Stack()) }

func (l *PoisonLatch) poison(v any, stack []byte) {
	if l.p.CompareAndSwap(nil, &PoisonError{Algo: l.Algo, Value: v, Stack: stack}) {
		// Count only the winning trip, so the counter equals the number
		// of executors that entered the terminal fault state.
		l.Tel.NotePoison()
	}
}

// Poisoned reports whether the latch has tripped.
func (l *PoisonLatch) Poisoned() bool { return l.p.Load() != nil }

// Err returns nil while healthy and the *PoisonError once poisoned.
func (l *PoisonLatch) Err() error {
	if pe := l.p.Load(); pe != nil {
		return pe
	}
	return nil
}

// Dispatch is the panic-safe servicing call: it executes
// obj.DispatchBatch(reqs, results) unless the latch has tripped, and
// recovers a panic escaping the object into the poisoned state. Either
// way results is deterministic afterwards — zero-filled when the
// object did not complete the batch (already poisoned, or poisoned by
// this very call; a panic may have left results partially written).
// The healthy path is one frame: an open-coded defer whose closure
// only runs teardown when the object actually panicked.
func (l *PoisonLatch) Dispatch(obj Object, reqs []Req, results []uint64) {
	defer func() {
		if r := recover(); r != nil {
			l.poison(r, debug.Stack())
			zeroResults(results)
		}
	}()
	if l.p.Load() != nil {
		zeroResults(results)
		return
	}
	obj.DispatchBatch(reqs, results)
}

func zeroResults(results []uint64) {
	for i := range results {
		results[i] = 0
	}
}
