package core

import "time"

// Ticket identifies one outstanding asynchronous operation. A Ticket is
// meaningful only to the Handle that issued it and must be redeemed
// with that Handle's Wait exactly once (or settled by Flush, which
// banks the result for a later Wait).
type Ticket struct{ seq uint64 }

// NewTicket mints a ticket with the given per-handle sequence number.
// It exists for Handle implementations outside this package
// (internal/shmsync, internal/spin); applications never mint tickets.
func NewTicket(seq uint64) Ticket { return Ticket{seq: seq} }

// Seq returns the per-handle sequence number the ticket was minted
// with; for Handle implementations, not applications.
func (t Ticket) Seq() uint64 { return t.seq }

// Immediate implements the asynchronous quarter of the Handle contract
// for constructions whose submission path is inherently synchronous
// (SHM-SERVER's single request slot, the spin-lock executors): Submit
// executes the operation on the spot and banks the result; Wait just
// withdraws it. The zero value is ready to use; like the handles that
// embed it, it is not safe for concurrent use.
type Immediate struct {
	next    uint64
	results map[uint64]uint64
}

// Complete banks an already-computed result and returns its ticket.
func (im *Immediate) Complete(val uint64) Ticket {
	if im.results == nil {
		im.results = make(map[uint64]uint64)
	}
	t := Ticket{seq: im.next}
	im.next++
	im.results[t.seq] = val
	return t
}

// Take withdraws t's banked result. Waiting a ticket twice — or a
// ticket issued by another handle — is a programming error and panics.
func (im *Immediate) Take(t Ticket) uint64 {
	v, ok := im.results[t.seq]
	if !ok {
		panic("core: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	delete(im.results, t.seq)
	return v
}

// SyncHandle adapts a bare apply function into a full Handle with
// immediate completion — the escape hatch for application-registered
// executors whose transport has no natural submit/complete split. The
// returned handle is per-goroutine like every other.
func SyncHandle(apply func(op, arg uint64) uint64) Handle {
	return &syncHandle{apply: apply}
}

type syncHandle struct {
	apply func(op, arg uint64) uint64
	im    Immediate
}

func (h *syncHandle) Apply(op, arg uint64) uint64 { return h.apply(op, arg) }

func (h *syncHandle) Submit(op, arg uint64) (Ticket, error) {
	return h.im.Complete(h.apply(op, arg)), nil
}

func (h *syncHandle) Wait(t Ticket) uint64 { return h.im.Take(t) }

// TryWait and WaitTimeout are trivially Wait: every submission
// completed at Submit time, so an outstanding ticket is always ready.
func (h *syncHandle) TryWait(t Ticket) (uint64, error) { return h.im.Take(t), nil }

func (h *syncHandle) WaitTimeout(t Ticket, d time.Duration) (uint64, error) {
	return h.im.Take(t), nil
}

// Err implements Handle. An adapted bare function has no servicing
// path of its own and therefore no poison latch; the adapting
// application owns its fault handling.
func (h *syncHandle) Err() error { return nil }

func (h *syncHandle) Post(op, arg uint64) error {
	h.apply(op, arg)
	return nil
}

func (h *syncHandle) Flush() {}

// ApplyBatch executes the batch by looping — the adapted transport has
// no batch window to exploit, only the contract to satisfy.
func (h *syncHandle) ApplyBatch(reqs []Req, results []uint64) {
	for i, r := range reqs {
		v := h.apply(r.Op, r.Arg)
		if results != nil {
			results[i] = v
		}
	}
}
