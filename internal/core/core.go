// Package core implements the paper's two message-passing constructions
// for executing contended critical sections — MP-SERVER (§4.1) and
// HYBCOMB (§4.2, Algorithm 1) — as a native Go library.
//
// On the TILE-Gx the request/response traffic rides the hardware User
// Dynamic Network; in this library it rides bounded lock-free message
// queues (package mpq) with the same interface contract (asynchronous
// bounded send with back-pressure, blocking receive, FIFO). Combiner
// identity in HybComb is managed with sync/atomic operations on shared
// pointers, exactly mirroring Algorithm 1's CAS/FAA/SWAP structure.
//
// Both constructions execute operations described by an opcode and one
// 64-bit argument against a Dispatch function — the paper's §5.2
// optimization of shipping "a unique opcode of the CS" instead of a
// function pointer, which lets the servicing thread's dispatch inline
// the critical sections.
//
// Usage:
//
//	ctr := uint64(0)
//	hc := core.NewHybComb(func(op, arg uint64) uint64 {
//		old := ctr
//		ctr++ // safe: Dispatch runs in mutual exclusion
//		return old
//	}, core.Options{MaxThreads: 64})
//	h := hc.Handle()       // one per goroutine
//	prev := h.Apply(0, 0)  // executes the CS
package core

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"hybsync/internal/mpq"
)

// Dispatch executes opcode op with argument arg against the protected
// object and returns the result. It is always invoked in mutual
// exclusion, so it may touch shared state without further
// synchronization.
type Dispatch func(op, arg uint64) uint64

// Executor is the common contract of all critical-section constructions
// in this repository (core.MPServer, core.HybComb, shmsync.CCSynch,
// shmsync.SHMServer, spin.LockExecutor).
type Executor interface {
	// Handle returns a per-goroutine handle. Each goroutine that submits
	// operations must use its own Handle.
	Handle() Handle
}

// Handle submits operations on behalf of one goroutine.
type Handle interface {
	// Apply executes (op, arg) in mutual exclusion and returns the result.
	Apply(op, arg uint64) uint64
}

// Options configures the constructions.
type Options struct {
	// MaxThreads bounds how many Handles may be created (default 128).
	MaxThreads int
	// MaxOps is HybComb's MAX_OPS combining bound (default 200, the
	// paper's evaluation setting).
	MaxOps int32
	// QueueCap is the per-thread message-queue capacity in messages
	// (default 39 ≈ the TILE-Gx's 118-word buffer divided by 3-word
	// requests).
	QueueCap int
	// UseChanQueues selects the channel backend instead of the lock-free
	// ring (ablation).
	UseChanQueues bool
}

func (o *Options) fill() {
	if o.MaxThreads <= 0 {
		o.MaxThreads = 128
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 200
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 39
	}
}

func (o *Options) newQueue() mpq.Queue {
	if o.UseChanQueues {
		return mpq.NewChan(o.QueueCap)
	}
	return mpq.NewRing(o.QueueCap)
}

// errTooManyHandles reports Handle() calls beyond MaxThreads.
func errTooManyHandles(max int) error {
	return fmt.Errorf("core: more than %d handles requested (raise Options.MaxThreads)", max)
}

// spinWait yields periodically while spinning on a condition.
func spinWait(spins *int) {
	*spins++
	if *spins%32 == 0 {
		runtime.Gosched()
	}
}

// padBool is an atomic bool padded to its own cache line so spinning on
// it does not false-share with neighbours.
type padBool struct {
	v atomic.Bool
	_ [63]byte
}
