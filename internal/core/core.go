// Package core implements the paper's two message-passing constructions
// for executing contended critical sections — MP-SERVER (§4.1) and
// HYBCOMB (§4.2, Algorithm 1) — as a native Go library, and owns the
// Executor contract plus the algorithm registry that the root hybsync
// package re-exports.
//
// On the TILE-Gx the request/response traffic rides the hardware User
// Dynamic Network; in this library it rides bounded lock-free message
// queues (package mpq) with the same interface contract (asynchronous
// bounded send with back-pressure, blocking receive, FIFO). Combiner
// identity in HybComb is managed with sync/atomic operations on shared
// pointers, exactly mirroring Algorithm 1's CAS/FAA/SWAP structure.
//
// Both constructions execute operations described by an opcode and one
// 64-bit argument against an Object — the paper's §5.2 optimization of
// shipping "a unique opcode of the CS" instead of a function pointer,
// which lets the servicing thread's dispatch inline the critical
// sections. The contract is batch-aware (Object.DispatchBatch executes
// a whole drained run in one mutual-exclusion call); a bare function
// still works everywhere via the Func adapter, which is what New wraps
// a legacy Dispatch with.
//
// Usage (through the registry; hybsync.New re-exports core.New):
//
//	ctr := uint64(0)
//	hc, err := core.New("hybcomb", func(op, arg uint64) uint64 {
//		old := ctr
//		ctr++ // safe: Dispatch runs in mutual exclusion
//		return old
//	}, core.WithMaxThreads(64))
//	h, err := hc.NewHandle() // one per goroutine
//	prev := h.Apply(0, 0)    // executes the CS
//	_ = hc.Close()
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"hybsync/internal/mpq"
	"hybsync/internal/telemetry"
)

// Dispatch executes opcode op with argument arg against the protected
// object and returns the result. It is always invoked in mutual
// exclusion, so it may touch shared state without further
// synchronization. Dispatch is the legacy scalar contract: the
// constructions themselves execute through Object, and New adapts a
// Dispatch into one with Func (a trivial per-operation loop).
type Dispatch func(op, arg uint64) uint64

// Executor is the common contract of all critical-section constructions
// in this repository (core.MPServer, core.HybComb, shmsync.CCSynch,
// shmsync.SHMServer, spin.LockExecutor). Every construction shares one
// lifecycle: NewHandle hands out per-goroutine capabilities until
// MaxThreads is exhausted or the executor is closed, and Close is
// idempotent and safe to call exactly like any other — even on
// constructions that own no background resources.
//
// Close versus Poison: Close is the orderly exit — it drains or
// completes whatever is still in flight (every construction guarantees
// that a ticket submitted before Close remains redeemable with Wait
// after it), stops background goroutines, and seals the executor
// against new handles. Poison (see Poisonable) is the fault exit — a
// terminal latch, tripped by a panic escaping Object.DispatchBatch on
// the servicing path or set explicitly, after which the object is
// never invoked again and all machinery keeps running with zero
// results so no waiter is left hanging. The two compose: Close on a
// poisoned executor still performs its shutdown and reports the
// *PoisonError.
type Executor interface {
	// NewHandle returns a per-goroutine handle. Each goroutine that
	// submits operations must use its own Handle. It fails with
	// ErrTooManyHandles once MaxThreads handles exist, with ErrClosed
	// after Close, and with the *PoisonError once poisoned.
	NewHandle() (Handle, error)

	// Close releases any background resources (server goroutines) and
	// fails subsequent NewHandle calls. It is idempotent. Operations
	// submitted before Close stay redeemable: their results are drained
	// into the completion streams (or were banked at submission), so
	// Wait and Flush still work afterwards; no new operation may be
	// issued. On a poisoned executor Close still shuts down and returns
	// the *PoisonError.
	Close() error

	// Err reports the executor's fault state: nil while healthy, the
	// *PoisonError (wrapping ErrPoisoned) once a servicing-path panic
	// or an explicit Poison latched the terminal poisoned state.
	Err() error
}

// Handle submits operations on behalf of one goroutine. The contract
// is a submit/complete pipeline: Submit enqueues an operation and
// returns a Ticket, Wait redeems the ticket for the result, and Apply
// is the trivial Submit+Wait composition for callers that want the
// classic blocking critical section. Submissions through one handle
// execute — and complete — in submission order (per-handle FIFO);
// nothing is guaranteed about ordering across handles.
//
// Asynchrony is about overlap, not non-blocking submission: Submit may
// block on transport back-pressure (a full request queue) or on
// combiner duty (HybComb promotes the submitting thread and serves the
// round before returning). How much genuinely overlaps depends on the
// construction — MP-SERVER pipelines up to QueueCap requests per
// handle, HYBCOMB overlaps registered requests, CC-SYNCH defers
// completion (and possibly combiner duty) to Wait, and SHM-SERVER and
// the spin locks complete every submission immediately.
type Handle interface {
	// Apply executes (op, arg) in mutual exclusion and returns the
	// result, exactly as Submit followed by Wait.
	Apply(op, arg uint64) uint64

	// Submit enqueues (op, arg) for execution in mutual exclusion and
	// returns a ticket redeemable with Wait. It may block for
	// back-pressure or combiner duty but does not wait for the
	// operation's result. The error is reserved for transports that can
	// fail to accept a submission; the built-in constructions always
	// return nil.
	Submit(op, arg uint64) (Ticket, error)

	// Wait blocks until the operation identified by t has executed and
	// returns its result. Tickets may be waited out of submission order;
	// each ticket must be waited exactly once (Wait on a redeemed or
	// foreign ticket panics).
	Wait(t Ticket) uint64

	// Post submits a result-less operation fire-and-forget: it executes
	// in mutual exclusion, in submission order with the handle's other
	// operations, and its result is discarded. Completion is observed
	// collectively through Flush (or any later same-handle Wait, by
	// FIFO).
	Post(op, arg uint64) error

	// Flush blocks until every operation submitted through this handle
	// has executed, banking the results of not-yet-waited Submit tickets
	// for their Wait and discarding Post results. Every handle with
	// outstanding submissions must be flushed (or fully waited) before
	// its executor is closed.
	Flush()

	// ApplyBatch executes every request of reqs in mutual exclusion, in
	// order, and blocks until the whole batch has executed, filling
	// results[i] with reqs[i]'s result. A nil results discards the
	// values (the batch still completes before ApplyBatch returns);
	// otherwise len(results) must be at least len(reqs). The handle
	// reads reqs and writes results only until ApplyBatch returns and
	// retains neither slice; reqs and results must not overlap.
	//
	// Semantically ApplyBatch is Submit-all-then-Wait-all — the batch
	// executes after the handle's earlier submissions, in batch order —
	// but the construction executes as much of it as possible through
	// single DispatchBatch calls: a lock executor runs the whole batch
	// under one acquisition, MP-SERVER pipelines it into the server's
	// drain (one DispatchBatch per drained run), HYBCOMB executes a
	// combiner-path remainder as one round's own run, and CC-SYNCH's
	// combiner serves the published cells as one chain segment.
	ApplyBatch(reqs []Req, results []uint64)

	// TryWait is the non-blocking Wait: if t's operation has completed,
	// it redeems the ticket and returns the result exactly like Wait;
	// otherwise it returns ErrNotReady and the ticket remains
	// outstanding and redeemable. TryWait never waits for another
	// thread, but on the combining constructions it may perform work
	// this handle already owes (an inherited CC-SYNCH combining round
	// whose hand-off has arrived). Like Wait, calling it with a
	// redeemed or foreign ticket panics. On a poisoned executor a
	// completed ticket redeems with the *PoisonError alongside the
	// value — results produced after the fault are zeros.
	TryWait(t Ticket) (uint64, error)

	// WaitTimeout is Wait bounded by d: it blocks until t's operation
	// completes and redeems the ticket, or returns ErrWaitTimeout after
	// d with the ticket still outstanding and redeemable (retry, or
	// fall back to Wait). The bound covers waiting on other threads; a
	// dispatch this handle itself must execute (immediate-completion
	// constructions, an inherited combining round) is not interrupted.
	// The poison semantics are TryWait's.
	WaitTimeout(t Ticket, d time.Duration) (uint64, error)

	// Err reports the executor's fault state, exactly as Executor.Err:
	// nil while healthy, the *PoisonError once poisoned. After
	// poisoning, Apply returns zeros, Submit and Post fail fast with
	// the *PoisonError, and already-submitted tickets remain waitable
	// (completing with zeros for operations the object never executed).
	Err() error
}

// StatsSource is implemented by the combining constructions (HybComb,
// CCSynch). Stats must be read only at pipeline quiescence: every
// handle with submissions outstanding has been flushed (or fully
// waited) and no new operation is issued until the read returns.
// "While no Apply is in flight" is no longer sufficient wording —
// submissions are asynchronous, so an unflushed Submit or Post keeps
// the pipeline live long after the submitting call returned.
//
// Counter semantics (the canonical statement — DESIGN.md and benchfmt
// comments defer here): rounds counts combining rounds, i.e.
// mutual-exclusion acquisitions that serviced at least one operation;
// combined counts operations completed inside a round owned by another
// thread. With purely scalar submissions every operation is either a
// round owner's single own op or combined by someone else, so
//
//	rounds + combined == total ops   (scalar submissions only)
//
// Batched submissions break that identity by design: an ApplyBatch (or
// router MultiApply) executes its whole batch as one round's own run —
// n operations against a single rounds increment — and a drained
// remote batch adds n to combined for the same one round. The counters
// then mix units (rounds count batches, combined counts operations),
// which is why benchfmt.Record.Finish strips both from batch-path
// records instead of publishing numbers that invite the scalar
// reading.
type StatsSource interface {
	Stats() (rounds, combined uint64)
}

// TelemetrySource is implemented by every construction: Telemetry
// returns the metric core attached with WithTelemetry, or nil when
// disarmed. Unlike Stats, a telemetry Snapshot may be taken at any
// time — it is merge-on-read and monotonic, drifting only by records
// still in flight.
type TelemetrySource interface {
	Telemetry() *telemetry.Telemetry
}

// PipelineStats is implemented by the pipelining constructions
// (MPServer, HybComb, CCSynch) and aggregated by the shard router; it
// exposes the backpressure counters of the submission pipeline.
// SubmitStalls counts submissions that found the handle's pipeline
// full and had to absorb or settle an older operation before they
// could proceed; MaxDepth is the deepest in-flight window any handle
// has reached. Like Stats, read only at pipeline quiescence (every
// handle flushed).
type PipelineStats interface {
	Pipeline() (submitStalls, maxDepth uint64)
}

// RetryStats is implemented by the executors whose mutual exclusion is
// a lock (spin.LockExecutor, and the hybrid's lock side): Retries
// reports the cumulative contended-acquisition steps across all
// handles — acquisitions that found the lock held and had to wait or
// retry. It is the lock-side contention gauge the adaptive hybrid
// executor promotes on. Like Stats, exact only at quiescence.
type RetryStats interface {
	Retries() uint64
}

// AdaptiveStats is implemented by mode-switching executors (the hybrid
// construction): Transitions reports how many times the executor
// promoted (lock → delegation) and demoted (delegation → lock) since
// construction. Monotonic and safe to read at any time.
type AdaptiveStats interface {
	Transitions() (promotions, demotions uint64)
}

// Lifecycle and registry errors. NewHandle and registry failures wrap
// these sentinels, so callers test with errors.Is.
var (
	// ErrTooManyHandles reports NewHandle calls beyond MaxThreads.
	ErrTooManyHandles = errors.New("too many handles")
	// ErrClosed reports use of an executor after Close.
	ErrClosed = errors.New("executor closed")
	// ErrUnknownAlgorithm reports a New with an unregistered name.
	ErrUnknownAlgorithm = errors.New("unknown algorithm")
	// ErrDuplicateAlgorithm reports a Register with a taken name.
	ErrDuplicateAlgorithm = errors.New("algorithm already registered")
	// ErrBadOption reports an option explicitly set to an invalid value
	// (non-positive MaxThreads, MaxOps, QueueCap or Shards). It is
	// detected at New time, not when the bad value would later
	// misbehave.
	ErrBadOption = errors.New("bad option")
)

// MustHandle returns a new handle from e, panicking on failure. It is
// the thin escape hatch for benchmarks and examples where handle
// exhaustion is a programming error rather than a runtime condition.
func MustHandle(e Executor) Handle {
	h, err := e.NewHandle()
	if err != nil {
		panic(err)
	}
	return h
}

// Options configures the constructions. Callers build it with the
// functional With* options; the zero value plus fill() yields the
// paper's evaluation defaults. Explicitly setting a sizing option to a
// non-positive value is rejected with ErrBadOption when the Options are
// built (leaving an option unset selects its default).
type Options struct {
	// MaxThreads bounds how many Handles may be created (default 128).
	MaxThreads int
	// MaxOps is the combining bound MAX_OPS of HybComb and CC-Synch
	// (default 200, the paper's evaluation setting).
	MaxOps int32
	// QueueCap is the per-thread message-queue capacity in messages
	// (default 39 ≈ the TILE-Gx's 118-word buffer divided by 3-word
	// requests). It also bounds a handle's submission pipeline: a
	// handle never keeps more than QueueCap operations in flight, so a
	// server or combiner can never block on a full response queue.
	QueueCap int
	// Shards is the shard count consumed by the shard router (default
	// 1). The single-executor constructions ignore it.
	Shards int
	// StallTimeout arms the stall watchdog on the construction's wait
	// loops (a client awaiting its response or cell service, a HybComb
	// successor awaiting its predecessor's round): a wait that reaches
	// the backoff sleep phase and makes no progress for this long
	// reports once through internal/backoff's stall handler — by
	// default a goroutine dump to stderr. 0 (the default) disables the
	// watchdog; disabled waits never read a clock.
	StallTimeout time.Duration
	// UseChanQueues selects the channel backend instead of the lock-free
	// ring (ablation).
	UseChanQueues bool
	// Telemetry attaches a metric core (sampled blocking-call latency,
	// per-dispatch run length, poison/stall/submit-stall counters — see
	// internal/telemetry). nil, the default, disarms recording: the
	// disarmed hot path is one nil-receiver check per site.
	Telemetry *telemetry.Telemetry

	// HybridBackend names the delegation construction the hybrid
	// executor promotes to: "hybcomb" (default) or "mpserver". The
	// non-hybrid constructions ignore it.
	HybridBackend string
	// HybridPromote is the hybrid's promotion threshold: the executor
	// switches to delegation when the contended-acquisition rate
	// (retry steps per acquisition, see RetryStats) over an evaluation
	// window reaches this value (default 0.5).
	HybridPromote float64
	// HybridDemote is the hybrid's demotion threshold: in delegation
	// mode the executor switches back to the lock after hybridQuietWindows
	// consecutive windows whose mean dispatch-run length stays below
	// this value with no submit stalls (default 1.25).
	HybridDemote float64
	// HybridWindow is the minimum number of operations between the
	// hybrid's signal evaluations (default 1024).
	HybridWindow int

	// err records the first invalid With* value; BuildOptions reports it.
	err error
}

// Option mutates Options; see WithMaxThreads and friends.
type Option func(*Options)

// reject records the first explicitly-set invalid option value.
func (o *Options) reject(opt string, v int) {
	if o.err == nil {
		o.err = fmt.Errorf("core: %s(%d): value must be positive: %w", opt, v, ErrBadOption)
	}
}

// WithMaxThreads bounds how many handles an executor hands out.
func WithMaxThreads(n int) Option {
	return func(o *Options) {
		if n <= 0 {
			o.reject("WithMaxThreads", n)
			return
		}
		o.MaxThreads = n
	}
}

// WithMaxOps sets the combining bound MAX_OPS (HybComb, CC-Synch).
// Values beyond the int32 range clamp to an effectively unbounded
// math.MaxInt32 rather than wrapping.
func WithMaxOps(n int) Option {
	return func(o *Options) {
		if n <= 0 {
			o.reject("WithMaxOps", n)
			return
		}
		if n > math.MaxInt32 {
			n = math.MaxInt32
		}
		o.MaxOps = int32(n)
	}
}

// WithQueueCap sets the per-thread message-queue capacity in messages.
func WithQueueCap(n int) Option {
	return func(o *Options) {
		if n <= 0 {
			o.reject("WithQueueCap", n)
			return
		}
		o.QueueCap = n
	}
}

// WithShards sets how many independent shards the shard router splits a
// keyed object across (default 1). Single-executor constructions ignore
// it.
func WithShards(n int) Option {
	return func(o *Options) {
		if n <= 0 {
			o.reject("WithShards", n)
			return
		}
		o.Shards = n
	}
}

// WithStallTimeout arms the stall watchdog: a construction wait loop
// that makes no progress for d reports once (by default a goroutine
// dump to stderr — see backoff.SetStallHandler). Pick d well above any
// legitimate service time; the watchdog is a diagnostic, not a
// timeout — the wait continues after reporting. A negative d is
// rejected with ErrBadOption; 0 (the default) disables the watchdog.
func WithStallTimeout(d time.Duration) Option {
	return func(o *Options) {
		if d < 0 {
			o.reject("WithStallTimeout", int(d))
			return
		}
		o.StallTimeout = d
	}
}

// WithTelemetry attaches t as the executor's metric core: blocking
// calls (Apply, Wait, ApplyBatch) record sampled latency, every
// DispatchBatch run records its length, and poison-latch trips,
// stall-watchdog firings and full-pipeline submit stalls are counted.
// One Telemetry may serve several executors — the shard router builds
// every shard from the same Options, so all shards aggregate into one
// core. A nil t is allowed and leaves telemetry disarmed (the
// default).
func WithTelemetry(t *telemetry.Telemetry) Option {
	return func(o *Options) { o.Telemetry = t }
}

// WithChanQueues toggles the Go-channel queue backend (ablation
// against the default lock-free ring).
func WithChanQueues(on bool) Option { return func(o *Options) { o.UseChanQueues = on } }

// WithHybridBackend selects the delegation construction the hybrid
// executor promotes to: "hybcomb" (the default) or "mpserver". Any
// other name is rejected with ErrBadOption at New time.
func WithHybridBackend(name string) Option {
	return func(o *Options) {
		if name != "hybcomb" && name != "mpserver" {
			if o.err == nil {
				o.err = fmt.Errorf("core: WithHybridBackend(%q): want \"hybcomb\" or \"mpserver\": %w", name, ErrBadOption)
			}
			return
		}
		o.HybridBackend = name
	}
}

// WithHybridThreshold sets the hybrid executor's transition thresholds:
// promote is the contended-acquisition rate (retry steps per lock
// acquisition, so roughly the fraction of acquisitions that queued)
// at which the lock side promotes to delegation; demote is the mean
// dispatch-run length below which the delegation side counts a window
// as quiescent. promote must be positive; demote must be at least 1
// (a run is never shorter than one request).
func WithHybridThreshold(promote, demote float64) Option {
	return func(o *Options) {
		if promote <= 0 || demote < 1 {
			if o.err == nil {
				o.err = fmt.Errorf("core: WithHybridThreshold(%g, %g): want promote > 0 and demote >= 1: %w", promote, demote, ErrBadOption)
			}
			return
		}
		o.HybridPromote = promote
		o.HybridDemote = demote
	}
}

// WithHybridWindow sets the minimum number of operations the hybrid
// executor observes between signal evaluations. Smaller windows react
// faster and thrash easier; the default (1024) rides out sub-window
// bursts.
func WithHybridWindow(n int) Option {
	return func(o *Options) {
		if n <= 0 {
			o.reject("WithHybridWindow", n)
			return
		}
		o.HybridWindow = n
	}
}

// BuildOptions folds opts over the zero Options, rejects explicitly-set
// invalid values with an error wrapping ErrBadOption, and fills
// defaults.
func BuildOptions(opts ...Option) (Options, error) {
	var o Options
	for _, opt := range opts {
		if opt != nil {
			opt(&o)
		}
	}
	if o.err != nil {
		return Options{}, o.err
	}
	o.fill()
	return o, nil
}

func (o *Options) fill() {
	if o.MaxThreads <= 0 {
		o.MaxThreads = 128
	}
	if o.MaxOps <= 0 {
		o.MaxOps = 200
	}
	if o.QueueCap <= 0 {
		o.QueueCap = 39
	}
	if o.Shards <= 0 {
		o.Shards = 1
	}
	if o.HybridBackend == "" {
		o.HybridBackend = "hybcomb"
	}
	if o.HybridPromote <= 0 {
		o.HybridPromote = 0.5
	}
	if o.HybridDemote < 1 {
		o.HybridDemote = 1.25
	}
	if o.HybridWindow <= 0 {
		o.HybridWindow = 1024
	}
}

// newMpscQueue returns the queue for a many-senders/one-receiver role
// (the MP-SERVER request queue, the HybComb inboxes): the FAA-claim
// Mpsc ring unless the channel ablation is selected.
func (o *Options) newMpscQueue() mpq.Queue {
	if o.UseChanQueues {
		return mpq.NewChan(o.QueueCap)
	}
	return mpq.NewMpsc(o.QueueCap)
}

// newSpscQueue returns the queue for a one-sender/one-receiver role
// (the MP-SERVER response queues): the CAS-free Spsc ring unless the
// channel ablation is selected.
func (o *Options) newSpscQueue(cap int) mpq.Queue {
	if o.UseChanQueues {
		return mpq.NewChan(cap)
	}
	return mpq.NewSpsc(cap)
}

// batchLen sizes a server/combiner receive buffer: up to MaxOps
// requests are drained per wakeup, capped so an effectively unbounded
// MaxOps does not allocate an enormous buffer.
func (o *Options) batchLen() int {
	const maxBatch = 256
	if int(o.MaxOps) < maxBatch {
		return int(o.MaxOps)
	}
	return maxBatch
}

// errTooManyHandles reports NewHandle() calls beyond MaxThreads.
func errTooManyHandles(max int) error {
	return fmt.Errorf("core: more than %d handles requested (raise MaxThreads): %w", max, ErrTooManyHandles)
}
