package core

import (
	"fmt"
	"sync/atomic"

	"hybsync/internal/mpq"
)

// MPServer is the paper's MP-SERVER: a dedicated server goroutine owns
// the protected object and executes every critical section; clients send
// {id, op, arg} request messages and block on a one-message response
// queue. The server's receive reads from a local queue and its response
// send never blocks (each client has at most one outstanding request),
// so — as on the hardware — no synchronization-related waiting remains
// on the server's critical path while requests are pending.
type MPServer struct {
	opts     Options
	dispatch Dispatch
	reqs     mpq.Queue
	resp     []mpq.Queue // per client, capacity 1
	nextID   atomic.Int32
	stopped  atomic.Bool
	done     chan struct{}
}

// opQuit is an internal opcode that stops the server loop.
const opQuit = ^uint64(0)

// NewMPServer starts the server goroutine. Close must be called to stop
// it.
func NewMPServer(dispatch Dispatch, opts Options) *MPServer {
	opts.fill()
	s := &MPServer{
		opts:     opts,
		dispatch: dispatch,
		reqs:     opts.newQueue(),
		resp:     make([]mpq.Queue, opts.MaxThreads),
		done:     make(chan struct{}),
	}
	for i := range s.resp {
		if opts.UseChanQueues {
			s.resp[i] = mpq.NewChan(1)
		} else {
			s.resp[i] = mpq.NewRing(1)
		}
	}
	go s.serve()
	return s
}

// serve is the server loop: receive, execute, respond.
func (s *MPServer) serve() {
	defer close(s.done)
	for {
		m := s.reqs.Recv()
		if m.W[1] == opQuit {
			return
		}
		ret := s.dispatch(m.W[1], m.W[2])
		s.resp[m.W[0]].Send(mpq.Word(ret))
	}
}

// NewHandle implements Executor.
func (s *MPServer) NewHandle() (Handle, error) {
	if s.stopped.Load() {
		return nil, fmt.Errorf("core: mpserver: %w", ErrClosed)
	}
	id := s.nextID.Add(1) - 1
	if int(id) >= s.opts.MaxThreads {
		return nil, errTooManyHandles(s.opts.MaxThreads)
	}
	return &mpHandle{s: s, id: uint64(id)}, nil
}

// Close stops the server goroutine. It is idempotent; no Apply may be
// in flight or issued afterwards.
func (s *MPServer) Close() error {
	if s.stopped.CompareAndSwap(false, true) {
		s.reqs.Send(mpq.Words3(0, opQuit, 0))
		<-s.done
	}
	return nil
}

type mpHandle struct {
	s  *MPServer
	id uint64
}

// Apply implements Handle: ship the request, block on the response.
func (h *mpHandle) Apply(op, arg uint64) uint64 {
	h.s.reqs.Send(mpq.Words3(h.id, op, arg))
	return h.s.resp[h.id].Recv().W[0]
}
