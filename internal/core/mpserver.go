package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"hybsync/internal/mpq"
	"hybsync/internal/telemetry"
)

// MPServer is the paper's MP-SERVER: a dedicated server goroutine owns
// the protected object and executes every critical section; clients send
// {id, op, arg} request messages and block on a one-message response
// queue. The server's receive reads from a local queue and its response
// send never blocks (each client bounds its in-flight requests by its
// response ring's capacity), so — as on the hardware — no
// synchronization-related waiting remains on the server's critical path
// while requests are pending.
//
// The transport is role-specialized (the paper's §5 theme that the
// request/response path must be as lean as the hardware's): the request
// queue is an mpq.Mpsc (clients claim send slots with one fetch-and-add;
// the server never CASes) and each response queue is an mpq.Spsc (no
// atomic read-modify-write at all). The server drains up to MaxOps
// pending requests per wakeup (capped at 256 per receive by
// Options.batchLen) with a batched receive — and hands the whole
// drained run to the object as ONE DispatchBatch call, scattering the
// responses to the per-client rings after the call returns. Batching
// thus amortizes both the queue synchronization (RecvBatch) and the
// dispatch indirection (DispatchBatch) across the run.
//
// MPServer is the construction where asynchronous submission pays off
// most directly: a request is a message, so a client may keep up to
// QueueCap requests in flight per handle (Submit sends without
// blocking on the reply; Wait collects replies through a ticketed
// receive on the response ring). Per-sender FIFO on the request ring
// plus in-order service plus the FIFO response ring give per-handle
// FIFO completion. A handle bounds its in-flight count by the response
// ring's capacity, so the server's response send never blocks.
type MPServer struct {
	PoisonLatch
	opts    Options
	obj     Object
	reqs    mpq.Queue   // MPSC: any client sends, only serve receives
	resp    []mpq.Queue // per client, QueueCap deep, SPSC: server → client
	nextID  atomic.Int32
	stopped atomic.Bool
	done    chan struct{}
	ps      PipeCounters
}

// opQuit is an internal opcode that stops the server loop.
const opQuit = ^uint64(0)

// NewMPServer starts the server goroutine. Close must be called to stop
// it.
func NewMPServer(obj Object, opts Options) *MPServer {
	opts.fill()
	s := &MPServer{
		opts: opts,
		obj:  obj,
		reqs: opts.newMpscQueue(),
		resp: make([]mpq.Queue, opts.MaxThreads),
		done: make(chan struct{}),
	}
	s.Algo = "mpserver"
	s.Tel = opts.Telemetry
	for i := range s.resp {
		// QueueCap deep (not 1): the response ring is the completion
		// stream of the handle's submission pipeline, and must hold one
		// reply per in-flight request.
		s.resp[i] = opts.newSpscQueue(opts.QueueCap)
	}
	go s.serve()
	return s
}

// serve is the server loop: drain a batch of requests per wakeup,
// execute the run as one DispatchBatch, then scatter the responses.
// Batching pays the blocking-receive synchronization and the dispatch
// indirection once for up to batchLen requests; the price is that the
// first client of a run now waits for the whole run before its
// response goes out — the flat-combining trade the paper's combiners
// make on every round.
//
// Dispatch runs through the poison latch: a panic escaping the object
// poisons the executor, and the loop carries on replying (zeros from
// then on) so every in-flight and future request still completes —
// the server never dies silently with waiters blocked on its rings.
func (s *MPServer) serve() {
	defer close(s.done)
	rec := s.opts.Telemetry.Recorder() // server-goroutine owned
	buf := make([]mpq.Msg, s.opts.batchLen())
	ids := make([]uint64, len(buf))
	run := make([]Req, 0, len(buf))
	rets := make([]uint64, len(buf))
	// serveBatch executes one drained batch, skipping (but remembering)
	// the quit marker: requests that landed behind opQuit in the ring
	// still get served and answered, so a draining Close completes them
	// instead of dropping them on the floor.
	serveBatch := func(msgs []mpq.Msg) (quit bool) {
		run = run[:0]
		for _, m := range msgs {
			if m.W[1] == opQuit {
				quit = true
				continue
			}
			ids[len(run)] = m.W[0]
			run = append(run, Req{Op: m.W[1], Arg: m.W[2]})
		}
		if len(run) > 0 {
			s.PoisonLatch.Dispatch(s.obj, run, rets[:len(run)])
			rec.RunLen(len(run))
			for i := range run {
				s.resp[ids[i]].Send(mpq.Word(rets[i]))
			}
		}
		return quit
	}
	for {
		if serveBatch(buf[:s.reqs.RecvBatch(buf)]) {
			// Draining close: serve everything already published on the
			// request ring, then exit. Requests submitted before Close
			// claimed their ring slots before opQuit's send, so after
			// this drain every outstanding ticket has its response
			// banked on its client's ring.
			for {
				n := s.reqs.TryRecvBatch(buf)
				if n == 0 {
					return
				}
				serveBatch(buf[:n])
			}
		}
	}
}

// NewHandle implements Executor.
func (s *MPServer) NewHandle() (Handle, error) {
	if err := s.Err(); err != nil {
		return nil, fmt.Errorf("core: mpserver: %w", err)
	}
	if s.stopped.Load() {
		return nil, fmt.Errorf("core: mpserver: %w", ErrClosed)
	}
	id := s.nextID.Add(1) - 1
	if int(id) >= s.opts.MaxThreads {
		return nil, errTooManyHandles(s.opts.MaxThreads)
	}
	tk := mpq.NewTicketed(s.resp[id])
	tk.Arm(s.opts.StallTimeout, "mpserver: client awaiting response")
	tk.OnStall(s.opts.Telemetry.StallHook())
	return &mpHandle{
		s:   s,
		id:  uint64(id),
		tk:  tk,
		rec: s.opts.Telemetry.Recorder(),
	}, nil
}

// Close stops the server goroutine, draining the request ring first so
// every operation submitted before Close has its response banked on
// its client's ring — outstanding tickets stay redeemable with Wait.
// It is idempotent; no operation may be issued afterwards. On a
// poisoned executor Close still stops the server and reports the
// *PoisonError.
func (s *MPServer) Close() error {
	if s.stopped.CompareAndSwap(false, true) {
		s.reqs.Send(mpq.Words3(0, opQuit, 0))
		<-s.done
	}
	return s.Err()
}

// Pipeline implements PipelineStats.
func (s *MPServer) Pipeline() (submitStalls, maxDepth uint64) { return s.ps.Pipeline() }

// Telemetry implements TelemetrySource.
func (s *MPServer) Telemetry() *telemetry.Telemetry { return s.opts.Telemetry }

// mpHandle is one client's pipeline over the server: requests go out on
// the shared MPSC ring, replies come back on the client's own SPSC ring
// as a ticketed completion stream. Every submission is ring-bound and
// replies arrive in submission order, so a ticket's sequence number IS
// its stream position — no per-ticket bookkeeping beyond the Ticketed
// adapter.
type mpHandle struct {
	s   *MPServer
	id  uint64
	tk  *mpq.Ticketed
	dt  DepthTracker
	rec *telemetry.Recorder
	pos []uint64 // ApplyBatch stream-position scratch
}

// submit ships the request, first making room in the pipeline when
// QueueCap operations are already in flight (absorbing one reply keeps
// the server's response send non-blocking).
func (h *mpHandle) submit(op, arg uint64) uint64 {
	if h.tk.InFlight() >= h.s.opts.QueueCap {
		h.s.ps.NoteStall()
		h.s.opts.Telemetry.NoteSubmitStall()
		h.tk.Absorb()
	}
	pos := h.tk.Issue()
	h.s.reqs.Send(mpq.Words3(h.id, op, arg))
	h.dt.Note(&h.s.ps, h.tk.InFlight())
	return pos
}

// Apply implements Handle: ship the request, block on the response —
// literally Submit followed by Wait. On a poisoned executor it
// short-circuits to the poisoned zero without touching the transport.
func (h *mpHandle) Apply(op, arg uint64) uint64 {
	if h.s.Poisoned() {
		return 0
	}
	// One latency sample = one blocking call, submission to reply. The
	// disarmed cost is the Sample nil check; the clock is only read on
	// sampled calls.
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	v := h.tk.WaitFor(h.submit(op, arg)).W[0]
	if sampled {
		h.rec.Latency(t0)
	}
	return v
}

// Submit implements Handle: ship the request, don't wait for the
// reply. On a poisoned executor it fails fast with the *PoisonError
// and no ticket is issued.
func (h *mpHandle) Submit(op, arg uint64) (Ticket, error) {
	if err := h.s.Err(); err != nil {
		return Ticket{}, err
	}
	return Ticket{seq: h.submit(op, arg)}, nil
}

// Wait implements Handle: collect t's reply from the completion stream.
func (h *mpHandle) Wait(t Ticket) uint64 {
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	v := h.tk.WaitFor(t.seq).W[0]
	if sampled {
		h.rec.Latency(t0)
	}
	return v
}

// TryWait implements Handle.
func (h *mpHandle) TryWait(t Ticket) (uint64, error) {
	m, ok := h.tk.TryWaitFor(t.seq)
	if !ok {
		return 0, ErrNotReady
	}
	return m.W[0], h.s.Err()
}

// WaitTimeout implements Handle.
func (h *mpHandle) WaitTimeout(t Ticket, d time.Duration) (uint64, error) {
	m, ok := h.tk.WaitForTimeout(t.seq, d)
	if !ok {
		return 0, ErrWaitTimeout
	}
	return m.W[0], h.s.Err()
}

// Err implements Handle.
func (h *mpHandle) Err() error { return h.s.Err() }

// Post implements Handle: fire-and-forget. The server still replies (it
// cannot know the client does not care), so the reply's stream position
// is marked discarded and dropped on arrival.
func (h *mpHandle) Post(op, arg uint64) error {
	if err := h.s.Err(); err != nil {
		return err
	}
	if h.tk.InFlight() >= h.s.opts.QueueCap {
		h.s.ps.NoteStall()
		h.s.opts.Telemetry.NoteSubmitStall()
		h.tk.Absorb()
	}
	h.tk.Discard(h.tk.Issue())
	h.s.reqs.Send(mpq.Words3(h.id, op, arg))
	h.dt.Note(&h.s.ps, h.tk.InFlight())
	return nil
}

// Flush implements Handle: drain the completion stream, banking
// not-yet-waited results and dropping Post replies.
func (h *mpHandle) Flush() { h.tk.Flush() }

// ApplyBatch implements Handle: ship the whole batch back-to-back, then
// collect the replies in stream order. The requests land contiguously
// on the request ring (interleaved only with other clients'), so the
// server's drain sees the batch as part of one run and executes it
// through single DispatchBatch calls; the client pays one round-trip
// wait for the whole batch instead of one per operation.
func (h *mpHandle) ApplyBatch(reqs []Req, results []uint64) {
	if h.s.Poisoned() {
		if results != nil {
			zeroResults(results[:len(reqs)])
		}
		return
	}
	if cap(h.pos) < len(reqs) {
		h.pos = make([]uint64, len(reqs))
	}
	// One latency sample covers the whole batch call — submission of
	// the first request to collection of the last reply.
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	pos := h.pos[:len(reqs)]
	for i, r := range reqs {
		pos[i] = h.submit(r.Op, r.Arg)
	}
	for i := range pos {
		v := h.tk.WaitFor(pos[i]).W[0]
		if results != nil {
			results[i] = v
		}
	}
	if sampled {
		h.rec.Latency(t0)
	}
}
