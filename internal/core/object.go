package core

// Req is one operation of a batch: the §5.2 opcode plus its single
// 64-bit argument — exactly the payload of a request message, minus the
// sender identity the transport adds.
type Req struct {
	Op  uint64
	Arg uint64
}

// Object is the batch-aware execution contract: the protected object a
// construction executes critical sections against. DispatchBatch
// executes reqs[0..n) in order, in one mutual-exclusion call, filling
// results[i] with reqs[i]'s result. The constructions guarantee
// len(results) == len(reqs) and that the two slices do not overlap;
// the object may read reqs and write results only until DispatchBatch
// returns and must not retain either slice (constructions reuse both
// buffers for the next run).
//
// A DispatchBatch call owns the object exactly like a legacy Dispatch
// call: the whole run executes under the construction's mutual
// exclusion, so the object may touch shared state without further
// synchronization — and may exploit the run, e.g. a counter can apply
// a run of increments against one locally-held value instead of
// re-reading shared state per operation.
//
// How runs form is up to each construction (see DESIGN.md "Batch-aware
// dispatch"): MP-SERVER hands over each drained receive batch, HYBCOMB
// each combining round's collected requests, CC-SYNCH each combined
// chain segment, SHM-SERVER each run of consecutive occupied client
// slots, and the lock executors each ApplyBatch issued under one lock
// acquisition. A batch of one is always legal — the scalar Apply path
// arrives as a 1-request batch.
type Object interface {
	DispatchBatch(reqs []Req, results []uint64)
}

// Func adapts a legacy Dispatch function into an Object that executes
// a batch by looping; core.Func(d) is how New wraps a registered
// algorithm's dispatch so the whole repository runs on the batch
// contract. Because Func and Dispatch share an underlying type, the
// conversion is free.
type Func func(op, arg uint64) uint64

// DispatchBatch implements Object by applying the function once per
// request.
func (f Func) DispatchBatch(reqs []Req, results []uint64) {
	for i, r := range reqs {
		results[i] = f(r.Op, r.Arg)
	}
}
