// Transition tests for the adaptive hybrid construction: conservation
// and per-handle FIFO must hold across forced promote/demote cycles
// for every submission shape, tickets must stay redeemable across mode
// switches, and a panic landing mid-transition must poison cleanly
// (no deadlock, fast-failing submissions). In-package so the tests can
// force transition edges deterministically through promote/demote.
package core

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
	"unsafe"

	"hybsync/internal/pad"
)

// newTestHybrid builds a *Hybrid directly (the registry returns the
// Executor interface; the tests need the transition edges).
func newTestHybrid(t *testing.T, obj Object, opts ...Option) *Hybrid {
	t.Helper()
	o, err := BuildOptions(opts...)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHybrid(obj, o)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// forceMode drives a transition edge under the controller's lock, the
// way the controller itself would. The CAS inside promote/demote makes
// a stale force a no-op.
func forceMode(h *Hybrid, promote bool) {
	h.ctlMu.Lock()
	if promote {
		h.promote()
	} else {
		h.demote()
	}
	h.ctlMu.Unlock()
}

// toggler flips the hybrid's mode continuously until stop is closed,
// so every shape's operations keep landing on both sides of (and
// inside) transitions.
func toggler(h *Hybrid, stop <-chan struct{}, done *sync.WaitGroup) {
	defer done.Done()
	up := true
	for {
		select {
		case <-stop:
			return
		default:
		}
		forceMode(h, up)
		up = !up
		time.Sleep(100 * time.Microsecond)
	}
}

// counterObj returns a non-atomic counter object (mutual-exclusion
// violations corrupt the count and trip the race detector) plus a
// loader for the final state.
func counterObj() (Object, func() uint64) {
	var state uint64
	return Func(func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}), func() uint64 { return state }
}

// TestHybridTransitionsProperty is the conservation + FIFO property
// test: scalar, async-depth-8 and batch-32 submissions from four
// goroutines while transitions are forced at high frequency, at
// GOMAXPROCS 1 and 2. A counter object makes both properties visible
// in the return values: per-handle FIFO means each handle observes
// strictly increasing old-values, and a batch that executed as one
// unsplit run returns consecutive old-values.
func TestHybridTransitionsProperty(t *testing.T) {
	const goroutines = 4
	shapes := []struct {
		name string
		per  int // operations per goroutine
		run  func(t *testing.T, h Handle, per int)
	}{
		{"scalar", 1000, func(t *testing.T, h Handle, per int) {
			last := -1
			for i := 0; i < per; i++ {
				v := int(h.Apply(0, 0))
				if v <= last {
					t.Errorf("per-handle FIFO violated: observed %d after %d", v, last)
					return
				}
				last = v
			}
		}},
		{"async-8", 1000, func(t *testing.T, h Handle, per int) {
			const depth = 8
			var pending []Ticket
			last := -1
			settle := func(n int) {
				for len(pending) > n {
					v := int(h.Wait(pending[0]))
					pending = pending[1:]
					if v <= last {
						t.Errorf("per-handle FIFO violated: waited %d after %d", v, last)
						return
					}
					last = v
				}
			}
			for i := 0; i < per; i++ {
				tk, err := h.Submit(0, 0)
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				pending = append(pending, tk)
				settle(depth - 1)
			}
			settle(0)
		}},
		{"batch-32", 320, func(t *testing.T, h Handle, per int) {
			// FIFO within and across batches is strictly-increasing
			// old-values; consecutive values would be too strong — a
			// delegated batch legitimately pipelines into the backend's
			// drain runs interleaved with other handles' requests (the
			// unsplit-run guarantee is pinned by
			// TestHybridBatchOneDispatchRun instead).
			const batch = 32
			reqs := make([]Req, batch)
			results := make([]uint64, batch)
			last := -1
			for i := 0; i < per/batch; i++ {
				h.ApplyBatch(reqs, results)
				for j := 0; j < batch; j++ {
					if int(results[j]) <= last {
						t.Errorf("per-handle FIFO violated: results[%d]=%d after %d",
							j, results[j], last)
						return
					}
					last = int(results[j])
				}
			}
		}},
	}
	for _, procs := range []int{1, 2} {
		for _, backend := range []string{"hybcomb", "mpserver"} {
			for _, sh := range shapes {
				t.Run(fmt.Sprintf("procs=%d/%s/%s", procs, backend, sh.name), func(t *testing.T) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(procs))
					obj, load := counterObj()
					// A huge window disables the controller so the forced
					// transitions own the mode.
					h := newTestHybrid(t, obj,
						WithMaxThreads(goroutines),
						WithHybridBackend(backend),
						WithHybridWindow(1<<30))
					togStop := make(chan struct{})
					var tg sync.WaitGroup
					tg.Add(1)
					go toggler(h, togStop, &tg)

					// Workers run the shape in chunks until both transition
					// edges have been crossed a few times under them, so
					// every property is exercised across real switches.
					var total, stop atomic.Uint64
					var wg sync.WaitGroup
					for g := 0; g < goroutines; g++ {
						hd, err := h.NewHandle()
						if err != nil {
							t.Fatalf("NewHandle: %v", err)
						}
						wg.Add(1)
						go func() {
							defer wg.Done()
							for stop.Load() == 0 && !t.Failed() {
								sh.run(t, hd, sh.per)
								total.Add(uint64(sh.per))
								hd.Flush()
							}
						}()
					}
					deadline := time.Now().Add(20 * time.Second)
					for {
						p, d := h.Transitions()
						if (p >= 3 && d >= 3) || t.Failed() || time.Now().After(deadline) {
							break
						}
						time.Sleep(200 * time.Microsecond)
					}
					stop.Store(1)
					wg.Wait()
					close(togStop)
					tg.Wait()
					if err := h.Close(); err != nil {
						t.Fatalf("Close: %v", err)
					}
					if t.Failed() {
						return
					}
					if got, want := load(), total.Load(); got != want {
						t.Fatalf("conservation violated: state = %d, want %d ops", got, want)
					}
					p, d := h.Transitions()
					if p < 3 || d < 3 {
						t.Fatalf("transitions did not exercise both edges: promotions=%d demotions=%d", p, d)
					}
				})
			}
		}
	}
}

// TestHybridBatchOneDispatchRun pins the unsplit-run guarantee on both
// paths, deterministically: with a single participant, a lock-mode
// batch executes under one gate acquisition and a delegated batch
// becomes the combiner's own run — in both cases ONE DispatchBatch,
// observable as consecutive counter values.
func TestHybridBatchOneDispatchRun(t *testing.T) {
	obj, _ := counterObj()
	h := newTestHybrid(t, obj, WithHybridWindow(1<<30))
	hd, err := h.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const batch = 32
	reqs := make([]Req, batch)
	results := make([]uint64, batch)
	for _, phase := range []struct {
		mode    string
		promote bool
	}{{"lock", false}, {"delegation", true}} {
		forceMode(h, phase.promote)
		runsBefore := h.dRuns.Load()
		hd.ApplyBatch(reqs, results)
		for j := 1; j < batch; j++ {
			if results[j] != results[j-1]+1 {
				t.Fatalf("%s mode: batch split: results[%d]=%d after results[%d]=%d",
					phase.mode, j, results[j], j-1, results[j-1])
			}
		}
		if phase.promote {
			if runs := h.dRuns.Load() - runsBefore; runs != 1 {
				t.Fatalf("delegated batch took %d gate runs, want 1", runs)
			}
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridTicketsAcrossSwitch pins the ticket contract down: tickets
// issued in one mode redeem after any number of transitions, in FIFO
// order, including an unflushed delegation ticket redeemed after the
// handle has already moved back to lock mode.
func TestHybridTicketsAcrossSwitch(t *testing.T) {
	obj, _ := counterObj()
	h := newTestHybrid(t, obj, WithHybridWindow(1<<30))
	hd, err := h.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	var tickets []Ticket
	submit := func(n int) {
		for i := 0; i < n; i++ {
			tk, err := hd.Submit(0, 0)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			tickets = append(tickets, tk)
		}
	}
	submit(4)           // lock mode: banked
	forceMode(h, true)  // promote
	submit(4)           // delegation mode: backend tickets
	forceMode(h, false) // demote; handle has NOT aligned yet
	submit(4)           // first Submit aligns (flushes the backend pipeline)
	forceMode(h, true)
	submit(4)
	for want, tk := range tickets {
		if got := hd.Wait(tk); got != uint64(want) {
			t.Fatalf("ticket %d redeemed %d, want %d", want, got, want)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridWaitVariantsAcrossSwitch covers TryWait/WaitTimeout on
// banked and delegated tickets across a switch.
func TestHybridWaitVariantsAcrossSwitch(t *testing.T) {
	obj, _ := counterObj()
	h := newTestHybrid(t, obj, WithHybridWindow(1<<30))
	hd, err := h.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	t0, _ := hd.Submit(0, 0) // lock mode: banked
	forceMode(h, true)
	t1, _ := hd.Submit(0, 0) // delegation mode
	hd.Flush()
	if v, err := hd.TryWait(t1); err != nil || v != 1 {
		t.Fatalf("TryWait(delegated after flush) = %d, %v; want 1, nil", v, err)
	}
	if v, err := hd.WaitTimeout(t0, time.Second); err != nil || v != 0 {
		t.Fatalf("WaitTimeout(banked) = %d, %v; want 0, nil", v, err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestHybridPoisonMidTransition is the chaos test: a panic landing
// while transitions are being forced must poison exactly once, unwedge
// every participant (zeros), and fail subsequent submissions fast. The
// test completing at all is the no-deadlock assertion.
func TestHybridPoisonMidTransition(t *testing.T) {
	for _, backend := range []string{"hybcomb", "mpserver"} {
		t.Run(backend, func(t *testing.T) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
			const goroutines, per, fuse = 4, 4000, 5000
			var state uint64
			obj := Func(func(op, arg uint64) uint64 {
				if state == fuse {
					panic("hybrid chaos fault")
				}
				state++
				return state - 1
			})
			h := newTestHybrid(t, obj,
				WithMaxThreads(goroutines),
				WithHybridBackend(backend),
				WithHybridWindow(1<<30))
			stop := make(chan struct{})
			var tg sync.WaitGroup
			tg.Add(1)
			go toggler(h, stop, &tg)

			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				hd, err := h.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle: %v", err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					var pending []Ticket
					for i := 0; i < per; i++ {
						if i%3 == 0 {
							tk, err := hd.Submit(0, 0)
							if err != nil {
								break // poisoned: fast-fail is the contract
							}
							pending = append(pending, tk)
							if len(pending) > 4 {
								hd.Wait(pending[0])
								pending = pending[1:]
							}
						} else {
							hd.Apply(0, 0)
						}
					}
					for _, tk := range pending {
						hd.Wait(tk) // zeros after the fault; must not hang
					}
					hd.Flush()
				}()
			}
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("participants wedged after mid-transition poison")
			}
			close(stop)
			tg.Wait()

			if err := h.Err(); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("Err() = %v, want ErrPoisoned", err)
			}
			hd, err := h.NewHandle()
			if err == nil {
				t.Fatal("NewHandle succeeded on a poisoned executor")
			}
			var pe *PoisonError
			if !errors.As(err, &pe) {
				t.Fatalf("NewHandle error %v is not a *PoisonError", err)
			}
			_ = hd
			if err := h.Close(); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("Close() = %v, want the poison error", err)
			}
			if state != fuse {
				t.Fatalf("object advanced past the fuse: state = %d", state)
			}
		})
	}
}

// TestHybridAdaptsUnderContention exercises the controller itself (no
// forced edges): contended traffic from four goroutines must promote,
// and a subsequent single-threaded quiescent phase must demote.
func TestHybridAdaptsUnderContention(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(2))
	obj, _ := counterObj()
	h := newTestHybrid(t, obj,
		WithMaxThreads(8),
		WithHybridWindow(256),
		WithHybridThreshold(0.05, 1.25))

	// Contended phase: hammer until the controller promotes. Handles
	// are created once and handed to one goroutine per burst (handles
	// forbid concurrent use, not sequential reuse).
	const burst = 2000
	deadline := time.Now().Add(30 * time.Second)
	handles := make([]Handle, 4)
	for g := range handles {
		hd, err := h.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[g] = hd
	}
	var wg sync.WaitGroup
	for promoted := false; !promoted; {
		if time.Now().After(deadline) {
			t.Fatal("controller never promoted under contention")
		}
		for _, hd := range handles {
			wg.Add(1)
			go func(hd Handle) {
				defer wg.Done()
				for i := 0; i < burst; i++ {
					hd.Apply(0, 0)
				}
			}(hd)
		}
		wg.Wait()
		p, _ := h.Transitions()
		promoted = p > 0
	}

	// Quiescent phase: one thread, scalar ops — mean run length falls
	// to 1, and after the hysteresis windows the controller demotes.
	hd, err := h.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for time.Now().Before(deadline) {
		for i := 0; i < 1024; i++ {
			hd.Apply(0, 0)
		}
		if _, d := h.Transitions(); d > 0 {
			if err := h.Close(); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatal("controller never demoted at quiescence")
}

// TestHybridStatsScalarInvariant: with the hybcomb backend the scalar
// counter identity rounds + combined == ops must survive transitions
// (each lock-mode op is a round of its own; delegated ops follow
// hybcomb's accounting).
func TestHybridStatsScalarInvariant(t *testing.T) {
	const goroutines, per = 4, 2000
	obj, load := counterObj()
	h := newTestHybrid(t, obj, WithMaxThreads(goroutines), WithHybridWindow(1<<30))
	stop := make(chan struct{})
	var tg sync.WaitGroup
	tg.Add(1)
	go toggler(h, stop, &tg)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		hd, err := h.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				hd.Apply(0, 0)
			}
		}()
	}
	wg.Wait()
	close(stop)
	tg.Wait()
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	rounds, combined := h.Stats()
	if rounds+combined != load() {
		t.Fatalf("rounds (%d) + combined (%d) = %d, want ops = %d",
			rounds, combined, rounds+combined, load())
	}
	if r := h.Retries(); r == 0 && runtime.NumCPU() > 1 {
		t.Logf("note: no contended acquisitions observed (retries=0)")
	}
}

// TestHybridBadBackend: an unknown backend is rejected at option-build
// time with ErrBadOption.
func TestHybridBadBackend(t *testing.T) {
	_, err := New("hybrid", func(op, arg uint64) uint64 { return 0 },
		WithHybridBackend("shmserver"))
	if !errors.Is(err, ErrBadOption) {
		t.Fatalf("err = %v, want ErrBadOption", err)
	}
	if _, err := BuildOptions(WithHybridThreshold(0, 1)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithHybridThreshold(0,1) err = %v, want ErrBadOption", err)
	}
	if _, err := BuildOptions(WithHybridThreshold(0.5, 0.5)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithHybridThreshold(0.5,0.5) err = %v, want ErrBadOption", err)
	}
	if _, err := BuildOptions(WithHybridWindow(0)); !errors.Is(err, ErrBadOption) {
		t.Fatalf("WithHybridWindow(0) err = %v, want ErrBadOption", err)
	}
}

// TestHybridLayout machine-verifies the padding of the hybrid's
// per-handle cells and gate nodes, like the spin and hybcomb layout
// tests.
func TestHybridLayout(t *testing.T) {
	for name, size := range map[string]uintptr{
		"hybCell": unsafe.Sizeof(hybCell{}),
		"hybNode": unsafe.Sizeof(hybNode{}),
	} {
		if !pad.Padded(size) {
			t.Errorf("%s is %d bytes, not a whole number of cache lines", name, size)
		}
	}
}
