package core

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/mpq"
	"hybsync/internal/pad"
)

// HybComb is the paper's Algorithm 1 as a native Go construction.
// Combiner identity lives in shared memory: last_registered_combiner is
// an atomic pointer CASed by threads promoting themselves to combiner;
// each combiner node carries an n_ops ticket counter (FAA to register a
// request, SWAP to close the round) and a combining_done flag its
// successor spins on. Requests and responses travel through per-thread
// message queues, so while the combiner does not change the data path is
// identical to MPServer — no shared-memory handshake per operation.
//
// The inboxes are mpq.Mpsc queues (any thread sends; only the owner
// receives) and the combiner drains them with batched receives: both
// the eager drain (lines 25-28) and the granted-ticket drain (lines
// 34-37) consume a run of published requests per queue synchronization.
//
// Responses travel on a second per-thread queue, separate from the
// inbox. With the synchronous Apply contract the inbox could carry
// both (a thread was never a combiner and a waiting client at once);
// with asynchronous submission a thread may promote itself to combiner
// while responses to its earlier registered requests are still in
// flight, and the combiner's request drain must not swallow them.
//
// Asynchronous submission maps onto the algorithm naturally: a Submit
// that wins a registration ticket ships its request and returns — the
// response arrives on the thread's response queue, collected by Wait
// through a ticketed receive. A Submit that fails registration promotes
// the thread to combiner exactly like Apply and completes its own
// operation (plus the round it serves) before returning; the result is
// banked for Wait. Round ordering makes completion per-handle FIFO: a
// combiner serves every ticket of its round before releasing its
// successor, so responses from earlier rounds always precede those
// from later ones.
type HybComb struct {
	opts     Options
	dispatch Dispatch

	lastReg  atomic.Pointer[hcNode]
	departed atomic.Pointer[hcNode]

	inbox  []mpq.Queue // per thread: registered requests, drained by the owner as combiner
	resp   []mpq.Queue // per thread: responses to the owner's registered requests
	nextID atomic.Int32
	closed atomic.Bool

	// Stats counts combining activity (read with Stats after quiescence).
	rounds   atomic.Uint64
	combined atomic.Uint64
}

// hcNode is Algorithm 1's Node. Each of the three fields is written and
// spun on by different threads at different times (registering threads
// FAA nOps while the successor spins on done), so each lives on its own
// cache line; the pads are sized from the fields themselves and the
// layout is machine-verified by TestHybCombNodeLayout.
type hcNode struct {
	threadID atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	nOps     atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	done     atomic.Bool
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// NewHybComb creates the structure. Unlike MPServer there is no
// background goroutine: threads combine for each other on demand, an
// idle HybComb consumes no resources, and Close only seals the
// executor against new handles.
func NewHybComb(dispatch Dispatch, opts Options) *HybComb {
	opts.fill()
	h := &HybComb{opts: opts, dispatch: dispatch}
	h.inbox = make([]mpq.Queue, opts.MaxThreads)
	h.resp = make([]mpq.Queue, opts.MaxThreads)
	for i := range h.inbox {
		h.inbox[i] = opts.newMpscQueue()
		// Responses to one thread come from whichever thread combines
		// each round — serialized in time, but many producers over the
		// queue's lifetime, hence Mpsc rather than Spsc.
		h.resp[i] = opts.newMpscQueue()
	}
	// The initial node {⊥, MAX_OPS, true}: full, so the first thread
	// fails registration and promotes itself; done, so it proceeds
	// immediately.
	init := &hcNode{}
	init.threadID.Store(-1)
	init.nOps.Store(opts.MaxOps)
	init.done.Store(true)
	h.lastReg.Store(init)
	h.departed.Store(init)
	return h
}

// NewHandle implements Executor.
func (h *HybComb) NewHandle() (Handle, error) {
	if h.closed.Load() {
		return nil, fmt.Errorf("core: hybcomb: %w", ErrClosed)
	}
	id := h.nextID.Add(1) - 1
	if int(id) >= h.opts.MaxThreads {
		return nil, errTooManyHandles(h.opts.MaxThreads)
	}
	n := &hcNode{}
	n.threadID.Store(id)
	n.nOps.Store(h.opts.MaxOps) // parked: nobody can register with it
	return &hcHandle{
		h:      h,
		id:     id,
		myNode: n,
		batch:  make([]mpq.Msg, h.opts.batchLen()),
		tk:     mpq.NewTicketed(h.resp[id]),
	}, nil
}

// Close implements Executor. HybComb owns no background goroutine, so
// closing only fails future NewHandle calls; it is idempotent.
func (h *HybComb) Close() error {
	h.closed.Store(true)
	return nil
}

// Stats returns the number of completed combining rounds and the total
// requests served by combiners for other threads. Call only while no
// Apply is in flight.
func (h *HybComb) Stats() (rounds, combined uint64) {
	return h.rounds.Load(), h.combined.Load()
}

// hcSlot records where an outstanding Submit's result will come from:
// the response stream position of a registered request, or the value a
// combiner-path submission already produced.
type hcSlot struct {
	local bool
	pos   uint64 // response stream position (registered path)
	val   uint64 // banked result (combiner path)
}

type hcHandle struct {
	h      *HybComb
	id     int32
	myNode *hcNode
	batch  []mpq.Msg // combiner-side receive buffer

	tk    *mpq.Ticketed     // ticketed receive over h.resp[id]
	seq   uint64            // next ticket sequence number
	slots map[uint64]hcSlot // outstanding Submit tickets (nil until first Submit)
}

// Apply is apply_op of Algorithm 1 (lines 6-43): register or combine,
// then block for the result. The uncontended path does no pipeline
// bookkeeping at all — a combiner-path Apply returns its result
// directly, a registered Apply waits for the next response stream
// position.
func (hd *hcHandle) Apply(op, arg uint64) uint64 {
	registered, ret := hd.submitOrCombine(op, arg)
	if !registered {
		return ret
	}
	return hd.tk.WaitFor(hd.tk.Issue()).W[0]
}

// submitOrCombine is lines 8-21 of Algorithm 1: try to register with
// the current combiner (registered=true: the request is shipped and the
// response will arrive on the thread's response queue), else promote
// ourselves, serve the round and return our own result (registered=
// false).
func (hd *hcHandle) submitOrCombine(op, arg uint64) (registered bool, ret uint64) {
	h := hd.h
	for {
		lastReg := h.lastReg.Load() // line 9
		// Line 11: FAA on the combiner's ticket counter.
		if lastReg.nOps.Add(1)-1 < h.opts.MaxOps {
			// Lines 13-14: registered; ship the request. The response
			// arrives on our response queue once the combiner serves it.
			h.inbox[lastReg.threadID.Load()].Send(mpq.Words3(uint64(hd.id), op, arg))
			return true, 0
		}
		// Line 17: promote ourselves to combiner.
		if h.lastReg.CompareAndSwap(lastReg, hd.myNode) {
			hd.myNode.nOps.Store(0) // line 18
			var b backoff.Backoff
			for !lastReg.done.Load() { // lines 19-20
				b.Wait()
			}
			return false, hd.combine(op, arg) // line 21 onwards
		}
	}
}

// combine is the combiner's half of apply_op (lines 23-43): execute our
// own operation, serve the round, hand the combiner role over.
func (hd *hcHandle) combine(op, arg uint64) uint64 {
	h := hd.h
	var opsCompleted int32

	// Line 23: the combiner's own operation runs first.
	retval := h.dispatch(op, arg)

	// Lines 25-28: eagerly drain the queue while requests keep arriving;
	// postponing the closing SWAP increases the combining potential.
	// Every ticket holder's request is drained batch-wise: one queue
	// synchronization per run of published requests.
	mine := h.inbox[hd.id]
	buf := hd.batch
	for {
		n := mine.TryRecvBatch(buf)
		if n == 0 {
			break
		}
		for _, m := range buf[:n] {
			h.resp[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		}
		opsCompleted += int32(n)
	}

	// Lines 30-32: close the round; the old counter value is the number
	// of tickets granted.
	totalOps := hd.myNode.nOps.Swap(h.opts.MaxOps)
	if totalOps > h.opts.MaxOps {
		totalOps = h.opts.MaxOps
	}

	// Lines 34-37: serve the granted tickets that are still in flight,
	// again batch-wise. The batch is capped at the outstanding ticket
	// count so the drain can never consume a request addressed to a
	// later round.
	for opsCompleted < totalOps {
		want := totalOps - opsCompleted
		if int(want) > len(buf) {
			want = int32(len(buf))
		}
		n := mine.RecvBatch(buf[:want])
		for _, m := range buf[:n] {
			h.resp[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		}
		opsCompleted += int32(n)
	}

	// Lines 39-42: exchange nodes with the departed combiner, then
	// release our successor. We take the node the previous combiner
	// left behind — we were the thread spinning on it, so we are the
	// one thread entitled to reset its done flag.
	oldNode := hd.myNode
	hd.myNode = h.departed.Swap(oldNode)
	hd.myNode.done.Store(false)
	hd.myNode.threadID.Store(hd.id)
	oldNode.done.Store(true)

	h.rounds.Add(1)
	h.combined.Add(uint64(opsCompleted))
	return retval // line 43
}

// makeRoom bounds the pipeline at QueueCap in-flight registered
// requests, so a combiner can never block sending into our response
// queue.
func (hd *hcHandle) makeRoom() {
	if hd.tk.InFlight() >= hd.h.opts.QueueCap {
		hd.tk.Absorb()
	}
}

// Submit implements Handle. The registered path is genuinely
// asynchronous (the request is shipped, the combiner's response is
// collected by Wait); the combiner path completes on the spot and banks
// the result.
func (hd *hcHandle) Submit(op, arg uint64) (Ticket, error) {
	hd.makeRoom()
	registered, ret := hd.submitOrCombine(op, arg)
	if hd.slots == nil {
		hd.slots = make(map[uint64]hcSlot)
	}
	t := Ticket{seq: hd.seq}
	hd.seq++
	if registered {
		hd.slots[t.seq] = hcSlot{pos: hd.tk.Issue()}
	} else {
		hd.slots[t.seq] = hcSlot{local: true, val: ret}
	}
	return t, nil
}

// Wait implements Handle.
func (hd *hcHandle) Wait(t Ticket) uint64 {
	s, ok := hd.slots[t.seq]
	if !ok {
		panic("core: hybcomb: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	delete(hd.slots, t.seq)
	if s.local {
		return s.val
	}
	return hd.tk.WaitFor(s.pos).W[0]
}

// Post implements Handle: fire-and-forget. A registered request's
// response is marked discarded on the completion stream; a
// combiner-path Post completed already and needs no bookkeeping.
func (hd *hcHandle) Post(op, arg uint64) error {
	hd.makeRoom()
	registered, _ := hd.submitOrCombine(op, arg)
	if registered {
		hd.tk.Discard(hd.tk.Issue())
	}
	return nil
}

// Flush implements Handle: absorb every in-flight response. Banked
// combiner-path results stay redeemable; registered results move into
// the ticketed receive's buffer for their Wait.
func (hd *hcHandle) Flush() { hd.tk.Flush() }
