package core

import (
	"fmt"
	"sync/atomic"
	"time"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/mpq"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// HybComb is the paper's Algorithm 1 as a native Go construction.
// Combiner identity lives in shared memory: last_registered_combiner is
// an atomic pointer CASed by threads promoting themselves to combiner;
// each combiner node carries an n_ops ticket counter (FAA to register a
// request, SWAP to close the round) and a combining_done flag its
// successor spins on. Requests and responses travel through per-thread
// message queues, so while the combiner does not change the data path is
// identical to MPServer — no shared-memory handshake per operation.
//
// The inboxes are mpq.Mpsc queues (any thread sends; only the owner
// receives) and the combiner drains them with batched receives: both
// the eager drain (lines 25-28) and the granted-ticket drain (lines
// 34-37) consume a run of published requests per queue synchronization —
// and each drained run executes as ONE DispatchBatch call against the
// object, with the responses scattered to the requesters' queues after
// the call. The combiner's own operations batch the same way: a
// combiner-path ApplyBatch hands its whole remaining run to the round
// as a single DispatchBatch (Algorithm 1's line 23 generalized from one
// own operation to a run of them).
//
// Responses travel on a second per-thread queue, separate from the
// inbox. With the synchronous Apply contract the inbox could carry
// both (a thread was never a combiner and a waiting client at once);
// with asynchronous submission a thread may promote itself to combiner
// while responses to its earlier registered requests are still in
// flight, and the combiner's request drain must not swallow them.
//
// Asynchronous submission maps onto the algorithm naturally: a Submit
// that wins a registration ticket ships its request and returns — the
// response arrives on the thread's response queue, collected by Wait
// through a ticketed receive. A Submit that fails registration promotes
// the thread to combiner exactly like Apply and completes its own
// operation (plus the round it serves) before returning; the result is
// banked for Wait. Round ordering makes completion per-handle FIFO: a
// combiner serves every ticket of its round before releasing its
// successor, so responses from earlier rounds always precede those
// from later ones.
type HybComb struct {
	PoisonLatch
	opts Options
	obj  Object

	lastReg  atomic.Pointer[hcNode]
	departed atomic.Pointer[hcNode]

	inbox  []mpq.Queue // per thread: registered requests, drained by the owner as combiner
	resp   []mpq.Queue // per thread: responses to the owner's registered requests
	nextID atomic.Int32
	closed atomic.Bool

	// Stats counts combining activity (read at pipeline quiescence).
	rounds   atomic.Uint64
	combined atomic.Uint64
	ps       PipeCounters
}

// hcNode is Algorithm 1's Node. Each of the three fields is written and
// spun on by different threads at different times (registering threads
// FAA nOps while the successor spins on done), so each lives on its own
// cache line; the pads are sized from the fields themselves and the
// layout is machine-verified by TestHybCombNodeLayout and hyblint.
//
//hyblint:padded
type hcNode struct {
	threadID atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	nOps     atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	done     atomic.Bool
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// NewHybComb creates the structure. Unlike MPServer there is no
// background goroutine: threads combine for each other on demand, an
// idle HybComb consumes no resources, and Close only seals the
// executor against new handles.
func NewHybComb(obj Object, opts Options) *HybComb {
	opts.fill()
	h := &HybComb{opts: opts, obj: obj}
	h.Algo = "hybcomb"
	h.Tel = opts.Telemetry
	h.inbox = make([]mpq.Queue, opts.MaxThreads)
	h.resp = make([]mpq.Queue, opts.MaxThreads)
	for i := range h.inbox {
		h.inbox[i] = opts.newMpscQueue()
		// Responses to one thread come from whichever thread combines
		// each round — serialized in time, but many producers over the
		// queue's lifetime, hence Mpsc rather than Spsc.
		h.resp[i] = opts.newMpscQueue()
	}
	// The initial node {⊥, MAX_OPS, true}: full, so the first thread
	// fails registration and promotes itself; done, so it proceeds
	// immediately.
	init := &hcNode{}
	init.threadID.Store(-1)
	init.nOps.Store(opts.MaxOps)
	init.done.Store(true)
	h.lastReg.Store(init)
	h.departed.Store(init)
	return h
}

// NewHandle implements Executor.
func (h *HybComb) NewHandle() (Handle, error) {
	if err := h.Err(); err != nil {
		return nil, fmt.Errorf("core: hybcomb: %w", err)
	}
	if h.closed.Load() {
		return nil, fmt.Errorf("core: hybcomb: %w", ErrClosed)
	}
	id := h.nextID.Add(1) - 1
	if int(id) >= h.opts.MaxThreads {
		return nil, errTooManyHandles(h.opts.MaxThreads)
	}
	n := &hcNode{}
	n.threadID.Store(id)
	n.nOps.Store(h.opts.MaxOps) // parked: nobody can register with it
	bl := h.opts.batchLen()
	tk := mpq.NewTicketed(h.resp[id])
	tk.Arm(h.opts.StallTimeout, "hybcomb: client awaiting combiner response")
	tk.OnStall(h.opts.Telemetry.StallHook())
	hd := &hcHandle{
		h:       h,
		id:      id,
		myNode:  n,
		batch:   make([]mpq.Msg, bl),
		runReqs: make([]Req, bl),
		runRets: make([]uint64, bl),
		tk:      tk,
		rec:     h.opts.Telemetry.Recorder(),
		wb:      backoff.Armed(h.opts.StallTimeout, "hybcomb: combiner awaiting predecessor round"),
	}
	// Set on the stored waiter: Armed returns by value, so a hook set
	// on the temporary would be lost.
	hd.wb.SetOnStall(h.opts.Telemetry.StallHook())
	return hd, nil
}

// Close implements Executor. HybComb owns no background goroutine —
// every in-flight registered request is served by its round's combiner
// (a thread inside an older Apply/Submit call) before that call
// returns, so at Close time outstanding results already sit on their
// response rings and tickets stay redeemable with Wait. Closing only
// fails future NewHandle calls; it is idempotent and reports the
// *PoisonError when poisoned.
func (h *HybComb) Close() error {
	h.closed.Store(true)
	return h.Err()
}

// Stats returns the number of completed combining rounds and the total
// requests served by combiners for other threads. Read only at
// pipeline quiescence (every handle flushed or fully waited).
func (h *HybComb) Stats() (rounds, combined uint64) {
	return h.rounds.Load(), h.combined.Load()
}

// Pipeline implements PipelineStats.
func (h *HybComb) Pipeline() (submitStalls, maxDepth uint64) { return h.ps.Pipeline() }

// Telemetry implements TelemetrySource.
func (h *HybComb) Telemetry() *telemetry.Telemetry { return h.opts.Telemetry }

// hcSlot records where an outstanding Submit's result will come from:
// the response stream position of a registered request, or the value a
// combiner-path submission already produced.
type hcSlot struct {
	local bool
	pos   uint64 // response stream position (registered path)
	val   uint64 // banked result (combiner path)
}

type hcHandle struct {
	h      *HybComb
	id     int32
	myNode *hcNode

	batch   []mpq.Msg // combiner-side receive buffer
	runReqs []Req     // combiner-side batch-dispatch scratch
	runRets []uint64
	one     [1]Req // scalar combiner-path scratch
	oneRet  [1]uint64
	posBuf  []uint64 // ApplyBatch position scratch
	drop    []uint64 // discarded-results scratch for ApplyBatch(reqs, nil)

	tk    *mpq.Ticketed // ticketed receive over h.resp[id]
	dt    DepthTracker
	rec   *telemetry.Recorder
	seq   uint64            // next ticket sequence number
	slots map[uint64]hcSlot // outstanding Submit tickets (nil until first Submit)

	// wb is the watched waiter for the combiner's wait on its
	// predecessor round, constructed once per handle and Reset per
	// promotion so the per-operation path never zeroes the watchdog
	// state.
	wb backoff.Watched
}

// Apply is apply_op of Algorithm 1 (lines 6-43): register or combine,
// then block for the result. The uncontended path does no pipeline
// bookkeeping at all — a combiner-path Apply returns its result
// directly, a registered Apply waits for the next response stream
// position.
func (hd *hcHandle) Apply(op, arg uint64) uint64 {
	if hd.h.Poisoned() {
		return 0
	}
	// One latency sample = one blocking call, whichever path it takes
	// (registered round-trip or a served round as the combiner).
	sampled := hd.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	registered, ret := hd.submitOrCombine(op, arg)
	if registered {
		ret = hd.tk.WaitFor(hd.tk.Issue()).W[0]
	}
	if sampled {
		hd.rec.Latency(t0)
	}
	return ret
}

// acquire is lines 8-20 of Algorithm 1: try to register (op, arg) with
// the current combiner. True means registered — the request is shipped
// and its response will arrive on our response queue. False means we
// promoted ourselves to combiner, waited out our predecessor's round,
// and now own the round: the operation was NOT shipped and the caller
// must execute it through combineBatch.
func (hd *hcHandle) acquire(op, arg uint64) bool {
	h := hd.h
	for {
		lastReg := h.lastReg.Load() // line 9
		// Line 11: FAA on the combiner's ticket counter.
		if lastReg.nOps.Add(1)-1 < h.opts.MaxOps {
			// Lines 13-14: registered; ship the request. The response
			// arrives on our response queue once the combiner serves it.
			h.inbox[lastReg.threadID.Load()].Send(mpq.Words3(uint64(hd.id), op, arg))
			return true
		}
		// Line 17: promote ourselves to combiner.
		if h.lastReg.CompareAndSwap(lastReg, hd.myNode) {
			hd.myNode.nOps.Store(0)   // line 18
			if !lastReg.done.Load() { // lines 19-20
				hd.wb.Reset()
				for !lastReg.done.Load() {
					hd.wb.Wait()
				}
			}
			return false
		}
	}
}

// submitOrCombine registers (op, arg) or serves a round with it as the
// combiner's own single operation (registered=false, ret = its result).
func (hd *hcHandle) submitOrCombine(op, arg uint64) (registered bool, ret uint64) {
	if hd.acquire(op, arg) {
		return true, 0
	}
	hd.one[0] = Req{Op: op, Arg: arg}
	hd.combineBatch(hd.one[:], hd.oneRet[:])
	return false, hd.oneRet[0]
}

// serveRun executes one drained run of registered requests as a single
// DispatchBatch call and scatters the responses to the requesters'
// queues.
func (hd *hcHandle) serveRun(run []mpq.Msg) {
	h := hd.h
	reqs := hd.runReqs[:len(run)]
	for i, m := range run {
		reqs[i] = Req{Op: m.W[1], Arg: m.W[2]}
	}
	rets := hd.runRets[:len(run)]
	h.PoisonLatch.Dispatch(h.obj, reqs, rets)
	hd.rec.RunLen(len(run))
	for i, m := range run {
		h.resp[m.W[0]].Send(mpq.Word(rets[i]))
	}
}

// combineBatch is the combiner's half of apply_op (lines 23-43)
// generalized to a run of own operations: execute the own run as one
// DispatchBatch (line 23), serve the round batch-wise, hand the
// combiner role over. results receives the own run's results and must
// be len(own) long.
func (hd *hcHandle) combineBatch(own []Req, results []uint64) {
	h := hd.h
	var opsCompleted int32

	// Line 23 generalized: the combiner's own run executes first, in one
	// mutual-exclusion call. A panic in the object poisons the latch
	// and the round carries on — the drains below still run, the round
	// still closes and hands over, so no registered thread is stranded.
	h.PoisonLatch.Dispatch(h.obj, own, results)
	hd.rec.RunLen(len(own))

	// Lines 25-28: eagerly drain the queue while requests keep arriving;
	// postponing the closing SWAP increases the combining potential.
	// Every drained run is one queue synchronization and one
	// DispatchBatch.
	mine := h.inbox[hd.id]
	buf := hd.batch
	for {
		n := mine.TryRecvBatch(buf)
		if n == 0 {
			break
		}
		hd.serveRun(buf[:n])
		opsCompleted += int32(n)
	}

	// Lines 30-32: close the round; the old counter value is the number
	// of tickets granted.
	totalOps := hd.myNode.nOps.Swap(h.opts.MaxOps)
	if totalOps > h.opts.MaxOps {
		totalOps = h.opts.MaxOps
	}

	// Lines 34-37: serve the granted tickets that are still in flight,
	// again batch-wise. The batch is capped at the outstanding ticket
	// count so the drain can never consume a request addressed to a
	// later round.
	for opsCompleted < totalOps {
		want := totalOps - opsCompleted
		if int(want) > len(buf) {
			want = int32(len(buf))
		}
		n := mine.RecvBatch(buf[:want])
		hd.serveRun(buf[:n])
		opsCompleted += int32(n)
	}

	// Lines 39-42: exchange nodes with the departed combiner, then
	// release our successor. We take the node the previous combiner
	// left behind — we were the thread spinning on it, so we are the
	// one thread entitled to reset its done flag.
	oldNode := hd.myNode
	hd.myNode = h.departed.Swap(oldNode)
	hd.myNode.done.Store(false)
	hd.myNode.threadID.Store(hd.id)
	oldNode.done.Store(true)

	h.rounds.Add(1)
	h.combined.Add(uint64(opsCompleted))
}

// makeRoom bounds the pipeline at QueueCap in-flight registered
// requests, so a combiner can never block sending into our response
// queue.
func (hd *hcHandle) makeRoom() {
	if hd.tk.InFlight() >= hd.h.opts.QueueCap {
		hd.h.ps.NoteStall()
		hd.h.opts.Telemetry.NoteSubmitStall()
		hd.tk.Absorb()
	}
}

// Submit implements Handle. The registered path is genuinely
// asynchronous (the request is shipped, the combiner's response is
// collected by Wait); the combiner path completes on the spot and banks
// the result.
func (hd *hcHandle) Submit(op, arg uint64) (Ticket, error) {
	if err := hd.h.Err(); err != nil {
		return Ticket{}, err
	}
	hd.makeRoom()
	registered, ret := hd.submitOrCombine(op, arg)
	if hd.slots == nil {
		hd.slots = make(map[uint64]hcSlot)
	}
	t := Ticket{seq: hd.seq}
	hd.seq++
	if registered {
		hd.slots[t.seq] = hcSlot{pos: hd.tk.Issue()}
		hd.dt.Note(&hd.h.ps, hd.tk.InFlight())
	} else {
		hd.slots[t.seq] = hcSlot{local: true, val: ret}
	}
	return t, nil
}

// Wait implements Handle.
func (hd *hcHandle) Wait(t Ticket) uint64 {
	// Sample both completion paths: a banked combiner-path result is a
	// near-zero Wait, but it is the latency the client observed — the
	// async leg's distribution must show it, not silently omit it.
	sampled := hd.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	s, ok := hd.slots[t.seq]
	if !ok {
		panic("core: hybcomb: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	delete(hd.slots, t.seq)
	v := s.val
	if !s.local {
		v = hd.tk.WaitFor(s.pos).W[0]
	}
	if sampled {
		hd.rec.Latency(t0)
	}
	return v
}

// TryWait implements Handle: a combiner-path ticket is always ready
// (its result was banked at Submit); a registered ticket is ready once
// its response arrived on the stream.
func (hd *hcHandle) TryWait(t Ticket) (uint64, error) {
	s, ok := hd.slots[t.seq]
	if !ok {
		panic("core: hybcomb: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	if s.local {
		delete(hd.slots, t.seq)
		return s.val, hd.h.Err()
	}
	m, ready := hd.tk.TryWaitFor(s.pos)
	if !ready {
		return 0, ErrNotReady
	}
	delete(hd.slots, t.seq)
	return m.W[0], hd.h.Err()
}

// WaitTimeout implements Handle.
func (hd *hcHandle) WaitTimeout(t Ticket, d time.Duration) (uint64, error) {
	s, ok := hd.slots[t.seq]
	if !ok {
		panic("core: hybcomb: Wait on a ticket that is not outstanding (already waited, or issued by another handle)")
	}
	if s.local {
		delete(hd.slots, t.seq)
		return s.val, hd.h.Err()
	}
	m, ready := hd.tk.WaitForTimeout(s.pos, d)
	if !ready {
		return 0, ErrWaitTimeout
	}
	delete(hd.slots, t.seq)
	return m.W[0], hd.h.Err()
}

// Err implements Handle.
func (hd *hcHandle) Err() error { return hd.h.Err() }

// Post implements Handle: fire-and-forget. A registered request's
// response is marked discarded on the completion stream; a
// combiner-path Post completed already and needs no bookkeeping.
func (hd *hcHandle) Post(op, arg uint64) error {
	if err := hd.h.Err(); err != nil {
		return err
	}
	hd.makeRoom()
	registered, _ := hd.submitOrCombine(op, arg)
	if registered {
		hd.tk.Discard(hd.tk.Issue())
		hd.dt.Note(&hd.h.ps, hd.tk.InFlight())
	}
	return nil
}

// Flush implements Handle: absorb every in-flight response. Banked
// combiner-path results stay redeemable; registered results move into
// the ticketed receive's buffer for their Wait.
func (hd *hcHandle) Flush() { hd.tk.Flush() }

// posLocal marks an ApplyBatch entry resolved on the combiner path (its
// result is already in results); every real stream position is below it
// because positions count from zero.
const posLocal = ^uint64(0)

// ApplyBatch implements Handle: walk the batch registering requests
// with the current combiner; the first request that fails registration
// promotes us, and the batch's entire remaining run becomes the round's
// own run — one DispatchBatch for all of it (line 23 generalized). The
// registered prefix's responses are collected afterwards in stream
// order. A batch therefore costs at most one promotion handshake, with
// the dispatch indirection amortized across the whole remainder.
func (hd *hcHandle) ApplyBatch(reqs []Req, results []uint64) {
	if len(reqs) == 0 {
		return
	}
	if hd.h.Poisoned() {
		if results != nil {
			zeroResults(results[:len(reqs)])
		}
		return
	}
	if len(reqs) == 1 { // a 1-batch is exactly the scalar critical section
		v := hd.Apply(reqs[0].Op, reqs[0].Arg)
		if results != nil {
			results[0] = v
		}
		return
	}
	if cap(hd.posBuf) < len(reqs) {
		hd.posBuf = make([]uint64, len(reqs))
	}
	// One latency sample covers the whole batch call.
	sampled := hd.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	pos := hd.posBuf[:len(reqs)]
	res := results
	if res == nil {
		// The combiner path needs somewhere to write. A dedicated
		// discard buffer, NOT runRets: combineBatch's serveRun reuses
		// runRets for drained-run responses while the own-run results
		// are still live in res.
		if cap(hd.drop) < len(reqs) {
			hd.drop = make([]uint64, len(reqs))
		}
		res = hd.drop[:len(reqs)]
	}

	i := 0
	for i < len(reqs) {
		hd.makeRoom()
		if hd.acquire(reqs[i].Op, reqs[i].Arg) {
			pos[i] = hd.tk.Issue()
			hd.dt.Note(&hd.h.ps, hd.tk.InFlight())
			i++
			continue
		}
		// Combiner: the rest of the batch is the round's own run.
		hd.combineBatch(reqs[i:], res[i:len(reqs)])
		for j := i; j < len(reqs); j++ {
			pos[j] = posLocal
		}
		break
	}
	for j, p := range pos {
		if p == posLocal {
			continue
		}
		v := hd.tk.WaitFor(p).W[0]
		if results != nil {
			results[j] = v
		}
	}
	if sampled {
		hd.rec.Latency(t0)
	}
}
