package core

import (
	"fmt"
	"sync/atomic"

	"hybsync/internal/mpq"
)

// HybComb is the paper's Algorithm 1 as a native Go construction.
// Combiner identity lives in shared memory: last_registered_combiner is
// an atomic pointer CASed by threads promoting themselves to combiner;
// each combiner node carries an n_ops ticket counter (FAA to register a
// request, SWAP to close the round) and a combining_done flag its
// successor spins on. Requests and responses travel through per-thread
// message queues, so while the combiner does not change the data path is
// identical to MPServer — no shared-memory handshake per operation.
type HybComb struct {
	opts     Options
	dispatch Dispatch

	lastReg  atomic.Pointer[hcNode]
	departed atomic.Pointer[hcNode]

	inbox  []mpq.Queue
	nextID atomic.Int32
	closed atomic.Bool

	// Stats counts combining activity (read with Stats after quiescence).
	rounds   atomic.Uint64
	combined atomic.Uint64
}

// hcNode is Algorithm 1's Node, padded so that the hot n_ops field does
// not false-share with anything else.
type hcNode struct {
	threadID atomic.Int32
	_        [60]byte
	nOps     atomic.Int32
	_        [60]byte
	done     atomic.Bool
	_        [63]byte
}

// NewHybComb creates the structure. Unlike MPServer there is no
// background goroutine: threads combine for each other on demand, an
// idle HybComb consumes no resources, and Close only seals the
// executor against new handles.
func NewHybComb(dispatch Dispatch, opts Options) *HybComb {
	opts.fill()
	h := &HybComb{opts: opts, dispatch: dispatch}
	h.inbox = make([]mpq.Queue, opts.MaxThreads)
	for i := range h.inbox {
		h.inbox[i] = opts.newQueue()
	}
	// The initial node {⊥, MAX_OPS, true}: full, so the first thread
	// fails registration and promotes itself; done, so it proceeds
	// immediately.
	init := &hcNode{}
	init.threadID.Store(-1)
	init.nOps.Store(opts.MaxOps)
	init.done.Store(true)
	h.lastReg.Store(init)
	h.departed.Store(init)
	return h
}

// NewHandle implements Executor.
func (h *HybComb) NewHandle() (Handle, error) {
	if h.closed.Load() {
		return nil, fmt.Errorf("core: hybcomb: %w", ErrClosed)
	}
	id := h.nextID.Add(1) - 1
	if int(id) >= h.opts.MaxThreads {
		return nil, errTooManyHandles(h.opts.MaxThreads)
	}
	n := &hcNode{}
	n.threadID.Store(id)
	n.nOps.Store(h.opts.MaxOps) // parked: nobody can register with it
	return &hcHandle{h: h, id: id, myNode: n}, nil
}

// Close implements Executor. HybComb owns no background goroutine, so
// closing only fails future NewHandle calls; it is idempotent.
func (h *HybComb) Close() error {
	h.closed.Store(true)
	return nil
}

// Stats returns the number of completed combining rounds and the total
// requests served by combiners for other threads. Call only while no
// Apply is in flight.
func (h *HybComb) Stats() (rounds, combined uint64) {
	return h.rounds.Load(), h.combined.Load()
}

type hcHandle struct {
	h      *HybComb
	id     int32
	myNode *hcNode
}

// Apply is apply_op of Algorithm 1 (lines 6-43); line numbers below
// reference the paper.
func (hd *hcHandle) Apply(op, arg uint64) uint64 {
	h := hd.h
	var opsCompleted int32

	var lastReg *hcNode
	for {
		lastReg = h.lastReg.Load() // line 9
		// Line 11: FAA on the combiner's ticket counter.
		if lastReg.nOps.Add(1)-1 < h.opts.MaxOps {
			// Lines 13-14: registered; ship the request, await response.
			h.inbox[lastReg.threadID.Load()].Send(mpq.Words3(uint64(hd.id), op, arg))
			return h.inbox[hd.id].Recv().W[0]
		}
		// Line 17: promote ourselves to combiner.
		if h.lastReg.CompareAndSwap(lastReg, hd.myNode) {
			hd.myNode.nOps.Store(0) // line 18
			spins := 0
			for !lastReg.done.Load() { // lines 19-20
				spinWait(&spins)
			}
			break // line 21
		}
	}

	// Line 23: the combiner's own operation runs first.
	retval := h.dispatch(op, arg)

	// Lines 25-28: eagerly drain the queue while requests keep arriving;
	// postponing the closing SWAP increases the combining potential.
	mine := h.inbox[hd.id]
	for {
		m, ok := mine.TryRecv()
		if !ok {
			break
		}
		h.inbox[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		opsCompleted++
	}

	// Lines 30-32: close the round; the old counter value is the number
	// of tickets granted.
	totalOps := hd.myNode.nOps.Swap(h.opts.MaxOps)
	if totalOps > h.opts.MaxOps {
		totalOps = h.opts.MaxOps
	}

	// Lines 34-37: serve the granted tickets that are still in flight.
	for opsCompleted < totalOps {
		m := mine.Recv()
		h.inbox[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		opsCompleted++
	}

	// Lines 39-42: exchange nodes with the departed combiner, then
	// release our successor. We take the node the previous combiner
	// left behind — we were the thread spinning on it, so we are the
	// one thread entitled to reset its done flag.
	oldNode := hd.myNode
	hd.myNode = h.departed.Swap(oldNode)
	hd.myNode.done.Store(false)
	hd.myNode.threadID.Store(hd.id)
	oldNode.done.Store(true)

	h.rounds.Add(1)
	h.combined.Add(uint64(opsCompleted))
	return retval // line 43
}
