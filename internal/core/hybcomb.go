package core

import (
	"fmt"
	"sync/atomic"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/mpq"
	"hybsync/internal/pad"
)

// HybComb is the paper's Algorithm 1 as a native Go construction.
// Combiner identity lives in shared memory: last_registered_combiner is
// an atomic pointer CASed by threads promoting themselves to combiner;
// each combiner node carries an n_ops ticket counter (FAA to register a
// request, SWAP to close the round) and a combining_done flag its
// successor spins on. Requests and responses travel through per-thread
// message queues, so while the combiner does not change the data path is
// identical to MPServer — no shared-memory handshake per operation.
//
// The inboxes are mpq.Mpsc queues (any thread sends; only the owner
// receives) and the combiner drains them with batched receives: both
// the eager drain (lines 25-28) and the granted-ticket drain (lines
// 34-37) consume a run of published requests per queue synchronization.
type HybComb struct {
	opts     Options
	dispatch Dispatch

	lastReg  atomic.Pointer[hcNode]
	departed atomic.Pointer[hcNode]

	inbox  []mpq.Queue
	nextID atomic.Int32
	closed atomic.Bool

	// Stats counts combining activity (read with Stats after quiescence).
	rounds   atomic.Uint64
	combined atomic.Uint64
}

// hcNode is Algorithm 1's Node. Each of the three fields is written and
// spun on by different threads at different times (registering threads
// FAA nOps while the successor spins on done), so each lives on its own
// cache line; the pads are sized from the fields themselves and the
// layout is machine-verified by TestHybCombNodeLayout.
type hcNode struct {
	threadID atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	nOps     atomic.Int32
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Int32{})%pad.CacheLine]byte
	done     atomic.Bool
	_        [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// NewHybComb creates the structure. Unlike MPServer there is no
// background goroutine: threads combine for each other on demand, an
// idle HybComb consumes no resources, and Close only seals the
// executor against new handles.
func NewHybComb(dispatch Dispatch, opts Options) *HybComb {
	opts.fill()
	h := &HybComb{opts: opts, dispatch: dispatch}
	h.inbox = make([]mpq.Queue, opts.MaxThreads)
	for i := range h.inbox {
		h.inbox[i] = opts.newMpscQueue()
	}
	// The initial node {⊥, MAX_OPS, true}: full, so the first thread
	// fails registration and promotes itself; done, so it proceeds
	// immediately.
	init := &hcNode{}
	init.threadID.Store(-1)
	init.nOps.Store(opts.MaxOps)
	init.done.Store(true)
	h.lastReg.Store(init)
	h.departed.Store(init)
	return h
}

// NewHandle implements Executor.
func (h *HybComb) NewHandle() (Handle, error) {
	if h.closed.Load() {
		return nil, fmt.Errorf("core: hybcomb: %w", ErrClosed)
	}
	id := h.nextID.Add(1) - 1
	if int(id) >= h.opts.MaxThreads {
		return nil, errTooManyHandles(h.opts.MaxThreads)
	}
	n := &hcNode{}
	n.threadID.Store(id)
	n.nOps.Store(h.opts.MaxOps) // parked: nobody can register with it
	return &hcHandle{h: h, id: id, myNode: n, batch: make([]mpq.Msg, h.opts.batchLen())}, nil
}

// Close implements Executor. HybComb owns no background goroutine, so
// closing only fails future NewHandle calls; it is idempotent.
func (h *HybComb) Close() error {
	h.closed.Store(true)
	return nil
}

// Stats returns the number of completed combining rounds and the total
// requests served by combiners for other threads. Call only while no
// Apply is in flight.
func (h *HybComb) Stats() (rounds, combined uint64) {
	return h.rounds.Load(), h.combined.Load()
}

type hcHandle struct {
	h      *HybComb
	id     int32
	myNode *hcNode
	batch  []mpq.Msg // combiner-side receive buffer
}

// Apply is apply_op of Algorithm 1 (lines 6-43); line numbers below
// reference the paper.
func (hd *hcHandle) Apply(op, arg uint64) uint64 {
	h := hd.h
	var opsCompleted int32

	var lastReg *hcNode
	for {
		lastReg = h.lastReg.Load() // line 9
		// Line 11: FAA on the combiner's ticket counter.
		if lastReg.nOps.Add(1)-1 < h.opts.MaxOps {
			// Lines 13-14: registered; ship the request, await response.
			h.inbox[lastReg.threadID.Load()].Send(mpq.Words3(uint64(hd.id), op, arg))
			return h.inbox[hd.id].Recv().W[0]
		}
		// Line 17: promote ourselves to combiner.
		if h.lastReg.CompareAndSwap(lastReg, hd.myNode) {
			hd.myNode.nOps.Store(0) // line 18
			var b backoff.Backoff
			for !lastReg.done.Load() { // lines 19-20
				b.Wait()
			}
			break // line 21
		}
	}

	// Line 23: the combiner's own operation runs first.
	retval := h.dispatch(op, arg)

	// Lines 25-28: eagerly drain the queue while requests keep arriving;
	// postponing the closing SWAP increases the combining potential.
	// Every ticket holder's request is drained batch-wise: one queue
	// synchronization per run of published requests.
	mine := h.inbox[hd.id]
	buf := hd.batch
	for {
		n := mine.TryRecvBatch(buf)
		if n == 0 {
			break
		}
		for _, m := range buf[:n] {
			h.inbox[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		}
		opsCompleted += int32(n)
	}

	// Lines 30-32: close the round; the old counter value is the number
	// of tickets granted.
	totalOps := hd.myNode.nOps.Swap(h.opts.MaxOps)
	if totalOps > h.opts.MaxOps {
		totalOps = h.opts.MaxOps
	}

	// Lines 34-37: serve the granted tickets that are still in flight,
	// again batch-wise. The batch is capped at the outstanding ticket
	// count so the drain can never consume a request addressed to a
	// later round.
	for opsCompleted < totalOps {
		want := totalOps - opsCompleted
		if int(want) > len(buf) {
			want = int32(len(buf))
		}
		n := mine.RecvBatch(buf[:want])
		for _, m := range buf[:n] {
			h.inbox[m.W[0]].Send(mpq.Word(h.dispatch(m.W[1], m.W[2])))
		}
		opsCompleted += int32(n)
	}

	// Lines 39-42: exchange nodes with the departed combiner, then
	// release our successor. We take the node the previous combiner
	// left behind — we were the thread spinning on it, so we are the
	// one thread entitled to reset its done flag.
	oldNode := hd.myNode
	hd.myNode = h.departed.Swap(oldNode)
	hd.myNode.done.Store(false)
	hd.myNode.threadID.Store(hd.id)
	oldNode.done.Store(true)

	h.rounds.Add(1)
	h.combined.Add(uint64(opsCompleted))
	return retval // line 43
}
