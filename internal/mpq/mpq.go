// Package mpq provides bounded FIFO message queues with the semantics of
// the TILE-Gx User Dynamic Network the paper builds on (§2, §5.1): each
// thread owns an incoming queue; sends are possible from any thread and
// block only when the destination queue is full (back-pressure — messages
// are never dropped); receives block until a message is available; the
// words of one message arrive contiguously and messages from one sender
// stay in order.
//
// Substitution note (DESIGN.md): hardware delivers raw 64-bit words and
// receive(k) pops k of them; in native Go the queue is message-granular —
// a Msg carries up to three words, matching the request {id, opcode, arg}
// and response {value} frames the paper's algorithms exchange. This
// preserves every property the algorithms rely on (FIFO, bounded,
// blocking, contiguous) while staying allocation-free.
//
// Every queue in the system is consumed by exactly one goroutine (each
// thread owns its incoming queue), so the package provides
// role-specialized backends alongside the fully general one:
//
//   - Spsc: single producer, single consumer — the MP-SERVER response
//     path. No atomic read-modify-write at all; one plain store
//     publishes on each side.
//   - Mpsc: many producers, single consumer — the MP-SERVER request
//     queue and the HybComb inboxes. Producers claim a slot with a
//     single fetch-and-add instead of a CAS retry loop; the consumer
//     never CASes.
//   - Ring: the original general MPMC Vyukov ring, kept as the
//     conservative fallback and ablation baseline.
//   - ChanQueue: a buffered Go channel (the obvious baseline).
//
// The ablation benchmark BenchmarkMPQBackends compares them per role.
package mpq

import (
	"sync/atomic"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/pad"
)

// Msg is one hardware-style message: N words of payload (1..3).
type Msg struct {
	N int
	W [3]uint64
}

// Word builds a 1-word message.
func Word(v uint64) Msg { return Msg{N: 1, W: [3]uint64{v}} }

// Words3 builds a 3-word message (the request frame {id, op, arg}).
func Words3(a, b, c uint64) Msg { return Msg{N: 3, W: [3]uint64{a, b, c}} }

// Queue is a bounded FIFO with blocking Send/Recv, non-blocking TryRecv
// (the paper's is_queue_empty + receive idiom), and batched receive for
// amortizing per-message synchronization on the consumer side.
type Queue interface {
	// Send enqueues m, blocking while the queue is full (back-pressure).
	Send(m Msg)
	// Recv dequeues the oldest message, blocking while the queue is empty.
	Recv() Msg
	// TryRecv dequeues if a published message is available.
	TryRecv() (Msg, bool)
	// RecvBatch dequeues up to len(buf) messages into buf, blocking
	// until at least one is available, and returns the count. Messages
	// from one sender stay in order across batch boundaries. A zero-
	// length buf returns 0 immediately.
	RecvBatch(buf []Msg) int
	// TryRecvBatch dequeues up to len(buf) currently published messages
	// into buf without blocking and returns the count (0 when empty).
	TryRecvBatch(buf []Msg) int
	// Empty reports whether the queue currently has no published
	// message at its head. Like the hardware instruction it is advisory
	// in two ways: a concurrent sender may enqueue immediately after,
	// and a sender mid-publication (slot claimed, message not yet
	// written) still counts as empty until the write completes.
	Empty() bool
}

// recvBatchBlocking implements RecvBatch over a backend's blocking Recv
// and non-blocking TryRecvBatch: block for the first message, then
// opportunistically drain whatever else is already published.
func recvBatchBlocking(q Queue, buf []Msg) int {
	if len(buf) == 0 {
		return 0
	}
	buf[0] = q.Recv()
	return 1 + q.TryRecvBatch(buf[1:])
}

// ringCellHot is the live part of a ring cell; the enclosing ringCell
// pads it to a whole cache line (verified by TestLayout) so neighbouring
// cells never false-share.
type ringCellHot struct {
	seq atomic.Uint64
	msg Msg
}

//hyblint:padded
type ringCell struct {
	ringCellHot
	_ [pad.CacheLine - unsafe.Sizeof(ringCellHot{})%pad.CacheLine]byte
}

// ringSize rounds cap up to a power of two, minimum 2.
func ringSize(cap int) int {
	n := 2
	for n < cap {
		n <<= 1
	}
	return n
}

// Ring is a bounded lock-free MPMC ring buffer (Vyukov's algorithm):
// each cell carries a sequence number; producers claim cells with a CAS
// on the enqueue position and consumers with a CAS on the dequeue
// position. It is the fully general backend — when the producer or
// consumer side is known to be single, prefer Mpsc or Spsc, which shed
// the CAS loops.
//
//hyblint:padsep
type Ring struct {
	_    pad.Line
	enq  atomic.Uint64
	_    pad.Line
	deq  atomic.Uint64
	_    pad.Line
	mask uint64
	// cells[i].seq encodes the cell state for position pos = lap*len+i:
	// seq == pos    free (or claimed by a producer that has not yet
	//               written the message),
	// seq == pos+1  published, ready to consume,
	// seq == pos+len  consumed, free for the next lap.
	cells []ringCell
}

// NewRing creates a ring with capacity cap messages (rounded up to a
// power of two, minimum 2).
func NewRing(cap int) *Ring {
	n := ringSize(cap)
	r := &Ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Send implements Queue.
func (r *Ring) Send(m Msg) {
	var b backoff.Backoff
	for {
		pos := r.enq.Load()
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.msg = m
				cell.seq.Store(pos + 1)
				return
			}
		case seq < pos:
			// Full: the consumer has not freed this cell yet.
			b.Wait()
		default:
			// Another producer won the race; retry with a fresh pos.
		}
	}
}

// Recv implements Queue.
func (r *Ring) Recv() Msg {
	var b backoff.Backoff
	for {
		if m, ok := r.TryRecv(); ok {
			return m
		}
		b.Wait()
	}
}

// TryRecv implements Queue. It returns false both when the queue is
// empty and when the head cell is claimed by a producer that has not
// yet written the message (seq <= pos): an unpublished message is not
// receivable, exactly as an in-flight hardware packet is not.
func (r *Ring) TryRecv() (Msg, bool) {
	for {
		pos := r.deq.Load()
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		if seq == pos+1 {
			if r.deq.CompareAndSwap(pos, pos+1) {
				m := cell.msg
				cell.seq.Store(pos + r.mask + 1)
				return m, true
			}
			continue // another consumer took it; retry
		}
		if seq <= pos {
			return Msg{}, false // empty, or head cell claimed but unwritten
		}
		// seq > pos+1: a racing consumer already advanced; retry.
	}
}

// RecvBatch implements Queue.
func (r *Ring) RecvBatch(buf []Msg) int { return recvBatchBlocking(r, buf) }

// TryRecvBatch implements Queue.
func (r *Ring) TryRecvBatch(buf []Msg) int {
	n := 0
	for n < len(buf) {
		m, ok := r.TryRecv()
		if !ok {
			break
		}
		buf[n] = m
		n++
	}
	return n
}

// Empty implements Queue. seq <= pos covers both genuinely empty and
// "head cell claimed but not yet written"; either way there is nothing
// to receive right now.
func (r *Ring) Empty() bool {
	pos := r.deq.Load()
	return r.cells[pos&r.mask].seq.Load() <= pos
}

// ChanQueue adapts a buffered Go channel to the Queue interface — the
// baseline backend for the ablation benchmark.
type ChanQueue struct {
	ch chan Msg
}

// NewChan creates a channel-backed queue with the given capacity.
func NewChan(cap int) *ChanQueue { return &ChanQueue{ch: make(chan Msg, cap)} }

// Send implements Queue.
func (q *ChanQueue) Send(m Msg) { q.ch <- m }

// Recv implements Queue.
func (q *ChanQueue) Recv() Msg { return <-q.ch }

// TryRecv implements Queue.
func (q *ChanQueue) TryRecv() (Msg, bool) {
	select {
	case m := <-q.ch:
		return m, true
	default:
		return Msg{}, false
	}
}

// RecvBatch implements Queue.
func (q *ChanQueue) RecvBatch(buf []Msg) int { return recvBatchBlocking(q, buf) }

// TryRecvBatch implements Queue.
func (q *ChanQueue) TryRecvBatch(buf []Msg) int {
	n := 0
	for n < len(buf) {
		select {
		case m := <-q.ch:
			buf[n] = m
			n++
		default:
			return n
		}
	}
	return n
}

// Empty implements Queue.
func (q *ChanQueue) Empty() bool { return len(q.ch) == 0 }

// New returns the general-purpose backend (MPMC Ring) with the given
// capacity; the TILE-Gx hardware queue holds 118 words, i.e. ~39
// three-word requests. Callers that know their producer/consumer roles
// should use NewSpsc or NewMpsc directly.
func New(cap int) Queue { return NewRing(cap) }
