// Package mpq provides bounded FIFO message queues with the semantics of
// the TILE-Gx User Dynamic Network the paper builds on (§2, §5.1): each
// thread owns an incoming queue; sends are possible from any thread and
// block only when the destination queue is full (back-pressure — messages
// are never dropped); receives block until a message is available; the
// words of one message arrive contiguously and messages from one sender
// stay in order.
//
// Substitution note (DESIGN.md): hardware delivers raw 64-bit words and
// receive(k) pops k of them; in native Go the queue is message-granular —
// a Msg carries up to three words, matching the request {id, opcode, arg}
// and response {value} frames the paper's algorithms exchange. This
// preserves every property the algorithms rely on (FIFO, bounded,
// blocking, contiguous) while staying allocation-free.
//
// Two interchangeable backends are provided: Ring, a lock-free bounded
// MPMC ring (Vyukov-style, used by default), and ChanQueue, a thin
// wrapper over a Go channel (the obvious baseline). The ablation
// benchmark BenchmarkMPQBackends compares them.
package mpq

import (
	"runtime"
	"sync/atomic"
)

// Msg is one hardware-style message: N words of payload (1..3).
type Msg struct {
	N int
	W [3]uint64
}

// Word builds a 1-word message.
func Word(v uint64) Msg { return Msg{N: 1, W: [3]uint64{v}} }

// Words3 builds a 3-word message (the request frame {id, op, arg}).
func Words3(a, b, c uint64) Msg { return Msg{N: 3, W: [3]uint64{a, b, c}} }

// Queue is a bounded FIFO with blocking Send/Recv and a non-blocking
// TryRecv (the paper's is_queue_empty + receive idiom).
type Queue interface {
	// Send enqueues m, blocking while the queue is full (back-pressure).
	Send(m Msg)
	// Recv dequeues the oldest message, blocking while the queue is empty.
	Recv() Msg
	// TryRecv dequeues if a message is available.
	TryRecv() (Msg, bool)
	// Empty reports whether the queue is currently empty. Like the
	// hardware instruction it is advisory: a concurrent sender may
	// enqueue immediately after.
	Empty() bool
}

// spinThenYield busy-waits briefly, then yields the processor, mirroring
// how a hardware receive parks the issuing core.
func spinThenYield(spins *int) {
	*spins++
	if *spins%64 == 0 {
		runtime.Gosched()
	}
}

// Ring is a bounded lock-free MPMC ring buffer (Vyukov's algorithm):
// each cell carries a sequence number; producers claim cells with a CAS
// on the enqueue position and consumers with a CAS on the dequeue
// position. With a single consumer per queue — the paper's usage — the
// dequeue CAS never fails.
type Ring struct {
	_     [56]byte // padding: keep positions on separate cache lines
	enq   atomic.Uint64
	_     [56]byte
	deq   atomic.Uint64
	_     [56]byte
	mask  uint64
	cells []ringCell
}

type ringCell struct {
	seq atomic.Uint64
	msg Msg
	_   [24]byte // pad to reduce false sharing between neighbours
}

// NewRing creates a ring with capacity cap messages (rounded up to a
// power of two, minimum 2).
func NewRing(cap int) *Ring {
	n := 2
	for n < cap {
		n <<= 1
	}
	r := &Ring{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// Send implements Queue.
func (r *Ring) Send(m Msg) {
	spins := 0
	for {
		pos := r.enq.Load()
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				cell.msg = m
				cell.seq.Store(pos + 1)
				return
			}
		case seq < pos:
			// Full: the consumer has not freed this cell yet.
			spinThenYield(&spins)
		default:
			// Another producer won the race; retry with a fresh pos.
		}
	}
}

// Recv implements Queue.
func (r *Ring) Recv() Msg {
	spins := 0
	for {
		if m, ok := r.TryRecv(); ok {
			return m
		}
		spinThenYield(&spins)
	}
}

// TryRecv implements Queue.
func (r *Ring) TryRecv() (Msg, bool) {
	for {
		pos := r.deq.Load()
		cell := &r.cells[pos&r.mask]
		seq := cell.seq.Load()
		if seq == pos+1 {
			if r.deq.CompareAndSwap(pos, pos+1) {
				m := cell.msg
				cell.seq.Store(pos + r.mask + 1)
				return m, true
			}
			continue // another consumer took it; retry
		}
		if seq <= pos {
			return Msg{}, false // empty
		}
		// seq > pos+1: a racing consumer already advanced; retry.
	}
}

// Empty implements Queue.
func (r *Ring) Empty() bool {
	pos := r.deq.Load()
	return r.cells[pos&r.mask].seq.Load() <= pos
}

// ChanQueue adapts a buffered Go channel to the Queue interface — the
// baseline backend for the ablation benchmark.
type ChanQueue struct {
	ch chan Msg
}

// NewChan creates a channel-backed queue with the given capacity.
func NewChan(cap int) *ChanQueue { return &ChanQueue{ch: make(chan Msg, cap)} }

// Send implements Queue.
func (q *ChanQueue) Send(m Msg) { q.ch <- m }

// Recv implements Queue.
func (q *ChanQueue) Recv() Msg { return <-q.ch }

// TryRecv implements Queue.
func (q *ChanQueue) TryRecv() (Msg, bool) {
	select {
	case m := <-q.ch:
		return m, true
	default:
		return Msg{}, false
	}
}

// Empty implements Queue.
func (q *ChanQueue) Empty() bool { return len(q.ch) == 0 }

// New returns the default backend (Ring) with the given capacity; the
// TILE-Gx hardware queue holds 118 words, i.e. ~39 three-word requests.
func New(cap int) Queue { return NewRing(cap) }
