package mpq

import (
	"sync"
	"testing"
	"testing/quick"
	"unsafe"

	"hybsync/internal/pad"
)

// spscBackends lists every backend that supports one producer + one
// consumer (all of them); mpscBackends every backend that supports many
// producers + one consumer. Deterministic slice order keeps test and
// benchmark output stable.
type namedBackend struct {
	name string
	mk   func(cap int) Queue
}

func spscBackends() []namedBackend {
	return []namedBackend{
		{"ring", func(c int) Queue { return NewRing(c) }},
		{"chan", func(c int) Queue { return NewChan(c) }},
		{"mpsc", func(c int) Queue { return NewMpsc(c) }},
		{"spsc", func(c int) Queue { return NewSpsc(c) }},
	}
}

func mpscBackends() []namedBackend {
	return []namedBackend{
		{"ring", func(c int) Queue { return NewRing(c) }},
		{"chan", func(c int) Queue { return NewChan(c) }},
		{"mpsc", func(c int) Queue { return NewMpsc(c) }},
	}
}

func TestFIFOSingleProducer(t *testing.T) {
	for _, be := range spscBackends() {
		q := be.mk(8)
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := uint64(0); i < 1000; i++ {
				m := q.Recv()
				if m.W[0] != i {
					t.Errorf("%s: got %d, want %d", be.name, m.W[0], i)
					return
				}
			}
		}()
		for i := uint64(0); i < 1000; i++ {
			q.Send(Word(i))
		}
		<-done
	}
}

func TestBackPressure(t *testing.T) {
	for _, be := range spscBackends() {
		q := be.mk(4)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Send(Word(uint64(i))) // must block, not drop, beyond cap
			}
		}()
		got := 0
		for i := 0; i < 100; i++ {
			q.Recv()
			got++
		}
		wg.Wait()
		if got != 100 {
			t.Fatalf("%s: received %d of 100", be.name, got)
		}
	}
}

func TestMultiProducerNoLossNoDup(t *testing.T) {
	const producers, per = 8, 2000
	for _, be := range mpscBackends() {
		q := be.mk(39)
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					q.Send(Words3(uint64(p), uint64(i), uint64(p*per+i)))
				}
			}(p)
		}
		seen := make(map[uint64]bool)
		lastPerProducer := make([]int64, producers)
		for i := range lastPerProducer {
			lastPerProducer[i] = -1
		}
		for n := 0; n < producers*per; n++ {
			m := q.Recv()
			if m.N != 3 {
				t.Fatalf("%s: message arrived with %d words", be.name, m.N)
			}
			key := m.W[2]
			if seen[key] {
				t.Fatalf("%s: duplicate message %d", be.name, key)
			}
			seen[key] = true
			p, i := m.W[0], int64(m.W[1])
			if i <= lastPerProducer[p] {
				t.Fatalf("%s: per-sender order violated: producer %d sent %d after %d",
					be.name, p, i, lastPerProducer[p])
			}
			lastPerProducer[p] = i
		}
		wg.Wait()
		if !q.Empty() {
			t.Fatalf("%s: queue not empty after draining", be.name)
		}
	}
}

// TestBatchedRecvMultiProducer is TestMultiProducerNoLossNoDup through
// the batched receive path: messages from one sender must stay in order
// across batch boundaries, with nothing lost or duplicated, for every
// batch size (including 1 and sizes larger than the queue).
func TestBatchedRecvMultiProducer(t *testing.T) {
	const producers, per = 8, 2000
	for _, be := range mpscBackends() {
		for _, batch := range []int{1, 7, 64} {
			q := be.mk(39)
			var wg sync.WaitGroup
			for p := 0; p < producers; p++ {
				wg.Add(1)
				go func(p int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						q.Send(Words3(uint64(p), uint64(i), uint64(p*per+i)))
					}
				}(p)
			}
			seen := make(map[uint64]bool)
			last := make([]int64, producers)
			for i := range last {
				last[i] = -1
			}
			buf := make([]Msg, batch)
			for got := 0; got < producers*per; {
				n := q.RecvBatch(buf)
				if n < 1 || n > batch {
					t.Fatalf("%s/batch=%d: RecvBatch returned %d", be.name, batch, n)
				}
				for _, m := range buf[:n] {
					if seen[m.W[2]] {
						t.Fatalf("%s/batch=%d: duplicate message %d", be.name, batch, m.W[2])
					}
					seen[m.W[2]] = true
					p, i := m.W[0], int64(m.W[1])
					if i <= last[p] {
						t.Fatalf("%s/batch=%d: producer %d sent %d after %d",
							be.name, batch, p, i, last[p])
					}
					last[p] = i
				}
				got += n
			}
			wg.Wait()
			if !q.Empty() {
				t.Fatalf("%s/batch=%d: queue not empty after draining", be.name, batch)
			}
		}
	}
}

// TestSpscFIFOBatched streams one sequence through the SPSC queue with a
// batched consumer under heavy back-pressure (tiny capacity).
func TestSpscFIFOBatched(t *testing.T) {
	const total = 20000
	q := NewSpsc(4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]Msg, 9)
		next := uint64(0)
		for next < total {
			n := q.RecvBatch(buf)
			for _, m := range buf[:n] {
				if m.W[0] != next {
					t.Errorf("got %d, want %d", m.W[0], next)
					return
				}
				next++
			}
		}
	}()
	for i := uint64(0); i < total; i++ {
		q.Send(Word(i))
	}
	<-done
}

func TestTryRecvAndEmpty(t *testing.T) {
	for _, be := range spscBackends() {
		q := be.mk(4)
		if _, ok := q.TryRecv(); ok {
			t.Fatalf("%s: TryRecv on empty succeeded", be.name)
		}
		if !q.Empty() {
			t.Fatalf("%s: fresh queue not empty", be.name)
		}
		q.Send(Word(7))
		if q.Empty() {
			t.Fatalf("%s: queue empty after send", be.name)
		}
		m, ok := q.TryRecv()
		if !ok || m.W[0] != 7 {
			t.Fatalf("%s: TryRecv = %v,%v", be.name, m, ok)
		}
	}
}

func TestTryRecvBatchEmptyAndZeroBuf(t *testing.T) {
	for _, be := range spscBackends() {
		q := be.mk(4)
		if n := q.TryRecvBatch(make([]Msg, 4)); n != 0 {
			t.Fatalf("%s: TryRecvBatch on empty = %d", be.name, n)
		}
		q.Send(Word(1))
		if n := q.RecvBatch(nil); n != 0 {
			t.Fatalf("%s: RecvBatch(nil) = %d", be.name, n)
		}
		if n := q.TryRecvBatch(nil); n != 0 {
			t.Fatalf("%s: TryRecvBatch(nil) = %d", be.name, n)
		}
		if m, ok := q.TryRecv(); !ok || m.W[0] != 1 {
			t.Fatalf("%s: message lost by zero-length batch calls", be.name)
		}
	}
}

// TestClaimedButUnwrittenCell is the regression test for the documented
// seq <= pos semantics: a reader that observes a cell some producer has
// claimed (position advanced) but not yet written (message and sequence
// stamp pending) must treat the queue as empty rather than return the
// stale cell. We reproduce the producer's half-completed Send
// deterministically by performing only its claim step.
func TestClaimedButUnwrittenCell(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		r := NewRing(4)
		// First half of Ring.Send: claim position 0, do not publish.
		if !r.enq.CompareAndSwap(0, 1) {
			t.Fatal("claim CAS failed on fresh ring")
		}
		if _, ok := r.TryRecv(); ok {
			t.Fatal("TryRecv returned a claimed but unwritten cell")
		}
		if !r.Empty() {
			t.Fatal("Empty = false while the head cell is claimed but unwritten")
		}
		// Second half: publish, then the message must be receivable.
		r.cells[0].msg = Word(9)
		r.cells[0].seq.Store(1)
		if m, ok := r.TryRecv(); !ok || m.W[0] != 9 {
			t.Fatalf("after publish: TryRecv = %v,%v", m, ok)
		}
	})
	t.Run("mpsc", func(t *testing.T) {
		q := NewMpsc(4)
		// First half of Mpsc.Send: the fetch-and-add claim.
		pos := q.enq.Add(1) - 1
		if _, ok := q.TryRecv(); ok {
			t.Fatal("TryRecv returned a claimed but unwritten cell")
		}
		if n := q.TryRecvBatch(make([]Msg, 4)); n != 0 {
			t.Fatalf("TryRecvBatch crossed an unpublished cell: %d", n)
		}
		if !q.Empty() {
			t.Fatal("Empty = false while the head cell is claimed but unwritten")
		}
		cell := &q.cells[pos&q.mask]
		cell.msg = Word(9)
		cell.seq.Store(pos + 1)
		if m, ok := q.TryRecv(); !ok || m.W[0] != 9 {
			t.Fatalf("after publish: TryRecv = %v,%v", m, ok)
		}
	})
}

// TestBatchStopsAtUnpublishedCell checks that a batched receive stops at
// a claimed-but-unwritten cell but still returns the published prefix —
// a later producer's publication must not let the consumer skip over an
// earlier in-flight message.
func TestBatchStopsAtUnpublishedCell(t *testing.T) {
	q := NewMpsc(8)
	q.Send(Word(1))
	pos := q.enq.Add(1) - 1         // claim position 1, leave it unwritten
	q.cells[2&q.mask].msg = Word(3) // "publish" position 2 out of order
	q.cells[2&q.mask].seq.Store(3)
	q.enq.Add(1)
	buf := make([]Msg, 8)
	if n := q.TryRecvBatch(buf); n != 1 || buf[0].W[0] != 1 {
		t.Fatalf("batch across unpublished cell: n=%d buf=%v", n, buf[:n])
	}
	// Complete the in-flight publish; the rest drains in order.
	cell := &q.cells[pos&q.mask]
	cell.msg = Word(2)
	cell.seq.Store(pos + 1)
	if n := q.TryRecvBatch(buf); n != 2 || buf[0].W[0] != 2 || buf[1].W[0] != 3 {
		t.Fatalf("drain after publish: n=%d buf=%v", n, buf[:n])
	}
}

func TestRingCapacityRounding(t *testing.T) {
	f := func(c uint8) bool {
		cap := int(c%60) + 1
		r := NewRing(cap)
		q := NewMpsc(cap)
		s := NewSpsc(cap)
		ok := func(n int) bool { return n >= 2 && n&(n-1) == 0 && n >= cap }
		return ok(len(r.cells)) && ok(len(q.cells)) && ok(len(s.cells))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWrapAround(t *testing.T) {
	// Exercise index wrap-around arithmetic across many laps of tiny
	// rings.
	for _, be := range spscBackends() {
		q := be.mk(2)
		for lap := uint64(0); lap < 10000; lap++ {
			q.Send(Word(lap))
			if m := q.Recv(); m.W[0] != lap {
				t.Fatalf("%s: lap %d: got %d", be.name, lap, m.W[0])
			}
		}
	}
}

func TestMsgConstructors(t *testing.T) {
	if m := Word(5); m.N != 1 || m.W[0] != 5 {
		t.Fatalf("Word: %+v", m)
	}
	if m := Words3(1, 2, 3); m.N != 3 || m.W != [3]uint64{1, 2, 3} {
		t.Fatalf("Words3: %+v", m)
	}
}

// TestLayout machine-verifies the cache-line padding (see package pad):
// the producer- and consumer-side positions of every ring live on
// different cache lines, and ring cells are whole-line array elements.
func TestLayout(t *testing.T) {
	var r Ring
	if pad.SameLine(unsafe.Offsetof(r.enq), unsafe.Offsetof(r.deq)) {
		t.Error("Ring: enq and deq share a cache line")
	}
	var m Mpsc
	if pad.SameLine(unsafe.Offsetof(m.enq), unsafe.Offsetof(m.deq)) {
		t.Error("Mpsc: enq and deq share a cache line")
	}
	var s Spsc
	if pad.SameLine(unsafe.Offsetof(s.enq)+unsafe.Sizeof(s.enq)+unsafe.Sizeof(s.deqCache)-1,
		unsafe.Offsetof(s.deq)) {
		t.Error("Spsc: producer fields (enq+deqCache) and deq share a cache line")
	}
	if !pad.Padded(unsafe.Sizeof(ringCell{})) {
		t.Errorf("ringCell is %d bytes, not a whole number of cache lines",
			unsafe.Sizeof(ringCell{}))
	}
}

// BenchmarkMPQBackends compares the backends per role. spsc-path is the
// MP-SERVER response queue (one producer, one consumer); mpsc-path is
// the request queue (parallel producers, one consumer); mpsc-batch is
// the request queue drained with RecvBatch, the server-loop fast path.
func BenchmarkMPQBackends(b *testing.B) {
	b.Run("spsc-path", func(b *testing.B) {
		for _, be := range spscBackends() {
			b.Run(be.name, func(b *testing.B) {
				q := be.mk(39)
				done := make(chan struct{})
				go func() {
					defer close(done)
					for i := 0; i < b.N; i++ {
						q.Recv()
					}
				}()
				for i := 0; i < b.N; i++ {
					q.Send(Words3(1, 2, 3))
				}
				<-done
			})
		}
	})
	b.Run("mpsc-path", func(b *testing.B) {
		for _, be := range mpscBackends() {
			b.Run(be.name, func(b *testing.B) {
				q := be.mk(39)
				done := make(chan struct{})
				go func() {
					defer close(done)
					for i := 0; i < b.N; i++ {
						q.Recv()
					}
				}()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						q.Send(Words3(1, 2, 3))
					}
				})
				<-done
			})
		}
	})
	b.Run("mpsc-batch", func(b *testing.B) {
		for _, be := range mpscBackends() {
			b.Run(be.name, func(b *testing.B) {
				q := be.mk(39)
				done := make(chan struct{})
				go func() {
					defer close(done)
					buf := make([]Msg, 32)
					for got := 0; got < b.N; {
						got += q.RecvBatch(buf)
					}
				}()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						q.Send(Words3(1, 2, 3))
					}
				})
				<-done
			})
		}
	})
}
