package mpq

import (
	"sync"
	"testing"
	"testing/quick"
)

func backends(cap int) map[string]func() Queue {
	return map[string]func() Queue{
		"ring": func() Queue { return NewRing(cap) },
		"chan": func() Queue { return NewChan(cap) },
	}
}

func TestFIFOSingleProducer(t *testing.T) {
	for name, mk := range backends(8) {
		q := mk()
		done := make(chan struct{})
		go func() {
			defer close(done)
			for i := uint64(0); i < 1000; i++ {
				m := q.Recv()
				if m.W[0] != i {
					t.Errorf("%s: got %d, want %d", name, m.W[0], i)
					return
				}
			}
		}()
		for i := uint64(0); i < 1000; i++ {
			q.Send(Word(i))
		}
		<-done
	}
}

func TestBackPressure(t *testing.T) {
	for name, mk := range backends(4) {
		q := mk()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				q.Send(Word(uint64(i))) // must block, not drop, beyond cap
			}
		}()
		got := 0
		for i := 0; i < 100; i++ {
			q.Recv()
			got++
		}
		wg.Wait()
		if got != 100 {
			t.Fatalf("%s: received %d of 100", name, got)
		}
	}
}

func TestMultiProducerNoLossNoDup(t *testing.T) {
	const producers, per = 8, 2000
	for name, mk := range backends(39) {
		q := mk()
		var wg sync.WaitGroup
		for p := 0; p < producers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					q.Send(Words3(uint64(p), uint64(i), uint64(p*per+i)))
				}
			}(p)
		}
		seen := make(map[uint64]bool)
		lastPerProducer := make([]int64, producers)
		for i := range lastPerProducer {
			lastPerProducer[i] = -1
		}
		for n := 0; n < producers*per; n++ {
			m := q.Recv()
			if m.N != 3 {
				t.Fatalf("%s: message arrived with %d words", name, m.N)
			}
			key := m.W[2]
			if seen[key] {
				t.Fatalf("%s: duplicate message %d", name, key)
			}
			seen[key] = true
			p, i := m.W[0], int64(m.W[1])
			if i <= lastPerProducer[p] {
				t.Fatalf("%s: per-sender order violated: producer %d sent %d after %d",
					name, p, i, lastPerProducer[p])
			}
			lastPerProducer[p] = i
		}
		wg.Wait()
		if !q.Empty() {
			t.Fatalf("%s: queue not empty after draining", name)
		}
	}
}

func TestTryRecvAndEmpty(t *testing.T) {
	for name, mk := range backends(4) {
		q := mk()
		if _, ok := q.TryRecv(); ok {
			t.Fatalf("%s: TryRecv on empty succeeded", name)
		}
		if !q.Empty() {
			t.Fatalf("%s: fresh queue not empty", name)
		}
		q.Send(Word(7))
		if q.Empty() {
			t.Fatalf("%s: queue empty after send", name)
		}
		m, ok := q.TryRecv()
		if !ok || m.W[0] != 7 {
			t.Fatalf("%s: TryRecv = %v,%v", name, m, ok)
		}
	}
}

func TestRingCapacityRounding(t *testing.T) {
	f := func(c uint8) bool {
		cap := int(c%60) + 1
		r := NewRing(cap)
		n := len(r.cells)
		// Power of two, at least requested capacity, at least 2.
		return n >= 2 && n&(n-1) == 0 && n >= cap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRingWrapAround(t *testing.T) {
	// Exercise index wrap-around arithmetic across many laps of a tiny
	// ring.
	q := NewRing(2)
	for lap := uint64(0); lap < 10000; lap++ {
		q.Send(Word(lap))
		if m := q.Recv(); m.W[0] != lap {
			t.Fatalf("lap %d: got %d", lap, m.W[0])
		}
	}
}

func TestMsgConstructors(t *testing.T) {
	if m := Word(5); m.N != 1 || m.W[0] != 5 {
		t.Fatalf("Word: %+v", m)
	}
	if m := Words3(1, 2, 3); m.N != 3 || m.W != [3]uint64{1, 2, 3} {
		t.Fatalf("Words3: %+v", m)
	}
}

func BenchmarkMPQBackends(b *testing.B) {
	for name, mk := range backends(39) {
		b.Run(name, func(b *testing.B) {
			q := mk()
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; i < b.N; i++ {
					q.Recv()
				}
			}()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					q.Send(Words3(1, 2, 3))
				}
			})
			// Drain whatever RunParallel produced beyond b.N... RunParallel
			// produces exactly b.N sends, matching the b.N receives above.
			<-done
		})
	}
}
