package mpq

import (
	"sync/atomic"

	"hybsync/internal/backoff"
	"hybsync/internal/pad"
)

// Spsc is the single-producer/single-consumer fast path: a bounded ring
// with no atomic read-modify-write operations at all. The producer owns
// enq, the consumer owns deq; each side publishes with one atomic store
// and usually reads only its own cached snapshot of the peer position,
// so an uncontended Send or Recv touches a single shared cache line.
//
// This is the MP-SERVER response path (server → one blocked client) and
// mirrors the hardware UDN most closely: a dedicated point-to-point
// channel. Exactly one goroutine may call Send and exactly one may call
// Recv/TryRecv/RecvBatch/TryRecvBatch over the queue's lifetime;
// concurrent producers (or consumers) are a data race by contract.
// Empty is safe from anywhere but advisory.
//
//hyblint:padsep
type Spsc struct {
	_ pad.Line
	// enq is written only by the producer; deqCache is the producer's
	// private snapshot of deq (refreshed only when the ring looks full).
	enq      atomic.Uint64
	deqCache uint64
	_        pad.Line
	// deq is written only by the consumer; enqCache is the consumer's
	// private snapshot of enq (refreshed only when the ring looks empty).
	deq      atomic.Uint64
	enqCache uint64
	_        pad.Line
	mask     uint64
	cells    []Msg
}

// NewSpsc creates a single-producer/single-consumer queue with capacity
// cap messages (rounded up to a power of two, minimum 2).
func NewSpsc(cap int) *Spsc {
	n := ringSize(cap)
	return &Spsc{mask: uint64(n - 1), cells: make([]Msg, n)}
}

// Send implements Queue. Producer-side only.
func (q *Spsc) Send(m Msg) {
	pos := q.enq.Load() // own field: cheap, never contended
	if pos-q.deqCache >= uint64(len(q.cells)) {
		var b backoff.Backoff
		for {
			q.deqCache = q.deq.Load()
			if pos-q.deqCache < uint64(len(q.cells)) {
				break
			}
			b.Wait() // full: back-pressure
		}
	}
	q.cells[pos&q.mask] = m
	q.enq.Store(pos + 1) // publish: release-orders the cell write above
}

// Recv implements Queue. Consumer-side only.
func (q *Spsc) Recv() Msg {
	var b backoff.Backoff
	for {
		if m, ok := q.TryRecv(); ok {
			return m
		}
		b.Wait()
	}
}

// TryRecv implements Queue. Consumer-side only.
func (q *Spsc) TryRecv() (Msg, bool) {
	pos := q.deq.Load() // own field
	if pos == q.enqCache {
		q.enqCache = q.enq.Load()
		if pos == q.enqCache {
			return Msg{}, false // empty
		}
	}
	m := q.cells[pos&q.mask]
	q.deq.Store(pos + 1) // free the cell: release-orders the read above
	return m, true
}

// RecvBatch implements Queue. Consumer-side only.
func (q *Spsc) RecvBatch(buf []Msg) int { return recvBatchBlocking(q, buf) }

// TryRecvBatch implements Queue. Consumer-side only: it copies every
// already-published message (up to len(buf)) with a single position
// update, so the producer-visible synchronization cost is one store per
// batch instead of one per message.
func (q *Spsc) TryRecvBatch(buf []Msg) int {
	pos := q.deq.Load()
	avail := q.enqCache - pos
	if avail == 0 {
		q.enqCache = q.enq.Load()
		avail = q.enqCache - pos
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(buf))
	if avail < n {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		buf[i] = q.cells[(pos+i)&q.mask]
	}
	q.deq.Store(pos + n)
	return int(n)
}

// Empty implements Queue. Advisory; safe from any goroutine.
func (q *Spsc) Empty() bool { return q.deq.Load() == q.enq.Load() }
