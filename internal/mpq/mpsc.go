package mpq

import (
	"sync/atomic"

	"hybsync/internal/backoff"
	"hybsync/internal/pad"
)

// Mpsc is the many-producers/single-consumer fast path: the MP-SERVER
// request queue and the HybComb inboxes, where any thread may send but
// only the owning thread receives. Producers claim a slot with a single
// fetch-and-add on the enqueue position — one atomic RMW per send, no
// retry loop — and then publish by stamping the cell's sequence number.
// The single consumer advances the dequeue position with plain atomic
// stores; it never performs an RMW.
//
// Compared to the general Ring this removes the producer CAS retry loop
// (under contention the Ring's producers repeatedly re-read enq and
// fail their CAS; here every producer succeeds exactly once) and the
// consumer-side CAS entirely.
//
// Back-pressure: a producer whose fetch-and-add lands on a cell the
// consumer has not yet freed waits for that cell, so Send blocks while
// the queue is full and no message is ever dropped. Slot claims are
// per-sender monotonic, so messages from one sender stay in order.
//
// Exactly one goroutine may call Recv/TryRecv/RecvBatch/TryRecvBatch
// over the queue's lifetime; concurrent consumers are a data race by
// contract. Send is safe from any number of goroutines. Empty is safe
// from anywhere but advisory.
//
//hyblint:padsep
type Mpsc struct {
	_    pad.Line
	enq  atomic.Uint64
	_    pad.Line
	deq  atomic.Uint64
	_    pad.Line
	mask uint64
	// cells[i].seq encodes the state for position pos = lap*len+i, as
	// in Ring: pos = free or claimed-but-unwritten, pos+1 = published,
	// pos+len = consumed.
	cells []ringCell
}

// NewMpsc creates a many-producers/single-consumer queue with capacity
// cap messages (rounded up to a power of two, minimum 2).
func NewMpsc(cap int) *Mpsc {
	n := ringSize(cap)
	q := &Mpsc{mask: uint64(n - 1), cells: make([]ringCell, n)}
	for i := range q.cells {
		q.cells[i].seq.Store(uint64(i))
	}
	return q
}

// Send implements Queue: one fetch-and-add claims the slot, one store
// publishes it.
func (q *Mpsc) Send(m Msg) {
	pos := q.enq.Add(1) - 1
	cell := &q.cells[pos&q.mask]
	if cell.seq.Load() != pos {
		// Full for our lap: wait until the consumer frees the cell
		// (back-pressure). Claims are honored in position order, so this
		// cannot deadlock: the consumer drains every position before ours.
		var b backoff.Backoff
		for cell.seq.Load() != pos {
			b.Wait()
		}
	}
	cell.msg = m
	cell.seq.Store(pos + 1)
}

// Recv implements Queue. Consumer-side only.
func (q *Mpsc) Recv() Msg {
	var b backoff.Backoff
	for {
		if m, ok := q.TryRecv(); ok {
			return m
		}
		b.Wait()
	}
}

// TryRecv implements Queue. Consumer-side only. It returns false both
// when the queue is empty and when the head cell is claimed by a
// producer that has not yet written the message (seq == pos): an
// unpublished message is not receivable.
func (q *Mpsc) TryRecv() (Msg, bool) {
	pos := q.deq.Load()
	cell := &q.cells[pos&q.mask]
	if cell.seq.Load() != pos+1 {
		return Msg{}, false // empty, or head cell claimed but unwritten
	}
	m := cell.msg
	cell.seq.Store(pos + q.mask + 1) // free for the next lap
	q.deq.Store(pos + 1)
	return m, true
}

// RecvBatch implements Queue. Consumer-side only.
func (q *Mpsc) RecvBatch(buf []Msg) int { return recvBatchBlocking(q, buf) }

// TryRecvBatch implements Queue. Consumer-side only: it walks the run
// of already-published cells and advances deq once at the end, so the
// consumer pays one position store per batch.
func (q *Mpsc) TryRecvBatch(buf []Msg) int {
	pos := q.deq.Load()
	n := 0
	for n < len(buf) {
		cell := &q.cells[pos&q.mask]
		if cell.seq.Load() != pos+1 {
			break
		}
		buf[n] = cell.msg
		cell.seq.Store(pos + q.mask + 1)
		n++
		pos++
	}
	if n > 0 {
		q.deq.Store(pos)
	}
	return n
}

// Empty implements Queue. Advisory; seq != pos+1 covers both genuinely
// empty and "head cell claimed but not yet written".
func (q *Mpsc) Empty() bool {
	pos := q.deq.Load()
	return q.cells[pos&q.mask].seq.Load() != pos+1
}
