package mpq

import (
	"time"

	"hybsync/internal/backoff"
)

// Ticketed adapts the consumer side of a Queue into a ticketed
// completion stream, the receive half of an asynchronous submission
// pipeline: the submitter reserves stream positions with Issue (one per
// request whose response will arrive on q, in submission order) and
// later collects each response with WaitFor. Because the underlying
// queue is FIFO, position n is simply the n'th message ever received;
// WaitFor buffers messages it pulls while looking for an earlier
// position, so positions may be awaited out of order.
//
// Ticketed is bookkeeping for the queue's single consumer and inherits
// its concurrency contract: every method except Issue touches consumer
// state, and exactly one goroutine may drive the adapter at a time.
type Ticketed struct {
	q      Queue
	issued uint64 // stream positions reserved by Issue
	recvd  uint64 // messages pulled off q so far
	// ahead holds messages pulled past a position the consumer has not
	// asked for yet; skip marks positions whose message is discarded on
	// arrival (fire-and-forget requests). Both are nil until first used.
	ahead map[uint64]Msg
	skip  map[uint64]bool

	// wb is the watched waiter behind every blocking receive,
	// configured by Arm (zero stall leaves the watchdog disabled). It
	// lives on the adapter — constructed once, Reset per wait loop — so
	// the per-operation receive path never zeroes the watchdog state.
	wb backoff.Watched
}

// NewTicketed wraps the consumer side of q.
func NewTicketed(q Queue) *Ticketed { return &Ticketed{q: q} }

// Arm configures the stall watchdog on the adapter's blocking receives
// (WaitFor, Absorb, Flush): a receive that makes no progress for stall
// reports once through internal/backoff's stall handler, labelled with
// label. Call it before the first receive; stall 0 disables.
func (t *Ticketed) Arm(stall time.Duration, label string) {
	t.wb = backoff.Armed(stall, label)
}

// OnStall attaches f as the armed watchdog's firing observer (see
// backoff.Watched.SetOnStall); telemetry counts stall reports this
// way. Call it after Arm — Arm replaces the watcher wholesale.
func (t *Ticketed) OnStall(f func()) { t.wb.SetOnStall(f) }

// Issue reserves the next stream position, to be called once per
// submitted request immediately around its send. The n'th Issue returns
// n-1: positions count from zero in submission order.
func (t *Ticketed) Issue() uint64 {
	n := t.issued
	t.issued++
	return n
}

// Discard marks a reserved, not-yet-received position as
// fire-and-forget: its message is dropped when it arrives instead of
// being buffered for a WaitFor that will never come. Call it before any
// receive that could pull the position in.
func (t *Ticketed) Discard(pos uint64) {
	if t.skip == nil {
		t.skip = make(map[uint64]bool)
	}
	t.skip[pos] = true
}

// InFlight returns how many reserved positions have not yet been pulled
// off the queue — the number of responses that are pending or sitting
// unreceived in the queue. Submitters bound it by the queue's capacity
// (calling Absorb when full) so a responder can never block on a full
// response queue.
func (t *Ticketed) InFlight() int { return int(t.issued - t.recvd) }

// pull blocks for the next message and returns it with its position,
// dropping it instead when the position was discarded (ok=false).
// With the stall watchdog armed the blocking loop is driven here
// rather than by q.Recv, so the watchdog can observe a response that
// never comes; disarmed, the queue's own (cheaper) blocking receive
// does the waiting.
func (t *Ticketed) pull() (pos uint64, m Msg, ok bool) {
	m, got := t.q.TryRecv()
	if !got {
		if !t.wb.Active() {
			m = t.q.Recv()
		} else {
			t.wb.Reset()
			for {
				t.wb.Wait()
				if m, got = t.q.TryRecv(); got {
					break
				}
			}
		}
	}
	return t.book(m)
}

// tryPull is pull without the blocking: pulled is false when nothing
// is currently receivable.
func (t *Ticketed) tryPull() (pos uint64, m Msg, ok, pulled bool) {
	m, got := t.q.TryRecv()
	if !got {
		return 0, Msg{}, false, false
	}
	pos, m, ok = t.book(m)
	return pos, m, ok, true
}

// book assigns the next stream position to a pulled message, dropping
// discarded positions (ok=false).
func (t *Ticketed) book(m Msg) (pos uint64, _ Msg, ok bool) {
	pos = t.recvd
	t.recvd++
	if t.skip[pos] {
		delete(t.skip, pos)
		return pos, Msg{}, false
	}
	return pos, m, true
}

// WaitFor returns the message at stream position pos, blocking until it
// arrives. Messages pulled while skipping ahead to pos are buffered for
// their own WaitFor. Each position may be awaited at most once; asking
// again for a delivered position panics, since the message is gone.
func (t *Ticketed) WaitFor(pos uint64) Msg {
	if len(t.ahead) > 0 {
		if m, ok := t.ahead[pos]; ok {
			delete(t.ahead, pos)
			return m
		}
	}
	if pos < t.recvd {
		panic("mpq: WaitFor on an already-delivered stream position")
	}
	for {
		p, m, ok := t.pull()
		if !ok {
			continue
		}
		if p == pos {
			return m
		}
		if t.ahead == nil {
			t.ahead = make(map[uint64]Msg)
		}
		t.ahead[p] = m
	}
}

// TryWaitFor is WaitFor without the blocking: it returns pos's message
// if it is already buffered or can be pulled without waiting, and
// (Msg{}, false) otherwise — the position stays awaitable. Messages
// pulled while draining toward pos are buffered exactly as in WaitFor.
// Asking for an already-delivered position panics, like WaitFor.
func (t *Ticketed) TryWaitFor(pos uint64) (Msg, bool) {
	if len(t.ahead) > 0 {
		if m, ok := t.ahead[pos]; ok {
			delete(t.ahead, pos)
			return m, true
		}
	}
	if pos < t.recvd {
		panic("mpq: WaitFor on an already-delivered stream position")
	}
	for {
		p, m, ok, pulled := t.tryPull()
		if !pulled {
			return Msg{}, false
		}
		if !ok {
			continue
		}
		if p == pos {
			return m, true
		}
		if t.ahead == nil {
			t.ahead = make(map[uint64]Msg)
		}
		t.ahead[p] = m
	}
}

// WaitForTimeout is WaitFor bounded by d: ok is false when the
// position's message did not arrive in time — the position stays
// awaitable (retry, or fall back to WaitFor).
func (t *Ticketed) WaitForTimeout(pos uint64, d time.Duration) (Msg, bool) {
	if m, ok := t.TryWaitFor(pos); ok {
		return m, true
	}
	deadline := time.Now().Add(d)
	t.wb.Reset()
	for {
		t.wb.Wait()
		if m, ok := t.TryWaitFor(pos); ok {
			return m, true
		}
		if !time.Now().Before(deadline) {
			return Msg{}, false
		}
	}
}

// Absorb blocks for one message and moves it into the buffer (or drops
// it, if discarded), freeing one slot of queue capacity without
// deciding yet which position the consumer wants next.
func (t *Ticketed) Absorb() {
	p, m, ok := t.pull()
	if !ok {
		return
	}
	if t.ahead == nil {
		t.ahead = make(map[uint64]Msg)
	}
	t.ahead[p] = m
}

// Flush absorbs every outstanding message: after it returns nothing is
// in flight, discarded positions are dropped, and every other
// undelivered position is buffered for its WaitFor.
func (t *Ticketed) Flush() {
	for t.recvd < t.issued {
		t.Absorb()
	}
}
