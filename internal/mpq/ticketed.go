package mpq

// Ticketed adapts the consumer side of a Queue into a ticketed
// completion stream, the receive half of an asynchronous submission
// pipeline: the submitter reserves stream positions with Issue (one per
// request whose response will arrive on q, in submission order) and
// later collects each response with WaitFor. Because the underlying
// queue is FIFO, position n is simply the n'th message ever received;
// WaitFor buffers messages it pulls while looking for an earlier
// position, so positions may be awaited out of order.
//
// Ticketed is bookkeeping for the queue's single consumer and inherits
// its concurrency contract: every method except Issue touches consumer
// state, and exactly one goroutine may drive the adapter at a time.
type Ticketed struct {
	q      Queue
	issued uint64 // stream positions reserved by Issue
	recvd  uint64 // messages pulled off q so far
	// ahead holds messages pulled past a position the consumer has not
	// asked for yet; skip marks positions whose message is discarded on
	// arrival (fire-and-forget requests). Both are nil until first used.
	ahead map[uint64]Msg
	skip  map[uint64]bool
}

// NewTicketed wraps the consumer side of q.
func NewTicketed(q Queue) *Ticketed { return &Ticketed{q: q} }

// Issue reserves the next stream position, to be called once per
// submitted request immediately around its send. The n'th Issue returns
// n-1: positions count from zero in submission order.
func (t *Ticketed) Issue() uint64 {
	n := t.issued
	t.issued++
	return n
}

// Discard marks a reserved, not-yet-received position as
// fire-and-forget: its message is dropped when it arrives instead of
// being buffered for a WaitFor that will never come. Call it before any
// receive that could pull the position in.
func (t *Ticketed) Discard(pos uint64) {
	if t.skip == nil {
		t.skip = make(map[uint64]bool)
	}
	t.skip[pos] = true
}

// InFlight returns how many reserved positions have not yet been pulled
// off the queue — the number of responses that are pending or sitting
// unreceived in the queue. Submitters bound it by the queue's capacity
// (calling Absorb when full) so a responder can never block on a full
// response queue.
func (t *Ticketed) InFlight() int { return int(t.issued - t.recvd) }

// pull blocks for the next message and returns it with its position,
// dropping it instead when the position was discarded (ok=false).
func (t *Ticketed) pull() (pos uint64, m Msg, ok bool) {
	m = t.q.Recv()
	pos = t.recvd
	t.recvd++
	if t.skip[pos] {
		delete(t.skip, pos)
		return pos, Msg{}, false
	}
	return pos, m, true
}

// WaitFor returns the message at stream position pos, blocking until it
// arrives. Messages pulled while skipping ahead to pos are buffered for
// their own WaitFor. Each position may be awaited at most once; asking
// again for a delivered position panics, since the message is gone.
func (t *Ticketed) WaitFor(pos uint64) Msg {
	if len(t.ahead) > 0 {
		if m, ok := t.ahead[pos]; ok {
			delete(t.ahead, pos)
			return m
		}
	}
	if pos < t.recvd {
		panic("mpq: WaitFor on an already-delivered stream position")
	}
	for {
		p, m, ok := t.pull()
		if !ok {
			continue
		}
		if p == pos {
			return m
		}
		if t.ahead == nil {
			t.ahead = make(map[uint64]Msg)
		}
		t.ahead[p] = m
	}
}

// Absorb blocks for one message and moves it into the buffer (or drops
// it, if discarded), freeing one slot of queue capacity without
// deciding yet which position the consumer wants next.
func (t *Ticketed) Absorb() {
	p, m, ok := t.pull()
	if !ok {
		return
	}
	if t.ahead == nil {
		t.ahead = make(map[uint64]Msg)
	}
	t.ahead[p] = m
}

// Flush absorbs every outstanding message: after it returns nothing is
// in flight, discarded positions are dropped, and every other
// undelivered position is buffered for its WaitFor.
func (t *Ticketed) Flush() {
	for t.recvd < t.issued {
		t.Absorb()
	}
}
