package mpq

import "testing"

// TestTicketedInOrder: positions are the receive order; awaiting them
// in submission order delivers the messages one-to-one.
func TestTicketedInOrder(t *testing.T) {
	q := NewSpsc(8)
	tk := NewTicketed(q)
	var pos []uint64
	for i := uint64(0); i < 5; i++ {
		pos = append(pos, tk.Issue())
		q.Send(Word(100 + i))
	}
	if got := tk.InFlight(); got != 5 {
		t.Fatalf("InFlight = %d, want 5", got)
	}
	for i, p := range pos {
		if got := tk.WaitFor(p).W[0]; got != 100+uint64(i) {
			t.Fatalf("WaitFor(%d) = %d, want %d", p, got, 100+i)
		}
	}
	if got := tk.InFlight(); got != 0 {
		t.Fatalf("InFlight after drain = %d, want 0", got)
	}
}

// TestTicketedOutOfOrder: awaiting a later position buffers the earlier
// ones, which stay redeemable in any order.
func TestTicketedOutOfOrder(t *testing.T) {
	q := NewSpsc(8)
	tk := NewTicketed(q)
	p0, p1, p2 := tk.Issue(), tk.Issue(), tk.Issue()
	q.Send(Word(10))
	q.Send(Word(11))
	q.Send(Word(12))
	if got := tk.WaitFor(p2).W[0]; got != 12 {
		t.Fatalf("WaitFor(p2) = %d, want 12", got)
	}
	if got := tk.WaitFor(p0).W[0]; got != 10 {
		t.Fatalf("WaitFor(p0) = %d, want 10", got)
	}
	if got := tk.WaitFor(p1).W[0]; got != 11 {
		t.Fatalf("WaitFor(p1) = %d, want 11", got)
	}
}

// TestTicketedDiscardAndFlush: discarded positions are dropped on
// arrival; Flush absorbs everything else for later WaitFor.
func TestTicketedDiscardAndFlush(t *testing.T) {
	q := NewSpsc(8)
	tk := NewTicketed(q)
	p0 := tk.Issue()
	tk.Discard(tk.Issue())
	p2 := tk.Issue()
	for i := uint64(0); i < 3; i++ {
		q.Send(Word(20 + i))
	}
	tk.Flush()
	if got := tk.InFlight(); got != 0 {
		t.Fatalf("InFlight after Flush = %d, want 0", got)
	}
	if got := tk.WaitFor(p2).W[0]; got != 22 {
		t.Fatalf("WaitFor(p2) = %d, want 22", got)
	}
	if got := tk.WaitFor(p0).W[0]; got != 20 {
		t.Fatalf("WaitFor(p0) = %d, want 20", got)
	}
}

// TestTicketedAbsorb: Absorb frees queue capacity without choosing a
// position; the absorbed message is still delivered by its WaitFor.
func TestTicketedAbsorb(t *testing.T) {
	q := NewSpsc(2)
	tk := NewTicketed(q)
	p0 := tk.Issue()
	q.Send(Word(7))
	tk.Absorb()
	if got := tk.InFlight(); got != 0 {
		t.Fatalf("InFlight after Absorb = %d, want 0", got)
	}
	if got := tk.WaitFor(p0).W[0]; got != 7 {
		t.Fatalf("WaitFor(p0) = %d, want 7", got)
	}
}

// TestTicketedDoubleWaitPanics: a delivered position is gone; asking
// again is a programming error.
func TestTicketedDoubleWaitPanics(t *testing.T) {
	q := NewSpsc(2)
	tk := NewTicketed(q)
	p0 := tk.Issue()
	q.Send(Word(1))
	tk.WaitFor(p0)
	defer func() {
		if recover() == nil {
			t.Fatal("second WaitFor did not panic")
		}
	}()
	tk.WaitFor(p0)
}
