// Package backoff provides the single adaptive wait loop shared by
// every spinning site in the repository (message-queue send/receive,
// the HybComb combiner hand-off, the SHM-server slots, the spin locks).
//
// The paper's algorithms busy-wait because on the TILE-Gx a waiting
// core is a dedicated core; under the Go runtime a spinning goroutine
// instead starves whoever it is waiting for, and — on small hosts —
// burns a core that the server/combiner needs. Backoff therefore
// escalates in three phases: a short pure-spin window (the condition
// usually fires within a handful of re-checks when the peer is
// running), a yield window (runtime.Gosched hands the P to the peer,
// the common case at GOMAXPROCS=1), and finally short sleeps with
// exponential growth so long-idle waiters stop consuming CPU entirely.
package backoff

import (
	"runtime"
	"time"
)

const (
	// spinLimit is how many Wait calls pure-spin before yielding.
	spinLimit = 32
	// yieldLimit is how many Wait calls (total) yield before sleeping.
	yieldLimit = 1024
	// minSleep/maxSleep bound the sleep phase; sleeps double between
	// these bounds so a long-idle waiter converges to maxSleep wakeups.
	minSleep = time.Microsecond
	maxSleep = 100 * time.Microsecond
)

// Backoff is the adaptive waiter. The zero value is ready to use; it is
// not safe for concurrent use (each waiting goroutine owns its own).
type Backoff struct {
	n          int
	sleep      time.Duration
	yieldFirst bool
}

// Wait performs one escalation step: spin, then yield, then sleep.
// Call it each time the awaited condition is observed false.
func (b *Backoff) Wait() {
	b.n++
	switch {
	case b.n <= spinLimit:
		// Pure re-check: the peer is likely mid-update on another core.
	case b.n <= yieldLimit:
		runtime.Gosched()
	default:
		if b.sleep == 0 {
			b.sleep = minSleep
		} else if b.sleep < maxSleep {
			b.sleep *= 2
			if b.sleep > maxSleep {
				b.sleep = maxSleep
			}
		}
		time.Sleep(b.sleep)
	}
}

// Reset re-arms the escalation after the condition fired; call it when
// progress is made so the next wait starts in the cheap spin phase.
func (b *Backoff) Reset() {
	b.n = 0
	if b.yieldFirst {
		b.n = spinLimit
	}
	b.sleep = 0
}

// Yielding returns a Backoff that skips the pure-spin phase and starts
// at the yield phase. Use it when each re-check of the condition is
// itself expensive — e.g. the SHM-server's full slot sweep — so that
// burning re-checks is never cheaper than handing over the processor.
// Reset re-arms it to yield-first as well.
func Yielding() Backoff { return Backoff{yieldFirst: true, n: spinLimit} }
