// Package backoff provides the single adaptive wait loop shared by
// every spinning site in the repository (message-queue send/receive,
// the HybComb combiner hand-off, the SHM-server slots, the spin locks).
//
// The paper's algorithms busy-wait because on the TILE-Gx a waiting
// core is a dedicated core; under the Go runtime a spinning goroutine
// instead starves whoever it is waiting for, and — on small hosts —
// burns a core that the server/combiner needs. Backoff therefore
// escalates in three phases: a short pure-spin window (the condition
// usually fires within a handful of re-checks when the peer is
// running), a yield window (runtime.Gosched hands the P to the peer,
// the common case at GOMAXPROCS=1), and finally short sleeps with
// exponential growth so long-idle waiters stop consuming CPU entirely.
//
// Two fault-containment hooks ride on the waiter, both free on the
// fast path:
//
//   - A stall watchdog: an Armed backoff that reaches the sleep phase
//     and keeps waiting past its stall budget reports once — by
//     default a goroutine dump to stderr — so a lost wakeup or a
//     dormant combiner duty surfaces as a loud diagnostic instead of
//     an infinite quiet spin. Disarmed (stall 0) backoffs never check
//     a clock; armed ones only do so in the sleep phase, where a
//     time.Now is noise against a microsecond sleep.
//   - A schedule perturber: tests install a function that every Wait
//     reaching the yield or sleep phase invokes, letting a chaos
//     harness inject Gosched/sleep exactly at the points where the
//     algorithms are blocked on each other — the places scheduling
//     order matters. The pure-spin window never consults the hook: it
//     is the hot path, and a perturbation that neither yields nor
//     sleeps cannot change the schedule. When no perturber is
//     installed the cost is one atomic pointer load per escalated
//     Wait.
package backoff

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"
)

const (
	// spinLimit is how many Wait calls pure-spin before yielding.
	spinLimit = 32
	// yieldLimit is how many Wait calls (total) yield before sleeping.
	yieldLimit = 1024
	// minSleep/maxSleep bound the sleep phase; sleeps double between
	// these bounds so a long-idle waiter converges to maxSleep wakeups.
	minSleep = time.Microsecond
	maxSleep = 100 * time.Microsecond
)

// Backoff is the adaptive waiter. The zero value is ready to use; it is
// not safe for concurrent use (each waiting goroutine owns its own).
// The struct is deliberately three words: hot paths construct one per
// wait loop, so growing it taxes every spinning site in the repository
// (watchdog state lives in the separate Watched wrapper).
type Backoff struct {
	n          int
	sleep      time.Duration
	yieldFirst bool
}

// Wait performs one escalation step: spin, then yield, then sleep.
// Call it each time the awaited condition is observed false.
func (b *Backoff) Wait() {
	b.n++
	switch {
	case b.n <= spinLimit:
		// Pure re-check: the peer is likely mid-update on another core.
		// The perturb hook is deliberately not consulted here — the
		// spin window is the hot path, and a perturbation that neither
		// yields nor sleeps cannot change the schedule anyway.
	case b.n <= yieldLimit:
		if p := perturb.Load(); p != nil {
			(*p)()
		}
		runtime.Gosched()
	default:
		if p := perturb.Load(); p != nil {
			(*p)()
		}
		if b.sleep == 0 {
			b.sleep = minSleep
		} else if b.sleep < maxSleep {
			b.sleep *= 2
			if b.sleep > maxSleep {
				b.sleep = maxSleep
			}
		}
		time.Sleep(b.sleep)
	}
}

// sleeping reports whether the escalation has reached the sleep phase
// (where a clock read is noise against a microsecond sleep).
func (b *Backoff) sleeping() bool { return b.n > yieldLimit }

// Reset re-arms the escalation after the condition fired; call it when
// progress is made so the next wait starts in the cheap spin phase.
func (b *Backoff) Reset() {
	b.n = 0
	if b.yieldFirst {
		b.n = spinLimit
	}
	b.sleep = 0
}

// Watched is a Backoff with the stall watchdog attached. It is larger
// than the bare Backoff, so long-lived waiters (handles, ticketed
// streams) should embed one and Reset it per wait loop rather than
// constructing one per operation.
type Watched struct {
	Backoff
	stall    time.Duration
	label    string
	start    time.Time // first sleep-phase entry since the last Reset
	reported bool
	onStall  func()
}

// Armed returns a Watched backoff that reports a stall — once, through
// the stall handler — when it has been waiting in the sleep phase for
// longer than stall without the condition firing. label names the wait
// in the diagnostic ("ccsynch: waiting for cell service"). A stall of
// 0 disarms the watchdog and the returned waiter behaves exactly like
// a zero Backoff.
func Armed(stall time.Duration, label string) Watched {
	return Watched{stall: stall, label: label}
}

// SetOnStall attaches f as a per-waiter stall observer: it runs right
// before each stall report (telemetry counts watchdog firings this
// way), on the waiting goroutine. nil detaches. Set it on the stored
// Watched value — Armed returns by value, so a hook set on a copy is
// lost.
func (w *Watched) SetOnStall(f func()) { w.onStall = f }

// Active reports whether the watchdog is armed. Wait loops that have a
// cheaper disarmed equivalent (e.g. a queue's own blocking receive)
// can branch on it and only pay the observed TryRecv/Wait loop when a
// stall would actually be reported.
func (w *Watched) Active() bool { return w.stall > 0 }

// Wait escalates like Backoff.Wait; once armed and in the sleep phase
// it additionally tracks elapsed stall time. Disarmed (stall 0), the
// extra cost is one predictable branch per call.
func (w *Watched) Wait() {
	w.Backoff.Wait()
	if w.stall > 0 && !w.reported && w.sleeping() {
		if w.start.IsZero() {
			w.start = time.Now()
		} else if waited := time.Since(w.start); waited >= w.stall {
			w.reported = true
			if w.onStall != nil {
				w.onStall()
			}
			reportStall(w.label, waited)
		}
	}
}

// Reset re-arms the escalation and the stall watchdog: progress resets
// the stall clock. The watchdog state is only written back when a
// prior wait actually reached the sleep phase, keeping Reset cheap on
// the per-operation paths that call it before every wait loop.
func (w *Watched) Reset() {
	w.Backoff.Reset()
	if !w.start.IsZero() {
		w.start = time.Time{}
		w.reported = false
	}
}

// Yielding returns a Backoff that skips the pure-spin phase and starts
// at the yield phase. Use it when each re-check of the condition is
// itself expensive — e.g. the SHM-server's full slot sweep — so that
// burning re-checks is never cheaper than handing over the processor.
// Reset re-arms it to yield-first as well.
func Yielding() Backoff { return Backoff{yieldFirst: true, n: spinLimit} }

// StallHandler receives one stall report: the waiting site's label and
// how long it has been sleeping without progress.
type StallHandler func(label string, waited time.Duration)

var (
	stallHandler atomic.Pointer[StallHandler]
	perturb      atomic.Pointer[func()]
)

// SetStallHandler replaces the process-wide stall handler (nil restores
// the default, which writes a full goroutine dump to stderr). Tests use
// it to observe watchdog firings without parsing stderr.
func SetStallHandler(h StallHandler) {
	if h == nil {
		stallHandler.Store(nil)
		return
	}
	stallHandler.Store(&h)
}

// SetPerturb installs f as the schedule perturber called by every Wait
// that escalates past the pure-spin window (nil uninstalls it). f runs
// on whatever goroutine is waiting and must be safe for concurrent
// use; internal/chaos provides a seeded implementation. Perturbation
// is a whole-process test facility, not an executor option.
func SetPerturb(f func()) {
	if f == nil {
		perturb.Store(nil)
		return
	}
	perturb.Store(&f)
}

// reportStall delivers one stall diagnostic through the installed
// handler, or the default stderr goroutine dump.
func reportStall(label string, waited time.Duration) {
	if h := stallHandler.Load(); h != nil {
		(*h)(label, waited)
		return
	}
	if label == "" {
		label = "unlabelled wait"
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	fmt.Fprintf(os.Stderr,
		"hybsync: stall watchdog: %s: no progress after %v; goroutine dump:\n%s\n",
		label, waited, buf[:n])
}
