package backoff

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitEventuallySleeps(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldLimit; i++ {
		b.Wait()
	}
	if b.sleep != 0 {
		t.Fatalf("sleeping before yieldLimit: sleep=%v", b.sleep)
	}
	b.Wait()
	if b.sleep != minSleep {
		t.Fatalf("first sleep = %v, want %v", b.sleep, minSleep)
	}
	for i := 0; i < 64; i++ {
		b.Wait()
	}
	if b.sleep != maxSleep {
		t.Fatalf("sleep did not cap: %v, want %v", b.sleep, maxSleep)
	}
}

func TestYieldingSkipsSpinPhase(t *testing.T) {
	b := Yielding()
	if b.n != spinLimit {
		t.Fatalf("Yielding starts at n=%d, want %d", b.n, spinLimit)
	}
	b.Wait()
	b.Reset()
	if b.n != spinLimit {
		t.Fatalf("Reset re-armed to n=%d, want %d (yield-first preserved)", b.n, spinLimit)
	}
}

func TestReset(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldLimit+10; i++ {
		b.Wait()
	}
	b.Reset()
	if b.n != 0 || b.sleep != 0 {
		t.Fatalf("Reset left state: %+v", b)
	}
}

// TestWaitUnblocksPeer checks the property the package exists for: a
// goroutine waiting with Backoff lets a runnable peer make progress
// even at GOMAXPROCS=1 (the yield phase hands over the processor).
func TestWaitUnblocksPeer(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(time.Millisecond)
		flag.Store(true)
	}()
	var b Backoff
	deadline := time.Now().Add(5 * time.Second)
	for !flag.Load() {
		if time.Now().After(deadline) {
			t.Fatal("waiter starved the peer")
		}
		b.Wait()
	}
}
