package backoff

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestWaitEventuallySleeps(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldLimit; i++ {
		b.Wait()
	}
	if b.sleep != 0 {
		t.Fatalf("sleeping before yieldLimit: sleep=%v", b.sleep)
	}
	b.Wait()
	if b.sleep != minSleep {
		t.Fatalf("first sleep = %v, want %v", b.sleep, minSleep)
	}
	for i := 0; i < 64; i++ {
		b.Wait()
	}
	if b.sleep != maxSleep {
		t.Fatalf("sleep did not cap: %v, want %v", b.sleep, maxSleep)
	}
}

func TestYieldingSkipsSpinPhase(t *testing.T) {
	b := Yielding()
	if b.n != spinLimit {
		t.Fatalf("Yielding starts at n=%d, want %d", b.n, spinLimit)
	}
	b.Wait()
	b.Reset()
	if b.n != spinLimit {
		t.Fatalf("Reset re-armed to n=%d, want %d (yield-first preserved)", b.n, spinLimit)
	}
}

func TestReset(t *testing.T) {
	var b Backoff
	for i := 0; i < yieldLimit+10; i++ {
		b.Wait()
	}
	b.Reset()
	if b.n != 0 || b.sleep != 0 {
		t.Fatalf("Reset left state: %+v", b)
	}
}

// TestSetOnStall checks the telemetry hook: a watched waiter that
// trips its stall budget runs the per-waiter observer exactly once
// (the report is once-per-stall), right before the process-wide
// handler.
func TestSetOnStall(t *testing.T) {
	var reports atomic.Uint64
	SetStallHandler(func(string, time.Duration) { reports.Add(1) })
	defer SetStallHandler(nil)

	w := Armed(time.Millisecond, "backoff-test")
	var hookFired atomic.Uint64
	w.SetOnStall(func() { hookFired.Add(1) })

	deadline := time.Now().Add(5 * time.Second)
	for reports.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired")
		}
		w.Wait()
	}
	// Keep waiting: neither the hook nor the handler may fire again
	// before a Reset.
	for i := 0; i < 100; i++ {
		w.Wait()
	}
	if got := hookFired.Load(); got != 1 {
		t.Errorf("onStall hook fired %d times, want exactly 1", got)
	}
	if got := reports.Load(); got != 1 {
		t.Errorf("stall handler fired %d times, want exactly 1", got)
	}

	// Progress re-arms: after Reset the next stall fires the hook again.
	w.Reset()
	for hookFired.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watchdog did not re-arm after Reset")
		}
		w.Wait()
	}

	// nil detaches without disturbing the watchdog itself.
	w.Reset()
	w.SetOnStall(nil)
	before := reports.Load()
	for reports.Load() == before {
		if time.Now().After(deadline) {
			t.Fatal("watchdog never fired after detach")
		}
		w.Wait()
	}
	if got := hookFired.Load(); got != 2 {
		t.Errorf("detached hook fired: %d, want 2", got)
	}
}

// TestWaitUnblocksPeer checks the property the package exists for: a
// goroutine waiting with Backoff lets a runnable peer make progress
// even at GOMAXPROCS=1 (the yield phase hands over the processor).
func TestWaitUnblocksPeer(t *testing.T) {
	var flag atomic.Bool
	go func() {
		time.Sleep(time.Millisecond)
		flag.Store(true)
	}()
	var b Backoff
	deadline := time.Now().Add(5 * time.Second)
	for !flag.Load() {
		if time.Now().After(deadline) {
			t.Fatal("waiter starved the peer")
		}
		b.Wait()
	}
}
