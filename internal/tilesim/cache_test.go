package tilesim

import (
	"testing"
	"testing/quick"
)

// runOne runs a single proc body to completion and returns it.
func runOne(t *testing.T, body func(p *Proc)) *Proc {
	t.Helper()
	e := NewEngine(ProfileTileGx())
	p := e.Spawn("t", 0, body)
	e.Run(0)
	if len(e.Deadlocked()) > 0 {
		t.Fatalf("deadlock: %v", e.Deadlocked())
	}
	return p
}

func TestReadAfterWriteHitsCache(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var missCost, hitCost uint64
	e.Spawn("t", 5, func(p *Proc) {
		t0 := p.Now()
		p.Write(a, 42)
		missCost = p.Now() - t0
		t0 = p.Now()
		if v := p.Read(a); v != 42 {
			t.Errorf("read %d, want 42", v)
		}
		hitCost = p.Now() - t0
	})
	e.Run(0)
	if hitCost != e.prof.L1Hit {
		t.Fatalf("cached read cost %d, want L1 hit %d", hitCost, e.prof.L1Hit)
	}
	if missCost <= e.prof.L1Hit {
		t.Fatalf("first write cost %d should exceed L1 hit", missCost)
	}
}

func TestRemoteWriteInvalidatesReader(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var costs []uint64
	e.Spawn("reader", 0, func(p *Proc) {
		p.Read(a) // warm: Shared
		t0 := p.Now()
		p.Read(a)
		costs = append(costs, p.Now()-t0) // hit
		p.Work(200)                       // let the writer invalidate
		t0 = p.Now()
		p.Read(a)
		costs = append(costs, p.Now()-t0) // must be an RMR again
	})
	e.Spawn("writer", 35, func(p *Proc) {
		p.Work(50)
		p.Write(a, 7)
	})
	e.Run(0)
	if costs[0] != e.prof.L1Hit {
		t.Fatalf("warm read cost %d, want %d", costs[0], e.prof.L1Hit)
	}
	if costs[1] <= e.prof.L1Hit {
		t.Fatalf("post-invalidate read cost %d, want an RMR", costs[1])
	}
	if err := e.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestDirtyReadForwardsFromOwner(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	done := e.Alloc(8) * wordsPerLine // distinct line
	_ = done
	var val uint64
	e.Spawn("writer", 3, func(p *Proc) { p.Write(a, 99) })
	e.Spawn("reader", 30, func(p *Proc) {
		p.Work(100)
		val = p.Read(a)
	})
	e.Run(0)
	if val != 99 {
		t.Fatalf("dirty read got %d, want 99", val)
	}
	if err := e.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestCoherenceInvariantRandomOps(t *testing.T) {
	// Property: after any interleaving of reads/writes/atomics from many
	// cores over a small address pool, the single-writer-multiple-reader
	// invariant holds and final values match a sequential oracle replay.
	f := func(seed uint64) bool {
		e := NewEngine(ProfileTileGx())
		base := e.Alloc(16)
		for i := 0; i < 10; i++ {
			e.Spawn("p", i*3, func(p *Proc) {
				for j := 0; j < 40; j++ {
					r := p.Rand() + seed
					a := base + Addr(r%16)
					switch r % 4 {
					case 0:
						p.Read(a)
					case 1:
						p.Write(a, r)
					case 2:
						p.FAA(a, 1)
					case 3:
						p.CAS(a, 0, r)
					}
				}
			})
		}
		e.Run(0)
		return e.CheckCoherence() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFAASemantics(t *testing.T) {
	runOne(t, func(p *Proc) {
		a := p.eng.Alloc(1)
		if old := p.FAA(a, 5); old != 0 {
			t.Errorf("FAA old = %d, want 0", old)
		}
		if old := p.FAA(a, 3); old != 5 {
			t.Errorf("FAA old = %d, want 5", old)
		}
		if v := p.Read(a); v != 8 {
			t.Errorf("final = %d, want 8", v)
		}
	})
}

func TestCASAndSwapSemantics(t *testing.T) {
	p := runOne(t, func(p *Proc) {
		a := p.eng.Alloc(1)
		if !p.CAS(a, 0, 10) {
			t.Error("CAS(0,10) on zero failed")
		}
		if p.CAS(a, 0, 20) {
			t.Error("CAS(0,20) on 10 succeeded")
		}
		if old := p.Swap(a, 30); old != 10 {
			t.Errorf("Swap old = %d, want 10", old)
		}
	})
	if p.CASAttempts != 2 || p.CASFailures != 1 {
		t.Fatalf("CAS counters = %d/%d, want 2/1", p.CASAttempts, p.CASFailures)
	}
}

func TestAtomicSerializationAtController(t *testing.T) {
	// Two atomics to lines on the same controller must serialize: the
	// combined makespan exceeds a single atomic's latency even though the
	// issuing cores differ and the data is independent.
	e := NewEngine(ProfileTileGx())
	a := e.AllocLine(1)
	b := a + 2*wordsPerLine*Addr(e.prof.NumCtrls) // same ctrl, different line
	if e.prof.ctrlFor(lineOf(a)) != e.prof.ctrlFor(lineOf(b)) {
		t.Fatal("test setup: lines on different controllers")
	}
	var lat [2]uint64
	e.Spawn("p0", 0, func(p *Proc) {
		t0 := p.Now()
		p.FAA(a, 1)
		lat[0] = p.Now() - t0
	})
	e.Spawn("p1", 1, func(p *Proc) {
		t0 := p.Now()
		p.FAA(b, 1)
		lat[1] = p.Now() - t0
	})
	e.Run(0)
	single := lat[0]
	if lat[1] < single {
		single = lat[1]
	}
	if lat[0]+lat[1] <= 2*single {
		t.Fatalf("no serialization visible: latencies %v", lat)
	}
}

func TestX86AtomicsNotSerialized(t *testing.T) {
	// On the x86-like profile, an atomic on an independent line is not
	// slowed down by a concurrent atomic elsewhere (no controller
	// serialization): p1's latency is identical with and without p0.
	measure := func(withP0 bool) uint64 {
		e := NewEngine(ProfileX86Like())
		a := e.AllocLine(1)
		b := e.AllocLine(1)
		if withP0 {
			e.Spawn("p0", 0, func(p *Proc) { p.FAA(a, 1) })
		}
		var lat uint64
		e.Spawn("p1", 1, func(p *Proc) {
			t0 := p.Now()
			p.FAA(b, 1)
			lat = p.Now() - t0
		})
		e.Run(0)
		return lat
	}
	if alone, both := measure(false), measure(true); alone != both {
		t.Fatalf("x86 atomic slowed by independent atomic: alone=%d both=%d", alone, both)
	}
}

func TestSpinWhileWakesOnWrite(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var got, when uint64
	e.Spawn("spinner", 0, func(p *Proc) {
		got = p.SpinWhile(a, func(v uint64) bool { return v == 0 })
		when = p.Now()
	})
	e.Spawn("setter", 10, func(p *Proc) {
		p.Work(500)
		p.Write(a, 77)
	})
	e.Run(0)
	if got != 77 {
		t.Fatalf("spinner saw %d, want 77", got)
	}
	if when < 500 {
		t.Fatalf("spinner woke at %d, before the write", when)
	}
	if len(e.Deadlocked()) != 0 {
		t.Fatal("deadlocked procs remain")
	}
}

func TestSpinWhileSatisfiedImmediately(t *testing.T) {
	runOne(t, func(p *Proc) {
		a := p.eng.Alloc(1)
		p.Write(a, 5)
		if v := p.SpinWhile(a, func(v uint64) bool { return v == 0 }); v != 5 {
			t.Errorf("got %d, want 5", v)
		}
	})
}

func TestMeshDistanceProperties(t *testing.T) {
	pr := ProfileTileGx()
	n := pr.NumCores()
	f := func(a, b uint16) bool {
		x, y := int(a)%n, int(b)%n
		d1, d2 := pr.dist(x, y), pr.dist(y, x)
		if d1 != d2 {
			return false // symmetry
		}
		if (d1 == 0) != (x == y) {
			return false // identity
		}
		z := int(a+b) % n
		return pr.dist(x, z)+pr.dist(z, y) >= d1 // triangle inequality
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStallAccounting(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	p := e.Spawn("t", 7, func(p *Proc) {
		p.Read(a) // miss: stall
		p.Read(a) // hit: no stall
		p.Write(a, 1)
	})
	e.Run(0)
	if p.StallCycles == 0 {
		t.Fatal("no stalls recorded for cold miss")
	}
	if p.RMRs < 1 {
		t.Fatal("no RMRs recorded")
	}
}
