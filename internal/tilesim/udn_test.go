package tilesim

import "testing"

func TestSendRecvRoundTrip(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var got []uint64
	rx := e.Spawn("rx", 0, func(p *Proc) {
		got = p.Recv(3)
	})
	e.Spawn("tx", 35, func(p *Proc) {
		p.Work(10)
		p.Send(rx.ID(), 1, 2, 3)
	})
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want [1 2 3]", got)
	}
	if rx.MsgsRecvd != 1 || rx.IdleCycles == 0 {
		t.Fatalf("receiver stats: recvd=%d idle=%d", rx.MsgsRecvd, rx.IdleCycles)
	}
}

func TestSendIsAsynchronous(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	pr := e.prof
	rx := e.Spawn("rx", 0, func(p *Proc) { p.Recv(1) })
	var sendCost uint64
	e.Spawn("tx", 35, func(p *Proc) {
		t0 := p.Now()
		p.Send(rx.ID(), 9)
		sendCost = p.Now() - t0
	})
	e.Run(0)
	if sendCost != pr.SendLat {
		t.Fatalf("send cost %d, want asynchronous issue cost %d", sendCost, pr.SendLat)
	}
}

func TestFIFOOrderSingleSender(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var got []uint64
	rx := e.Spawn("rx", 0, func(p *Proc) {
		for i := 0; i < 6; i++ {
			got = append(got, p.Recv(1)[0])
		}
	})
	e.Spawn("tx", 20, func(p *Proc) {
		for i := uint64(0); i < 6; i++ {
			p.Send(rx.ID(), i)
		}
	})
	e.Run(0)
	for i, v := range got {
		if v != uint64(i) {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestMultiWordMessageContiguous(t *testing.T) {
	// Two senders interleave sends; each 3-word message must arrive
	// contiguously (words of one send are never interleaved).
	e := NewEngine(ProfileTileGx())
	var msgs [][]uint64
	rx := e.Spawn("rx", 0, func(p *Proc) {
		for i := 0; i < 10; i++ {
			msgs = append(msgs, p.Recv(3))
		}
	})
	for s := 0; s < 2; s++ {
		tag := uint64(s+1) * 100
		e.Spawn("tx", 10+s*20, func(p *Proc) {
			for i := uint64(0); i < 5; i++ {
				p.Send(rx.ID(), tag, tag+i, tag+i*2)
				p.Work(p.Rand() % 7)
			}
		})
	}
	e.Run(0)
	for _, m := range msgs {
		if m[0] != 100 && m[0] != 200 {
			t.Fatalf("corrupt message %v", m)
		}
		base := m[0]
		if m[2] != base+(m[1]-base)*2 {
			t.Fatalf("interleaved message %v", m)
		}
	}
}

func TestBackPressureBlocksSender(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	cap := e.prof.QueueCap
	rx := e.Spawn("rx", 0, func(p *Proc) {
		p.Work(5000) // let the queue fill
		for i := 0; i < cap+10; i++ {
			p.Recv(1)
		}
	})
	var blockedTime uint64
	tx := e.Spawn("tx", 35, func(p *Proc) {
		for i := 0; i < cap+10; i++ {
			p.Send(rx.ID(), uint64(i))
		}
		blockedTime = p.IdleCycles
	})
	e.Run(0)
	if dl := e.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlock: %v", dl)
	}
	if blockedTime == 0 {
		t.Fatal("sender never experienced back-pressure")
	}
	if tx.MsgsSent != uint64(cap+10) || rx.MsgsRecvd != uint64(cap+10) {
		t.Fatalf("message counts tx=%d rx=%d", tx.MsgsSent, rx.MsgsRecvd)
	}
}

func TestQueueEmpty(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var before, after bool
	rx := e.Spawn("rx", 0, func(p *Proc) {
		before = p.QueueEmpty()
		p.Work(300)
		after = p.QueueEmpty()
		p.Recv(1)
	})
	e.Spawn("tx", 1, func(p *Proc) {
		p.Work(50)
		p.Send(rx.ID(), 1)
	})
	e.Run(0)
	if !before {
		t.Fatal("queue should start empty")
	}
	if after {
		t.Fatal("queue should be non-empty after delivery")
	}
}

func TestRecvPartialThenComplete(t *testing.T) {
	// Receiver asks for 3 words; sender delivers 1 word first, then 2.
	// The receiver must stay blocked until all 3 are present.
	e := NewEngine(ProfileTileGx())
	var got []uint64
	var when uint64
	rx := e.Spawn("rx", 0, func(p *Proc) {
		got = p.Recv(3)
		when = p.Now()
	})
	e.Spawn("tx", 5, func(p *Proc) {
		p.Send(rx.ID(), 1)
		p.Work(400)
		p.Send(rx.ID(), 2, 3)
	})
	e.Run(0)
	if len(got) != 3 {
		t.Fatalf("got %v", got)
	}
	if when < 400 {
		t.Fatalf("receiver resumed at %d before full message", when)
	}
}

func TestOversizeMessagePanics(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	defer e.Shutdown()
	rx := e.Spawn("rx", 0, func(p *Proc) { p.Recv(1) })
	e.Spawn("tx", 1, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversize send did not panic")
			}
			p.Send(rx.ID(), 1) // unblock receiver
		}()
		huge := make([]uint64, e.prof.QueueCap+1)
		p.Send(rx.ID(), huge...)
	})
	e.Run(0)
}
