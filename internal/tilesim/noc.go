package tilesim

// The network-on-chip model: cores sit on a MeshW x MeshH grid and
// packets route XY, so latency is proportional to Manhattan distance.
// Home tiles for cache lines and the controller owning a line are both
// derived by hashing the line id, like the TILE-Gx's hashed home-tile
// distribution.

// tileCoord is a position on the mesh; memory controllers sit on edge
// positions that are not core tiles.
type tileCoord struct{ x, y int }

// NumCores returns the number of core tiles on the mesh.
func (pr Profile) NumCores() int { return pr.MeshW * pr.MeshH }

// coord maps a core index (row-major) to mesh coordinates.
func (pr Profile) coord(core int) tileCoord {
	return tileCoord{x: core % pr.MeshW, y: core / pr.MeshW}
}

// dist is the Manhattan distance between two core tiles (XY routing).
func (pr Profile) dist(a, b int) uint64 {
	ca, cb := pr.coord(a), pr.coord(b)
	return uint64(abs(ca.x-cb.x) + abs(ca.y-cb.y))
}

// distToTile is the Manhattan distance from a core to an arbitrary tile
// coordinate (used for memory controllers).
func (pr Profile) distToTile(core int, t tileCoord) uint64 {
	c := pr.coord(core)
	return uint64(abs(c.x-t.x) + abs(c.y-t.y))
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// homeTile returns the core whose L2 slice is home for the line
// (TILE-Gx hashes home tiles across the mesh).
func (pr Profile) homeTile(l lineID) int {
	h := uint64(l) * 0x9E3779B97F4A7C15
	return int(h % uint64(pr.NumCores()))
}

// ctrlFor returns the memory-controller index owning the line. TILE-Gx
// has two controllers; lines hash across them, so two atomics can collide
// on a controller even with independent data sets (§5.4).
func (pr Profile) ctrlFor(l lineID) int {
	return int(uint64(l) % uint64(pr.NumCtrls))
}
