package tilesim

import "fmt"

// Addr is a 64-bit-word address in simulated shared memory.
type Addr uint64

// wordsPerLine is the cache-line size in 64-bit words (64-byte lines).
const wordsPerLine = 8

// lineID identifies a cache line.
type lineID uint64

func lineOf(a Addr) lineID { return lineID(a / wordsPerLine) }

// lineState is a private-cache MSI state. The directory maintains the
// single-writer-multiple-reader invariant from the paper's system model:
// at any time either one core holds a line Modified or any number of
// cores hold it Shared.
type lineState uint8

const (
	invalid lineState = iota
	shared
	modified
)

// dirEntry is the home-directory state for one line.
type dirEntry struct {
	owner   int    // core holding the line Modified, or -1
	sharers uint64 // bitmask of cores holding the line Shared
}

// watchToken represents a Proc blocked in SpinWhile/WaitAnyWrite,
// waiting for a write to one of a set of lines. One token may be
// registered on several lines; the fired flag guarantees a single
// wake-up even if several watched lines are written.
type watchToken struct {
	p           *Proc
	blockedFrom uint64
	fired       bool
}

// memory is the authoritative value store plus the coherence directory.
// Because the engine runs one Proc at a time, reads and writes applied
// here are sequentially consistent; the cache/directory state exists for
// timing (RMR and stall accounting), mirroring the paper's model where
// the protocol affects performance, not visible semantics.
type memory struct {
	eng      *Engine
	data     map[Addr]uint64
	dir      map[lineID]*dirEntry
	caches   []map[lineID]lineState // per core
	watchers map[lineID][]*watchToken
}

func newMemory(e *Engine) *memory {
	m := &memory{
		eng:      e,
		data:     make(map[Addr]uint64),
		dir:      make(map[lineID]*dirEntry),
		watchers: make(map[lineID][]*watchToken),
	}
	m.caches = make([]map[lineID]lineState, e.prof.NumCores())
	for i := range m.caches {
		m.caches[i] = make(map[lineID]lineState)
	}
	return m
}

func (m *memory) entry(l lineID) *dirEntry {
	d, ok := m.dir[l]
	if !ok {
		d = &dirEntry{owner: -1}
		m.dir[l] = d
	}
	return d
}

// readCost computes the latency of a load by core c from line l and
// applies the protocol state transition. Returns (cost, stall).
func (m *memory) readCost(c int, l lineID) (uint64, uint64) {
	pr := m.eng.prof
	if m.caches[c][l] != invalid {
		return pr.L1Hit, 0
	}
	// Remote memory reference: request to the home tile's directory.
	home := pr.homeTile(l)
	cost := pr.L1Hit + 2*pr.dist(c, home)*pr.HopLat + pr.DirLat
	d := m.entry(l)
	if d.owner >= 0 && d.owner != c {
		// Dirty elsewhere: forward through the owner, downgrade to Shared.
		cost += 2*pr.dist(home, d.owner)*pr.HopLat + pr.FwdLat
		m.caches[d.owner][l] = shared
		d.sharers |= 1 << uint(d.owner)
		d.owner = -1
	}
	d.sharers |= 1 << uint(c)
	m.caches[c][l] = shared
	return cost, cost - pr.L1Hit
}

// writeCost computes the latency of a store by core c to line l and
// applies the protocol transition (invalidating other copies).
func (m *memory) writeCost(c int, l lineID) (uint64, uint64) {
	pr := m.eng.prof
	if m.caches[c][l] == modified {
		return pr.L1Hit, 0
	}
	home := pr.homeTile(l)
	cost := pr.L1Hit + 2*pr.dist(c, home)*pr.HopLat + pr.DirLat
	d := m.entry(l)
	if d.owner >= 0 && d.owner != c {
		cost += 2*pr.dist(home, d.owner)*pr.HopLat + pr.FwdLat
		m.caches[d.owner][l] = invalid
		d.owner = -1
	}
	// Invalidations to sharers proceed in parallel; the requester waits
	// for the farthest acknowledgement.
	var maxD uint64
	inval := false
	for s := d.sharers; s != 0; s &= s - 1 {
		core := trailingZeros(s)
		if core == c {
			continue
		}
		inval = true
		if dd := pr.dist(home, core); dd > maxD {
			maxD = dd
		}
		m.caches[core][l] = invalid
	}
	if inval {
		cost += pr.InvalLat + 2*maxD*pr.HopLat
	}
	d.sharers = 0
	d.owner = c
	m.caches[c][l] = modified
	return cost, cost - pr.L1Hit
}

// invalidateAll evicts every cached copy of l (used by controller-side
// atomics: on TILE-Gx atomic data is not cached by the cores).
func (m *memory) invalidateAll(l lineID) (hadCopies bool) {
	d := m.entry(l)
	if d.owner >= 0 {
		m.caches[d.owner][l] = invalid
		d.owner = -1
		hadCopies = true
	}
	for s := d.sharers; s != 0; s &= s - 1 {
		m.caches[trailingZeros(s)][l] = invalid
		hadCopies = true
	}
	d.sharers = 0
	return hadCopies
}

// notifyWatchers wakes every Proc spinning on line l so it re-checks its
// predicate at time at (when the invalidation reaches it).
func (m *memory) notifyWatchers(l lineID, at uint64) {
	ws := m.watchers[l]
	if len(ws) == 0 {
		return
	}
	delete(m.watchers, l)
	for _, w := range ws {
		if !w.fired {
			w.fired = true
			w.p.unblockAt(at, w.blockedFrom)
		}
	}
}

func trailingZeros(x uint64) int {
	n := 0
	for x&1 == 0 {
		x >>= 1
		n++
	}
	return n
}

// checkInvariant verifies the single-writer-multiple-reader invariant
// for every line the directory knows about. Tests call this through the
// exported hook below.
func (m *memory) checkInvariant() error {
	for l, d := range m.dir {
		if d.owner >= 0 && d.sharers != 0 {
			return fmt.Errorf("line %d: owner %d coexists with sharers %b", l, d.owner, d.sharers)
		}
		if d.owner >= 0 && m.caches[d.owner][l] != modified {
			return fmt.Errorf("line %d: directory owner %d but cache state %d", l, d.owner, m.caches[d.owner][l])
		}
		for s := d.sharers; s != 0; s &= s - 1 {
			c := trailingZeros(s)
			if m.caches[c][l] != shared {
				return fmt.Errorf("line %d: sharer %d has cache state %d", l, c, m.caches[c][l])
			}
		}
		for c, cache := range m.caches {
			st := cache[l]
			if st == modified && d.owner != c {
				return fmt.Errorf("line %d: core %d Modified but directory owner %d", l, c, d.owner)
			}
			if st == shared && d.sharers&(1<<uint(c)) == 0 {
				return fmt.Errorf("line %d: core %d Shared but not in sharer set", l, c)
			}
		}
	}
	return nil
}

// CheckCoherence verifies the directory invariants; it is exported for
// tests and costs no simulated time.
func (e *Engine) CheckCoherence() error { return e.mem.checkInvariant() }

// --- Proc-facing memory operations -------------------------------------

// Read performs a sequentially consistent load. If the line was
// prefetched and is still in flight, the load stalls only for the
// remaining fill time — the overlap of coherence misses with useful work
// that the paper observes on long critical sections (§5.3, Figure 4c).
func (p *Proc) Read(a Addr) uint64 {
	m := p.eng.mem
	l := lineOf(a)
	if readyAt, ok := p.prefetch[l]; ok {
		delete(p.prefetch, l)
		if m.caches[p.core][l] != invalid {
			v := m.data[a]
			cost, stall := p.eng.prof.L1Hit, uint64(0)
			if readyAt > p.eng.now {
				stall = readyAt - p.eng.now
				cost += stall
			}
			p.trace(p.eng.now, TraceRead, a, v, cost)
			p.advance(cost, stall)
			return v
		}
		// The prefetched copy was invalidated before use: fall through
		// to a normal miss.
	}
	cost, stall := m.readCost(p.core, l)
	if stall > 0 {
		p.RMRs++
	}
	v := m.data[a]
	p.trace(p.eng.now, TraceRead, a, v, cost)
	p.advance(cost, stall)
	return v
}

// Prefetch starts filling the line containing a into the local cache
// without blocking (one issue cycle). A later Read overlaps the fill
// with whatever the Proc does in between. Prefetching a line that is
// already cached is free apart from the issue cycle.
func (p *Proc) Prefetch(a Addr) {
	m := p.eng.mem
	l := lineOf(a)
	if m.caches[p.core][l] == invalid {
		cost, _ := m.readCost(p.core, l)
		p.RMRs++
		p.prefetch[l] = p.eng.now + cost
	}
	p.advance(1, 0)
}

// Write performs a sequentially consistent store.
func (p *Proc) Write(a Addr, v uint64) {
	m := p.eng.mem
	cost, stall := m.writeCost(p.core, lineOf(a))
	if stall > 0 {
		p.RMRs++
	}
	m.data[a] = v
	m.notifyWatchers(lineOf(a), p.eng.now+cost)
	p.trace(p.eng.now, TraceWrite, a, v, cost)
	p.advance(cost, stall)
}

// SpinWhile blocks the Proc while pred(value at a) is true, modeling
// local spinning: after the first read the line sits Shared in the local
// cache, so re-checks cost nothing on the interconnect; the Proc sleeps
// and is woken by the invalidation when another core writes the line.
// Each wake-up pays one read (usually an RMR). Returns the value that
// falsified the predicate.
func (p *Proc) SpinWhile(a Addr, pred func(uint64) bool) uint64 {
	for {
		v := p.Read(a)
		if !pred(v) {
			return v
		}
		p.WaitAnyWrite(a)
	}
}

// WaitAnyWrite blocks the Proc until any of the lines containing the
// given addresses is written (including by an atomic). It models a core
// polling a set of lines held in its local cache: polling costs nothing
// on the interconnect and the first invalidation ends the wait. If any
// watched line is already absent from the local cache — i.e., it was
// written (invalidated) since the caller last read it — WaitAnyWrite
// returns immediately, so there is no lost-wakeup window between a scan
// and the block. Callers must re-check their condition after waking
// (spurious wake-ups occur when an unrelated word on a watched line is
// written).
func (p *Proc) WaitAnyWrite(addrs ...Addr) {
	m := p.eng.mem
	for _, a := range addrs {
		if m.caches[p.core][lineOf(a)] == invalid {
			return
		}
	}
	tok := &watchToken{p: p, blockedFrom: p.eng.now}
	seen := make(map[lineID]bool, len(addrs))
	for _, a := range addrs {
		l := lineOf(a)
		if !seen[l] {
			seen[l] = true
			m.watchers[l] = append(m.watchers[l], tok)
		}
	}
	p.block()
}

// WordWrite is one word of a WriteBurst.
type WordWrite struct {
	A Addr
	V uint64
}

// WriteBurst performs several stores as one coherence transaction per
// distinct cache line: the line is acquired Modified once and all its
// words are updated together, and watchers observe a single
// invalidation. This models a store buffer draining back-to-back writes
// to one line (e.g., a server writing response value, sequence number
// and request-clear flag), which on real hardware complete before a
// remote reader's next miss can intervene.
func (p *Proc) WriteBurst(writes ...WordWrite) {
	m := p.eng.mem
	var cost, stall uint64
	seen := make(map[lineID]bool, 1)
	for _, w := range writes {
		l := lineOf(w.A)
		if !seen[l] {
			seen[l] = true
			c, s := m.writeCost(p.core, l)
			cost += c
			stall += s
			if s > 0 {
				p.RMRs++
			}
		}
		m.data[w.A] = w.V
	}
	for l := range seen {
		m.notifyWatchers(l, p.eng.now+cost)
	}
	if len(writes) > 0 {
		p.trace(p.eng.now, TraceWrite, writes[0].A, writes[0].V, cost)
	}
	p.advance(cost, stall)
}
