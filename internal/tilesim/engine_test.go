package tilesim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var order []int
	e.schedule(10, func() { order = append(order, 1) })
	e.schedule(5, func() { order = append(order, 0) })
	e.schedule(10, func() { order = append(order, 2) }) // same time: seq order
	e.Run(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("bad event order: %v", order)
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %d, want 10", e.Now())
	}
}

func TestRunLimitPausesAndResumes(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	fired := 0
	e.schedule(100, func() { fired++ })
	e.Run(50)
	if fired != 0 {
		t.Fatal("event fired before limit")
	}
	if e.Now() != 50 {
		t.Fatalf("clock = %d, want 50", e.Now())
	}
	e.Run(0)
	if fired != 1 {
		t.Fatal("event did not fire on resumed run")
	}
}

func TestProcWorkAdvancesClock(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var at uint64
	e.Spawn("w", 0, func(p *Proc) {
		p.Work(25)
		p.Work(5)
		at = p.Now()
	})
	e.Run(0)
	if at != 30 {
		t.Fatalf("proc saw time %d, want 30", at)
	}
}

func TestSingleProcRunsAtATime(t *testing.T) {
	// Two procs interleave only at blocking points; each observes the
	// other's writes in a sequentially consistent order.
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var seen []uint64
	e.Spawn("p0", 0, func(p *Proc) {
		p.Write(a, 1)
		p.Work(100)
		p.Write(a, 2)
	})
	e.Spawn("p1", 1, func(p *Proc) {
		for i := 0; i < 4; i++ {
			seen = append(seen, p.Read(a))
			p.Work(60)
		}
	})
	e.Run(0)
	// Values must be non-decreasing (sequential consistency).
	for i := 1; i < len(seen); i++ {
		if seen[i] < seen[i-1] {
			t.Fatalf("non-monotonic reads: %v", seen)
		}
	}
	if err := e.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (uint64, uint64, uint64) {
		e := NewEngine(ProfileTileGx())
		a := e.AllocLine(4)
		var sum uint64
		for i := 0; i < 8; i++ {
			e.Spawn("p", i, func(p *Proc) {
				for j := 0; j < 50; j++ {
					p.FAA(a, 1)
					p.Work(p.Rand() % 20)
					p.Write(a+1+Addr(p.ID()%3), p.Rand())
					sum += p.Read(a + 1)
				}
			})
		}
		end := e.Run(0)
		var stalls uint64
		for _, p := range e.Procs() {
			stalls += p.StallCycles
		}
		return end, stalls, sum
	}
	e1, s1, v1 := run()
	e2, s2, v2 := run()
	if e1 != e2 || s1 != s2 || v1 != v2 {
		t.Fatalf("nondeterministic simulation: (%d,%d,%d) vs (%d,%d,%d)", e1, s1, v1, e2, s2, v2)
	}
}

func TestShutdownAbortsBlockedProcs(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	p := e.Spawn("blocked", 0, func(p *Proc) {
		p.Recv(1) // nobody ever sends
		t.Error("blocked proc resumed without sender")
	})
	e.Run(0)
	if len(e.Deadlocked()) != 1 {
		t.Fatalf("expected 1 deadlocked proc, got %v", e.Deadlocked())
	}
	e.Shutdown()
	if !p.done {
		t.Fatal("proc not marked done after shutdown")
	}
}

func TestAllocLineAlignment(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	e.Alloc(3)
	a := e.AllocLine(2)
	if a%wordsPerLine != 0 {
		t.Fatalf("AllocLine returned unaligned address %d", a)
	}
	b := e.AllocLine(1)
	if lineOf(a) == lineOf(b) {
		t.Fatal("AllocLine allocations share a line")
	}
}
