package tilesim

import (
	"fmt"
	"io"
)

// TraceEvent is one simulated operation, emitted to the engine's tracer
// as the operation is issued. Because the engine is deterministic, a
// trace is a reproducible record of a run — diffing two traces pinpoints
// the first divergence after a model change.
type TraceEvent struct {
	Time uint64
	Proc string
	Core int
	Kind TraceKind
	Addr Addr   // memory operations
	Arg  uint64 // value written / added / message word 0 / cost for work
	Cost uint64 // cycles the operation took (including stall/queueing)
}

// TraceKind classifies trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceRead TraceKind = iota
	TraceWrite
	TraceFAA
	TraceSwap
	TraceCAS
	TraceSend
	TraceRecv
	TraceWork
	TraceFence
)

var traceKindNames = [...]string{
	"read", "write", "faa", "swap", "cas", "send", "recv", "work", "fence",
}

// String returns the kind's mnemonic.
func (k TraceKind) String() string {
	if int(k) < len(traceKindNames) {
		return traceKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// String formats an event as one trace line.
func (ev TraceEvent) String() string {
	switch ev.Kind {
	case TraceWork, TraceFence:
		return fmt.Sprintf("%8d %-12s c%02d %-5s cost=%d", ev.Time, ev.Proc, ev.Core, ev.Kind, ev.Cost)
	case TraceSend, TraceRecv:
		return fmt.Sprintf("%8d %-12s c%02d %-5s peer=%d w0=%d cost=%d", ev.Time, ev.Proc, ev.Core, ev.Kind, ev.Addr, ev.Arg, ev.Cost)
	default:
		return fmt.Sprintf("%8d %-12s c%02d %-5s a=%d v=%d cost=%d", ev.Time, ev.Proc, ev.Core, ev.Kind, ev.Addr, ev.Arg, ev.Cost)
	}
}

// Tracer receives every traced operation. Implementations must not call
// back into the engine.
type Tracer interface {
	Trace(ev TraceEvent)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(ev TraceEvent)

// Trace implements Tracer.
func (f TracerFunc) Trace(ev TraceEvent) { f(ev) }

// SetTracer installs (or, with nil, removes) a tracer. Tracing is off by
// default and costs nothing when off.
func (e *Engine) SetTracer(t Tracer) { e.tracer = t }

// WriteTracer returns a Tracer printing one line per event to w.
func WriteTracer(w io.Writer) Tracer {
	return TracerFunc(func(ev TraceEvent) { fmt.Fprintln(w, ev.String()) })
}

// trace emits an event if tracing is enabled; issuedAt is the operation
// issue time (the engine clock may already have advanced).
func (p *Proc) trace(issuedAt uint64, kind TraceKind, addr Addr, arg, cost uint64) {
	tr := p.eng.tracer
	if tr == nil {
		return
	}
	tr.Trace(TraceEvent{Time: issuedAt, Proc: p.name, Core: p.core, Kind: kind, Addr: addr, Arg: arg, Cost: cost})
}
