package tilesim

// udn models the User Dynamic Network: each Proc owns one hardware FIFO
// queue of 64-bit words (one of the four queues multiplexed on its core's
// message buffer). Sends are asynchronous — the sender pays only the
// issue cost and continues while the message traverses the mesh — unless
// the destination queue is full, in which case messages back up into the
// network and the sender blocks until space frees up (§5.1, §6 of the
// paper). Receives read from the local buffer; a receiver asking for k
// words blocks until k words are present. Words of one send are placed
// contiguously in the destination queue.
type udn struct {
	eng    *Engine
	queues []*msgQueue
}

type msgQueue struct {
	core     int
	words    []uint64
	inFlight int // words sent but not yet arrived (reserve space)

	// recvWait: the owning Proc blocked until `need` words are present.
	recvWaiter *Proc
	recvNeed   int
	recvFrom   uint64

	// sendWaiters: Procs blocked because the queue was full, FIFO order.
	sendWaiters []sendWaiter
}

type sendWaiter struct {
	p           *Proc
	words       []uint64
	blockedFrom uint64
}

func newUDN(e *Engine) *udn { return &udn{eng: e} }

func (u *udn) addQueue(procID, core int) {
	if procID != len(u.queues) {
		panic("tilesim: queue/proc id mismatch")
	}
	u.queues = append(u.queues, &msgQueue{core: core})
}

// space returns free capacity counting in-flight words as reserved.
func (q *msgQueue) space(cap int) int {
	return cap - len(q.words) - q.inFlight
}

// Send transmits words to the message queue of Proc dst. It is
// asynchronous: the sender is charged only SendLat and continues, while
// delivery completes after the mesh traversal. If the destination queue
// cannot hold the message, the sender blocks until space is available
// (back-pressure), then transmits.
func (p *Proc) Send(dst int, words ...uint64) {
	if len(words) == 0 {
		panic("tilesim: empty message")
	}
	u := p.eng.udn
	q := u.queues[dst]
	pr := p.eng.prof
	if len(words) > pr.QueueCap {
		panic("tilesim: message larger than hardware queue")
	}
	p.MsgsSent++
	if q.space(pr.QueueCap) < len(words) {
		// Back-pressure: the message backs up into the network and the
		// sender stalls until the receiver drains the queue.
		from := p.eng.now
		q.sendWaiters = append(q.sendWaiters, sendWaiter{p: p, words: words, blockedFrom: from})
		p.block()
		// When unblocked, space has been reserved and the message
		// enqueued for delivery by drainSenders; only the issue cost
		// remains to be paid.
		p.advance(pr.SendLat, 0)
		return
	}
	u.transmit(p, q, dst, words)
	p.trace(p.eng.now, TraceSend, Addr(dst), words[0], pr.SendLat)
	p.advance(pr.SendLat, 0)
}

// transmit reserves space and schedules the delivery event.
func (u *udn) transmit(p *Proc, q *msgQueue, dst int, words []uint64) {
	pr := u.eng.prof
	q.inFlight += len(words)
	hops := pr.dist(p.core, q.core)
	arrive := u.eng.now + pr.SendLat + pr.MsgLat + hops*pr.HopLat + uint64(len(words))
	u.eng.schedule(arrive, func() { u.deliver(q, words) })
}

// deliver lands a message in the destination queue and wakes a blocked
// receiver if its demand is now satisfied.
func (u *udn) deliver(q *msgQueue, words []uint64) {
	q.inFlight -= len(words)
	q.words = append(q.words, words...)
	if q.recvWaiter != nil && len(q.words) >= q.recvNeed {
		p := q.recvWaiter
		q.recvWaiter = nil
		p.unblockAt(u.eng.now, q.recvFrom)
	}
}

// drainSenders admits blocked senders whose messages now fit.
func (u *udn) drainSenders(q *msgQueue, dst int) {
	pr := u.eng.prof
	for len(q.sendWaiters) > 0 {
		w := q.sendWaiters[0]
		if q.space(pr.QueueCap) < len(w.words) {
			return
		}
		q.sendWaiters = q.sendWaiters[1:]
		u.transmit(w.p, q, dst, w.words)
		w.p.unblockAt(u.eng.now, w.blockedFrom)
	}
}

// Recv returns k words from the head of the Proc's own message queue,
// blocking until k words are available.
func (p *Proc) Recv(k int) []uint64 {
	u := p.eng.udn
	q := u.queues[p.id]
	pr := p.eng.prof
	if k <= 0 || k > pr.QueueCap {
		panic("tilesim: bad receive size")
	}
	if len(q.words) < k {
		if q.recvWaiter != nil {
			panic("tilesim: concurrent receives on one queue")
		}
		q.recvWaiter = p
		q.recvNeed = k
		q.recvFrom = p.eng.now
		p.block()
	}
	out := make([]uint64, k)
	copy(out, q.words[:k])
	q.words = q.words[k:]
	p.MsgsRecvd++
	u.drainSenders(q, p.id)
	// Reading k words from the local hardware buffer costs RecvLat for
	// the first word and one cycle per additional word.
	p.trace(p.eng.now, TraceRecv, Addr(p.id), out[0], pr.RecvLat+uint64(k-1))
	p.advance(pr.RecvLat+uint64(k-1), 0)
	return out
}

// QueueEmpty reports whether the Proc's message queue is currently empty
// (the paper's is_queue_empty). Checking the local buffer costs one
// cycle.
func (p *Proc) QueueEmpty() bool {
	q := p.eng.udn.queues[p.id]
	empty := len(q.words) == 0
	p.advance(1, 0)
	return empty
}

// QueueLen returns the number of words waiting in the Proc's queue
// without advancing time (a zero-cost introspection hook for tests).
func (p *Proc) QueueLen() int { return len(p.eng.udn.queues[p.id].words) }
