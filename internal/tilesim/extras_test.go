package tilesim

import "testing"

func TestPrefetchHidesLatency(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	// Warm the line at a remote core so the local read is a full miss.
	e.Spawn("warm", 20, func(p *Proc) { p.Write(a, 9) })
	var coldCost, hiddenCost uint64
	e.Spawn("t", 0, func(p *Proc) {
		p.Work(100)
		// Cold read for reference.
		t0 := p.Now()
		p.Read(a)
		coldCost = p.Now() - t0
	})
	e.Run(0)

	e2 := NewEngine(ProfileTileGx())
	b := e2.Alloc(1)
	e2.Spawn("warm", 20, func(p *Proc) { p.Write(b, 9) })
	e2.Spawn("t", 0, func(p *Proc) {
		p.Work(100)
		p.Prefetch(b)
		p.Work(200) // plenty of independent work: fill completes under it
		t0 := p.Now()
		if v := p.Read(b); v != 9 {
			t.Errorf("prefetched read = %d, want 9", v)
		}
		hiddenCost = p.Now() - t0
	})
	e2.Run(0)

	if coldCost <= e.prof.L1Hit {
		t.Fatalf("cold read cost %d not a miss", coldCost)
	}
	if hiddenCost != e2.prof.L1Hit {
		t.Fatalf("fully-hidden prefetch read cost %d, want L1 hit %d", hiddenCost, e2.prof.L1Hit)
	}
}

func TestPrefetchPartialOverlap(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	e.Spawn("warm", 35, func(p *Proc) { p.Write(a, 1) })
	var cost, stall uint64
	e.Spawn("t", 0, func(p *Proc) {
		p.Work(100)
		p.Prefetch(a)
		p.Work(2) // not enough to hide the fill
		t0 := p.Now()
		s0 := p.StallCycles
		p.Read(a)
		cost = p.Now() - t0
		stall = p.StallCycles - s0
	})
	e.Run(0)
	if cost <= e.prof.L1Hit {
		t.Fatalf("partially-hidden read cost %d, expected residual wait", cost)
	}
	if stall == 0 {
		t.Fatal("residual fill time not accounted as stall")
	}
}

func TestPrefetchInvalidatedBeforeUse(t *testing.T) {
	// A write by another core between prefetch and read invalidates the
	// prefetched copy; the read must re-miss and return the new value.
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var got uint64
	e.Spawn("t", 0, func(p *Proc) {
		p.Prefetch(a)
		p.Work(500)
		got = p.Read(a)
	})
	e.Spawn("w", 35, func(p *Proc) {
		p.Work(100)
		p.Write(a, 42)
	})
	e.Run(0)
	if got != 42 {
		t.Fatalf("read %d after invalidating write, want 42", got)
	}
	if err := e.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBurstSingleTransaction(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	base := e.AllocLine(4)
	var burstCost, singleCost uint64
	e.Spawn("reader", 30, func(p *Proc) { p.Read(base) }) // make line shared
	e.Spawn("t", 0, func(p *Proc) {
		p.Work(100)
		t0 := p.Now()
		p.WriteBurst(
			WordWrite{A: base, V: 1},
			WordWrite{A: base + 1, V: 2},
			WordWrite{A: base + 2, V: 3},
		)
		burstCost = p.Now() - t0
		// Now Modified: a second burst is a pure L1 transaction.
		t0 = p.Now()
		p.WriteBurst(WordWrite{A: base, V: 4})
		singleCost = p.Now() - t0
	})
	e.Run(0)
	if singleCost != e.prof.L1Hit {
		t.Fatalf("owned-line burst cost %d, want %d", singleCost, e.prof.L1Hit)
	}
	if burstCost <= e.prof.L1Hit {
		t.Fatalf("shared-line burst cost %d should pay one upgrade", burstCost)
	}
	if e.Peek(base) != 4 || e.Peek(base+1) != 2 || e.Peek(base+2) != 3 {
		t.Fatal("burst values not applied")
	}
}

func TestWriteBurstWakesSpinners(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	a := e.AllocLine(2)
	var got uint64
	e.Spawn("spinner", 5, func(p *Proc) {
		p.SpinWhile(a, func(v uint64) bool { return v == 0 })
		got = p.Read(a + 1)
	})
	e.Spawn("writer", 30, func(p *Proc) {
		p.Work(300)
		p.WriteBurst(WordWrite{A: a + 1, V: 77}, WordWrite{A: a, V: 1})
	})
	e.Run(0)
	if got != 77 {
		t.Fatalf("spinner read %d, want 77 (burst must publish atomically)", got)
	}
}

func TestFenceCostAndX86(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var cost uint64
	e.Spawn("t", 0, func(p *Proc) {
		t0 := p.Now()
		p.Fence()
		cost = p.Now() - t0
	})
	e.Run(0)
	if cost != e.prof.FenceLat {
		t.Fatalf("fence cost %d, want %d", cost, e.prof.FenceLat)
	}

	e2 := NewEngine(ProfileX86Like())
	var cost2 uint64
	e2.Spawn("t", 0, func(p *Proc) {
		t0 := p.Now()
		p.Fence()
		cost2 = p.Now() - t0
	})
	e2.Run(0)
	if cost2 != e2.prof.FenceLat {
		t.Fatalf("x86 fence cost %d, want %d", cost2, e2.prof.FenceLat)
	}
}

func TestAtomicLinearizesAtServiceInstant(t *testing.T) {
	// A plain reader polling during another core's long-latency atomic
	// must observe the new value as soon as the controller services it,
	// not only when the issuer resumes.
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	var sawAt, issuerDone uint64
	e.Spawn("atomic", 0, func(p *Proc) {
		p.FAA(a, 5)
		issuerDone = p.Now()
	})
	e.Spawn("poller", 35, func(p *Proc) {
		p.SpinWhile(a, func(v uint64) bool { return v == 0 })
		sawAt = p.Now()
	})
	e.Run(0)
	if sawAt == 0 {
		t.Fatal("poller never saw the FAA")
	}
	if sawAt > issuerDone+uint64(e.prof.HopLat)*20 {
		t.Fatalf("value visible at %d, long after issuer resumed at %d", sawAt, issuerDone)
	}
}

func TestControllerLineSwitchPenalty(t *testing.T) {
	// Back-to-back atomics on the same line pipeline at AtomicSvc; a
	// stream alternating between two lines on the same controller incurs
	// the switch occupancy and finishes much later.
	prof := ProfileTileGx()
	run := func(alternate bool) uint64 {
		e := NewEngine(prof)
		a := e.AllocLine(1)
		b := a + 2*wordsPerLine*Addr(prof.NumCtrls) // same controller
		if prof.ctrlFor(lineOf(a)) != prof.ctrlFor(lineOf(b)) {
			t.Fatal("setup: different controllers")
		}
		for i := 0; i < 4; i++ {
			i := i
			e.Spawn("p", i, func(p *Proc) {
				for j := 0; j < 20; j++ {
					target := a
					if alternate && (i+j)%2 == 0 {
						target = b
					}
					p.FAA(target, 1)
				}
			})
		}
		return e.Run(0)
	}
	same, alt := run(false), run(true)
	if alt <= same {
		t.Fatalf("alternating-line atomics (%d cycles) not slower than same-line (%d)", alt, same)
	}
}

func TestDeterminismWithUDNAndAtomics(t *testing.T) {
	run := func() uint64 {
		e := NewEngine(ProfileTileGx())
		e.SetSeed(7)
		a := e.AllocLine(1)
		var srv *Proc
		srv = e.Spawn("srv", 0, func(p *Proc) {
			for i := 0; i < 60; i++ {
				m := p.Recv(2)
				p.FAA(a, m[1])
				p.Send(int(m[0]), 1)
			}
		})
		for c := 1; c <= 3; c++ {
			e.Spawn("c", c, func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.Send(srv.ID(), uint64(p.ID()), p.Rand()%10)
					p.Recv(1)
					p.Work(p.Rand() % 30)
				}
			})
		}
		e.Run(0)
		return e.Now()*1e6 + e.Peek(a)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	run := func(seed uint64) uint64 {
		e := NewEngine(ProfileTileGx())
		e.SetSeed(seed)
		total := uint64(0)
		for c := 0; c < 3; c++ {
			e.Spawn("c", c, func(p *Proc) {
				for i := 0; i < 20; i++ {
					p.Work(p.Rand() % 100)
				}
				total += p.Now()
			})
		}
		e.Run(0)
		return total
	}
	if run(1) == run(2) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestCoreTimeSharing(t *testing.T) {
	// Two compute-bound procs on one core take ~2x as long as on two
	// cores; their idle (descheduled) time accounts for the difference.
	run := func(sameCore bool) (makespan, idle uint64) {
		e := NewEngine(ProfileTileGx())
		core2 := 1
		if sameCore {
			core2 = 0
		}
		var ps []*Proc
		for _, c := range []int{0, core2} {
			ps = append(ps, e.Spawn("w", c, func(p *Proc) {
				for i := 0; i < 100; i++ {
					p.Work(10)
				}
			}))
		}
		end := e.Run(0)
		for _, p := range ps {
			idle += p.IdleCycles
		}
		return end, idle
	}
	apart, idleApart := run(false)
	shared, idleShared := run(true)
	if shared < 2*apart-apart/10 {
		t.Fatalf("co-scheduled makespan %d, want ~2x of %d", shared, apart)
	}
	if idleApart != 0 {
		t.Fatalf("separate cores recorded idle %d", idleApart)
	}
	if idleShared == 0 {
		t.Fatal("shared core recorded no descheduled time")
	}
}

func TestOversubscribedProcsStayCorrect(t *testing.T) {
	// Four procs share one core and all FAA a counter; no increments may
	// be lost (the §6 oversubscription scenario: each proc keeps its own
	// multiplexed message queue and identity).
	e := NewEngine(ProfileTileGx())
	a := e.Alloc(1)
	for i := 0; i < 4; i++ {
		e.Spawn("w", 3, func(p *Proc) {
			for j := 0; j < 50; j++ {
				p.FAA(a, 1)
				p.Work(p.Rand() % 10)
			}
		})
	}
	e.Run(0)
	if got := e.Peek(a); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
	if err := e.CheckCoherence(); err != nil {
		t.Fatal(err)
	}
}
