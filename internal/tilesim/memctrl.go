package tilesim

// memCtrl models one memory controller. On the TILE-Gx, atomic
// read-modify-write instructions are not executed in the local cache but
// shipped to the memory controller owning the line. Requests serialize
// there, so two atomics can collide on a controller even when they touch
// independent data (the paper's explanation of LCRQ's "false
// serialization" in §5.4, and of HYBCOMB's higher single-thread latency
// in §5.3: three atomics per operation instead of CC-SYNCH's one).
type memCtrl struct {
	tile     tileCoord
	freeAt   uint64 // controller accepts the next atomic at this time
	lastLine lineID // line touched by the previous atomic (bank reuse)
	touched  bool
}

// atomicKind selects the read-modify-write applied at the controller.
type atomicKind uint8

const (
	opFAA atomicKind = iota
	opSwap
	opCAS
)

// atomicRMW executes an atomic on address a for proc p.
//
// Linearization point: with controller-side atomics the value change is
// applied at the instant the controller services the request — not when
// the issuing core starts the instruction. This matters for Algorithm 1
// of the paper: the race window between a combiner's CAS registration
// and its n_ops reset is a few cycles of controller pipeline, not the
// whole client-observed atomic latency, which is why chained combiner
// registrations are rare in practice (§5.3).
func (p *Proc) atomicRMW(kind atomicKind, a Addr, v1, v2 uint64) (uint64, bool) {
	e := p.eng
	pr := e.prof
	m := e.mem
	l := lineOf(a)
	p.AtomicOps++
	p.RMRs++

	if !pr.AtomicsAtCtrl {
		// x86-like: acquire the line exclusively and execute locally;
		// the operation applies now (the engine runs one proc at a time).
		old := m.data[a]
		ok := applyRMW(m, kind, a, old, v1, v2)
		wcost, _ := m.writeCost(p.core, l)
		cost := wcost + pr.AtomicALU
		m.notifyWatchers(l, e.now+cost)
		p.trace(e.now, traceKindFor(kind), a, v1, cost)
		p.advance(cost, cost-pr.L1Hit)
		return old, ok
	}

	ctrl := e.ctrls[pr.ctrlFor(l)]
	travel := pr.distToTile(p.core, ctrl.tile) * pr.HopLat
	arrive := e.now + pr.L1Hit + travel
	start := arrive
	if ctrl.freeAt > start {
		start = ctrl.freeAt // serialized behind earlier atomics
	}
	// The controller pipelines back-to-back atomics on the same line
	// (hot ticket words sustain one atomic per AtomicSvc cycles), but an
	// address switch costs AtomicSvcSwitch of occupancy — the bank-level
	// serialization behind the paper's §5.4 observation that independent
	// atomics collide at the controller.
	occ := pr.AtomicSvc
	if ctrl.touched && ctrl.lastLine != l {
		occ = pr.AtomicSvcSwitch
	}
	ctrl.lastLine, ctrl.touched = l, true
	ctrl.freeAt = start + occ
	done := start + pr.AtomicLat

	var old uint64
	var ok bool
	e.schedule(start, func() {
		// Service instant: read-modify-write applies, every cached copy
		// is invalidated (atomic data is not cached by cores) and local
		// spinners observe the change.
		old = m.data[a]
		ok = applyRMW(m, kind, a, old, v1, v2)
		m.invalidateAll(l)
		m.notifyWatchers(l, start)
	})
	cost := done + travel - e.now
	p.trace(e.now, traceKindFor(kind), a, v1, cost)
	p.advance(cost, cost-pr.L1Hit)
	return old, ok
}

// traceKindFor maps an atomic kind to its trace kind.
func traceKindFor(kind atomicKind) TraceKind {
	switch kind {
	case opFAA:
		return TraceFAA
	case opSwap:
		return TraceSwap
	default:
		return TraceCAS
	}
}

// applyRMW mutates memory according to the atomic kind and reports CAS
// success (true for FAA/SWAP).
func applyRMW(m *memory, kind atomicKind, a Addr, old, v1, v2 uint64) bool {
	switch kind {
	case opFAA:
		m.data[a] = old + v1
	case opSwap:
		m.data[a] = v1
	case opCAS:
		if old != v1 {
			return false
		}
		m.data[a] = v2
	}
	return true
}

// FAA atomically adds v to *a and returns the previous value
// (fetch-and-add).
func (p *Proc) FAA(a Addr, v uint64) uint64 {
	old, _ := p.atomicRMW(opFAA, a, v, 0)
	return old
}

// Swap atomically stores v into *a and returns the previous value.
func (p *Proc) Swap(a Addr, v uint64) uint64 {
	old, _ := p.atomicRMW(opSwap, a, v, 0)
	return old
}

// CAS atomically installs vnew into *a if *a == vold, returning whether
// it succeeded (compare-and-set, the boolean variant the paper uses).
func (p *Proc) CAS(a Addr, vold, vnew uint64) bool {
	p.CASAttempts++
	_, ok := p.atomicRMW(opCAS, a, vold, vnew)
	if !ok {
		p.CASFailures++
	}
	return ok
}
