// Package tilesim implements a deterministic, cycle-level discrete-event
// simulator of a hybrid manycore processor modeled after Tilera's
// TILE-Gx8036: a mesh of single-threaded cores with private write-back
// caches kept coherent by a directory protocol, memory controllers that
// execute atomic read-modify-write operations, and a User Dynamic Network
// (UDN) that delivers application-level messages between cores into
// bounded per-core hardware FIFO queues.
//
// The simulator is process-oriented: each simulated hardware thread is a
// goroutine (a Proc) that issues blocking operations (Read, Write, FAA,
// CAS, Swap, Send, Recv, Work). The engine runs exactly one Proc at a
// time (run-to-block) and orders all events by (time, sequence), so a
// simulation is fully deterministic: the same program and seed always
// produce the same cycle counts.
package tilesim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback. Events fire in (at, seq) order; seq
// breaks ties deterministically in schedule order.
type event struct {
	at  uint64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is one simulated chip: clock, event queue, memory system, NoC,
// UDN and the set of Procs running on it.
type Engine struct {
	prof Profile

	now uint64
	seq uint64
	pq  eventHeap

	procs    []*Proc
	mem      *memory
	udn      *udn
	ctrls    []*memCtrl
	coreFree []uint64 // per-core time-sharing: core busy until this time

	heapNext Addr // bump allocator for simulated shared memory
	seed     uint64
	tracer   Tracer

	running bool
	stopped bool
}

// NewEngine creates a chip with the given cost profile.
func NewEngine(prof Profile) *Engine {
	e := &Engine{prof: prof, heapNext: heapBase}
	e.coreFree = make([]uint64, prof.NumCores())
	e.mem = newMemory(e)
	e.udn = newUDN(e)
	e.ctrls = make([]*memCtrl, prof.NumCtrls)
	for i := range e.ctrls {
		e.ctrls[i] = &memCtrl{tile: prof.CtrlTiles[i]}
	}
	return e
}

// Now returns the current simulated time in cycles.
func (e *Engine) Now() uint64 { return e.now }

// SetSeed perturbs the per-Proc random streams (local-work lengths).
// Call before spawning Procs. Different seeds model the paper's
// averaging over ten independent runs.
func (e *Engine) SetSeed(s uint64) { e.seed = s }

// Profile returns the cost profile the engine was built with.
func (e *Engine) Profile() Profile { return e.prof }

func (e *Engine) schedule(at uint64, fn func()) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	heap.Push(&e.pq, &event{at: at, seq: e.seq, fn: fn})
}

// heapBase is the first address handed out by Alloc. Addresses are
// 64-bit word indexes; wordsPerLine consecutive words share a cache line.
const heapBase Addr = 1 << 20

// Alloc reserves n consecutive 64-bit words of simulated shared memory
// and returns the address of the first. Allocation itself costs no
// simulated time (the paper's algorithms preallocate their shared state).
func (e *Engine) Alloc(n int) Addr {
	a := e.heapNext
	e.heapNext += Addr(n)
	return a
}

// AllocLine reserves n words starting on a fresh cache-line boundary so
// that the allocation does not false-share with previous allocations.
func (e *Engine) AllocLine(n int) Addr {
	if r := e.heapNext % wordsPerLine; r != 0 {
		e.heapNext += wordsPerLine - r
	}
	return e.Alloc(n)
}

// Run executes scheduled events until the event queue is empty or the
// simulated clock passes limit (limit 0 means no limit). It returns the
// final simulated time. Procs that are still blocked when Run returns
// stay parked; use Shutdown to abort them.
func (e *Engine) Run(limit uint64) uint64 {
	if e.running {
		panic("tilesim: Run called reentrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.pq) > 0 {
		ev := heap.Pop(&e.pq).(*event)
		if limit != 0 && ev.at > limit {
			// Push back so a later Run with a larger limit continues.
			heap.Push(&e.pq, ev)
			e.now = limit
			return e.now
		}
		e.now = ev.at
		ev.fn()
	}
	return e.now
}

// Shutdown aborts every Proc that has not finished. Blocked Procs are
// resumed with an abort flag; their top-level function unwinds via an
// internal panic that the Proc runner recovers. After Shutdown the
// engine must not be used further.
func (e *Engine) Shutdown() {
	e.stopped = true
	for _, p := range e.procs {
		if !p.done {
			p.aborted = true
			p.resume <- struct{}{}
			<-p.parked
		}
	}
}

// Deadlocked reports the names of Procs that are neither done nor have a
// pending event that could wake them. It is meaningful after Run returned
// with an empty event queue.
func (e *Engine) Deadlocked() []string {
	var out []string
	for _, p := range e.procs {
		if !p.done {
			out = append(out, p.name)
		}
	}
	return out
}

// Procs returns all Procs spawned on this engine, in spawn order.
func (e *Engine) Procs() []*Proc { return e.procs }

func (e *Engine) String() string {
	return fmt.Sprintf("tilesim.Engine{now=%d procs=%d events=%d}", e.now, len(e.procs), len(e.pq))
}

// Peek reads simulated memory without advancing time or touching the
// coherence state. For setup and test assertions only.
func (e *Engine) Peek(a Addr) uint64 { return e.mem.data[a] }

// Poke writes simulated memory without advancing time or touching the
// coherence state. For setup only; using it during a run would bypass
// the protocol.
func (e *Engine) Poke(a Addr, v uint64) { e.mem.data[a] = v }
