package tilesim

import (
	"bytes"
	"strings"
	"testing"
)

// collectTrace runs a small two-proc program with a recording tracer.
func collectTrace(t *testing.T) []TraceEvent {
	t.Helper()
	e := NewEngine(ProfileTileGx())
	var evs []TraceEvent
	e.SetTracer(TracerFunc(func(ev TraceEvent) { evs = append(evs, ev) }))
	a := e.Alloc(1)
	rx := e.Spawn("rx", 0, func(p *Proc) {
		m := p.Recv(1)
		p.FAA(a, m[0])
		p.Work(5)
		p.Fence()
	})
	e.Spawn("tx", 35, func(p *Proc) {
		p.Write(a, 1)
		p.Send(rx.ID(), 7)
		p.Read(a)
	})
	e.Run(0)
	if dl := e.Deadlocked(); len(dl) != 0 {
		t.Fatalf("deadlock: %v", dl)
	}
	return evs
}

func TestTraceCoversAllKinds(t *testing.T) {
	evs := collectTrace(t)
	seen := map[TraceKind]bool{}
	for _, ev := range evs {
		seen[ev.Kind] = true
	}
	for _, k := range []TraceKind{TraceRead, TraceWrite, TraceFAA, TraceSend, TraceRecv, TraceWork, TraceFence} {
		if !seen[k] {
			t.Errorf("no %s event in trace %v", k, evs)
		}
	}
}

func TestTraceTimesMonotonePerProc(t *testing.T) {
	evs := collectTrace(t)
	last := map[string]uint64{}
	for _, ev := range evs {
		if ev.Time < last[ev.Proc] {
			t.Fatalf("trace time went backwards for %s: %v", ev.Proc, evs)
		}
		last[ev.Proc] = ev.Time
	}
}

func TestTraceDeterministic(t *testing.T) {
	render := func() string {
		var sb strings.Builder
		for _, ev := range collectTrace(t) {
			sb.WriteString(ev.String())
			sb.WriteByte('\n')
		}
		return sb.String()
	}
	if a, b := render(), render(); a != b {
		t.Fatalf("traces differ:\n%s\n---\n%s", a, b)
	}
}

func TestWriteTracer(t *testing.T) {
	e := NewEngine(ProfileTileGx())
	var buf bytes.Buffer
	e.SetTracer(WriteTracer(&buf))
	a := e.Alloc(1)
	e.Spawn("p", 3, func(p *Proc) {
		p.Write(a, 42)
		p.Work(10)
	})
	e.Run(0)
	out := buf.String()
	for _, want := range []string{"write", "work", "c03", "v=42"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace output missing %q:\n%s", want, out)
		}
	}
}

func TestTracingOffByDefaultIsFree(t *testing.T) {
	// Same run with and without a no-op tracer must give identical
	// simulated time (tracing must not perturb the model).
	run := func(trace bool) uint64 {
		e := NewEngine(ProfileTileGx())
		if trace {
			e.SetTracer(TracerFunc(func(TraceEvent) {}))
		}
		a := e.Alloc(1)
		for i := 0; i < 4; i++ {
			e.Spawn("p", i, func(p *Proc) {
				for j := 0; j < 30; j++ {
					p.FAA(a, 1)
					p.Work(p.Rand() % 10)
				}
			})
		}
		return e.Run(0)
	}
	if a, b := run(false), run(true); a != b {
		t.Fatalf("tracing perturbed the simulation: %d vs %d", a, b)
	}
}

func TestTraceKindString(t *testing.T) {
	if TraceCAS.String() != "cas" || TraceKind(99).String() == "" {
		t.Fatal("TraceKind.String misbehaves")
	}
}
