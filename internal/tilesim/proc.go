package tilesim

import "fmt"

// errAborted unwinds a Proc goroutine when the engine shuts down. It is
// recovered by the Proc runner and never escapes the package.
var errAborted = fmt.Errorf("tilesim: proc aborted")

// Proc is a simulated hardware thread pinned to a core. All of its
// methods must be called only from within the Proc's own body function.
//
// Cost accounting: every operation advances the simulated clock by the
// operation's latency. Cycles spent waiting for the memory system beyond
// a local cache hit are counted as stall cycles (what the paper's Figure
// 4a measures with hardware event counters); cycles spent blocked on an
// empty message queue or a full destination queue are counted as idle
// cycles, matching the paper's distinction between a stalled load-store
// unit and a server with no pending work.
type Proc struct {
	eng  *Engine
	name string
	id   int // dense proc index, used as the message-queue address
	core int // tile the proc is pinned to

	resume  chan struct{}
	parked  chan struct{}
	done    bool
	aborted bool

	// Stats visible to the harness after (or during) a run.
	Ops         uint64 // incremented by the program via AddOps
	StallCycles uint64
	IdleCycles  uint64
	BusyStart   uint64 // time the proc first ran
	EndTime     uint64 // time the proc finished
	CASAttempts uint64
	CASFailures uint64
	AtomicOps   uint64
	MsgsSent    uint64
	MsgsRecvd   uint64
	RMRs        uint64

	rngState uint64

	// prefetch tracks lines whose fill was issued by Prefetch and the
	// time the data arrives; a Read before arrival stalls only for the
	// remainder.
	prefetch map[lineID]uint64
}

// Spawn creates a Proc named name pinned to the given core and schedules
// its body to start at the current simulated time. Core numbering is
// row-major over the mesh.
func (e *Engine) Spawn(name string, core int, body func(p *Proc)) *Proc {
	if core < 0 || core >= e.prof.NumCores() {
		panic(fmt.Sprintf("tilesim: core %d out of range [0,%d)", core, e.prof.NumCores()))
	}
	p := &Proc{
		eng:      e,
		name:     name,
		id:       len(e.procs),
		core:     core,
		resume:   make(chan struct{}),
		parked:   make(chan struct{}),
		rngState: (uint64(len(e.procs))+1)*0x9E3779B97F4A7C15 ^ (e.seed * 0x2545F4914F6CDD1D) ^ 0x9E3779B97F4A7C15,
		prefetch: make(map[lineID]uint64),
	}
	e.procs = append(e.procs, p)
	e.udn.addQueue(p.id, core)
	go func() {
		<-p.resume
		defer func() {
			if r := recover(); r != nil && r != errAborted {
				panic(r)
			}
			p.done = true
			p.EndTime = p.eng.now
			p.parked <- struct{}{}
		}()
		p.BusyStart = p.eng.now
		body(p)
	}()
	e.schedule(e.now, func() { e.runProc(p) })
	return p
}

// runProc hands the CPU to p until it parks again. Exactly one Proc runs
// at any instant, which keeps the simulation sequentially consistent and
// deterministic.
func (e *Engine) runProc(p *Proc) {
	if p.done || p.aborted {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park suspends the Proc until the engine resumes it.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
	if p.aborted {
		panic(errAborted)
	}
}

// advance moves simulated time forward by cost cycles for this Proc,
// attributing stall of those cycles to memory stalls. Cores are
// time-shared: when several Procs share a core (the TILE-Gx multiplexes
// up to four hardware message queues per core, §6 of the paper), an
// operation waits until the co-resident Proc's current operation retires;
// that wait is accounted as idle (descheduled) time. Procs blocked on
// message queues or spinning do not occupy the core.
func (p *Proc) advance(cost, stall uint64) {
	start := p.eng.now
	if cf := p.eng.coreFree[p.core]; cf > start {
		p.IdleCycles += cf - start
		start = cf
	}
	p.eng.coreFree[p.core] = start + cost
	p.StallCycles += stall
	p.eng.schedule(start+cost, func() { p.eng.runProc(p) })
	p.park()
}

// block parks the Proc with no scheduled wake-up; some other event (a
// message delivery, a freed queue slot, a watched write) must call
// unblockAt. Blocked time is accounted as idle.
func (p *Proc) block() {
	p.park()
}

// unblockAt schedules p to resume at time at, accounting the elapsed
// blocked interval since blockedFrom as idle cycles.
func (p *Proc) unblockAt(at, blockedFrom uint64) {
	if at > blockedFrom {
		p.IdleCycles += at - blockedFrom
	}
	p.eng.schedule(at, func() { p.eng.runProc(p) })
}

// Name returns the Proc's spawn name.
func (p *Proc) Name() string { return p.name }

// ID returns the dense Proc index; it doubles as the destination address
// for Send.
func (p *Proc) ID() int { return p.id }

// Core returns the tile this Proc is pinned to.
func (p *Proc) Core() int { return p.core }

// Now returns the current simulated time.
func (p *Proc) Now() uint64 { return p.eng.now }

// AddOps adds n to the Proc's completed-operation counter.
func (p *Proc) AddOps(n uint64) { p.Ops += n }

// Work consumes cycles of purely local computation (ALU work, empty loop
// iterations). It models the paper's "random number of empty loop
// iterations" between operations.
func (p *Proc) Work(cycles uint64) {
	if cycles == 0 {
		return
	}
	p.trace(p.eng.now, TraceWork, 0, 0, cycles)
	p.advance(cycles, 0)
}

// Fence executes a full memory fence: the pipeline stalls while the
// store buffer drains. On the TILE-Gx's relaxed memory model fences are
// required wherever two critical sections may run in parallel on shared
// data (the cost that sinks the two-lock MS-Queue in §5.4); on
// TSO-like profiles FenceLat is near zero.
func (p *Proc) Fence() {
	lat := p.eng.prof.FenceLat
	if lat == 0 {
		return
	}
	p.trace(p.eng.now, TraceFence, 0, 0, lat)
	p.advance(lat, lat)
}

// Rand returns a deterministic pseudo-random uint64 from the Proc's
// private xorshift state (no simulated cost).
func (p *Proc) Rand() uint64 {
	x := p.rngState
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	p.rngState = x
	return x
}

// busyCycles returns total non-idle cycles the proc has spent so far.
func (p *Proc) busyCycles() uint64 {
	end := p.EndTime
	if !p.done {
		end = p.eng.now
	}
	if end < p.BusyStart {
		return 0
	}
	total := end - p.BusyStart
	if total < p.IdleCycles {
		return 0
	}
	return total - p.IdleCycles
}

// BusyCycles returns the cycles the proc spent running or stalled (i.e.,
// excluding idle time blocked on message queues). Per-op totals in the
// paper's Figure 4a are BusyCycles/Ops at the servicing thread.
func (p *Proc) BusyCycles() uint64 { return p.busyCycles() }

// Alloc reserves n words of simulated shared memory on a fresh cache
// line (dynamic node allocation by programs; allocation itself is free,
// as the paper's implementations preallocate or pool their nodes).
func (p *Proc) Alloc(n int) Addr { return p.eng.AllocLine(n) }
