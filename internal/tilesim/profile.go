package tilesim

// Profile holds the chip geometry and the cost model, in cycles. Two
// stock profiles are provided: ProfileTileGx approximates the TILE-Gx8036
// the paper evaluates on (36 cores at 1.2 GHz, atomics executed at two
// memory controllers, UDN message network); ProfileX86Like approximates
// the single-socket x86 parts from the paper's Section 5.5 discussion
// (atomics executed in the local cache, costlier coherence misses, no
// hardware messaging — MP-SERVER/HYBCOMB are not meaningful there).
type Profile struct {
	Name string

	MeshW, MeshH int     // mesh geometry; cores = MeshW*MeshH
	FreqGHz      float64 // used only to convert cycles to Mops/s

	L1Hit    uint64 // load/store hit in the local cache
	FenceLat uint64 // full memory fence (store-buffer drain); ~0 under TSO
	HopLat   uint64 // per-hop NoC latency, each direction
	DirLat   uint64 // directory lookup/update at the home tile
	FwdLat   uint64 // owner-cache forward (dirty read by another core)
	InvalLat uint64 // invalidation round added to a write upgrading a shared line

	// Atomics. If AtomicsAtCtrl, FAA/CAS/SWAP travel to the memory
	// controller owning the line and serialize there (TILE-Gx behaviour,
	// the cause of LCRQ's "false serialization" in §5.4); otherwise they
	// behave like a write that acquires the line in M state plus AtomicALU
	// (x86-like behaviour).
	AtomicsAtCtrl   bool
	AtomicSvc       uint64 // controller occupancy per atomic hitting the same line as the previous one (pipelined hot-word streams, e.g. FAA tickets)
	AtomicSvcSwitch uint64 // controller occupancy when the atomic targets a different line (bank switch; the §5.4 false serialization)
	AtomicLat       uint64 // controller-side latency observed by the issuer (>= AtomicSvc)
	AtomicALU       uint64 // local execution cost when AtomicsAtCtrl is false
	NumCtrls        int
	CtrlTiles       []tileCoord // controller attachment points on the mesh edge

	// UDN message network.
	SendLat   uint64 // CPU cost of a send (asynchronous; sender continues)
	RecvLat   uint64 // CPU cost of receiving one word from the local buffer
	MsgLat    uint64 // fixed injection+ejection pipeline latency per message
	QueueCap  int    // words per hardware queue (TILE-Gx: 118)
	QueuesPer int    // hardware queues multiplexed per core (TILE-Gx: 4)
}

// ProfileTileGx approximates the TILE-Gx8036 of the paper: 6x6 mesh at
// 1.2 GHz, two memory controllers executing all atomics, 4-way
// multiplexed 118-word UDN buffers. Constants were calibrated so the
// paper's headline ratios hold (see DESIGN.md): MP-SERVER ~4x
// SHM-SERVER on a contended counter, HYBCOMB ~2.5x CC-SYNCH, ~30 cycles
// of coherence stalls per op at a shared-memory servicing thread.
func ProfileTileGx() Profile {
	return Profile{
		Name:    "tile-gx8036",
		MeshW:   6,
		MeshH:   6,
		FreqGHz: 1.2,

		L1Hit:    2,
		FenceLat: 22,
		HopLat:   1,
		DirLat:   5,
		FwdLat:   4,
		InvalLat: 4,

		AtomicsAtCtrl:   true,
		AtomicSvc:       4,
		AtomicSvcSwitch: 80,
		AtomicLat:       25,
		AtomicALU:       1,
		NumCtrls:        2,
		CtrlTiles:       []tileCoord{{x: 1, y: -1}, {x: 4, y: 6}},

		SendLat:   2,
		RecvLat:   2,
		MsgLat:    12,
		QueueCap:  118,
		QueuesPer: 4,
	}
}

// ProfileX86Like approximates a single-socket x86 (paper §5.5): atomics
// execute in the local cache (fast, guaranteed-success FAA), but
// coherence misses cost more cycles relative to the core's issue width.
// There is no hardware message network on x86; the UDN parameters are
// retained only so the same programs run for what-if comparisons.
func ProfileX86Like() Profile {
	return Profile{
		Name:    "x86-like",
		MeshW:   5,
		MeshH:   2,
		FreqGHz: 2.4,

		L1Hit:    2,
		FenceLat: 3,
		HopLat:   4,
		DirLat:   18,
		FwdLat:   16,
		InvalLat: 14,

		AtomicsAtCtrl:   false,
		AtomicSvc:       0,
		AtomicSvcSwitch: 0,
		AtomicLat:       0,
		AtomicALU:       12,
		NumCtrls:        1,
		CtrlTiles:       []tileCoord{{x: 2, y: -1}},

		SendLat:   2,
		RecvLat:   2,
		MsgLat:    12,
		QueueCap:  118,
		QueuesPer: 4,
	}
}
