package spin

import (
	"testing"
	"unsafe"

	"hybsync/internal/pad"
)

// TestLockLayout machine-verifies the padding of every lock structure:
// centralized locks round to whole cache lines so two locks (or a lock
// and neighbouring data) never false-share, the ticket lock's dispenser
// and grant counters live on different lines, and the queue-lock nodes
// threads spin on are whole-line allocations.
func TestLockLayout(t *testing.T) {
	for name, size := range map[string]uintptr{
		"TASLock":  unsafe.Sizeof(TASLock{}),
		"TTASLock": unsafe.Sizeof(TTASLock{}),
		"mcsNode":  unsafe.Sizeof(mcsNode{}),
		"clhNode":  unsafe.Sizeof(clhNode{}),
	} {
		if !pad.Padded(size) {
			t.Errorf("%s is %d bytes, not a whole number of cache lines", name, size)
		}
	}
	var tl TicketLock
	if pad.SameLine(unsafe.Offsetof(tl.next), unsafe.Offsetof(tl.owner)) {
		t.Error("TicketLock: next and owner share a cache line")
	}
}
