// Package spin provides classic spin-lock algorithms — test-and-set,
// test-and-test-and-set, ticket, MCS and CLH queue locks — plus an
// adapter that turns any of them into a core.Executor. They are the
// classic-lock baselines of the paper's Section 3: queue locks achieve
// O(1) RMRs per acquisition through local spinning, but unlike the
// server/combiner approaches they still move the protected data to the
// acquiring core on every critical section.
package spin

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"hybsync/internal/backoff"
	"hybsync/internal/core"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// The lock-based executors self-register with the core registry so
// hybsync.New can build them by name. Queue locks (mcs, clh) hand each
// executor handle its own node-carrying lock handle over one shared
// lock; the centralized locks (tas, ttas, ticket) share one instance.
func init() {
	register := func(name string, mk func() func() Lock) {
		core.MustRegister(name, func(obj core.Object, o core.Options) (core.Executor, error) {
			e := NewLockExecutor(obj, mk())
			e.Algo = name
			e.tel = o.Telemetry
			e.Tel = o.Telemetry
			return e, nil
		})
	}
	register("tas-lock", func() func() Lock { l := &TASLock{}; return func() Lock { return l } })
	register("ttas-lock", func() func() Lock { l := &TTASLock{}; return func() Lock { return l } })
	register("ticket-lock", func() func() Lock { l := &TicketLock{}; return func() Lock { return l } })
	register("mcs-lock", func() func() Lock { l := &MCSLock{}; return func() Lock { return l.NewMCSHandle() } })
	register("clh-lock", func() func() Lock { l := NewCLHLock(); return func() Lock { return l.NewCLHHandle() } })
}

// Lock is a mutual-exclusion lock. Locks in this package are not
// reentrant.
type Lock interface {
	Lock()
	Unlock()
}

// CountingLock is a Lock whose acquisition also reports contention.
// LockCounted acquires the lock and returns the number of contended
// steps the acquisition took: 0 for an acquisition that succeeded on
// the first attempt, and otherwise a lock-specific positive count
// (failed swaps for tas/ttas, waiters ahead at arrival for ticket, 1
// for the queue locks, which learn only "had a predecessor"). The
// count feeds the per-handle retry cells below and, through them, the
// adaptive hybrid executor's promotion signal. All locks in this
// package implement it.
type CountingLock interface {
	Lock
	LockCounted() uint64
}

// TASLock is a plain test-and-set lock: every acquisition attempt is a
// remote atomic, so contention floods the interconnect.
//
//hyblint:padded
type TASLock struct {
	v atomic.Bool
	_ [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// Lock implements Lock.
func (l *TASLock) Lock() { l.LockCounted() }

// LockCounted implements CountingLock, counting failed swaps.
func (l *TASLock) LockCounted() uint64 {
	var r uint64
	var b backoff.Backoff
	for l.v.Swap(true) {
		r++
		b.Wait()
	}
	return r
}

// Unlock implements Lock.
func (l *TASLock) Unlock() { l.v.Store(false) }

// TTASLock spins on a local read and only attempts the swap when the
// lock looks free, eliminating most remote atomics.
//
//hyblint:padded
type TTASLock struct {
	v atomic.Bool
	_ [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// Lock implements Lock.
func (l *TTASLock) Lock() { l.LockCounted() }

// LockCounted implements CountingLock, counting each pass that found
// the lock held (the read-spin entry) or lost the swap race.
func (l *TTASLock) LockCounted() uint64 {
	var r uint64
	var b backoff.Backoff
	for {
		if l.v.Load() {
			r++
			for l.v.Load() {
				b.Wait()
			}
		}
		if !l.v.Swap(true) {
			return r
		}
		r++
	}
}

// Unlock implements Lock.
func (l *TTASLock) Unlock() { l.v.Store(false) }

// TicketLock grants the lock in FIFO order with a fetch-and-add ticket
// dispenser (Mellor-Crummey & Scott 1991, §2).
//
//hyblint:padsep
type TicketLock struct {
	next  atomic.Uint64
	_     [pad.CacheLine - unsafe.Sizeof(atomic.Uint64{})%pad.CacheLine]byte
	owner atomic.Uint64
	_     [pad.CacheLine - unsafe.Sizeof(atomic.Uint64{})%pad.CacheLine]byte
}

// Lock implements Lock.
func (l *TicketLock) Lock() { l.LockCounted() }

// LockCounted implements CountingLock; the count is the queue depth at
// arrival (tickets ahead of ours when we drew).
func (l *TicketLock) LockCounted() uint64 {
	t := l.next.Add(1) - 1
	r := t - l.owner.Load()
	var b backoff.Backoff
	for l.owner.Load() != t {
		b.Wait()
	}
	return r
}

// Unlock implements Lock.
func (l *TicketLock) Unlock() { l.owner.Add(1) }

// MCSLock is the Mellor-Crummey & Scott queue lock: each waiter spins on
// a flag in its own queue node, so a lock handover costs O(1) RMRs.
// Nodes are per-handle; use NewMCSHandle per goroutine.
type MCSLock struct {
	tail atomic.Pointer[mcsNode]
}

type mcsNodeHot struct {
	locked atomic.Bool
	next   atomic.Pointer[mcsNode]
}

//hyblint:padded
type mcsNode struct {
	mcsNodeHot
	_ [pad.CacheLine - unsafe.Sizeof(mcsNodeHot{})%pad.CacheLine]byte
}

// MCSHandle is one goroutine's capability to take an MCSLock.
type MCSHandle struct {
	l    *MCSLock
	node *mcsNode
}

// NewMCSHandle creates the per-goroutine handle.
func (l *MCSLock) NewMCSHandle() *MCSHandle {
	return &MCSHandle{l: l, node: &mcsNode{}}
}

// Lock acquires the lock, spinning locally on this handle's node.
func (h *MCSHandle) Lock() { h.LockCounted() }

// LockCounted implements CountingLock: 1 when the tail swap revealed a
// predecessor to queue behind, 0 for the uncontended fast path.
func (h *MCSHandle) LockCounted() uint64 {
	n := h.node
	n.next.Store(nil)
	n.locked.Store(true)
	pred := h.l.tail.Swap(n)
	if pred == nil {
		return 0
	}
	pred.next.Store(n)
	var b backoff.Backoff
	for n.locked.Load() {
		b.Wait()
	}
	return 1
}

// Unlock releases the lock, handing it to the queue successor if any.
func (h *MCSHandle) Unlock() {
	n := h.node
	next := n.next.Load()
	if next == nil {
		if h.l.tail.CompareAndSwap(n, nil) {
			return
		}
		var b backoff.Backoff
		for next = n.next.Load(); next == nil; next = n.next.Load() {
			b.Wait() // successor is between SWAP and next.Store
		}
	}
	next.locked.Store(false)
}

// CLHLock is the Craig / Landin-Hagersten queue lock: waiters spin on
// their predecessor's node.
type CLHLock struct {
	tail atomic.Pointer[clhNode]
}

//hyblint:padded
type clhNode struct {
	locked atomic.Bool
	_      [pad.CacheLine - unsafe.Sizeof(atomic.Bool{})%pad.CacheLine]byte
}

// CLHHandle is one goroutine's capability to take a CLHLock.
type CLHHandle struct {
	l    *CLHLock
	node *clhNode
	pred *clhNode
}

// NewCLHLock creates a CLH lock (it needs an initial dummy node, so the
// zero value is not usable).
func NewCLHLock() *CLHLock {
	l := &CLHLock{}
	l.tail.Store(&clhNode{}) // initial unlocked dummy
	return l
}

// NewCLHHandle creates the per-goroutine handle.
func (l *CLHLock) NewCLHHandle() *CLHHandle {
	return &CLHHandle{l: l, node: &clhNode{}}
}

// Lock acquires the lock, spinning on the predecessor's node.
func (h *CLHHandle) Lock() { h.LockCounted() }

// LockCounted implements CountingLock: 1 when the predecessor still
// held its node locked on arrival, 0 otherwise.
func (h *CLHHandle) LockCounted() uint64 {
	h.node.locked.Store(true)
	h.pred = h.l.tail.Swap(h.node)
	if !h.pred.locked.Load() {
		return 0
	}
	var b backoff.Backoff
	for h.pred.locked.Load() {
		b.Wait()
	}
	return 1
}

// Unlock releases the lock; the predecessor's node is recycled as this
// handle's next node (the classic CLH node exchange).
func (h *CLHHandle) Unlock() {
	n := h.node
	h.node = h.pred
	n.locked.Store(false)
}

// LockExecutor adapts a Lock (or per-handle lock factory) into a
// core.Executor, so the repository's concurrent objects can run over
// classic locks as an extra baseline. The batch contract maps directly:
// an ApplyBatch executes its whole run against the object under ONE
// lock acquisition — the lock-world equivalent of a combiner round,
// except the batch must come from a single thread instead of being
// collected across threads.
type LockExecutor struct {
	core.PoisonLatch
	obj     core.Object
	factory func() Lock
	tel     *telemetry.Telemetry // metric core (Options.Telemetry; nil = disarmed)
	closed  atomic.Bool

	mu    sync.Mutex
	cells []*retryCell // one per handle, appended under mu
}

// retryCellHot is one handle's acquisition counters: acq counts lock
// acquisitions (= dispatch runs), retries the contended steps those
// acquisitions reported (see CountingLock).
type retryCellHot struct {
	acq     atomic.Uint64
	retries atomic.Uint64
}

// retryCell pads the counters to a whole cache line so each handle's
// hot-path increments stay on a private line; the executor sums them
// only on the Stats/Retries read path.
//
//hyblint:padded
type retryCell struct {
	retryCellHot
	_ [pad.CacheLine - unsafe.Sizeof(retryCellHot{})%pad.CacheLine]byte
}

// Telemetry implements core.TelemetrySource.
func (e *LockExecutor) Telemetry() *telemetry.Telemetry { return e.tel }

// Stats implements core.StatsSource: every acquisition dispatches its
// own run and nothing is ever combined on behalf of another thread, so
// rounds is the acquisition count and combined is always 0. Like every
// StatsSource, the totals are exact only at quiescence.
func (e *LockExecutor) Stats() (rounds, combined uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, c := range e.cells {
		rounds += c.acq.Load()
	}
	return rounds, 0
}

// Retries implements core.RetryStats: the cumulative contended-
// acquisition steps across all handles — the contention gauge the
// adaptive hybrid executor promotes on. Exact at quiescence.
func (e *LockExecutor) Retries() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	var r uint64
	for _, c := range e.cells {
		r += c.retries.Load()
	}
	return r
}

// NewLockExecutor builds an executor over locks produced by factory (one
// per handle for handle-based locks; return the same Lock for global
// ones).
func NewLockExecutor(obj core.Object, factory func() Lock) *LockExecutor {
	e := &LockExecutor{obj: obj, factory: factory}
	e.Algo = "lock"
	return e
}

// NewHandle implements core.Executor. Lock executors have no structural
// bound on participants, so handles are unlimited until Close.
func (e *LockExecutor) NewHandle() (core.Handle, error) {
	if err := e.Err(); err != nil {
		return nil, fmt.Errorf("spin: lock executor: %w", err)
	}
	if e.closed.Load() {
		return nil, fmt.Errorf("spin: lock executor: %w", core.ErrClosed)
	}
	cell := &retryCell{}
	e.mu.Lock()
	e.cells = append(e.cells, cell)
	e.mu.Unlock()
	h := &lockHandle{e: e, obj: e.obj, lock: e.factory(), cell: cell, rec: e.tel.Recorder()}
	h.counted, _ = h.lock.(CountingLock)
	return h, nil
}

// Close implements core.Executor. A lock executor owns no background
// resources; closing only fails future NewHandle calls. Idempotent; on
// a poisoned executor it reports the *PoisonError.
func (e *LockExecutor) Close() error {
	e.closed.Store(true)
	return e.Err()
}

type lockHandle struct {
	e       *LockExecutor
	obj     core.Object
	lock    Lock
	counted CountingLock // h.lock when it counts (all built-ins); nil otherwise
	cell    *retryCell
	im      core.Immediate
	rec     *telemetry.Recorder

	one    [1]core.Req // scalar batch scratch
	oneRet [1]uint64
	drop   []uint64 // discarded-results scratch for ApplyBatch(reqs, nil)
}

// acquire takes the handle's lock, feeding the acquisition and any
// contended-retry steps into the handle's padded cell (and the armed
// telemetry core, on the contended path only — an uncontended
// acquisition pays one private-line add and nothing shared).
func (h *lockHandle) acquire() {
	if h.counted == nil {
		h.lock.Lock()
	} else if r := h.counted.LockCounted(); r != 0 {
		h.cell.retries.Add(r)
		h.e.tel.NoteLockRetries(r)
	}
	h.cell.acq.Add(1)
}

// Apply implements core.Handle: a critical section is a 1-batch. The
// dispatch runs through the poison latch — recovery happens inside it,
// so a panicking object still releases the lock and later holders are
// never wedged; they observe the poisoned zero instead.
func (h *lockHandle) Apply(op, arg uint64) uint64 {
	if h.e.Poisoned() {
		return 0
	}
	// One latency sample = one lock-protected critical section; every
	// dispatch records its (length-1) run so the run-length histogram
	// reflects the lock path's no-batching baseline.
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h.one[0] = core.Req{Op: op, Arg: arg}
	h.acquire()
	h.e.PoisonLatch.Dispatch(h.obj, h.one[:], h.oneRet[:])
	h.lock.Unlock()
	h.rec.RunLen(1)
	if sampled {
		h.rec.Latency(t0)
	}
	return h.oneRet[0]
}

// Submit implements core.Handle with immediate completion: a lock
// acquisition cannot be deferred or overlapped, so the operation
// executes on the spot and the result is banked for Wait. On a
// poisoned executor it fails fast with the *PoisonError.
func (h *lockHandle) Submit(op, arg uint64) (core.Ticket, error) {
	if err := h.e.Err(); err != nil {
		return core.Ticket{}, err
	}
	return h.im.Complete(h.Apply(op, arg)), nil
}

// Wait implements core.Handle.
func (h *lockHandle) Wait(t core.Ticket) uint64 { return h.im.Take(t) }

// TryWait and WaitTimeout are trivially Wait: every submission
// completed at Submit time, so an outstanding ticket is always ready.
func (h *lockHandle) TryWait(t core.Ticket) (uint64, error) {
	return h.im.Take(t), h.e.Err()
}

// WaitTimeout implements core.Handle.
func (h *lockHandle) WaitTimeout(t core.Ticket, d time.Duration) (uint64, error) {
	return h.im.Take(t), h.e.Err()
}

// Err implements core.Handle.
func (h *lockHandle) Err() error { return h.e.Err() }

// Post implements core.Handle: execute now, drop the result.
func (h *lockHandle) Post(op, arg uint64) error {
	if err := h.e.Err(); err != nil {
		return err
	}
	h.Apply(op, arg)
	return nil
}

// Flush implements core.Handle: every submission completed at Submit
// time, so there is never anything in flight.
func (h *lockHandle) Flush() {}

// ApplyBatch implements core.Handle: the whole batch executes as one
// DispatchBatch under a single lock acquisition, amortizing both the
// handover and the dispatch indirection across the run.
func (h *lockHandle) ApplyBatch(reqs []core.Req, results []uint64) {
	if len(reqs) == 0 {
		return
	}
	if h.e.Poisoned() {
		if results != nil {
			for i := range reqs {
				results[i] = 0
			}
		}
		return
	}
	if len(reqs) == 1 { // a 1-batch is exactly the scalar critical section
		v := h.Apply(reqs[0].Op, reqs[0].Arg)
		if results != nil {
			results[0] = v
		}
		return
	}
	res := results
	if res == nil {
		if cap(h.drop) < len(reqs) {
			h.drop = make([]uint64, len(reqs))
		}
		res = h.drop[:len(reqs)]
	}
	sampled := h.rec.Sample()
	var t0 time.Time
	if sampled {
		t0 = time.Now()
	}
	h.acquire()
	h.e.PoisonLatch.Dispatch(h.obj, reqs, res[:len(reqs)])
	h.lock.Unlock()
	h.rec.RunLen(len(reqs))
	if sampled {
		h.rec.Latency(t0)
	}
}
