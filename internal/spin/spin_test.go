package spin

import (
	"sync"
	"sync/atomic"
	"testing"

	"hybsync/internal/core"
)

// lockFactories enumerates every lock, each as a per-goroutine factory
// over one shared lock instance.
func lockFactories() map[string]func() func() Lock {
	return map[string]func() func() Lock{
		"tas":    func() func() Lock { l := &TASLock{}; return func() Lock { return l } },
		"ttas":   func() func() Lock { l := &TTASLock{}; return func() Lock { return l } },
		"ticket": func() func() Lock { l := &TicketLock{}; return func() Lock { return l } },
		"mcs":    func() func() Lock { l := &MCSLock{}; return func() Lock { return l.NewMCSHandle() } },
		"clh":    func() func() Lock { l := NewCLHLock(); return func() Lock { return l.NewCLHHandle() } },
	}
}

// TestMutualExclusion hammers a plain counter under each lock; any
// missing exclusion loses increments (and trips the race detector,
// because the counter is intentionally non-atomic).
func TestMutualExclusion(t *testing.T) {
	const goroutines, per = 8, 5000
	for name, mkf := range lockFactories() {
		t.Run(name, func(t *testing.T) {
			factory := mkf()
			var counter uint64
			var inCS atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					l := factory()
					for i := 0; i < per; i++ {
						l.Lock()
						if inCS.Add(1) != 1 {
							t.Error("two goroutines inside the critical section")
						}
						counter++
						inCS.Add(-1)
						l.Unlock()
					}
				}()
			}
			wg.Wait()
			if counter != goroutines*per {
				t.Fatalf("counter = %d, want %d", counter, goroutines*per)
			}
		})
	}
}

// TestTicketLockFIFO verifies ticket order is granted in FIFO order when
// acquired sequentially.
func TestTicketLockFIFO(t *testing.T) {
	l := &TicketLock{}
	for i := 0; i < 100; i++ {
		l.Lock()
		l.Unlock()
	}
	if l.next.Load() != 100 || l.owner.Load() != 100 {
		t.Fatalf("ticket state: next=%d owner=%d", l.next.Load(), l.owner.Load())
	}
}

// TestMCSUncontended covers the fast path (tail CAS to nil on unlock).
func TestMCSUncontended(t *testing.T) {
	l := &MCSLock{}
	h := l.NewMCSHandle()
	for i := 0; i < 100; i++ {
		h.Lock()
		h.Unlock()
	}
	if l.tail.Load() != nil {
		t.Fatal("tail not nil after uncontended use")
	}
}

// TestCLHNodeRecycling covers the predecessor-node exchange.
func TestCLHNodeRecycling(t *testing.T) {
	l := NewCLHLock()
	h := l.NewCLHHandle()
	for i := 0; i < 100; i++ {
		h.Lock()
		h.Unlock()
	}
}

// TestLockExecutor adapts a lock into the Executor interface.
func TestLockExecutor(t *testing.T) {
	var state uint64
	l := &MCSLock{}
	ex := NewLockExecutor(core.Func(func(op, arg uint64) uint64 {
		v := state
		state = v + arg
		return v
	}), func() Lock { return l.NewMCSHandle() })
	var _ core.Executor = ex

	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := core.MustHandle(ex)
			for i := 0; i < per; i++ {
				h.Apply(0, 1)
			}
		}()
	}
	wg.Wait()
	if state != goroutines*per {
		t.Fatalf("state = %d, want %d", state, goroutines*per)
	}
}
