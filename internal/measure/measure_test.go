package measure

import (
	"runtime"
	"testing"
	"time"

	"hybsync/harness"
	"hybsync/internal/benchfmt"
)

const dur = 10 * time.Millisecond

func TestCounter(t *testing.T) {
	rec, err := Counter("hybcomb", 2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bench != "counter" || rec.Algo != "hybcomb" || rec.Threads != 2 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Ops == 0 || rec.Mops <= 0 || rec.NsPerOp <= 0 {
		t.Fatalf("no throughput in %+v", rec)
	}
	if _, err := Counter("no-such-algo", 1, dur); err == nil {
		t.Fatal("unknown algo accepted")
	}
}

func TestSharded(t *testing.T) {
	dist, err := harness.ParseDist("zipf:0.99", 1024)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Sharded("mpserver", 2, dist, 2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bench != "sharded" || rec.Shards != 2 || rec.Dist != "zipf:0.99" {
		t.Fatalf("record %+v", rec)
	}
	if len(rec.ShardOps) != 2 || rec.ShardFairness == nil {
		t.Fatalf("no shard profile in %+v", rec)
	}
}

func TestAsync(t *testing.T) {
	rec, err := Async("mpserver", 4, 2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Bench != "async" || rec.Depth != 4 || rec.Ops == 0 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Pipe == nil {
		t.Fatalf("mpserver async record has no pipeline stats: %+v", rec)
	}
}

// Regression test for the first bug the hybsweep grid surfaced: at
// gomaxprocs=2, ccsynch, threads>gomaxprocs, depth=8, the async bench
// deadlocked intermittently (~2 in 3 runs) because workers exited the
// measurement loop with unwaited cells and the handle Flush only ran
// after every worker returned — while a stopping worker's unwaited
// cell held CC-Synch's dormant combiner duty that a still-running
// worker's Wait was spinning on. The fix drains each handle inside its
// own worker goroutine (harness.RunNativeDrain); this test replays the
// failing cell repeatedly under a watchdog.
func TestAsyncDrainLiveness(t *testing.T) {
	prev := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(prev)
	for i := 0; i < 6; i++ {
		done := make(chan error, 1)
		go func() {
			_, err := Async("ccsynch", 8, 4, 30*time.Millisecond)
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("run %d: async ccsynch drain deadlocked (goroutine leaked)", i)
		}
	}
}

// The batch core must emit honest records: PathBatch, operation-scaled
// throughput, and no combiner rounds/combined (their unit is
// ill-defined for batched submissions).
func TestBatchStatsHonesty(t *testing.T) {
	rec, err := Batch("hybcomb", 8, 2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Path != benchfmt.PathBatch || rec.Batch != 8 {
		t.Fatalf("record %+v", rec)
	}
	if rec.Rounds != 0 || rec.Combined != 0 {
		t.Fatalf("batch record carries combiner stats: %+v", rec)
	}
	if rec.Ops%8 != 0 || rec.Ops == 0 {
		t.Fatalf("ops %d not a multiple of batch size", rec.Ops)
	}

	apply, err := BatchApply("hybcomb", 2, dur)
	if err != nil {
		t.Fatal(err)
	}
	if apply.Path != benchfmt.PathApply || apply.Batch != 0 {
		t.Fatalf("apply record %+v", apply)
	}
	if apply.Rounds+apply.Combined != apply.Ops {
		t.Fatalf("scalar invariant rounds+combined==ops broken: %d+%d != %d",
			apply.Rounds, apply.Combined, apply.Ops)
	}
}
