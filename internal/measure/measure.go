// Package measure holds the measurement cores shared by cmd/hybbench
// and cmd/hybsweep: one function per bench leg (counter, sharded,
// async, batch), each driving the native harness for a fixed duration
// and returning one benchfmt.Record. Factoring them here means the
// point benchmark and the grid sweep measure the same thing by
// construction — a sweep cell at depth 8 runs the exact code
// `hybbench -bench async -depth 8` runs.
package measure

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hybsync"
	"hybsync/harness"
	"hybsync/internal/benchfmt"
	"hybsync/internal/chaos"
	"hybsync/internal/telemetry"
	"hybsync/object"
)

// telemetryOff inverts the default: measurement cores arm telemetry
// unless SetTelemetry(false) disarmed it, so records carry latency and
// run-length fields out of the box and the overhead-sensitive CI gates
// opt out explicitly (hybbench/hybsweep -telemetry=false).
var telemetryOff atomic.Bool

// SetTelemetry arms (true, the default) or disarms (false) telemetry
// for every subsequently started measurement core.
func SetTelemetry(on bool) { telemetryOff.Store(!on) }

// newTel returns a fresh armed metric core, or nil when SetTelemetry
// disarmed measurement telemetry — nil flows through WithTelemetry and
// every record hook as the zero-cost disarmed state.
func newTel() *telemetry.Telemetry {
	if telemetryOff.Load() {
		return nil
	}
	return telemetry.New()
}

// opts sizes every construction generously enough for any thread
// count the benches drive, and attaches tel as its metric core.
func opts(tel *telemetry.Telemetry) []hybsync.Option {
	return []hybsync.Option{hybsync.WithMaxThreads(256), hybsync.WithTelemetry(tel)}
}

// telFields copies tel's merged histograms onto rec: the sampled
// blocking-latency percentiles and the unsampled run-length profile.
// A nil tel (telemetry disarmed) or an empty histogram leaves the
// corresponding field absent, matching the pointer-omitted schema.
func telFields(rec *benchfmt.Record, tel *telemetry.Telemetry) {
	if tel == nil {
		return
	}
	snap := tel.Snapshot()
	if l := snap.Latency; l.Count > 0 {
		rec.Lat = &benchfmt.Latency{
			P50:     l.Quantile(0.50),
			P90:     l.Quantile(0.90),
			P99:     l.Quantile(0.99),
			P999:    l.Quantile(0.999),
			Max:     l.Max,
			Samples: l.Count,
		}
	}
	if r := snap.RunLen; r.Count > 0 {
		rec.RunLen = &benchfmt.RunLength{
			P50:        r.Quantile(0.50),
			P99:        r.Quantile(0.99),
			Max:        r.Max,
			Mean:       r.Mean(),
			Dispatches: r.Count,
		}
	}
}

// The live-executor registry: every measurement core tracks the
// executor (or executor-backed object) it is driving for the duration
// of the run. A sweep harness whose per-cell timeout fires can then
// call PoisonLive to condemn whatever the abandoned cell leaked — its
// waiters unblock with ErrPoisoned and its server goroutines drain and
// exit — instead of leaking a wedged construction until process exit.
var (
	liveMu sync.Mutex
	live   = make(map[any]struct{})
)

// poisonable matches hybsync.Poisonable and the object wrappers'
// Poison passthroughs.
type poisonable interface{ Poison(v any) }

// track registers x as live under label (and, when tel is armed, in
// the telemetry registry the /debug/hybsync endpoint walks) and
// returns the combined untrack function (defer it at the start of a
// measurement core).
func track(x any, label string, tel *telemetry.Telemetry) func() {
	liveMu.Lock()
	live[x] = struct{}{}
	liveMu.Unlock()
	unreg := telemetry.Register(label, tel)
	return func() {
		unreg()
		liveMu.Lock()
		delete(live, x)
		liveMu.Unlock()
	}
}

// PoisonLive condemns every live tracked executor with reason and
// returns how many accepted the fault. It is safe from any goroutine —
// the sweep runner's OnTimeout hook calls it while the abandoned cell
// is still running. Each condemnation is counted in the telemetry
// registry's timeout-condemns counter.
func PoisonLive(reason any) int {
	liveMu.Lock()
	defer liveMu.Unlock()
	n := 0
	for x := range live {
		if p, ok := x.(poisonable); ok {
			p.Poison(reason)
			telemetry.NoteCondemned()
			n++
		}
	}
	return n
}

// pipeOf extracts the pipeline counters when src implements
// hybsync.PipelineStats (read after every handle flushed).
func pipeOf(src any) *benchfmt.Pipeline {
	if p, ok := src.(hybsync.PipelineStats); ok {
		st, d := p.Pipeline()
		return &benchfmt.Pipeline{SubmitStalls: st, MaxDepth: d}
	}
	return nil
}

// Counter measures one counter-increment point: th goroutines of
// blocking Inc round trips through algo (plus the executor's combining
// stats, when it keeps them).
func Counter(algo string, th int, dur time.Duration) (benchfmt.Record, error) {
	tel := newTel()
	c, err := object.NewCounter(algo, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewCounter(%s): %w", algo, err)
	}
	defer c.Close()
	defer track(c, "counter/"+algo, tel)()
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		return func(uint64) { h.Inc() }
	})
	rec := benchfmt.FromNative("counter", algo, th, res)
	rec.Rounds, rec.Combined, _ = c.Stats()
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}

// Sharded measures one sharded-counter point: th goroutines drive
// keyed increments (keys drawn from dist) through a router over
// nshards executors of algo. The record carries the per-shard
// occupancy profile and its max/min fairness.
func Sharded(algo string, nshards int, dist harness.Dist, th int, dur time.Duration) (benchfmt.Record, error) {
	tel := newTel()
	c, err := object.NewShardedCounter(algo, nshards, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewShardedCounter(%s, %d): %w", algo, nshards, err)
	}
	defer c.Close()
	defer track(c, "sharded/"+algo, tel)()
	res := harness.RunNative(th, dur, 50, func(t int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		draw := dist.Sampler(t)
		return func(uint64) {
			if _, err := h.Inc(draw()); err != nil {
				panic(err)
			}
		}
	})
	rec := benchfmt.FromNative("sharded", algo, th, res)
	rec.Shards, rec.Dist = nshards, dist.Label()
	occ := c.Occupancy()
	sf := harness.NativeResult{PerThread: occ}.Fairness()
	rec.ShardOps, rec.ShardFairness = occ, &sf
	rec.Rounds, rec.Combined, _ = c.Stats()
	if st, d, ok := c.Pipeline(); ok {
		rec.Pipe = &benchfmt.Pipeline{SubmitStalls: st, MaxDepth: d}
	}
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}

// Async measures one pipelined point: th goroutines drive the native
// counter workload keeping up to depth submissions outstanding per
// handle (a sliding window of Submit with Wait on the oldest once the
// window fills). depth 1 degenerates to the blocking Apply round
// trip; deeper windows let a pipelining construction overlap
// submissions.
func Async(algo string, depth, th int, dur time.Duration) (benchfmt.Record, error) {
	var state uint64
	tel := newTel()
	ex, err := hybsync.New(algo, func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("New(%s): %w", algo, err)
	}
	defer track(ex, "async/"+algo, tel)()
	// Each worker drains its own window in its own goroutine (the drain
	// half of RunNativeDrain), while its peers are still running: with
	// CC-Synch a stopping thread's unwaited cell can hold the combiner
	// duty another thread's in-loop Wait is spinning on, so deferring
	// every Flush until all workers exited would deadlock.
	res := harness.RunNativeDrain(th, dur, 50, func(t int) (func(uint64), func()) {
		h := hybsync.MustHandle(ex)
		win := make([]hybsync.Ticket, depth)
		var head, count int
		body := func(uint64) {
			if count == depth {
				h.Wait(win[head])
				head = (head + 1) % depth
				count--
			}
			tk, err := h.Submit(0, 0)
			if err != nil {
				panic(err)
			}
			win[(head+count)%depth] = tk
			count++
		}
		return body, h.Flush
	})
	rec := benchfmt.FromNative("async", algo, th, res)
	rec.Depth = depth
	if s, ok := ex.(hybsync.StatsSource); ok {
		rec.Rounds, rec.Combined = s.Stats()
	}
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}

// Phases measures one phase-shifting point: th goroutines drive
// blocking counter increments through algo, but only during the burst
// half of each phase period (all threads burst together — see
// harness.Phases). This is the workload the adaptive "hybrid"
// construction targets: contention arrives in waves, so the right
// construction differs between the burst and the tail of each period.
// The record carries the phase spec in the dist field and, when algo
// adapts, its promotion/demotion counts.
func Phases(algo string, ph harness.Phases, th int, dur time.Duration) (benchfmt.Record, error) {
	var state uint64
	tel := newTel()
	ex, err := hybsync.New(algo, func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("New(%s): %w", algo, err)
	}
	defer track(ex, "phases/"+algo, tel)()
	res := ph.RunPhased(th, dur, 50, func(int) (func(uint64), func()) {
		h := hybsync.MustHandle(ex)
		return func(uint64) { h.Apply(0, 0) }, nil
	})
	rec := benchfmt.FromNative("phases", algo, th, res)
	rec.Dist = ph.Label()
	if s, ok := ex.(hybsync.StatsSource); ok {
		rec.Rounds, rec.Combined = s.Stats()
	}
	rec.Pipe = pipeOf(ex)
	if a, ok := ex.(hybsync.AdaptiveStats); ok {
		p, d := a.Transitions()
		rec.Adapt = &benchfmt.Adaptive{Promotions: p, Demotions: d}
	}
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	if state != res.Ops {
		return benchfmt.Record{}, fmt.Errorf("phases(%s): conservation violated: object executed %d ops, harness counted %d",
			algo, state, res.Ops)
	}
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}

// batchCounter is the batch bench's native object: a run of increments
// reads the shared value once, hands out results from a register and
// writes the sum back — the object-side amortization DispatchBatch
// exists for.
type batchCounter struct{ state uint64 }

func (o *batchCounter) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	v := o.state
	for i := range reqs {
		results[i] = v
		v++
	}
	o.state = v
}

// Batch measures one batched point: th goroutines each repeatedly
// issue one ApplyBatch of b increments (reqs/results reused across
// calls). Ops and the per-thread counts are rescaled to individual
// operations, so ns_per_op and fairness are directly comparable with
// the per-op Apply path; the combiner rounds/combined counters are NOT
// attached — their unit is ill-defined for batched submissions
// (benchfmt.Record.Finish strips them anyway).
func Batch(algo string, b, th int, dur time.Duration) (benchfmt.Record, error) {
	obj := &batchCounter{}
	tel := newTel()
	ex, err := hybsync.NewObject(algo, obj, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	defer track(ex, "batch/"+algo, tel)()
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		reqs := make([]hybsync.Req, b)
		rets := make([]uint64, b)
		return func(uint64) { h.ApplyBatch(reqs, rets) }
	})
	// One iteration is b operations; rescale so Ops/Mops/fairness are
	// per operation. ApplyBatch blocks until its batch completed, so
	// nothing is in flight at close.
	res.Ops *= uint64(b)
	for i := range res.PerThread {
		res.PerThread[i] *= uint64(b)
	}
	rec := benchfmt.FromNative("batch", algo, th, res)
	rec.Batch, rec.Path = b, benchfmt.PathBatch
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}

// Chaos measures one fault-tolerance point: th goroutines drive the
// batch counter through algo while a seeded schedule perturber shakes
// every backoff wait and the object injects periodic delays — the
// throughput cost of running under adversarial scheduling. The run is
// bracketed by two checks that fail the measurement loudly rather than
// record garbage: a containment probe (a second executor of the same
// construction over a panic-injected object must poison cleanly while
// the measured one keeps running) and a conservation check (the
// counter's final state must equal the operations the harness
// counted).
func Chaos(algo string, seed uint64, th int, dur time.Duration) (benchfmt.Record, error) {
	restore := chaos.NewPerturber(seed).Install()
	defer restore()

	// One metric core spans the probe and the measured run, so the
	// record's fault counters include the probe's deliberate poison —
	// chaos output proves containment happened, not just that nothing
	// crashed.
	tel := newTel()
	condemned0 := telemetry.CondemnedCount()

	// Containment probe: an injected panic in this construction must
	// poison that executor without taking the process (or the measured
	// executor below) with it.
	probe, err := hybsync.NewObject(algo, chaos.PanicOnNth(&batchCounter{}, 1), opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	hybsync.MustHandle(probe).Apply(0, 0)
	if probe.Err() == nil {
		probe.Close()
		return benchfmt.Record{}, fmt.Errorf("chaos(%s): injected panic did not poison the probe executor", algo)
	}
	probe.Close() // reports the probe's PoisonError; expected

	base := &batchCounter{}
	obj := chaos.Delay(base, seed, 256, 50*time.Microsecond)
	ex, err := hybsync.NewObject(algo, obj, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	defer track(ex, "chaos/"+algo, tel)()
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		return func(uint64) { h.Apply(0, 0) }
	})
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	if base.state != res.Ops {
		return benchfmt.Record{}, fmt.Errorf("chaos(%s): conservation violated: object executed %d ops, harness counted %d",
			algo, base.state, res.Ops)
	}
	rec := benchfmt.FromNative("chaos", algo, th, res)
	telFields(&rec, tel)
	if tel != nil {
		snap := tel.Snapshot()
		rec.Faults = &benchfmt.Faults{
			Poisons:         snap.Poisons,
			StallReports:    snap.Stalls,
			TimeoutCondemns: telemetry.CondemnedCount() - condemned0,
		}
	}
	rec.Finish()
	return rec, nil
}

// BatchApply is Batch's per-op baseline: the same counter object
// driven through scalar Apply calls (the legacy path's cost per
// operation). Records carry path "apply" and no batch field.
func BatchApply(algo string, th int, dur time.Duration) (benchfmt.Record, error) {
	obj := &batchCounter{}
	tel := newTel()
	ex, err := hybsync.NewObject(algo, obj, opts(tel)...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	defer track(ex, "batch-apply/"+algo, tel)()
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		return func(uint64) { h.Apply(0, 0) }
	})
	rec := benchfmt.FromNative("batch", algo, th, res)
	rec.Path = benchfmt.PathApply
	if s, ok := ex.(hybsync.StatsSource); ok {
		rec.Rounds, rec.Combined = s.Stats()
	}
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	telFields(&rec, tel)
	rec.Finish()
	return rec, nil
}
