// Package measure holds the measurement cores shared by cmd/hybbench
// and cmd/hybsweep: one function per bench leg (counter, sharded,
// async, batch), each driving the native harness for a fixed duration
// and returning one benchfmt.Record. Factoring them here means the
// point benchmark and the grid sweep measure the same thing by
// construction — a sweep cell at depth 8 runs the exact code
// `hybbench -bench async -depth 8` runs.
package measure

import (
	"fmt"
	"time"

	"hybsync"
	"hybsync/harness"
	"hybsync/internal/benchfmt"
	"hybsync/object"
)

// opts sizes every construction generously enough for any thread
// count the benches drive.
func opts() []hybsync.Option { return []hybsync.Option{hybsync.WithMaxThreads(256)} }

// pipeOf extracts the pipeline counters when src implements
// hybsync.PipelineStats (read after every handle flushed).
func pipeOf(src any) *benchfmt.Pipeline {
	if p, ok := src.(hybsync.PipelineStats); ok {
		st, d := p.Pipeline()
		return &benchfmt.Pipeline{SubmitStalls: st, MaxDepth: d}
	}
	return nil
}

// Counter measures one counter-increment point: th goroutines of
// blocking Inc round trips through algo (plus the executor's combining
// stats, when it keeps them).
func Counter(algo string, th int, dur time.Duration) (benchfmt.Record, error) {
	c, err := object.NewCounter(algo, opts()...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewCounter(%s): %w", algo, err)
	}
	defer c.Close()
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		return func(uint64) { h.Inc() }
	})
	rec := benchfmt.FromNative("counter", algo, th, res)
	rec.Rounds, rec.Combined, _ = c.Stats()
	rec.Finish()
	return rec, nil
}

// Sharded measures one sharded-counter point: th goroutines drive
// keyed increments (keys drawn from dist) through a router over
// nshards executors of algo. The record carries the per-shard
// occupancy profile and its max/min fairness.
func Sharded(algo string, nshards int, dist harness.Dist, th int, dur time.Duration) (benchfmt.Record, error) {
	c, err := object.NewShardedCounter(algo, nshards, opts()...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewShardedCounter(%s, %d): %w", algo, nshards, err)
	}
	defer c.Close()
	res := harness.RunNative(th, dur, 50, func(t int) func(uint64) {
		h, err := c.NewHandle()
		if err != nil {
			panic(err)
		}
		draw := dist.Sampler(t)
		return func(uint64) {
			if _, err := h.Inc(draw()); err != nil {
				panic(err)
			}
		}
	})
	rec := benchfmt.FromNative("sharded", algo, th, res)
	rec.Shards, rec.Dist = nshards, dist.Label()
	occ := c.Occupancy()
	sf := harness.NativeResult{PerThread: occ}.Fairness()
	rec.ShardOps, rec.ShardFairness = occ, &sf
	rec.Rounds, rec.Combined, _ = c.Stats()
	if st, d, ok := c.Pipeline(); ok {
		rec.Pipe = &benchfmt.Pipeline{SubmitStalls: st, MaxDepth: d}
	}
	rec.Finish()
	return rec, nil
}

// Async measures one pipelined point: th goroutines drive the native
// counter workload keeping up to depth submissions outstanding per
// handle (a sliding window of Submit with Wait on the oldest once the
// window fills). depth 1 degenerates to the blocking Apply round
// trip; deeper windows let a pipelining construction overlap
// submissions.
func Async(algo string, depth, th int, dur time.Duration) (benchfmt.Record, error) {
	var state uint64
	ex, err := hybsync.New(algo, func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}, opts()...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("New(%s): %w", algo, err)
	}
	// Each worker drains its own window in its own goroutine (the drain
	// half of RunNativeDrain), while its peers are still running: with
	// CC-Synch a stopping thread's unwaited cell can hold the combiner
	// duty another thread's in-loop Wait is spinning on, so deferring
	// every Flush until all workers exited would deadlock.
	res := harness.RunNativeDrain(th, dur, 50, func(t int) (func(uint64), func()) {
		h := hybsync.MustHandle(ex)
		win := make([]hybsync.Ticket, depth)
		var head, count int
		body := func(uint64) {
			if count == depth {
				h.Wait(win[head])
				head = (head + 1) % depth
				count--
			}
			tk, err := h.Submit(0, 0)
			if err != nil {
				panic(err)
			}
			win[(head+count)%depth] = tk
			count++
		}
		return body, h.Flush
	})
	rec := benchfmt.FromNative("async", algo, th, res)
	rec.Depth = depth
	if s, ok := ex.(hybsync.StatsSource); ok {
		rec.Rounds, rec.Combined = s.Stats()
	}
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	rec.Finish()
	return rec, nil
}

// batchCounter is the batch bench's native object: a run of increments
// reads the shared value once, hands out results from a register and
// writes the sum back — the object-side amortization DispatchBatch
// exists for.
type batchCounter struct{ state uint64 }

func (o *batchCounter) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	v := o.state
	for i := range reqs {
		results[i] = v
		v++
	}
	o.state = v
}

// Batch measures one batched point: th goroutines each repeatedly
// issue one ApplyBatch of b increments (reqs/results reused across
// calls). Ops and the per-thread counts are rescaled to individual
// operations, so ns_per_op and fairness are directly comparable with
// the per-op Apply path; the combiner rounds/combined counters are NOT
// attached — their unit is ill-defined for batched submissions
// (benchfmt.Record.Finish strips them anyway).
func Batch(algo string, b, th int, dur time.Duration) (benchfmt.Record, error) {
	obj := &batchCounter{}
	ex, err := hybsync.NewObject(algo, obj, opts()...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		reqs := make([]hybsync.Req, b)
		rets := make([]uint64, b)
		return func(uint64) { h.ApplyBatch(reqs, rets) }
	})
	// One iteration is b operations; rescale so Ops/Mops/fairness are
	// per operation. ApplyBatch blocks until its batch completed, so
	// nothing is in flight at close.
	res.Ops *= uint64(b)
	for i := range res.PerThread {
		res.PerThread[i] *= uint64(b)
	}
	rec := benchfmt.FromNative("batch", algo, th, res)
	rec.Batch, rec.Path = b, benchfmt.PathBatch
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	rec.Finish()
	return rec, nil
}

// BatchApply is Batch's per-op baseline: the same counter object
// driven through scalar Apply calls (the legacy path's cost per
// operation). Records carry path "apply" and no batch field.
func BatchApply(algo string, th int, dur time.Duration) (benchfmt.Record, error) {
	obj := &batchCounter{}
	ex, err := hybsync.NewObject(algo, obj, opts()...)
	if err != nil {
		return benchfmt.Record{}, fmt.Errorf("NewObject(%s): %w", algo, err)
	}
	res := harness.RunNative(th, dur, 50, func(int) func(uint64) {
		h := hybsync.MustHandle(ex)
		return func(uint64) { h.Apply(0, 0) }
	})
	rec := benchfmt.FromNative("batch", algo, th, res)
	rec.Path = benchfmt.PathApply
	if s, ok := ex.(hybsync.StatsSource); ok {
		rec.Rounds, rec.Combined = s.Stats()
	}
	rec.Pipe = pipeOf(ex)
	if err := ex.Close(); err != nil {
		return benchfmt.Record{}, fmt.Errorf("Close(%s): %w", algo, err)
	}
	rec.Finish()
	return rec, nil
}
