package shard

import (
	"testing"

	"hybsync/internal/core"
	"hybsync/internal/telemetry"
)

// TestTelemetrySnapshotDedup: shards built from one Options share one
// *Telemetry — the router must merge it once (pointer identity), not
// once per shard, or every counter would be N-times-counted.
func TestTelemetrySnapshotDedup(t *testing.T) {
	tel := telemetry.NewSampled(1)
	r, err := NewRouter(4, func(shard int, op, arg uint64) uint64 { return 0 },
		nil, coreFactory("hybcomb", core.WithTelemetry(tel)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, _ := r.NewHandle()
	const ops = 400
	for key := uint64(0); key < ops; key++ {
		if _, err := h.Apply(key, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := r.TelemetrySnapshot()
	if !ok {
		t.Fatal("router over telemetry-armed shards reported ok=false")
	}
	direct := tel.Snapshot()
	if snap.Latency.Count != direct.Latency.Count {
		t.Errorf("router latency count %d != direct %d (shared core double-counted?)",
			snap.Latency.Count, direct.Latency.Count)
	}
	if snap.RunLen.Sum != direct.RunLen.Sum {
		t.Errorf("router run-length sum %d != direct %d", snap.RunLen.Sum, direct.RunLen.Sum)
	}
	// Sanity on the content itself: every op went through a dispatch
	// run, so the run-length sum covers all ops exactly once.
	if snap.RunLen.Sum != ops {
		t.Errorf("run-length sum = %d, want %d (one request per op)", snap.RunLen.Sum, ops)
	}
}

// TestTelemetrySnapshotDistinct: shards armed with distinct cores
// merge additively.
func TestTelemetrySnapshotDistinct(t *testing.T) {
	tels := make([]*telemetry.Telemetry, 2)
	factory := func(shard int, obj core.Object) (core.Executor, error) {
		tels[shard] = telemetry.NewSampled(1)
		return core.NewObject("hybcomb", obj, core.WithTelemetry(tels[shard]))
	}
	r, err := NewRouter(2, func(shard int, op, arg uint64) uint64 { return 0 }, nil, factory)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, _ := r.NewHandle()
	const ops = 200
	for key := uint64(0); key < ops; key++ {
		if _, err := h.Apply(key, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	snap, ok := r.TelemetrySnapshot()
	if !ok {
		t.Fatal("router over telemetry-armed shards reported ok=false")
	}
	want := tels[0].Snapshot().Merge(tels[1].Snapshot())
	if snap.RunLen.Sum != want.RunLen.Sum || snap.RunLen.Sum != ops {
		t.Errorf("merged run-length sum = %d (pairwise %d), want %d",
			snap.RunLen.Sum, want.RunLen.Sum, ops)
	}
	if snap.Latency.Count != want.Latency.Count {
		t.Errorf("merged latency count = %d, want %d", snap.Latency.Count, want.Latency.Count)
	}
}

// TestTelemetrySnapshotDisarmed: a router over disarmed shards reports
// ok=false.
func TestTelemetrySnapshotDisarmed(t *testing.T) {
	r, err := NewRouter(2, func(shard int, op, arg uint64) uint64 { return 0 },
		nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, ok := r.TelemetrySnapshot(); ok {
		t.Fatal("disarmed router claimed a telemetry snapshot")
	}
}
