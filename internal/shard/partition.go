package shard

// Partitioner maps a key to a shard index in [0, nshards). It must be
// pure (the same key always lands on the same shard while the router is
// alive) and safe for concurrent use; the router calls it on every
// Apply.
type Partitioner func(key uint64, nshards int) int

// Fibonacci is the default Partitioner: Fibonacci hashing (multiply by
// 2^64/φ, take the top bits). It scrambles dense key ranges — the common
// case for ids — far better than key%nshards while staying a single
// multiply.
func Fibonacci(key uint64, nshards int) int {
	const phi = 0x9E3779B97F4A7C15 // 2^64 / golden ratio
	h := key * phi
	// Map the top 32 hash bits onto [0, nshards) without division
	// (Lemire's multiply-shift range reduction).
	return int((h >> 32) * uint64(nshards) >> 32)
}

// Modulo is key % nshards — the naive partitioner, kept as an ablation
// baseline for measuring how much hashing matters under dense or
// strided key ranges.
func Modulo(key uint64, nshards int) int { return int(key % uint64(nshards)) }

// HotKeyIsolating builds a Partitioner for Zipf-skewed workloads: the
// listed hot keys are pinned to dedicated shards (the i-th distinct hot
// key gets shard i%nshards; duplicates collapse onto their first
// occurrence), and — when shards remain — all other keys are routed by
// base over the remaining shards only, so a hot key never shares its
// serialization point with the cold tail. With at least as many hot
// keys as shards there is no shard to spare and cold keys fall back to
// base over every shard.
//
// The hot set must be known up front (e.g. from a previous run's
// occupancy profile); the router does not detect skew at runtime.
func HotKeyIsolating(base Partitioner, hot ...uint64) Partitioner {
	if base == nil {
		base = Fibonacci
	}
	if len(hot) == 0 {
		return base
	}
	pin := make(map[uint64]int, len(hot))
	for _, k := range hot {
		if _, dup := pin[k]; !dup {
			pin[k] = len(pin) // contiguous indices even when hot has duplicates
		}
	}
	nhot := len(pin)
	return func(key uint64, nshards int) int {
		if i, isHot := pin[key]; isHot {
			return i % nshards
		}
		if cold := nshards - nhot; cold > 0 {
			return nhot + base(key, cold)
		}
		return base(key, nshards)
	}
}
