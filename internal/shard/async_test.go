package shard

import (
	"sync"
	"testing"

	"hybsync/internal/core"
)

// seqFactory builds an mpserver per shard (the construction with a real
// submission pipeline).
func seqFactory(t *testing.T) ExecFactory {
	t.Helper()
	return func(_ int, obj core.Object) (core.Executor, error) {
		return core.NewObject("mpserver", obj, core.WithMaxThreads(16))
	}
}

// echoRouter builds a router whose dispatch tags each result with its
// shard and a per-shard sequence number, so a result identifies both
// where and in which order it executed.
func echoRouter(t *testing.T, nshards int) *Router {
	t.Helper()
	seqs := make([]uint64, nshards*64) // oversized; only [shard*64] used
	r, err := NewRouter(nshards, func(shard int, op, arg uint64) uint64 {
		s := seqs[shard*64]
		seqs[shard*64]++
		return uint64(shard)<<32 | s<<16 | (arg & 0xFFFF)
	}, nil, seqFactory(t))
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	return r
}

// TestSubmitWaitRouted: tickets route to the right shard and redeem the
// right operation's result, in or out of submission order.
func TestSubmitWaitRouted(t *testing.T) {
	r := echoRouter(t, 4)
	defer r.Close()
	h, err := r.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	tickets := make([]Ticket, n)
	for i := 0; i < n; i++ {
		tk, err := h.Submit(uint64(i*7), 0, uint64(i))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		if want := r.ShardFor(uint64(i * 7)); tk.Shard() != want {
			t.Fatalf("ticket %d routed to shard %d, want %d", i, tk.Shard(), want)
		}
		tickets[i] = tk
	}
	// Redeem back-to-front: still each ticket's own result.
	for i := n - 1; i >= 0; i-- {
		v := h.Wait(tickets[i])
		if got := v & 0xFFFF; got != uint64(i) {
			t.Fatalf("Wait(ticket %d) returned op %d's result", i, got)
		}
		if got := int(v >> 32); got != tickets[i].Shard() {
			t.Fatalf("ticket %d executed on shard %d, routed to %d", i, got, tickets[i].Shard())
		}
	}
}

// TestMultiApplyOrderAndRouting: MultiApply returns results in input
// order, each from its key's shard, with per-shard FIFO execution.
func TestMultiApplyOrderAndRouting(t *testing.T) {
	const nshards, n = 4, 64
	r := echoRouter(t, nshards)
	defer r.Close()
	h, err := r.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint64, n)
	args := make([]uint64, n)
	for i := range keys {
		keys[i] = uint64(i * 13)
		args[i] = uint64(i)
	}
	out, err := h.MultiApply(0, keys, args)
	if err != nil {
		t.Fatalf("MultiApply: %v", err)
	}
	if len(out) != n {
		t.Fatalf("len(out) = %d, want %d", len(out), n)
	}
	perShardSeq := map[int]int64{0: -1, 1: -1, 2: -1, 3: -1}
	for i, v := range out {
		if got := v & 0xFFFF; got != uint64(i) {
			t.Fatalf("out[%d] is op %d's result", i, got)
		}
		shard := int(v >> 32)
		if want := r.ShardFor(keys[i]); shard != want {
			t.Fatalf("op %d executed on shard %d, want %d", i, shard, want)
		}
		seq := int64(v >> 16 & 0xFFFF)
		if seq <= perShardSeq[shard] {
			t.Fatalf("op %d broke FIFO on shard %d: seq %d after %d", i, shard, seq, perShardSeq[shard])
		}
		perShardSeq[shard] = seq
	}
	// nil args: every operation gets argument 0.
	out, err = h.MultiApply(0, keys[:4], nil)
	if err != nil {
		t.Fatalf("MultiApply(nil args): %v", err)
	}
	for i, v := range out {
		if v&0xFFFF != 0 {
			t.Fatalf("nil-args out[%d] carries arg %d", i, v&0xFFFF)
		}
	}
	// Length mismatch is rejected.
	if _, err := h.MultiApply(0, keys, args[:3]); err == nil {
		t.Fatal("MultiApply with mismatched args did not fail")
	}
}

// TestPostFlushCountsOccupancy: posted operations reach their shards
// (observable via a counting dispatch after Flush) and occupancy
// reflects the submissions.
func TestPostFlushCountsOccupancy(t *testing.T) {
	const nshards = 4
	counts := make([]uint64, nshards*64)
	r, err := NewRouter(nshards, func(shard int, op, arg uint64) uint64 {
		counts[shard*64]++
		return counts[shard*64]
	}, nil, seqFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, err := r.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if err := h.Post(uint64(i), 0, 0); err != nil {
			t.Fatalf("Post %d: %v", i, err)
		}
	}
	h.Flush()
	var executed, routed uint64
	for s := 0; s < nshards; s++ {
		executed += counts[s*64]
	}
	for _, ops := range r.Occupancy() {
		routed += ops
	}
	if executed != n {
		t.Fatalf("executed = %d, want %d", executed, n)
	}
	if routed != n {
		t.Fatalf("occupancy total = %d, want %d", routed, n)
	}
}

// TestMultiApplyConcurrent: several goroutines issue overlapping
// MultiApply batches under the race detector; per-shard totals must be
// conserved.
func TestMultiApplyConcurrent(t *testing.T) {
	const nshards, goroutines, batches, batch = 4, 4, 20, 16
	counts := make([]uint64, nshards*64)
	r, err := NewRouter(nshards, func(shard int, op, arg uint64) uint64 {
		counts[shard*64] += arg
		return counts[shard*64]
	}, nil, seqFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := r.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			keys := make([]uint64, batch)
			args := make([]uint64, batch)
			for i := range keys {
				keys[i] = uint64(g*batch + i)
				args[i] = 1
			}
			for b := 0; b < batches; b++ {
				if _, err := h.MultiApply(0, keys, args); err != nil {
					panic(err)
				}
			}
		}(g)
	}
	wg.Wait()
	var total uint64
	for s := 0; s < nshards; s++ {
		total += counts[s*64]
	}
	if want := uint64(goroutines * batches * batch); total != want {
		t.Fatalf("total = %d, want %d", total, want)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestMapGetAll: the sharded map's pipelined multi-get agrees with
// per-key Get, in input order, including absent keys.
func TestMapGetAll(t *testing.T) {
	m, err := NewMap(4, 1024, nil, seqFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for k := uint32(0); k < 100; k += 2 { // evens present, odds absent
		if _, err := h.Put(k, k*10); err != nil {
			t.Fatal(err)
		}
	}
	keys := make([]uint32, 100)
	for i := range keys {
		keys[i] = uint32(i)
	}
	got, err := h.GetAll(keys)
	if err != nil {
		t.Fatalf("GetAll: %v", err)
	}
	for i, k := range keys {
		want := EmptyVal
		if k%2 == 0 {
			want = uint64(k * 10)
		}
		if got[i] != want {
			t.Fatalf("GetAll[%d] (key %d) = %#x, want %#x", i, k, got[i], want)
		}
	}
}

// TestMapMultiPut: the batched multi-put returns previous values in
// input order (EmptyVal for new keys), stores every pair, and a
// same-batch duplicate key observes the value an earlier entry stored.
func TestMapMultiPut(t *testing.T) {
	m, err := NewMap(4, 1024, nil, seqFactory(t))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]uint32, 64)
	vals := make([]uint32, 64)
	for i := range keys {
		keys[i] = uint32(i)
		vals[i] = uint32(i * 3)
	}
	old, err := h.MultiPut(keys, vals)
	if err != nil {
		t.Fatalf("MultiPut: %v", err)
	}
	for i := range old {
		if old[i] != EmptyVal {
			t.Fatalf("MultiPut[%d] previous = %#x, want EmptyVal (fresh key)", i, old[i])
		}
	}
	// Overwrite with a duplicate inside the batch: index 1 and 2 both
	// write key 7; the second must observe the first's value.
	dupKeys := []uint32{5, 7, 7}
	dupVals := []uint32{50, 70, 71}
	old, err = h.MultiPut(dupKeys, dupVals)
	if err != nil {
		t.Fatalf("MultiPut dup: %v", err)
	}
	if old[0] != uint64(5*3) || old[1] != uint64(7*3) || old[2] != 70 {
		t.Fatalf("MultiPut dup previous = %v, want [15 21 70]", old)
	}
	for i, k := range keys {
		v, err := h.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		want := uint64(vals[i])
		switch k {
		case 5:
			want = 50
		case 7:
			want = 71
		}
		if v != want {
			t.Fatalf("Get(%d) = %d, want %d after MultiPut", k, v, want)
		}
	}
	if _, err := h.MultiPut([]uint32{1}, []uint32{1, 2}); err == nil {
		t.Fatal("MultiPut with mismatched lengths did not fail")
	}
}
