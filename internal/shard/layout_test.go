package shard

import (
	"testing"
	"unsafe"

	"hybsync/internal/pad"
)

// TestLayout machine-verifies the padded array-cell structs, per the
// internal/pad convention: occupancy counters and counter partitions
// are per-shard array elements, so each must occupy a whole number of
// cache lines or neighbouring shards false-share.
func TestLayout(t *testing.T) {
	if s := unsafe.Sizeof(occSlot{}); !pad.Padded(s) {
		t.Errorf("occSlot is %d bytes, not a whole number of cache lines", s)
	}
	if s := unsafe.Sizeof(ctrSlot{}); !pad.Padded(s) {
		t.Errorf("ctrSlot is %d bytes, not a whole number of cache lines", s)
	}
}
