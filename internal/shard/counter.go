package shard

import (
	"unsafe"

	"hybsync/internal/core"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// Counter opcodes.
const (
	ctrOpInc  uint64 = 1 // fetch-and-increment the shard's partition
	ctrOpRead uint64 = 2 // read the shard's partition
)

// ctrSlot is one shard's partition of the counter, padded to a cache
// line: each slot is touched only inside its shard's critical section,
// and padding keeps neighbouring shards' servers from false-sharing.
//
//hyblint:padded
type ctrSlot struct {
	ctrHot
	_ [pad.CacheLine - unsafe.Sizeof(ctrHot{})%pad.CacheLine]byte
}

type ctrHot struct{ v uint64 }

// Counter is the sharded fetch-and-increment counter: the §5.3
// microbenchmark object split across nshards independent executors.
// Inc(key) routes to key's shard and increments that shard's partition;
// the global value is the sum over partitions (Sum for a concurrent
// fuzzy read, Value at quiescence).
type Counter struct {
	r    *Router
	vals []ctrSlot
}

// ctrObject is the counter's native KeyedObject: a run against one
// shard reads the partition once, applies the whole run against the
// locally-held value, and writes it back — no per-operation dispatch
// indirection and no per-operation reload of the shared word.
type ctrObject struct{ c *Counter }

func (o ctrObject) DispatchShardBatch(shard int, reqs []core.Req, results []uint64) {
	s := &o.c.vals[shard]
	v := s.v
	for i, r := range reqs {
		switch r.Op {
		case ctrOpInc:
			results[i] = v
			v++
		case ctrOpRead:
			results[i] = v
		default:
			panic("shard: bad counter opcode")
		}
	}
	s.v = v
}

// NewCounter builds the sharded counter over nshards executors made by
// f, routing with part (nil = Fibonacci).
func NewCounter(nshards int, part Partitioner, f ExecFactory) (*Counter, error) {
	c := &Counter{vals: make([]ctrSlot, max(nshards, 1))}
	r, err := NewObjectRouter(nshards, ctrObject{c: c}, part, f)
	if err != nil {
		return nil, err
	}
	c.r = r
	return c, nil
}

// NewHandle returns a per-goroutine handle.
func (c *Counter) NewHandle() (*CounterHandle, error) {
	h, err := c.r.NewHandle()
	if err != nil {
		return nil, err
	}
	return &CounterHandle{h: h}, nil
}

// Close shuts down every shard's executor; idempotent. Per-shard
// errors (including *PoisonError from poisoned shards) aggregate with
// errors.Join.
func (c *Counter) Close() error { return c.r.Close() }

// Err reports the first poisoned shard's *PoisonError, or nil while
// every shard is healthy.
func (c *Counter) Err() error { return c.r.Err() }

// Poison condemns every shard's executor, as if each object partition
// had panicked — the out-of-band fault hook (see Router.Poison).
func (c *Counter) Poison(v any) { c.r.Poison(v) }

// Value reads the global counter; call only while no operations are in
// flight (use a handle's Sum for a concurrent read).
func (c *Counter) Value() uint64 {
	var sum uint64
	for i := range c.vals {
		sum += c.vals[i].v
	}
	return sum
}

// Occupancy reports per-shard executed-operation counts (the workload's
// skew profile); safe concurrently with operations.
func (c *Counter) Occupancy() []uint64 { return c.r.Occupancy() }

// Stats reports the summed combining statistics of the shard executors
// when any of them keeps such statistics; read only at quiescence.
func (c *Counter) Stats() (rounds, combined uint64, ok bool) { return c.r.CombiningStats() }

// Pipeline reports the aggregated backpressure counters of the shard
// executors when any of them keeps such counters (ok false otherwise);
// read only at pipeline quiescence.
func (c *Counter) Pipeline() (submitStalls, maxDepth uint64, ok bool) {
	return c.r.PipelineCounters()
}

// Telemetry reports the merged telemetry snapshot of the shard
// executors when any carries an armed metric core (ok false
// otherwise); may be read at any time.
func (c *Counter) Telemetry() (telemetry.Snapshot, bool) { return c.r.TelemetrySnapshot() }

// CounterHandle is a goroutine's capability to use the sharded counter.
type CounterHandle struct {
	h *Handle
}

// Inc routes to key's shard and fetch-and-increments that shard's
// partition, returning the partition's previous value.
func (h *CounterHandle) Inc(key uint64) (uint64, error) { return h.h.Apply(key, ctrOpInc, 0) }

// Sum reads the global counter via Aggregate: linearizable per shard,
// bounded by the counter's value at the start and end of the call, not
// an atomic snapshot.
func (h *CounterHandle) Sum() (uint64, error) { return h.h.Aggregate(ctrOpRead, 0) }
