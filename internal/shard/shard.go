// Package shard scales the paper's single-serialization-point
// constructions out: a Router partitions a keyed object across N
// independent executors (any registered algorithm, mixed algorithms
// allowed), so each shard keeps the paper's single-server guarantees —
// every operation on that shard runs in mutual exclusion through one
// delegation point — while unrelated keys proceed in parallel on other
// shards.
//
// What the router deliberately does NOT provide: any ordering or
// atomicity across shards. Broadcast and Aggregate visit the shards one
// by one without a global lock; each per-shard step linearizes
// independently, so the result is a "fuzzy snapshot" (for monotonic
// objects it is bounded by the object's state at the start and end of
// the call — see DESIGN.md "Sharded delegation").
package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"unsafe"

	"hybsync/internal/core"
	"hybsync/internal/pad"
	"hybsync/internal/telemetry"
)

// KeyedDispatch executes opcode op with argument arg against shard's
// partition of the protected object. For a given shard it is always
// invoked in mutual exclusion (by that shard's executor); calls for
// different shards run concurrently, so partitions must not share
// mutable state. KeyedDispatch is the legacy scalar contract; the
// router itself runs on KeyedObject and wraps a KeyedDispatch with
// KeyedFunc.
type KeyedDispatch func(shard int, op, arg uint64) uint64

// KeyedObject is the batch-aware sharded execution contract, the
// sharded equivalent of core.Object: DispatchShardBatch executes a
// whole run of requests against shard's partition in one
// mutual-exclusion call of that shard's executor. Calls for different
// shards run concurrently, so partitions must not share mutable state;
// the aliasing rules are core.Object's (neither slice retained, no
// overlap, len(results) == len(reqs)).
type KeyedObject interface {
	DispatchShardBatch(shard int, reqs []core.Req, results []uint64)
}

// KeyedFunc adapts a legacy KeyedDispatch into a KeyedObject that
// executes a batch by looping.
type KeyedFunc func(shard int, op, arg uint64) uint64

// DispatchShardBatch implements KeyedObject.
func (f KeyedFunc) DispatchShardBatch(shard int, reqs []core.Req, results []uint64) {
	for i, r := range reqs {
		results[i] = f(shard, r.Op, r.Arg)
	}
}

// shardView presents one shard's slice of a KeyedObject as a
// core.Object for that shard's executor.
type shardView struct {
	obj   KeyedObject
	shard int
}

func (v shardView) DispatchBatch(reqs []core.Req, results []uint64) {
	v.obj.DispatchShardBatch(v.shard, reqs, results)
}

// ExecFactory builds the executor protecting one shard around that
// shard's view of the object. Receiving the shard index lets callers
// mix algorithms across shards (ablation) or size shards differently.
type ExecFactory func(shard int, obj core.Object) (core.Executor, error)

// occSlot is a per-shard operation counter padded to a cache line so
// shards do not false-share occupancy updates.
//
//hyblint:padded
type occSlot struct {
	occHot
	_ [pad.CacheLine - unsafe.Sizeof(occHot{})%pad.CacheLine]byte
}

type occHot struct{ ops atomic.Uint64 }

// Router routes keyed operations to one of nshards independent
// executors. Obtain one Handle per goroutine from NewHandle; the handle
// lazily opens one executor handle per shard it actually touches.
type Router struct {
	part   Partitioner
	execs  []core.Executor
	occ    []occSlot
	closed atomic.Bool
}

// NewRouter builds a router over nshards executors made by f, routing
// keys with part (nil selects Fibonacci). Dispatch d receives the shard
// index alongside the operation; it is wrapped in KeyedFunc, so
// NewObjectRouter is the batch-aware primary constructor.
func NewRouter(nshards int, d KeyedDispatch, part Partitioner, f ExecFactory) (*Router, error) {
	if d == nil {
		return nil, fmt.Errorf("shard: NewRouter needs a dispatch and an executor factory")
	}
	return NewObjectRouter(nshards, KeyedFunc(d), part, f)
}

// NewObjectRouter builds a router over nshards executors made by f,
// executing against the batch-aware obj: every run a shard's executor
// forms reaches obj as one DispatchShardBatch call for that shard.
// Keys route with part (nil selects Fibonacci). Executors already
// built are closed again if a later shard's factory fails.
func NewObjectRouter(nshards int, obj KeyedObject, part Partitioner, f ExecFactory) (*Router, error) {
	if nshards <= 0 {
		return nil, fmt.Errorf("shard: NewRouter(%d): shard count must be positive: %w",
			nshards, core.ErrBadOption)
	}
	if obj == nil || f == nil {
		return nil, fmt.Errorf("shard: NewRouter needs a dispatch and an executor factory")
	}
	if part == nil {
		part = Fibonacci
	}
	r := &Router{
		part:  part,
		execs: make([]core.Executor, nshards),
		occ:   make([]occSlot, nshards),
	}
	for s := 0; s < nshards; s++ {
		ex, err := f(s, shardView{obj: obj, shard: s})
		if err != nil {
			for _, built := range r.execs[:s] {
				built.Close()
			}
			return nil, fmt.Errorf("shard: building executor for shard %d: %w", s, err)
		}
		r.execs[s] = ex
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.execs) }

// ShardFor returns the shard index key routes to.
func (r *Router) ShardFor(key uint64) int {
	s := r.part(key, len(r.execs))
	if s < 0 || s >= len(r.execs) {
		// A misbehaving Partitioner must not crash the router or skew
		// traffic onto shard 0; reduce into range deterministically.
		s = int(uint(s) % uint(len(r.execs)))
	}
	return s
}

// NewHandle returns a per-goroutine routing handle. Like every executor
// in the repository it fails with ErrClosed after Close; per-shard
// handle exhaustion (ErrTooManyHandles) surfaces later, from the Apply
// that first touches the exhausted shard.
func (r *Router) NewHandle() (*Handle, error) {
	if r.closed.Load() {
		return nil, core.ErrClosed
	}
	return &Handle{r: r, hs: make([]core.Handle, len(r.execs))}, nil
}

// Close shuts every shard's executor down (fan-out). It is idempotent —
// each underlying Close is idempotent, including shards whose executor
// was already closed directly — and every shard is closed even when an
// earlier one fails: the per-shard errors are aggregated with
// errors.Join (each wrapped with its shard index), so errors.Is still
// finds the sentinels. No Apply may be in flight or issued afterwards.
func (r *Router) Close() error {
	r.closed.Store(true)
	var errs []error
	for s, e := range r.execs {
		if err := e.Close(); err != nil {
			errs = append(errs, fmt.Errorf("shard %d: %w", s, err))
		}
	}
	return errors.Join(errs...)
}

// Err implements the Executor contract's fault probe across the fan-out:
// it reports the first poisoned shard's *PoisonError (wrapped with its
// shard index), or nil when every shard is healthy. One shard's fault
// does not poison its siblings — unrelated keys keep executing — but
// the router surfaces it so callers can tear the whole object down.
func (r *Router) Err() error {
	for s, e := range r.execs {
		if err := e.Err(); err != nil {
			return fmt.Errorf("shard %d: %w", s, err)
		}
	}
	return nil
}

// Poison implements core.Poisonable by fanning the fault out to every
// shard whose executor accepts it, so a caller-detected fault (or a
// sweep-runner timeout) condemns the whole sharded object at once.
func (r *Router) Poison(v any) {
	for _, e := range r.execs {
		if p, ok := e.(core.Poisonable); ok {
			p.Poison(v)
		}
	}
}

// Stats implements core.StatsSource by summing the combining statistics
// of every shard whose executor is itself a StatsSource; read it only
// at quiescence.
func (r *Router) Stats() (rounds, combined uint64) {
	rounds, combined, _ = r.CombiningStats()
	return rounds, combined
}

// CombiningStats is Stats plus ok, which is false when no shard's
// executor keeps combining statistics.
func (r *Router) CombiningStats() (rounds, combined uint64, ok bool) {
	for _, e := range r.execs {
		if s, isSource := e.(core.StatsSource); isSource {
			ro, co := s.Stats()
			rounds += ro
			combined += co
			ok = true
		}
	}
	return rounds, combined, ok
}

// Pipeline implements core.PipelineStats by aggregating the shards
// whose executors keep pipeline counters: stalls sum, the maximum
// depth is the max across shards. Shards without counters contribute
// nothing. Read only at pipeline quiescence, like the per-executor
// counters.
func (r *Router) Pipeline() (submitStalls, maxDepth uint64) {
	submitStalls, maxDepth, _ = r.PipelineCounters()
	return submitStalls, maxDepth
}

// PipelineCounters is Pipeline plus ok, which is false when no shard's
// executor keeps pipeline counters — distinguishing "measured and
// unstalled" from "nothing measures" (mirroring CombiningStats).
func (r *Router) PipelineCounters() (submitStalls, maxDepth uint64, ok bool) {
	for _, e := range r.execs {
		if p, isSource := e.(core.PipelineStats); isSource {
			st, d := p.Pipeline()
			submitStalls += st
			if d > maxDepth {
				maxDepth = d
			}
			ok = true
		}
	}
	return submitStalls, maxDepth, ok
}

// TelemetrySnapshot aggregates the shards' telemetry into one merged
// snapshot; ok is false when no shard carries an armed metric core.
// Shards built from one Options share a single *Telemetry, so the
// merge dedups by pointer identity — without that, an N-shard router
// would count every sample N times. Unlike the combining counters a
// telemetry snapshot may be taken at any time (merge-on-read,
// monotonic).
func (r *Router) TelemetrySnapshot() (telemetry.Snapshot, bool) {
	var (
		snap telemetry.Snapshot
		ok   bool
		seen map[*telemetry.Telemetry]bool
	)
	for _, e := range r.execs {
		src, isSource := e.(core.TelemetrySource)
		if !isSource {
			continue
		}
		t := src.Telemetry()
		if t == nil || seen[t] {
			continue
		}
		if seen == nil {
			seen = make(map[*telemetry.Telemetry]bool, len(r.execs))
		}
		seen[t] = true
		snap = snap.Merge(t.Snapshot())
		ok = true
	}
	return snap, ok
}

// Occupancy returns a snapshot of how many operations each shard has
// been handed — the skew profile of the workload. Apply counts an
// operation when it completes, Submit and Post when they submit. It may
// be read concurrently with operations (each element is an atomic
// load).
func (r *Router) Occupancy() []uint64 {
	out := make([]uint64, len(r.occ))
	for i := range r.occ {
		out[i] = r.occ[i].ops.Load()
	}
	return out
}

// Handle routes operations on behalf of one goroutine. It is not safe
// for concurrent use — like every Handle in the repository, obtain one
// per goroutine.
//
// Beyond the blocking Apply, the handle exposes the executors'
// submit/complete pipeline across shards: Submit routes a request and
// returns a Ticket without waiting, Wait redeems it, and MultiApply
// submits a whole batch of keyed operations before waiting on any —
// so requests landing on different shards execute concurrently instead
// of serializing through one round trip after another. Completion is
// FIFO per (handle, shard); nothing is guaranteed across shards.
type Handle struct {
	r  *Router
	hs []core.Handle // lazily opened, one per touched shard

	// MultiApply's counting-sort scratch, reused across calls (the
	// handle is single-goroutine, so the buffers never alias a live
	// call).
	maShards []int
	maCounts []int
	maOrder  []int
}

// Ticket identifies one outstanding asynchronous operation submitted
// through a routing Handle; redeem it with the same handle's Wait
// exactly once.
type Ticket struct {
	shard int
	t     core.Ticket
}

// Shard returns the shard the ticket's operation was routed to.
func (t Ticket) Shard() int { return t.shard }

// shardHandle lazily opens the executor handle for shard.
func (h *Handle) shardHandle(shard int) (core.Handle, error) {
	if shard < 0 || shard >= len(h.hs) {
		return nil, fmt.Errorf("shard: shard %d out of range [0,%d)", shard, len(h.hs))
	}
	eh := h.hs[shard]
	if eh == nil {
		var err error
		if eh, err = h.r.execs[shard].NewHandle(); err != nil {
			return nil, err
		}
		h.hs[shard] = eh
	}
	return eh, nil
}

// Apply routes (op, arg) to key's shard and executes it there in mutual
// exclusion. The error is non-nil only when lazily opening the shard's
// executor handle fails (ErrClosed after Close, ErrTooManyHandles when
// the shard's MaxThreads is exhausted); the sentinels propagate exactly
// as the executor returned them, so callers test with errors.Is.
func (h *Handle) Apply(key, op, arg uint64) (uint64, error) {
	return h.ApplyShard(h.r.ShardFor(key), op, arg)
}

// ApplyShard is Apply with an explicit shard index, for callers that
// route themselves. A poisoned shard surfaces as its *PoisonError
// (errors.Is(err, ErrPoisoned)) instead of silently returning the
// poisoned zero.
func (h *Handle) ApplyShard(shard int, op, arg uint64) (uint64, error) {
	eh, err := h.shardHandle(shard)
	if err != nil {
		return 0, err
	}
	v := eh.Apply(op, arg)
	if err := eh.Err(); err != nil {
		return 0, fmt.Errorf("shard %d: %w", shard, err)
	}
	h.r.occ[shard].ops.Add(1)
	return v, nil
}

// Err reports the first poisoned shard's *PoisonError across the whole
// router (not just shards this handle has touched), or nil.
func (h *Handle) Err() error { return h.r.Err() }

// Submit routes (op, arg) to key's shard and submits it there without
// waiting for the result; redeem the ticket with Wait. Errors are
// Apply's (lazy handle opening) — a successfully submitted operation
// cannot fail.
func (h *Handle) Submit(key, op, arg uint64) (Ticket, error) {
	return h.SubmitShard(h.r.ShardFor(key), op, arg)
}

// SubmitShard is Submit with an explicit shard index.
func (h *Handle) SubmitShard(shard int, op, arg uint64) (Ticket, error) {
	eh, err := h.shardHandle(shard)
	if err != nil {
		return Ticket{}, err
	}
	t, err := eh.Submit(op, arg)
	if err != nil {
		return Ticket{}, err
	}
	h.r.occ[shard].ops.Add(1)
	return Ticket{shard: shard, t: t}, nil
}

// Wait blocks until t's operation has executed on its shard and
// returns the result. Tickets may be waited out of submission order;
// each exactly once.
func (h *Handle) Wait(t Ticket) uint64 { return h.hs[t.shard].Wait(t.t) }

// Post routes a result-less operation to key's shard fire-and-forget;
// completion is observed collectively through Flush.
func (h *Handle) Post(key, op, arg uint64) error {
	shard := h.r.ShardFor(key)
	eh, err := h.shardHandle(shard)
	if err != nil {
		return err
	}
	if err := eh.Post(op, arg); err != nil {
		return err
	}
	h.r.occ[shard].ops.Add(1)
	return nil
}

// Flush blocks until every operation submitted through this handle has
// executed on its shard, banking unwaited Submit results for their
// Wait and discarding Post results.
func (h *Handle) Flush() {
	for _, eh := range h.hs {
		if eh != nil {
			eh.Flush()
		}
	}
}

// MultiApply executes (op, args[i]) on keys[i]'s shard for every i and
// returns the results in input order. Every operation is submitted
// before any is waited on, so operations routed to different shards
// execute concurrently — the cross-shard overlap a sequence of Apply
// calls cannot get. Submissions are grouped by destination shard
// (stable within a group), so each shard's transport receives its
// group as one contiguous run and a batch-aware executor hands it to
// the object through single DispatchShardBatch calls instead of one
// indirect call per key. args may be nil (every operation gets
// argument 0); otherwise len(args) must equal len(keys). On a
// submission error the already-submitted operations are waited out
// before returning, so the handle is left with nothing in flight.
func (h *Handle) MultiApply(op uint64, keys, args []uint64) ([]uint64, error) {
	if args != nil && len(args) != len(keys) {
		return nil, fmt.Errorf("shard: MultiApply: %d keys but %d args", len(keys), len(args))
	}
	if len(keys) == 0 {
		return []uint64{}, nil
	}
	if len(keys) == 1 { // nothing to group or overlap
		var a uint64
		if args != nil {
			a = args[0]
		}
		v, err := h.Apply(keys[0], op, a)
		if err != nil {
			return nil, err
		}
		return []uint64{v}, nil
	}
	// order holds the input indices sorted by shard, built with a
	// counting sort over the shard histogram (stable, no comparison
	// sort); the scratch lives on the handle so the hot path does not
	// allocate. counts doubles as the running start offsets.
	if cap(h.maShards) < len(keys) {
		h.maShards = make([]int, len(keys))
		h.maOrder = make([]int, len(keys))
	}
	if h.maCounts == nil {
		h.maCounts = make([]int, len(h.hs))
	}
	shards := h.maShards[:len(keys)]
	counts := h.maCounts
	for s := range counts {
		counts[s] = 0
	}
	for i, key := range keys {
		s := h.r.ShardFor(key)
		shards[i] = s
		counts[s]++
	}
	sum := 0
	for s, c := range counts {
		counts[s] = sum
		sum += c
	}
	order := h.maOrder[:len(keys)]
	for i, s := range shards {
		order[counts[s]] = i
		counts[s]++
	}

	tickets := make([]Ticket, len(keys))
	for n, i := range order {
		var a uint64
		if args != nil {
			a = args[i]
		}
		t, err := h.SubmitShard(shards[i], op, a)
		if err != nil {
			for _, m := range order[:n] {
				h.Wait(tickets[m])
			}
			return nil, err
		}
		tickets[i] = t
	}
	out := make([]uint64, len(keys))
	for _, i := range order {
		out[i] = h.Wait(tickets[i])
	}
	// A shard poisoned mid-flight completed its submissions with zeros;
	// surface the fault rather than hand back silently-wrong results.
	if err := h.r.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Broadcast executes (op, arg) on every shard in ascending shard order
// and returns the per-shard results. There is no global lock: each
// shard's step linearizes independently, and operations on other
// shards may interleave between steps.
func (h *Handle) Broadcast(op, arg uint64) ([]uint64, error) {
	out := make([]uint64, len(h.hs))
	for s := range h.hs {
		v, err := h.ApplyShard(s, op, arg)
		if err != nil {
			return nil, err
		}
		out[s] = v
	}
	return out, nil
}

// Aggregate is Broadcast folded with +: the sum of (op, arg) applied on
// every shard, for global reads such as a sharded counter's total.
// Each per-shard read is linearizable, so for monotonic state the sum
// is bounded by the object's value when Aggregate began and its value
// when it returned (and successive Aggregates from one goroutine
// observe non-decreasing sums); it is not an atomic snapshot.
func (h *Handle) Aggregate(op, arg uint64) (uint64, error) {
	var sum uint64
	for s := range h.hs {
		v, err := h.ApplyShard(s, op, arg)
		if err != nil {
			return 0, err
		}
		sum += v
	}
	return sum, nil
}
