package shard

import (
	"fmt"

	"hybsync/internal/core"
	"hybsync/internal/telemetry"
)

// Map opcodes.
const (
	mapOpPut uint64 = 1
	mapOpGet uint64 = 2
	mapOpDel uint64 = 3
	mapOpLen uint64 = 4
)

// Map result sentinels. Keys and values are 32-bit (packed into the
// single 64-bit operation argument), so both sentinels are outside the
// value range.
const (
	// EmptyVal reports "no previous value" from Get/Put/Delete.
	EmptyVal = ^uint64(0)
	// FullVal reports a Put into a shard whose fixed-capacity table has
	// no free slot left for a new key.
	FullVal = ^uint64(0) - 1
)

// Slot states of the open-addressing table.
const (
	slotEmpty uint8 = iota
	slotFull
	slotTomb
)

// mapShard is one shard's private fixed-capacity open-addressing hash
// table (linear probing, tombstone deletion). It is touched only inside
// its shard's critical section.
type mapShard struct {
	keys  []uint32
	vals  []uint32
	state []uint8
	live  uint64 // slotFull count
}

// Map is a fixed-capacity uint32→uint32 hash map whose buckets are
// delegation-protected per shard: key k lives in shard
// Partitioner(k, nshards), and every operation on that shard's table
// runs as a critical section of that shard's executor. Operations on
// different shards proceed in parallel; there is no cross-shard
// atomicity (Len is a per-shard-linearizable Aggregate, not a
// snapshot).
type Map struct {
	r      *Router
	shards []mapShard
}

// NewMap builds the sharded map over nshards executors made by f,
// routing with part (nil = Fibonacci). capacity is the total slot
// count; it is split evenly and rounded up to a power of two per shard,
// so the usable capacity is at least the requested one. A Put whose
// shard is full fails with FullVal rather than growing the table.
func NewMap(nshards, capacity int, part Partitioner, f ExecFactory) (*Map, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("shard: NewMap(capacity=%d): capacity must be positive: %w",
			capacity, core.ErrBadOption)
	}
	m := &Map{}
	r, err := NewObjectRouter(nshards, mapObject{m: m}, part, f)
	if err != nil {
		return nil, err
	}
	per := nextPow2((capacity + nshards - 1) / nshards)
	m.shards = make([]mapShard, nshards)
	for i := range m.shards {
		m.shards[i] = mapShard{
			keys:  make([]uint32, per),
			vals:  make([]uint32, per),
			state: make([]uint8, per),
		}
	}
	m.r = r
	return m, nil
}

// nextPow2 rounds n up to a power of two (minimum 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// mapObject is the map's native KeyedObject: a run against one shard
// resolves the table pointer once and walks the run's decoded
// operations against it directly — same-shard keys grouped by
// MultiApply (GetAll, MultiPut) execute with no per-key dispatch
// indirection.
type mapObject struct{ m *Map }

func (o mapObject) DispatchShardBatch(shard int, reqs []core.Req, results []uint64) {
	s := &o.m.shards[shard]
	for i, r := range reqs {
		key := uint32(r.Arg >> 32)
		val := uint32(r.Arg)
		switch r.Op {
		case mapOpPut:
			results[i] = s.put(key, val)
		case mapOpGet:
			results[i] = s.get(key)
		case mapOpDel:
			results[i] = s.del(key)
		case mapOpLen:
			results[i] = s.live
		default:
			panic("shard: bad map opcode")
		}
	}
}

// slotFor is the probe start: Fibonacci hash of the key reduced by the
// power-of-two mask.
func (s *mapShard) slotFor(key uint32) int {
	const phi32 = 0x9E3779B9
	return int(key*phi32) & (len(s.state) - 1)
}

func (s *mapShard) put(key, val uint32) uint64 {
	n := len(s.state)
	i := s.slotFor(key)
	insert := -1
	for probes := 0; probes < n; probes++ {
		switch s.state[i] {
		case slotEmpty:
			if insert < 0 {
				insert = i
			}
			goto place
		case slotTomb:
			if insert < 0 {
				insert = i
			}
		case slotFull:
			if s.keys[i] == key {
				old := s.vals[i]
				s.vals[i] = val
				return uint64(old)
			}
		}
		i = (i + 1) & (n - 1)
	}
place:
	if insert < 0 {
		return FullVal
	}
	s.keys[insert] = key
	s.vals[insert] = val
	s.state[insert] = slotFull
	s.live++
	return EmptyVal
}

func (s *mapShard) get(key uint32) uint64 {
	n := len(s.state)
	i := s.slotFor(key)
	for probes := 0; probes < n; probes++ {
		switch s.state[i] {
		case slotEmpty:
			return EmptyVal
		case slotFull:
			if s.keys[i] == key {
				return uint64(s.vals[i])
			}
		}
		i = (i + 1) & (n - 1)
	}
	return EmptyVal
}

func (s *mapShard) del(key uint32) uint64 {
	n := len(s.state)
	i := s.slotFor(key)
	for probes := 0; probes < n; probes++ {
		switch s.state[i] {
		case slotEmpty:
			return EmptyVal
		case slotFull:
			if s.keys[i] == key {
				s.state[i] = slotTomb
				s.live--
				return uint64(s.vals[i])
			}
		}
		i = (i + 1) & (n - 1)
	}
	return EmptyVal
}

// NewHandle returns a per-goroutine handle.
func (m *Map) NewHandle() (*MapHandle, error) {
	h, err := m.r.NewHandle()
	if err != nil {
		return nil, err
	}
	return &MapHandle{h: h}, nil
}

// Close shuts down every shard's executor; idempotent.
func (m *Map) Close() error { return m.r.Close() }

// Occupancy reports per-shard executed-operation counts; safe
// concurrently with operations.
func (m *Map) Occupancy() []uint64 { return m.r.Occupancy() }

// Stats reports the summed combining statistics of the shard executors
// when any keeps them; read only at quiescence.
func (m *Map) Stats() (rounds, combined uint64, ok bool) { return m.r.CombiningStats() }

// Pipeline reports the aggregated backpressure counters of the shard
// executors when any of them keeps such counters (ok false otherwise);
// read only at pipeline quiescence.
func (m *Map) Pipeline() (submitStalls, maxDepth uint64, ok bool) {
	return m.r.PipelineCounters()
}

// Telemetry reports the merged telemetry snapshot of the shard
// executors when any carries an armed metric core (ok false
// otherwise); may be read at any time.
func (m *Map) Telemetry() (telemetry.Snapshot, bool) { return m.r.TelemetrySnapshot() }

// Len reads the live-entry count; call only at quiescence (use a
// handle's Len for a concurrent per-shard-linearizable read).
func (m *Map) Len() uint64 {
	var n uint64
	for i := range m.shards {
		n += m.shards[i].live
	}
	return n
}

// packArg packs a map key and value into the single operation argument.
func packArg(key, val uint32) uint64 { return uint64(key)<<32 | uint64(val) }

// MapHandle is a goroutine's capability to use the map.
type MapHandle struct {
	h *Handle
}

// Put stores key→val, returning the previous value, EmptyVal when the
// key is new, or FullVal when the key's shard is at capacity.
func (h *MapHandle) Put(key, val uint32) (uint64, error) {
	return h.h.Apply(uint64(key), mapOpPut, packArg(key, val))
}

// Get returns key's value, or EmptyVal when absent.
func (h *MapHandle) Get(key uint32) (uint64, error) {
	return h.h.Apply(uint64(key), mapOpGet, packArg(key, 0))
}

// Delete removes key, returning the removed value or EmptyVal.
func (h *MapHandle) Delete(key uint32) (uint64, error) {
	return h.h.Apply(uint64(key), mapOpDel, packArg(key, 0))
}

// Len aggregates per-shard live-entry counts: linearizable per shard,
// not an atomic snapshot.
func (h *MapHandle) Len() (uint64, error) { return h.h.Aggregate(mapOpLen, 0) }

// GetAll looks up every key and returns the values (EmptyVal for
// absent keys) in input order. All lookups are submitted before any is
// waited on, so keys living on different shards are served
// concurrently — one round of cross-shard overlap instead of
// len(keys) sequential round trips — and MultiApply's shard grouping
// lands same-shard keys as one contiguous run, executed by the shard
// through single batch calls. Each lookup linearizes on its own shard;
// the batch is not an atomic snapshot.
func (h *MapHandle) GetAll(keys []uint32) ([]uint64, error) {
	ks := make([]uint64, len(keys))
	args := make([]uint64, len(keys))
	for i, k := range keys {
		ks[i] = uint64(k)
		args[i] = packArg(k, 0)
	}
	return h.h.MultiApply(mapOpGet, ks, args)
}

// MultiPut stores keys[i]→vals[i] for every i and returns the previous
// values in input order (EmptyVal for new keys, FullVal where a key's
// shard is at capacity) — GetAll's write-side mirror, riding the same
// shard-grouped MultiApply: one overlapped cross-shard round, with
// same-shard puts batched into single dispatch calls. A duplicate key
// later in the batch observes the value an earlier entry stored (puts
// execute in batch order per shard); the batch is not atomic across
// shards.
func (h *MapHandle) MultiPut(keys, vals []uint32) ([]uint64, error) {
	if len(vals) != len(keys) {
		return nil, fmt.Errorf("shard: MultiPut: %d keys but %d vals", len(keys), len(vals))
	}
	ks := make([]uint64, len(keys))
	args := make([]uint64, len(keys))
	for i, k := range keys {
		ks[i] = uint64(k)
		args[i] = packArg(k, vals[i])
	}
	return h.h.MultiApply(mapOpPut, ks, args)
}
