// Property tests for the sharded objects, run under -race in CI: the
// aggregate of a sharded counter must conserve every increment, a
// concurrent Aggregate must stay within the linearizable-sum envelope,
// and the fan-out Close must stay idempotent even when a shard's
// executor was already closed out from under the router.
package shard

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"hybsync/internal/core"
)

// propAlgos are the constructions the properties are checked over: the
// paper's two message-passing constructions (both registered by
// internal/core itself).
var propAlgos = []string{"mpserver", "hybcomb"}

// TestAggregateConservation: after G goroutines complete K randomly
// keyed increments each, the quiescent value, a handle's Aggregate sum
// and the occupancy profile must all account for exactly G*K
// operations — no shard lost or double-counted an increment.
func TestAggregateConservation(t *testing.T) {
	const goroutines, per, nshards = 4, 5_000, 8
	for _, algo := range propAlgos {
		t.Run(algo, func(t *testing.T) {
			c, err := NewCounter(nshards, nil, coreFactory(algo))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := c.NewHandle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := seed
					for i := 0; i < per; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						if _, err := h.Inc(rng); err != nil {
							panic(err)
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			const want = uint64(goroutines * per)
			occ := c.Occupancy()
			var occTotal uint64
			for _, n := range occ {
				occTotal += n
			}
			if occTotal != want {
				t.Errorf("occupancy accounts for %d ops, want %d (%v)", occTotal, want, occ)
			}
			if v := c.Value(); v != want {
				t.Errorf("quiescent Value = %d, want %d", v, want)
			}
			h, err := c.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			if sum, err := h.Sum(); err != nil || sum != want {
				t.Errorf("Aggregate sum = %d (err %v), want %d", sum, err, want)
			}
		})
	}
}

// TestAggregateLinearizableSumEnvelope checks the contract Aggregate
// documents: while writers increment other shards concurrently, every
// observed sum lies between the number of increments completed before
// the aggregate began and the number started by the time it returned,
// and one observer's successive sums never decrease (per-shard reads
// are linearizable and per-shard state is monotone).
func TestAggregateLinearizableSumEnvelope(t *testing.T) {
	const writers, per, nshards = 3, 4_000, 4
	for _, algo := range propAlgos {
		t.Run(algo, func(t *testing.T) {
			c, err := NewCounter(nshards, nil, coreFactory(algo))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			var started, completed atomic.Uint64
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				h, err := c.NewHandle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					rng := seed
					for i := 0; i < per; i++ {
						rng ^= rng << 13
						rng ^= rng >> 7
						rng ^= rng << 17
						started.Add(1)
						if _, err := h.Inc(rng); err != nil {
							panic(err)
						}
						completed.Add(1)
					}
				}(uint64(w + 1))
			}
			reader, err := c.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			var prev uint64
			for completed.Load() < writers*per {
				lo := completed.Load()
				sum, err := reader.Sum()
				if err != nil {
					t.Fatal(err)
				}
				hi := started.Load()
				if sum < lo || sum > hi {
					t.Fatalf("aggregate %d outside envelope [%d, %d]", sum, lo, hi)
				}
				if sum < prev {
					t.Fatalf("aggregate went backwards: %d after %d", sum, prev)
				}
				prev = sum
			}
			wg.Wait()
			if sum, err := reader.Sum(); err != nil || sum != writers*per {
				t.Fatalf("final sum = %d (err %v), want %d", sum, err, writers*per)
			}
		})
	}
}

// TestCloseFanOutIdempotent: the router's Close must fan out to every
// shard, succeed even when one shard's executor was already closed
// directly, stay idempotent across repeated calls, and seal NewHandle
// with ErrClosed — and a surviving handle's lazy open on an untouched
// shard must surface ErrClosed too.
func TestCloseFanOutIdempotent(t *testing.T) {
	for _, algo := range propAlgos {
		t.Run(algo, func(t *testing.T) {
			var execs []core.Executor
			r, err := NewRouter(3, func(shard int, op, arg uint64) uint64 { return 0 }, nil,
				func(_ int, obj core.Object) (core.Executor, error) {
					ex, err := core.NewObject(algo, obj)
					if err == nil {
						execs = append(execs, ex)
					}
					return ex, err
				})
			if err != nil {
				t.Fatal(err)
			}
			h, err := r.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := h.ApplyShard(0, 0, 0); err != nil {
				t.Fatal(err)
			}
			// One shard's executor dies out from under the router.
			if err := execs[1].Close(); err != nil {
				t.Fatalf("direct shard close: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("fan-out Close with a pre-closed shard: %v", err)
			}
			if err := r.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := r.NewHandle(); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
			}
			if _, err := h.ApplyShard(2, 0, 0); !errors.Is(err, core.ErrClosed) {
				t.Fatalf("lazy open on closed shard = %v, want ErrClosed", err)
			}
		})
	}
}
