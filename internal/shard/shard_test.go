package shard

import (
	"errors"
	"testing"

	"hybsync/internal/core"
)

// coreFactory builds every shard over the named core algorithm.
func coreFactory(algo string, opts ...core.Option) ExecFactory {
	return func(_ int, obj core.Object) (core.Executor, error) {
		return core.NewObject(algo, obj, opts...)
	}
}

func TestFibonacciCoversAllShards(t *testing.T) {
	const nshards = 8
	seen := make(map[int]int)
	for key := uint64(0); key < 4096; key++ {
		s := Fibonacci(key, nshards)
		if s < 0 || s >= nshards {
			t.Fatalf("Fibonacci(%d, %d) = %d out of range", key, nshards, s)
		}
		seen[s]++
	}
	for s := 0; s < nshards; s++ {
		if seen[s] == 0 {
			t.Errorf("shard %d never selected over a dense key range", s)
		}
	}
	// Dense keys must spread: no shard may take more than half the keys.
	for s, n := range seen {
		if n > 2048 {
			t.Errorf("shard %d took %d/4096 dense keys; hashing is not scrambling", s, n)
		}
	}
}

func TestHotKeyIsolation(t *testing.T) {
	const nshards = 8
	hot := []uint64{42, 77, 1000}
	p := HotKeyIsolating(Fibonacci, hot...)
	hotShards := make(map[int]uint64)
	for i, k := range hot {
		s := p(k, nshards)
		if s != i {
			t.Errorf("hot key %d pinned to shard %d, want %d", k, s, i)
		}
		if prev, dup := hotShards[s]; dup {
			t.Errorf("hot keys %d and %d share shard %d", prev, k, s)
		}
		hotShards[s] = k
	}
	// Cold keys must stay off the hot shards while shards remain.
	for key := uint64(0); key < 4096; key++ {
		isHot := false
		for _, k := range hot {
			if key == k {
				isHot = true
			}
		}
		if isHot {
			continue
		}
		if s := p(key, nshards); s < len(hot) {
			t.Fatalf("cold key %d routed to hot shard %d", key, s)
		}
	}
	// With as many hot keys as shards there is nothing to spare: cold
	// keys fall back to the base partitioner's full range.
	p2 := HotKeyIsolating(Modulo, 0, 1)
	if s := p2(5, 2); s != Modulo(5, 2) {
		t.Errorf("saturated isolation: cold key routed to %d, want base %d", s, Modulo(5, 2))
	}
	// Duplicate hot keys dedup to contiguous pins: with {42, 42, 77}
	// over 3 shards, 77 must get shard 1 and cold keys must stay off
	// shards 0 and 1.
	p3 := HotKeyIsolating(Fibonacci, 42, 42, 77)
	if s := p3(77, 3); s != 1 {
		t.Errorf("dup hot list: key 77 on shard %d, want 1", s)
	}
	for key := uint64(0); key < 256; key++ {
		if key == 42 || key == 77 {
			continue
		}
		if s := p3(key, 3); s != 2 {
			t.Fatalf("dup hot list: cold key %d on shard %d, want 2", key, s)
		}
	}
}

func TestRouterRoutesByKey(t *testing.T) {
	const nshards = 4
	touched := make([]uint64, nshards)
	r, err := NewRouter(nshards, func(shard int, op, arg uint64) uint64 {
		touched[shard]++ // safe: each shard's dispatch is serialized and
		// shards are distinct slots (test reads only at quiescence)
		return uint64(shard)
	}, nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, err := r.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for key := uint64(0); key < 100; key++ {
		want := r.ShardFor(key)
		got, err := h.Apply(key, 0, 0)
		if err != nil {
			t.Fatalf("Apply(%d): %v", key, err)
		}
		if int(got) != want {
			t.Fatalf("key %d executed on shard %d, ShardFor says %d", key, got, want)
		}
	}
	occ := r.Occupancy()
	var total uint64
	for s, n := range occ {
		if n != touched[s] {
			t.Errorf("occupancy[%d] = %d, dispatch saw %d", s, n, touched[s])
		}
		total += n
	}
	if total != 100 {
		t.Fatalf("occupancy total %d, want 100", total)
	}
}

func TestLazyHandlesAndSentinelPropagation(t *testing.T) {
	// MaxThreads(1) per shard: two router handles coexist as long as
	// they touch disjoint shards — proof the per-shard executor handles
	// open lazily — and the first collision surfaces ErrTooManyHandles
	// exactly as the executor returned it.
	r, err := NewRouter(2, func(shard int, op, arg uint64) uint64 { return 0 },
		Modulo, coreFactory("mpserver", core.WithMaxThreads(1)))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h1, _ := r.NewHandle()
	h2, _ := r.NewHandle()
	if _, err := h1.Apply(0, 0, 0); err != nil { // shard 0
		t.Fatalf("h1 on shard 0: %v", err)
	}
	if _, err := h2.Apply(1, 0, 0); err != nil { // shard 1
		t.Fatalf("h2 on shard 1: %v", err)
	}
	if _, err := h2.Apply(0, 0, 0); !errors.Is(err, core.ErrTooManyHandles) {
		t.Fatalf("second handle on exhausted shard 0 = %v, want ErrTooManyHandles", err)
	}
}

func TestBroadcastAndAggregate(t *testing.T) {
	vals := make([]uint64, 4)
	r, err := NewRouter(4, func(shard int, op, arg uint64) uint64 {
		if op == 1 {
			vals[shard] += arg
		}
		return vals[shard]
	}, nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, _ := r.NewHandle()
	if _, err := h.Broadcast(1, 10); err != nil {
		t.Fatal(err)
	}
	out, err := h.Broadcast(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("Broadcast returned %d results, want 4", len(out))
	}
	for s, v := range out {
		if v != 10 {
			t.Errorf("shard %d reads %d, want 10", s, v)
		}
	}
	sum, err := h.Aggregate(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 40 {
		t.Fatalf("Aggregate = %d, want 40", sum)
	}
}

func TestRouterStatsAggregated(t *testing.T) {
	r, err := NewRouter(3, func(shard int, op, arg uint64) uint64 { return 0 },
		nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, _ := r.NewHandle()
	for key := uint64(0); key < 300; key++ {
		if _, err := h.Apply(key, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	rounds, combined, ok := r.CombiningStats()
	if !ok {
		t.Fatal("hybcomb shards reported no combining stats")
	}
	if rounds+combined != 300 {
		t.Fatalf("rounds %d + combined %d != 300 ops", rounds, combined)
	}
	// A router over non-combining executors reports ok=false.
	r2, err := NewRouter(2, func(shard int, op, arg uint64) uint64 { return 0 },
		nil, coreFactory("mpserver"))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, _, ok := r2.CombiningStats(); ok {
		t.Fatal("mpserver shards claimed combining stats")
	}
}

func TestRouterRejectsBadConfig(t *testing.T) {
	d := func(shard int, op, arg uint64) uint64 { return 0 }
	if _, err := NewRouter(0, d, nil, coreFactory("hybcomb")); !errors.Is(err, core.ErrBadOption) {
		t.Errorf("NewRouter(0 shards) = %v, want ErrBadOption", err)
	}
	if _, err := NewRouter(-3, d, nil, coreFactory("hybcomb")); !errors.Is(err, core.ErrBadOption) {
		t.Errorf("NewRouter(-3 shards) = %v, want ErrBadOption", err)
	}
	if _, err := NewRouter(2, nil, nil, coreFactory("hybcomb")); err == nil {
		t.Error("NewRouter(nil dispatch) accepted")
	}
	if _, err := NewRouter(2, d, nil, nil); err == nil {
		t.Error("NewRouter(nil factory) accepted")
	}
}

func TestRouterFactoryFailureClosesBuiltShards(t *testing.T) {
	var built []core.Executor
	boom := errors.New("boom")
	_, err := NewRouter(3, func(shard int, op, arg uint64) uint64 { return 0 }, nil,
		func(s int, obj core.Object) (core.Executor, error) {
			if s == 2 {
				return nil, boom
			}
			ex, err := core.NewObject("mpserver", obj)
			if err == nil {
				built = append(built, ex)
			}
			return ex, err
		})
	if !errors.Is(err, boom) {
		t.Fatalf("NewRouter = %v, want the factory's error", err)
	}
	if len(built) != 2 {
		t.Fatalf("built %d shards before failure, want 2", len(built))
	}
	for i, ex := range built {
		if _, err := ex.NewHandle(); !errors.Is(err, core.ErrClosed) {
			t.Errorf("earlier shard %d not closed after factory failure: %v", i, err)
		}
	}
}

func TestMapSequentialModel(t *testing.T) {
	m, err := NewMap(4, 1024, nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	model := make(map[uint32]uint32)
	rng := uint64(12345)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for i := 0; i < 20_000; i++ {
		key := uint32(next() % 600) // < capacity so shards never fill
		val := uint32(next())
		switch next() % 10 {
		case 0, 1, 2, 3: // put
			got, err := h.Put(key, val)
			if err != nil {
				t.Fatal(err)
			}
			want := EmptyVal
			if old, ok := model[key]; ok {
				want = uint64(old)
			}
			if got != want {
				t.Fatalf("op %d: Put(%d) = %#x, model %#x", i, key, got, want)
			}
			model[key] = val
		case 4: // delete
			got, err := h.Delete(key)
			if err != nil {
				t.Fatal(err)
			}
			want := EmptyVal
			if old, ok := model[key]; ok {
				want = uint64(old)
			}
			if got != want {
				t.Fatalf("op %d: Delete(%d) = %#x, model %#x", i, key, got, want)
			}
			delete(model, key)
		default: // get
			got, err := h.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			want := EmptyVal
			if v, ok := model[key]; ok {
				want = uint64(v)
			}
			if got != want {
				t.Fatalf("op %d: Get(%d) = %#x, model %#x", i, key, got, want)
			}
		}
	}
	n, err := h.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != uint64(len(model)) {
		t.Fatalf("Len = %d, model has %d", n, len(model))
	}
	if m.Len() != uint64(len(model)) {
		t.Fatalf("quiescent Len = %d, model has %d", m.Len(), len(model))
	}
}

func TestMapFixedCapacity(t *testing.T) {
	// One shard, capacity 8: the 9th distinct key must fail with
	// FullVal, and deleting one key must free a slot again.
	m, err := NewMap(1, 8, nil, coreFactory("hybcomb"))
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, _ := m.NewHandle()
	for k := uint32(0); k < 8; k++ {
		if got, _ := h.Put(k, k); got != EmptyVal {
			t.Fatalf("Put(%d) = %#x, want EmptyVal", k, got)
		}
	}
	if got, _ := h.Put(99, 1); got != FullVal {
		t.Fatalf("Put into full shard = %#x, want FullVal", got)
	}
	// Overwrites still work at capacity.
	if got, _ := h.Put(3, 33); got != 3 {
		t.Fatalf("overwrite at capacity = %#x, want old value 3", got)
	}
	if got, _ := h.Delete(5); got != 5 {
		t.Fatalf("Delete(5) = %#x", got)
	}
	if got, _ := h.Put(99, 1); got != EmptyVal {
		t.Fatalf("Put after delete = %#x, want EmptyVal (tombstone reused)", got)
	}
	if got, _ := h.Get(99); got != 1 {
		t.Fatalf("Get(99) = %#x, want 1", got)
	}
	if _, err := NewMap(1, 0, nil, coreFactory("hybcomb")); !errors.Is(err, core.ErrBadOption) {
		t.Fatalf("NewMap(capacity=0) = %v, want ErrBadOption", err)
	}
}
