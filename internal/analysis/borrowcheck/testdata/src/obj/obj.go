// Package obj exercises borrowcheck: DispatchBatch implementations
// that retain their borrowed slices are flagged; element copies,
// immediate closures, and deferred teardown are not.
package obj

// Req mirrors the core contract's request.
type Req struct{ Op, Arg uint64 }

var lastBatch []Req // a package-level stash, for the global-store case

// fieldStore retains reqs in a field.
type fieldStore struct {
	stash   []Req
	results []uint64
}

func (o *fieldStore) DispatchBatch(reqs []Req, results []uint64) {
	o.stash = reqs // want `stores an alias of reqs into field or variable stash`
	for i := range reqs {
		results[i] = reqs[i].Arg
	}
}

// resliceStore retains a sub-slice — still the same backing array.
type resliceStore struct{ tail []uint64 }

func (o *resliceStore) DispatchBatch(reqs []Req, results []uint64) {
	o.tail = results[1:] // want `stores an alias of results into field or variable tail`
}

// globalStore retains reqs in a package-level variable.
type globalStore struct{}

func (globalStore) DispatchBatch(reqs []Req, results []uint64) {
	lastBatch = reqs // want `stores an alias of reqs into package-level lastBatch`
}

// localAliasStore launders the alias through a local first.
type localAliasStore struct{ stash []Req }

func (o *localAliasStore) DispatchBatch(reqs []Req, results []uint64) {
	r := reqs
	sub := r[:1]
	o.stash = sub // want `stores an alias of reqs into field or variable stash`
}

// chanSend hands the borrowed slice to another goroutine's inbox.
type chanSend struct{ ch chan []Req }

func (o *chanSend) DispatchBatch(reqs []Req, results []uint64) {
	o.ch <- reqs // want `sends an alias of reqs on a channel`
}

// goCapture starts a goroutine that touches the batch after return.
type goCapture struct{ sum uint64 }

func (o *goCapture) DispatchBatch(reqs []Req, results []uint64) {
	go func() { // want `starts a goroutine capturing reqs`
		for _, r := range reqs {
			o.sum += r.Arg
		}
	}()
}

// storedClosure keeps a closure over the batch for later.
type storedClosure struct{ replay func() }

func (o *storedClosure) DispatchBatch(reqs []Req, results []uint64) {
	o.replay = func() { // want `closure captures reqs and may escape DispatchBatch`
		_ = reqs[0]
	}
}

// cleanCounter is the idiomatic implementation: reads elements, writes
// results, retains nothing.
type cleanCounter struct{ v uint64 }

func (o *cleanCounter) DispatchBatch(reqs []Req, results []uint64) {
	for i, r := range reqs {
		o.v += r.Arg
		results[i] = o.v
	}
}

// copier keeps the data (not the slices) by copying elements out —
// the sanctioned way to retain a batch.
type copier struct {
	log []Req
	buf []uint64
}

func (o *copier) DispatchBatch(reqs []Req, results []uint64) {
	o.log = append(o.log[:0], reqs...)     // element copy into own buffer
	o.buf = append([]uint64{}, results...) // clone
	copy(o.buf, results)
	for i := range results {
		results[i] = 0
	}
}

// deferredZero touches results in a defer: deferred calls run before
// DispatchBatch returns, exactly like the PoisonLatch recover.
type deferredZero struct{ poisoned bool }

func (o *deferredZero) DispatchBatch(reqs []Req, results []uint64) {
	defer func() {
		if recover() != nil {
			o.poisoned = true
			for i := range results {
				results[i] = 0
			}
		}
	}()
	results[0] = reqs[0].Arg
}

// immediateClosure runs within the call: allowed.
type immediateClosure struct{ v uint64 }

func (o *immediateClosure) DispatchBatch(reqs []Req, results []uint64) {
	func() {
		for i := range reqs {
			results[i] = o.v
		}
	}()
}

// passAlong lends the borrow downward — calls receive the slices under
// the same contract, which is how the latch itself passes them on.
type passAlong struct {
	inner interface{ apply([]Req, []uint64) }
}

func (o *passAlong) DispatchBatch(reqs []Req, results []uint64) {
	o.inner.apply(reqs, results)
}

// otherShape is not the Object contract; borrowcheck ignores it.
func DispatchBatch(n int, keep bool) {}
