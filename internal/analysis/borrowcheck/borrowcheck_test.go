package borrowcheck_test

import (
	"testing"

	"hybsync/internal/analysis/antest"
	"hybsync/internal/analysis/borrowcheck"
)

func TestBorrowCheck(t *testing.T) {
	antest.Run(t, borrowcheck.Analyzer, "obj")
}
