// Package borrowcheck enforces the DispatchBatch aliasing contract
// from PR 5: the reqs and results slices are borrowed only for the
// call. Constructions reuse both buffers for the next run the moment
// DispatchBatch returns, so an implementation that stores either slice
// (or a reslice of it) into a field, global, channel, or escaping
// closure holds an alias whose contents will be silently rewritten
// mid-flight — the classic torn-batch bug.
//
// What counts as retaining is the backing array, not the data: copying
// elements out (copy, append onto a separate buffer, element reads and
// writes) is fine and idiomatic; only aliases of the parameter slices
// themselves — the bare identifier, a reslice of it, or a local alias
// of either — may not outlive the call. Deferred closures run before
// DispatchBatch returns and may touch the slices (the PoisonLatch's
// own recover does); goroutines outlive the call and may not.
package borrowcheck

import (
	"go/ast"
	"go/types"

	"hybsync/internal/analysis/lintkit"
)

// Analyzer is the borrowcheck analysis.
var Analyzer = &lintkit.Analyzer{
	Name: "borrowcheck",
	Doc:  "DispatchBatch must not retain its reqs/results slices beyond the call",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Name.Name != "DispatchBatch" {
				continue
			}
			if params := objectShapeParams(pass, fd); params != nil {
				checkBody(pass, fd, params)
			}
		}
	}
	return nil
}

// objectShapeParams returns the parameter variables if fd has the
// Object contract shape (two slice parameters), else nil.
func objectShapeParams(pass *lintkit.Pass, fd *ast.FuncDecl) []*types.Var {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	if sig.Params().Len() != 2 {
		return nil
	}
	var params []*types.Var
	for i := 0; i < 2; i++ {
		p := sig.Params().At(i)
		if _, ok := p.Type().Underlying().(*types.Slice); !ok {
			return nil
		}
		params = append(params, p)
	}
	return params
}

type checker struct {
	pass *lintkit.Pass
	// borrowed maps each alias (the parameters plus locals assigned
	// from them) to the parameter whose backing array it shares, so
	// diagnostics name the root.
	borrowed map[types.Object]types.Object
}

func checkBody(pass *lintkit.Pass, fd *ast.FuncDecl, params []*types.Var) {
	c := &checker{pass: pass, borrowed: make(map[types.Object]types.Object)}
	for _, p := range params {
		if p.Name() != "" && p.Name() != "_" {
			c.borrowed[p] = p
		}
	}
	c.collectAliases(fd.Body)
	c.findViolations(fd.Body)
}

// collectAliases grows the borrowed set with locals assigned a direct
// alias (the slice itself or a reslice of it), iterating to a
// fixpoint so chains like `r := reqs; s := r[1:]` are tracked.
func (c *checker) collectAliases(body *ast.BlockStmt) {
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				root := c.aliasRoot(rhs)
				if root == nil {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := c.pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = c.pass.TypesInfo.Uses[id]
				}
				if lv, ok := obj.(*types.Var); ok && c.borrowed[lv] == nil && lv.Parent() != lv.Pkg().Scope() {
					c.borrowed[lv] = root
					changed = true
				}
			}
			return true
		})
	}
}

// aliasRoot returns the borrowed parameter e aliases, or nil. Only
// expressions sharing the backing array count: the identifier itself,
// a reslice, or a parenthesization. Anything that copies elements
// (append to another buffer, copy) is not an alias.
func (c *checker) aliasRoot(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := c.pass.TypesInfo.Uses[e]; obj != nil {
			return c.borrowed[obj]
		}
	case *ast.SliceExpr:
		return c.aliasRoot(e.X)
	}
	return nil
}

func (c *checker) findViolations(body *ast.BlockStmt) {
	// FuncLits in these positions do not escape the call.
	invoked := make(map[*ast.FuncLit]bool)

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if root := c.aliasRoot(n.Rhs[i]); root != nil && c.escapingTarget(lhs) {
					c.pass.Reportf(n.Pos(), "DispatchBatch stores an alias of %s into %s: reqs/results are borrowed only for the call", root.Name(), describeTarget(lhs))
				}
			}
		case *ast.SendStmt:
			if root := c.aliasRoot(n.Value); root != nil {
				c.pass.Reportf(n.Pos(), "DispatchBatch sends an alias of %s on a channel: reqs/results are borrowed only for the call", root.Name())
			}
		case *ast.GoStmt:
			// The goroutine outlives the call whatever it was given.
			for _, arg := range n.Call.Args {
				if root := c.aliasRoot(arg); root != nil {
					c.pass.Reportf(n.Pos(), "DispatchBatch passes an alias of %s to a goroutine that outlives the call", root.Name())
				}
			}
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				if root := c.captures(lit); root != nil {
					c.pass.Reportf(n.Pos(), "DispatchBatch starts a goroutine capturing %s, which outlives the call", root.Name())
				}
				invoked[lit] = true // reported here; skip the generic closure pass
			}
		case *ast.DeferStmt:
			// Deferred calls run before DispatchBatch returns: allowed
			// (the PoisonLatch recover is one).
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				invoked[lit] = true
			}
		case *ast.CallExpr:
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				invoked[lit] = true // immediately invoked: runs within the call
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if root := c.aliasRoot(res); root != nil {
					c.pass.Reportf(n.Pos(), "DispatchBatch returns an alias of %s: reqs/results are borrowed only for the call", root.Name())
				}
			}
		}
		return true
	})

	// Any remaining closure that captures a borrowed slice may be
	// stored or passed onward — assume it escapes.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || invoked[lit] {
			return true
		}
		if root := c.captures(lit); root != nil {
			c.pass.Reportf(lit.Pos(), "closure captures %s and may escape DispatchBatch: reqs/results are borrowed only for the call", root.Name())
			return false
		}
		return true
	})
}

// captures returns a borrowed object referenced inside lit, or nil.
func (c *checker) captures(lit *ast.FuncLit) types.Object {
	var found types.Object
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := c.pass.TypesInfo.Uses[id]; obj != nil && c.borrowed[obj] != nil {
				found = c.borrowed[obj]
				return false
			}
		}
		return true
	})
	return found
}

// escapingTarget reports whether assigning to lhs stores the value
// somewhere that outlives the call: a field or qualified variable, a
// package-level variable, or an element of a non-local container.
func (c *checker) escapingTarget(lhs ast.Expr) bool {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := c.pass.TypesInfo.ObjectOf(lhs).(*types.Var)
		return ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
	case *ast.SelectorExpr:
		return true
	case *ast.IndexExpr:
		// results[i] = v writes an element (fine); flagging matters
		// when the container itself is non-local: s.runs[i] = reqs.
		return c.escapingTarget(lhs.X)
	case *ast.StarExpr:
		return true // store through a pointer: assume it outlives
	}
	return false
}

func describeTarget(lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return "package-level " + lhs.Name
	case *ast.SelectorExpr:
		return "field or variable " + lhs.Sel.Name
	case *ast.IndexExpr:
		return "a non-local container element"
	case *ast.StarExpr:
		return "a pointer target"
	}
	return "an escaping location"
}
