// Package antest runs lintkit analyzers over fixture packages, in the
// style of golang.org/x/tools/go/analysis/analysistest: each analyzer
// keeps Go source fixtures under testdata/src/<pkg>/, annotated with
//
//	x := busyWait() // want `raw spin loop`
//
// comments, and the test fails on any diagnostic without a matching
// expectation or expectation without a matching diagnostic — so every
// fixture proves both that the analyzer fires and that it would fail
// without the analyzer.
//
// Fixture packages import each other by bare directory name (a fixture
// "core" package stands in for hybsync/internal/core) and may import
// the real standard library, which is type-checked from GOROOT source
// so the suite runs offline. Fixtures are type-checked with the gc
// sizes for amd64 regardless of host, keeping padcheck expectations
// host-independent.
package antest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"hybsync/internal/analysis/lintkit"
)

// Run loads each fixture package under testdata/src and applies a to
// it, checking diagnostics against the // want comments in that
// package's files.
func Run(t *testing.T, a *lintkit.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := newLoader(t, filepath.Join("testdata", "src"))
	for _, path := range pkgpaths {
		pkg := l.load(path)
		var diags []lintkit.Diagnostic
		pass := &lintkit.Pass{
			Analyzer:   a,
			Fset:       l.fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: fixtureSizes,
			Report:     func(d lintkit.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer %s failed: %v", path, a.Name, err)
			continue
		}
		checkWants(t, l.fset, path, pkg.files, diags)
	}
}

// fixtureSizes pins fixture layouts to gc/amd64 so expectations do not
// depend on the host the tests run on.
var fixtureSizes = types.SizesFor("gc", "amd64")

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	t       *testing.T
	root    string
	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*loadedPkg
	loading map[string]bool
}

func newLoader(t *testing.T, root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		t:       t,
		root:    root,
		fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*loadedPkg),
		loading: make(map[string]bool),
	}
}

// Import makes the loader a types.Importer: fixture directories win,
// anything else resolves against the standard library.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, path); isDir(dir) {
		return l.load(path).pkg, nil
	}
	return l.std.Import(path)
}

func (l *loader) load(path string) *loadedPkg {
	l.t.Helper()
	if p, ok := l.pkgs[path]; ok {
		return p
	}
	if l.loading[path] {
		l.t.Fatalf("fixture import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		l.t.Fatalf("fixture package %q: %v", path, err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		l.t.Fatalf("fixture package %q has no Go files", path)
	}

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			l.t.Fatalf("fixture package %q: %v", path, err)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{Importer: l, Sizes: fixtureSizes}
	pkg, err := tc.Check(path, l.fset, files, info)
	if err != nil {
		l.t.Fatalf("fixture package %q does not type-check: %v", path, err)
	}
	p := &loadedPkg{pkg: pkg, files: files, info: info}
	l.pkgs[path] = p
	return p
}

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}

// A want is one expectation: a diagnostic whose message matches re
// must be reported on this file and line.
type want struct {
	pos     token.Position // of the comment, for failure messages
	re      *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted or backquoted patterns off a want comment.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func parseWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]map[int][]*want {
	t.Helper()
	wants := make(map[string]map[int][]*want)
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				pats := wantRE.FindAllString(rest, -1)
				if len(pats) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, pat := range pats {
					pat = pat[1 : len(pat)-1] // strip quotes
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					byLine := wants[pos.Filename]
					if byLine == nil {
						byLine = make(map[int][]*want)
						wants[pos.Filename] = byLine
					}
					byLine[pos.Line] = append(byLine[pos.Line], &want{pos: pos, re: re})
				}
			}
		}
	}
	return wants
}

func checkWants(t *testing.T, fset *token.FileSet, pkg string, files []*ast.File, diags []lintkit.Diagnostic) {
	t.Helper()
	wants := parseWants(t, fset, files)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, w := range wants[pos.Filename][pos.Line] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for _, byLine := range wants {
		lines := make([]int, 0, len(byLine))
		for line := range byLine {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, w := range byLine[line] {
				if !w.matched {
					t.Errorf("%s: expected diagnostic matching %q, got none (package %s)", w.pos, w.re, pkg)
				}
			}
		}
	}
}
