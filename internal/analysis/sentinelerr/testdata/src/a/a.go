// Package a exercises sentinelerr: direct comparisons against
// sentinel errors are flagged, errors.Is and the Is-method protocol
// are not.
package a

import (
	"errors"

	"perr"
)

var ErrLocal = errors.New("local sentinel")

var errUnexported = errors.New("unexported: not a sentinel by convention")

func compare(err error) int {
	if err == ErrLocal { // want `comparison == sentinel error ErrLocal`
		return 1
	}
	if err != perr.ErrPoisoned { // want `comparison != sentinel error perr.ErrPoisoned`
		return 2
	}
	if perr.ErrNotReady == err { // want `comparison == sentinel error perr.ErrNotReady`
		return 3
	}
	if err == errUnexported { // lowercase name: outside the ErrXxx convention
		return 4
	}
	if err == nil || ErrLocal == nil { // nil checks are identity-safe
		return 5
	}
	if errors.Is(err, perr.ErrPoisoned) { // the required form
		return 6
	}
	if err == perr.ErrNotReady { //hyblint:senteq identity intended: never wrapped here
		return 7
	}
	return 0
}

func switches(err error) int {
	switch err {
	case nil:
		return 0
	case perr.ErrPoisoned: // want `switch case on sentinel error perr.ErrPoisoned`
		return 1
	case ErrLocal: // want `switch case on sentinel error ErrLocal`
		return 2
	}
	switch n := compare(err); n { // non-error tag: ignored
	case 1:
		return n
	}
	return -1
}

// WrapErr wraps sentinels, making the direct comparisons above wrong.
type WrapErr struct{ inner error }

func (w *WrapErr) Error() string { return "wrap: " + w.inner.Error() }

// Is implements the errors.Is protocol; identity comparison against
// the sentinel is the point here and must not be flagged.
func (w *WrapErr) Is(target error) bool {
	return target == perr.ErrPoisoned || target == w.inner
}

// IsNotReady has the wrong shape for the protocol (no receiver use is
// fine, but it is not named Is): still flagged.
func IsNotReady(err error) bool {
	return err == perr.ErrNotReady // want `comparison == sentinel error perr.ErrNotReady`
}
