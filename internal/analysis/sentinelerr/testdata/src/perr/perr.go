// Package perr is a fixture dependency: a package exporting sentinel
// errors, standing in for hybsync/internal/core.
package perr

import "errors"

var (
	ErrPoisoned = errors.New("executor poisoned")
	ErrNotReady = errors.New("operation not ready")
)

// NotAnError shares the Err prefix but is not an error value; the
// analyzer must ignore it.
var ErrCount = 0
