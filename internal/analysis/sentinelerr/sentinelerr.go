// Package sentinelerr flags direct ==/!= comparisons against sentinel
// error values.
//
// The repository's fault containment (PR 7) wraps its sentinels: a
// poisoned executor reports a *PoisonError that only Unwraps to
// core.ErrPoisoned, so `err == ErrPoisoned` is silently false exactly
// when it matters. The contract is therefore errors.Is everywhere —
// for ErrPoisoned, and uniformly for the bare sentinels (ErrClosed,
// ErrNotReady, ErrWaitTimeout, ...) so call sites stay correct if a
// later PR wraps those too.
//
// A sentinel is any package-level variable of type error whose name
// matches ^Err[A-Z0-9]. Both binary comparisons and switch cases over
// an error tag are flagged. Two escapes are deliberate: the body of an
// `Is(error) bool` method (the errors.Is protocol is where identity
// comparison belongs), and a //hyblint:senteq waiver on the line.
package sentinelerr

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"

	"hybsync/internal/analysis/lintkit"
)

// Analyzer is the sentinelerr analysis.
var Analyzer = &lintkit.Analyzer{
	Name: "sentinelerr",
	Doc:  "flags ==/!= against sentinel errors; poisoning wraps them, so use errors.Is",
	Run:  run,
}

var sentinelName = regexp.MustCompile(`^Err[A-Z0-9]`)

func run(pass *lintkit.Pass) error {
	errType := types.Universe.Lookup("error").Type()

	// isSentinel reports whether e names a package-level error variable
	// following the ErrXxx convention, in any package.
	isSentinel := func(e ast.Expr) bool {
		var id *ast.Ident
		switch e := ast.Unparen(e).(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return false
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return false
		}
		return sentinelName.MatchString(v.Name()) && types.Identical(v.Type(), errType)
	}

	isNil := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}

	check := func(n ast.Node) {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if n.Op != token.EQL && n.Op != token.NEQ {
				return
			}
			for _, side := range []ast.Expr{n.X, n.Y} {
				if isSentinel(side) && !isNil(n.X) && !isNil(n.Y) {
					if !pass.Directive(n, "senteq") {
						pass.Reportf(n.Pos(), "comparison %s sentinel error %s: poisoning wraps sentinels, use errors.Is", n.Op, exprString(side))
					}
					return
				}
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return
			}
			tv, ok := pass.TypesInfo.Types[n.Tag]
			if !ok || !types.Identical(tv.Type, errType) {
				return
			}
			for _, stmt := range n.Body.List {
				cc := stmt.(*ast.CaseClause)
				for _, e := range cc.List {
					if isSentinel(e) && !pass.Directive(cc, "senteq") {
						pass.Reportf(e.Pos(), "switch case on sentinel error %s: poisoning wraps sentinels, use errors.Is", exprString(e))
					}
				}
			}
		}
	}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && isIsMethod(pass, fd) {
				// The errors.Is protocol: an Is(error) bool method is
				// where identity comparison against sentinels belongs.
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				if n != nil {
					check(n)
				}
				return true
			})
		}
	}
	return nil
}

// isIsMethod reports whether fd is a method named Is with signature
// func(error) bool.
func isIsMethod(pass *lintkit.Pass, fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Is" || fd.Recv == nil {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := fn.Type().(*types.Signature)
	errType := types.Universe.Lookup("error").Type()
	return sig.Params().Len() == 1 &&
		types.Identical(sig.Params().At(0).Type(), errType) &&
		sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if x, ok := e.X.(*ast.Ident); ok {
			return x.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	}
	return "?"
}
