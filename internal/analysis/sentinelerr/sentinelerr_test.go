package sentinelerr_test

import (
	"testing"

	"hybsync/internal/analysis/antest"
	"hybsync/internal/analysis/sentinelerr"
)

func TestSentinelErr(t *testing.T) {
	antest.Run(t, sentinelerr.Analyzer, "a")
}
