// Package hyblint assembles the repo's analyzer suite: the five
// machine-checked concurrency contracts that code review used to carry
// by convention. cmd/hyblint exposes the suite as a go vet -vettool.
package hyblint

import (
	"hybsync/internal/analysis/backoffcheck"
	"hybsync/internal/analysis/borrowcheck"
	"hybsync/internal/analysis/latchdispatch"
	"hybsync/internal/analysis/lintkit"
	"hybsync/internal/analysis/padcheck"
	"hybsync/internal/analysis/sentinelerr"
)

// Analyzers returns the full hyblint suite in reporting order.
func Analyzers() []*lintkit.Analyzer {
	return []*lintkit.Analyzer{
		padcheck.Analyzer,
		backoffcheck.Analyzer,
		latchdispatch.Analyzer,
		borrowcheck.Analyzer,
		sentinelerr.Analyzer,
	}
}
