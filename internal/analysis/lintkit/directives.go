package lintkit

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive comments are hyblint's annotation surface: a comment of
// the exact form
//
//	//hyblint:name
//
// (no space after //, like //go:build) either on the line of a
// construct or as the last line of the comment group immediately above
// it. Two kinds exist: markers that opt a declaration into a contract
// (//hyblint:padded, //hyblint:padsep on struct types) and waivers
// that suppress a finding at one site with reviewer sign-off
// (//hyblint:rawspin, //hyblint:latchok, //hyblint:senteq). Anything
// after the name on the same comment line is free-form justification.
const directivePrefix = "//hyblint:"

// Directive reports whether a hyblint directive named name is attached
// to node: on the source line where node starts, or on the line just
// above it (covering doc comments, whose group ends there).
func (p *Pass) Directive(node ast.Node, name string) bool {
	file := p.fileOf(node.Pos())
	if file == nil {
		return false
	}
	dirs := p.fileDirectives(file)
	line := p.Fset.Position(node.Pos()).Line
	for _, d := range dirs[line] {
		if d == name {
			return true
		}
	}
	for _, d := range dirs[line-1] {
		if d == name {
			return true
		}
	}
	return false
}

func (p *Pass) fileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// fileDirectives lazily indexes a file's hyblint directives by the
// line each one sits on.
func (p *Pass) fileDirectives(f *ast.File) map[int][]string {
	if p.directives == nil {
		p.directives = make(map[*ast.File]map[int][]string)
	}
	if m, ok := p.directives[f]; ok {
		return m
	}
	m := make(map[int][]string)
	for _, g := range f.Comments {
		for _, c := range g.List {
			text, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			name, _, _ := strings.Cut(text, " ")
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			line := p.Fset.Position(c.Pos()).Line
			m[line] = append(m[line], name)
		}
	}
	p.directives[f] = m
	return m
}
