// Package lintkit is the minimal analyzer framework hyblint runs on.
//
// It mirrors the shape of golang.org/x/tools/go/analysis — an Analyzer
// holds a Run function that receives a Pass with the parsed files and
// full type information, and reports Diagnostics — but is built from
// the standard library only, so the repository's static checks carry
// no module dependencies. The subset is deliberate: hyblint's
// analyzers are all single-package and fact-free, which is exactly the
// part of go/analysis that needs no external machinery. If the tree
// ever grows a cross-package analysis, swap this package for the real
// framework; the Analyzer/Pass field names line up one to one.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and as the enable
	// flag on the hyblint command line. It must be a valid Go
	// identifier.
	Name string

	// Doc is the analyzer's documentation: a one-line summary, a blank
	// line, then detail.
	Doc string

	// Run applies the analyzer to one package. It reports findings via
	// pass.Report and returns an error only for internal failures (a
	// broken invariant in the analyzer itself, never a finding).
	Run func(*Pass) error
}

// String returns the analyzer's name.
func (a *Analyzer) String() string { return a.Name }

// A Pass provides one package's syntax and types to an Analyzer's Run.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	TypesSizes types.Sizes

	// Report delivers one diagnostic. The driver supplies it.
	Report func(Diagnostic)

	directives map[*ast.File]map[int][]string
}

// A Diagnostic is one finding, anchored to a position in the package.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// InTestFile reports whether pos falls in a _test.go file. The
// concurrency contracts govern production hot paths; analyzers that
// exempt tests (padcheck's discovery, backoffcheck's wait loops) gate
// on this.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	if f == nil {
		return false
	}
	name := f.Name()
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
