// Package measure is an out-of-scope fixture: packages beside the
// constructions (chaos wrappers, measurement cores, native objects)
// may call DispatchBatch directly.
package measure

import "core"

// Probe drives an object directly; not a construction, not flagged.
func Probe(obj core.Object, reqs []core.Req, results []uint64) {
	obj.DispatchBatch(reqs, results)
}
