package core

// Test files are exempt: tests drive objects directly to assert
// dispatch semantics without a construction in the way.
func driveDirect(obj Object, reqs []Req, results []uint64) {
	obj.DispatchBatch(reqs, results)
}
