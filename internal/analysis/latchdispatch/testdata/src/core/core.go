// Package core is a fixture mirror of hybsync/internal/core: the
// Object contract, the PoisonLatch, and construction code that must
// dispatch through it.
package core

// Req is one operation of a batch.
type Req struct{ Op, Arg uint64 }

// Object is the batch-aware execution contract.
type Object interface {
	DispatchBatch(reqs []Req, results []uint64)
}

// Func adapts a legacy dispatch function; its DispatchBatch calls the
// function, not another DispatchBatch, so it reports nothing.
type Func func(op, arg uint64) uint64

// DispatchBatch implements Object.
func (f Func) DispatchBatch(reqs []Req, results []uint64) {
	for i, r := range reqs {
		results[i] = f(r.Op, r.Arg)
	}
}

// PoisonLatch is the fault-containment latch.
type PoisonLatch struct{ poisoned bool }

// Dispatch is the guarded servicing call: the one place a direct
// DispatchBatch call is legitimate.
func (l *PoisonLatch) Dispatch(obj Object, reqs []Req, results []uint64) {
	defer func() {
		if recover() != nil {
			l.poisoned = true
			for i := range results {
				results[i] = 0
			}
		}
	}()
	if l.poisoned {
		return
	}
	obj.DispatchBatch(reqs, results)
}

// goodServer routes its run through the latch.
type goodServer struct {
	latch PoisonLatch
	obj   Object
}

func (s *goodServer) serve(reqs []Req, results []uint64) {
	s.latch.Dispatch(s.obj, reqs, results)
}

// badServer bypasses the latch: a panic in obj would deadlock its
// waiters instead of poisoning the executor.
type badServer struct{ obj Object }

func (s *badServer) serve(reqs []Req, results []uint64) {
	s.obj.DispatchBatch(reqs, results) // want `direct Object.DispatchBatch call bypasses fault containment`
}

// concreteBypass shows the shape match catches concrete receivers,
// not just the Object interface.
func concreteBypass(f Func, reqs []Req, results []uint64) {
	f.DispatchBatch(reqs, results) // want `direct Object.DispatchBatch call bypasses fault containment`
}

// waived documents a reviewed exception.
func waived(obj Object, reqs []Req, results []uint64) {
	obj.DispatchBatch(reqs, results) //hyblint:latchok fixture: pre-latch bootstrap path
}

// unrelated DispatchBatch shapes are not the Object contract.
type scheduler struct{}

func (scheduler) DispatchBatch(n int, flush bool) {}

func otherShape(s scheduler) {
	s.DispatchBatch(1, true) // two non-slice params: not Object.DispatchBatch
}
