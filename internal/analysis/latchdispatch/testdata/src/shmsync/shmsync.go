// Package shmsync is an in-scope fixture construction that imports
// the core fixture: the latch choke point spans packages.
package shmsync

import "core"

// Server embeds the latch like the real constructions do.
type Server struct {
	Latch core.PoisonLatch
	Obj   core.Object
}

func (s *Server) serveGood(reqs []core.Req, results []uint64) {
	s.Latch.Dispatch(s.Obj, reqs, results)
}

func (s *Server) serveBad(reqs []core.Req, results []uint64) {
	s.Obj.DispatchBatch(reqs, results) // want `direct Object.DispatchBatch call bypasses fault containment`
}

// A closure does not escape the rule.
func (s *Server) serveDeferred(reqs []core.Req, results []uint64) {
	run := func() {
		s.Obj.DispatchBatch(reqs, results) // want `direct Object.DispatchBatch call bypasses fault containment`
	}
	run()
}
