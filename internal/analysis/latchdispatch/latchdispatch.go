// Package latchdispatch enforces the fault-containment choke point:
// inside the construction packages (internal/core, internal/shmsync,
// internal/spin, internal/shard), Object.DispatchBatch must never be
// called directly — every dispatch flows through PoisonLatch.Dispatch,
// which is what recovers a panicking object into the poisoned state
// and zero-fills the results.
//
// PR 9's hybrid executor showed why reviewer memory is not enough: a
// new construction assembles its dispatch path from scratch, and one
// direct obj.DispatchBatch(...) call silently opts it out of the PR 7
// fault model (a panic in the object deadlocks every waiter instead
// of poisoning the executor). The only legitimate direct call is the
// one inside PoisonLatch.Dispatch itself.
//
// Out-of-scope packages (chaos wrappers, conc objects, measure) may
// call DispatchBatch freely: they sit below or beside the latch, not
// above it. A reviewed in-scope exception carries //hyblint:latchok.
package latchdispatch

import (
	"go/ast"
	"go/types"
	"strings"

	"hybsync/internal/analysis/lintkit"
)

// Analyzer is the latchdispatch analysis.
var Analyzer = &lintkit.Analyzer{
	Name: "latchdispatch",
	Doc:  "construction packages must dispatch through PoisonLatch.Dispatch, never Object.DispatchBatch directly",
	Run:  run,
}

// scopePkgs are the construction packages, matched by final import
// path segment so the analyzer covers both the real tree
// (hybsync/internal/core) and fixtures (core).
var scopePkgs = map[string]bool{"core": true, "shmsync": true, "spin": true, "shard": true}

func run(pass *lintkit.Pass) error {
	path := pass.Pkg.Path()
	if !scopePkgs[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isLatchDispatch(fd) {
				continue // the one legitimate direct call site
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isDispatchBatchCall(pass, call) {
					return true
				}
				if pass.InTestFile(call.Pos()) || pass.Directive(call, "latchok") {
					return true
				}
				pass.Reportf(call.Pos(), "direct Object.DispatchBatch call bypasses fault containment: route it through PoisonLatch.Dispatch (or waive with //hyblint:latchok)")
				return true
			})
		}
	}
	return nil
}

// isLatchDispatch reports whether fd is the Dispatch method of
// PoisonLatch — the guarded call the rest of the tree must use.
func isLatchDispatch(fd *ast.FuncDecl) bool {
	if fd.Name.Name != "Dispatch" || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "PoisonLatch"
}

// isDispatchBatchCall reports whether call invokes a method named
// DispatchBatch with the Object shape: two parameters, both slices.
// Matching on shape rather than one interface identity means every
// implementer and every embedding is covered, fixtures included.
func isDispatchBatchCall(pass *lintkit.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DispatchBatch" {
		return false
	}
	if _, ok := pass.TypesInfo.Selections[sel]; !ok {
		return false // qualified identifier (pkg.DispatchBatch), not a method
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		if _, ok := sig.Params().At(i).Type().Underlying().(*types.Slice); !ok {
			return false
		}
	}
	return true
}
