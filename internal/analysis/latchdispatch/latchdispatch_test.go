package latchdispatch_test

import (
	"testing"

	"hybsync/internal/analysis/antest"
	"hybsync/internal/analysis/latchdispatch"
)

func TestLatchDispatch(t *testing.T) {
	antest.Run(t, latchdispatch.Analyzer, "core", "shmsync", "measure")
}
