// Package backoff is a fixture standing in for hybsync/internal/backoff:
// the one place raw spinning is allowed, because this is the waiter
// everything else must use.
package backoff

import (
	"runtime"
	"sync/atomic"
)

// Backoff is the adaptive waiter.
type Backoff struct{ n int }

// Wait performs one wait step.
func (b *Backoff) Wait() {
	b.n++
	if b.n > 4 {
		runtime.Gosched()
	}
}

// Drain shows the exemption: inside package backoff a raw spin loop is
// the implementation, not a violation.
func Drain(flag *atomic.Bool) {
	for flag.Load() {
		runtime.Gosched()
	}
}
