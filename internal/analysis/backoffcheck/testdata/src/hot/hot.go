// Package hot exercises backoffcheck in a hot-path package: raw spin
// loops are flagged, waits routed through backoff are not, and
// lock-free retry loops (which do work per iteration) are left alone.
package hot

import (
	"runtime"
	"sync/atomic"
	"time"

	"backoff"
)

func emptySpin(flag *atomic.Bool) {
	for flag.Load() { // want `raw spin loop`
	}
}

func goschedSpin(locked *atomic.Bool) {
	for locked.Load() { // want `raw spin loop`
		runtime.Gosched()
	}
}

func sleepSpin(seq *atomic.Uint64, pos uint64) {
	for { // want `raw spin loop`
		if seq.Load() == pos {
			break
		}
		time.Sleep(time.Microsecond)
	}
}

func legacyAtomicSpin(p *uint32) {
	for atomic.LoadUint32(p) != 0 { // want `raw spin loop`
		runtime.Gosched()
	}
}

func assignSpin(next *atomic.Pointer[int]) *int {
	var v *int
	for v = next.Load(); v == nil; v = next.Load() { // want `raw spin loop`
	}
	return v
}

func countedSpin(flag *atomic.Bool) (retries uint64) {
	for flag.Load() { // want `raw spin loop`
		retries++
	}
	return retries
}

// backoffWait is the required pattern: the Wait call is the loop's
// work, so the body is not pure waiting.
func backoffWait(locked *atomic.Bool) {
	var b backoff.Backoff
	for locked.Load() {
		b.Wait()
	}
}

// casRetry is a lock-free retry loop, not a spin wait: the CAS does
// real work each iteration.
func casRetry(v *atomic.Uint64) {
	for {
		old := v.Load()
		if v.CompareAndSwap(old, old+1) {
			return
		}
	}
}

// drainWork reads atomics but does per-iteration work.
func drainWork(head *atomic.Uint64, serve func(uint64)) {
	for head.Load() != 0 {
		serve(head.Load())
	}
}

// waived documents a reviewed exception.
func waived(flag *atomic.Bool) {
	//hyblint:rawspin two-iteration handoff window, measured cheaper than a waiter
	for flag.Load() {
	}
}

// timerLoop involves no atomic state: out of scope.
func timerLoop(done func() bool) {
	for !done() {
		time.Sleep(time.Millisecond)
	}
}
