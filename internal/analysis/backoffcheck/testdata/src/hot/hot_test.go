package hot

import (
	"runtime"
	"sync/atomic"
)

// Test files are exempt: tests may busy-wait on completion flags.
func spinInTest(done *atomic.Bool) {
	for !done.Load() {
		runtime.Gosched()
	}
}
