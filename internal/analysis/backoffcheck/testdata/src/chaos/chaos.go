// Package chaos is a fixture standing in for hybsync/internal/chaos:
// its perturbers sleep and spin raw by design, so the whole package is
// exempt.
package chaos

import (
	"sync/atomic"
	"time"
)

// Stall busy-sleeps until released; deliberate fault injection.
func Stall(released *atomic.Bool) {
	for !released.Load() {
		time.Sleep(time.Microsecond)
	}
}
