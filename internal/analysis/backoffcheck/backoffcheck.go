// Package backoffcheck flags raw spin loops in hot-path packages.
//
// PR 2 consolidated every wait loop onto internal/backoff — the
// spin→Gosched→sleep adaptive waiter — and PR 7 hung the stall
// watchdog and the chaos perturbation hook off its wait points. A new
// `for x.Load() {}` loop therefore does not just burn a core: it waits
// at a point the watchdog cannot see and chaos cannot perturb. This
// analyzer flags for-loops that only spin — every statement in the
// body is pure waiting (atomic loads, runtime.Gosched, time.Sleep,
// bookkeeping) and the loop reads atomic state — so the fix is to
// route the wait through a backoff.Backoff/backoff.Watched, whose
// Wait call makes the loop body impure and the loop legal.
//
// Exemptions: the backoff package itself (it implements the waiter),
// the chaos package (its Delay/Perturber sleep raw by design),
// _test.go files, and loops waived with //hyblint:rawspin.
package backoffcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hybsync/internal/analysis/lintkit"
)

// Analyzer is the backoffcheck analysis.
var Analyzer = &lintkit.Analyzer{
	Name: "backoffcheck",
	Doc:  "flags raw spin loops outside internal/backoff; wait through backoff.Backoff",
	Run:  run,
}

// exemptPkgs are package names whose raw waiting is the point.
var exemptPkgs = map[string]bool{"backoff": true, "chaos": true}

func run(pass *lintkit.Pass) error {
	if exemptPkgs[pass.Pkg.Name()] {
		return nil
	}
	c := &checker{pass: pass}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			c.checkLoop(loop)
			return true
		})
	}
	return nil
}

type checker struct {
	pass *lintkit.Pass
}

func (c *checker) checkLoop(loop *ast.ForStmt) {
	if c.pass.InTestFile(loop.Pos()) || c.pass.Directive(loop, "rawspin") {
		return
	}
	if loop.Cond != nil && !c.pureReadExpr(loop.Cond) {
		return // work happens in the condition (e.g. a CAS): not a spin wait
	}
	if loop.Init != nil && !c.pureWaitStmt(loop.Init) {
		return
	}
	if loop.Post != nil && !c.pureWaitStmt(loop.Post) {
		return
	}
	for _, s := range loop.Body.List {
		if !c.pureWaitStmt(s) {
			return
		}
	}
	// All-pure body: it is a raw spin if the loop reads atomic state
	// anywhere (condition, init/post, or body). A pure loop with no
	// atomic involvement (a counting loop, a timer loop) is left to
	// other tools.
	if !c.hasAtomicLoad(loop) {
		return
	}
	c.pass.Reportf(loop.Pos(), "raw spin loop: wait through internal/backoff so the stall watchdog and chaos perturbation see it (or waive with //hyblint:rawspin)")
}

// pureWaitStmt reports whether s does nothing but wait: no work a
// backoff waiter would not subsume.
func (c *checker) pureWaitStmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.EmptyStmt, *ast.BranchStmt, *ast.ReturnStmt, *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && c.pureWaitCall(call)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if !c.pureReadExpr(rhs) {
				return false
			}
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil && !c.pureWaitStmt(s.Init) {
			return false
		}
		if !c.pureReadExpr(s.Cond) {
			return false // the branch condition itself does work (e.g. a CAS)
		}
		for _, b := range s.Body.List {
			if !c.pureWaitStmt(b) {
				return false
			}
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			for _, b := range e.List {
				if !c.pureWaitStmt(b) {
					return false
				}
			}
			return true
		case *ast.IfStmt:
			return c.pureWaitStmt(e)
		}
		return false
	}
	return false
}

// pureWaitCall reports whether call is one of the recognized waiting
// primitives: an atomic load, runtime.Gosched, or time.Sleep.
func (c *checker) pureWaitCall(call *ast.CallExpr) bool {
	if c.isAtomicLoad(call) {
		return true
	}
	return c.isPkgFunc(call, "runtime", "Gosched") || c.isPkgFunc(call, "time", "Sleep")
}

// pureReadExpr reports whether e computes a value without doing work
// beyond reads and atomic loads.
func (c *checker) pureReadExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.BasicLit, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.UnaryExpr:
		return e.Op != token.ARROW && c.pureReadExpr(e.X)
	case *ast.BinaryExpr:
		return c.pureReadExpr(e.X) && c.pureReadExpr(e.Y)
	case *ast.CallExpr:
		return c.isAtomicLoad(e)
	}
	return false
}

// isAtomicLoad recognizes both forms of atomic read: a Load method on
// a sync/atomic type (x.seq.Load()) and a sync/atomic package-level
// load function (atomic.LoadUint64(&x)).
func (c *checker) isAtomicLoad(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if selection, ok := c.pass.TypesInfo.Selections[sel]; ok {
		// Method call: receiver must be a sync/atomic type.
		if !strings.HasPrefix(sel.Sel.Name, "Load") {
			return false
		}
		t := selection.Recv()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync/atomic"
	}
	// Package function call.
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" &&
		strings.HasPrefix(fn.Name(), "Load")
}

func (c *checker) isPkgFunc(call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath
}

// hasAtomicLoad reports whether any part of the loop (condition,
// init, post, or body) performs an atomic load.
func (c *checker) hasAtomicLoad(loop *ast.ForStmt) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && c.isAtomicLoad(call) {
			found = true
			return false
		}
		return true
	})
	return found
}
