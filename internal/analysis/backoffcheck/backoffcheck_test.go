package backoffcheck_test

import (
	"testing"

	"hybsync/internal/analysis/antest"
	"hybsync/internal/analysis/backoffcheck"
)

func TestBackoffCheck(t *testing.T) {
	antest.Run(t, backoffcheck.Analyzer, "hot", "backoff", "chaos")
}
