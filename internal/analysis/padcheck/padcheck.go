// Package padcheck machine-verifies the pad.Line / tail-pad layout
// idiom on both 64-bit and 32-bit targets.
//
// The per-package layout tests assert offsets with unsafe.Sizeof and
// unsafe.Offsetof — but those constants fold for the architecture the
// tests run on, so a layout that is line-padded on amd64 can silently
// mis-pad on 386/arm, and CI never compiles for a 32-bit target.
// padcheck closes that hole statically: for every struct annotated
//
//	//hyblint:padded   — an array-element type; must be a whole number
//	                     of cache lines on every target
//	//hyblint:padsep   — a header type using pad.Line separators; no
//	                     overall size requirement
//
// it recomputes the layout under its own size model for amd64 AND 386,
// re-evaluating `[pad.CacheLine - unsafe.Sizeof(hot{})%pad.CacheLine]byte`
// pad expressions with the target's sizes (the folded host value is
// useless for this), and reports:
//
//   - a padded struct whose 32-bit (or 64-bit) size is not a whole
//     number of cache lines — the stale hand-counted pad bug;
//   - two fields separated by an explicit pad field that still share a
//     cache line — the under-separation bug;
//   - a sync/atomic.{Int64,Uint64} field whose 386 offset is not
//     8-aligned. The gc compiler would rescue such a field through the
//     align64 special case, but the repo contract is natural alignment
//     by construction — it costs nothing in a padded struct and does
//     not lean on one compiler's layout fixup;
//   - pad idiom structs (a pad.Line field, or a Sizeof-computed tail
//     pad) that lack a marker, so new constructions cannot pad
//     heuristically and skip verification.
//
// As a self-test, the amd64 model is cross-checked against the real
// compiler sizes of the host type-check on 64-bit hosts; a mismatch is
// a padcheck bug and is reported as such.
package padcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"hybsync/internal/analysis/lintkit"
)

// Analyzer is the padcheck analysis.
var Analyzer = &lintkit.Analyzer{
	Name: "padcheck",
	Doc:  "verifies //hyblint:padded struct layouts for 64-bit and 32-bit targets",
	Run:  run,
}

// cacheLine mirrors pad.CacheLine; the padding contract is in units of
// 64-byte lines.
const cacheLine = 64

// An arch is one target size model: gc's word size and maximal basic
// alignment.
type arch struct {
	name     string
	word     int64
	maxAlign int64
}

var arches = [2]arch{{"amd64", 8, 8}, {"386", 4, 4}}

func run(pass *lintkit.Pass) error {
	astOf := namedTypeASTs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				st, ok := ts.Type.(*ast.StructType)
				if !ok || pass.InTestFile(ts.Pos()) {
					continue
				}
				checkStructDecl(pass, astOf, gd, ts, st)
			}
		}
	}
	return nil
}

func checkStructDecl(pass *lintkit.Pass, astOf map[types.Object]ast.Expr, gd *ast.GenDecl, ts *ast.TypeSpec, st *ast.StructType) {
	padded := pass.Directive(ts, "padded") || pass.Directive(gd, "padded")
	padsep := pass.Directive(ts, "padsep") || pass.Directive(gd, "padsep")

	tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	styp, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}

	if !padded && !padsep {
		// Discovery: pad idioms without a marker skip verification.
		if tail, sep := padIdiomUse(pass, st); tail {
			pass.Reportf(ts.Pos(), "struct %s uses a Sizeof-computed tail pad but has no //hyblint:padded marker, so its 32-bit layout is unverified", ts.Name.Name)
		} else if sep {
			pass.Reportf(ts.Pos(), "struct %s uses pad.Line separators but has no //hyblint:padsep marker, so its 32-bit layout is unverified", ts.Name.Name)
		}
		return
	}
	if padded && padsep {
		pass.Reportf(ts.Pos(), "struct %s carries both //hyblint:padded and //hyblint:padsep; pick one", ts.Name.Name)
		return
	}

	for _, a := range arches {
		l := &layouter{pass: pass, arch: a, astOf: astOf}
		fields, size, _, err := l.structLayout(styp, st)
		if err != nil {
			pass.Reportf(ts.Pos(), "cannot verify layout of %s for %s: %v", ts.Name.Name, a.name, err)
			continue
		}
		if padded && size%cacheLine != 0 {
			pass.Reportf(ts.Pos(), "padded struct %s is %d bytes on %s, not a whole number of %d-byte cache lines", ts.Name.Name, size, a.name, cacheLine)
		}
		checkSeparation(pass, ts, a, fields)
		l.checkAtomic64(ts, fields, 0)

		if a.name == "amd64" && hostIs64Bit(pass) {
			if host := pass.TypesSizes.Sizeof(styp); host != size {
				pass.Reportf(ts.Pos(), "padcheck internal error: computed %d bytes for %s on amd64 but the compiler says %d", size, ts.Name.Name, host)
			}
		}
	}
}

// checkSeparation verifies the pad.Line contract: when the author put
// an explicit pad field between two live fields, those fields must not
// share a cache line.
func checkSeparation(pass *lintkit.Pass, ts *ast.TypeSpec, a arch, fields []fieldLayout) {
	lastLive := -1
	sawPad := false
	for i, f := range fields {
		if f.isPad {
			sawPad = true
			continue
		}
		if sawPad && lastLive >= 0 {
			prev := fields[lastLive]
			if prev.size > 0 && f.size > 0 && (prev.offset+prev.size-1)/cacheLine == f.offset/cacheLine {
				pass.Reportf(ts.Pos(), "fields %s and %s of %s are separated by a pad field but share a cache line on %s (offsets %d and %d)", prev.name, f.name, ts.Name.Name, a.name, prev.offset, f.offset)
			}
		}
		lastLive, sawPad = i, false
	}
}

// checkAtomic64 reports 64-bit sync/atomic fields whose 32-bit offset
// is not naturally 8-aligned, recursing into struct fields declared in
// this package.
func (l *layouter) checkAtomic64(ts *ast.TypeSpec, fields []fieldLayout, base int64) {
	if l.arch.name != "386" {
		return
	}
	for _, f := range fields {
		off := base + f.offset
		if isAtomic64(f.t) {
			if off%8 != 0 {
				l.pass.Reportf(ts.Pos(), "64-bit atomic field %s of %s sits at offset %d on 386: not 8-aligned without the compiler's align64 fixup; reorder or pad so it is naturally aligned", f.name, ts.Name.Name, off)
			}
			continue
		}
		if sub, astSub, ok := l.structFieldSyntax(f.t); ok {
			subFields, _, _, err := l.structLayout(sub, astSub)
			if err == nil {
				l.checkAtomic64(ts, subFields, off)
			}
		}
	}
}

// structFieldSyntax resolves a field type to (struct type, its AST) if
// it is a struct declared in this package (directly or by name) —
// those are the ones whose nested pads need target re-evaluation.
func (l *layouter) structFieldSyntax(t types.Type) (*types.Struct, *ast.StructType, bool) {
	switch t := t.(type) {
	case *types.Named:
		if e, ok := l.astOf[t.Obj()]; ok {
			if st, ok := e.(*ast.StructType); ok {
				return t.Underlying().(*types.Struct), st, true
			}
		}
	case *types.Struct:
		return t, nil, true
	}
	return nil, nil, false
}

// isAtomic64 reports whether t is sync/atomic.Int64 or Uint64.
func isAtomic64(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" &&
		(obj.Name() == "Int64" || obj.Name() == "Uint64")
}

// isPadLineType reports whether t is the pad.Line separator type
// (matched by name so fixtures can supply their own pad package).
func isPadLineType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Line" && obj.Pkg() != nil && obj.Pkg().Name() == "pad"
}

// padIdiomUse reports whether the struct syntax uses a Sizeof-computed
// tail pad and/or pad.Line (or blank byte-array) separators.
func padIdiomUse(pass *lintkit.Pass, st *ast.StructType) (tailPad, separators bool) {
	for _, field := range st.Fields.List {
		if !blankField(field) {
			continue
		}
		if t := pass.TypesInfo.Types[field.Type].Type; t != nil && isPadLineType(t) {
			separators = true
			continue
		}
		if at, ok := field.Type.(*ast.ArrayType); ok && at.Len != nil && containsUnsafe(pass, at.Len) {
			tailPad = true
		}
	}
	return tailPad, separators
}

func blankField(f *ast.Field) bool {
	return len(f.Names) == 1 && f.Names[0].Name == "_"
}

func hostIs64Bit(pass *lintkit.Pass) bool {
	return pass.TypesSizes.Sizeof(types.NewPointer(types.Typ[types.Int])) == 8
}

// namedTypeASTs indexes this package's type declarations so the
// layouter can re-evaluate pad expressions inside named field types.
func namedTypeASTs(pass *lintkit.Pass) map[types.Object]ast.Expr {
	m := make(map[types.Object]ast.Expr)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts := spec.(*ast.TypeSpec)
				if obj := pass.TypesInfo.Defs[ts.Name]; obj != nil {
					m[obj] = ts.Type
				}
			}
		}
	}
	return m
}

// A fieldLayout is one field placed under a target size model.
type fieldLayout struct {
	name    string
	isPad   bool // an explicit padding field: blank, byte array or pad.Line
	offset  int64
	size    int64
	t       types.Type
	astType ast.Expr // nil when no syntax is available
}

// A layouter computes sizes and offsets under one arch, preferring the
// declaration syntax (where pad expressions live) over the host-folded
// type information.
type layouter struct {
	pass  *lintkit.Pass
	arch  arch
	astOf map[types.Object]ast.Expr
}

func (l *layouter) structLayout(st *types.Struct, astST *ast.StructType) ([]fieldLayout, int64, int64, error) {
	fields, err := flattenFields(st, astST)
	if err != nil {
		return nil, 0, 0, err
	}
	var off, structAlign int64 = 0, 1
	for i := range fields {
		f := &fields[i]
		size, err := l.sizeofExpr(f.astType, f.t)
		if err != nil {
			return nil, 0, 0, err
		}
		align, err := l.alignof(f.t)
		if err != nil {
			return nil, 0, 0, err
		}
		off = roundUp(off, align)
		f.offset, f.size = off, size
		off += size
		if align > structAlign {
			structAlign = align
		}
	}
	size := off
	// gc pads a trailing zero-sized field so a past-the-end pointer
	// stays inside the object.
	if n := len(fields); n > 0 && fields[n-1].size == 0 && size > 0 {
		size++
	}
	size = roundUp(size, structAlign)
	return fields, size, structAlign, nil
}

// flattenFields pairs each types.Struct field with its declaration
// syntax (one AST field with k names yields k fields).
func flattenFields(st *types.Struct, astST *ast.StructType) ([]fieldLayout, error) {
	var fields []fieldLayout
	if astST != nil {
		for _, af := range astST.Fields.List {
			n := len(af.Names)
			if n == 0 {
				n = 1 // embedded
			}
			for range n {
				fields = append(fields, fieldLayout{astType: af.Type})
			}
		}
		if len(fields) != st.NumFields() {
			return nil, fmt.Errorf("syntax/type field mismatch: %d vs %d", len(fields), st.NumFields())
		}
	} else {
		fields = make([]fieldLayout, st.NumFields())
	}
	for i := range fields {
		v := st.Field(i)
		fields[i].name = v.Name()
		fields[i].t = v.Type()
		fields[i].isPad = v.Name() == "_" && (isPadLineType(v.Type()) || isByteArray(v.Type()))
	}
	return fields, nil
}

func isByteArray(t types.Type) bool {
	arr, ok := t.Underlying().(*types.Array)
	if !ok {
		return false
	}
	b, ok := arr.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

// sizeofExpr sizes t, re-evaluating array lengths from the syntax when
// the declaration computed them with unsafe (the host folded those for
// the wrong target).
func (l *layouter) sizeofExpr(e ast.Expr, t types.Type) (int64, error) {
	if at, ok := e.(*ast.ArrayType); ok && at.Len != nil {
		arr, ok := t.Underlying().(*types.Array)
		if !ok {
			return l.sizeof(t)
		}
		n := arr.Len()
		if containsUnsafe(l.pass, at.Len) {
			var err error
			n, err = l.evalConst(at.Len)
			if err != nil {
				return 0, err
			}
			if n < 0 {
				return 0, fmt.Errorf("pad array length is %d on %s: the padded fields outgrew the pad", n, l.arch.name)
			}
		}
		elem, err := l.sizeofExpr(at.Elt, arr.Elem())
		if err != nil {
			return 0, err
		}
		return n * elem, nil
	}
	return l.sizeof(t)
}

func (l *layouter) sizeof(t types.Type) (int64, error) {
	switch t := t.(type) {
	case *types.Named, *types.Alias:
		if named, ok := t.(*types.Named); ok {
			if e, ok := l.astOf[named.Obj()]; ok {
				return l.sizeofExpr(e, named.Underlying())
			}
		}
		return l.sizeof(t.Underlying())
	case *types.Basic:
		return l.basicSize(t)
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return l.arch.word, nil
	case *types.Slice:
		return 3 * l.arch.word, nil
	case *types.Interface:
		return 2 * l.arch.word, nil
	case *types.Array:
		elem, err := l.sizeof(t.Elem())
		if err != nil {
			return 0, err
		}
		return t.Len() * elem, nil
	case *types.Struct:
		_, size, _, err := l.structLayout(t, nil)
		return size, err
	}
	return 0, fmt.Errorf("cannot size %v", t)
}

func (l *layouter) basicSize(t *types.Basic) (int64, error) {
	switch t.Kind() {
	case types.Bool, types.Int8, types.Uint8:
		return 1, nil
	case types.Int16, types.Uint16:
		return 2, nil
	case types.Int32, types.Uint32, types.Float32:
		return 4, nil
	case types.Int64, types.Uint64, types.Float64, types.Complex64:
		return 8, nil
	case types.Complex128:
		return 16, nil
	case types.Int, types.Uint, types.Uintptr, types.UnsafePointer:
		return l.arch.word, nil
	case types.String:
		return 2 * l.arch.word, nil
	}
	return 0, fmt.Errorf("cannot size basic type %s", t)
}

func (l *layouter) alignof(t types.Type) (int64, error) {
	switch t := t.Underlying().(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.String:
			return l.arch.word, nil
		case types.Complex64:
			return 4, nil
		case types.Complex128:
			return min(8, l.arch.maxAlign), nil
		}
		size, err := l.basicSize(t)
		if err != nil {
			return 0, err
		}
		return min(size, l.arch.maxAlign), nil
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Slice, *types.Interface:
		return l.arch.word, nil
	case *types.Array:
		return l.alignof(t.Elem())
	case *types.Struct:
		var a int64 = 1
		for i := 0; i < t.NumFields(); i++ {
			fa, err := l.alignof(t.Field(i).Type())
			if err != nil {
				return 0, err
			}
			if fa > a {
				a = fa
			}
		}
		return a, nil
	}
	return 0, fmt.Errorf("cannot align %v", t)
}

// containsUnsafe reports whether e contains a call into package unsafe
// — the part of a constant expression whose host folding is target
// dependent.
func containsUnsafe(pass *lintkit.Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && unsafeFuncName(pass, call) != "" {
			found = true
			return false
		}
		return true
	})
	return found
}

// unsafeFuncName returns "Sizeof"/"Alignof"/"Offsetof" if call invokes
// that unsafe builtin, else "".
func unsafeFuncName(pass *lintkit.Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if b, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Builtin); ok && b.Pkg() != nil && b.Pkg().Path() == "unsafe" {
		return b.Name()
	}
	return ""
}

// evalConst evaluates an integer constant expression under the target
// size model. Subexpressions without unsafe calls fold the same on
// every target, so their host value is reused; unsafe.Sizeof and
// unsafe.Alignof are recomputed with the layouter.
func (l *layouter) evalConst(e ast.Expr) (int64, error) {
	e = ast.Unparen(e)
	if !containsUnsafe(l.pass, e) {
		return l.hostConst(e)
	}
	switch e := e.(type) {
	case *ast.BinaryExpr:
		x, err := l.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		y, err := l.evalConst(e.Y)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.ADD:
			return x + y, nil
		case token.SUB:
			return x - y, nil
		case token.MUL:
			return x * y, nil
		case token.QUO:
			if y == 0 {
				return 0, fmt.Errorf("division by zero in pad expression")
			}
			return x / y, nil
		case token.REM:
			if y == 0 {
				return 0, fmt.Errorf("division by zero in pad expression")
			}
			return x % y, nil
		case token.AND:
			return x & y, nil
		case token.OR:
			return x | y, nil
		case token.XOR:
			return x ^ y, nil
		case token.SHL:
			return x << y, nil
		case token.SHR:
			return x >> y, nil
		}
		return 0, fmt.Errorf("unsupported operator %s in pad expression", e.Op)
	case *ast.UnaryExpr:
		x, err := l.evalConst(e.X)
		if err != nil {
			return 0, err
		}
		switch e.Op {
		case token.ADD:
			return x, nil
		case token.SUB:
			return -x, nil
		case token.XOR:
			return ^x, nil
		}
		return 0, fmt.Errorf("unsupported unary operator %s in pad expression", e.Op)
	case *ast.CallExpr:
		switch name := unsafeFuncName(l.pass, e); name {
		case "Sizeof", "Alignof":
			if len(e.Args) != 1 {
				return 0, fmt.Errorf("unsafe.%s with %d args", name, len(e.Args))
			}
			tv, ok := l.pass.TypesInfo.Types[e.Args[0]]
			if !ok {
				return 0, fmt.Errorf("no type for unsafe.%s argument", name)
			}
			if name == "Sizeof" {
				return l.sizeof(tv.Type)
			}
			return l.alignof(tv.Type)
		case "Offsetof":
			return 0, fmt.Errorf("unsafe.Offsetof in a pad expression is not supported by padcheck; use the Sizeof tail-pad idiom")
		}
		return 0, fmt.Errorf("unsupported call in pad expression")
	}
	return 0, fmt.Errorf("unsupported pad expression %T", e)
}

// hostConst reads the host-folded constant value of a target
// independent subexpression.
func (l *layouter) hostConst(e ast.Expr) (int64, error) {
	tv, ok := l.pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		if lit, ok := e.(*ast.BasicLit); ok && lit.Kind == token.INT {
			return strconv.ParseInt(lit.Value, 0, 64)
		}
		return 0, fmt.Errorf("pad expression term is not constant")
	}
	s := tv.Value.ExactString()
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("pad expression term %s is not an int64", s)
	}
	return n, nil
}

func roundUp(x, align int64) int64 {
	if align <= 0 {
		return x
	}
	return (x + align - 1) / align * align
}
