package padcheck_test

import (
	"testing"

	"hybsync/internal/analysis/antest"
	"hybsync/internal/analysis/padcheck"
)

func TestPadCheck(t *testing.T) {
	antest.Run(t, padcheck.Analyzer, "a")
}
