// Package pad mirrors the real internal/pad for padcheck fixtures:
// the analyzer recognizes the separator type by its pad.Line name.
package pad

// CacheLine is the assumed cache-line size in bytes.
const CacheLine = 64

// Line is one cache line of padding.
type Line [CacheLine]byte
