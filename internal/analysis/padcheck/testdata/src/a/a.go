// Package a exercises padcheck: marked structs are laid out for both
// amd64 and 386 with pad expressions re-evaluated per target, and pad
// idioms without a marker are reported.
package a

import (
	"sync/atomic"
	"unsafe"

	"pad"
)

// cellHot is the hot interior of a padded element: 32 bytes on both
// targets, with its 64-bit atomic leading so it stays 8-aligned.
type cellHot struct {
	seq atomic.Uint64
	val [3]uint64
}

// cell is the idiomatic padded element: clean on both targets.
//
//hyblint:padded
type cell struct {
	hot cellHot
	_   [pad.CacheLine - unsafe.Sizeof(cellHot{})%pad.CacheLine]byte
}

// unmarked uses the tail-pad idiom without opting into verification.
type unmarked struct { // want `no //hyblint:padded marker`
	hot cellHot
	_   [pad.CacheLine - unsafe.Sizeof(cellHot{})%pad.CacheLine]byte
}

// sepUnmarked uses pad.Line without opting into verification.
type sepUnmarked struct { // want `no //hyblint:padsep marker`
	n uint64
	_ pad.Line
	m uint64
}

// badHot places a 64-bit atomic after a 1-word field: fine on amd64
// (natural padding lands it at offset 8), but on 386 it sits at offset
// 4 and only the compiler's align64 fixup would rescue it.
type badHot struct {
	flag atomic.Bool
	seq  atomic.Uint64
}

//hyblint:padded
type badAlign struct { // want `seq of badAlign sits at offset 4 on 386`
	hot badHot
	_   [pad.CacheLine - unsafe.Sizeof(badHot{})%pad.CacheLine]byte
}

// handPad hand-counted its pad for 64-bit pointers: 8+56 = 64 on
// amd64, but 4+56 = 60 on 386 — the stale-pad bug padcheck exists for.
//
//hyblint:padded
type handPad struct { // want `60 bytes on 386`
	p uintptr
	_ [56]byte
}

// header is the idiomatic padsep header: a full pad.Line between the
// hot fields, no whole-line size requirement.
//
//hyblint:padsep
type header struct {
	head atomic.Uint64
	_    pad.Line
	tail atomic.Uint64
}

// weak pads, but not enough: 8 bytes of separation leaves both fields
// on the first cache line of the struct on every target.
//
//hyblint:padsep
type weak struct { // want `share a cache line on amd64` `share a cache line on 386`
	a atomic.Uint32
	_ [8]byte
	b atomic.Uint32
}

var one uintptr

// padArr pads out the remainder of a line after one uintptr; being a
// named type, its length must still be re-evaluated per target (56 on
// amd64, 60 on 386).
type padArr [pad.CacheLine - unsafe.Sizeof(one)]byte

// namedPadHdr is clean only if padArr's length is recomputed for 386;
// with the host-folded 56 the fields would share a line there.
//
//hyblint:padsep
type namedPadHdr struct {
	x uintptr
	_ padArr
	y uint64
}

type offTarget struct{ a, b uint64 }

// offpad computes its pad with unsafe.Offsetof, which padcheck does
// not model: it must say so rather than guess.
//
//hyblint:padded
type offpad struct { // want `cannot verify layout of offpad for amd64` `cannot verify layout of offpad for 386`
	t offTarget
	_ [pad.CacheLine - unsafe.Offsetof(offTarget{}.b)%pad.CacheLine]byte
}

// plain uses no pad idiom: padcheck ignores it entirely.
type plain struct{ a, b uint64 }
