package conc

import (
	"sync"
	"testing"

	"hybsync/internal/core"
)

// factoryFor builds the named construction for the counter under test.
func factoryFor(name string) ExecutorFactory {
	return func(obj core.Object) (core.Executor, error) {
		return core.NewObject(name, obj, core.WithMaxThreads(8))
	}
}

// TestCounterAddN: the pipelined batch increments exactly n times and
// returns the counter's value right after the batch's last increment.
func TestCounterAddN(t *testing.T) {
	for _, name := range []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"} {
		t.Run(name, func(t *testing.T) {
			c, err := NewCounter(factoryFor(name))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			h, err := c.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			if got := h.AddN(10); got != 10 {
				t.Fatalf("AddN(10) = %d, want 10", got)
			}
			if got := h.AddN(1); got != 11 {
				t.Fatalf("AddN(1) = %d, want 11", got)
			}
			if got := h.AddN(0); got != 0 {
				t.Fatalf("AddN(0) = %d, want 0 (no-op)", got)
			}
			if got := c.Value(); got != 11 {
				t.Fatalf("Value = %d, want 11", got)
			}
		})
	}
}

// TestCounterAddNConcurrent: concurrent batches from several handles
// conserve the total under the race detector.
func TestCounterAddNConcurrent(t *testing.T) {
	const goroutines, batches, n = 4, 50, 8
	for _, name := range []string{"mpserver", "hybcomb", "ccsynch"} {
		t.Run(name, func(t *testing.T) {
			c, err := NewCounter(factoryFor(name))
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := c.NewHandle()
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for b := 0; b < batches; b++ {
						if v := h.AddN(n); v == 0 || v > goroutines*batches*n {
							panic("AddN returned a value outside the counter's range")
						}
					}
				}()
			}
			wg.Wait()
			if got := c.Value(); got != goroutines*batches*n {
				t.Fatalf("Value = %d, want %d", got, goroutines*batches*n)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}
