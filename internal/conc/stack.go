package conc

import (
	"sync/atomic"

	"hybsync/internal/core"
)

// Stack is the coarse-lock stack of Figure 5b: a sequential linked-list
// stack whose push and pop run as critical sections of one executor.
type Stack struct {
	exec core.Executor
	top  *qnode
}

// stackObject is the stack's native batch object: a run of mixed
// pushes/pops walks the top pointer locally and writes it back once.
type stackObject struct{ s *Stack }

func (o stackObject) DispatchBatch(reqs []core.Req, results []uint64) {
	top := o.s.top
	for i, r := range reqs {
		switch r.Op {
		case OpPush:
			top = &qnode{value: r.Arg, next: top}
			results[i] = 0
		case OpPop:
			if top == nil {
				results[i] = EmptyVal
				continue
			}
			results[i] = top.value
			top = top.next
		default:
			panic("conc: bad stack opcode")
		}
	}
	o.s.top = top
}

// NewStack builds the stack over the given construction.
func NewStack(f ExecutorFactory) (*Stack, error) {
	s := &Stack{}
	exec, err := f(stackObject{s: s})
	if err != nil {
		return nil, err
	}
	s.exec = exec
	return s, nil
}

// NewHandle returns a per-goroutine handle.
func (s *Stack) NewHandle() (*StackHandle, error) {
	h, err := s.exec.NewHandle()
	if err != nil {
		return nil, err
	}
	return &StackHandle{h: h}, nil
}

// Close shuts down the underlying executor; idempotent.
func (s *Stack) Close() error { return s.exec.Close() }

// Stats reports the underlying executor's combining statistics when it
// is a combining construction; ok is false otherwise. Call only while
// no operations are in flight.
func (s *Stack) Stats() (rounds, combined uint64, ok bool) { return execStats(s.exec) }

// StackHandle is a goroutine's capability to use a Stack.
type StackHandle struct {
	h core.Handle
}

// Push pushes v.
func (h *StackHandle) Push(v uint64) { h.h.Apply(OpPush, v) }

// Pop removes the top value, or returns EmptyVal when empty.
func (h *StackHandle) Pop() uint64 { return h.h.Apply(OpPop, 0) }

// TreiberStack is Treiber's nonblocking stack: a CAS loop on an atomic
// top pointer. Go's garbage collector removes the ABA hazard that the
// original algorithm must handle with counted pointers.
type TreiberStack struct {
	top atomic.Pointer[qnode]
}

// NewTreiberStack creates an empty stack.
func NewTreiberStack() *TreiberStack { return &TreiberStack{} }

// Push pushes v (lock-free).
func (s *TreiberStack) Push(v uint64) {
	n := &qnode{value: v}
	for {
		top := s.top.Load()
		n.next = top
		if s.top.CompareAndSwap(top, n) {
			return
		}
	}
}

// Pop removes the top value, or returns EmptyVal when empty (lock-free).
func (s *TreiberStack) Pop() uint64 {
	for {
		top := s.top.Load()
		if top == nil {
			return EmptyVal
		}
		if s.top.CompareAndSwap(top, top.next) {
			return top.value
		}
	}
}
