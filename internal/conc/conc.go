// Package conc implements the concurrent objects of the paper's
// evaluation as native Go types: a linearizable counter, Michael & Scott
// queues in one-lock and two-lock form, an LCRQ-style nonblocking queue,
// Treiber's nonblocking stack and a coarse-lock stack. The blocking
// variants are parameterized by a core.Executor factory, so each can run
// over MP-SERVER, HYBCOMB, CC-SYNCH, SHM-SERVER or any spin lock.
package conc

import "hybsync/internal/core"

// Opcodes understood by the executor-backed objects.
const (
	OpInc  uint64 = 1
	OpEnq  uint64 = 2
	OpDeq  uint64 = 3
	OpPush uint64 = 4
	OpPop  uint64 = 5
)

// EmptyVal is returned by Dequeue/Pop on an empty container.
const EmptyVal = ^uint64(0)

// ExecutorFactory builds an executor around the object's batch-aware
// sequential implementation — e.g. func(obj core.Object)
// (core.Executor, error) { return core.NewObject("hybcomb", obj) }.
// Every object in this package is a native core.Object, so each
// drained run the construction forms executes against it in one
// DispatchBatch call.
type ExecutorFactory func(core.Object) (core.Executor, error)

// execStats reports the combining statistics of an executor when it is
// a core.StatsSource (HybComb, CC-Synch); ok is false otherwise. Read
// only while no operation is in flight.
func execStats(e core.Executor) (rounds, combined uint64, ok bool) {
	if s, isSource := e.(core.StatsSource); isSource {
		rounds, combined = s.Stats()
		return rounds, combined, true
	}
	return 0, 0, false
}

// Counter is the §5.3 microbenchmark object: a linearizable
// fetch-and-increment counter whose increment runs as a critical
// section on the chosen executor.
type Counter struct {
	exec  core.Executor
	value uint64 // touched only inside the CS
}

// counterObject is the counter's native batch object: a run of
// increments reads the shared value once, hands out the run's results
// from a register, and writes the sum back — the batch contract's
// simplest payoff (any opcode increments, matching the legacy scalar
// dispatch).
type counterObject struct{ c *Counter }

func (o counterObject) DispatchBatch(reqs []core.Req, results []uint64) {
	v := o.c.value
	for i := range reqs {
		results[i] = v
		v++
	}
	o.c.value = v
}

// NewCounter builds the counter over the given construction.
func NewCounter(f ExecutorFactory) (*Counter, error) {
	c := &Counter{}
	exec, err := f(counterObject{c: c})
	if err != nil {
		return nil, err
	}
	c.exec = exec
	return c, nil
}

// NewHandle returns a per-goroutine handle.
func (c *Counter) NewHandle() (*CounterHandle, error) {
	h, err := c.exec.NewHandle()
	if err != nil {
		return nil, err
	}
	return &CounterHandle{h: h}, nil
}

// Close shuts down the underlying executor; idempotent. On a poisoned
// executor it still shuts down and reports the *PoisonError.
func (c *Counter) Close() error { return c.exec.Close() }

// Err reports the underlying executor's terminal fault (a *PoisonError
// wrapping core.ErrPoisoned), or nil while it is healthy.
func (c *Counter) Err() error { return c.exec.Err() }

// Poison condemns the underlying executor as if its object had
// panicked — for callers that detect a counter invariant violation
// out-of-band. No-op when the executor does not accept faults.
func (c *Counter) Poison(v any) {
	if p, ok := c.exec.(core.Poisonable); ok {
		p.Poison(v)
	}
}

// Value reads the counter; call only while no increments are in flight.
func (c *Counter) Value() uint64 { return c.value }

// Stats reports the underlying executor's combining statistics when it
// is a combining construction; ok is false otherwise. Call only while
// no increments are in flight.
func (c *Counter) Stats() (rounds, combined uint64, ok bool) { return execStats(c.exec) }

// CounterHandle is a goroutine's capability to increment the counter.
type CounterHandle struct {
	h core.Handle
}

// Inc atomically increments the counter and returns the previous value.
func (h *CounterHandle) Inc() uint64 { return h.h.Apply(OpInc, 0) }

// AddN increments the counter n times as one pipelined batch: the
// first n-1 increments are posted fire-and-forget and only the last is
// waited on, so a pipelining construction (MP-SERVER, HYBCOMB) ships
// the whole batch for the price of one round trip. Per-handle FIFO
// makes the final increment the batch's last, so AddN returns the
// counter's value immediately after the batch executed (0 for n <= 0,
// without touching the counter).
func (h *CounterHandle) AddN(n int) uint64 {
	if n <= 0 {
		return 0
	}
	// The built-in constructions never fail Post/Submit; a third-party
	// transport that does falls back to the blocking path rather than
	// silently losing increments.
	for i := 0; i < n-1; i++ {
		if err := h.h.Post(OpInc, 0); err != nil {
			h.h.Apply(OpInc, 0)
		}
	}
	t, err := h.h.Submit(OpInc, 0)
	if err != nil {
		return h.h.Apply(OpInc, 0) + 1
	}
	return h.h.Wait(t) + 1
}
