package conc

import (
	"sync"
	"testing"
	"testing/quick"

	"hybsync/internal/core"
	"hybsync/internal/shmsync"
)

// TestExecutorSequentialEquivalence is a property test: a random
// sequence of operations on a register-machine object applied through
// each executor from a single goroutine must produce exactly the results
// of a plain sequential run.
func TestExecutorSequentialEquivalence(t *testing.T) {
	type opcode struct {
		Op  uint8
		Arg uint16
	}
	model := func(ops []opcode) []uint64 {
		var regs [4]uint64
		out := make([]uint64, len(ops))
		for i, o := range ops {
			r := &regs[o.Op%4]
			switch o.Op % 3 {
			case 0:
				*r += uint64(o.Arg)
			case 1:
				*r ^= uint64(o.Arg)
			case 2:
				*r = *r<<1 | uint64(o.Arg)&1
			}
			out[i] = *r
		}
		return out
	}
	mkDispatch := func() core.Dispatch {
		var regs [4]uint64
		return func(op, arg uint64) uint64 {
			r := &regs[op%4]
			switch op % 3 {
			case 0:
				*r += arg
			case 1:
				*r ^= arg
			case 2:
				*r = *r<<1 | arg&1
			}
			return *r
		}
	}

	for _, exec := range []struct {
		name string
		mk   func(core.Object) core.Executor
	}{
		{"hybcomb", func(obj core.Object) core.Executor {
			return core.NewHybComb(obj, core.Options{MaxThreads: 4})
		}},
		{"mpserver", func(obj core.Object) core.Executor {
			return core.NewMPServer(obj, core.Options{MaxThreads: 4})
		}},
		{"ccsynch", func(obj core.Object) core.Executor {
			return shmsync.NewCCSynch(obj, 200)
		}},
		{"shmserver", func(obj core.Object) core.Executor {
			return shmsync.NewSHMServer(obj, 4)
		}},
	} {
		exec := exec
		t.Run(exec.name, func(t *testing.T) {
			f := func(ops []opcode) bool {
				ex := exec.mk(core.Func(mkDispatch()))
				defer ex.Close()
				h := core.MustHandle(ex)
				want := model(ops)
				for i, o := range ops {
					if h.Apply(uint64(o.Op), uint64(o.Arg)) != want[i] {
						return false
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestLCRQTinyRingConcurrent forces constant ring closing/chaining under
// concurrency (every 4 enqueues exhausts a ring).
func TestLCRQTinyRingConcurrent(t *testing.T) {
	q := NewLCRQueue(4)
	const producers, per = 8, 500
	var wg sync.WaitGroup
	var consumed [producers][]uint64
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				q.Enqueue(uint64(g)<<20 | uint64(i))
				if v := q.Dequeue(); v != EmptyVal {
					consumed[g] = append(consumed[g], v)
				}
			}
		}(g)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	count := 0
	collect := func(vs []uint64) {
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("duplicate %x", v)
			}
			seen[v] = true
			count++
		}
	}
	for g := range consumed {
		collect(consumed[g])
	}
	for {
		v := q.Dequeue()
		if v == EmptyVal {
			break
		}
		collect([]uint64{v})
	}
	if count != producers*per {
		t.Fatalf("%d values out, %d in", count, producers*per)
	}
}

// TestLCRQPackingProperty quick-checks the cell encoding round trip.
func TestLCRQPackingProperty(t *testing.T) {
	f := func(safe bool, idx uint32, val uint32) bool {
		s := uint64(0)
		if safe {
			s = 1
		}
		i := uint64(idx) & lcrqIdxCap
		v := uint64(val)
		gs, gi, gv := lcrqUnpack(lcrqPack(s, i, v))
		return gs == s && gi == i && gv == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMPServerTinyQueuesNoDeadlock is the §6 deadlock discussion: with a
// request queue much smaller than the client count, senders experience
// back-pressure but the system must keep making progress (every blocked
// send is followed by a blocking receive, so the server always drains).
func TestMPServerTinyQueuesNoDeadlock(t *testing.T) {
	var state uint64
	s := core.NewMPServer(core.Func(func(op, arg uint64) uint64 {
		v := state
		state = v + 1
		return v
	}), core.Options{MaxThreads: 64, QueueCap: 2})
	defer s.Close()
	const goroutines, per = 24, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := core.MustHandle(s)
			for i := 0; i < per; i++ {
				h.Apply(0, 0)
			}
		}()
	}
	wg.Wait()
	if state != goroutines*per {
		t.Fatalf("state = %d, want %d", state, goroutines*per)
	}
}

// TestStackConcurrentLIFOWindow: with a single pusher and popper
// operating in strict alternation on a stack via one handle, LIFO
// reduces to echo.
func TestStackConcurrentLIFOWindow(t *testing.T) {
	s, err := NewStack(func(obj core.Object) (core.Executor, error) {
		return core.NewHybComb(obj, core.Options{MaxThreads: 4}), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := s.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i < 2000; i++ {
		h.Push(i)
		if got := h.Pop(); got != i {
			t.Fatalf("pop = %d, want %d", got, i)
		}
	}
}
