package conc

import (
	"fmt"
	"sync"
	"testing"

	"hybsync/internal/core"

	// Register the shared-memory and spin-lock algorithms so the
	// registry-driven factories below can build them.
	_ "hybsync/internal/shmsync"
	_ "hybsync/internal/spin"
)

// factories enumerates every construction as an ExecutorFactory through
// the algorithm registry; the objects' own Close shuts servers down.
func factories() map[string]ExecutorFactory {
	mk := func(name string, opts ...core.Option) ExecutorFactory {
		return func(obj core.Object) (core.Executor, error) {
			return core.NewObject(name, obj, opts...)
		}
	}
	return map[string]ExecutorFactory{
		"mpserver":        mk("mpserver", core.WithMaxThreads(64)),
		"hybcomb":         mk("hybcomb", core.WithMaxThreads(64)),
		"hybcomb-chan":    mk("hybcomb", core.WithMaxThreads(64), core.WithChanQueues(true)),
		"hybcomb-maxops1": mk("hybcomb", core.WithMaxThreads(64), core.WithMaxOps(1)),
		"ccsynch":         mk("ccsynch"),
		"ccsynch-maxops1": mk("ccsynch", core.WithMaxOps(1)),
		"shmserver":       mk("shmserver", core.WithMaxThreads(64)),
		"ttas-lock":       mk("ttas-lock"),
		"mcs-lock":        mk("mcs-lock"),
	}
}

// TestCounterAllExecutors checks mutual exclusion: goroutines hammer a
// counter; the final value must equal the total increments and the
// returned previous-values must all be distinct.
func TestCounterAllExecutors(t *testing.T) {
	const goroutines, per = 16, 2000
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			c, err := NewCounter(f)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			seen := make([][]uint64, goroutines)
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := c.NewHandle()
					if err != nil {
						panic(err)
					}
					for i := 0; i < per; i++ {
						seen[g] = append(seen[g], h.Inc())
					}
				}(g)
			}
			wg.Wait()
			if got := c.Value(); got != goroutines*per {
				t.Fatalf("counter = %d, want %d", got, goroutines*per)
			}
			dup := make(map[uint64]bool, goroutines*per)
			for _, vs := range seen {
				for _, v := range vs {
					if dup[v] {
						t.Fatalf("previous-value %d returned twice (CS not exclusive)", v)
					}
					dup[v] = true
				}
			}
		})
	}
}

// prodConsCheck runs a balanced produce/consume workload plus drain, then
// verifies conservation and per-producer ordering (order only for FIFO).
func prodConsCheck(t *testing.T, name string, enq func(uint64), deq func() uint64, fifo bool, producers, per int) {
	t.Helper()
	var wg sync.WaitGroup
	consumed := make([][]uint64, producers)
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				enq(uint64(g)<<20 | uint64(i))
				if v := deq(); v != EmptyVal {
					consumed[g] = append(consumed[g], v)
				}
			}
		}(g)
	}
	wg.Wait()
	for {
		v := deq()
		if v == EmptyVal {
			break
		}
		consumed[0] = append(consumed[0], v)
	}
	seen := make(map[uint64]bool)
	count := 0
	for ci, vs := range consumed {
		last := make(map[uint64]int64)
		for _, v := range vs {
			if seen[v] {
				t.Fatalf("%s: duplicate value %x", name, v)
			}
			seen[v] = true
			count++
			if fifo {
				p, s := v>>20, int64(v&0xFFFFF)
				if prev, ok := last[p]; ok && s <= prev {
					t.Fatalf("%s: consumer %d saw producer %d out of order (%d after %d)",
						name, ci, p, s, prev)
				}
				last[p] = s
			}
		}
	}
	if count != producers*per {
		t.Fatalf("%s: %d values out, %d in", name, count, producers*per)
	}
}

func TestQueuesAllExecutors(t *testing.T) {
	const producers, per = 12, 1500
	for name, f := range factories() {
		t.Run("MSQueue1/"+name, func(t *testing.T) {
			q, err := NewMSQueue1(f)
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()
			var wg sync.WaitGroup
			consumed := make([][]uint64, producers)
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := q.NewHandle()
					if err != nil {
						panic(err)
					}
					for i := 0; i < per; i++ {
						h.Enqueue(uint64(g)<<20 | uint64(i))
						if v := h.Dequeue(); v != EmptyVal {
							consumed[g] = append(consumed[g], v)
						}
					}
				}(g)
			}
			wg.Wait()
			h, err := q.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			for {
				v := h.Dequeue()
				if v == EmptyVal {
					break
				}
				consumed[0] = append(consumed[0], v)
			}
			seen := make(map[uint64]bool)
			count := 0
			for ci, vs := range consumed {
				last := make(map[uint64]int64)
				for _, v := range vs {
					if seen[v] {
						t.Fatalf("duplicate value %x", v)
					}
					seen[v] = true
					count++
					p, s := v>>20, int64(v&0xFFFFF)
					if prev, ok := last[p]; ok && s <= prev {
						t.Fatalf("consumer %d saw producer %d out of order (%d after %d)",
							ci, p, s, prev)
					}
					last[p] = s
				}
			}
			if count != producers*per {
				t.Fatalf("%d values out, %d in", count, producers*per)
			}
		})
	}
}

// TestQueueHandlesPerGoroutine is the plain per-goroutine-handle usage.
func TestQueueHandlesPerGoroutine(t *testing.T) {
	for _, name := range []string{"hybcomb", "mpserver", "ccsynch", "shmserver"} {
		t.Run(name, func(t *testing.T) {
			q, err := NewMSQueue1(factories()[name])
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()
			var wg sync.WaitGroup
			const producers, per = 8, 1000
			total := make([]uint64, producers)
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := q.NewHandle()
					if err != nil {
						panic(err)
					}
					for i := 0; i < per; i++ {
						h.Enqueue(uint64(g)<<20 | uint64(i))
						if h.Dequeue() != EmptyVal {
							total[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			h, err := q.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			var drained uint64
			for h.Dequeue() != EmptyVal {
				drained++
			}
			var consumed uint64
			for _, n := range total {
				consumed += n
			}
			if consumed+drained != producers*per {
				t.Fatalf("lost values: consumed %d + drained %d != %d",
					consumed, drained, producers*per)
			}
		})
	}
}

func TestMSQueue2TwoSides(t *testing.T) {
	q, err := NewMSQueue2(factories()["mpserver"])
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	h, err := q.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	prodConsCheck(t, "MSQueue2/mpserver",
		h.Enqueue, h.Dequeue, true, 1, 5000)

	// Concurrent: many producers/consumers on separate handles.
	q2, err := NewMSQueue2(factories()["mpserver"])
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	var wg sync.WaitGroup
	const producers, per = 8, 1000
	var consumedTotal [producers]uint64
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h, err := q2.NewHandle()
			if err != nil {
				panic(err)
			}
			for i := 0; i < per; i++ {
				h.Enqueue(uint64(g)<<20 | uint64(i))
				if h.Dequeue() != EmptyVal {
					consumedTotal[g]++
				}
			}
		}(g)
	}
	wg.Wait()
	h2, err := q2.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	var drained, consumed uint64
	for h2.Dequeue() != EmptyVal {
		drained++
	}
	for _, n := range consumedTotal {
		consumed += n
	}
	if consumed+drained != producers*per {
		t.Fatalf("MSQueue2 lost values: %d + %d != %d", consumed, drained, producers*per)
	}
}

func TestLCRQueue(t *testing.T) {
	// Sequential FIFO including ring wrap and close.
	q := NewLCRQueue(8)
	if q.Dequeue() != EmptyVal {
		t.Fatal("fresh queue not empty")
	}
	for v := uint64(0); v < 100; v++ {
		q.Enqueue(v)
	}
	for v := uint64(0); v < 100; v++ {
		if got := q.Dequeue(); got != v {
			t.Fatalf("dequeue = %d, want %d", got, v)
		}
	}
	// Concurrent conservation.
	q2 := NewLCRQueue(64)
	prodConsCheck(t, "LCRQ", q2.Enqueue, q2.Dequeue, true, 12, 1500)
}

func TestStacksAllExecutors(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			s, err := NewStack(f)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			h, err := s.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			// Sequential LIFO.
			for v := uint64(1); v <= 50; v++ {
				h.Push(v)
			}
			for v := uint64(50); v >= 1; v-- {
				if got := h.Pop(); got != v {
					t.Fatalf("pop = %d, want %d", got, v)
				}
			}
			if h.Pop() != EmptyVal {
				t.Fatal("pop on empty != EmptyVal")
			}
			// Concurrent conservation.
			var wg sync.WaitGroup
			const producers, per = 8, 800
			counts := make([]uint64, producers)
			for g := 0; g < producers; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					h, err := s.NewHandle()
					if err != nil {
						panic(err)
					}
					for i := 0; i < per; i++ {
						h.Push(uint64(g)<<20 | uint64(i))
						if h.Pop() != EmptyVal {
							counts[g]++
						}
					}
				}(g)
			}
			wg.Wait()
			var drained, consumed uint64
			for h.Pop() != EmptyVal {
				drained++
			}
			for _, n := range counts {
				consumed += n
			}
			if consumed+drained != producers*per {
				t.Fatalf("stack lost values: %d + %d != %d", consumed, drained, producers*per)
			}
		})
	}
}

func TestTreiberStack(t *testing.T) {
	s := NewTreiberStack()
	for v := uint64(1); v <= 50; v++ {
		s.Push(v)
	}
	for v := uint64(50); v >= 1; v-- {
		if got := s.Pop(); got != v {
			t.Fatalf("pop = %d, want %d", got, v)
		}
	}
	prodConsCheck(t, "Treiber", s.Push, s.Pop, false, 12, 1500)
}

func TestHybCombStats(t *testing.T) {
	hc := core.NewHybComb(core.Func(func(op, arg uint64) uint64 { return arg }), core.Options{MaxThreads: 32})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := core.MustHandle(hc)
			for i := uint64(0); i < 1000; i++ {
				if got := h.Apply(0, i); got != i {
					t.Errorf("Apply returned %d, want %d", got, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	rounds, _ := hc.Stats()
	if rounds == 0 {
		t.Fatal("no combining rounds recorded")
	}
}

func ExampleCounter() {
	ctr, err := NewCounter(func(obj core.Object) (core.Executor, error) {
		return core.NewObject("hybcomb", obj)
	})
	if err != nil {
		panic(err)
	}
	h, err := ctr.NewHandle()
	if err != nil {
		panic(err)
	}
	h.Inc()
	h.Inc()
	fmt.Println(ctr.Value())
	// Output: 2
}
