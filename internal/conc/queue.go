package conc

import (
	"sync/atomic"

	"hybsync/internal/core"
)

// qnode is a linked-list cell shared by the queue implementations.
type qnode struct {
	value uint64
	next  *qnode
}

// MSQueue1 is the one-lock Michael & Scott queue of Figure 5a: a
// sequential linked-list queue (with dummy node) whose enqueue and
// dequeue both run as critical sections of one executor. The paper finds
// this simple structure, over MP-SERVER or HYBCOMB, to be the fastest
// queue on the TILE-Gx.
type MSQueue1 struct {
	exec core.Executor
	head *qnode
	tail *qnode
}

// queue1Object is the one-lock queue's native batch object: a run of
// mixed enqueues/dequeues walks the list with the head and tail held
// locally, linking and unlinking without a dispatch indirection per
// operation.
type queue1Object struct{ q *MSQueue1 }

func (o queue1Object) DispatchBatch(reqs []core.Req, results []uint64) {
	q := o.q
	for i, r := range reqs {
		switch r.Op {
		case OpEnq:
			n := &qnode{value: r.Arg}
			q.tail.next = n
			q.tail = n
			results[i] = 0
		case OpDeq:
			next := q.head.next
			if next == nil {
				results[i] = EmptyVal
				continue
			}
			q.head = next
			results[i] = next.value
		default:
			panic("conc: bad queue opcode")
		}
	}
}

// NewMSQueue1 builds the queue over the given construction.
func NewMSQueue1(f ExecutorFactory) (*MSQueue1, error) {
	q := &MSQueue1{}
	dummy := &qnode{}
	q.head, q.tail = dummy, dummy
	exec, err := f(queue1Object{q: q})
	if err != nil {
		return nil, err
	}
	q.exec = exec
	return q, nil
}

// NewHandle returns a per-goroutine handle.
func (q *MSQueue1) NewHandle() (*QueueHandle, error) {
	h, err := q.exec.NewHandle()
	if err != nil {
		return nil, err
	}
	return &QueueHandle{enq: h, deq: h}, nil
}

// Close shuts down the underlying executor; idempotent.
func (q *MSQueue1) Close() error { return q.exec.Close() }

// Stats reports the underlying executor's combining statistics when it
// is a combining construction; ok is false otherwise. Call only while
// no operations are in flight.
func (q *MSQueue1) Stats() (rounds, combined uint64, ok bool) { return execStats(q.exec) }

// MSQueue2 is the two-lock Michael & Scott queue: enqueues and dequeues
// are protected by two independent executors, so they can run in
// parallel. The dummy-node representation keeps the two sides
// structurally disjoint; the next pointer is atomic because the dequeue
// side reads it while the enqueue side links new nodes.
type MSQueue2 struct {
	enqExec core.Executor
	deqExec core.Executor
	head    *aqnode
	tail    *aqnode
}

// aqnode is qnode with an atomic next, required when the two sides of
// the queue run concurrently.
type aqnode struct {
	value uint64
	next  atomic.Pointer[aqnode]
}

// enqObject and deqObject are the two-lock queue's native batch
// objects, one per side; each side's run executes under its own
// executor's mutual exclusion.
type enqObject struct{ q *MSQueue2 }

func (o enqObject) DispatchBatch(reqs []core.Req, results []uint64) {
	q := o.q
	for i, r := range reqs {
		n := &aqnode{value: r.Arg}
		q.tail.next.Store(n)
		q.tail = n
		results[i] = 0
	}
}

type deqObject struct{ q *MSQueue2 }

func (o deqObject) DispatchBatch(reqs []core.Req, results []uint64) {
	q := o.q
	for i := range reqs {
		next := q.head.next.Load()
		if next == nil {
			results[i] = EmptyVal
			continue
		}
		q.head = next
		results[i] = next.value
	}
}

// NewMSQueue2 builds the queue over two executors (for MP-SERVER this
// means two dedicated server goroutines, the cost §5.4 discusses).
func NewMSQueue2(f ExecutorFactory) (*MSQueue2, error) {
	q := &MSQueue2{}
	dummy := &aqnode{}
	q.head, q.tail = dummy, dummy
	enq, err := f(enqObject{q: q})
	if err != nil {
		return nil, err
	}
	deq, err := f(deqObject{q: q})
	if err != nil {
		enq.Close()
		return nil, err
	}
	q.enqExec, q.deqExec = enq, deq
	return q, nil
}

// NewHandle returns a per-goroutine handle.
func (q *MSQueue2) NewHandle() (*QueueHandle, error) {
	enq, err := q.enqExec.NewHandle()
	if err != nil {
		return nil, err
	}
	deq, err := q.deqExec.NewHandle()
	if err != nil {
		return nil, err
	}
	return &QueueHandle{enq: enq, deq: deq}, nil
}

// Close shuts down both underlying executors; idempotent.
func (q *MSQueue2) Close() error {
	err := q.enqExec.Close()
	if err2 := q.deqExec.Close(); err == nil {
		err = err2
	}
	return err
}

// QueueHandle is a goroutine's capability to use a queue.
type QueueHandle struct {
	enq core.Handle
	deq core.Handle
}

// Enqueue appends v.
func (h *QueueHandle) Enqueue(v uint64) { h.enq.Apply(OpEnq, v) }

// Dequeue removes the oldest value, or returns EmptyVal when empty.
func (h *QueueHandle) Dequeue() uint64 { return h.deq.Apply(OpDeq, 0) }
