package conc

import "sync/atomic"

// LCRQueue is an LCRQ-style nonblocking queue (Morrison & Afek,
// PPoPP'13) in the form the paper ports to the TILE-Gx (footnote 5):
// values are 32-bit and each ring cell packs (safe bit, index, value)
// into one 64-bit word manipulated with CAS, and the ring-closing
// test-and-set is a CAS loop. Head and tail indexes advance with
// fetch-and-add; full or starved rings are closed and a fresh ring is
// linked behind them.
type LCRQueue struct {
	ringSize uint64
	head     atomic.Pointer[crq]
	_        [56]byte
	tail     atomic.Pointer[crq]
	_        [56]byte
}

type crq struct {
	head atomic.Uint64
	_    [56]byte
	tail atomic.Uint64 // bit 63: closed
	_    [56]byte
	next atomic.Pointer[crq]
	_    [56]byte
	ring []paddedCell
}

type paddedCell struct {
	v atomic.Uint64
}

const (
	lcrqEmpty  = 0xFFFFFFFF
	lcrqClosed = uint64(1) << 63
	lcrqIdxCap = uint64(0x7FFFFFFF)
)

func lcrqPack(safe, idx, val uint64) uint64 {
	return safe<<63 | (idx&lcrqIdxCap)<<32 | val&0xFFFFFFFF
}

func lcrqUnpack(c uint64) (safe, idx, val uint64) {
	return c >> 63, (c >> 32) & lcrqIdxCap, c & 0xFFFFFFFF
}

// NewLCRQueue creates an empty queue with rings of ringSize cells
// (power of two; 0 means 1024).
func NewLCRQueue(ringSize int) *LCRQueue {
	if ringSize == 0 {
		ringSize = 1024
	}
	if ringSize < 0 || ringSize&(ringSize-1) != 0 {
		panic("conc: LCRQ ring size must be a power of two")
	}
	q := &LCRQueue{ringSize: uint64(ringSize)}
	r := q.newCRQ(0, false)
	q.head.Store(r)
	q.tail.Store(r)
	return q
}

func (q *LCRQueue) newCRQ(val uint64, preload bool) *crq {
	r := &crq{ring: make([]paddedCell, q.ringSize)}
	for i := range r.ring {
		r.ring[i].v.Store(lcrqPack(1, uint64(i), lcrqEmpty))
	}
	if preload {
		r.ring[0].v.Store(lcrqPack(1, 0, val))
		r.tail.Store(1)
	}
	return r
}

// Enqueue appends v (lock-free); v must fit in 32 bits (values ≥ 2^32-1
// are truncated, matching the paper's 32-bit port).
func (q *LCRQueue) Enqueue(v uint64) {
	v &= 0xFFFFFFFF
	for {
		r := q.tail.Load()
		if next := r.next.Load(); next != nil {
			q.tail.CompareAndSwap(r, next)
			continue
		}
		t := r.tail.Add(1) - 1
		if t&lcrqClosed != 0 {
			nr := q.newCRQ(v, true)
			if r.next.CompareAndSwap(nil, nr) {
				q.tail.CompareAndSwap(r, nr)
				return
			}
			continue
		}
		cell := &r.ring[t&(q.ringSize-1)].v
		cv := cell.Load()
		safe, idx, val := lcrqUnpack(cv)
		if val == lcrqEmpty && idx <= t && (safe == 1 || r.head.Load() <= t) {
			if cell.CompareAndSwap(cv, lcrqPack(1, t, v)) {
				return
			}
		}
		if t-r.head.Load() >= q.ringSize {
			q.closeCRQ(r)
		}
	}
}

// closeCRQ sets the closed bit with a CAS loop (no BTAS on the TILE-Gx).
func (q *LCRQueue) closeCRQ(r *crq) {
	for {
		t := r.tail.Load()
		if t&lcrqClosed != 0 || r.tail.CompareAndSwap(t, t|lcrqClosed) {
			return
		}
	}
}

// Dequeue removes the oldest value, or returns EmptyVal when empty
// (lock-free).
func (q *LCRQueue) Dequeue() uint64 {
	for {
		r := q.head.Load()
		h := r.head.Add(1) - 1
		cell := &r.ring[h&(q.ringSize-1)].v
		for {
			cv := cell.Load()
			safe, idx, val := lcrqUnpack(cv)
			if val != lcrqEmpty {
				if idx == h {
					if cell.CompareAndSwap(cv, lcrqPack(safe, h+q.ringSize, lcrqEmpty)) {
						return val
					}
				} else {
					if cell.CompareAndSwap(cv, lcrqPack(0, idx, val)) {
						break
					}
				}
			} else {
				if cell.CompareAndSwap(cv, lcrqPack(safe, h+q.ringSize, lcrqEmpty)) {
					break
				}
			}
		}
		if t := r.tail.Load() &^ lcrqClosed; t <= h+1 {
			q.fixState(r)
			if next := r.next.Load(); next != nil {
				q.head.CompareAndSwap(r, next)
				continue
			}
			return EmptyVal
		}
	}
}

// fixState catches the tail up after dequeuers overran it on an empty
// ring.
func (q *LCRQueue) fixState(r *crq) {
	for {
		h := r.head.Load()
		t := r.tail.Load()
		if t&lcrqClosed != 0 || (t&^lcrqClosed) >= h {
			return
		}
		if r.tail.CompareAndSwap(t, h) {
			return
		}
	}
}
