package sweep

import (
	"bytes"
	"reflect"
	"testing"

	"hybsync/internal/benchfmt"
)

// TestJSONLRoundTrip writes SweepRecords through the streaming writer
// and reads them back with benchfmt.ReadSweep: the records must come
// back identical (the contract BENCH_sweep.jsonl and benchguard's
// sweep mode rely on).
func TestJSONLRoundTrip(t *testing.T) {
	sf := 1.5
	in := []benchfmt.SweepRecord{
		{
			SchemaVersion: benchfmt.SchemaVersion,
			Host:          benchfmt.Host{GoMaxProcs: 2, GoVersion: "go1.24.0", NumCPU: 1},
			Cell:          0,
			ElapsedMs:     31.25,
			Record: benchfmt.Record{
				Bench: "counter", Algo: "mpserver", Threads: 2,
				Ops: 123456, Mops: 1.23, NsPerOp: 813.0,
				Fairness: 1.1, Rounds: 10, Combined: 90,
				Shards: 1, Dist: "uniform", Depth: 1, Batch: 1,
				Pipe: &benchfmt.Pipeline{SubmitStalls: 3, MaxDepth: 7},
			},
		},
		{
			SchemaVersion: benchfmt.SchemaVersion,
			Host:          benchfmt.Host{GoMaxProcs: 2, GoVersion: "go1.24.0", NumCPU: 1},
			Cell:          1,
			Skip:          "batch-and-depth-exclusive",
			Record: benchfmt.Record{
				Bench: "batch", Algo: "mpserver", Threads: 2,
				Shards: 1, Dist: "uniform", Depth: 8, Batch: 32,
			},
		},
		{
			SchemaVersion: benchfmt.SchemaVersion,
			Host:          benchfmt.Host{GoMaxProcs: 1, GoVersion: "go1.24.0", NumCPU: 1},
			Cell:          2,
			ElapsedMs:     50,
			Record: benchfmt.Record{
				Bench: "sharded", Algo: "hybcomb", Threads: 4,
				Ops: 99, Mops: 0.4, NsPerOp: 2500,
				Shards: 2, Dist: "zipf:0.99", Depth: 1, Batch: 1,
				ShardOps: []uint64{40, 59}, ShardFairness: &sf,
			},
		},
	}
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	for _, rec := range in {
		if err := w.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := bytes.Count(buf.Bytes(), []byte("\n")); n != len(in) {
		t.Fatalf("wrote %d lines, want %d", n, len(in))
	}
	out, err := benchfmt.ReadSweep(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}
