package sweep

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func numberedCells(t *testing.T, n int) []Cell {
	t.Helper()
	values := make([]string, n)
	for i := range values {
		values[i] = fmt.Sprint(i)
	}
	g := mustGrid(t, Axis{Name: "i", Values: values})
	return g.Cells()
}

// TestSweepInOrderEmission drives many cheap cells through a wide
// pool (under -race in CI) and checks emit sees every cell exactly
// once, from one goroutine, in submission order.
func TestSweepInOrderEmission(t *testing.T) {
	cells := numberedCells(t, 100)
	var running atomic.Int32
	r := &Runner{
		Workers: 8,
		Run: func(c Cell) (any, error) {
			running.Add(1)
			defer running.Add(-1)
			i, _ := c.Int("i")
			return i * 10, nil
		},
	}
	var got []int
	measured, skipped, failed := r.Sweep(cells, func(res Result) {
		if res.Err != nil || res.Skip != "" {
			t.Errorf("cell %d: unexpected err=%v skip=%q", res.Cell.Index, res.Err, res.Skip)
		}
		got = append(got, res.Value.(int))
	})
	if measured != 100 || skipped != 0 || failed != 0 {
		t.Fatalf("counts = %d/%d/%d", measured, skipped, failed)
	}
	for i, v := range got {
		if v != i*10 {
			t.Fatalf("emission out of order at %d: got value %d", i, v)
		}
	}
}

func TestSweepSkipReasons(t *testing.T) {
	cells := numberedCells(t, 10)
	ran := make([]bool, 10)
	r := &Runner{
		Workers: 3,
		Check: func(c Cell) string {
			if i, _ := c.Int("i"); i%2 == 1 {
				return "odd-cells-invalid"
			}
			return ""
		},
		Run: func(c Cell) (any, error) {
			i, _ := c.Int("i")
			ran[i] = true
			return nil, nil
		},
	}
	var skips []int
	measured, skipped, failed := r.Sweep(cells, func(res Result) {
		if res.Skip != "" {
			if res.Skip != "odd-cells-invalid" {
				t.Errorf("cell %d: skip = %q", res.Cell.Index, res.Skip)
			}
			skips = append(skips, res.Cell.Index)
		}
	})
	if measured != 5 || skipped != 5 || failed != 0 {
		t.Fatalf("counts = %d/%d/%d", measured, skipped, failed)
	}
	for _, i := range skips {
		if ran[i] {
			t.Errorf("skipped cell %d was run anyway", i)
		}
	}
}

func TestSweepPanicRecovery(t *testing.T) {
	cells := numberedCells(t, 4)
	r := &Runner{
		Workers: 2,
		Run: func(c Cell) (any, error) {
			if i, _ := c.Int("i"); i == 2 {
				panic("construction deadlocked an invariant")
			}
			return "ok", nil
		},
	}
	var failures []Result
	measured, skipped, failed := r.Sweep(cells, func(res Result) {
		if res.Err != nil {
			failures = append(failures, res)
		}
	})
	if measured != 3 || skipped != 0 || failed != 1 {
		t.Fatalf("counts = %d/%d/%d", measured, skipped, failed)
	}
	if len(failures) != 1 || failures[0].Cell.Index != 2 {
		t.Fatalf("failures = %+v", failures)
	}
	if !strings.Contains(failures[0].Err.Error(), "panic: construction deadlocked") {
		t.Errorf("panic error = %v", failures[0].Err)
	}
}

func TestSweepRunError(t *testing.T) {
	cells := numberedCells(t, 1)
	boom := errors.New("boom")
	r := &Runner{Run: func(Cell) (any, error) { return nil, boom }}
	_, _, failed := r.Sweep(cells, func(res Result) {
		if !errors.Is(res.Err, boom) {
			t.Errorf("err = %v", res.Err)
		}
	})
	if failed != 1 {
		t.Fatalf("failed = %d", failed)
	}
}

func TestSweepTimeout(t *testing.T) {
	cells := numberedCells(t, 3)
	release := make(chan struct{})
	defer close(release)
	r := &Runner{
		Workers: 1,
		Timeout: 20 * time.Millisecond,
		Run: func(c Cell) (any, error) {
			if i, _ := c.Int("i"); i == 1 {
				<-release // wedged until test teardown
			}
			return "ok", nil
		},
	}
	var timedOut int
	measured, _, failed := r.Sweep(cells, func(res Result) {
		if res.Err != nil && strings.Contains(res.Err.Error(), "timed out") {
			timedOut++
			if res.Cell.Index != 1 {
				t.Errorf("wrong cell timed out: %d", res.Cell.Index)
			}
		}
	})
	if measured != 2 || failed != 1 || timedOut != 1 {
		t.Fatalf("measured=%d failed=%d timedOut=%d", measured, failed, timedOut)
	}
}
