package sweep

import (
	"fmt"
	"runtime/debug"
	"sync"
	"time"
)

// Result is the outcome of one cell. Exactly one of the three states
// holds: skipped (Skip non-empty, never run), failed (Err non-nil:
// the cell panicked or timed out), or measured (Value as returned by
// the runner's Run).
type Result struct {
	Cell    Cell
	Skip    string
	Err     error
	Value   any
	Elapsed time.Duration
}

// Runner fans grid cells across a worker pool.
//
// Workers is the pool size. For perf sweeps it should be 1 — cells
// measured concurrently contend for the same cores and distort each
// other — but the pool exists so exploratory sweeps over cheap cells
// can trade accuracy for wall-clock.
//
// Check, if set, vets a cell before it runs; a non-empty return is
// the skip-reason and Run is never called for that cell (e.g.
// "batch-and-depth-exclusive" for grid corners the execution model
// does not define).
//
// Timeout, if positive, bounds each Run call. A cell that exceeds it
// fails with a timeout error and its goroutine is abandoned —
// goroutines cannot be killed, so a truly wedged measurement leaks
// until process exit. That is the accepted cost of turning a
// deadlocked construction into a red sweep record instead of a hung
// harness.
//
// OnTimeout, if set, is called (from the sweep's worker goroutine,
// after the deadline fires but before the Result is emitted) for each
// abandoned cell. It is the finalizer for whatever the cell leaked: a
// harness that tracks live executors per cell should poison and close
// them here so the wedged cell's waiters unblock and its server
// goroutines exit, instead of leaking until process exit. It must not
// block — the abandoned Run goroutine may still be using the cell.
//
// Run performs the measurement. It may panic: panics are recovered
// into Result.Err with a stack, and the sweep continues.
type Runner struct {
	Workers   int
	Timeout   time.Duration
	Check     func(Cell) string
	Run       func(Cell) (any, error)
	OnTimeout func(Cell)
}

// Sweep runs every cell and calls emit exactly once per cell, from a
// single goroutine, in the order the cells were given (results are
// reordered internally, so emit can stream JSONL straight to a file
// and the output order is deterministic regardless of worker
// scheduling). It returns the counts of measured, skipped and failed
// cells.
func (r *Runner) Sweep(cells []Cell, emit func(Result)) (measured, skipped, failed int) {
	workers := r.Workers
	if workers < 1 {
		workers = 1
	}
	type job struct {
		pos  int
		cell Cell
	}
	type done struct {
		pos int
		res Result
	}
	jobs := make(chan job)
	results := make(chan done, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				results <- done{j.pos, r.runCell(j.cell)}
			}
		}()
	}
	go func() {
		for pos, cell := range cells {
			jobs <- job{pos, cell}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	// Reorder completions back into submission order so emit streams
	// deterministically.
	pending := make(map[int]Result)
	next := 0
	count := func(res Result) {
		switch {
		case res.Skip != "":
			skipped++
		case res.Err != nil:
			failed++
		default:
			measured++
		}
	}
	for d := range results {
		pending[d.pos] = d.res
		for {
			res, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			count(res)
			emit(res)
		}
	}
	return measured, skipped, failed
}

// runCell executes one cell with skip vetting, panic recovery and the
// per-cell timeout.
func (r *Runner) runCell(cell Cell) Result {
	if r.Check != nil {
		if reason := r.Check(cell); reason != "" {
			return Result{Cell: cell, Skip: reason}
		}
	}
	type outcome struct {
		value any
		err   error
	}
	ch := make(chan outcome, 1) // buffered: a timed-out cell's goroutine must not block forever on send
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		v, err := r.Run(cell)
		ch <- outcome{value: v, err: err}
	}()
	if r.Timeout > 0 {
		timer := time.NewTimer(r.Timeout)
		defer timer.Stop()
		select {
		case o := <-ch:
			return Result{Cell: cell, Value: o.value, Err: o.err, Elapsed: time.Since(start)}
		case <-timer.C:
			if r.OnTimeout != nil {
				r.OnTimeout(cell)
			}
			return Result{Cell: cell, Err: fmt.Errorf("timed out after %v (goroutine abandoned)", r.Timeout), Elapsed: time.Since(start)}
		}
	}
	o := <-ch
	return Result{Cell: cell, Value: o.value, Err: o.err, Elapsed: time.Since(start)}
}
