package sweep

import (
	"bufio"
	"encoding/json"
	"io"
)

// JSONLWriter streams values as JSON Lines: one compact JSON document
// per line, buffered, flushed on demand. Lines are self-contained, so
// files produced by separate runs (e.g. GOMAXPROCS=1 and =2 sweeps)
// concatenate into one valid artifact.
type JSONLWriter struct {
	buf *bufio.Writer
	enc *json.Encoder
}

// NewJSONLWriter wraps w. Call Flush before closing the underlying
// writer.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	buf := bufio.NewWriter(w)
	return &JSONLWriter{buf: buf, enc: json.NewEncoder(buf)}
}

// Write emits v as one line and flushes it, so a consumer tailing the
// file sees each cell as soon as it is recorded (json.Encoder.Encode
// appends the newline).
func (w *JSONLWriter) Write(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return err
	}
	return w.buf.Flush()
}

// Flush drains the buffer.
func (w *JSONLWriter) Flush() error { return w.buf.Flush() }
