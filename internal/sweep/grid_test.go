package sweep

import (
	"reflect"
	"strings"
	"testing"
)

func mustGrid(t *testing.T, axes ...Axis) *Grid {
	t.Helper()
	g, err := New(axes...)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func baseGrid(t *testing.T) *Grid {
	return mustGrid(t,
		Axis{Name: "algo", Values: []string{"mpserver", "hybcomb"}},
		Axis{Name: "threads", Values: []string{"1"}},
		Axis{Name: "depth", Values: []string{"1"}},
	)
}

func TestNewRejectsBadAxes(t *testing.T) {
	if _, err := New(Axis{Name: "", Values: []string{"x"}}); err == nil {
		t.Error("unnamed axis accepted")
	}
	if _, err := New(Axis{Name: "a", Values: nil}); err == nil {
		t.Error("empty axis accepted")
	}
	if _, err := New(Axis{Name: "a", Values: []string{"1"}}, Axis{Name: "a", Values: []string{"2"}}); err == nil {
		t.Error("duplicate axis accepted")
	}
}

func TestParseOverrides(t *testing.T) {
	g := baseGrid(t)
	if err := g.ParseOverrides("threads= 1, 2 ,4 ; depth=8;"); err != nil {
		t.Fatal(err)
	}
	if got, _ := g.Values("threads"); !reflect.DeepEqual(got, []string{"1", "2", "4"}) {
		t.Errorf("threads = %v", got)
	}
	if got, _ := g.Values("depth"); !reflect.DeepEqual(got, []string{"8"}) {
		t.Errorf("depth = %v", got)
	}
	// Unnamed axes keep their defaults.
	if got, _ := g.Values("algo"); !reflect.DeepEqual(got, []string{"mpserver", "hybcomb"}) {
		t.Errorf("algo = %v", got)
	}
}

func TestParseOverridesErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1",     // unknown axis
		"threads",     // no '='
		"threads=",    // empty value list
		"threads= , ", // only blanks
	} {
		g := baseGrid(t)
		if err := g.ParseOverrides(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
	// The unknown-axis error names the known axes.
	g := baseGrid(t)
	err := g.ParseOverrides("bogus=1")
	if err == nil || !strings.Contains(err.Error(), "algo") {
		t.Errorf("unknown-axis error does not name known axes: %v", err)
	}
}

func TestIntAxis(t *testing.T) {
	g := baseGrid(t)
	if err := g.ParseOverrides("threads=1,2,4"); err != nil {
		t.Fatal(err)
	}
	got, err := g.IntAxis("threads")
	if err != nil || !reflect.DeepEqual(got, []int{1, 2, 4}) {
		t.Fatalf("IntAxis = %v, %v", got, err)
	}
	if _, err := g.IntAxis("algo"); err == nil {
		t.Error("non-integer axis accepted")
	}
	g2 := baseGrid(t)
	_ = g2.ParseOverrides("threads=0")
	if _, err := g2.IntAxis("threads"); err == nil {
		t.Error("non-positive value accepted")
	}
}

// TestCellsDeterministic pins the enumeration contract: contiguous
// indices from 0, last axis fastest, identical across calls.
func TestCellsDeterministic(t *testing.T) {
	g := mustGrid(t,
		Axis{Name: "a", Values: []string{"x", "y"}},
		Axis{Name: "b", Values: []string{"1", "2", "3"}},
	)
	cells := g.Cells()
	if len(cells) != 6 {
		t.Fatalf("got %d cells, want 6", len(cells))
	}
	expect := [][2]string{
		{"x", "1"}, {"x", "2"}, {"x", "3"},
		{"y", "1"}, {"y", "2"}, {"y", "3"},
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.Get("a") != expect[i][0] || c.Get("b") != expect[i][1] {
			t.Errorf("cell %d = %s, want a=%s b=%s", i, c, expect[i][0], expect[i][1])
		}
	}
	again := g.Cells()
	for i := range cells {
		if cells[i].String() != again[i].String() {
			t.Fatalf("enumeration not deterministic at %d: %s vs %s", i, cells[i], again[i])
		}
	}
}

func TestCellAccessors(t *testing.T) {
	g := mustGrid(t, Axis{Name: "threads", Values: []string{"4"}}, Axis{Name: "algo", Values: []string{"mpserver"}})
	c := g.Cells()[0]
	if n, err := c.Int("threads"); err != nil || n != 4 {
		t.Errorf("Int(threads) = %d, %v", n, err)
	}
	if _, err := c.Int("algo"); err == nil {
		t.Error("Int over symbolic value accepted")
	}
	if _, err := c.Int("missing"); err == nil {
		t.Error("Int over missing axis accepted")
	}
	if s := c.String(); s != "algo=mpserver threads=4" {
		t.Errorf("String() = %q", s)
	}
}
