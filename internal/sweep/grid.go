// Package sweep is the scenario-lab engine: a grid of named axes with
// command-line overrides, deterministic cell enumeration, and a
// worker-pool runner that fans cells across goroutines with per-cell
// timeout, panic recovery and skip-reasons, streaming results in cell
// order. It is workload-agnostic — cmd/hybsweep supplies the axes and
// the measurement function; this package supplies the machinery (in
// the style of the lava-sweep and pacs_sweep harnesses referenced in
// SNIPPETS.md).
package sweep

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Axis is one named grid dimension with its value list. Values are
// strings at this layer; typed accessors live on Cell so one grid can
// mix integer axes (threads, depth) with symbolic ones (algo, dist).
type Axis struct {
	Name   string
	Values []string
}

// Grid is an ordered list of axes. Order is significant: Cells()
// enumerates the cartesian product with the LAST axis varying fastest,
// so two runs over the same grid produce cells in the same order (the
// property the committed JSONL artifacts and the resume-by-cell-index
// story depend on).
type Grid struct {
	axes []Axis
}

// New builds a grid from axes in the given order. Every axis must
// have a unique name and at least one value.
func New(axes ...Axis) (*Grid, error) {
	g := &Grid{}
	seen := map[string]bool{}
	for _, a := range axes {
		if a.Name == "" || len(a.Values) == 0 {
			return nil, fmt.Errorf("axis %q needs a name and at least one value", a.Name)
		}
		if seen[a.Name] {
			return nil, fmt.Errorf("duplicate axis %q", a.Name)
		}
		seen[a.Name] = true
		g.axes = append(g.axes, Axis{Name: a.Name, Values: append([]string(nil), a.Values...)})
	}
	return g, nil
}

// Axes returns the axes in enumeration order (a copy).
func (g *Grid) Axes() []Axis {
	out := make([]Axis, len(g.axes))
	copy(out, g.axes)
	return out
}

// Values returns the value list of the named axis.
func (g *Grid) Values(name string) ([]string, bool) {
	for _, a := range g.axes {
		if a.Name == name {
			return a.Values, true
		}
	}
	return nil, false
}

// Override replaces the value list of an existing axis; overriding an
// axis the grid does not have is an error (it names the known axes, so
// a typo in a -grid spec fails loudly instead of silently sweeping the
// default).
func (g *Grid) Override(name string, values []string) error {
	if len(values) == 0 {
		return fmt.Errorf("axis %q: empty value list", name)
	}
	for i := range g.axes {
		if g.axes[i].Name == name {
			g.axes[i].Values = values
			return nil
		}
	}
	known := make([]string, len(g.axes))
	for i, a := range g.axes {
		known[i] = a.Name
	}
	return fmt.Errorf("unknown axis %q (known: %s)", name, strings.Join(known, ", "))
}

// ParseOverrides applies a spec of the form
//
//	"algo=mpserver,hybcomb;threads=1,2,4;depth=1,8"
//
// over the grid: ';' separates axes, '=' binds an axis name to a
// comma-separated value list. Whitespace around tokens is ignored;
// empty clauses (trailing ';') are allowed. Axes not named keep their
// defaults.
func (g *Grid) ParseOverrides(spec string) error {
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, vals, ok := strings.Cut(clause, "=")
		if !ok {
			return fmt.Errorf("bad grid clause %q (want axis=v1,v2,...)", clause)
		}
		var values []string
		for _, v := range strings.Split(vals, ",") {
			if v = strings.TrimSpace(v); v != "" {
				values = append(values, v)
			}
		}
		if err := g.Override(strings.TrimSpace(name), values); err != nil {
			return err
		}
	}
	return nil
}

// IntAxis parses the named axis's values as positive integers —
// the up-front validation for numeric axes, so a bad -grid value
// fails before any cell runs.
func (g *Grid) IntAxis(name string) ([]int, error) {
	values, ok := g.Values(name)
	if !ok {
		return nil, fmt.Errorf("unknown axis %q", name)
	}
	out := make([]int, len(values))
	for i, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("axis %q: value %q is not a positive integer", name, v)
		}
		out[i] = n
	}
	return out, nil
}

// Cell is one point of the grid: an index into the deterministic
// enumeration plus the axis-name → value binding.
type Cell struct {
	Index  int
	values map[string]string
}

// Get returns the cell's value for the named axis ("" if absent).
func (c Cell) Get(name string) string { return c.values[name] }

// Int parses the cell's value for the named axis as an integer.
func (c Cell) Int(name string) (int, error) {
	v, ok := c.values[name]
	if !ok {
		return 0, fmt.Errorf("cell %d: no axis %q", c.Index, name)
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("cell %d: axis %q: %w", c.Index, name, err)
	}
	return n, nil
}

// String renders the cell's bindings in axis-name order, for logs and
// error messages.
func (c Cell) String() string {
	names := make([]string, 0, len(c.values))
	for name := range c.values {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = name + "=" + c.values[name]
	}
	return strings.Join(parts, " ")
}

// Cells enumerates the cartesian product in deterministic order: the
// last axis varies fastest, indices are contiguous from 0.
func (g *Grid) Cells() []Cell {
	total := 1
	for _, a := range g.axes {
		total *= len(a.Values)
	}
	cells := make([]Cell, 0, total)
	idx := make([]int, len(g.axes))
	for i := 0; i < total; i++ {
		vals := make(map[string]string, len(g.axes))
		for j, a := range g.axes {
			vals[a.Name] = a.Values[idx[j]]
		}
		cells = append(cells, Cell{Index: i, values: vals})
		for j := len(g.axes) - 1; j >= 0; j-- {
			idx[j]++
			if idx[j] < len(g.axes[j].Values) {
				break
			}
			idx[j] = 0
		}
	}
	return cells
}
