package benchfmt

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"hybsync/harness"
)

// TestBatchRecordStatsHonesty is the regression test for the PR 5
// note: combiner rounds/combined counters mix units under batched
// submissions (rounds count batches, combined counts operations), so
// the scalar invariant rounds+combined==ops does not hold and the
// fields must not appear on ApplyBatch-path records.
func TestBatchRecordStatsHonesty(t *testing.T) {
	rec := Record{
		Bench: "batch", Algo: "hybcomb", Threads: 2,
		Ops: 64000, Mops: 1.0, Batch: 32, Path: PathBatch,
		Rounds: 123, Combined: 456, // bogus batch-unit counters
	}
	rec.Finish()
	if rec.Rounds != 0 || rec.Combined != 0 {
		t.Fatalf("Finish kept combiner stats on a batch-path record: rounds=%d combined=%d",
			rec.Rounds, rec.Combined)
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"rounds", "combined"} {
		if strings.Contains(string(data), `"`+field+`"`) {
			t.Errorf("batch-path record serialized %q: %s", field, data)
		}
	}
}

// Scalar records keep the counters: on those the invariant holds and
// the trajectory files depend on them.
func TestScalarRecordKeepsStats(t *testing.T) {
	for _, path := range []string{"", PathApply} {
		rec := Record{
			Bench: "counter", Algo: "hybcomb", Threads: 2,
			Ops: 1000, Mops: 2.0, Path: path,
			Rounds: 100, Combined: 900,
		}
		rec.Finish()
		if rec.Rounds != 100 || rec.Combined != 900 {
			t.Fatalf("path %q: Finish altered scalar combiner stats: rounds=%d combined=%d",
				path, rec.Rounds, rec.Combined)
		}
		if rec.NsPerOp == 0 {
			t.Fatalf("path %q: Finish did not derive ns_per_op", path)
		}
	}
}

func TestFinishIdempotent(t *testing.T) {
	rec := Record{Bench: "counter", Algo: "mpserver", Threads: 1, Mops: 4.0, Rounds: 7}
	rec.Finish()
	first, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	rec.Finish()
	second, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("Finish not idempotent: %s vs %s", first, second)
	}
}

func TestFromNative(t *testing.T) {
	res := harness.NativeResult{
		Ops:       3_000_000,
		Duration:  time.Second,
		PerThread: []uint64{1_000_000, 2_000_000},
	}
	rec := FromNative("counter", "mpserver", 2, res)
	if rec.Ops != res.Ops || rec.Mops != 3.0 || rec.Fairness != 2.0 {
		t.Fatalf("FromNative derived %+v", rec)
	}
}

// TestReportRoundTrip checks the envelope survives Encode → ReadReport
// with the schema version and host context intact, and that a v1
// (unversioned) envelope still parses.
func TestReportRoundTrip(t *testing.T) {
	rep := NewReport(200)
	rep.Add(Record{Bench: "counter", Algo: "ccsynch", Threads: 4, Ops: 42, Mops: 0.5, Rounds: 10, Combined: 32})
	rep.Add(Record{Bench: "batch", Algo: "ccsynch", Threads: 4, Batch: 8, Path: PathBatch, Ops: 42, Mops: 0.5, Rounds: 99})
	var buf bytes.Buffer
	if err := rep.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion {
		t.Fatalf("schema_version %d, want %d", got.SchemaVersion, SchemaVersion)
	}
	if got.Host != rep.Host {
		t.Fatalf("host %+v, want %+v", got.Host, rep.Host)
	}
	if len(got.Results) != 2 {
		t.Fatalf("results %d, want 2", len(got.Results))
	}
	if got.Results[1].Rounds != 0 {
		t.Fatalf("batch-path record kept rounds through the envelope: %+v", got.Results[1])
	}

	v1 := `{"gomaxprocs":1,"goversion":"go1.24.0","numcpu":1,"duration_ms_per_point":200,` +
		`"results":[{"bench":"counter","algo":"mpserver","threads":1,"ops":10,"mops":1.2,"ns_per_op":833.3}]}`
	old, err := ReadReport(strings.NewReader(v1))
	if err != nil {
		t.Fatalf("v1 envelope: %v", err)
	}
	if old.SchemaVersion != 0 || len(old.Results) != 1 || old.Results[0].Algo != "mpserver" {
		t.Fatalf("v1 envelope parsed as %+v", old)
	}
}

func TestReadSweep(t *testing.T) {
	lines := `{"schema_version":2,"gomaxprocs":2,"goversion":"go1.24.0","numcpu":1,"cell":0,"bench":"counter","algo":"mpserver","threads":1,"ops":5,"mops":1,"ns_per_op":1000}

{"schema_version":2,"gomaxprocs":2,"goversion":"go1.24.0","numcpu":1,"cell":1,"skip":"batch-and-depth-exclusive","bench":"batch","algo":"mpserver","threads":1,"ops":0,"mops":0,"ns_per_op":0,"depth":8,"batch":32}
`
	recs, err := ReadSweep(strings.NewReader(lines))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2 (blank lines skipped)", len(recs))
	}
	if recs[0].Skip != "" || recs[0].Mops != 1 {
		t.Fatalf("measured record parsed as %+v", recs[0])
	}
	if recs[1].Skip != "batch-and-depth-exclusive" || recs[1].Depth != 8 {
		t.Fatalf("skip record parsed as %+v", recs[1])
	}

	if _, err := ReadSweep(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("malformed line did not error")
	}
}
