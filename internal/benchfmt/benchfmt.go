// Package benchfmt is the one definition of the repo's benchmark
// record format. cmd/hybbench writes it (as an indented Report
// envelope, the BENCH_*.json trajectory files), cmd/hybsweep streams
// it (as self-contained SweepRecord JSONL lines, BENCH_sweep.jsonl),
// and cmd/benchguard reads both — three binaries, one schema, no
// parallel struct definitions drifting apart.
//
// Schema history:
//
//	v1 (unversioned, PRs 2–5): hybbench -json envelope with
//	    gomaxprocs/goversion/numcpu and per-point results; batch-path
//	    records carried combiner rounds/combined counters whose unit
//	    is ill-defined for batched submissions.
//	v2 (this package): explicit schema_version on the envelope and on
//	    every JSONL line; ApplyBatch-path records omit rounds/combined
//	    (see Record.Finish); SweepRecord adds cell index, skip reason,
//	    error, elapsed time and inline host context.
//
// Readers tolerate v1 input: encoding/json leaves the absent fields
// zero, and nothing below keys off schema_version except validation.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"hybsync/harness"
)

// SchemaVersion is the version stamped on everything this package
// writes. Bump it when a field changes meaning, not when one is added:
// added fields are backward-compatible by construction.
const SchemaVersion = 2

// Paths of a batch-bench record: the same object driven through scalar
// Apply calls vs through ApplyBatch. Kept distinct so a consumer
// keying on the batch field can never conflate the per-op baseline
// (PathApply, no batch field) with a size-1 ApplyBatch measurement
// (PathBatch, batch 1).
const (
	PathApply = "apply"
	PathBatch = "batch"
)

// Host is the measurement context that makes records comparable
// across machines and runs.
type Host struct {
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"goversion"`
	NumCPU     int    `json:"numcpu"`
}

// CurrentHost captures the running process's context.
func CurrentHost() Host {
	return Host{
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
	}
}

// Pipeline is the PipelineStats payload of a record; zero values are
// meaningful (an unstalled run reports submit_stalls 0), so the whole
// struct is pointer-omitted rather than field-omitted.
type Pipeline struct {
	SubmitStalls uint64 `json:"submit_stalls"`
	MaxDepth     uint64 `json:"max_depth"`
}

// Latency is the telemetry latency payload of a record: sampled
// blocking-call latency in nanoseconds. Percentiles are log₂-bucket
// upper bounds (within 2× of the true value — see internal/telemetry);
// Samples is the sample count, not the op count. Present only on runs
// measured with telemetry armed (pointer-omitted, like Pipeline).
type Latency struct {
	P50     uint64 `json:"p50"`
	P90     uint64 `json:"p90"`
	P99     uint64 `json:"p99"`
	P999    uint64 `json:"p999"`
	Max     uint64 `json:"max"`
	Samples uint64 `json:"samples"`
}

// RunLength is the telemetry run-length payload of a record: requests
// per DispatchBatch run the construction formed (a combining round's
// serve, a server drain, a lock-path batch). Unsampled — Dispatches
// counts every run. Percentiles are log₂-bucket upper bounds; Mean is
// exact.
type RunLength struct {
	P50        uint64  `json:"p50"`
	P99        uint64  `json:"p99"`
	Max        uint64  `json:"max"`
	Mean       float64 `json:"mean"`
	Dispatches uint64  `json:"dispatches"`
}

// Faults is the fault-containment payload of a record: poison-latch
// trips, stall-watchdog reports and timeout condemnations observed
// during the run. Emitted by the chaos bench (where faults are
// injected on purpose) so containment is visible in JSON instead of
// pass/fail only; zero values are meaningful there.
type Faults struct {
	Poisons         uint64 `json:"poisons"`
	StallReports    uint64 `json:"stall_reports"`
	TimeoutCondemns uint64 `json:"timeout_condemns"`
}

// Adaptive is the mode-transition payload of a record: how often an
// adaptive construction promoted (lock → delegation) and demoted
// (delegation → lock) during the run. Emitted only for executors
// implementing hybsync.AdaptiveStats; zero values are meaningful (a
// phased run where the hybrid never left lock mode is a finding), so
// the whole struct is pointer-omitted like Pipeline.
type Adaptive struct {
	Promotions uint64 `json:"promotions"`
	Demotions  uint64 `json:"demotions"`
}

// Record is one measured point. The shard_* fields appear only on
// sharded-bench records: shard_ops is the per-shard occupancy profile
// (how the keyed workload actually landed) and shard_fairness its
// max/min ratio (1.0 = perfectly balanced).
type Record struct {
	Bench   string  `json:"bench,omitempty"`
	Algo    string  `json:"algo"`
	Threads int     `json:"threads"`
	Ops     uint64  `json:"ops"`
	Mops    float64 `json:"mops"`
	NsPerOp float64 `json:"ns_per_op"`
	// Fairness is the max/min per-thread op-count ratio (1 = ideal).
	// On batch-path records the per-thread counts are rescaled to
	// operations before the ratio is taken, so it stays comparable.
	Fairness float64 `json:"fairness,omitempty"`
	// Rounds/Combined are the executor's combining counters; see the
	// core.StatsSource godoc for the canonical semantics (including why
	// the scalar identity rounds+combined==ops fails on batch paths —
	// Finish strips both from ApplyBatch-path records for that reason).
	Rounds   uint64   `json:"rounds,omitempty"`
	Combined uint64   `json:"combined,omitempty"`
	Shards   int      `json:"shards,omitempty"`
	Dist     string   `json:"dist,omitempty"`
	Depth    int      `json:"depth,omitempty"`
	Batch    int      `json:"batch,omitempty"`
	Path     string   `json:"path,omitempty"`
	ShardOps []uint64 `json:"shard_ops,omitempty"`
	// A pointer so sharded records keep the meaningful value 0 ("some
	// shard was never touched") while non-sharded records omit the
	// field entirely.
	ShardFairness *float64   `json:"shard_fairness,omitempty"`
	Pipe          *Pipeline  `json:"pipeline,omitempty"`
	Lat           *Latency   `json:"latency_ns,omitempty"`
	RunLen        *RunLength `json:"run_len,omitempty"`
	Faults        *Faults    `json:"faults,omitempty"`
	Adapt         *Adaptive  `json:"adaptive,omitempty"`
}

// FromNative builds a Record from one harness measurement, deriving
// the throughput metrics. Callers layer the bench-specific fields on
// top and call Finish last.
func FromNative(bench, algo string, threads int, res harness.NativeResult) Record {
	r := Record{
		Bench: bench, Algo: algo, Threads: threads,
		Ops: res.Ops, Mops: res.Mops(), Fairness: res.Fairness(),
	}
	return r
}

// Finish normalizes a record before it is written anywhere:
//
//   - derives ns_per_op from mops;
//   - enforces batch-record stats honesty: an ApplyBatch-path record
//     drops the combiner rounds/combined counters, whose scalar
//     identity fails on batch paths — the core.StatsSource godoc is
//     the canonical statement of why. The telemetry run-length
//     histogram stays: it counts requests per dispatch run uniformly
//     on every path.
//
// Finish is idempotent; every writer calls it as the last step.
func (r *Record) Finish() {
	if r.Mops > 0 {
		r.NsPerOp = 1e3 / r.Mops
	}
	if r.Path == PathBatch {
		r.Rounds, r.Combined = 0, 0
	}
}

// Report is the hybbench -json envelope, the commit format of the
// BENCH_*.json perf-trajectory files.
type Report struct {
	SchemaVersion int `json:"schema_version"`
	Host
	DurationMs int64    `json:"duration_ms_per_point"`
	Results    []Record `json:"results"`
}

// NewReport starts an envelope stamped with the current host context.
func NewReport(perPoint int64) *Report {
	return &Report{SchemaVersion: SchemaVersion, Host: CurrentHost(), DurationMs: perPoint}
}

// Add finishes rec and appends it.
func (rep *Report) Add(rec Record) {
	rec.Finish()
	rep.Results = append(rep.Results, rec)
}

// Encode writes the envelope, finishing every record first (Finish is
// idempotent, so records added via Add are unaffected).
func (rep *Report) Encode(w io.Writer) error {
	for i := range rep.Results {
		rep.Results[i].Finish()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// ReadReport parses a hybbench -json envelope (v1 or v2).
func ReadReport(r io.Reader) (Report, error) {
	var rep Report
	data, err := io.ReadAll(r)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return rep, err
	}
	return rep, nil
}

// SweepRecord is one line of sweep JSONL (BENCH_sweep.jsonl). Unlike
// Report results, every line is self-contained — it carries the
// schema version and host context inline — so sweep files from
// different GOMAXPROCS runs concatenate into one artifact and a
// consumer never needs an envelope.
//
// Exactly one of three states holds per cell:
//
//   - measured: Skip and Error empty, the Record fields populated;
//   - skipped: Skip names why the cell is invalid (e.g.
//     "batch-and-depth-exclusive"); the axis fields still describe
//     the cell but ops/mops are zero;
//   - failed: Error carries the panic or timeout; axis fields as
//     above.
type SweepRecord struct {
	SchemaVersion int `json:"schema_version"`
	Host
	Cell      int     `json:"cell"`
	Skip      string  `json:"skip,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedMs float64 `json:"elapsed_ms,omitempty"`
	Record
}

// ReadSweep parses sweep JSONL: one SweepRecord per non-empty line.
func ReadSweep(r io.Reader) ([]SweepRecord, error) {
	var out []SweepRecord
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var rec SweepRecord
		if err := json.Unmarshal(b, &rec); err != nil {
			return nil, fmt.Errorf("sweep line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
