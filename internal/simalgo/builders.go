package simalgo

import "hybsync/internal/tilesim"

// ObjectFactory builds the concurrent object under test on an engine.
type ObjectFactory func(e *tilesim.Engine) Object

// NewMPServerBuilder returns a Builder for MP-SERVER: the server runs on
// core 0 and application threads start at core 1 (§5.2).
func NewMPServerBuilder(obj ObjectFactory) *Builder {
	b := &Builder{Name: "mp-server"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		s := NewMPServer(e, 0, obj(e))
		return s, []*tilesim.Proc{s.ServerProc()}, 1
	}
	return b
}

// NewSHMServerBuilder returns a Builder for SHM-SERVER (simplified RCL).
func NewSHMServerBuilder(obj ObjectFactory) *Builder {
	b := &Builder{Name: "shm-server"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		s := NewSHMServer(e, 0, obj(e), threads)
		return s, []*tilesim.Proc{s.ServerProc()}, 1
	}
	return b
}

// NewCCSynchBuilder returns a Builder for CC-SYNCH with the given
// MAX_OPS. All threads run application code; none is dedicated.
func NewCCSynchBuilder(obj ObjectFactory, maxOps int) *Builder {
	b := &Builder{Name: "CC-Synch"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		c := NewCCSynch(e, obj(e), maxOps)
		b.Stats = func() (uint64, uint64) { return c.Rounds, c.Combined }
		return c, nil, 0
	}
	return b
}

// NewHybCombBuilder returns a Builder for HYBCOMB with the given MAX_OPS.
func NewHybCombBuilder(obj ObjectFactory, maxOps int) *Builder {
	b := &Builder{Name: "HybComb"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		h := NewHybComb(e, obj(e), maxOps)
		b.Stats = func() (uint64, uint64) { return h.Rounds, h.Combined }
		return h, nil, 0
	}
	return b
}

// CounterFactory builds the §5.3 counter object.
func CounterFactory(e *tilesim.Engine) Object { return NewCounter(e) }

// ArrayCounterFactory builds the Figure 4c array object with n cells.
func ArrayCounterFactory(n int) ObjectFactory {
	return func(e *tilesim.Engine) Object { return NewArrayCounter(e, n) }
}

// QueueFactory builds the sequential queue used by the one-lock MS-Queue
// variants of Figure 5a.
func QueueFactory(e *tilesim.Engine) Object { return NewSeqQueue(e) }

// StackFactory builds the sequential stack used by the coarse-lock stack
// variants of Figure 5b.
func StackFactory(e *tilesim.Engine) Object { return NewSeqStack(e) }

// NewLCRQBuilder wires the nonblocking LCRQ into the sweep driver.
func NewLCRQBuilder(ringSize int) *Builder {
	b := &Builder{Name: "LCRQ"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		return NewLCRQ(e, ringSize), nil, 0
	}
	return b
}

// NewTreiberBuilder wires the Treiber stack into the sweep driver.
func NewTreiberBuilder() *Builder {
	b := &Builder{Name: "Treiber"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		return NewTreiberStack(e), nil, 0
	}
	return b
}
