package simalgo

import "hybsync/internal/tilesim"

// TreiberStack is Treiber's nonblocking stack (IBM TR RJ 5118, 1986),
// the lock-free baseline of Figure 5b. The top-of-stack pointer is
// manipulated with CAS; under contention most CAS operations repeatedly
// fail, which the paper identifies as the reason its throughput trails
// the serialized implementations on the TILE-Gx.
//
// Node layout: word 0: value, word 1: next. ABA is not an issue in the
// simulation because nodes are never reused.
type TreiberStack struct {
	top tilesim.Addr
}

// NewTreiberStack allocates an empty stack.
func NewTreiberStack(e *tilesim.Engine) *TreiberStack {
	return &TreiberStack{top: e.AllocLine(1)}
}

// Handle implements Executor (the stack needs no per-thread state but
// keeps the common interface).
func (s *TreiberStack) Handle(p *tilesim.Proc) Handle {
	return &treiberHandle{s: s, p: p}
}

type treiberHandle struct {
	s *TreiberStack
	p *tilesim.Proc
}

// Apply dispatches OpPush/OpPop.
func (h *treiberHandle) Apply(op, arg uint64) uint64 {
	switch op {
	case OpPush:
		h.Push(arg)
		return 0
	case OpPop:
		return h.Pop()
	default:
		panic("simalgo: bad treiber opcode")
	}
}

// Push installs a new node with CAS on the top pointer.
func (h *treiberHandle) Push(v uint64) {
	p := h.p
	node := p.Alloc(2)
	p.Write(node, v)
	for {
		top := p.Read(h.s.top)
		p.Write(node+1, top)
		if p.CAS(h.s.top, top, uint64(node)) {
			return
		}
	}
}

// Pop removes the top node with CAS, returning EmptyVal when empty.
func (h *treiberHandle) Pop() uint64 {
	p := h.p
	for {
		top := p.Read(h.s.top)
		if top == 0 {
			return EmptyVal
		}
		next := p.Read(tilesim.Addr(top) + 1)
		if p.CAS(h.s.top, top, next) {
			return p.Read(tilesim.Addr(top))
		}
	}
}
