package simalgo

import "hybsync/internal/tilesim"

// MPServer is the paper's MP-SERVER (§4.1): a dedicated server thread
// executes all critical sections; clients ship 3-word request messages
// {client_id, opcode, argument} over the hardware message network and
// block on a 1-word response. The server reads requests from its local
// hardware buffer and replies with an asynchronous send, so under load
// no coherence-related stall remains on its critical path (Figure 2).
type MPServer struct {
	obj      Object
	serverID int
	server   *tilesim.Proc
}

// NewMPServer spawns the server Proc on the given core. The server
// services requests forever; it is reaped by Engine.Shutdown at the end
// of a run (on real hardware the server thread is likewise parked on a
// blocking receive when idle).
func NewMPServer(e *tilesim.Engine, core int, obj Object) *MPServer {
	s := &MPServer{obj: obj}
	s.server = e.Spawn("mp-server", core, func(p *tilesim.Proc) {
		for {
			m := p.Recv(3)
			ret := obj.Exec(p, m[1], m[2])
			p.Send(int(m[0]), ret)
		}
	})
	s.serverID = s.server.ID()
	return s
}

// ServerProc exposes the server Proc for stall/cycle accounting
// (Figure 4a reads its counters).
func (s *MPServer) ServerProc() *tilesim.Proc { return s.server }

// Handle implements Executor.
func (s *MPServer) Handle(p *tilesim.Proc) Handle {
	return &mpServerHandle{s: s, p: p}
}

type mpServerHandle struct {
	s *MPServer
	p *tilesim.Proc
}

// Apply sends the request and blocks for the single-word response.
func (h *mpServerHandle) Apply(op, arg uint64) uint64 {
	h.p.Send(h.s.serverID, uint64(h.p.ID()), op, arg)
	return h.p.Recv(1)[0]
}
