package simalgo

import "hybsync/internal/tilesim"

// CCSynch is Fatourou & Kallimanis's CC-Synch combining algorithm
// (PPoPP'12), the most efficient pure-shared-memory combiner the paper
// compares against (§3). Threads publish requests in a list built with a
// single SWAP on a shared tail pointer; the thread that finds its node's
// wait flag cleared with completed=false becomes the combiner and serves
// up to MaxOps requests, paying one RMR to read each request and another
// to release each waiting thread — the two per-CS stalls of Figure 1.
//
// Node layout (line-aligned so each node is a private spin target):
// word 0: wait flag, word 1: completed flag, word 2: opcode(+1),
// word 3: argument, word 4: return value, word 5: next node address.
type CCSynch struct {
	obj    Object
	tail   tilesim.Addr // word holding the current tail node address
	maxOps uint64

	// Stats for Figure 4b: completed combining rounds and ops combined.
	Rounds   uint64
	Combined uint64
}

const (
	ccWait = iota
	ccCompleted
	ccOp
	ccArg
	ccRet
	ccNext
)

// NewCCSynch creates the combining structure. maxOps is the paper's
// MAX_OPS bound on requests one combiner may serve (default 200 in the
// evaluation).
func NewCCSynch(e *tilesim.Engine, obj Object, maxOps int) *CCSynch {
	c := &CCSynch{obj: obj, tail: e.AllocLine(1), maxOps: uint64(maxOps)}
	dummy := e.AllocLine(6)
	// Initial dummy: wait=0, completed=0 — the first thread to enqueue
	// behind it becomes the combiner.
	poke(e, c.tail, uint64(dummy))
	return c
}

// Handle implements Executor.
func (c *CCSynch) Handle(p *tilesim.Proc) Handle {
	return &ccSynchHandle{c: c, p: p, node: p.Alloc(6)}
}

type ccSynchHandle struct {
	c    *CCSynch
	p    *tilesim.Proc
	node tilesim.Addr // thread-local spare node (threadLocal.node)
}

// Apply executes op in mutual exclusion following the CC-Synch protocol.
func (h *ccSynchHandle) Apply(op, arg uint64) uint64 {
	p, c := h.p, h.c

	// Prepare the node we hand to our successor.
	next := h.node
	p.Write(next+ccWait, 1)
	p.Write(next+ccCompleted, 0)
	p.Write(next+ccNext, 0)

	// Announce: swap our spare node in as the new tail; the old tail is
	// where we publish our own request.
	cur := tilesim.Addr(p.Swap(c.tail, uint64(next)))
	p.Write(cur+ccOp, op+1)
	p.Write(cur+ccArg, arg)
	p.Write(cur+ccNext, uint64(next))
	h.node = cur

	// Local spin until a combiner clears our wait flag.
	p.SpinWhile(cur+ccWait, func(v uint64) bool { return v != 0 })
	if p.Read(cur+ccCompleted) != 0 {
		return p.Read(cur + ccRet)
	}

	// We are the combiner: serve the chain starting at our own node.
	tmp := cur
	var count uint64
	var myRet uint64
	for count < c.maxOps {
		nx := tilesim.Addr(p.Read(tmp + ccNext)) // RMR: requester wrote it
		if nx == 0 {
			break
		}
		count++
		o := p.Read(tmp + ccOp)
		a := p.Read(tmp + ccArg)
		// Overlap the successor node's fill with this CS execution.
		p.Prefetch(nx + ccNext)
		ret := c.obj.Exec(p, o-1, a)
		if tmp == cur {
			myRet = ret
		} else {
			// One line transaction publishes the result and releases the
			// waiting thread (the combiner's second RMR per CS).
			p.WriteBurst(
				tilesim.WordWrite{A: tmp + ccRet, V: ret},
				tilesim.WordWrite{A: tmp + ccCompleted, V: 1},
				tilesim.WordWrite{A: tmp + ccWait, V: 0},
			)
		}
		tmp = nx
	}
	// Hand the combiner role to the thread owning tmp (completed stays 0).
	p.Write(tmp+ccWait, 0)
	c.Rounds++
	c.Combined += count
	return myRet
}
