package simalgo

import (
	"fmt"
	"sort"

	"hybsync/internal/tilesim"
)

// WorkloadCfg describes one measurement run, following the paper's
// methodology (§5.2): a number of application threads repeatedly execute
// operations on a concurrent object, with a random number of empty loop
// iterations (at most MaxLocalWork) between operations to simulate local
// work and prevent long runs. Threads are pinned to cores in ascending
// order; with server-based approaches the server occupies core 0 and
// application threads start at core 1.
type WorkloadCfg struct {
	Threads      int
	Horizon      uint64 // simulated cycles per run (measurement window)
	MaxLocalWork uint64 // max empty-loop iterations between ops (paper: 50)
	FirstCore    int    // core of the first application thread
	Seed         uint64 // perturbs local-work randomness across runs

	// ProcsPerCore oversubscribes application threads onto cores (§6:
	// the TILE-Gx multiplexes up to four hardware queues per core, so up
	// to four threads can share a core and keep private message queues).
	// 0 or 1 means one thread per core.
	ProcsPerCore int

	// RecordLatencies keeps every per-op latency for percentile analysis
	// (the paper's §5.3 discussion of combiner "hiccups").
	RecordLatencies bool
}

// Result aggregates one run's measurements.
type Result struct {
	Cycles     uint64   // simulated cycles elapsed
	Ops        uint64   // operations completed by application threads
	LatencySum uint64   // sum of per-op latencies (cycles)
	Latencies  []uint64 // per-op latencies when WorkloadCfg.RecordLatencies
	FreqGHz    float64

	// Per-thread op counts for fairness (max/min ratio, §5.3).
	PerThreadOps []uint64

	// Servicing-thread accounting (Figure 4a): busy and stalled cycles
	// of the Proc executing critical sections, when meaningful.
	ServiceBusy  uint64
	ServiceStall uint64

	// Client-side atomic statistics (§5.3: CAS per operation).
	CASAttempts uint64
	CASFailures uint64
	AtomicOps   uint64

	// Combining statistics (Figure 4b), zero for server approaches.
	Rounds   uint64
	Combined uint64

	// Raw Procs for figure drivers needing per-proc counters, and the
	// engine for post-run object inspection (Peek). The run has finished;
	// only counters and memory may be read.
	Clients []*tilesim.Proc
	Service []*tilesim.Proc
	Engine  *tilesim.Engine
}

// Mops returns throughput in million operations per second, using the
// profile's clock frequency to convert cycles to wall time (the paper's
// y-axis in Figures 3a, 5a, 5b).
func (r Result) Mops() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) * r.FreqGHz * 1e3 / float64(r.Cycles)
}

// AvgLatency returns the mean per-operation latency in cycles (Figure 3b).
func (r Result) AvgLatency() float64 {
	if r.Ops == 0 {
		return 0
	}
	return float64(r.LatencySum) / float64(r.Ops)
}

// Fairness returns the ratio between the highest and lowest per-thread
// op counts (1.0 = ideal, §5.3).
func (r Result) Fairness() float64 {
	lo, hi := ^uint64(0), uint64(0)
	for _, n := range r.PerThreadOps {
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == 0 {
		return 0
	}
	return float64(hi) / float64(lo)
}

// LatencyPercentile returns the q-th percentile (0..1) of recorded
// per-op latencies; RecordLatencies must have been set.
func (r Result) LatencyPercentile(q float64) uint64 {
	if len(r.Latencies) == 0 {
		return 0
	}
	s := make([]uint64, len(r.Latencies))
	copy(s, r.Latencies)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q * float64(len(s)-1))
	return s[idx]
}

// CombiningRate returns the average number of requests a combiner served
// per round, including its own op (Figure 4b's y-axis).
func (r Result) CombiningRate() float64 {
	if r.Rounds == 0 {
		return 0
	}
	return float64(r.Combined+r.Rounds) / float64(r.Rounds)
}

// ExecutorFactory builds an executor over an engine and reports the
// servicing Procs to exclude from client accounting. firstAppCore is
// where the first application thread will be pinned.
type ExecutorFactory func(e *tilesim.Engine, threads int) (exec Executor, service []*tilesim.Proc, firstAppCore int)

// StatsFunc extracts combining statistics after a run (nil for servers).
type StatsFunc func() (rounds, combined uint64)

// Builder couples a named algorithm with its factory for the sweep
// drivers.
type Builder struct {
	Name  string
	Make  ExecutorFactory
	Stats StatsFunc // set by Make; read after the run
}

// RunWorkload executes cfg against the executor built by b over a fresh
// engine with the given profile and opcode stream. opFor returns the
// (op, arg) pair for a thread's i-th operation, letting queue/stack
// workloads alternate enqueue/dequeue.
func RunWorkload(prof tilesim.Profile, b *Builder, cfg WorkloadCfg, opFor func(thread int, i uint64) (uint64, uint64)) Result {
	e := tilesim.NewEngine(prof)
	e.SetSeed(cfg.Seed)
	exec, service, firstCore := b.Make(e, cfg.Threads)
	if cfg.FirstCore != 0 {
		firstCore = cfg.FirstCore
	}

	res := Result{FreqGHz: prof.FreqGHz}
	res.PerThreadOps = make([]uint64, cfg.Threads)
	clients := make([]*tilesim.Proc, 0, cfg.Threads)

	perCore := cfg.ProcsPerCore
	if perCore <= 0 {
		perCore = 1
	}
	if perCore > prof.QueuesPer {
		panic(fmt.Sprintf("simalgo: %d procs per core exceeds the %d multiplexed hardware queues",
			perCore, prof.QueuesPer))
	}
	for t := 0; t < cfg.Threads; t++ {
		t := t
		core := firstCore + t/perCore
		if core >= prof.NumCores() {
			panic(fmt.Sprintf("simalgo: thread %d does not fit on the mesh", t))
		}
		clients = append(clients, e.Spawn(fmt.Sprintf("app-%d", t), core, func(p *tilesim.Proc) {
			h := exec.Handle(p)
			var i uint64
			for p.Now() < cfg.Horizon {
				op, arg := opFor(t, i)
				t0 := p.Now()
				h.Apply(op, arg)
				lat := p.Now() - t0
				res.LatencySum += lat
				if cfg.RecordLatencies {
					res.Latencies = append(res.Latencies, lat)
				}
				res.PerThreadOps[t]++
				i++
				p.AddOps(1)
				if cfg.MaxLocalWork > 0 {
					p.Work(p.Rand() % (cfg.MaxLocalWork + 1))
				}
			}
		}))
	}

	e.Run(0)
	defer e.Shutdown()

	res.Cycles = cfg.Horizon
	for _, p := range clients {
		res.Ops += p.Ops
		res.CASAttempts += p.CASAttempts
		res.CASFailures += p.CASFailures
		res.AtomicOps += p.AtomicOps
	}
	for _, p := range service {
		res.ServiceBusy += p.BusyCycles()
		res.ServiceStall += p.StallCycles
	}
	if b.Stats != nil {
		res.Rounds, res.Combined = b.Stats()
	}
	res.Clients = clients
	res.Service = service
	res.Engine = e
	return res
}

// CounterOps is the opFor stream for the counter microbenchmark.
func CounterOps(int, uint64) (uint64, uint64) { return OpInc, 0 }

// ArrayOps returns an opFor stream for the Figure 4c long-CS experiment
// with the given loop length.
func ArrayOps(iters uint64) func(int, uint64) (uint64, uint64) {
	return func(int, uint64) (uint64, uint64) { return OpIncN, iters }
}

// QueueOps alternates enqueue and dequeue per thread (balanced load,
// §5.4). Enqueued values encode (thread, sequence) in 32 bits — 6 bits
// of thread, 26 of sequence — because the LCRQ port stores 32-bit values
// (paper footnote 5); the encoding feeds the linearizability checks.
func QueueOps(thread int, i uint64) (uint64, uint64) {
	if i%2 == 0 {
		return OpEnq, EncodeVal(thread, i/2)
	}
	return OpDeq, 0
}

// StackOps alternates push and pop per thread (balanced load).
func StackOps(thread int, i uint64) (uint64, uint64) {
	if i%2 == 0 {
		return OpPush, EncodeVal(thread, i/2)
	}
	return OpPop, 0
}

// EncodeVal packs a thread id and a per-thread sequence number into a
// 32-bit value; DecodeVal inverts it.
func EncodeVal(thread int, seq uint64) uint64 {
	return uint64(thread)<<26 | (seq & ((1 << 26) - 1))
}

// DecodeVal unpacks an EncodeVal value.
func DecodeVal(v uint64) (thread int, seq uint64) {
	return int(v >> 26 & 0x3F), v & ((1 << 26) - 1)
}
