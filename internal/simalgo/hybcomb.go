package simalgo

import "hybsync/internal/tilesim"

// HybComb is the paper's Algorithm 1 — the hybrid combining
// construction that is the paper's main contribution (§4.2). Combiner
// identity is managed through shared memory (a CAS on the
// last_registered_combiner pointer, an FAA ticket on the combiner
// node's n_ops field and a SWAP to close the combining round), while
// requests and responses travel over the hardware message network. As
// long as the combiner does not change, the protocol behaves exactly
// like MP-SERVER; the shared-memory part only pays when the combiner
// role is handed over.
//
// Node layout (line-aligned): word 0: thread_id (Proc ID of the owner),
// word 1: n_ops, word 2: combining_done.
type HybComb struct {
	obj    Object
	maxOps uint64

	// Ablation knobs (§4.2 "Additional comments"). SwapRegistration
	// replaces the CAS at line 17 with SWAP: every contender becomes a
	// combiner, so some combine only their own request. NoEagerDrain
	// removes the lines 25-28 loop: the combiner closes immediately
	// after its own op, shrinking the combining potential.
	SwapRegistration bool
	NoEagerDrain     bool

	lastReg  tilesim.Addr // word holding the last_registered_combiner node address
	departed tilesim.Addr // word holding the departed_combiner node address

	// Stats for Figures 4b and the §5.3 text measurements.
	Rounds   uint64 // completed combining rounds
	Combined uint64 // requests served by combiners (excluding their own op)
}

const (
	hcThreadID = iota
	hcNOps
	hcDone
)

// NewHybComb creates the shared structure. maxOps is the paper's
// MAX_OPS (200 in the evaluation unless stated otherwise).
func NewHybComb(e *tilesim.Engine, obj Object, maxOps int) *HybComb {
	h := &HybComb{obj: obj, maxOps: uint64(maxOps)}
	h.lastReg = e.AllocLine(1)
	h.departed = e.AllocLine(1)
	// The initial node {⊥, MAX_OPS, true}: full (nobody can register a
	// request with it) and done (the first thread to CAS itself onto
	// lastReg proceeds immediately).
	init := e.AllocLine(3)
	poke(e, init+hcThreadID, ^uint64(0))
	poke(e, init+hcNOps, h.maxOps)
	poke(e, init+hcDone, 1)
	poke(e, h.lastReg, uint64(init))
	poke(e, h.departed, uint64(init))
	return h
}

// Handle implements Executor.
func (h *HybComb) Handle(p *tilesim.Proc) Handle {
	node := p.Alloc(3)
	// my_node ← {id, MAX_OPS, false}
	p.Write(node+hcThreadID, uint64(p.ID()))
	p.Write(node+hcNOps, h.maxOps)
	p.Write(node+hcDone, 0)
	return &hybCombHandle{h: h, p: p, myNode: node}
}

type hybCombHandle struct {
	h      *HybComb
	p      *tilesim.Proc
	myNode tilesim.Addr
}

// Apply is the paper's apply_op (Algorithm 1, lines 6-43).
func (hd *hybCombHandle) Apply(op, arg uint64) uint64 {
	p, h := hd.p, hd.h
	var opsCompleted uint64

	var lastReg tilesim.Addr
	for {
		lastReg = tilesim.Addr(p.Read(h.lastReg)) // line 9
		// Try to register with the last registered combiner (line 11).
		if p.FAA(lastReg+hcNOps, 1) < h.maxOps {
			// Success: send the request and wait for the response
			// (lines 13-14).
			p.Send(int(p.Read(lastReg+hcThreadID)), uint64(p.ID()), op+1, arg)
			return p.Recv(1)[0]
		}
		// Failure: try to register as a combiner (line 17).
		if h.SwapRegistration {
			// Ablation: SWAP always succeeds, so every contender chains
			// itself as a combiner behind the previous registrant.
			lastReg = tilesim.Addr(p.Swap(h.lastReg, uint64(hd.myNode)))
			p.Write(hd.myNode+hcNOps, 0)
			p.SpinWhile(lastReg+hcDone, func(v uint64) bool { return v == 0 })
			break
		}
		if p.CAS(h.lastReg, uint64(lastReg), uint64(hd.myNode)) {
			p.Write(hd.myNode+hcNOps, 0) // line 18
			// Wait for our predecessor to finish combining (line 19).
			p.SpinWhile(lastReg+hcDone, func(v uint64) bool { return v == 0 })
			break // line 21
		}
	}

	// Became combiner: execute our own operation first (line 23).
	retval := h.obj.Exec(p, op, arg)

	// Eagerly drain the message queue (lines 25-28). Not needed for
	// correctness, but postponing the closing SWAP increases the
	// combining potential.
	for !h.NoEagerDrain && !p.QueueEmpty() {
		m := p.Recv(3)
		p.Send(int(m[0]), h.obj.Exec(p, m[1]-1, m[2]))
		opsCompleted++
	}

	// Close combining for new requests (lines 30-32).
	totalOps := p.Swap(hd.myNode+hcNOps, h.maxOps)
	if totalOps > h.maxOps {
		totalOps = h.maxOps
	}

	// Serve the remaining registered requests (lines 34-37).
	for opsCompleted < totalOps {
		m := p.Recv(3)
		p.Send(int(m[0]), h.obj.Exec(p, m[1]-1, m[2]))
		opsCompleted++
	}

	// Exchange our node with the departed combiner's, inform the next
	// combiner and return (lines 39-43).
	oldNode := hd.myNode
	hd.myNode = tilesim.Addr(p.Swap(h.departed, uint64(oldNode)))
	p.Write(hd.myNode+hcDone, 0)
	p.Write(hd.myNode+hcThreadID, uint64(p.ID()))
	p.Write(oldNode+hcDone, 1)

	h.Rounds++
	h.Combined += opsCompleted
	return retval
}
