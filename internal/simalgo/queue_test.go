package simalgo

import (
	"fmt"
	"testing"

	"hybsync/internal/tilesim"
)

// queueBuilders enumerates every Figure 5a queue variant.
func queueBuilders() []*Builder {
	mk := func(name string, f func() *Builder) *Builder { b := f(); b.Name = name; return b }
	return []*Builder{
		mk("mp-server-1", func() *Builder { return NewMPServerBuilder(QueueFactory) }),
		mk("HybComb-1", func() *Builder { return NewHybCombBuilder(QueueFactory, 200) }),
		mk("shm-server-1", func() *Builder { return NewSHMServerBuilder(QueueFactory) }),
		mk("CC-Synch-1", func() *Builder { return NewCCSynchBuilder(QueueFactory, 200) }),
		mk("LCRQ", func() *Builder { return NewLCRQBuilder(256) }),
		mk("mp-server-2", NewTwoLockQueueBuilder),
	}
}

// stackBuilders enumerates every Figure 5b stack variant.
func stackBuilders() []*Builder {
	mk := func(name string, f func() *Builder) *Builder { b := f(); b.Name = name; return b }
	return []*Builder{
		mk("mp-server", func() *Builder { return NewMPServerBuilder(StackFactory) }),
		mk("HybComb", func() *Builder { return NewHybCombBuilder(StackFactory, 200) }),
		mk("shm-server", func() *Builder { return NewSHMServerBuilder(StackFactory) }),
		mk("CC-Synch", func() *Builder { return NewCCSynchBuilder(StackFactory, 200) }),
		mk("Treiber", NewTreiberBuilder),
	}
}

// runContainer drives `threads` producers/consumers doing `opsEach`
// alternating insert/remove operations, recording every removed value,
// then drains the container from one thread. It returns, per producing
// thread, the sequences removed, plus counts.
type containerTrace struct {
	removed  [][]uint64 // per consumer thread, in removal order
	enqueued []uint64   // per producer thread: how many values inserted
	drained  []uint64   // values recovered by the final drain
}

func runContainer(t *testing.T, b *Builder, threads, opsEach int, insOp, remOp uint64) containerTrace {
	t.Helper()
	e := tilesim.NewEngine(tilesim.ProfileTileGx())
	exec, _, firstCore := b.Make(e, threads+1)
	tr := containerTrace{
		removed:  make([][]uint64, threads),
		enqueued: make([]uint64, threads),
	}
	done := 0
	for i := 0; i < threads; i++ {
		i := i
		e.Spawn(fmt.Sprintf("w%d", i), firstCore+i, func(p *tilesim.Proc) {
			h := exec.Handle(p)
			var seq uint64
			for k := 0; k < opsEach; k++ {
				if k%2 == 0 {
					h.Apply(insOp, EncodeVal(i, seq))
					tr.enqueued[i]++
					seq++
				} else {
					if v := h.Apply(remOp, 0); v != EmptyVal {
						tr.removed[i] = append(tr.removed[i], v)
					}
				}
				p.Work(p.Rand() % 20)
			}
			done++
		})
	}
	// Drainer: waits for all workers, then empties the container.
	e.Spawn("drain", firstCore+threads, func(p *tilesim.Proc) {
		h := exec.Handle(p)
		for done < threads {
			p.Work(1000)
		}
		for {
			v := h.Apply(remOp, 0)
			if v == EmptyVal {
				return
			}
			tr.drained = append(tr.drained, v)
		}
	})
	e.Run(0)
	e.Shutdown()
	if err := e.CheckCoherence(); err != nil {
		t.Fatalf("%s: coherence: %v", b.Name, err)
	}
	return tr
}

// checkNoLossNoDup verifies conservation: every inserted value comes out
// exactly once across removals and the final drain.
func checkNoLossNoDup(t *testing.T, name string, tr containerTrace) {
	t.Helper()
	seen := make(map[uint64]int)
	total := 0
	for _, rs := range tr.removed {
		for _, v := range rs {
			seen[v]++
			total++
		}
	}
	for _, v := range tr.drained {
		seen[v]++
		total++
	}
	var inserted int
	for th, n := range tr.enqueued {
		inserted += int(n)
		for s := uint64(0); s < n; s++ {
			v := EncodeVal(th, s)
			switch seen[v] {
			case 1:
			case 0:
				t.Fatalf("%s: value (thread %d, seq %d) lost", name, th, s)
			default:
				t.Fatalf("%s: value (thread %d, seq %d) duplicated %d times", name, th, s, seen[v])
			}
		}
	}
	if total != inserted {
		t.Fatalf("%s: %d values out, %d in (phantom values)", name, total, inserted)
	}
}

// TestQueueVariantsLinearizable checks conservation plus per-producer
// FIFO order (a queue must deliver any one producer's values in
// insertion order) for all six Figure 5a variants.
func TestQueueVariantsLinearizable(t *testing.T) {
	for _, b := range queueBuilders() {
		for _, threads := range []int{2, 8, 20} {
			tr := runContainer(t, b, threads, 400, OpEnq, OpDeq)
			checkNoLossNoDup(t, b.Name, tr)
			// Per-producer FIFO: any consumer's view of one producer's
			// values must be in increasing sequence order... FIFO
			// guarantees more: the global dequeue order restricted to one
			// producer is increasing. Concatenate per-consumer orders is
			// not globally ordered, so check within each consumer.
			for ci, rs := range tr.removed {
				last := make(map[int]int64)
				for i := range last {
					last[i] = -1
				}
				for _, v := range rs {
					th, seq := DecodeVal(v)
					if prev, ok := last[th]; ok && int64(seq) <= prev {
						t.Fatalf("%s: consumer %d saw producer %d seq %d after %d",
							b.Name, ci, th, seq, prev)
					}
					last[th] = int64(seq)
				}
			}
			// Drain order is a single consumer: strictly FIFO per producer.
			last := make(map[int]int64)
			for _, v := range tr.drained {
				th, seq := DecodeVal(v)
				if prev, ok := last[th]; ok && int64(seq) <= prev {
					t.Fatalf("%s: drain saw producer %d seq %d after %d", b.Name, th, seq, prev)
				}
				last[th] = int64(seq)
			}
		}
	}
}

// TestStackVariantsConservation checks conservation for all five Figure
// 5b stack variants (LIFO order is checked sequentially below).
func TestStackVariantsConservation(t *testing.T) {
	for _, b := range stackBuilders() {
		for _, threads := range []int{2, 8, 20} {
			tr := runContainer(t, b, threads, 400, OpPush, OpPop)
			checkNoLossNoDup(t, b.Name, tr)
		}
	}
}

// TestStackSequentialLIFO drives one thread through every stack variant
// and checks exact LIFO behaviour.
func TestStackSequentialLIFO(t *testing.T) {
	for _, b := range stackBuilders() {
		e := tilesim.NewEngine(tilesim.ProfileTileGx())
		exec, _, firstCore := b.Make(e, 1)
		e.Spawn("seq", firstCore, func(p *tilesim.Proc) {
			h := exec.Handle(p)
			for v := uint64(1); v <= 20; v++ {
				h.Apply(OpPush, v)
			}
			for v := uint64(20); v >= 1; v-- {
				if got := h.Apply(OpPop, 0); got != v {
					t.Errorf("%s: pop = %d, want %d", b.Name, got, v)
					return
				}
			}
			if got := h.Apply(OpPop, 0); got != EmptyVal {
				t.Errorf("%s: pop on empty = %d, want EmptyVal", b.Name, got)
			}
		})
		e.Run(0)
		e.Shutdown()
	}
}

// TestQueueSequentialFIFO drives one thread through every queue variant.
func TestQueueSequentialFIFO(t *testing.T) {
	for _, b := range queueBuilders() {
		e := tilesim.NewEngine(tilesim.ProfileTileGx())
		exec, _, firstCore := b.Make(e, 1)
		e.Spawn("seq", firstCore, func(p *tilesim.Proc) {
			h := exec.Handle(p)
			if got := h.Apply(OpDeq, 0); got != EmptyVal {
				t.Errorf("%s: dequeue on empty = %d, want EmptyVal", b.Name, got)
			}
			for v := uint64(1); v <= 20; v++ {
				h.Apply(OpEnq, v)
			}
			for v := uint64(1); v <= 20; v++ {
				if got := h.Apply(OpDeq, 0); got != v {
					t.Errorf("%s: dequeue = %d, want %d", b.Name, got, v)
					return
				}
			}
			if got := h.Apply(OpDeq, 0); got != EmptyVal {
				t.Errorf("%s: dequeue on drained = %d, want EmptyVal", b.Name, got)
			}
		})
		e.Run(0)
		e.Shutdown()
	}
}

// TestLCRQRingWrapAndClose forces ring exhaustion with a tiny ring so
// the close-and-append path runs.
func TestLCRQRingWrapAndClose(t *testing.T) {
	e := tilesim.NewEngine(tilesim.ProfileTileGx())
	q := NewLCRQ(e, 4)
	e.Spawn("w", 0, func(p *tilesim.Proc) {
		h := q.Handle(p).(*lcrqHandle)
		for v := uint64(1); v <= 40; v++ {
			h.Enqueue(v) // ring of 4 must close and chain repeatedly
		}
		for v := uint64(1); v <= 40; v++ {
			if got := h.Dequeue(); got != v {
				t.Errorf("wrap: dequeue = %d, want %d", got, v)
				return
			}
		}
		if got := h.Dequeue(); got != EmptyVal {
			t.Errorf("post-drain dequeue = %d, want EmptyVal", got)
		}
	})
	e.Run(0)
	e.Shutdown()
}

// TestCellPackingRoundTrip is a property test on the LCRQ cell encoding.
func TestCellPackingRoundTrip(t *testing.T) {
	for safe := uint64(0); safe <= 1; safe++ {
		for _, idx := range []uint64{0, 1, 255, idxMask} {
			for _, val := range []uint64{0, 7, lcrqEmpty, 0xFFFFFFFE} {
				s, i, v := unpackCell(packCell(safe, idx, val))
				if s != safe || i != idx || v != val {
					t.Fatalf("pack/unpack mismatch: (%d,%d,%d) -> (%d,%d,%d)",
						safe, idx, val, s, i, v)
				}
			}
		}
	}
}
