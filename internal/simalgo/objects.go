package simalgo

import "hybsync/internal/tilesim"

// Counter is the paper's microbenchmark object (§5.3): a single shared
// counter incremented inside the critical section. The increment is a
// plain read-modify-write — the point of the experiment is that the
// counter line stays Modified in the servicing core's cache, so the CS
// body itself is nearly free and the synchronization overhead dominates.
type Counter struct {
	addr tilesim.Addr
}

// NewCounter allocates a counter on its own cache line.
func NewCounter(e *tilesim.Engine) *Counter {
	return &Counter{addr: e.AllocLine(1)}
}

// Exec implements Object.
func (c *Counter) Exec(p *tilesim.Proc, op, arg uint64) uint64 {
	v := p.Read(c.addr)
	p.Write(c.addr, v+1)
	return v
}

// Value reads the counter without simulated cost (for test assertions).
func (c *Counter) Value(e *tilesim.Engine) uint64 { return peek(e, c.addr) }

// ArrayCounter is the longer critical section of Figure 4c: the CS body
// increments the elements of an array in a loop, one increment per
// iteration, so CS length is controlled by the iteration count argument.
type ArrayCounter struct {
	base tilesim.Addr
	n    int
}

// NewArrayCounter allocates an n-element array (line-aligned).
func NewArrayCounter(e *tilesim.Engine, n int) *ArrayCounter {
	return &ArrayCounter{base: e.AllocLine(n), n: n}
}

// Exec increments min(arg, len) array elements, one per loop iteration.
func (a *ArrayCounter) Exec(p *tilesim.Proc, op, arg uint64) uint64 {
	iters := int(arg)
	if iters > a.n {
		iters = a.n
	}
	for i := 0; i < iters; i++ {
		addr := a.base + tilesim.Addr(i)
		p.Write(addr, p.Read(addr)+1)
	}
	return arg
}

// SeqQueue is a sequential linked-list FIFO queue with head and tail
// pointers — the structure underneath the one-lock MS-Queue of Figure
// 5a. It always contains a dummy node, exactly like Michael & Scott's
// two-lock queue, so head and tail manipulation never conflict
// structurally (the two-lock variant in twolock.go relies on this).
//
// Node layout (line-aligned, so nodes do not false-share):
// word 0: value, word 1: next (node address or 0).
type SeqQueue struct {
	head tilesim.Addr // word holding the head node address
	tail tilesim.Addr // word holding the tail node address (separate line)
}

// NewSeqQueue allocates an empty queue (a single dummy node).
func NewSeqQueue(e *tilesim.Engine) *SeqQueue {
	q := &SeqQueue{head: e.AllocLine(1), tail: e.AllocLine(1)}
	dummy := e.AllocLine(2)
	poke(e, q.head, uint64(dummy))
	poke(e, q.tail, uint64(dummy))
	return q
}

// Exec implements Object for OpEnq and OpDeq.
func (q *SeqQueue) Exec(p *tilesim.Proc, op, arg uint64) uint64 {
	switch op {
	case OpEnq:
		q.Enqueue(p, arg)
		return 0
	case OpDeq:
		return q.Dequeue(p)
	default:
		panic("simalgo: bad queue opcode")
	}
}

// Enqueue appends v (the tail-side critical section).
func (q *SeqQueue) Enqueue(p *tilesim.Proc, v uint64) {
	node := p.Alloc(2)
	p.Write(node, v)
	p.Write(node+1, 0)
	tail := tilesim.Addr(p.Read(q.tail))
	p.Write(tail+1, uint64(node)) // tail.next = node
	p.Write(q.tail, uint64(node))
}

// Dequeue removes from the head (the head-side critical section).
func (q *SeqQueue) Dequeue(p *tilesim.Proc) uint64 {
	head := tilesim.Addr(p.Read(q.head))
	next := tilesim.Addr(p.Read(head + 1))
	if next == 0 {
		return EmptyVal
	}
	v := p.Read(next)
	p.Write(q.head, uint64(next)) // next becomes the new dummy
	return v
}

// SeqStack is a sequential linked-list LIFO stack — the structure under
// the coarse-lock stacks of Figure 5b. Node layout as SeqQueue.
type SeqStack struct {
	top tilesim.Addr
}

// NewSeqStack allocates an empty stack.
func NewSeqStack(e *tilesim.Engine) *SeqStack {
	return &SeqStack{top: e.AllocLine(1)}
}

// Exec implements Object for OpPush and OpPop.
func (s *SeqStack) Exec(p *tilesim.Proc, op, arg uint64) uint64 {
	switch op {
	case OpPush:
		node := p.Alloc(2)
		p.Write(node, arg)
		p.Write(node+1, p.Read(s.top))
		p.Write(s.top, uint64(node))
		return 0
	case OpPop:
		top := tilesim.Addr(p.Read(s.top))
		if top == 0 {
			return EmptyVal
		}
		v := p.Read(top)
		p.Write(s.top, p.Read(top+1))
		return v
	default:
		panic("simalgo: bad stack opcode")
	}
}

// peek / poke access simulated memory with no cost, for setup and test
// assertions only.
func peek(e *tilesim.Engine, a tilesim.Addr) uint64    { return e.Peek(a) }
func poke(e *tilesim.Engine, a tilesim.Addr, v uint64) { e.Poke(a, v) }
