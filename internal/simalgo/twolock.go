package simalgo

import "hybsync/internal/tilesim"

// TwoLockQueue is the two-lock Michael & Scott queue of Figure 5a:
// enqueues and dequeues are protected by two independent critical
// sections (the dummy-node representation of SeqQueue guarantees they
// never touch the same node concurrently... except head==tail handoff,
// which the dummy node also makes safe). Each side's CS is executed by
// its own Executor — with MP-SERVER this requires two dedicated server
// cores per queue instance, the cost the paper highlights (§5.4).
type TwoLockQueue struct {
	q       *SeqQueue
	enqSide Executor
	deqSide Executor
}

// NewTwoLockQueueMPServer builds the MP-SERVER-2 variant: two servers on
// cores 0 and 1, application threads from core 2 (the only two-lock
// variant the paper plots, as the others perform worse).
func NewTwoLockQueueMPServer(e *tilesim.Engine) (*TwoLockQueue, []*tilesim.Proc, int) {
	q := NewSeqQueue(e)
	enqServer := NewMPServer(e, 0, twoLockSide{q: q, enq: true})
	deqServer := NewMPServer(e, 1, twoLockSide{q: q, enq: false})
	t := &TwoLockQueue{q: q, enqSide: enqServer, deqSide: deqServer}
	return t, []*tilesim.Proc{enqServer.ServerProc(), deqServer.ServerProc()}, 2
}

// NewTwoLockQueueBuilder wires the MP-SERVER-2 queue into the sweep
// driver.
func NewTwoLockQueueBuilder() *Builder {
	b := &Builder{Name: "mp-server-2"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		t, svc, first := NewTwoLockQueueMPServer(e)
		return t, svc, first
	}
	return b
}

// twoLockSide adapts one side of the queue as an Object. The enqueue
// server only runs OpEnq CSes; the dequeue server only OpDeq. Both touch
// the shared linked list, so the two servers' caches exchange the node
// lines — the coherence traffic that makes fine-grained locking lose to
// the single-lock queue on this platform (§5.4).
type twoLockSide struct {
	q   *SeqQueue
	enq bool
}

func (s twoLockSide) Exec(p *tilesim.Proc, op, arg uint64) uint64 {
	// The two sides run in parallel on a relaxed memory model, so each
	// CS must fence on entry (acquire: observe the other side's
	// published nodes) and before exit (release: publish links before
	// the other side can traverse them). The one-lock variants need no
	// fences because a single servicing thread serializes everything —
	// exactly the §5.4 trade-off.
	p.Fence()
	var ret uint64
	if s.enq {
		s.q.Enqueue(p, arg)
	} else {
		ret = s.q.Dequeue(p)
	}
	p.Fence()
	return ret
}

// Handle implements Executor by routing enqueues to the enqueue side and
// dequeues to the dequeue side.
func (t *TwoLockQueue) Handle(p *tilesim.Proc) Handle {
	return &twoLockHandle{enq: t.enqSide.Handle(p), deq: t.deqSide.Handle(p)}
}

type twoLockHandle struct {
	enq Handle
	deq Handle
}

func (h *twoLockHandle) Apply(op, arg uint64) uint64 {
	switch op {
	case OpEnq:
		return h.enq.Apply(op, arg)
	case OpDeq:
		return h.deq.Apply(op, arg)
	default:
		panic("simalgo: bad two-lock opcode")
	}
}
