package simalgo

import "hybsync/internal/tilesim"

// SHMServer is the paper's SHM-SERVER: the server approach implemented
// purely over cache-coherent shared memory, a simplified RCL (§5.2).
// Every client owns a dedicated cache line used as a bidirectional
// channel: the client writes {opcode, argument} and spins locally until
// the server's response overwrites the line. The server scans the client
// lines round-robin; reading a posted request and writing the response
// each trigger an RMR at the server (Figure 1) — the two stalls per CS
// that MP-SERVER eliminates.
//
// Slot layout (one line per client): word 0: request opcode (0 = empty,
// op+1 otherwise), word 1: argument, word 2: response sequence number,
// word 3: response value. The client observes completion via the
// response sequence number so that results (including zero) need no
// sentinel.
type SHMServer struct {
	obj    Object
	slots  []tilesim.Addr // indexed by client slot number
	next   int            // next free slot
	server *tilesim.Proc
}

const (
	slotReq = 0
	slotArg = 1
	slotSeq = 2
	slotRet = 3
)

// NewSHMServer spawns the server on the given core with room for
// maxClients client channels.
func NewSHMServer(e *tilesim.Engine, core int, obj Object, maxClients int) *SHMServer {
	s := &SHMServer{obj: obj}
	s.slots = make([]tilesim.Addr, maxClients)
	for i := range s.slots {
		s.slots[i] = e.AllocLine(4)
	}
	s.server = e.Spawn("shm-server", core, func(p *tilesim.Proc) {
		addrs := make([]tilesim.Addr, len(s.slots))
		copy(addrs, s.slots)
		for {
			served := 0
			for i, slot := range s.slots {
				req := p.Read(slot + slotReq) // RMR when client posted
				if req == 0 {
					continue
				}
				arg := p.Read(slot + slotArg) // same line: local hit
				// Overlap the next client's channel fill with this CS
				// (the paper's partially-overlapped RMRs, §3/Fig 4c).
				p.Prefetch(s.slots[(i+1)%len(s.slots)] + slotReq)
				ret := obj.Exec(p, req-1, arg)
				seq := p.Read(slot + slotSeq)
				// One cache-line transaction writes the response value,
				// advances the sequence number and clears the request; it
				// is the server's second RMR per CS (W(i) in Figure 1).
				p.WriteBurst(
					tilesim.WordWrite{A: slot + slotRet, V: ret},
					tilesim.WordWrite{A: slot + slotSeq, V: seq + 1},
					tilesim.WordWrite{A: slot + slotReq, V: 0},
				)
				served++
			}
			if served == 0 {
				// All lines are cached Shared after the scan; sleep until
				// any client posts (write-invalidates one of them). The
				// real RCL server polls continuously; blocking here is
				// performance-neutral under load and keeps the event count
				// tractable when idle.
				p.WaitAnyWrite(addrs...)
			}
		}
	})
	return s
}

// ServerProc exposes the server Proc for stall accounting.
func (s *SHMServer) ServerProc() *tilesim.Proc { return s.server }

// Handle implements Executor. Slot numbers are handed out in Handle
// call order.
func (s *SHMServer) Handle(p *tilesim.Proc) Handle {
	if s.next >= len(s.slots) {
		panic("simalgo: more clients than SHM-SERVER slots")
	}
	h := &shmServerHandle{p: p, slot: s.slots[s.next]}
	s.next++
	return h
}

type shmServerHandle struct {
	p    *tilesim.Proc
	slot tilesim.Addr
	seq  uint64
}

// Apply posts the request in the client's channel line and spins locally
// until the response sequence number advances.
func (h *shmServerHandle) Apply(op, arg uint64) uint64 {
	h.p.Write(h.slot+slotArg, arg)
	h.p.Write(h.slot+slotReq, op+1)
	h.seq++
	want := h.seq
	h.p.SpinWhile(h.slot+slotSeq, func(v uint64) bool { return v < want })
	return h.p.Read(h.slot + slotRet)
}
