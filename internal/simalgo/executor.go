// Package simalgo implements the paper's synchronization algorithms —
// MP-SERVER, HYBCOMB, CC-SYNCH and SHM-SERVER — as programs for the
// tilesim simulated chip, together with the concurrent objects used in
// the evaluation (counter, Michael-Scott queues, LCRQ, Treiber stack,
// coarse-lock stack) and the workload driver that regenerates the
// paper's figures.
//
// All four mutual-exclusion constructions expose the same interface: an
// Executor hands each simulated thread a Handle whose Apply(op, arg)
// executes the operation (an opcode on a sequential Object) in mutual
// exclusion. Opcode dispatch mirrors the paper's inlining optimization:
// clients ship a unique opcode of the critical section to the servicing
// thread instead of a function pointer (§5.2).
package simalgo

import "hybsync/internal/tilesim"

// Object is a sequential data structure whose operations are executed in
// mutual exclusion by whichever Proc currently services requests. All of
// the object's memory traffic is issued through that Proc, so the
// object's working set naturally stays in the servicing core's cache —
// the data-locality effect the server and combining approaches exploit.
type Object interface {
	// Exec runs opcode op with argument arg against the object's state,
	// issuing simulated memory operations via p, and returns the result.
	Exec(p *tilesim.Proc, op, arg uint64) uint64
}

// Executor is a mutual-exclusion construction: it executes opcodes on an
// underlying Object, one at a time, on behalf of many threads.
type Executor interface {
	// Handle returns the per-thread handle for Proc p. It must be called
	// exactly once per Proc, from that Proc's own body.
	Handle(p *tilesim.Proc) Handle
}

// Handle is a thread's private capability to submit operations.
type Handle interface {
	// Apply executes opcode op with argument arg in mutual exclusion and
	// returns the operation's result.
	Apply(op, arg uint64) uint64
}

// Opcodes shared by the evaluation objects.
const (
	OpInc  uint64 = 1 // counter: fetch-and-increment
	OpIncN uint64 = 2 // array counter: increment arg cells (Fig 4c)
	OpEnq  uint64 = 3 // queue: enqueue arg
	OpDeq  uint64 = 4 // queue: dequeue (returns EmptyVal when empty)
	OpPush uint64 = 5 // stack: push arg
	OpPop  uint64 = 6 // stack: pop (returns EmptyVal when empty)
)

// EmptyVal is returned by OpDeq/OpPop on an empty container.
const EmptyVal = ^uint64(0)
