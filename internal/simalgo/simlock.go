package simalgo

import "hybsync/internal/tilesim"

// MCSLockExec executes critical sections under an MCS queue lock — the
// classic-lock baseline of the paper's Section 3. The MCS lock achieves
// O(1) RMRs per acquisition through local spinning, but unlike the
// server and combining approaches the CS body executes on the acquiring
// thread's own core, so the protected object's cache lines migrate on
// every operation. Comparing this executor against the four main
// approaches quantifies §3's data-locality argument.
//
// Lock node layout (line-aligned): word 0: locked flag, word 1: next
// node address.
type MCSLockExec struct {
	obj  Object
	tail tilesim.Addr // word holding the queue tail node address (0 = free)
}

// NewMCSLockExec creates the lock and its protected object binding.
func NewMCSLockExec(e *tilesim.Engine, obj Object) *MCSLockExec {
	return &MCSLockExec{obj: obj, tail: e.AllocLine(1)}
}

// NewMCSLockBuilder wires the MCS-lock executor into the sweep driver.
func NewMCSLockBuilder(obj ObjectFactory) *Builder {
	b := &Builder{Name: "mcs-lock"}
	b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
		return NewMCSLockExec(e, obj(e)), nil, 0
	}
	return b
}

// Handle implements Executor.
func (m *MCSLockExec) Handle(p *tilesim.Proc) Handle {
	return &mcsHandle{m: m, p: p, node: p.Alloc(2)}
}

type mcsHandle struct {
	m    *MCSLockExec
	p    *tilesim.Proc
	node tilesim.Addr
}

const (
	mcsLocked = 0
	mcsNext   = 1
)

// Apply acquires the lock, runs the CS on the caller's core, releases.
func (h *mcsHandle) Apply(op, arg uint64) uint64 {
	p, m := h.p, h.m

	// Acquire.
	p.Write(h.node+mcsNext, 0)
	p.Write(h.node+mcsLocked, 1)
	pred := tilesim.Addr(p.Swap(m.tail, uint64(h.node)))
	if pred != 0 {
		p.Write(pred+mcsNext, uint64(h.node))
		p.SpinWhile(h.node+mcsLocked, func(v uint64) bool { return v != 0 })
	}

	// The critical section runs on this thread's own core: the object's
	// lines migrate here (the cost §3 contrasts with CS migration).
	ret := m.obj.Exec(p, op, arg)

	// Release.
	next := tilesim.Addr(p.Read(h.node + mcsNext))
	if next == 0 {
		if p.CAS(m.tail, uint64(h.node), 0) {
			return ret
		}
		// A successor is between its SWAP and next-pointer store.
		next = tilesim.Addr(p.SpinWhile(h.node+mcsNext, func(v uint64) bool { return v == 0 }))
	}
	p.Write(next+mcsLocked, 0)
	return ret
}
