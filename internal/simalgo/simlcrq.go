package simalgo

import "hybsync/internal/tilesim"

// LCRQ is Morrison & Afek's nonblocking queue (PPoPP'13): a linked list
// of circular ring queues (CRQs) whose head/tail indexes advance with
// FAA. The paper ports it to the TILE-Gx with two adaptations (footnote
// 5), which we reproduce: the missing bitwise test-and-set on the tail's
// closed bit is replaced by a CAS loop, and for lack of a 128-bit CAS2
// the queue stores 32-bit values packed with the cell index into one
// 64-bit word. Every operation issues several atomics, all executed at
// the two memory controllers — the false serialization that makes LCRQ
// level off early on this platform (§5.4, Figure 5a).
//
// CRQ layout (line-aligned): word 0: head index; word 8: tail index
// (bit 63 = closed); word 16: next CRQ address; word 24...: ring cells.
// Cell packing: bit 63 = safe, bits 62..32 = index, bits 31..0 = value
// (lcrqEmpty means no value).
type LCRQ struct {
	eng      *tilesim.Engine
	ringSize uint64
	qhead    tilesim.Addr // word holding the head CRQ address
	qtail    tilesim.Addr // word holding the tail CRQ address
}

const (
	crqHead = 0
	crqTail = 8
	crqNext = 16
	crqRing = 24

	lcrqEmpty = 0xFFFFFFFF
	crqClosed = uint64(1) << 63
	idxMask   = uint64(0x7FFFFFFF)
)

func packCell(safe, idx, val uint64) uint64 {
	return safe<<63 | (idx&idxMask)<<32 | val&0xFFFFFFFF
}

func unpackCell(c uint64) (safe, idx, val uint64) {
	return c >> 63, (c >> 32) & idxMask, c & 0xFFFFFFFF
}

// NewLCRQ creates an empty queue with rings of ringSize cells
// (a power of two).
func NewLCRQ(e *tilesim.Engine, ringSize int) *LCRQ {
	if ringSize <= 0 || ringSize&(ringSize-1) != 0 {
		panic("simalgo: LCRQ ring size must be a power of two")
	}
	q := &LCRQ{eng: e, ringSize: uint64(ringSize)}
	q.qhead = e.AllocLine(1)
	q.qtail = e.AllocLine(1)
	crq := q.newCRQ(0, 0, false)
	poke(e, q.qhead, uint64(crq))
	poke(e, q.qtail, uint64(crq))
	return q
}

// newCRQ allocates and initializes a ring; if preload is true, cell 0
// holds val and tail starts at 1 (used when appending a ring on close).
func (q *LCRQ) newCRQ(val uint64, _ uint64, preload bool) tilesim.Addr {
	crq := q.eng.AllocLine(crqRing + int(q.ringSize))
	for i := uint64(0); i < q.ringSize; i++ {
		poke(q.eng, crq+crqRing+tilesim.Addr(i), packCell(1, i, lcrqEmpty))
	}
	if preload {
		poke(q.eng, crq+crqRing, packCell(1, 0, val))
		poke(q.eng, crq+crqTail, 1)
	}
	return crq
}

// Handle implements Executor.
func (q *LCRQ) Handle(p *tilesim.Proc) Handle { return &lcrqHandle{q: q, p: p} }

type lcrqHandle struct {
	q *LCRQ
	p *tilesim.Proc
}

// Apply dispatches OpEnq/OpDeq; enqueue arguments must fit in 32 bits
// (the paper's port stores 32-bit values).
func (h *lcrqHandle) Apply(op, arg uint64) uint64 {
	switch op {
	case OpEnq:
		h.Enqueue(arg & 0xFFFFFFFF)
		return 0
	case OpDeq:
		return h.Dequeue()
	default:
		panic("simalgo: bad LCRQ opcode")
	}
}

func (h *lcrqHandle) cell(crq tilesim.Addr, i uint64) tilesim.Addr {
	return crq + crqRing + tilesim.Addr(i&(h.q.ringSize-1))
}

// closeCRQ sets the closed bit on the ring's tail with a CAS loop — the
// paper's replacement for the TILE-Gx's missing bitwise test-and-set.
func (h *lcrqHandle) closeCRQ(crq tilesim.Addr) {
	for {
		t := h.p.Read(crq + crqTail)
		if t&crqClosed != 0 {
			return
		}
		if h.p.CAS(crq+crqTail, t, t|crqClosed) {
			return
		}
	}
}

// Enqueue appends v to the queue.
func (h *lcrqHandle) Enqueue(v uint64) {
	p, q := h.p, h.q
	for {
		crq := tilesim.Addr(p.Read(q.qtail))
		// Help advance the list tail if a new ring was appended.
		if next := p.Read(crq + crqNext); next != 0 {
			p.CAS(q.qtail, uint64(crq), next)
			continue
		}
		t := p.FAA(crq+crqTail, 1)
		if t&crqClosed != 0 {
			// Ring closed: append a fresh ring preloaded with v.
			newRing := q.newCRQ(v, 0, true)
			if p.CAS(crq+crqNext, 0, uint64(newRing)) {
				p.CAS(q.qtail, uint64(crq), uint64(newRing))
				return
			}
			continue // someone else appended; retry into their ring
		}
		c := h.cell(crq, t)
		cv := p.Read(c)
		safe, idx, val := unpackCell(cv)
		if val == lcrqEmpty && idx <= t &&
			(safe == 1 || p.Read(crq+crqHead) <= t) {
			if p.CAS(c, cv, packCell(1, t, v)) {
				return
			}
		}
		// Transition failed. Close the ring if it is full (tail ran a
		// whole lap ahead of head).
		if t-p.Read(crq+crqHead) >= q.ringSize {
			h.closeCRQ(crq)
		}
	}
}

// Dequeue removes the oldest value, or returns EmptyVal when the queue
// is empty.
func (h *lcrqHandle) Dequeue() uint64 {
	p, q := h.p, h.q
	for {
		crq := tilesim.Addr(p.Read(q.qhead))
		hIdx := p.FAA(crq+crqHead, 1)
		c := h.cell(crq, hIdx)
		for {
			cv := p.Read(c)
			safe, idx, val := unpackCell(cv)
			if val != lcrqEmpty {
				if idx == hIdx {
					// Dequeue transition: empty the cell for lap idx+R.
					if p.CAS(c, cv, packCell(safe, hIdx+q.ringSize, lcrqEmpty)) {
						return val
					}
				} else {
					// A later-lap value lives here: mark unsafe so its
					// enqueuer's lap cannot be harvested by mistake.
					if p.CAS(c, cv, packCell(0, idx, val)) {
						break
					}
				}
			} else {
				// Empty: advance the cell's index to our next lap so a
				// slow enqueuer with ticket hIdx cannot deposit late.
				if p.CAS(c, cv, packCell(safe, hIdx+q.ringSize, lcrqEmpty)) {
					break
				}
			}
		}
		// Possibly empty: if tail has not passed us, fix up and leave.
		t := p.Read(crq+crqTail) &^ crqClosed
		if t <= hIdx+1 {
			h.fixState(crq)
			if next := p.Read(crq + crqNext); next != 0 {
				// This ring is drained and closed; move to the next.
				p.CAS(q.qhead, uint64(crq), next)
				continue
			}
			return EmptyVal
		}
	}
}

// fixState catches the tail index up to the head after dequeuers
// overran it on an empty ring (Morrison & Afek's FixState).
func (h *lcrqHandle) fixState(crq tilesim.Addr) {
	p := h.p
	for {
		hIdx := p.Read(crq + crqHead)
		t := p.Read(crq + crqTail)
		if t&crqClosed != 0 || (t&^crqClosed) >= hIdx {
			return
		}
		if p.CAS(crq+crqTail, t, hIdx) {
			return
		}
	}
}
