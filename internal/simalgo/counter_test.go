package simalgo

import (
	"testing"

	"hybsync/internal/tilesim"
)

// counterBuilder builds one named approach over a fresh counter; the
// returned pointer-to-pointer is filled in when the factory runs.
func counterBuilder(name string, maxOps int) (*Builder, **Counter) {
	c := new(*Counter)
	factory := func(e *tilesim.Engine) Object {
		*c = NewCounter(e)
		return *c
	}
	var b *Builder
	switch name {
	case "mp-server":
		b = NewMPServerBuilder(factory)
	case "shm-server":
		b = NewSHMServerBuilder(factory)
	case "CC-Synch":
		b = NewCCSynchBuilder(factory, maxOps)
	case "HybComb":
		b = NewHybCombBuilder(factory, maxOps)
	case "mcs-lock":
		b = NewMCSLockBuilder(factory)
	default:
		panic("unknown builder " + name)
	}
	return b, c
}

var approachNames = []string{"mp-server", "shm-server", "CC-Synch", "HybComb", "mcs-lock"}

// TestCounterLinearizable checks, for every approach, that the final
// counter value equals the number of completed increments: increments
// are never lost or duplicated, which for a counter is exactly mutual
// exclusion of the read-modify-write CS.
func TestCounterLinearizable(t *testing.T) {
	for _, name := range approachNames {
		for _, threads := range []int{1, 2, 7, 16, 35} {
			b, c := counterBuilder(name, 200)
			cfg := WorkloadCfg{Threads: threads, Horizon: 60_000, MaxLocalWork: 50}
			res := RunWorkload(tilesim.ProfileTileGx(), b, cfg, CounterOps)
			if res.Ops == 0 {
				t.Fatalf("%s/%d: no ops completed", name, threads)
			}
			if final := (*c).Value(res.Engine); final != res.Ops {
				t.Errorf("%s/%d: counter=%d but ops=%d (lost/duplicated increments)",
					name, threads, final, res.Ops)
			}
			if err := res.Engine.CheckCoherence(); err != nil {
				t.Errorf("%s/%d: %v", name, threads, err)
			}
		}
	}
}

func TestCounterFairness(t *testing.T) {
	for _, name := range approachNames {
		b, _ := counterBuilder(name, 200)
		cfg := WorkloadCfg{Threads: 16, Horizon: 120_000, MaxLocalWork: 50}
		res := RunWorkload(tilesim.ProfileTileGx(), b, cfg, CounterOps)
		if f := res.Fairness(); f == 0 || f > 2.0 {
			t.Errorf("%s: fairness ratio %.2f out of expected range (0,2]", name, f)
		}
	}
}

func TestHybCombCombiningStats(t *testing.T) {
	b, _ := counterBuilder("HybComb", 200)
	cfg := WorkloadCfg{Threads: 24, Horizon: 150_000, MaxLocalWork: 50}
	res := RunWorkload(tilesim.ProfileTileGx(), b, cfg, CounterOps)
	if res.Rounds == 0 {
		t.Fatal("no combining rounds recorded")
	}
	if res.CombiningRate() < 2 {
		t.Errorf("combining rate %.1f too low under 24 threads", res.CombiningRate())
	}
	// §5.3: CAS per operation stays well below 1 in multithreaded runs.
	if casPerOp := float64(res.CASAttempts) / float64(res.Ops); casPerOp > 1.0 {
		t.Errorf("CAS per op = %.2f, expected < 1", casPerOp)
	}
}

func TestMPServerFasterThanSHMServer(t *testing.T) {
	cfg := WorkloadCfg{Threads: 30, Horizon: 120_000, MaxLocalWork: 50}
	bMP, _ := counterBuilder("mp-server", 200)
	bSHM, _ := counterBuilder("shm-server", 200)
	mp := RunWorkload(tilesim.ProfileTileGx(), bMP, cfg, CounterOps)
	shm := RunWorkload(tilesim.ProfileTileGx(), bSHM, cfg, CounterOps)
	if mp.Mops() <= shm.Mops() {
		t.Errorf("mp-server %.1f Mops <= shm-server %.1f Mops; paper expects ~4x advantage",
			mp.Mops(), shm.Mops())
	}
}

func TestHybCombFasterThanCCSynch(t *testing.T) {
	cfg := WorkloadCfg{Threads: 30, Horizon: 120_000, MaxLocalWork: 50}
	bH, _ := counterBuilder("HybComb", 200)
	bC, _ := counterBuilder("CC-Synch", 200)
	hy := RunWorkload(tilesim.ProfileTileGx(), bH, cfg, CounterOps)
	cc := RunWorkload(tilesim.ProfileTileGx(), bC, cfg, CounterOps)
	if hy.Mops() <= cc.Mops() {
		t.Errorf("HybComb %.1f Mops <= CC-Synch %.1f Mops; paper expects ~2.5x advantage",
			hy.Mops(), cc.Mops())
	}
}

// TestServerStallsVsMessagePassing is the Figure 4a shape check: the
// shared-memory servicing threads stall for a large fraction of their
// cycles, while the message-passing server's stalls are near zero.
func TestServerStallsVsMessagePassing(t *testing.T) {
	cfg := WorkloadCfg{Threads: 30, Horizon: 120_000, MaxLocalWork: 50}
	bMP, _ := counterBuilder("mp-server", 200)
	bSHM, _ := counterBuilder("shm-server", 200)
	mp := RunWorkload(tilesim.ProfileTileGx(), bMP, cfg, CounterOps)
	shm := RunWorkload(tilesim.ProfileTileGx(), bSHM, cfg, CounterOps)

	mpStallFrac := float64(mp.ServiceStall) / float64(mp.ServiceBusy)
	shmStallFrac := float64(shm.ServiceStall) / float64(shm.ServiceBusy)
	if mpStallFrac > 0.05 {
		t.Errorf("mp-server stall fraction %.2f, expected ~0", mpStallFrac)
	}
	if shmStallFrac < 0.3 {
		t.Errorf("shm-server stall fraction %.2f, expected > 0.3 (paper: >50%%)", shmStallFrac)
	}
}

// TestMCSLockSlowerThanCombining quantifies the §3 locality argument:
// under a queue lock the counter's line migrates to every acquiring
// core, so even the slowest CS-migration approach beats it at high
// concurrency.
func TestMCSLockSlowerThanCombining(t *testing.T) {
	cfg := WorkloadCfg{Threads: 30, Horizon: 120_000, MaxLocalWork: 50}
	bM, _ := counterBuilder("mcs-lock", 200)
	bC, _ := counterBuilder("CC-Synch", 200)
	mcs := RunWorkload(tilesim.ProfileTileGx(), bM, cfg, CounterOps)
	cc := RunWorkload(tilesim.ProfileTileGx(), bC, cfg, CounterOps)
	if mcs.Mops() >= cc.Mops() {
		t.Errorf("mcs-lock %.1f Mops >= CC-Synch %.1f Mops; §3 expects locks to lose", mcs.Mops(), cc.Mops())
	}
}

// TestLatencyPercentiles checks the recording path and the §5.3 hiccup
// claim: HybComb's p99/max far exceeds its median under high MAX_OPS,
// while MP-SERVER's distribution is tight.
func TestLatencyPercentiles(t *testing.T) {
	cfg := WorkloadCfg{Threads: 25, Horizon: 150_000, MaxLocalWork: 50, RecordLatencies: true}
	bH, _ := counterBuilder("HybComb", 5000)
	bM, _ := counterBuilder("mp-server", 200)
	hy := RunWorkload(tilesim.ProfileTileGx(), bH, cfg, CounterOps)
	mp := RunWorkload(tilesim.ProfileTileGx(), bM, cfg, CounterOps)
	if len(hy.Latencies) == 0 || uint64(len(hy.Latencies)) != hy.Ops {
		t.Fatalf("latency recording: %d entries for %d ops", len(hy.Latencies), hy.Ops)
	}
	if p0, p100 := hy.LatencyPercentile(0), hy.LatencyPercentile(1); p0 > p100 {
		t.Fatalf("percentiles not monotone: p0=%d p100=%d", p0, p100)
	}
	hyTail := float64(hy.LatencyPercentile(1)) / float64(hy.LatencyPercentile(0.5))
	mpTail := float64(mp.LatencyPercentile(1)) / float64(mp.LatencyPercentile(0.5))
	if hyTail <= mpTail {
		t.Errorf("HybComb tail ratio %.1f <= mp-server %.1f; expected combiner hiccups", hyTail, mpTail)
	}
}

// TestOversubscribedWorkload runs the §6 scenario: more application
// threads than cores, sharing cores through the multiplexed message
// queues. Correctness (no lost increments) must be unaffected; the cores
// time-share, so throughput cannot exceed the one-thread-per-core run by
// much.
func TestOversubscribedWorkload(t *testing.T) {
	for _, name := range []string{"mp-server", "HybComb"} {
		b, c := counterBuilder(name, 200)
		cfg := WorkloadCfg{Threads: 40, Horizon: 60_000, MaxLocalWork: 50, ProcsPerCore: 2}
		res := RunWorkload(tilesim.ProfileTileGx(), b, cfg, CounterOps)
		if res.Ops == 0 {
			t.Fatalf("%s: no ops", name)
		}
		if final := (*c).Value(res.Engine); final != res.Ops {
			t.Errorf("%s oversubscribed: counter=%d ops=%d", name, final, res.Ops)
		}
	}
}

// TestAblationVariantsLinearizable: the SWAP-registration and
// no-eager-drain HybComb variants must still be mutually exclusive.
func TestAblationVariantsLinearizable(t *testing.T) {
	for _, mode := range []string{"swap", "nodrain"} {
		var c *Counter
		b := &Builder{Name: "HybComb-" + mode}
		b.Make = func(e *tilesim.Engine, threads int) (Executor, []*tilesim.Proc, int) {
			c = NewCounter(e)
			h := NewHybComb(e, c, 200)
			switch mode {
			case "swap":
				h.SwapRegistration = true
			case "nodrain":
				h.NoEagerDrain = true
			}
			return h, nil, 0
		}
		cfg := WorkloadCfg{Threads: 20, Horizon: 80_000, MaxLocalWork: 50}
		res := RunWorkload(tilesim.ProfileTileGx(), b, cfg, CounterOps)
		if final := c.Value(res.Engine); final != res.Ops {
			t.Errorf("%s: counter=%d ops=%d", mode, final, res.Ops)
		}
	}
}

// TestArrayCounterObject checks the Figure 4c object applies exactly
// `arg` increments per op.
func TestArrayCounterObject(t *testing.T) {
	e := tilesim.NewEngine(tilesim.ProfileTileGx())
	a := NewArrayCounter(e, 8)
	e.Spawn("t", 0, func(p *tilesim.Proc) {
		a.Exec(p, OpIncN, 3)
		a.Exec(p, OpIncN, 100) // clamped to 8
	})
	e.Run(0)
	for i := 0; i < 8; i++ {
		want := uint64(1)
		if i < 3 {
			want = 2
		}
		if got := e.Peek(a.base + tilesim.Addr(i)); got != want {
			t.Fatalf("cell %d = %d, want %d", i, got, want)
		}
	}
}

// TestX86ProfileCounterRuns exercises the §5.5 profile end to end.
func TestX86ProfileCounterRuns(t *testing.T) {
	prof := tilesim.ProfileX86Like()
	for _, name := range []string{"shm-server", "CC-Synch", "mcs-lock"} {
		b, c := counterBuilder(name, 200)
		cfg := WorkloadCfg{Threads: prof.NumCores() - 1, Horizon: 60_000, MaxLocalWork: 50}
		res := RunWorkload(prof, b, cfg, CounterOps)
		if final := (*c).Value(res.Engine); final != res.Ops {
			t.Errorf("%s on x86 profile: counter=%d ops=%d", name, final, res.Ops)
		}
	}
}

// TestEncodeDecodeVal round-trips the workload value packing.
func TestEncodeDecodeVal(t *testing.T) {
	for th := 0; th < 36; th++ {
		for _, seq := range []uint64{0, 1, 12345, 1<<26 - 1} {
			gt, gs := DecodeVal(EncodeVal(th, seq))
			if gt != th || gs != seq {
				t.Fatalf("round trip (%d,%d) -> (%d,%d)", th, seq, gt, gs)
			}
		}
	}
}
