package telemetry

import (
	"testing"
	"time"
)

// TestNilDisarmed pins the disarmed contract: a nil *Telemetry hands
// out nil Recorders, every method is a no-op, and nothing panics.
func TestNilDisarmed(t *testing.T) {
	var tel *Telemetry
	rec := tel.Recorder()
	if rec != nil {
		t.Fatalf("nil Telemetry returned non-nil Recorder")
	}
	if rec.Sample() {
		t.Errorf("nil Recorder sampled")
	}
	rec.Latency(time.Now())
	rec.RunLen(5)
	tel.NotePoison()
	tel.NoteStall()
	tel.NoteSubmitStall()
	if hook := tel.StallHook(); hook != nil {
		t.Errorf("nil Telemetry returned non-nil StallHook")
	}
	if snap := tel.Snapshot(); snap != (Snapshot{}) {
		t.Errorf("nil Telemetry snapshot = %+v, want zero", snap)
	}
}

// TestSampling checks the 1-in-every cadence: over N calls a Recorder
// with interval k reports true N/k times, and an interval-1 Recorder
// samples every call.
func TestSampling(t *testing.T) {
	tel := NewSampled(4)
	rec := tel.Recorder()
	hits := 0
	for i := 0; i < 400; i++ {
		if rec.Sample() {
			hits++
			rec.Latency(time.Now())
		}
	}
	if hits != 100 {
		t.Errorf("interval-4 recorder sampled %d/400, want 100", hits)
	}
	all := NewSampled(1).Recorder()
	for i := 0; i < 10; i++ {
		if !all.Sample() {
			t.Fatalf("interval-1 recorder skipped call %d", i)
		}
	}
	if got := tel.Snapshot().Latency.Count; got != 100 {
		t.Errorf("latency count = %d, want 100", got)
	}
}

// TestRecorderStagger: recorders from one Telemetry must not sample in
// lockstep — their first sampled call differs by construction.
func TestRecorderStagger(t *testing.T) {
	tel := NewSampled(8)
	first := map[int]bool{}
	for r := 0; r < 8; r++ {
		rec := tel.Recorder()
		for i := 1; ; i++ {
			if rec.Sample() {
				first[i] = true
				break
			}
		}
	}
	if len(first) < 2 {
		t.Errorf("8 recorders all took their first sample on the same call")
	}
}

func TestCountersAndRunLen(t *testing.T) {
	tel := New()
	tel.NotePoison()
	tel.NoteStall()
	tel.NoteStall()
	tel.NoteSubmitStall()
	hook := tel.StallHook()
	if hook == nil {
		t.Fatalf("armed Telemetry returned nil StallHook")
	}
	hook()
	rec := tel.Recorder()
	rec.RunLen(3)
	rec.RunLen(5)
	rec.RunLen(0)  // ignored
	rec.RunLen(-1) // ignored

	snap := tel.Snapshot()
	if snap.Poisons != 1 || snap.Stalls != 3 || snap.SubmitStalls != 1 {
		t.Errorf("counters = %d/%d/%d, want 1/3/1", snap.Poisons, snap.Stalls, snap.SubmitStalls)
	}
	if snap.RunLen.Count != 2 || snap.RunLen.Sum != 8 || snap.RunLen.Max != 5 {
		t.Errorf("run-length = %+v, want count 2 sum 8 max 5", snap.RunLen)
	}
	if got := snap.RunLen.Mean(); got != 4 {
		t.Errorf("run-length mean = %v, want 4", got)
	}
}

func TestSnapshotDeltaMerge(t *testing.T) {
	tel := NewSampled(1)
	rec := tel.Recorder()
	rec.RunLen(2)
	tel.NoteStall()
	s1 := tel.Snapshot()
	rec.RunLen(4)
	tel.NoteStall()
	tel.NotePoison()
	s2 := tel.Snapshot()

	d := s2.Delta(s1)
	if d.RunLen.Count != 1 || d.RunLen.Sum != 4 {
		t.Errorf("delta run-length = %+v, want count 1 sum 4", d.RunLen)
	}
	if d.Stalls != 1 || d.Poisons != 1 {
		t.Errorf("delta counters = stalls %d poisons %d, want 1/1", d.Stalls, d.Poisons)
	}
	// Max is documented as lifetime, not interval.
	if d.RunLen.Max != s2.RunLen.Max {
		t.Errorf("delta max = %d, want lifetime %d", d.RunLen.Max, s2.RunLen.Max)
	}

	m := s1.Merge(s2)
	if m.RunLen.Count != s1.RunLen.Count+s2.RunLen.Count {
		t.Errorf("merge count = %d, want %d", m.RunLen.Count, s1.RunLen.Count+s2.RunLen.Count)
	}
	if m.RunLen.Max != 4 {
		t.Errorf("merge max = %d, want 4", m.RunLen.Max)
	}
	if m.Stalls != s1.Stalls+s2.Stalls {
		t.Errorf("merge stalls = %d, want %d", m.Stalls, s1.Stalls+s2.Stalls)
	}
}

// TestQuantile pins the quantile contract: empty histogram reports 0,
// quantiles are bucket upper bounds clamped to the recorded maximum,
// and a single-valued histogram reports that value at every quantile.
func TestQuantile(t *testing.T) {
	var empty Hist
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %d, want 0", got)
	}

	tel := NewSampled(1)
	rec := tel.Recorder()
	for i := 0; i < 100; i++ {
		rec.RunLen(100) // bucket 7 ([64,128)), max 100
	}
	h := tel.Snapshot().RunLen
	for _, q := range []float64{0.001, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("single-value Quantile(%v) = %d, want 100 (clamped to max)", q, got)
		}
	}

	// Two populations: 90 values of 1, 10 values of ~1000. The p50 must
	// land in bucket 1 (exactly 1); the p99 in the 1000s bucket.
	tel2 := NewSampled(1)
	rec2 := tel2.Recorder()
	for i := 0; i < 90; i++ {
		rec2.RunLen(1)
	}
	for i := 0; i < 10; i++ {
		rec2.RunLen(1000)
	}
	h2 := tel2.Snapshot().RunLen
	if got := h2.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := h2.Quantile(0.99); got != 1000 {
		t.Errorf("p99 = %d, want 1000 (bucket ub 1023 clamped to max 1000)", got)
	}
}

func TestRegistry(t *testing.T) {
	before := len(Entries())
	tel := New()
	unreg := Register("test/exec", tel)
	ents := Entries()
	if len(ents) != before+1 {
		t.Fatalf("entries = %d, want %d", len(ents), before+1)
	}
	found := false
	for _, e := range ents {
		if e.Label == "test/exec" {
			found = true
		}
	}
	if !found {
		t.Errorf("registered label not present in Entries")
	}
	unreg()
	unreg() // idempotent
	if got := len(Entries()); got != before {
		t.Errorf("after unregister entries = %d, want %d", got, before)
	}

	// nil registers nothing and still hands back a callable.
	noop := Register("nil/exec", nil)
	if got := len(Entries()); got != before {
		t.Errorf("nil Register changed entries: %d, want %d", got, before)
	}
	noop()
}

func TestNoteCondemned(t *testing.T) {
	before := CondemnedCount()
	NoteCondemned()
	NoteCondemned()
	if got := CondemnedCount(); got != before+2 {
		t.Errorf("condemned = %d, want %d", got, before+2)
	}
}

// TestLatencyClamp: a start time in the future must record 0, not wrap
// to a huge unsigned duration.
func TestLatencyClamp(t *testing.T) {
	tel := NewSampled(1)
	rec := tel.Recorder()
	if !rec.Sample() {
		t.Fatal("interval-1 recorder did not sample")
	}
	rec.Latency(time.Now().Add(time.Hour))
	h := tel.Snapshot().Latency
	if h.Count != 1 || h.Buckets[0] != 1 {
		t.Errorf("future start recorded %+v, want one value in bucket 0", h)
	}
}
