package export

import (
	"encoding/json"
	"expvar"
	"io"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"hybsync/internal/telemetry"
)

// readAll GETs path from the mux via httptest and returns the body.
func readAll(t *testing.T, path string) []byte {
	t.Helper()
	srv := httptest.NewServer(NewMux())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	return body
}

func TestHandlerJSON(t *testing.T) {
	tel := telemetry.NewSampled(1)
	rec := tel.Recorder()
	rec.RunLen(8)
	if rec.Sample() {
		rec.Latency(time.Now().Add(-time.Millisecond))
	}
	tel.NoteStall()
	defer telemetry.Register("export-test/mpserver", tel)()

	body := readAll(t, "/debug/hybsync")
	var v struct {
		Schema    int `json:"schema"`
		Executors []struct {
			Label  string `json:"label"`
			Stalls uint64 `json:"stall_reports"`
			RunLen *struct {
				Count uint64 `json:"count"`
				P50   uint64 `json:"p50"`
			} `json:"run_len"`
			Latency *struct {
				Count uint64 `json:"count"`
			} `json:"latency_ns"`
		} `json:"executors"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("endpoint emitted invalid JSON: %v\n%s", err, body)
	}
	if v.Schema != 1 {
		t.Errorf("schema = %d, want 1", v.Schema)
	}
	found := false
	for _, e := range v.Executors {
		if e.Label != "export-test/mpserver" {
			continue
		}
		found = true
		if e.Stalls != 1 {
			t.Errorf("stall_reports = %d, want 1", e.Stalls)
		}
		if e.RunLen == nil || e.RunLen.Count != 1 || e.RunLen.P50 != 8 {
			t.Errorf("run_len = %+v, want count 1 p50 8", e.RunLen)
		}
		if e.Latency == nil || e.Latency.Count != 1 {
			t.Errorf("latency_ns = %+v, want count 1", e.Latency)
		}
	}
	if !found {
		t.Fatalf("registered executor missing from endpoint:\n%s", body)
	}
}

func TestExpvar(t *testing.T) {
	tel := telemetry.New()
	defer telemetry.Register("export-test/expvar", tel)()
	PublishExpvar()
	PublishExpvar() // idempotent, must not panic

	v := expvar.Get("hybsync")
	if v == nil {
		t.Fatal(`expvar "hybsync" not published`)
	}
	if !strings.Contains(v.String(), "export-test/expvar") {
		t.Errorf("expvar view misses the registered executor: %s", v.String())
	}

	body := readAll(t, "/debug/vars")
	var all map[string]json.RawMessage
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatalf("/debug/vars emitted invalid JSON: %v", err)
	}
	if _, ok := all["hybsync"]; !ok {
		t.Errorf(`/debug/vars misses the "hybsync" key`)
	}
}

// TestHandlerNoGoroutineLeak: the handler itself must start no
// goroutines — serving N requests leaves the goroutine count where it
// was once the test server closes.
func TestHandlerNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := httptest.NewServer(NewMux())
	for i := 0; i < 20; i++ {
		resp, err := srv.Client().Get(srv.URL + "/debug/hybsync")
		if err != nil {
			t.Fatalf("GET: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	srv.Close()
	// The server's accept loop and keep-alive conns wind down
	// asynchronously; poll briefly before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after 20 requests and close",
		before, runtime.NumGoroutine())
}
