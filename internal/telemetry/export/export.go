// Package export publishes the telemetry registry over HTTP and
// expvar. It is a separate package so that the constructions (and
// anything importing internal/core) never pull net/http into their
// dependency graph: only the binaries that actually serve the debug
// endpoint import export.
//
// Two surfaces, same data:
//
//   - /debug/hybsync — a JSON document with one entry per live
//     registered executor: label, derived percentiles for the latency
//     and run-length histograms, and the fault/backpressure counters.
//   - expvar — PublishExpvar exposes the same view under the "hybsync"
//     key of /debug/vars, for collectors that already scrape expvar.
//
// Snapshots are merge-on-read and not consistent cuts; see package
// telemetry.
package export

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"

	"hybsync/internal/telemetry"
)

// view is the wire document of the debug endpoint.
type view struct {
	Schema    int        `json:"schema"`
	Condemned uint64     `json:"timeout_condemns"`
	Executors []execView `json:"executors"`
}

// execView is one registered executor, with the histograms reduced to
// the derived statistics a human (or a scraper) wants. Quantiles are
// log₂-bucket upper bounds — within 2× of the true value.
type execView struct {
	ID           uint64    `json:"id"`
	Label        string    `json:"label"`
	Latency      *histView `json:"latency_ns,omitempty"`
	RunLen       *histView `json:"run_len,omitempty"`
	Poisons      uint64    `json:"poisons"`
	Stalls       uint64    `json:"stall_reports"`
	SubmitStalls uint64    `json:"submit_stalls"`
}

type histView struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean"`
	Max   uint64  `json:"max"`
	P50   uint64  `json:"p50"`
	P90   uint64  `json:"p90"`
	P99   uint64  `json:"p99"`
	P999  uint64  `json:"p999"`
}

func reduce(h telemetry.Hist) *histView {
	if h.Count == 0 {
		return nil
	}
	return &histView{
		Count: h.Count,
		Mean:  h.Mean(),
		Max:   h.Max,
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

func currentView() view {
	ents := telemetry.Entries()
	v := view{Schema: 1, Condemned: telemetry.CondemnedCount(), Executors: make([]execView, len(ents))}
	for i, e := range ents {
		v.Executors[i] = execView{
			ID:           e.ID,
			Label:        e.Label,
			Latency:      reduce(e.Snap.Latency),
			RunLen:       reduce(e.Snap.RunLen),
			Poisons:      e.Snap.Poisons,
			Stalls:       e.Snap.Stalls,
			SubmitStalls: e.Snap.SubmitStalls,
		}
	}
	return v
}

// Handler returns the /debug/hybsync handler: a JSON snapshot of every
// live registered executor, computed per request. The handler holds no
// state and starts no goroutines.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(currentView())
	})
}

var publishOnce sync.Once

// PublishExpvar exposes the registry view as the expvar variable
// "hybsync" (idempotent; expvar.Publish panics on duplicates, hence
// the Once).
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("hybsync", expvar.Func(func() any { return currentView() }))
	})
}

// NewMux returns an http.ServeMux with the debug surface mounted:
// /debug/hybsync (Handler) and /debug/vars (expvar, including the
// published "hybsync" variable).
func NewMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/debug/hybsync", Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// Start serves the debug surface on addr (e.g. "localhost:0") in a
// background goroutine and returns the bound address. The listener
// lives until the process exits — the intended use is a benchmark or
// service flag, not a managed server.
func Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: NewMux()}
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}
