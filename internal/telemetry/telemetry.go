// Package telemetry is the repository's lock-free metric layer: padded
// per-shard histogram and counter cores cheap enough to compile into
// every construction, armed per executor with core.WithTelemetry and
// read with a merge-on-read Snapshot.
//
// The design splits hot-path cost from read-path cost the same way
// core.PipeCounters does:
//
//   - Recording is one or two uncontended atomic adds on a
//     cache-line-padded shard row owned (modulo round-robin reuse) by
//     the recording goroutine. There are no locks anywhere on the
//     record path and nothing is computed: a latency sample is a single
//     log₂-bucket increment.
//   - Reading (Snapshot) merges every shard row with plain atomic
//     loads and derives quantiles from the merged buckets. Snapshots
//     are NOT consistent cuts — writers keep recording while the
//     reader walks the shards — but every field is monotonic, so a
//     Snapshot is exact at quiescence and a bounded-drift estimate
//     under load (see Hist).
//   - Disarmed is the default: a nil *Telemetry hands out nil
//     *Recorders, and every Recorder and Telemetry method nil-checks
//     its receiver, so the disarmed hot path is one predictable branch
//     with no clock reads.
//
// Latency recording is sampled (default one in 16 blocking calls per
// Recorder) so the two time.Now calls bracketing a sampled operation
// amortize to noise; run-length recording is exhaustive, because one
// record per DispatchBatch run is already amortized across the run.
package telemetry

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// DefaultSampleInterval is New's latency sampling interval: one in
// this many Sample calls per Recorder returns true.
const DefaultSampleInterval = 16

// Telemetry is one executor's metric core: a blocking-call latency
// histogram (nanoseconds; Apply, Wait and ApplyBatch calls), a
// run-length histogram (requests per DispatchBatch run the
// construction formed), and the fault/backpressure event counters. A
// nil *Telemetry is the disarmed state; every method is nil-safe.
//
// One Telemetry may be shared by several executors (the sharded
// benches attach one to every shard): the histograms and counters
// simply aggregate across them.
type Telemetry struct {
	lat Histogram // blocking-call latency, ns
	run Histogram // requests per DispatchBatch run

	// Rare-event counters: incremented on paths that are already slow
	// (a tripped poison latch, a stall report, a full pipeline), so a
	// direct atomic add is noise — the PipeCounters argument.
	poisons      atomic.Uint64
	stalls       atomic.Uint64
	submitStalls atomic.Uint64

	// Adaptive-executor counters: mode transitions are rare by
	// construction (hysteresis), and a contended lock acquisition is
	// already a multi-hundred-cycle event, so these too are direct adds.
	promotions  atomic.Uint64
	demotions   atomic.Uint64
	lockRetries atomic.Uint64

	sampleEvery uint32
	nextRec     atomic.Uint32
}

// New returns an armed Telemetry with the default latency sampling
// interval.
func New() *Telemetry { return NewSampled(DefaultSampleInterval) }

// NewSampled returns an armed Telemetry whose Recorders sample one in
// every latency observations (every <= 1 records every blocking call —
// what the correctness tests use; benchmarks keep the default so the
// bracketing clock reads amortize away).
func NewSampled(every int) *Telemetry {
	if every < 1 {
		every = 1
	}
	return &Telemetry{sampleEvery: uint32(every)}
}

// Recorder returns a recording capability bound to one histogram shard
// (round-robin). Each recording goroutine (an executor handle, a
// server loop) should hold its own; a nil Telemetry returns a nil
// Recorder, which records nothing. Recorders are not safe for
// concurrent use — like the handles that own them.
func (t *Telemetry) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	seq := t.nextRec.Add(1) - 1
	return &Recorder{
		t:     t,
		shard: seq % NumShards,
		// Stagger the first sample per recorder so same-interval
		// recorders do not observe in lockstep phases.
		tick:  seq%t.sampleEvery + 1,
		every: t.sampleEvery,
	}
}

// NotePoison counts one poison-latch trip. Called by the latch on the
// winning CAS only, so the counter equals the number of executors this
// Telemetry is attached to that entered the terminal fault state.
func (t *Telemetry) NotePoison() {
	if t != nil {
		t.poisons.Add(1)
	}
}

// NoteStall counts one stall-watchdog report (a wait that made no
// progress past its stall budget — see backoff.Watched).
func (t *Telemetry) NoteStall() {
	if t != nil {
		t.stalls.Add(1)
	}
}

// NoteSubmitStall counts one submission that found its handle's
// pipeline full, mirroring core.PipeCounters.NoteStall as a telemetry
// event.
func (t *Telemetry) NoteSubmitStall() {
	if t != nil {
		t.submitStalls.Add(1)
	}
}

// NotePromotion counts one lock→delegation mode switch by an adaptive
// executor attached to this core.
func (t *Telemetry) NotePromotion() {
	if t != nil {
		t.promotions.Add(1)
	}
}

// NoteDemotion counts one delegation→lock mode switch by an adaptive
// executor attached to this core.
func (t *Telemetry) NoteDemotion() {
	if t != nil {
		t.demotions.Add(1)
	}
}

// NoteLockRetries counts n contended lock acquisitions (acquisitions
// that found the lock held and had to wait or retry) — the promotion
// signal of the adaptive executor and the spin executors' contention
// gauge. Called on the contended path only, where the wait already
// dwarfs the add.
func (t *Telemetry) NoteLockRetries(n uint64) {
	if t != nil && n != 0 {
		t.lockRetries.Add(n)
	}
}

// StallHook returns a callback for backoff.Watched.SetOnStall that
// counts watchdog firings here, or nil when disarmed (SetOnStall
// treats nil as "no hook").
func (t *Telemetry) StallHook() func() {
	if t == nil {
		return nil
	}
	return func() { t.stalls.Add(1) }
}

// Snapshot merges every shard and returns the current totals. Safe
// from any goroutine, concurrently with recording; exact once the
// executor is quiescent.
func (t *Telemetry) Snapshot() Snapshot {
	if t == nil {
		return Snapshot{}
	}
	return Snapshot{
		Latency:      t.lat.snapshot(),
		RunLen:       t.run.snapshot(),
		Poisons:      t.poisons.Load(),
		Stalls:       t.stalls.Load(),
		SubmitStalls: t.submitStalls.Load(),
		Promotions:   t.promotions.Load(),
		Demotions:    t.demotions.Load(),
		LockRetries:  t.lockRetries.Load(),
	}
}

// Recorder is a per-goroutine recording capability over one Telemetry.
// The nil Recorder is the disarmed state: Sample reports false and the
// observe methods do nothing, so call sites pay one branch.
type Recorder struct {
	t     *Telemetry
	shard uint32
	tick  uint32 // countdown to the next latency sample
	every uint32
}

// Sample reports whether the caller should time this blocking call
// (and then hand the elapsed time to Latency). One in every calls
// returns true; a nil Recorder always reports false, keeping the
// disarmed path free of clock reads.
func (r *Recorder) Sample() bool {
	if r == nil {
		return false
	}
	r.tick--
	if r.tick == 0 {
		r.tick = r.every
		return true
	}
	return false
}

// Latency records the time elapsed since start (one sampled blocking
// call). Call it only when the matching Sample returned true.
func (r *Recorder) Latency(start time.Time) {
	if r == nil {
		return
	}
	d := time.Since(start)
	if d < 0 {
		d = 0
	}
	r.t.lat.record(r.shard, uint64(d))
}

// RunLen records one DispatchBatch run of n requests. Unsampled: a
// run's record cost amortizes across its requests.
func (r *Recorder) RunLen(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.t.run.record(r.shard, uint64(n))
}

// Snapshot is one merged read of a Telemetry: the two histograms plus
// the event counters. It is a plain value — subtract with Delta, add
// with Merge — and doubles as the JSON payload of the debug endpoint.
type Snapshot struct {
	Latency      Hist   `json:"latency_ns"`
	RunLen       Hist   `json:"run_len"`
	Poisons      uint64 `json:"poisons"`
	Stalls       uint64 `json:"stall_reports"`
	SubmitStalls uint64 `json:"submit_stalls"`
	Promotions   uint64 `json:"promotions"`
	Demotions    uint64 `json:"demotions"`
	LockRetries  uint64 `json:"lock_retries"`
}

// Delta returns the change from prev to s — the interval view a
// periodic reader (or a promotion heuristic polling an executor) wants.
// Histogram Max fields are lifetime maxima, not interval maxima: Delta
// keeps s's value.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	return Snapshot{
		Latency:      s.Latency.delta(prev.Latency),
		RunLen:       s.RunLen.delta(prev.RunLen),
		Poisons:      s.Poisons - prev.Poisons,
		Stalls:       s.Stalls - prev.Stalls,
		SubmitStalls: s.SubmitStalls - prev.SubmitStalls,
		Promotions:   s.Promotions - prev.Promotions,
		Demotions:    s.Demotions - prev.Demotions,
		LockRetries:  s.LockRetries - prev.LockRetries,
	}
}

// Merge returns the element-wise sum of two snapshots (Max is the
// maximum) — how the shard router aggregates per-shard telemetry.
func (s Snapshot) Merge(other Snapshot) Snapshot {
	return Snapshot{
		Latency:      s.Latency.merge(other.Latency),
		RunLen:       s.RunLen.merge(other.RunLen),
		Poisons:      s.Poisons + other.Poisons,
		Stalls:       s.Stalls + other.Stalls,
		SubmitStalls: s.SubmitStalls + other.SubmitStalls,
		Promotions:   s.Promotions + other.Promotions,
		Demotions:    s.Demotions + other.Demotions,
		LockRetries:  s.LockRetries + other.LockRetries,
	}
}

// Hist is one merged histogram: log₂ buckets (Buckets[i] counts values
// v with bits.Len64(v) == i, i.e. bucket 0 is exactly 0 and bucket i
// covers [2^(i-1), 2^i)), the exact sum and the lifetime maximum.
// Count is derived from the buckets at snapshot time, so it is always
// consistent with them; Sum and Max are read separately and may drift
// by in-flight records under load.
type Hist struct {
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
	Max     uint64             `json:"max"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// Mean returns the average recorded value (0 when empty).
func (h Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of
// the recorded values: the upper edge of the log₂ bucket holding that
// rank, clamped to the recorded maximum. The bound is tight to within
// the bucket's 2× resolution — Quantile(0.5) <= 2 × the true median.
func (h Hist) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.Buckets {
		cum += c
		if cum >= rank {
			ub := bucketMax(i)
			if h.Max > 0 && ub > h.Max {
				ub = h.Max
			}
			return ub
		}
	}
	return h.Max
}

func (h Hist) delta(prev Hist) Hist {
	d := Hist{Count: h.Count - prev.Count, Sum: h.Sum - prev.Sum, Max: h.Max}
	for i := range h.Buckets {
		d.Buckets[i] = h.Buckets[i] - prev.Buckets[i]
	}
	return d
}

func (h Hist) merge(other Hist) Hist {
	m := Hist{Count: h.Count + other.Count, Sum: h.Sum + other.Sum, Max: h.Max}
	if other.Max > m.Max {
		m.Max = other.Max
	}
	for i := range h.Buckets {
		m.Buckets[i] = h.Buckets[i] + other.Buckets[i]
	}
	return m
}

// bucketOf maps a value to its log₂ bucket.
func bucketOf(v uint64) int { return bits.Len64(v) }

// bucketMax is the largest value bucket i can hold.
func bucketMax(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return math.MaxUint64
	}
	return uint64(1)<<i - 1
}
