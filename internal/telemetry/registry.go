package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// The live-executor registry backs the debug endpoint: benchmarks (and
// any embedder) register each armed executor's Telemetry under a
// human-readable label, and Entries snapshots them all. It parallels
// measure's PoisonLive registry — measure seeds both from the same
// tracking call — but lives here so the export layer needs no
// dependency on the benchmark harness.

type regEntry struct {
	label string
	t     *Telemetry
}

var (
	regMu  sync.Mutex
	regSeq uint64
	reg    = map[uint64]regEntry{}
)

// Register adds t to the live registry under label and returns the
// matching unregister function. A nil t registers nothing (the
// returned function is still safe to call), so callers can pass their
// possibly-disarmed telemetry straight through.
func Register(label string, t *Telemetry) (unregister func()) {
	if t == nil {
		return func() {}
	}
	regMu.Lock()
	regSeq++
	id := regSeq
	reg[id] = regEntry{label: label, t: t}
	regMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			regMu.Lock()
			delete(reg, id)
			regMu.Unlock()
		})
	}
}

// Entry is one live executor's registry view: its registration order,
// label and a fresh snapshot.
type Entry struct {
	ID    uint64   `json:"id"`
	Label string   `json:"label"`
	Snap  Snapshot `json:"snapshot"`
}

// Entries snapshots every live registered Telemetry, in registration
// order.
func Entries() []Entry {
	regMu.Lock()
	ids := make([]uint64, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	ents := make([]regEntry, len(ids))
	for i, id := range ids {
		ents[i] = reg[id]
	}
	regMu.Unlock()
	// Snapshot outside the lock: snapshots only touch the Telemetry
	// atomics, and a long shard walk must not block Register.
	out := make([]Entry, len(ids))
	for i, id := range ids {
		out[i] = Entry{ID: id, Label: ents[i].label, Snap: ents[i].t.Snapshot()}
	}
	return out
}

// condemned counts process-wide executor condemnations: executors
// poisoned from the outside after exceeding a deadline (the sweep
// runner's OnTimeout path), as opposed to poisons latched by a dispatch
// fault. It is process-global because condemnation happens where no
// per-executor Telemetry is in scope anymore — the executor has been
// abandoned.
var condemned atomic.Uint64

// NoteCondemned counts one externally condemned executor.
func NoteCondemned() { condemned.Add(1) }

// CondemnedCount returns the process-wide condemnation total.
func CondemnedCount() uint64 { return condemned.Load() }
