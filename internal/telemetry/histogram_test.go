package telemetry

import (
	"math"
	"math/bits"
	"math/rand"
	"sync"
	"testing"
)

// seqModel is the obvious sequential histogram the lock-free one must
// agree with at quiescence.
type seqModel struct {
	buckets [NumBuckets]uint64
	count   uint64
	sum     uint64
	max     uint64
}

func (m *seqModel) record(v uint64) {
	m.buckets[bits.Len64(v)]++
	m.count++
	m.sum += v
	if v > m.max {
		m.max = v
	}
}

// TestHistogramMatchesSequentialModel drives identical value streams
// through the sharded histogram and the sequential model and requires
// the merged snapshot to agree exactly, with special attention to the
// bucket boundaries (0, 1, powers of two and their neighbours, and
// MaxUint64).
func TestHistogramMatchesSequentialModel(t *testing.T) {
	boundary := []uint64{0, 1, 2, 3, 4, 7, 8, 1023, 1024, 1025}
	for e := 1; e < 64; e++ {
		p := uint64(1) << e
		boundary = append(boundary, p-1, p, p+1)
	}
	boundary = append(boundary, math.MaxUint64-1, math.MaxUint64)

	var h Histogram
	var m seqModel
	rng := rand.New(rand.NewSource(7))
	vals := append([]uint64(nil), boundary...)
	for i := 0; i < 10_000; i++ {
		vals = append(vals, rng.Uint64()>>uint(rng.Intn(64)))
	}
	for i, v := range vals {
		h.record(uint32(i%NumShards), v)
		m.record(v)
	}

	snap := h.snapshot()
	if snap.Count != m.count || snap.Sum != m.sum || snap.Max != m.max {
		t.Fatalf("snapshot count/sum/max = %d/%d/%d, model %d/%d/%d",
			snap.Count, snap.Sum, snap.Max, m.count, m.sum, m.max)
	}
	if snap.Buckets != m.buckets {
		t.Fatalf("bucket arrays differ:\n got %v\nwant %v", snap.Buckets, m.buckets)
	}
}

// TestBucketBoundaries pins the bucket mapping contract: bucket 0 holds
// exactly the value 0, bucket i holds [2^(i-1), 2^i), and bucketMax is
// the inclusive upper edge of each bucket.
func TestBucketBoundaries(t *testing.T) {
	if got := bucketOf(0); got != 0 {
		t.Errorf("bucketOf(0) = %d, want 0", got)
	}
	for i := 1; i < NumBuckets; i++ {
		lo := uint64(1) << (i - 1)
		if got := bucketOf(lo); got != i {
			t.Errorf("bucketOf(2^%d) = %d, want %d", i-1, got, i)
		}
		hi := bucketMax(i)
		if got := bucketOf(hi); got != i {
			t.Errorf("bucketOf(bucketMax(%d)=%d) = %d, want %d", i, hi, got, i)
		}
		if i < 64 {
			if got := bucketOf(hi + 1); got != i+1 {
				t.Errorf("bucketOf(bucketMax(%d)+1) = %d, want %d", i, got, i+1)
			}
		}
	}
	if bucketMax(0) != 0 {
		t.Errorf("bucketMax(0) = %d, want 0", bucketMax(0))
	}
	if bucketMax(64) != math.MaxUint64 {
		t.Errorf("bucketMax(64) = %d, want MaxUint64", bucketMax(64))
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (every shard row shared by several writers) and checks conservation
// after the join: the merged totals equal what the writers put in.
// Run under -race this also proves the record path is data-race free.
func TestHistogramConcurrent(t *testing.T) {
	const (
		writers = 8
		perW    = 20_000
	)
	var h Histogram
	var wg sync.WaitGroup
	sums := make([]uint64, writers)
	maxes := make([]uint64, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perW; i++ {
				v := rng.Uint64() >> uint(rng.Intn(64))
				h.record(uint32((w+i)%NumShards), v)
				sums[w] += v
				if v > maxes[w] {
					maxes[w] = v
				}
			}
		}(w)
	}
	wg.Wait()

	var wantSum, wantMax uint64
	for w := 0; w < writers; w++ {
		wantSum += sums[w]
		if maxes[w] > wantMax {
			wantMax = maxes[w]
		}
	}
	snap := h.snapshot()
	if snap.Count != writers*perW {
		t.Errorf("count = %d, want %d", snap.Count, writers*perW)
	}
	if snap.Sum != wantSum {
		t.Errorf("sum = %d, want %d", snap.Sum, wantSum)
	}
	if snap.Max != wantMax {
		t.Errorf("max = %d, want %d", snap.Max, wantMax)
	}
}

// TestSnapshotDuringRecording reads snapshots concurrently with
// recording: every observed count must be monotonic and bounded by the
// total in flight (the merge-on-read contract — no consistent cut, but
// no invented values either).
func TestSnapshotDuringRecording(t *testing.T) {
	const total = 50_000
	var h Histogram
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < total; i++ {
			h.record(uint32(i%NumShards), uint64(i))
		}
	}()
	var prev uint64
	for {
		snap := h.snapshot()
		if snap.Count < prev {
			t.Fatalf("count went backwards: %d after %d", snap.Count, prev)
		}
		if snap.Count > total {
			t.Fatalf("count %d exceeds records in flight %d", snap.Count, total)
		}
		prev = snap.Count
		select {
		case <-done:
			if got := h.snapshot().Count; got != total {
				t.Fatalf("final count = %d, want %d", got, total)
			}
			return
		default:
		}
	}
}
