package telemetry

import (
	"sync/atomic"
	"unsafe"

	"hybsync/internal/pad"
)

const (
	// NumBuckets is the log₂ bucket count: bits.Len64 of a uint64 is
	// 0..64, one bucket per value.
	NumBuckets = 65
	// NumShards is the histogram shard-row count. Recorders are bound
	// to rows round-robin; with typical handle counts well above the
	// row count some sharing is expected — the rows exist to spread
	// contention and kill false sharing, not to be strictly private.
	NumShards = 16
)

// histRow is the hot state of one histogram shard. sum and max sit
// after the bucket array, on their own line boundary only by virtue of
// the whole-row rounding below; within a row a single goroutine is the
// common writer, so internal layout does not matter — only the
// row-to-row boundary does.
type histRow struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// paddedRow rounds histRow up to a whole number of cache lines so
// adjacent shard rows never false-share (the pad package idiom).
//
//hyblint:padded
type paddedRow struct {
	histRow
	_ [pad.CacheLine - unsafe.Sizeof(histRow{})%pad.CacheLine]byte
}

// Histogram is a sharded, lock-free log₂ histogram. record touches
// only the caller's shard row (two atomic adds plus a usually-skipped
// max update); snapshot merges all rows with plain atomic loads. The
// zero value is ready to use.
type Histogram struct {
	rows [NumShards]paddedRow
}

// record adds v to the shard's bucket, sum and max. The count is not
// stored — snapshot derives it from the buckets, which keeps the
// record path at two adds and makes Count always consistent with the
// bucket array it is reported beside.
func (h *Histogram) record(shard uint32, v uint64) {
	r := &h.rows[shard].histRow
	r.buckets[bucketOf(v)].Add(1)
	r.sum.Add(v)
	for {
		cur := r.max.Load()
		if v <= cur || r.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// snapshot merges every shard row into one Hist.
func (h *Histogram) snapshot() Hist {
	var out Hist
	for i := range h.rows {
		r := &h.rows[i].histRow
		for b := range r.buckets {
			c := r.buckets[b].Load()
			out.Buckets[b] += c
			out.Count += c
		}
		out.Sum += r.sum.Load()
		if m := r.max.Load(); m > out.Max {
			out.Max = m
		}
	}
	return out
}
