// Package shard is the public face of the sharded-delegation subsystem:
// a Router that partitions a keyed object across N independent
// executors of any registered algorithm, per-goroutine handles that
// lazily attach to the shards they touch, and multi-shard reads
// (Broadcast/Aggregate) executed shard-by-shard without global locking.
//
//	var parts [8]uint64
//	r, err := shard.New("mpserver", func(s int, op, arg uint64) uint64 {
//		parts[s] += arg // runs in shard s's critical section
//		return parts[s]
//	}, hybsync.WithShards(8))
//	h, err := r.NewHandle()          // one per goroutine
//	v, err := h.Apply(key, 0, 1)     // routes key to its shard
//	t, err := h.Submit(key, 0, 1)    // same, without waiting
//	v = h.Wait(t)                    // redeem the ticket
//	vs, err := h.MultiApply(0, keys, nil) // overlap across shards
//	sum, err := h.Aggregate(1, 0)    // fold a read over every shard
//	_ = r.Close()                    // fan-out, idempotent (Flush handles first)
//
// Per shard, the paper's single-server guarantees hold (every operation
// on that shard runs in mutual exclusion); across shards the router
// guarantees nothing — see DESIGN.md "Sharded delegation". Lifecycle
// errors are the root package's sentinels: NewHandle after Close fails
// with hybsync.ErrClosed, and exhausting one shard's MaxThreads
// surfaces hybsync.ErrTooManyHandles from the first Apply touching it.
package shard

import (
	"fmt"

	"hybsync"
	"hybsync/internal/core"
	ishard "hybsync/internal/shard"
)

// The router and handle types; see the internal/shard documentation on
// the methods.
type (
	// Router partitions a keyed dispatch across independent executors.
	Router = ishard.Router
	// Handle routes one goroutine's operations; obtain from Router.NewHandle.
	Handle = ishard.Handle
	// Ticket identifies one outstanding routed submission; redeem with
	// the issuing Handle's Wait exactly once.
	Ticket = ishard.Ticket
	// KeyedDispatch is the legacy scalar sharded critical-section body;
	// the router wraps it in KeyedFunc.
	KeyedDispatch = ishard.KeyedDispatch
	// KeyedObject is the batch-aware sharded execution contract: a
	// whole run against one shard executes as one DispatchShardBatch
	// call of that shard's executor.
	KeyedObject = ishard.KeyedObject
	// KeyedFunc adapts a KeyedDispatch into a KeyedObject that loops.
	KeyedFunc = ishard.KeyedFunc
	// Partitioner maps a key to a shard in [0, nshards).
	Partitioner = ishard.Partitioner
	// ExecFactory builds the executor protecting one shard around that
	// shard's core.Object view.
	ExecFactory = ishard.ExecFactory
)

// Fibonacci is the default key→shard Partitioner (Fibonacci hashing).
func Fibonacci(key uint64, nshards int) int { return ishard.Fibonacci(key, nshards) }

// Modulo is the naive key%nshards Partitioner (ablation baseline).
func Modulo(key uint64, nshards int) int { return ishard.Modulo(key, nshards) }

// HotKeyIsolating wraps base so the listed hot keys of a Zipf-skewed
// workload get shards of their own; see internal/shard.HotKeyIsolating.
func HotKeyIsolating(base Partitioner, hot ...uint64) Partitioner {
	return ishard.HotKeyIsolating(base, hot...)
}

// New builds a router whose shards all run the named algorithm, routing
// with the default Fibonacci partitioner. The shard count comes from
// hybsync.WithShards (default 1); the remaining options configure each
// shard's executor independently. d is the legacy scalar body;
// NewObject is the batch-aware primary constructor.
func New(algo string, d KeyedDispatch, opts ...hybsync.Option) (*Router, error) {
	return NewPartitioned(algo, d, nil, opts...)
}

// NewObject is New around a batch-aware KeyedObject: every run a
// shard's executor forms (a drained server batch, a combining round, a
// MultiApply group) reaches obj as one DispatchShardBatch call for
// that shard.
func NewObject(algo string, obj KeyedObject, opts ...hybsync.Option) (*Router, error) {
	return NewObjectPartitioned(algo, obj, nil, opts...)
}

// NewPartitioned is New with an explicit Partitioner (nil selects
// Fibonacci).
func NewPartitioned(algo string, d KeyedDispatch, part Partitioner, opts ...hybsync.Option) (*Router, error) {
	o, err := core.BuildOptions(opts...)
	if err != nil {
		return nil, err
	}
	return ishard.NewRouter(o.Shards, d, part, factoryFor(algo, opts))
}

// NewObjectPartitioned is NewObject with an explicit Partitioner (nil
// selects Fibonacci).
func NewObjectPartitioned(algo string, obj KeyedObject, part Partitioner, opts ...hybsync.Option) (*Router, error) {
	o, err := core.BuildOptions(opts...)
	if err != nil {
		return nil, err
	}
	return ishard.NewObjectRouter(o.Shards, obj, part, factoryFor(algo, opts))
}

// NewMixed builds a router with one shard per listed algorithm — shard
// i runs algos[i] — for ablating mixed constructions against uniform
// ones. Any hybsync.WithShards in opts is ignored; the shard count is
// len(algos).
func NewMixed(algos []string, d KeyedDispatch, opts ...hybsync.Option) (*Router, error) {
	if len(algos) == 0 {
		return nil, fmt.Errorf("shard: NewMixed needs at least one algorithm")
	}
	return ishard.NewRouter(len(algos), d, nil,
		func(s int, obj core.Object) (core.Executor, error) {
			return core.NewObject(algos[s], obj, opts...)
		})
}

// factoryFor adapts an algorithm name plus options into the per-shard
// executor factory the router consumes (hybsync.Option aliases
// core.Option, so the options pass straight through).
func factoryFor(algo string, opts []hybsync.Option) ExecFactory {
	return func(_ int, obj core.Object) (core.Executor, error) {
		return core.NewObject(algo, obj, opts...)
	}
}
