// Tests for the public shard facade: registry-name construction, the
// WithShards option, mixed-algorithm routers, and the root package's
// sentinel lifecycle surfacing through the router.
package shard_test

import (
	"errors"
	"sync"
	"testing"

	"hybsync"
	"hybsync/shard"
)

func TestNewRoutesAcrossShards(t *testing.T) {
	const nshards = 4
	var parts [nshards]uint64
	r, err := shard.New("mpserver", func(s int, op, arg uint64) uint64 {
		parts[s] += arg
		return parts[s]
	}, hybsync.WithShards(nshards))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != nshards {
		t.Fatalf("Shards() = %d, want %d", r.Shards(), nshards)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		h, err := r.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				if _, err := h.Apply(seed*7919+i, 0, 1); err != nil {
					panic(err)
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	var total uint64
	for _, v := range parts {
		total += v
	}
	if total != 4000 {
		t.Fatalf("shards hold %d increments in total, want 4000", total)
	}
	h, _ := r.NewHandle()
	sum, err := h.Aggregate(1, 0) // op 1: read (arg 0 adds nothing)
	if err != nil {
		t.Fatal(err)
	}
	if sum != 4000 {
		t.Fatalf("Aggregate = %d, want 4000", sum)
	}
}

func TestNewMixedOneShardPerAlgorithm(t *testing.T) {
	algos := []string{"mpserver", "hybcomb", "ccsynch"}
	var parts [3]uint64
	r, err := shard.NewMixed(algos, func(s int, op, arg uint64) uint64 {
		parts[s]++
		return parts[s]
	}, hybsync.WithMaxThreads(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Shards() != len(algos) {
		t.Fatalf("Shards() = %d, want %d", r.Shards(), len(algos))
	}
	h, err := r.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Broadcast(0, 0); err != nil {
		t.Fatal(err)
	}
	for s, v := range parts {
		if v != 1 {
			t.Errorf("shard %d (%s) executed %d ops, want 1", s, algos[s], v)
		}
	}
	if _, err := shard.NewMixed(nil, func(int, uint64, uint64) uint64 { return 0 }); err == nil {
		t.Error("NewMixed(no algorithms) accepted")
	}
}

func TestFacadeSentinels(t *testing.T) {
	d := func(s int, op, arg uint64) uint64 { return 0 }
	if _, err := shard.New("no-such-algo", d, hybsync.WithShards(2)); !errors.Is(err, hybsync.ErrUnknownAlgorithm) {
		t.Errorf("unknown algorithm = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := shard.New("mpserver", d, hybsync.WithShards(0)); !errors.Is(err, hybsync.ErrBadOption) {
		t.Errorf("WithShards(0) = %v, want ErrBadOption", err)
	}
	r, err := shard.New("mpserver", d, hybsync.WithShards(2), hybsync.WithMaxThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := r.NewHandle()
	h2, _ := r.NewHandle()
	if _, err := h1.ApplyShard(0, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h2.ApplyShard(0, 0, 0); !errors.Is(err, hybsync.ErrTooManyHandles) {
		t.Errorf("exhausted shard = %v, want ErrTooManyHandles", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := r.NewHandle(); !errors.Is(err, hybsync.ErrClosed) {
		t.Errorf("NewHandle after Close = %v, want ErrClosed", err)
	}
}

func TestPartitionedHotKeys(t *testing.T) {
	hits := make([]uint64, 4)
	p := shard.HotKeyIsolating(shard.Fibonacci, 42)
	r, err := shard.NewPartitioned("hybcomb", func(s int, op, arg uint64) uint64 {
		hits[s]++
		return 0
	}, p, hybsync.WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	h, _ := r.NewHandle()
	for i := 0; i < 100; i++ {
		if _, err := h.Apply(42, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	for key := uint64(0); key < 100; key++ {
		if key == 42 {
			continue
		}
		if _, err := h.Apply(key, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if hits[0] != 100 {
		t.Errorf("hot key shard executed %d ops, want the 100 hot ops exactly (cold keys leaked in)", hits[0])
	}
}
