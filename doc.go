// Package hybsync reproduces "Leveraging Hardware Message Passing for
// Efficient Thread Synchronization" (Petrović, Ropars, Schiper —
// PPoPP 2014).
//
// The repository has two layers:
//
//   - internal/tilesim + internal/simalgo: a deterministic cycle-level
//     simulator of a TILE-Gx-like hybrid manycore (mesh NoC, directory
//     coherence, memory-controller atomics, UDN message network) running
//     the paper's four constructions and evaluation objects. The
//     cmd/tilebench driver regenerates every figure of the paper's §5.
//
//   - internal/core, internal/shmsync, internal/spin, internal/conc,
//     internal/mpq: the same algorithms as a native Go library on real
//     goroutines — MP-SERVER and HYBCOMB over lock-free bounded message
//     queues, CC-SYNCH and SHM-SERVER over shared memory, classic spin
//     locks, and the evaluation's concurrent objects (counter, MS-Queues,
//     LCRQ, Treiber stack, coarse-lock stack). cmd/hybbench measures
//     them.
//
// See README.md for a tour, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
package hybsync
