// Package hybsync reproduces "Leveraging Hardware Message Passing for
// Efficient Thread Synchronization" (Petrović, Ropars, Schiper —
// PPoPP 2014) and is the public API of the repository: the
// Object/Executor/Handle contract, the string-keyed algorithm
// registry (New, NewObject, Register, Algorithms), functional options
// (WithMaxThreads, WithMaxOps, WithQueueCap, WithShards,
// WithChanQueues) and the uniform lifecycle — error-returning
// NewHandle and idempotent Close — that every construction satisfies.
// The execution contract is batch-aware: an Object's DispatchBatch
// executes a whole drained run of {op, arg} requests in one
// mutual-exclusion call (NewObject; the legacy scalar Dispatch still
// works through New, wrapped in the looping Func adapter), and the
// Handle contract is a submit/complete pipeline: because a request
// is a message, a client need not block between submission and reply,
// so Submit(op, arg) returns a Ticket, Wait(Ticket) collects the
// result, Post fires and forgets, Flush drains, ApplyBatch executes a
// whole batch blocking, and the classic blocking Apply is just
// Submit+Wait. hybsync/shard scales the constructions out: a router
// partitions a keyed object across N independent executors (sharded
// counter and fixed-capacity hash map in hybsync/object ride on it),
// and its MultiApply pipelines a keyed batch across shards —
// submitting everything before waiting on anything, same-shard
// operations grouped into contiguous runs — so unrelated shards serve
// one client concurrently.
//
// The repository has two layers beneath this package:
//
//   - internal/tilesim + internal/simalgo (public face:
//     hybsync/sim): a deterministic cycle-level simulator of a
//     TILE-Gx-like hybrid manycore (mesh NoC, directory coherence,
//     memory-controller atomics, UDN message network) running the
//     paper's four constructions and evaluation objects. The
//     cmd/tilebench driver regenerates every figure of the paper's §5.
//
//   - internal/core, internal/shmsync, internal/spin, internal/conc,
//     internal/mpq (public faces: this package and hybsync/object):
//     the same algorithms as a native Go library on real goroutines —
//     MP-SERVER and HYBCOMB over lock-free bounded message queues,
//     CC-SYNCH and SHM-SERVER over shared memory, classic spin locks,
//     and the evaluation's concurrent objects (counter, MS-Queues,
//     LCRQ, Treiber stack, coarse-lock stack). cmd/hybbench measures
//     them through the registry.
//
// See README.md for a tour and DESIGN.md for the system inventory,
// the registry and lifecycle contract, and the per-experiment index.
package hybsync
