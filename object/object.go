// Package object exposes the concurrent objects of the paper's
// evaluation (§5.3-§5.4) over the public hybsync API: a linearizable
// counter, the Michael & Scott queues in one-lock and two-lock form,
// the coarse-lock stack — each constructed over any registered
// algorithm by name — plus the nonblocking LCRQ queue and Treiber
// stack, which need no executor at all, and the sharded objects
// (NewShardedCounter, NewMap) whose state is partitioned across N
// executors by the hybsync/shard router. Every object is a native
// batch object (hybsync.Object): each run a construction forms —
// a drained server batch, a combining round, a lock-held ApplyBatch —
// executes against it in one DispatchBatch call. Batched operations
// ride the executors' submission pipeline: CounterHandle.AddN ships a
// whole batch of increments for one round trip, and MapHandle.GetAll
// and MapHandle.MultiPut overlap multi-key lookups and stores across
// shards with same-shard keys grouped into single batch calls.
//
//	ctr, err := object.NewCounter("hybcomb", hybsync.WithMaxThreads(16))
//	h, err := ctr.NewHandle() // one per goroutine
//	h.Inc()
//	_ = ctr.Close()
package object

import (
	"hybsync"
	"hybsync/internal/conc"
	"hybsync/internal/shard"
)

// EmptyVal is returned by Dequeue/Pop on an empty container.
const EmptyVal = conc.EmptyVal

// The object and handle types; handles are per-goroutine, obtained
// from the object's NewHandle, and every executor-backed object has an
// idempotent Close that shuts its construction down.
type (
	Counter       = conc.Counter
	CounterHandle = conc.CounterHandle
	MSQueue1      = conc.MSQueue1
	MSQueue2      = conc.MSQueue2
	QueueHandle   = conc.QueueHandle
	Stack         = conc.Stack
	StackHandle   = conc.StackHandle
	LCRQueue      = conc.LCRQueue
	TreiberStack  = conc.TreiberStack
)

// The sharded objects: state partitioned across N independent executors
// by the hybsync/shard router, so unrelated keys proceed in parallel
// while each shard keeps the single-server guarantees.
type (
	ShardedCounter       = shard.Counter
	ShardedCounterHandle = shard.CounterHandle
	Map                  = shard.Map
	MapHandle            = shard.MapHandle
)

// Sentinels of the sharded map (keys and values are 32-bit): MapFullVal
// reports a Put into a shard at capacity; absent keys read as EmptyVal.
const MapFullVal = shard.FullVal

// factory adapts an algorithm name plus options into the executor
// factory the object layer consumes. The objects are native batch
// objects (hybsync.Object), so they go through NewObject — every run a
// construction forms executes against the object in one DispatchBatch
// call.
func factory(algo string, opts []hybsync.Option) conc.ExecutorFactory {
	return func(obj hybsync.Object) (hybsync.Executor, error) {
		return hybsync.NewObject(algo, obj, opts...)
	}
}

// NewCounter builds a linearizable fetch-and-increment counter over the
// named algorithm.
func NewCounter(algo string, opts ...hybsync.Option) (*Counter, error) {
	return conc.NewCounter(factory(algo, opts))
}

// NewMSQueue1 builds the one-lock Michael & Scott queue (Figure 5a)
// over the named algorithm.
func NewMSQueue1(algo string, opts ...hybsync.Option) (*MSQueue1, error) {
	return conc.NewMSQueue1(factory(algo, opts))
}

// NewMSQueue2 builds the two-lock Michael & Scott queue over two
// independent executors of the named algorithm (for "mpserver" that
// means two dedicated server goroutines, the cost §5.4 discusses).
func NewMSQueue2(algo string, opts ...hybsync.Option) (*MSQueue2, error) {
	return conc.NewMSQueue2(factory(algo, opts))
}

// NewStack builds the coarse-lock stack (Figure 5b) over the named
// algorithm.
func NewStack(algo string, opts ...hybsync.Option) (*Stack, error) {
	return conc.NewStack(factory(algo, opts))
}

// NewLCRQueue builds the nonblocking LCRQ-style queue (Morrison & Afek,
// PPoPP'13) with the given ring size; it runs over plain atomics and
// needs no executor.
func NewLCRQueue(ringSize int) *LCRQueue { return conc.NewLCRQueue(ringSize) }

// NewTreiberStack builds Treiber's nonblocking stack; it runs over
// plain atomics and needs no executor.
func NewTreiberStack() *TreiberStack { return conc.NewTreiberStack() }

// shardFactory adapts an algorithm name plus options into the per-shard
// executor factory the shard router consumes.
func shardFactory(algo string, opts []hybsync.Option) shard.ExecFactory {
	return func(_ int, obj hybsync.Object) (hybsync.Executor, error) {
		return hybsync.NewObject(algo, obj, opts...)
	}
}

// NewShardedCounter builds a fetch-and-increment counter partitioned
// across nshards independent executors of the named algorithm
// (Fibonacci key routing). Handle.Inc(key) increments key's shard;
// Handle.Sum aggregates the global value shard-by-shard.
func NewShardedCounter(algo string, nshards int, opts ...hybsync.Option) (*ShardedCounter, error) {
	return shard.NewCounter(nshards, nil, shardFactory(algo, opts))
}

// NewMap builds the fixed-capacity open-addressing uint32→uint32 hash
// map whose buckets are delegation-protected per shard, over nshards
// executors of the named algorithm. capacity is the total slot count
// (rounded up to a power of two per shard).
func NewMap(algo string, nshards, capacity int, opts ...hybsync.Option) (*Map, error) {
	return shard.NewMap(nshards, capacity, nil, shardFactory(algo, opts))
}
