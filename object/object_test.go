package object_test

import (
	"errors"
	"sync"
	"testing"

	"hybsync"
	"hybsync/object"
)

// TestCounterByName round-trips the counter over every registered
// algorithm: concurrent increments must be exact, and the object's
// lifecycle must mirror its executor's.
func TestCounterByName(t *testing.T) {
	const goroutines, per = 4, 250
	for _, algo := range hybsync.Algorithms() {
		t.Run(algo, func(t *testing.T) {
			c, err := object.NewCounter(algo, hybsync.WithMaxThreads(goroutines))
			if err != nil {
				t.Fatalf("NewCounter(%q): %v", algo, err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := c.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle: %v", err)
				}
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						h.Inc()
					}
				}()
			}
			wg.Wait()
			if got := c.Value(); got != goroutines*per {
				t.Fatalf("counter = %d, want %d", got, goroutines*per)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := c.NewHandle(); !errors.Is(err, hybsync.ErrClosed) {
				t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestUnknownAlgorithmPropagates(t *testing.T) {
	if _, err := object.NewCounter("no-such-algo"); !errors.Is(err, hybsync.ErrUnknownAlgorithm) {
		t.Fatalf("NewCounter(unknown) = %v, want ErrUnknownAlgorithm", err)
	}
	if _, err := object.NewMSQueue2("no-such-algo"); !errors.Is(err, hybsync.ErrUnknownAlgorithm) {
		t.Fatalf("NewMSQueue2(unknown) = %v, want ErrUnknownAlgorithm", err)
	}
}

// TestQueueFIFOByName checks single-handle FIFO order through both
// MS-Queue forms over a server construction.
func TestQueueFIFOByName(t *testing.T) {
	builders := map[string]func() (interface {
		NewHandle() (*object.QueueHandle, error)
		Close() error
	}, error){
		"MSQueue1/mpserver": func() (interface {
			NewHandle() (*object.QueueHandle, error)
			Close() error
		}, error) {
			return object.NewMSQueue1("mpserver", hybsync.WithMaxThreads(4))
		},
		"MSQueue2/mpserver": func() (interface {
			NewHandle() (*object.QueueHandle, error)
			Close() error
		}, error) {
			return object.NewMSQueue2("mpserver", hybsync.WithMaxThreads(4))
		},
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			q, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			defer q.Close()
			h, err := q.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			for v := uint64(0); v < 500; v++ {
				h.Enqueue(v)
			}
			for v := uint64(0); v < 500; v++ {
				if got := h.Dequeue(); got != v {
					t.Fatalf("dequeue = %d, want %d", got, v)
				}
			}
			if h.Dequeue() != object.EmptyVal {
				t.Fatal("drained queue not empty")
			}
		})
	}
}

// TestStackLIFOByName checks LIFO order over a combining construction,
// and the nonblocking structures' basic behavior.
func TestStackLIFOByName(t *testing.T) {
	s, err := object.NewStack("ccsynch")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h, err := s.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v <= 100; v++ {
		h.Push(v)
	}
	for v := uint64(100); v >= 1; v-- {
		if got := h.Pop(); got != v {
			t.Fatalf("pop = %d, want %d", got, v)
		}
	}

	ts := object.NewTreiberStack()
	ts.Push(42)
	if got := ts.Pop(); got != 42 {
		t.Fatalf("Treiber pop = %d, want 42", got)
	}

	lq := object.NewLCRQueue(16)
	lq.Enqueue(7)
	if got := lq.Dequeue(); got != 7 {
		t.Fatalf("LCRQ dequeue = %d, want 7", got)
	}
}

// TestShardedCounterByName round-trips the sharded counter over a
// representative construction per family: concurrent keyed increments
// must conserve exactly, and occupancy must account for every op.
func TestShardedCounterByName(t *testing.T) {
	const goroutines, per, nshards = 4, 500, 4
	for _, algo := range []string{"mpserver", "hybcomb", "ccsynch", "mcs-lock"} {
		t.Run(algo, func(t *testing.T) {
			c, err := object.NewShardedCounter(algo, nshards, hybsync.WithMaxThreads(8))
			if err != nil {
				t.Fatalf("NewShardedCounter(%q): %v", algo, err)
			}
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h, err := c.NewHandle()
				if err != nil {
					t.Fatalf("NewHandle: %v", err)
				}
				wg.Add(1)
				go func(seed uint64) {
					defer wg.Done()
					for i := uint64(0); i < per; i++ {
						if _, err := h.Inc(seed*2654435761 + i); err != nil {
							panic(err)
						}
					}
				}(uint64(g + 1))
			}
			wg.Wait()
			if got := c.Value(); got != goroutines*per {
				t.Fatalf("sharded counter = %d, want %d", got, goroutines*per)
			}
			var occ uint64
			for _, n := range c.Occupancy() {
				occ += n
			}
			if occ != goroutines*per {
				t.Fatalf("occupancy accounts for %d ops, want %d", occ, goroutines*per)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if err := c.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
			if _, err := c.NewHandle(); !errors.Is(err, hybsync.ErrClosed) {
				t.Fatalf("NewHandle after Close = %v, want ErrClosed", err)
			}
		})
	}
}

// TestMapByName exercises the sharded map's basic contract through the
// public constructor: put/get/delete round-trip, the EmptyVal/
// MapFullVal sentinels, and a concurrent keyed smoke under -race.
func TestMapByName(t *testing.T) {
	m, err := object.NewMap("mpserver", 4, 8192)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	h, err := m.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := h.Get(7); got != object.EmptyVal {
		t.Fatalf("Get on empty map = %#x, want EmptyVal", got)
	}
	if got, _ := h.Put(7, 70); got != object.EmptyVal {
		t.Fatalf("fresh Put = %#x, want EmptyVal", got)
	}
	if got, _ := h.Put(7, 71); got != 70 {
		t.Fatalf("overwrite = %#x, want 70", got)
	}
	if got, _ := h.Get(7); got != 71 {
		t.Fatalf("Get = %#x, want 71", got)
	}
	if got, _ := h.Delete(7); got != 71 {
		t.Fatalf("Delete = %#x, want 71", got)
	}

	const goroutines, per = 4, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		gh, err := m.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(base uint32) {
			defer wg.Done()
			// Disjoint key ranges per goroutine so results are checkable.
			for i := uint32(0); i < per; i++ {
				if _, err := gh.Put(base+i, i); err != nil {
					panic(err)
				}
			}
			for i := uint32(0); i < per; i++ {
				v, err := gh.Get(base + i)
				if err != nil {
					panic(err)
				}
				if v != uint64(i) {
					panic("sharded map lost a write")
				}
			}
		}(uint32(g) * 10_000)
	}
	wg.Wait()
	n, err := h.Len()
	if err != nil {
		t.Fatal(err)
	}
	if n != goroutines*per {
		t.Fatalf("Len = %d, want %d", n, goroutines*per)
	}
}
