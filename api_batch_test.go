// Tests for the batch-aware execution contract: the differential
// property test (legacy scalar Dispatch vs. batched DispatchBatch vs. a
// sequential model, with randomized batch boundaries, across every
// registered construction), batch/pipeline interleaving, and the
// PipelineStats backpressure counters.
package hybsync_test

import (
	"sync"
	"testing"

	"hybsync"
	"hybsync/harness"
)

// regModel is the sequential reference: a single register with three
// operations — add (returns the old value), xor (returns the old
// value), read.
type regModel struct{ state uint64 }

func (m *regModel) step(op, arg uint64) uint64 {
	old := m.state
	switch op % 3 {
	case 0:
		m.state = old + arg
	case 1:
		m.state = old ^ arg
	}
	return old
}

// regObject is the batch-aware implementation of the same machine; it
// also checks the constructions' side of the DispatchBatch contract on
// every call it receives.
type regObject struct {
	t *testing.T
	m regModel
}

func (o *regObject) DispatchBatch(reqs []hybsync.Req, results []uint64) {
	if len(results) != len(reqs) {
		o.t.Errorf("DispatchBatch: len(results) = %d, len(reqs) = %d", len(results), len(reqs))
	}
	for i, r := range reqs {
		results[i] = o.m.step(r.Op, r.Arg)
	}
}

// TestBatchScalarDifferential drives one random operation stream three
// ways — scalar Apply over the legacy New(dispatch) path, ApplyBatch
// over NewObject with randomized batch boundaries (including batches
// larger than QueueCap, which must chunk through the pipeline), and the
// sequential model — and requires identical result streams from every
// registered construction.
func TestBatchScalarDifferential(t *testing.T) {
	const nops = 600
	for _, algo := range hybsync.Algorithms() {
		t.Run(algo, func(t *testing.T) {
			rng := harness.NewXorShift(0xBA7C4)
			stream := make([]hybsync.Req, nops)
			for i := range stream {
				stream[i] = hybsync.Req{Op: rng.Next() % 3, Arg: rng.Next() % 1024}
			}
			want := make([]uint64, nops)
			var model regModel
			for i, r := range stream {
				want[i] = model.step(r.Op, r.Arg)
			}

			// Legacy path: a scalar dispatch function, one Apply per op.
			var scalarState regModel
			ex, err := hybsync.New(algo, scalarState.step, hybsync.WithQueueCap(8))
			if err != nil {
				t.Fatalf("New(%s): %v", algo, err)
			}
			h := hybsync.MustHandle(ex)
			for i, r := range stream {
				if got := h.Apply(r.Op, r.Arg); got != want[i] {
					t.Fatalf("scalar op %d = %d, want %d", i, got, want[i])
				}
			}
			if err := ex.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}

			// Batch path: the native object, the same stream cut at random
			// boundaries (1..max, where max exceeds QueueCap).
			obj := &regObject{t: t}
			exb, err := hybsync.NewObject(algo, obj, hybsync.WithQueueCap(8))
			if err != nil {
				t.Fatalf("NewObject(%s): %v", algo, err)
			}
			hb := hybsync.MustHandle(exb)
			results := make([]uint64, nops)
			for i := 0; i < nops; {
				n := int(rng.Next()%24) + 1
				if i+n > nops {
					n = nops - i
				}
				hb.ApplyBatch(stream[i:i+n], results[i:i+n])
				i += n
			}
			for i := range results {
				if results[i] != want[i] {
					t.Fatalf("batch op %d = %d, want %d (boundaries randomized, seed fixed)", i, results[i], want[i])
				}
			}
			if err := exb.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
		})
	}
}

// TestApplyBatchInterleavesFIFO: a batch issued while the pipeline
// holds outstanding submissions executes after them (per-handle FIFO),
// and nil results still executes the batch before returning.
func TestApplyBatchInterleavesFIFO(t *testing.T) {
	for _, algo := range []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"} {
		t.Run(algo, func(t *testing.T) {
			var state uint64
			ex, err := hybsync.New(algo, func(op, arg uint64) uint64 {
				v := state
				state = v + 1
				return v
			}, hybsync.WithMaxThreads(2))
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()
			h := hybsync.MustHandle(ex)
			var tks [3]hybsync.Ticket
			for i := range tks {
				tks[i], _ = h.Submit(0, 0)
			}
			batch := []hybsync.Req{{}, {}, {}, {}}
			res := make([]uint64, len(batch))
			h.ApplyBatch(batch, res)
			for i, v := range res {
				if want := uint64(3 + i); v != want {
					t.Fatalf("batch result %d = %d, want %d (batch must execute after outstanding submissions)", i, v, want)
				}
			}
			for i, tk := range tks {
				if v := h.Wait(tk); v != uint64(i) {
					t.Fatalf("ticket %d = %d, want %d", i, v, i)
				}
			}
			// A discard batch completes before returning: the state
			// advance is visible to the next operation.
			h.ApplyBatch(batch, nil)
			if v := h.Apply(0, 0); v != uint64(3+len(batch)+len(batch)) {
				t.Fatalf("op after discard batch = %d, want %d", v, 3+2*len(batch))
			}
		})
	}
}

// TestBatchConcurrentConservation: several goroutines drive random-size
// ApplyBatch runs of increments concurrently; under -race this guards
// the mutual-exclusion claim of every construction's batch path, and
// the final state checks no operation was lost or doubled.
func TestBatchConcurrentConservation(t *testing.T) {
	const goroutines, batches = 4, 120
	for _, algo := range []string{"mpserver", "hybcomb", "ccsynch", "shmserver", "mcs-lock"} {
		t.Run(algo, func(t *testing.T) {
			obj := &regObject{t: t}
			ex, err := hybsync.NewObject(algo, obj,
				hybsync.WithMaxThreads(goroutines), hybsync.WithQueueCap(6))
			if err != nil {
				t.Fatal(err)
			}
			var want [goroutines]uint64
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h := hybsync.MustHandle(ex)
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := harness.NewXorShift(uint64(g + 1))
					var reqs []hybsync.Req
					var n uint64
					for b := 0; b < batches; b++ {
						reqs = reqs[:0]
						for k := int(rng.Next()%13) + 1; k > 0; k-- {
							reqs = append(reqs, hybsync.Req{Op: 0, Arg: 1})
							n++
						}
						if b%3 == 0 {
							h.ApplyBatch(reqs, nil) // discard leg
						} else {
							h.ApplyBatch(reqs, make([]uint64, len(reqs)))
						}
					}
					want[g] = n
				}(g)
			}
			wg.Wait()
			var total uint64
			for _, n := range want {
				total += n
			}
			if err := ex.Close(); err != nil {
				t.Fatal(err)
			}
			if obj.m.state != total {
				t.Fatalf("state = %d, want %d increments", obj.m.state, total)
			}
		})
	}
}

// TestStatsAtFlushedQuiescence pins the StatsSource read contract down
// in terms of flushed handles: once every handle with submissions
// outstanding has been flushed, the combining statistics are stable
// (two consecutive reads agree) and account for exactly the scalar
// operations submitted — rounds + combined for HybComb (each round
// carries one own operation), combined alone for CC-Synch (a combiner
// counts its own operation too).
func TestStatsAtFlushedQuiescence(t *testing.T) {
	const goroutines, per = 3, 400
	for _, algo := range []string{"hybcomb", "ccsynch"} {
		t.Run(algo, func(t *testing.T) {
			ex, err := hybsync.New(algo, func(op, arg uint64) uint64 { return 0 },
				hybsync.WithMaxThreads(goroutines))
			if err != nil {
				t.Fatal(err)
			}
			defer ex.Close()
			var wg sync.WaitGroup
			for g := 0; g < goroutines; g++ {
				h := hybsync.MustHandle(ex)
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < per; i++ {
						if i%2 == 0 {
							h.Post(0, 0)
						} else {
							h.Submit(0, 0)
						}
					}
					h.Flush() // the read below is only defined after this
				}()
			}
			wg.Wait()
			src, ok := ex.(hybsync.StatsSource)
			if !ok {
				t.Fatalf("%s does not expose StatsSource", algo)
			}
			r1, c1 := src.Stats()
			r2, c2 := src.Stats()
			if r1 != r2 || c1 != c2 {
				t.Fatalf("Stats unstable after all handles flushed: (%d,%d) then (%d,%d)", r1, c1, r2, c2)
			}
			total := uint64(goroutines * per)
			executed := c1
			if algo == "hybcomb" {
				executed = r1 + c1
			}
			if executed != total {
				t.Fatalf("stats account for %d ops, want %d (reads are only defined once every handle is flushed)", executed, total)
			}
		})
	}
}

// TestPipelineStats: the pipelining constructions export backpressure
// counters — a submission window driven past QueueCap must record
// stalls and the high-water in-flight depth; immediate-completion
// constructions do not implement the extension.
func TestPipelineStats(t *testing.T) {
	const qcap = 4
	ex, err := hybsync.New("mpserver", func(op, arg uint64) uint64 { return 0 },
		hybsync.WithMaxThreads(2), hybsync.WithQueueCap(qcap))
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	h := hybsync.MustHandle(ex)
	const n = 20
	for i := 0; i < n; i++ {
		h.Post(0, 0)
	}
	h.Flush()
	ps, ok := ex.(hybsync.PipelineStats)
	if !ok {
		t.Fatal("mpserver does not expose PipelineStats")
	}
	stalls, depth := ps.Pipeline()
	if depth != qcap {
		t.Errorf("maxDepth = %d, want %d (the window is bounded by QueueCap)", depth, qcap)
	}
	if want := uint64(n - qcap); stalls != want {
		t.Errorf("submitStalls = %d, want %d (every post past the window stalls)", stalls, want)
	}

	lk, err := hybsync.New("mcs-lock", func(op, arg uint64) uint64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	defer lk.Close()
	if _, ok := lk.(hybsync.PipelineStats); ok {
		t.Error("mcs-lock claims PipelineStats but has no submission pipeline")
	}
}
